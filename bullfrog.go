package bullfrog

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"time"

	"github.com/bullfrogdb/bullfrog/internal/catalog"
	"github.com/bullfrogdb/bullfrog/internal/core"
	"github.com/bullfrogdb/bullfrog/internal/engine"
	"github.com/bullfrogdb/bullfrog/internal/obs/trace"
	"github.com/bullfrogdb/bullfrog/internal/sql"
	"github.com/bullfrogdb/bullfrog/internal/txn"
	"github.com/bullfrogdb/bullfrog/internal/types"
	"github.com/bullfrogdb/bullfrog/internal/wal"
)

// ErrClosed is returned by operations on a database after Close.
var ErrClosed = errors.New("bullfrog: database is closed")

// Re-exported building blocks, so callers assemble migrations without
// importing internal packages.
type (
	// Migration is a complete schema migration (setup DDL + statements).
	Migration = core.Migration
	// Statement is one migration statement (outputs + tracking category).
	Statement = core.Statement
	// OutputSpec is one output table with its defining transform query.
	OutputSpec = core.OutputSpec
	// SeedSpec completes denormalizing joins for groups with no driving rows.
	SeedSpec = core.SeedSpec
	// ConflictMode selects early (tracker) vs on-insert duplicate detection.
	ConflictMode = core.ConflictMode
	// Datum is a single SQL value.
	Datum = types.Datum
	// Row is a tuple of datums.
	Row = types.Row
	// Result is a statement's outcome: columns, rows, affected count.
	Result = engine.Result
)

// Migration categories and conflict modes (paper §3.1, §3.7).
const (
	OneToOne       = core.OneToOne
	OneToMany      = core.OneToMany
	ManyToOne      = core.ManyToOne
	ManyToMany     = core.ManyToMany
	DetectEarly    = core.DetectEarly
	DetectOnInsert = core.DetectOnInsert
)

// Datum constructors.
var (
	NewInt    = types.NewInt
	NewFloat  = types.NewFloat
	NewString = types.NewString
	NewBool   = types.NewBool
	NewTime   = types.NewTime
	Null      = types.Null
)

// ParseQuery parses a SELECT statement for use as a migration transform.
func ParseQuery(src string) (*sql.SelectStmt, error) {
	s, err := sql.ParseOne(src)
	if err != nil {
		return nil, err
	}
	sel, ok := s.(*sql.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("bullfrog: expected a SELECT, got %T", s)
	}
	return sel, nil
}

// MustQuery is ParseQuery that panics on error (for static migration specs).
func MustQuery(src string) *sql.SelectStmt {
	sel, err := ParseQuery(src)
	if err != nil {
		panic(err)
	}
	return sel
}

// Options configures a database instance.
type Options struct {
	// PageSize is the storage heap's slots-per-page (0 = default 256).
	PageSize uint32
	// LockTimeout bounds lock waits; timeouts resolve deadlocks (0 = 250ms).
	LockTimeout time.Duration
	// WAL receives redo records (nil disables logging).
	WAL wal.Logger
	// ConflictMode selects BullFrog's duplicate-migration detection
	// (DetectEarly by default).
	ConflictMode ConflictMode
	// GroupCommit tunes the WAL's leader/follower durable-flush batching when
	// WAL supports it (wal.Writer or wal.Dir). Zero values mean: no dwell
	// delay, batch cap 64.
	GroupCommit wal.GroupCommit
	// CheckpointInterval starts a background checkpointer when WAL is a
	// segmented directory (wal.Dir): every interval, a transaction-consistent
	// snapshot is written and superseded segments are deleted, bounding
	// recovery replay. 0 disables background checkpoints (Checkpoint can
	// still be called manually).
	CheckpointInterval time.Duration
	// Trace enables structured tracing: statement and migration spans, the
	// event ring behind TraceHandler, and the slow-op log. Disabled, the
	// instrumentation costs one nil/bool check per site.
	Trace bool
	// TraceRingSize is the event-ring capacity (rounded up to a power of
	// two; 0 = 4096). Ignored unless Trace is set.
	TraceRingSize int
	// SlowStatement: statements at least this slow are recorded in the
	// slow-op log with their full phase breakdown (0 disables the slow-op
	// path; spans still record). Ignored unless Trace is set.
	SlowStatement time.Duration
	// SlowBatch is the same threshold for background backfill batches.
	SlowBatch time.Duration
	// SlowOpLog receives slow-op JSON lines (one object per line). nil keeps
	// slow ops only in the in-memory buffer served by TraceHandler.
	SlowOpLog io.Writer
}

// DB is an embedded BullFrog database. Close releases its resources; other
// methods must not be called after Close.
type DB struct {
	eng  *engine.DB
	ctrl *core.Controller
	gate *core.Gate
	// bgs holds one background migrator per Migrate call of the active chain
	// (each pool owns only the runtimes it claimed first); ResetMigration and
	// Close stop them all.
	bgs    []*core.Background
	ckpt   *core.Checkpointer // nil unless background checkpointing is on
	walSrc wal.Logger         // the caller-supplied logger, for Close
	tracer *trace.Tracer      // nil = tracing disabled
	closed atomic.Bool
	// closeCtx is cancelled by Close so long-running drains (FinishMigration
	// during a multi-step switch-over) cannot hang shutdown.
	closeCtx  context.Context
	closeStop context.CancelFunc
}

// Open creates an empty database. Callers should Close it when done.
func Open(opts Options) *DB {
	eng := engine.New(engine.Options{
		PageSize:    opts.PageSize,
		LockTimeout: opts.LockTimeout,
		WAL:         opts.WAL,
	})
	gate := core.NewGate()
	gate.SetObs(eng.Obs().Migration)
	//lint:ignore ctxflow DB-lifetime root owned by Open: cancelled by Close so drains cannot outlive the handle
	ctx, cancel := context.WithCancel(context.Background())
	db := &DB{
		eng:       eng,
		ctrl:      core.NewController(eng, opts.ConflictMode),
		gate:      gate,
		walSrc:    opts.WAL,
		closeCtx:  ctx,
		closeStop: cancel,
	}
	if opts.Trace {
		db.tracer = trace.New(trace.Config{
			RingSize:      opts.TraceRingSize,
			SlowStatement: opts.SlowStatement,
			SlowBatch:     opts.SlowBatch,
			SlowLog:       opts.SlowOpLog,
		}, eng.Obs().Trace)
		eng.SetTracing(true)
		db.ctrl.SetTracer(db.tracer)
	}
	switch w := opts.WAL.(type) {
	case *wal.Writer:
		w.SetGroupCommit(opts.GroupCommit)
		w.SetTracer(db.tracer)
	case *wal.Dir:
		w.SetGroupCommit(opts.GroupCommit)
		w.SetTracer(db.tracer)
		if opts.CheckpointInterval > 0 {
			db.ckpt = core.NewCheckpointer(ctx, db.ctrl, w, opts.CheckpointInterval)
			db.ckpt.Start()
		}
	}
	return db
}

// Checkpoint takes one checkpoint of a segmented WAL directory synchronously
// (see Options.CheckpointInterval for the background equivalent). Returns an
// error when the WAL is not a *wal.Dir.
func (db *DB) Checkpoint(ctx context.Context) error {
	if db.closed.Load() {
		return wrapErr("checkpoint", "", ErrClosed)
	}
	dir, ok := db.walSrc.(*wal.Dir)
	if !ok {
		return fmt.Errorf("bullfrog: checkpoint requires a segmented WAL directory (wal.Dir)")
	}
	if ctx == nil {
		ctx = db.closeCtx
	}
	cp := db.ckpt
	if cp == nil {
		cp = core.NewCheckpointer(db.closeCtx, db.ctrl, dir, time.Hour)
	}
	_, err := cp.CheckpointNow(ctx)
	return wrapErr("checkpoint", "", err)
}

// Close shuts the database down: it stops the background migrator, flushes
// the WAL, and closes the caller-supplied WAL logger if it implements
// io.Closer. Close is idempotent; after the first call, Exec/Query/Begin/
// Migrate return ErrClosed.
func (db *DB) Close() error {
	if !db.closed.CompareAndSwap(false, true) {
		return nil
	}
	db.closeStop() // unhang any in-flight FinishMigration drain
	if db.ckpt != nil {
		db.ckpt.Stop()
		db.ckpt = nil
	}
	for _, bg := range db.bgs {
		bg.Stop()
	}
	db.bgs = nil
	var firstErr error
	if err := db.eng.WAL().Flush(); err != nil {
		firstErr = fmt.Errorf("bullfrog: flushing WAL: %w", err)
	}
	if c, ok := db.walSrc.(io.Closer); ok {
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("bullfrog: closing WAL: %w", err)
		}
	}
	return firstErr
}

// Engine exposes the underlying query engine (power users, benchmarks).
func (db *DB) Engine() *engine.DB { return db.eng }

// Controller exposes the migration controller (stats, manual control).
func (db *DB) Controller() *core.Controller { return db.ctrl }

// Gate exposes the client/eager-migration gate; workloads running
// transactions outside Exec (e.g. the TPC-C harness) hold it per transaction
// so the eager baseline can measure its downtime honestly.
func (db *DB) Gate() *core.Gate { return db.gate }

// Exec parses and executes one or more SQL statements, each in its own
// transaction, after performing any lazy migration the statements require.
// The result of the last statement is returned. Exec is ExecContext bounded
// by the database's close context: Close unblocks statements parked behind
// an eager migration's exclusive gate or in a lock queue.
func (db *DB) Exec(src string) (*Result, error) { return db.ExecContext(db.closeCtx, src) }

// ExecContext is Exec bounded by the caller's context: a statement blocked
// entering the gate (behind an eager migration), waiting on a busy migration
// granule, or parked in a lock queue returns context.Cause(ctx) as soon as
// ctx is done — it does not wait out the lock timeout. A nil ctx behaves
// like Exec. Statements already past their blocking points run to
// completion; cancellation never leaves a transaction open.
func (db *DB) ExecContext(ctx context.Context, src string) (*Result, error) {
	if db.closed.Load() {
		return nil, wrapErr("exec", "", ErrClosed)
	}
	if ctx == nil {
		ctx = db.closeCtx
	}
	// One span covers the whole call (usually a single statement): parse,
	// then per-statement gate/migrate/exec/commit phases accumulate on it.
	var sp *trace.Span
	if db.tracer != nil {
		sp = db.tracer.StartStatement(spanName(src))
		defer db.tracer.Finish(sp)
		ctx = trace.WithSpan(ctx, sp)
	}
	var parseStart time.Time
	if sp != nil {
		parseStart = time.Now()
	}
	stmts, err := sql.Parse(src)
	if err != nil {
		return nil, err
	}
	if sp != nil {
		sp.AddSince(trace.PhaseParse, parseStart)
	}
	var last *Result = &Result{}
	for _, s := range stmts {
		res, err := db.execStmtGated(ctx, s)
		if err != nil {
			return nil, err
		}
		last = res
	}
	return last, nil
}

// spanName compresses SQL text into a span label: whitespace collapsed,
// truncated so pathological statements don't bloat the trace surface.
func spanName(src string) string {
	src = strings.Join(strings.Fields(src), " ")
	if len(src) > 100 {
		src = src[:100] + "..."
	}
	return src
}

// Query is Exec for a single SELECT; provided for readability.
func (db *DB) Query(src string) (*Result, error) { return db.Exec(src) }

// QueryContext is Query with the cancellation semantics of ExecContext.
func (db *DB) QueryContext(ctx context.Context, src string) (*Result, error) {
	return db.ExecContext(ctx, src)
}

// execStmtGated runs one statement while holding a shared gate slot. The
// release is deferred so a panic anywhere in the statement path cannot leak
// gate capacity (a leaked slot is permanent and eventually wedges the rare
// truly-exclusive operations — the eager baseline's swap and the multi-step
// Switch; BullFrog's lazy migration start no longer drains the gate, it
// installs a catalog version at a commit barrier).
func (db *DB) execStmtGated(ctx context.Context, s sql.Statement) (*Result, error) {
	var sp *trace.Span
	var gateStart time.Time
	if db.tracer != nil {
		if sp = trace.FromContext(ctx); sp != nil {
			gateStart = time.Now()
		}
	}
	if err := db.gate.EnterContext(ctx); err != nil {
		if db.closed.Load() {
			return nil, wrapErr("exec", "", ErrClosed)
		}
		return nil, err
	}
	if sp != nil {
		sp.AddSince(trace.PhaseGate, gateStart)
	}
	defer db.gate.Leave()
	return db.execStmt(ctx, s)
}

func (db *DB) execStmt(ctx context.Context, s sql.Statement) (*Result, error) {
	// Optimistic interception: the retired checks and migration scoping run
	// against the catalog version current at intercept time, then the
	// transaction begins. If a migration installed a newer version in
	// between, the snapshot pins a schema the intercept never saw — abort
	// and re-intercept against the fresh version. One iteration in the
	// steady state; the loop spins only while installs land mid-statement.
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, context.Cause(ctx)
		}
		ver := db.eng.Catalog().Head()
		if err := db.interceptStmt(ctx, ver, s); err != nil {
			return nil, retryWrap(attempt, wrapErr("exec", "", err))
		}
		tx := db.eng.Begin()
		// Pin ctx (and its span) as the transaction's statement context for
		// the whole statement, not just the ExecStmtContext window: Commit
		// runs after that window closes and still reads the span through it.
		tx.SetContext(ctx)
		if db.eng.CatalogAt(tx.Snapshot().Seq) != ver {
			_ = db.eng.Abort(tx)
			continue
		}
		res, err := db.eng.ExecStmtContext(ctx, tx, s)
		if err != nil {
			// The statement error is the caller's failure; the rollback drops
			// the transaction's buffered redo without touching the log.
			_ = db.eng.Abort(tx)
			return nil, retryWrap(attempt, wrapErr("exec", "", err))
		}
		if err := db.eng.Commit(tx); err != nil {
			return nil, retryWrap(attempt, wrapErr("commit", "", err))
		}
		return res, nil
	}
}

// retryWrap annotates an error that surfaced only after the optimistic
// capture/revalidate loop restarted the statement at least once, so the
// caller can see the failure came from a re-intercepted run. It wraps with
// %w — never %v — so errors.Is/As still reach the sentinel and the *Error
// underneath; a restart must not strip the error taxonomy.
func retryWrap(attempt int, err error) error {
	if attempt == 0 || err == nil {
		return err
	}
	return fmt.Errorf("after %d catalog-install restart(s): %w", attempt, err)
}

// interceptStmt is BullFrog's request interception (paper §2.1): reject
// retired tables, and for requests over tables under migration, migrate the
// potentially relevant tuples before the request runs. UPDATE and DELETE are
// handled exactly like SELECT — their WHERE drives a migration first, then
// the original request runs on the new schema. INSERT needs no prior
// migration here; constraint checks widen the scope via the engine hook.
// All schema decisions (retired marks, view expansion) read ver, the catalog
// version the caller's snapshot pins, never the moving head.
func (db *DB) interceptStmt(ctx context.Context, ver *catalog.Version, s sql.Statement) error {
	switch t := s.(type) {
	case *sql.SelectStmt:
		return db.interceptSelect(ctx, ver, t)
	case *sql.UpdateStmt:
		if err := db.checkRetired(ver, t.Table); err != nil {
			return err
		}
		return db.ctrl.EnsureForTableContext(ctx, t.Table, t.Alias, t.Where)
	case *sql.DeleteStmt:
		if err := db.checkRetired(ver, t.Table); err != nil {
			return err
		}
		return db.ctrl.EnsureForTableContext(ctx, t.Table, t.Alias, t.Where)
	case *sql.InsertStmt:
		if err := db.checkRetired(ver, t.Table); err != nil {
			return err
		}
		if t.Select != nil {
			return db.interceptSelect(ctx, ver, t.Select)
		}
		return nil
	case *sql.ExplainStmt:
		return db.interceptStmt(ctx, ver, t.Inner)
	default:
		return nil
	}
}

func (db *DB) checkRetired(ver *catalog.Version, table string) error {
	if ver.Retired(table) {
		return &Error{
			Code:  CodeRetiredTable,
			Op:    "exec",
			Table: table,
			Err:   fmt.Errorf("%w: %q", core.ErrRetiredTable, table),
		}
	}
	return nil
}

func (db *DB) interceptSelect(ctx context.Context, ver *catalog.Version, s *sql.SelectStmt) error {
	for _, ref := range s.From {
		if ref.Subquery != nil {
			if err := db.interceptSelect(ctx, ver, ref.Subquery); err != nil {
				return err
			}
			continue
		}
		if err := db.checkRetired(ver, ref.Name); err != nil {
			return err
		}
		// Views expand to their defining query, which may reference tables
		// under migration; recurse (without the outer WHERE — predicates
		// over view outputs don't transpose here, so the view's base tables
		// fall back to their full scope, the safe superset).
		if ver.HasView(ref.Name) {
			if v, err := ver.View(ref.Name); err == nil {
				if def, ok := v.Def.(*sql.SelectStmt); ok {
					if err := db.interceptSelect(ctx, ver, def); err != nil {
						return err
					}
				}
			}
			continue
		}
		if err := db.ctrl.EnsureForTableContext(ctx, ref.Name, ref.Alias, s.Where); err != nil {
			return err
		}
	}
	return nil
}

// Txn is a client transaction handle for programmatic (non-SQL) access; it
// holds the client gate for its lifetime.
type Txn struct {
	db    *DB
	inner *txn.Txn
	done  bool
}

// Begin starts a client transaction (holding the gate).
func (db *DB) Begin() *Txn {
	db.gate.Enter()
	return &Txn{db: db, inner: db.eng.Begin()}
}

// Raw returns the engine-level transaction.
func (t *Txn) Raw() *txn.Txn { return t.inner }

// Exec runs SQL inside the transaction (with migration interception).
func (t *Txn) Exec(src string) (*Result, error) {
	return t.ExecContext(nil, src)
}

// ExecContext is Exec bounded by the statement's context: migration waits
// and lock-queue parking stop when ctx is done, returning its cause. A nil
// ctx waits without cancellation bound. The transaction itself stays open
// either way — the caller decides whether to retry, Commit, or Abort.
func (t *Txn) ExecContext(ctx context.Context, src string) (*Result, error) {
	stmts, err := sql.Parse(src)
	if err != nil {
		return nil, err
	}
	// A client transaction's snapshot is fixed at Begin, so the catalog
	// version it resolves tables through is too — pin it once and intercept
	// every statement against it.
	ver := t.db.eng.CatalogAt(t.inner.Snapshot().Seq)
	var last *Result = &Result{}
	for _, s := range stmts {
		if err := t.db.interceptStmt(ctx, ver, s); err != nil {
			return nil, wrapErr("exec", "", err)
		}
		res, err := t.db.eng.ExecStmtContext(ctx, t.inner, s)
		if err != nil {
			return nil, wrapErr("exec", "", err)
		}
		last = res
	}
	return last, nil
}

// Commit commits and releases the gate.
func (t *Txn) Commit() error {
	if t.done {
		return txn.ErrTxnDone
	}
	t.done = true
	defer t.db.gate.Leave()
	return wrapErr("commit", "", t.db.eng.Commit(t.inner))
}

// Abort rolls back and releases the gate. With commit-time batch logging the
// transaction's buffered redo is dropped without touching the log, so the
// rollback cannot fail on a bad log device.
func (t *Txn) Abort() error {
	if t.done {
		return nil
	}
	t.done = true
	defer t.db.gate.Leave()
	return wrapErr("abort", "", t.db.eng.Abort(t.inner))
}
