package bullfrog_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"io"
	"testing"
	"time"

	"github.com/bullfrogdb/bullfrog"
	"github.com/bullfrogdb/bullfrog/internal/core"
	"github.com/bullfrogdb/bullfrog/internal/wal"
)

// peopleSplit is the shared migration for the crash tests: people ->
// people_city, OneToOne, bitmap tracker.
func peopleSplit() *bullfrog.Migration {
	return &bullfrog.Migration{
		Name:  "people-split",
		Setup: `CREATE TABLE people_city (id INT PRIMARY KEY, city CHAR(16))`,
		Statements: []*bullfrog.Statement{{
			Name: "people-split", Driving: "p", Category: bullfrog.OneToOne,
			Outputs: []bullfrog.OutputSpec{{
				Table: "people_city",
				Def:   bullfrog.MustQuery(`SELECT id, city FROM people p`),
			}},
		}},
		RetireInputs: []string{"people"},
	}
}

func seedPeople(t *testing.T, db *bullfrog.DB) {
	t.Helper()
	if _, err := db.Exec(`CREATE TABLE people (id INT PRIMARY KEY, name CHAR(16), city CHAR(16))`); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 40; i++ {
		if _, err := db.Exec(
			`INSERT INTO people VALUES (` + itoa(i) + `, 'name-` + itoa(i) + `', 'city-` + itoa(i%5) + `')`); err != nil {
			t.Fatal(err)
		}
	}
}

// recordEnds parses the WAL framing and returns, for each record, its end
// offset (a valid truncation boundary) and its type byte.
func recordEnds(log []byte) (ends []int, types []wal.RecType) {
	for o := 0; o+8 <= len(log); {
		size := int(binary.LittleEndian.Uint32(log[o : o+4]))
		next := o + 8 + size
		if next > len(log) {
			break
		}
		types = append(types, wal.RecType(log[o+8]))
		ends = append(ends, next)
		o = next
	}
	return ends, types
}

// TestCrashAtEveryRecordBoundary truncates the log at every record boundary
// in the migration window (the first RecInstall onward) and asserts the
// recovered tracker state matches what a never-crashed run that committed
// exactly the surviving transactions would hold — and that finishing the
// migration afterwards is still exactly-once. Table-driven over the log
// producer: lazy per-access migration and the multi-step baseline's copier.
func TestCrashAtEveryRecordBoundary(t *testing.T) {
	cases := []struct {
		name    string
		produce func(t *testing.T) []byte
	}{
		{name: "lazy", produce: func(t *testing.T) []byte {
			var logBuf bytes.Buffer
			logger := wal.NewWriter(&logBuf)
			db := bullfrog.Open(bullfrog.Options{WAL: logger})
			seedPeople(t, db)
			if err := db.Migrate(peopleSplit(), bullfrog.MigrateOptions{BackgroundDelay: -1}); err != nil {
				t.Fatal(err)
			}
			for _, id := range []int{5, 6, 17} {
				if _, err := db.Query(`SELECT * FROM people_city WHERE id = ` + itoa(id)); err != nil {
					t.Fatal(err)
				}
			}
			if err := logger.Flush(); err != nil {
				t.Fatal(err)
			}
			return append([]byte(nil), logBuf.Bytes()...)
		}},
		{name: "multistep", produce: func(t *testing.T) []byte {
			var logBuf bytes.Buffer
			logger := wal.NewWriter(&logBuf)
			db := bullfrog.Open(bullfrog.Options{WAL: logger})
			seedPeople(t, db)
			ms, err := db.MigrateMultiStep(peopleSplit())
			if err != nil {
				t.Fatal(err)
			}
			deadline := time.Now().Add(10 * time.Second)
			for !ms.Complete() {
				if time.Now().After(deadline) {
					t.Fatal("multistep copier did not finish")
				}
				time.Sleep(2 * time.Millisecond)
			}
			ms.Stop()
			if err := logger.Flush(); err != nil {
				t.Fatal(err)
			}
			return append([]byte(nil), logBuf.Bytes()...)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			log := tc.produce(t)
			ends, types := recordEnds(log)
			// The interesting window: the record before the migration's first
			// RecInstall (or first RecMigrated — multi-step's shadow
			// registration does not install) through the end of the log.
			start := 0
			for i, rt := range types {
				if rt == wal.RecInstall || rt == wal.RecMigrated {
					start = i
					if i > 0 {
						start = i - 1
					}
					break
				}
			}
			for _, cut := range ends[start:] {
				prefix := log[:cut]
				// The never-crashed reference: a run that committed exactly the
				// transactions whose commit records survive the cut would have
				// marked exactly their RecMigrated granules.
				committed, err := wal.CommittedSet(bytes.NewReader(prefix))
				if err != nil {
					t.Fatalf("cut %d: %v", cut, err)
				}
				wantMigrated, wantRows := 0, 0
				err = wal.Replay(bytes.NewReader(prefix), func(rec wal.Record) error {
					if !committed[rec.XID] {
						return nil
					}
					switch {
					case rec.Type == wal.RecMigrated:
						wantMigrated++
					case rec.Type == wal.RecInsert && rec.Table == "people":
						// Each surviving source row ends up in people_city
						// exactly once after the migration completes.
						wantRows++
					}
					return nil
				})
				if err != nil {
					t.Fatalf("cut %d: %v", cut, err)
				}

				db := bullfrog.Open(bullfrog.Options{})
				if _, err := db.Exec(`CREATE TABLE people (id INT PRIMARY KEY, name CHAR(16), city CHAR(16))`); err != nil {
					t.Fatal(err)
				}
				if err := db.Migrate(peopleSplit(), bullfrog.MigrateOptions{BackgroundDelay: -1}); err != nil {
					t.Fatal(err)
				}
				if _, err := db.Controller().Recover(func() (io.Reader, error) {
					return bytes.NewReader(prefix), nil
				}); err != nil {
					t.Fatalf("cut %d: recover: %v", cut, err)
				}
				got := db.Controller().RuntimeFor("people_city").Tracker().MigratedCount()
				if got != int64(wantMigrated) {
					t.Fatalf("cut %d: tracker restored %d granules, never-crashed run has %d", cut, got, wantMigrated)
				}
				// Finishing must be exactly-once: re-migrating an already-moved
				// granule would collide on the primary key.
				bg := core.NewBackground(db.Controller(), 0)
				bg.Start()
				bg.Wait()
				if err := bg.Err(); err != nil {
					t.Fatalf("cut %d: completing after recovery: %v", cut, err)
				}
				res, err := db.Query(`SELECT COUNT(*) FROM people_city`)
				if err != nil {
					t.Fatalf("cut %d: %v", cut, err)
				}
				if res.Rows[0][0].Int() != int64(wantRows) {
					t.Fatalf("cut %d: %v rows after completion, want %d", cut, res.Rows[0][0], wantRows)
				}
			}
		})
	}
}

// TestCheckpointBoundsRecovery runs a migration against a segmented log
// directory, checkpoints mid-migration, "crashes", and recovers from the
// checkpoint. The recovered state must match a full-replay run, and the
// replay itself must be bounded: only records after the checkpoint cut are
// read.
func TestCheckpointBoundsRecovery(t *testing.T) {
	dir := t.TempDir()
	wdir, err := wal.OpenDir(dir, wal.DirOptions{SegmentSize: 1 << 12, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	db := bullfrog.Open(bullfrog.Options{WAL: wdir})
	seedPeople(t, db)
	if err := db.Migrate(peopleSplit(), bullfrog.MigrateOptions{BackgroundDelay: -1}); err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{5, 6, 17} {
		if _, err := db.Query(`SELECT * FROM people_city WHERE id = ` + itoa(id)); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := db.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint activity: two more lazily migrated rows, landing in
	// segments above the checkpoint cut.
	for _, id := range []int{20, 21} {
		if _, err := db.Query(`SELECT * FROM people_city WHERE id = ` + itoa(id)); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: abandon db without Close; reopen the directory for recovery.
	if err := wdir.Close(); err != nil {
		t.Fatal(err)
	}

	src, err := wal.OpenRecovery(dir)
	if err != nil {
		t.Fatal(err)
	}
	if src.Meta == nil {
		t.Fatal("no checkpoint found after Checkpoint()")
	}
	db2 := bullfrog.Open(bullfrog.Options{})
	if _, err := db2.Exec(`CREATE TABLE people (id INT PRIMARY KEY, name CHAR(16), city CHAR(16))`); err != nil {
		t.Fatal(err)
	}
	if err := db2.Migrate(peopleSplit(), bullfrog.MigrateOptions{BackgroundDelay: -1}); err != nil {
		t.Fatal(err)
	}
	stats, err := db2.Controller().RecoverFrom(src)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.FromCheckpoint {
		t.Error("recovery did not use the checkpoint")
	}
	if stats.SnapshotRows == 0 {
		t.Error("checkpoint snapshot carried no rows")
	}
	// 3 granules from the checkpoint + 2 replayed from post-checkpoint
	// segments.
	if got := db2.Controller().RuntimeFor("people_city").Tracker().MigratedCount(); got != 5 {
		t.Errorf("tracker restored %d granules, want 5", got)
	}
	res, err := db2.Query(`SELECT COUNT(*) FROM people_city WHERE id = 20`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 1 {
		t.Errorf("post-checkpoint migrated row lost: %v", res.Rows[0][0])
	}
	bg := core.NewBackground(db2.Controller(), 0)
	bg.Start()
	bg.Wait()
	if err := bg.Err(); err != nil {
		t.Fatal(err)
	}
	res, err = db2.Query(`SELECT COUNT(*) FROM people_city`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 40 {
		t.Errorf("rows after completion: %v, want 40", res.Rows[0][0])
	}
}
