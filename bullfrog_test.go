package bullfrog

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/bullfrogdb/bullfrog/internal/core"
)

// flightsDB builds the paper's §2.1 running example: FLIGHTS and FLEWON.
func flightsDB(t *testing.T) *DB {
	t.Helper()
	db := Open(Options{})
	_, err := db.Exec(`
		CREATE TABLE flights (
			flightid CHAR(6) PRIMARY KEY, source CHAR(3), dest CHAR(3),
			airlineid CHAR(2), departure_time TIMESTAMP, arrival_time TIMESTAMP,
			capacity INT);
		CREATE TABLE flewon (
			flightid CHAR(6), flightdate DATE,
			passenger_count INT CHECK (passenger_count > 0));
		CREATE INDEX flewon_flightid_idx ON flewon (flightid);
		INSERT INTO flights VALUES
			('AA101','JFK','SFO','AA','2021-06-01 08:00:00','2021-06-01 11:30:00',180),
			('UA202','LAX','ORD','UA','2021-06-01 09:00:00','2021-06-01 15:00:00',220),
			('DL303','ATL','MIA','DL','2021-06-01 07:00:00','2021-06-01 09:00:00',160);
		INSERT INTO flewon VALUES
			('AA101','2021-06-09',150), ('AA101','2021-06-10',160),
			('UA202','2021-06-09',200), ('UA202','2021-06-10',210),
			('DL303','2021-06-09',100);`)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// flewonInfoMigration is the paper's migration DDL (§2.1): rename FLEWON to
// FLEWONINFO, add the derived EMPTY_SEATS, add actual departure/arrival
// columns, and drop the passenger_count > 0 constraint (the
// backwards-incompatible change).
func flewonInfoMigration() *Migration {
	return &Migration{
		Name: "flewoninfo",
		Setup: `CREATE TABLE flewoninfo (
			fid CHAR(6), flightdate DATE, passenger_count INT,
			empty_seats INT,
			expected_departure_time TIMESTAMP, actual_departure_time TIMESTAMP,
			expected_arrival_time TIMESTAMP, actual_arrival_time TIMESTAMP);
			CREATE INDEX flewoninfo_fid_idx ON flewoninfo (fid);`,
		Statements: []*Statement{{
			Name:     "flewoninfo",
			Driving:  "fi",
			Category: OneToOne, // FK-side of an FK-PK join (paper §3.6 option 2)
			Outputs: []OutputSpec{{
				Table: "flewoninfo",
				Def: MustQuery(`SELECT f.flightid AS fid, flightdate, passenger_count,
					(capacity - passenger_count) AS empty_seats,
					departure_time AS expected_departure_time,
					NULL AS actual_departure_time,
					arrival_time AS expected_arrival_time,
					NULL AS actual_arrival_time
					FROM flights f, flewon fi
					WHERE f.flightid = fi.flightid`),
			}},
		}},
		RetireInputs: []string{"flewon"},
	}
}

func TestPaperQuickstartFlow(t *testing.T) {
	db := flightsDB(t)
	if err := db.Migrate(flewonInfoMigration(), MigrateOptions{BackgroundDelay: -1}); err != nil {
		t.Fatal(err)
	}
	// The old table is rejected (big flip).
	if _, err := db.Query(`SELECT * FROM flewon`); !errors.Is(err, core.ErrRetiredTable) {
		t.Fatalf("retired table access: %v", err)
	}
	// The paper's client request: lazily migrates only AA101 day-9 rows.
	res, err := db.Query(`SELECT * FROM flewoninfo WHERE fid = 'AA101' AND EXTRACT(DAY FROM flightdate) = 9`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows: %v", res.Rows)
	}
	// empty_seats = 180 - 150.
	idx := -1
	for i, c := range res.Columns {
		if c == "empty_seats" {
			idx = i
		}
	}
	if idx < 0 || res.Rows[0][idx].Int() != 30 {
		t.Errorf("empty_seats: %v (cols %v)", res.Rows[0], res.Columns)
	}
	// Physically, only the AA101 tuples were migrated (the day-9 predicate
	// is applied on flewon; day-10's AA101 row may migrate too since the
	// tracker works per scanned predicate — assert the superset bound:
	// strictly fewer than all 5 rows).
	rt := db.Controller().RuntimeFor("flewoninfo")
	if got := rt.Tracker().MigratedCount(); got != 1 {
		t.Errorf("migrated granules = %d, want 1 (only the day-9 AA101 tuple)", got)
	}
	// The dropped CHECK constraint: inserting zero passengers now works
	// (the backwards-incompatible part of the paper's example).
	if _, err := db.Exec(`INSERT INTO flewoninfo (fid, flightdate, passenger_count)
		VALUES ('AA101', '2021-06-11', 0)`); err != nil {
		t.Fatalf("post-migration insert: %v", err)
	}
	// Aggregate over the whole new table forces full migration of flewon.
	res, err = db.Query(`SELECT COUNT(*) FROM flewoninfo`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 6 { // 5 migrated + 1 inserted
		t.Errorf("count: %v", res.Rows[0][0])
	}
	if !db.MigrationComplete() {
		t.Error("full-scan query should have completed the migration")
	}
}

func TestMigrateWithBackgroundFinishes(t *testing.T) {
	db := flightsDB(t)
	if err := db.Migrate(flewonInfoMigration(), MigrateOptions{BackgroundDelay: 0}); err != nil {
		t.Fatal(err)
	}
	if err := awaitMigration(db, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	res, _ := db.Query(`SELECT COUNT(*) FROM flewoninfo`)
	if res.Rows[0][0].Int() != 5 {
		t.Errorf("rows after background completion: %v", res.Rows[0][0])
	}
	if bg := db.Background(); bg == nil || bg.Err() != nil {
		t.Errorf("background state: %v", bg)
	}
}

func TestUpdateAndDeleteDriveMigration(t *testing.T) {
	db := flightsDB(t)
	db.Migrate(flewonInfoMigration(), MigrateOptions{BackgroundDelay: -1})
	// UPDATE on the new schema rewrites into migrate-then-update (§2.1).
	res, err := db.Exec(`UPDATE flewoninfo SET actual_departure_time = '2021-06-09 08:15:00'
		WHERE fid = 'UA202' AND EXTRACT(DAY FROM flightdate) = 9`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 1 {
		t.Errorf("update affected %d", res.Affected)
	}
	got, _ := db.Query(`SELECT actual_departure_time FROM flewoninfo WHERE fid = 'UA202' AND EXTRACT(DAY FROM flightdate) = 9`)
	if len(got.Rows) != 1 || got.Rows[0][0].IsNull() {
		t.Errorf("updated row: %v", got.Rows)
	}
	// DELETE likewise.
	res, err = db.Exec(`DELETE FROM flewoninfo WHERE fid = 'DL303'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 1 {
		t.Errorf("delete affected %d", res.Affected)
	}
	left, _ := db.Query(`SELECT COUNT(*) FROM flewoninfo WHERE fid = 'DL303'`)
	if left.Rows[0][0].Int() != 0 {
		t.Error("deleted row still visible")
	}
}

func TestEagerFacade(t *testing.T) {
	db := flightsDB(t)
	res, err := db.MigrateEager(flewonInfoMigration())
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 5 {
		t.Errorf("eager rows = %d", res.Rows)
	}
	got, err := db.Query(`SELECT COUNT(*) FROM flewoninfo`)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows[0][0].Int() != 5 {
		t.Errorf("count: %v", got.Rows[0][0])
	}
}

func TestTxnFacade(t *testing.T) {
	db := Open(Options{})
	db.Exec(`CREATE TABLE t (a INT PRIMARY KEY, b INT)`)
	tx := db.Begin()
	if _, err := tx.Exec(`INSERT INTO t VALUES (1, 10)`); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := db.Begin()
	tx2.Exec(`UPDATE t SET b = 99 WHERE a = 1`)
	tx2.Abort()
	res, _ := db.Query(`SELECT b FROM t WHERE a = 1`)
	if res.Rows[0][0].Int() != 10 {
		t.Errorf("abort failed: %v", res.Rows[0][0])
	}
	// Double commit/abort are safe.
	if err := tx.Commit(); err == nil {
		t.Error("double commit should fail")
	}
	tx2.Abort()
}

func TestOnConflictModeFacade(t *testing.T) {
	db := Open(Options{ConflictMode: DetectOnInsert})
	if _, err := db.Exec(`
		CREATE TABLE src (a INT PRIMARY KEY, b INT);
		INSERT INTO src VALUES (1, 10), (2, 20), (3, 30);`); err != nil {
		t.Fatal(err)
	}
	m := &Migration{
		Name:  "copy",
		Setup: `CREATE TABLE dst (a INT PRIMARY KEY, b INT)`,
		Statements: []*Statement{{
			Name: "copy", Driving: "s", Category: OneToOne,
			Outputs: []OutputSpec{{Table: "dst", Def: MustQuery(`SELECT a, b FROM src s`)}},
		}},
		RetireInputs: []string{"src"},
	}
	if err := db.Migrate(m, MigrateOptions{BackgroundDelay: 0}); err != nil {
		t.Fatal(err)
	}
	if err := awaitMigration(db, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	res, _ := db.Query(`SELECT COUNT(*) FROM dst`)
	if res.Rows[0][0].Int() != 3 {
		t.Errorf("on-conflict migration rows: %v", res.Rows[0][0])
	}
}

func TestExplainThroughFacade(t *testing.T) {
	db := flightsDB(t)
	res, err := db.Query(`EXPLAIN SELECT * FROM flights WHERE flightid = 'AA101'`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Explain, "Index Scan") {
		t.Errorf("explain:\n%s", res.Explain)
	}
}

// awaitMigration bounds AwaitMigration with a timeout.
func awaitMigration(db *DB, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return db.AwaitMigration(ctx)
}
