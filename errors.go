package bullfrog

import (
	"errors"
	"fmt"

	"github.com/bullfrogdb/bullfrog/internal/catalog"
	"github.com/bullfrogdb/bullfrog/internal/core"
	"github.com/bullfrogdb/bullfrog/internal/engine"
	"github.com/bullfrogdb/bullfrog/internal/schemaver"
	"github.com/bullfrogdb/bullfrog/internal/txn"
)

// Code classifies a facade error as a stable "package.name" identifier —
// what a caller switches on instead of matching message text. The full table
// (with the sentinel each code wraps) is documented in the README.
type Code string

// Error codes returned at the facade boundary.
const (
	// CodeGateClosed: the database handle is closed (ErrClosed).
	CodeGateClosed Code = "gate.closed"
	// CodeMigrateActive: a migration is already registered; Reset it first
	// (core.ErrMigrationActive).
	CodeMigrateActive Code = "migrate.active"
	// CodeLockTimeout: a row/key lock wait expired — the deadlock-resolution
	// signal; retry the transaction (txn.ErrLockTimeout).
	CodeLockTimeout Code = "txn.lock_timeout"
	// CodeSerialization: first-updater-wins write-write conflict; retry the
	// transaction (txn.ErrSerialization).
	CodeSerialization Code = "txn.serialization"
	// CodeWALAppend: the redo log rejected an append or flush — durability is
	// compromised (engine.ErrWALAppend).
	CodeWALAppend Code = "wal.append"
	// CodeVersionConflict: a catalog version install raced another at the
	// same commit barrier (catalog.ErrVersionConflict).
	CodeVersionConflict Code = "catalog.version_conflict"
	// CodeRetiredTable: the statement touches a table retired by the big
	// flip; reissue it against the new schema (core.ErrRetiredTable).
	CodeRetiredTable Code = "catalog.retired"
	// CodeSchemaBreaking: the migration is classified breaking — it retires a
	// table without migrating its data — and MigrateOptions.Force was not set
	// (schemaver.ErrBreaking).
	CodeSchemaBreaking Code = "schemaver.breaking"
	// CodeSchemaLossy: no faithful inverse migration exists for the requested
	// rollback; the message carries the lost-column witness
	// (schemaver.ErrLossy).
	CodeSchemaLossy Code = "schemaver.lossy"
)

// Sentinel errors re-exported so callers can errors.Is against facade errors
// without importing internal packages. ErrClosed lives in bullfrog.go.
var (
	// ErrLockTimeout is the sentinel under CodeLockTimeout errors.
	ErrLockTimeout = txn.ErrLockTimeout
	// ErrSerialization is the sentinel under CodeSerialization errors.
	ErrSerialization = txn.ErrSerialization
	// ErrRetiredTable is the sentinel under CodeRetiredTable errors.
	ErrRetiredTable = core.ErrRetiredTable
	// ErrMigrationActive is the sentinel under CodeMigrateActive errors.
	ErrMigrationActive = core.ErrMigrationActive
	// ErrVersionConflict is the sentinel under CodeVersionConflict errors.
	ErrVersionConflict = catalog.ErrVersionConflict
	// ErrWALAppend is the sentinel under CodeWALAppend errors.
	ErrWALAppend = engine.ErrWALAppend
	// ErrSchemaBreaking is the sentinel under CodeSchemaBreaking errors.
	ErrSchemaBreaking = schemaver.ErrBreaking
	// ErrSchemaLossy is the sentinel under CodeSchemaLossy errors.
	ErrSchemaLossy = schemaver.ErrLossy
)

// Error is the facade's structured error: a stable Code, the operation that
// failed, the table involved when known, and the underlying cause. It
// supports errors.Is/As through Unwrap, so both
// errors.Is(err, bullfrog.ErrLockTimeout) and matching on
// (*bullfrog.Error).Code work.
type Error struct {
	Code  Code
	Op    string // facade operation: "exec", "commit", "migrate", ...
	Table string // table involved, when known ("" otherwise)
	Err   error
}

// Error renders "bullfrog: <op> [table]: [code] cause".
func (e *Error) Error() string {
	if e.Table != "" {
		return fmt.Sprintf("bullfrog: %s %s: [%s] %v", e.Op, e.Table, e.Code, e.Err)
	}
	return fmt.Sprintf("bullfrog: %s: [%s] %v", e.Op, e.Code, e.Err)
}

// Unwrap exposes the cause for errors.Is/As chains.
func (e *Error) Unwrap() error { return e.Err }

// wrapErr classifies err against the code table and wraps it in *Error.
// Errors outside the taxonomy (parse errors, constraint violations, plain
// context cancellation, ...) pass through unchanged — a code promises
// stability, so only deliberate mappings get one. Already-wrapped errors
// pass through so codes assigned close to the failure (with a table name)
// survive outer boundaries.
func wrapErr(op, table string, err error) error {
	if err == nil {
		return nil
	}
	var fe *Error
	if errors.As(err, &fe) {
		return err
	}
	code, ok := codeFor(err)
	if !ok {
		return err
	}
	return &Error{Code: code, Op: op, Table: table, Err: err}
}

func codeFor(err error) (Code, bool) {
	switch {
	case errors.Is(err, ErrClosed):
		return CodeGateClosed, true
	case errors.Is(err, core.ErrMigrationActive):
		return CodeMigrateActive, true
	case errors.Is(err, txn.ErrLockTimeout):
		return CodeLockTimeout, true
	case errors.Is(err, txn.ErrSerialization):
		return CodeSerialization, true
	case errors.Is(err, engine.ErrWALAppend):
		return CodeWALAppend, true
	case errors.Is(err, catalog.ErrVersionConflict):
		return CodeVersionConflict, true
	case errors.Is(err, core.ErrRetiredTable):
		return CodeRetiredTable, true
	case errors.Is(err, schemaver.ErrBreaking):
		return CodeSchemaBreaking, true
	case errors.Is(err, schemaver.ErrLossy):
		return CodeSchemaLossy, true
	default:
		return "", false
	}
}
