package bullfrog_test

// Benchmarks for the parallel backfill pool (drain time vs worker count, for
// both tracker kinds) and the plan cache (cold vs warm point selects).
// `make bench` runs these and then regenerates results/BENCH_backfill.json,
// the figure-style timeline for the same scaling question under TPC-C load.

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/bullfrogdb/bullfrog"
)

const drainRows = 4000

// drainSrcDB builds a database with one populated source table.
func drainSrcDB(b *testing.B) *bullfrog.DB {
	b.Helper()
	db := bullfrog.Open(bullfrog.Options{})
	if _, err := db.Exec(`CREATE TABLE src (a INT PRIMARY KEY, grp INT, v INT)`); err != nil {
		b.Fatal(err)
	}
	for lo := 0; lo < drainRows; lo += 200 {
		var sb strings.Builder
		sb.WriteString(`INSERT INTO src VALUES `)
		for i := lo; i < lo+200; i++ {
			if i > lo {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, %d, %d)", i, i%100, i)
		}
		if _, err := db.Exec(sb.String()); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

// bitmapDrainMigration is a OneToOne copy: bitmap-tracked, granule-striped.
func bitmapDrainMigration() *bullfrog.Migration {
	return &bullfrog.Migration{
		Name:  "copy",
		Setup: `CREATE TABLE dst (a INT PRIMARY KEY, grp INT, v INT)`,
		Statements: []*bullfrog.Statement{{
			Name: "copy", Driving: "s", Category: bullfrog.OneToOne,
			Outputs: []bullfrog.OutputSpec{{
				Table: "dst",
				Def:   bullfrog.MustQuery(`SELECT a, grp, v FROM src s`),
			}},
		}},
		RetireInputs: []string{"src"},
	}
}

// hashDrainMigration is a ManyToOne aggregation: hash-tracked, chunk-cursor.
func hashDrainMigration() *bullfrog.Migration {
	return &bullfrog.Migration{
		Name:  "totals",
		Setup: `CREATE TABLE totals (grp INT PRIMARY KEY, total INT)`,
		Statements: []*bullfrog.Statement{{
			Name: "totals", Driving: "s", Category: bullfrog.ManyToOne,
			GroupBy: []string{"grp"},
			Outputs: []bullfrog.OutputSpec{{
				Table: "totals",
				Def:   bullfrog.MustQuery(`SELECT grp, SUM(v) AS total FROM src s GROUP BY grp`),
			}},
		}},
	}
}

// BenchmarkBackfillDrain measures wall-clock time for the background pool to
// drain a whole migration with no foreground traffic, per tracker kind and
// worker count. On a multi-core machine the bitmap drain scales with workers
// (independent granule stripes); the hash drain scales until group transform
// cost dominates. On a single core the counts should roughly tie — the
// interesting regressions are 1-worker slowdowns (pool overhead) there.
func BenchmarkBackfillDrain(b *testing.B) {
	for _, kind := range []struct {
		name string
		mig  func() *bullfrog.Migration
	}{
		{"bitmap", bitmapDrainMigration},
		{"hash", hashDrainMigration},
	} {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", kind.name, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					db := drainSrcDB(b)
					b.StartTimer()
					if err := db.Migrate(kind.mig(), bullfrog.MigrateOptions{
						BackgroundDelay:   0,
						BackgroundWorkers: workers,
					}); err != nil {
						b.Fatal(err)
					}
					ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
					if err := db.AwaitMigration(ctx); err != nil {
						b.Fatal(err)
					}
					cancel()
					b.StopTimer()
					snap := db.Metrics()
					b.ReportMetric(float64(snap.Migration.TuplesBackground), "tuples-bg")
					db.Close()
					b.StartTimer()
				}
			})
		}
	}
}

// BenchmarkPointSelectPlanCache measures point-select execution with the
// plan cache cold (invalidated before every statement, so each Exec pays
// parse + plan) versus warm (steady-state: parse + cache hit + execute).
func BenchmarkPointSelectPlanCache(b *testing.B) {
	setup := func(b *testing.B) *bullfrog.DB {
		b.Helper()
		db := bullfrog.Open(bullfrog.Options{})
		if _, err := db.Exec(`CREATE TABLE t (a INT PRIMARY KEY, v INT);
			INSERT INTO t VALUES (1, 10), (2, 20), (3, 30), (4, 40)`); err != nil {
			b.Fatal(err)
		}
		return db
	}
	b.Run("cold", func(b *testing.B) {
		db := setup(b)
		defer db.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			db.Engine().InvalidatePlans()
			if _, err := db.Query(`SELECT v FROM t WHERE a = 2`); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		db := setup(b)
		defer db.Close()
		if _, err := db.Query(`SELECT v FROM t WHERE a = 2`); err != nil {
			b.Fatal(err)
		}
		reused0 := db.Metrics().Engine.PlansReused
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(`SELECT v FROM t WHERE a = 2`); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if got := db.Metrics().Engine.PlansReused - reused0; got < int64(b.N) {
			b.Fatalf("plan reuse = %d over %d warm iterations", got, b.N)
		}
	})
}
