package bullfrog

import (
	"fmt"
	"sync"
	"testing"
)

// TestMetricsTablesIndependentlyOwned is the regression test for the shared
// progress-tables bug: Metrics() used to attach Migration.Tables to the
// snapshot after Obs().Snapshot() returned, so concurrent callers could see
// (and race on) each other's table slices. Every snapshot must now be
// complete on return and own its Tables outright — scribbling on one caller's
// snapshot must never leak into another's. Run under -race, the concurrent
// Metrics/Exec traffic also proves the assembly itself is data-race-free.
func TestMetricsTablesIndependentlyOwned(t *testing.T) {
	const rows = 128
	db := copySrcDB(t, rows)
	defer db.Close()
	if err := db.Migrate(copyMigration(8), MigrateOptions{BackgroundDelay: 0}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	// Drive lazy migration so progress moves while snapshots are taken.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rows; i++ {
			q := fmt.Sprintf(`SELECT b FROM dst WHERE a = %d`, i)
			for attempt := 0; attempt < 10; attempt++ {
				if _, err := db.Exec(q); err == nil {
					break
				}
			}
		}
	}()

	const readers = 6
	finals := make([]MetricsSnapshot, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				s := db.Metrics()
				if len(s.Migration.Tables) == 0 {
					t.Errorf("reader %d: snapshot missing progress tables", r)
					return
				}
				// Deliberately deface this snapshot. If Tables were shared
				// with other snapshots (or with the controller), the scribble
				// would show up elsewhere.
				s.Migration.Tables[0].Statement = "scribble"
				s.Migration.Tables[0].Migrated = -99
			}
			finals[r] = db.Metrics()
		}(r)
	}
	wg.Wait()

	for r, s := range finals {
		if len(s.Migration.Tables) == 0 {
			t.Fatalf("reader %d: final snapshot missing progress tables", r)
		}
		if got := s.Migration.Tables[0].Statement; got != "copy" {
			t.Errorf("reader %d: table statement = %q, want %q (snapshot not independently owned)", r, got, "copy")
		}
		if s.Migration.Tables[0].Migrated < 0 {
			t.Errorf("reader %d: migrated count defaced to %d", r, s.Migration.Tables[0].Migrated)
		}
	}
}
