package bullfrog

import (
	"encoding/json"
	"net/http"

	"github.com/bullfrogdb/bullfrog/internal/core"
	"github.com/bullfrogdb/bullfrog/internal/obs"
	"github.com/bullfrogdb/bullfrog/internal/obs/trace"
)

// MetricsSnapshot is a point-in-time view of the database's internal
// metrics: per-statement-kind execution latency, transaction outcomes,
// WAL volume, and lazy-migration progress. See internal/obs for the
// full inventory.
type MetricsSnapshot = obs.Snapshot

// TraceSnapshot is the structured-tracing view served by TraceHandler:
// the event ring's surviving window, the currently active spans, recent
// slow ops, and cumulative per-phase time.
type TraceSnapshot = trace.Snapshot

// MigrationProgress is the live progress/ETA surface: per-table granules
// done/total, rows migrated, current batch size and worker count, and a
// throughput-window ETA. The shell's \top view renders it.
type MigrationProgress = core.ProgressReport

// Metrics returns a consistent-enough snapshot of all internal metrics.
// Counters are read atomically (each individually exact; cross-counter
// skew is bounded by in-flight operations). Safe to call concurrently
// with any workload; the hot paths it observes are lock-free. The
// returned snapshot is complete on return — including the per-table
// migration progress — and never mutated afterwards.
func (db *DB) Metrics() MetricsSnapshot {
	return db.eng.Obs().SnapshotWithTables(db.ctrl.ProgressTables())
}

// MetricsHandler returns an http.Handler serving the current metrics:
// plain text by default, JSON when the request asks for it (via
// `Accept: application/json` or `?format=json`). Mount it wherever the
// embedding application serves diagnostics:
//
//	mux.Handle("/metrics", db.MetricsHandler())
func (db *DB) MetricsHandler() http.Handler {
	return obs.Handler(func() obs.Snapshot { return db.Metrics() })
}

// Trace returns the current trace snapshot. With tracing disabled
// (Options.Trace unset) the snapshot is the zero value with Enabled false.
func (db *DB) Trace() TraceSnapshot { return db.tracer.Snapshot() }

// TraceHandler returns an http.Handler serving the trace snapshot as JSON:
//
//	mux.Handle("/trace", db.TraceHandler())
func (db *DB) TraceHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(db.Trace())
	})
}

// TracePhaseTotals returns cumulative per-phase span time in nanoseconds
// across every span the tracer has seen — the cheap poll the bench sampler
// uses for phase-attributed timelines. Nil with tracing disabled.
func (db *DB) TracePhaseTotals() map[string]int64 { return db.tracer.PhaseTotals() }

// MigrationProgress reports the active migration's live progress with a
// throughput-window ETA per table. Calling it periodically (as the shell's
// \top refresh does) feeds the rate window; it works with tracing disabled.
func (db *DB) MigrationProgress() MigrationProgress {
	return db.ctrl.ProgressReport()
}
