package bullfrog

import (
	"net/http"

	"github.com/bullfrogdb/bullfrog/internal/obs"
)

// MetricsSnapshot is a point-in-time view of the database's internal
// metrics: per-statement-kind execution latency, transaction outcomes,
// WAL volume, and lazy-migration progress. See internal/obs for the
// full inventory.
type MetricsSnapshot = obs.Snapshot

// Metrics returns a consistent-enough snapshot of all internal metrics.
// Counters are read atomically (each individually exact; cross-counter
// skew is bounded by in-flight operations). Safe to call concurrently
// with any workload; the hot paths it observes are lock-free.
func (db *DB) Metrics() MetricsSnapshot {
	snap := db.eng.Obs().Snapshot()
	snap.Migration.Tables = db.ctrl.ProgressTables()
	return snap
}

// MetricsHandler returns an http.Handler serving the current metrics:
// plain text by default, JSON when the request asks for it (via
// `Accept: application/json` or `?format=json`). Mount it wherever the
// embedding application serves diagnostics:
//
//	mux.Handle("/metrics", db.MetricsHandler())
func (db *DB) MetricsHandler() http.Handler {
	return obs.Handler(func() obs.Snapshot { return db.Metrics() })
}
