package core

import (
	"testing"
	"time"

	"github.com/bullfrogdb/bullfrog/internal/engine"
	"github.com/bullfrogdb/bullfrog/internal/types"
)

// TestMultiStepPropagatesSecondaryTableWrites: during a multi-step window
// over a join migration, a write to the secondary (stock-like) table must
// propagate into already-copied groups of the denormalized output.
func TestMultiStepPropagatesSecondaryTableWrites(t *testing.T) {
	db := engine.New(engine.Options{})
	mustExec(t, db, `
		CREATE TABLE ol (w INT, o INT, i INT, qty INT, PRIMARY KEY (w, o, i));
		CREATE TABLE stock (s_w INT, s_i INT, s_qty INT, PRIMARY KEY (s_w, s_i));
		INSERT INTO stock VALUES (1, 1, 10), (1, 2, 20);
		INSERT INTO ol VALUES (1, 1, 1, 3), (1, 2, 1, 4), (1, 1, 2, 5);`)
	m := &Migration{
		Name:  "join",
		Setup: `CREATE TABLE ol_stock (w INT, o INT, i INT, qty INT, s_qty INT, UNIQUE (w, i, o))`,
		Statements: []*Statement{{
			Name: "join", Driving: "l", Category: ManyToMany, GroupBy: []string{"w", "i"},
			Outputs: []OutputSpec{{
				Table:  "ol_stock",
				Def:    parseSelect(t, `SELECT l.w, l.o, l.i, l.qty, s.s_qty FROM ol l, stock s WHERE s.s_w = l.w AND s.s_i = l.i`),
				KeyMap: map[string]string{"w": "w", "i": "i"},
			}},
			Seed: &SeedSpec{
				Def:     parseSelect(t, `SELECT s.s_w, NULL AS o, s.s_i, NULL AS qty, s.s_qty FROM stock s`),
				Driving: "s",
				GroupBy: []string{"s_w", "s_i"},
			},
		}},
		RetireInputs: []string{"ol", "stock"},
	}
	ms, err := StartMultiStep(nil, db, m)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Stop()
	// Wait for the copier.
	deadline := time.After(10 * time.Second)
	for !ms.Complete() {
		select {
		case <-deadline:
			t.Fatal("copier never completed")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	// Old-schema write to stock item 1 during the window.
	stockTbl, _ := db.Catalog().Table("stock")
	tx := db.Begin()
	where, _ := parseWhereCore(`s_w = 1 AND s_i = 1`)
	tids, rows, err := db.ScanForWrite(tx, stockTbl, "stock", where)
	if err != nil || len(tids) != 1 {
		t.Fatalf("scan stock: %v %d", err, len(tids))
	}
	newRow := rows[0].Clone()
	newRow[2] = types.NewInt(99)
	if err := db.UpdateRow(tx, stockTbl, tids[0], newRow); err != nil {
		t.Fatal(err)
	}
	if err := db.Commit(tx); err != nil {
		t.Fatal(err)
	}
	// Propagate via the SECONDARY table path.
	if err := ms.NoteWrite("stock", tids, []types.Row{newRow}); err != nil {
		t.Fatal(err)
	}
	// Every copied row of group (1,1) now carries the new stock quantity.
	res := mustSelect(t, db, `SELECT COUNT(*) FROM ol_stock WHERE i = 1 AND s_qty = 99`)
	if res[0][0].Int() != 2 {
		t.Fatalf("propagated rows: %v (stock write lost in the new schema)", res[0][0])
	}
	if err := ms.Switch(); err != nil {
		t.Fatal(err)
	}
}
