package core

import (
	"testing"

	"github.com/bullfrogdb/bullfrog/internal/engine"
)

// TestMigrationStartInvalidatesPlanCache pins the cache-coherence contract:
// starting a migration flips the logical schema (retired inputs, new output
// tables), so every cached plan compiled against the old schema must be
// dropped at Start. Completion with DropInputsOnComplete and Reset drop
// tables outside the SQL DDL path, so they must invalidate too.
func TestMigrationStartInvalidatesPlanCache(t *testing.T) {
	db := engine.New(engine.Options{})
	mig := splitFixture(t, db, 8)

	// Warm the cache against the pre-migration schema.
	mustExec(t, db, `SELECT c_name FROM cust WHERE c_id = 1`)
	if db.PlanCacheLen() == 0 {
		t.Fatal("plan cache should be warm before Start")
	}

	ctrl := NewController(db, DetectEarly)
	if err := ctrl.Start(mig); err != nil {
		t.Fatal(err)
	}
	if got := db.PlanCacheLen(); got != 0 {
		t.Fatalf("plan cache entries after migration Start = %d, want 0", got)
	}

	// Drain, then make sure Reset clears plans cached during the migration
	// window (it drops the retired input via the catalog, not SQL DDL).
	rt := ctrl.Runtimes()[0]
	if err := rt.CatchUp(nil); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `SELECT c_id FROM cust_public WHERE c_id = 2`)
	if db.PlanCacheLen() == 0 {
		t.Fatal("plan cache should be warm before Reset")
	}
	if err := ctrl.Reset(); err != nil {
		t.Fatal(err)
	}
	if got := db.PlanCacheLen(); got != 0 {
		t.Fatalf("plan cache entries after Reset = %d, want 0", got)
	}
}
