package core

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
)

// Bitmap tracks migration and lock status for 1:1 and 1:n migrations using
// two bits per granule (paper §3.3):
//
//	[lock migrate] = [0 0] not started, [1 0] in progress, [0 1] migrated.
//	[1 1] never occurs.
//
// The two bits sit in adjacent positions of a word so both are read
// together. The bitmap is partitioned into chunks, each protected by its own
// latch, to reduce cross-worker contention — exactly the paper's design. A
// granule covers `granuleSize` consecutive tuple ordinals, implementing the
// page-level granularity option of §4.4.3 (granuleSize 1 = tuple level).
//
// The granule count and chunk slice are atomics so the bitmap can Grow while
// readers run lock-free: chained migrations size the bitmap before their
// driving table (an earlier statement's output) reaches its final extent.
type Bitmap struct {
	granules    atomic.Int64
	granuleSize int64
	// chunks points at the current chunk slice. Elements are pointers so a
	// widened slice shares the live chunks — their latches and words must not
	// be copied while workers hold them.
	chunks   atomic.Pointer[[]*bitmapChunk]
	migrated atomic.Int64
	growMu   sync.Mutex
}

// granulesPerChunk must be a multiple of 32 (32 two-bit entries per word).
const granulesPerChunk = 4096

type bitmapChunk struct {
	mu    sync.Mutex
	words []uint64
}

func newBitmapChunks(n int64) []*bitmapChunk {
	chunks := make([]*bitmapChunk, n)
	for i := range chunks {
		chunks[i] = &bitmapChunk{words: make([]uint64, granulesPerChunk/32)}
	}
	return chunks
}

// NewBitmap creates a tracker covering nTuples tuple ordinals at the given
// granularity (tuples per granule; 0 or 1 means tuple-level).
func NewBitmap(nTuples int64, granuleSize int64) *Bitmap {
	if granuleSize <= 0 {
		granuleSize = 1
	}
	granules := (nTuples + granuleSize - 1) / granuleSize
	nChunks := (granules + granulesPerChunk - 1) / granulesPerChunk
	if nChunks == 0 {
		nChunks = 1
	}
	b := &Bitmap{granuleSize: granuleSize}
	b.granules.Store(granules)
	chunks := newBitmapChunks(nChunks)
	b.chunks.Store(&chunks)
	return b
}

// Grow extends the bitmap to cover nTuples tuple ordinals, preserving every
// existing granule's state; it is a no-op when the bitmap already covers
// them. Chained migrations call it once their upstream statement completes:
// the driving heap is frozen at its final size from then on, and the granules
// appended here (all unmigrated) put the tail rows the upstream backfill
// produced under the normal claim/mark protocol.
//
// Publication order matters for the lock-free readers: the widened chunk
// slice is stored before the new granule count, so any reader that observes
// the larger count also finds chunks covering it.
func (b *Bitmap) Grow(nTuples int64) {
	want := (nTuples + b.granuleSize - 1) / b.granuleSize
	if want <= b.granules.Load() {
		return
	}
	b.growMu.Lock()
	defer b.growMu.Unlock()
	if want <= b.granules.Load() {
		return
	}
	old := *b.chunks.Load()
	nChunks := (want + granulesPerChunk - 1) / granulesPerChunk
	if nChunks > int64(len(old)) {
		grown := make([]*bitmapChunk, nChunks)
		copy(grown, old)
		copy(grown[len(old):], newBitmapChunks(nChunks-int64(len(old))))
		b.chunks.Store(&grown)
	}
	b.granules.Store(want)
}

// Granules returns the total number of granules tracked.
func (b *Bitmap) Granules() int64 { return b.granules.Load() }

// GranuleSize returns the tuples-per-granule factor.
func (b *Bitmap) GranuleSize() int64 { return b.granuleSize }

// GranuleOf maps a tuple ordinal to its granule id.
func (b *Bitmap) GranuleOf(tupleOrd int64) int64 { return tupleOrd / b.granuleSize }

// TupleRange returns the [lo, hi) tuple-ordinal range covered by a granule.
func (b *Bitmap) TupleRange(granule int64) (lo, hi int64) {
	return granule * b.granuleSize, (granule + 1) * b.granuleSize
}

const (
	stateNone       = 0b00
	stateInProgress = 0b10 // lock bit set
	stateMigrated   = 0b01 // migrate bit set
)

func (b *Bitmap) locate(granule int64) (*bitmapChunk, int, uint) {
	chunks := *b.chunks.Load()
	chunk := chunks[granule/granulesPerChunk]
	within := granule % granulesPerChunk
	return chunk, int(within / 32), uint(within % 32 * 2)
}

// state reads the two-bit state without the latch (the double-checked fast
// path of Algorithm 2 lines 1-2); the authoritative read repeats under the
// latch.
func (b *Bitmap) state(granule int64) uint64 {
	chunk, word, shift := b.locate(granule)
	return (atomic.LoadUint64(&chunk.words[word]) >> shift) & 0b11
}

// TryClaimGranule implements Algorithm 2 for a granule id.
func (b *Bitmap) TryClaimGranule(granule int64) ClaimResult {
	if granule < 0 || granule >= b.granules.Load() {
		panic(fmt.Sprintf("core: granule %d out of range [0,%d)", granule, b.granules.Load()))
	}
	// Fast path without the latch.
	switch b.state(granule) {
	case stateMigrated:
		return Done
	case stateInProgress:
		return Busy
	}
	chunk, word, shift := b.locate(granule)
	chunk.mu.Lock()
	defer chunk.mu.Unlock()
	// Re-check under the latch (Algorithm 2 lines 5-7). All word accesses
	// are atomic so the unlatched fast path above is race-free.
	cur := (atomic.LoadUint64(&chunk.words[word]) >> shift) & 0b11
	switch cur {
	case stateMigrated:
		return Done
	case stateInProgress:
		return Busy
	}
	atomic.StoreUint64(&chunk.words[word], atomic.LoadUint64(&chunk.words[word])|uint64(stateInProgress)<<shift)
	return Claimed
}

// MarkMigratedGranule transitions in-progress -> migrated ([1 0] -> [0 1]).
func (b *Bitmap) MarkMigratedGranule(granule int64) {
	chunk, word, shift := b.locate(granule)
	chunk.mu.Lock()
	w := atomic.LoadUint64(&chunk.words[word])
	cur := (w >> shift) & 0b11
	if cur != stateInProgress {
		chunk.mu.Unlock()
		panic(fmt.Sprintf("core: MarkMigrated on granule %d in state %02b", granule, cur))
	}
	atomic.StoreUint64(&chunk.words[word], (w&^(0b11<<shift))|(uint64(stateMigrated)<<shift))
	chunk.mu.Unlock()
	b.migrated.Add(1)
}

// ReleaseAbortGranule resets in-progress back to not started ([1 0] -> [0 0],
// §3.5), allowing waiting workers to claim it.
func (b *Bitmap) ReleaseAbortGranule(granule int64) {
	chunk, word, shift := b.locate(granule)
	chunk.mu.Lock()
	w := atomic.LoadUint64(&chunk.words[word])
	if (w>>shift)&0b11 == stateInProgress {
		atomic.StoreUint64(&chunk.words[word], w&^(0b11<<shift))
	}
	chunk.mu.Unlock()
}

// IsMigratedGranule reports whether the granule's migrate bit is set.
func (b *Bitmap) IsMigratedGranule(granule int64) bool {
	return b.state(granule) == stateMigrated
}

// RestoreMigratedGranule force-sets migrated (recovery). Unlike
// MarkMigratedGranule it accepts any prior state.
func (b *Bitmap) RestoreMigratedGranule(granule int64) {
	chunk, word, shift := b.locate(granule)
	chunk.mu.Lock()
	w := atomic.LoadUint64(&chunk.words[word])
	if (w>>shift)&0b11 != stateMigrated {
		atomic.StoreUint64(&chunk.words[word], (w&^(0b11<<shift))|(uint64(stateMigrated)<<shift))
		b.migrated.Add(1)
	}
	chunk.mu.Unlock()
}

// MigratedCount returns the number of migrated granules.
func (b *Bitmap) MigratedCount() int64 { return b.migrated.Load() }

// Complete reports whether every granule has been migrated.
func (b *Bitmap) Complete() bool { return b.migrated.Load() >= b.granules.Load() }

// NextUnmigrated returns the smallest granule id >= from that is not yet
// migrated, or -1. Background migration uses this to find remaining work.
func (b *Bitmap) NextUnmigrated(from int64) int64 {
	n := b.granules.Load()
	for g := from; g < n; g++ {
		if b.state(g) != stateMigrated {
			return g
		}
	}
	return -1
}

// --- Tracker interface adapters (keys are big-endian granule ids) ---

// GranuleKey encodes a granule id as a tracker key.
func GranuleKey(granule int64) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(granule))
	return buf[:]
}

// GranuleFromKey decodes a tracker key into a granule id.
func GranuleFromKey(key []byte) int64 {
	return int64(binary.BigEndian.Uint64(key))
}

// TryClaim implements Tracker.
func (b *Bitmap) TryClaim(key []byte) ClaimResult { return b.TryClaimGranule(GranuleFromKey(key)) }

// MarkMigrated implements Tracker.
func (b *Bitmap) MarkMigrated(key []byte) { b.MarkMigratedGranule(GranuleFromKey(key)) }

// ReleaseAbort implements Tracker.
func (b *Bitmap) ReleaseAbort(key []byte) { b.ReleaseAbortGranule(GranuleFromKey(key)) }

// IsMigrated implements Tracker.
func (b *Bitmap) IsMigrated(key []byte) bool { return b.IsMigratedGranule(GranuleFromKey(key)) }

// RestoreMigrated implements Tracker.
func (b *Bitmap) RestoreMigrated(key []byte) { b.RestoreMigratedGranule(GranuleFromKey(key)) }

// SnapshotMigrated implements Tracker: fn receives every migrated granule's
// key, in granule order.
func (b *Bitmap) SnapshotMigrated(fn func(key []byte)) {
	n := b.granules.Load()
	for g := int64(0); g < n; g++ {
		if b.state(g) == stateMigrated {
			fn(GranuleKey(g))
		}
	}
}
