package core

import (
	"strings"
	"testing"

	"github.com/bullfrogdb/bullfrog/internal/engine"
)

// TestStartValidationErrors walks the registration error paths: missing
// output tables, unknown group columns, unresolvable driving/seed tables,
// bad setup DDL, duplicate output ownership.
func TestStartValidationErrors(t *testing.T) {
	newDB := func() *engine.DB {
		db := engine.New(engine.Options{})
		mustExec(t, db, `CREATE TABLE src (a INT PRIMARY KEY, b INT)`)
		return db
	}
	sel := func(s string) *typesSelect { return mustParseSelect(s) }

	cases := []struct {
		name string
		m    *Migration
		want string
	}{
		{
			name: "setup DDL fails",
			m: &Migration{
				Name:  "m",
				Setup: `CREATE TABLE dst (a NOSUCHTYPE)`,
				Statements: []*Statement{{
					Name: "s", Driving: "s", Category: OneToOne,
					Outputs: []OutputSpec{{Table: "dst", Def: sel(`SELECT a FROM src s`)}},
				}},
			},
			want: "setup",
		},
		{
			name: "output table missing",
			m: &Migration{
				Name: "m",
				Statements: []*Statement{{
					Name: "s", Driving: "s", Category: OneToOne,
					Outputs: []OutputSpec{{Table: "ghost", Def: sel(`SELECT a FROM src s`)}},
				}},
			},
			want: "create it in Migration.Setup",
		},
		{
			name: "unknown group column",
			m: &Migration{
				Name:  "m",
				Setup: `CREATE TABLE dst (a INT PRIMARY KEY, n INT)`,
				Statements: []*Statement{{
					Name: "s", Driving: "s", Category: ManyToOne, GroupBy: []string{"nope"},
					Outputs: []OutputSpec{{Table: "dst", Def: sel(`SELECT a, COUNT(*) AS n FROM src s GROUP BY a`)}},
				}},
			},
			want: "group column",
		},
		{
			name: "driving table unresolvable",
			m: &Migration{
				Name:  "m",
				Setup: `CREATE TABLE dst (a INT PRIMARY KEY)`,
				Statements: []*Statement{{
					Name: "s", Driving: "zz", Category: OneToOne,
					Outputs: []OutputSpec{{Table: "dst", Def: sel(`SELECT a FROM src zz2`)}},
				}},
			},
			want: "driving",
		},
		{
			name: "retire of missing table",
			m: &Migration{
				Name:  "m",
				Setup: `CREATE TABLE dst (a INT PRIMARY KEY)`,
				Statements: []*Statement{{
					Name: "s", Driving: "s", Category: OneToOne,
					Outputs: []OutputSpec{{Table: "dst", Def: sel(`SELECT a FROM src s`)}},
				}},
				RetireInputs: []string{"ghost"},
			},
			want: "does not exist",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ctrl := NewController(newDB(), DetectEarly)
			err := ctrl.Start(c.m)
			if err == nil {
				t.Fatalf("Start should fail")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestDuplicateOutputAcrossStatements(t *testing.T) {
	db := engine.New(engine.Options{})
	mustExec(t, db, `CREATE TABLE src (a INT PRIMARY KEY)`)
	sel := mustParseSelect(`SELECT a FROM src s`)
	m := &Migration{
		Name:  "m",
		Setup: `CREATE TABLE dst (a INT PRIMARY KEY)`,
		Statements: []*Statement{
			{Name: "s1", Driving: "s", Category: OneToOne,
				Outputs: []OutputSpec{{Table: "dst", Def: sel}}},
			{Name: "s2", Driving: "s", Category: OneToOne,
				Outputs: []OutputSpec{{Table: "dst", Def: sel}}},
		},
	}
	ctrl := NewController(db, DetectEarly)
	if err := ctrl.Start(m); err == nil || !strings.Contains(err.Error(), "two statements") {
		t.Fatalf("duplicate output should fail: %v", err)
	}
}

func TestSeedValidationErrors(t *testing.T) {
	db := engine.New(engine.Options{})
	mustExec(t, db, `
		CREATE TABLE l (w INT, i INT, PRIMARY KEY (w, i));
		CREATE TABLE s (s_w INT, s_i INT, PRIMARY KEY (s_w, s_i));`)
	base := func() *Statement {
		return &Statement{
			Name: "j", Driving: "l", Category: ManyToMany, GroupBy: []string{"w", "i"},
			Outputs: []OutputSpec{{
				Table: "out",
				Def:   mustParseSelect(`SELECT l.w, l.i FROM l, s WHERE s.s_w = l.w AND s.s_i = l.i`),
			}},
		}
	}
	// Seed driving alias unresolvable.
	st := base()
	st.Seed = &SeedSpec{Def: mustParseSelect(`SELECT s_w, s_i FROM s`), Driving: "zz", GroupBy: []string{"s_w", "s_i"}}
	m := &Migration{Name: "m", Setup: `CREATE TABLE out (w INT, i INT, UNIQUE (w, i))`, Statements: []*Statement{st}}
	if err := NewController(db, DetectEarly).Start(m); err == nil || !strings.Contains(err.Error(), "seed") {
		t.Fatalf("bad seed driving: %v", err)
	}
	// Seed group column unknown.
	st2 := base()
	st2.Seed = &SeedSpec{Def: mustParseSelect(`SELECT s_w, s_i FROM s`), Driving: "s", GroupBy: []string{"nope", "s_i"}}
	m2 := &Migration{Name: "m2", Setup: `CREATE TABLE out2 (w INT, i INT, UNIQUE (w, i))`, Statements: []*Statement{st2}}
	st2.Outputs[0].Table = "out2"
	if err := NewController(db, DetectEarly).Start(m2); err == nil || !strings.Contains(err.Error(), "seed group") {
		t.Fatalf("bad seed group col: %v", err)
	}
	// Seed group arity mismatch.
	st3 := base()
	st3.Seed = &SeedSpec{Def: mustParseSelect(`SELECT s_w, s_i FROM s`), Driving: "s", GroupBy: []string{"s_w"}}
	m3 := &Migration{Name: "m3", Setup: `CREATE TABLE out3 (w INT, i INT, UNIQUE (w, i))`, Statements: []*Statement{st3}}
	st3.Outputs[0].Table = "out3"
	if err := NewController(db, DetectEarly).Start(m3); err == nil || !strings.Contains(err.Error(), "arity") {
		t.Fatalf("seed arity: %v", err)
	}
}

func TestEagerValidationError(t *testing.T) {
	db := engine.New(engine.Options{})
	if _, err := MigrateEager(db, &Migration{Name: ""}, NewGate()); err == nil {
		t.Fatal("invalid migration should fail eager path")
	}
}
