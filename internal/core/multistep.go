package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/bullfrogdb/bullfrog/internal/engine"
	"github.com/bullfrogdb/bullfrog/internal/expr"
	"github.com/bullfrogdb/bullfrog/internal/storage"
	"github.com/bullfrogdb/bullfrog/internal/txn"
	"github.com/bullfrogdb/bullfrog/internal/types"
)

// MultiStep implements the multi-step migration baseline of §4: the schema
// change is registered ahead of time, a background copier synchronizes the
// new schema, and writes performed during the window are propagated to both
// schemas ("reads are served from the old schema, while writes go to both
// schemas"). When the copier catches up, the system switches over.
//
// The write-propagation protocol avoids the lost-update race: the copier
// claims a granule/group (in-progress) before it begins reading, and a
// writer checks the tracker state only after its old-schema commit. If the
// state is still not-started, any later copy begins after the commit and
// sees it; if in-progress or copied, the writer waits (if needed) and then
// recomputes the affected output rows from current old-schema state.
type MultiStep struct {
	ctrl     *Controller
	bg       *Background
	mig      *Migration
	switched atomic.Bool
	// ctx is cancelled by Stop so an in-flight Switch catch-up drain cannot
	// outlive an abandoned migration.
	ctx    context.Context
	cancel context.CancelFunc
}

// StartMultiStep registers the migration and immediately starts the copier
// (the paper notes multi-step background threads start at migration time,
// unlike BullFrog's delayed background process). ctx is the parent of the
// migration's lifetime context — pass the DB's close context so Switch
// drains die with the database; nil falls back to an unbounded root. Stop
// still cancels the migration's own context either way.
func StartMultiStep(ctx context.Context, db *engine.DB, m *Migration) (*MultiStep, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	shadow := *m
	shadow.RetireInputs = nil // inputs stay live until the switch
	shadow.DropInputsOnComplete = false
	ctrl := NewController(db, DetectEarly)
	ctrl.shadow = true
	if err := ctrl.Start(&shadow); err != nil {
		return nil, err
	}
	ms := &MultiStep{ctrl: ctrl, mig: m}
	ms.ctx, ms.cancel = context.WithCancel(ctx)
	ms.bg = NewBackground(ctrl, 0)
	// The copier is paced by default: a real multi-step migration deliberately
	// trickles the copy to bound its impact, which is also what makes its
	// window long enough for dual-write amplification to show (paper §4.1:
	// multi-step takes longer than lazy migration to complete).
	ms.bg.ChunkGranules = 32
	ms.bg.ChunkTuples = 2048
	ms.bg.Interval = 2 * time.Millisecond
	ms.bg.Start()
	return ms, nil
}

// Copier exposes the background copier for pacing adjustments.
func (ms *MultiStep) Copier() *Background { return ms.bg }

// Controller exposes the underlying trackers (stats, tests).
func (ms *MultiStep) Controller() *Controller { return ms.ctrl }

// Complete reports whether the copier has fully synchronized the new schema.
func (ms *MultiStep) Complete() bool { return ms.ctrl.Complete() }

// CompletedAt reports when the copy finished.
func (ms *MultiStep) CompletedAt() time.Time { return ms.ctrl.CompletedAt() }

// Stop halts the copier and cancels any in-flight Switch drain (e.g. to
// abandon the migration).
func (ms *MultiStep) Stop() {
	ms.cancel()
	ms.bg.Stop()
}

// Switched reports whether the switch-over happened.
func (ms *MultiStep) Switched() bool { return ms.switched.Load() }

// Switch performs the cut-over once the copy is complete: a final catch-up
// pass covers anything committed after the copier's last sweep (the caller
// must have quiesced client writes, e.g. by holding the Gate exclusively —
// this is the "lock the source table briefly" step of multi-step tools),
// then old tables are retired and the application flips to new-schema
// transactions.
func (ms *MultiStep) Switch() error {
	if !ms.Complete() {
		return fmt.Errorf("core: multi-step switch before copy completed")
	}
	ms.bg.Stop()
	for _, rt := range ms.ctrl.Runtimes() {
		if err := rt.CatchUp(ms.ctx); err != nil {
			return fmt.Errorf("core: multi-step final catch-up: %w", err)
		}
	}
	for _, name := range ms.mig.RetireInputs {
		tbl, err := ms.ctrl.db.Catalog().Table(name)
		if err != nil {
			return err
		}
		tbl.SetRetired(true)
		if ms.mig.DropInputsOnComplete {
			if err := ms.ctrl.db.Catalog().DropTable(name); err != nil {
				return err
			}
		}
	}
	// Retires and drops bypassed the SQL DDL path; drop stale cached plans.
	ms.ctrl.db.InvalidatePlans()
	ms.switched.Store(true)
	return nil
}

// NoteWrite propagates a committed old-schema write into the new schema.
// The application calls it after committing a transaction that wrote the
// given tuples of the named input table. It blocks while the copier holds
// the affected granules/groups and then recomputes their output rows.
func (ms *MultiStep) NoteWrite(table string, tids []storage.TID, rows []types.Row) error {
	if ms.switched.Load() {
		return nil
	}
	for _, rt := range ms.ctrl.Runtimes() {
		// Writes to the secondary input of a join statement (e.g. stock)
		// also invalidate copied groups; the group key is derived from the
		// secondary table's own group columns.
		if rt.seedTbl != nil && norm(rt.seedTbl.Def.Name) == norm(table) {
			seen := map[string]bool{}
			for _, row := range rows {
				key := make(types.Row, len(rt.seedOrds))
				for i, ord := range rt.seedOrds {
					key[i] = row[ord]
				}
				k := types.EncodeKey(nil, key)
				if seen[string(k)] {
					continue
				}
				seen[string(k)] = true
				if err := ms.propagateGroup(rt, k); err != nil {
					return err
				}
			}
			continue
		}
		if norm(rt.drivingTbl.Def.Name) != norm(table) {
			continue
		}
		if rt.bitmap != nil {
			seen := map[int64]bool{}
			for _, tid := range tids {
				g := rt.bitmap.GranuleOf(tid.Ordinal(rt.drivingTbl.Heap.PageSize()))
				if seen[g] {
					continue
				}
				seen[g] = true
				if err := ms.propagateGranule(rt, g); err != nil {
					return err
				}
			}
		} else {
			seen := map[string]bool{}
			for _, row := range rows {
				k := rt.groupKeyOf(row)
				if seen[string(k)] {
					continue
				}
				seen[string(k)] = true
				if err := ms.propagateGroup(rt, k); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// retryTransient re-runs f until it succeeds or fails with a non-transient
// error. Propagation runs AFTER the client transaction committed, so a
// serialization conflict or lock timeout must never bubble up to the client
// (a driver retry would re-execute an already-committed transaction).
func (ms *MultiStep) retryTransient(f func() error) error {
	deadline := time.Now().Add(5 * time.Second)
	backoff := ms.ctrl.backoff
	for {
		err := f()
		if err == nil {
			return nil
		}
		if !errors.Is(err, txn.ErrSerialization) && !errors.Is(err, txn.ErrLockTimeout) {
			return err
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("core: dual-write propagation starved: %w", err)
		}
		time.Sleep(backoff)
		if backoff < 10*time.Millisecond {
			backoff *= 2
		}
	}
}

// propagateGranule waits out an in-flight copy of the granule and, if it has
// been copied, recomputes its output rows from current old-schema state.
func (ms *MultiStep) propagateGranule(rt *StmtRuntime, g int64) error {
	for {
		switch rt.bitmap.state(g) {
		case stateNone:
			return nil // not yet copied: the copier will read post-commit state
		case stateInProgress:
			time.Sleep(ms.ctrl.backoff)
			continue
		case stateMigrated:
			return ms.retryTransient(func() error { return ms.recomputeGranule(rt, g) })
		}
	}
}

func (ms *MultiStep) propagateGroup(rt *StmtRuntime, key []byte) error {
	for {
		switch rt.hash.TryClaim(key) {
		case Busy:
			time.Sleep(ms.ctrl.backoff)
			continue
		case Done:
			return ms.retryTransient(func() error { return ms.recomputeGroup(rt, key) })
		case Claimed:
			// Not copied yet (we accidentally claimed it): undo the claim
			// and let the copier handle it later with post-commit state.
			rt.hash.ReleaseAbort(key)
			return nil
		}
	}
}

// recomputeGranule deletes the output rows derived from the granule's
// driving tuples and re-runs the transform — the "write goes to both
// schemas" half of multi-step migration. Recomputations of the same granule
// serialize on a lock-table key.
func (ms *MultiStep) recomputeGranule(rt *StmtRuntime, g int64) error {
	tx := rt.ctrl.beginMigTxn(ms.ctx)
	defer func() {
		if !tx.Done() {
			rt.ctrl.abortMigTxn(tx)
		}
	}()
	if err := tx.Lock(txn.LockKey{Space: ^uint64(0), A: rt.drivingTbl.ID, B: uint64(g)}); err != nil {
		return err
	}
	rows, err := rt.fetchGranuleRows(tx, []int64{g})
	if err != nil {
		return err
	}
	if err := ms.deleteOutputsFor(tx, rt, rows); err != nil {
		return err
	}
	if len(rows) > 0 {
		if err := rt.transform(tx, rows, nil); err != nil {
			return err
		}
	}
	return rt.ctrl.commitMigTxn(tx)
}

func (ms *MultiStep) recomputeGroup(rt *StmtRuntime, key []byte) error {
	tx := rt.ctrl.beginMigTxn(ms.ctx)
	defer func() {
		if !tx.Done() {
			rt.ctrl.abortMigTxn(tx)
		}
	}()
	keyRow, err := types.DecodeKey(key)
	if err != nil {
		return err
	}
	if err := tx.Lock(txn.LockKey{Space: ^uint64(0) - 1, A: rt.drivingTbl.ID, B: hashKey(key)}); err != nil {
		return err
	}
	// Delete outputs identified by the group key, then re-derive the group.
	for _, out := range rt.outputs {
		pred, err := ms.groupOutputPred(rt, &out, keyRow)
		if err != nil {
			return err
		}
		if pred == nil {
			continue
		}
		tids, _, err := ms.ctrl.db.ScanForWrite(tx, out.tbl, "", pred)
		if err != nil {
			return err
		}
		for _, tid := range tids {
			if err := ms.ctrl.db.DeleteRow(tx, out.tbl, tid); err != nil {
				return err
			}
		}
	}
	if _, err := rt.migrateGroup(tx, key); err != nil {
		return err
	}
	return rt.ctrl.commitMigTxn(tx)
}

// groupOutputPred builds the output-table predicate identifying rows derived
// from the group, using the output's KeyMap.
func (ms *MultiStep) groupOutputPred(rt *StmtRuntime, out *outputRuntime, keyRow types.Row) (expr.Expr, error) {
	if out.spec.KeyMap == nil {
		return nil, fmt.Errorf("core: multi-step requires KeyMap on output %q", out.tbl.Def.Name)
	}
	var pred expr.Expr
	for i, drivCol := range rt.Stmt.GroupBy {
		outCol := ""
		for oc, dc := range out.spec.KeyMap {
			if norm(dc) == norm(drivCol) {
				outCol = oc
			}
		}
		if outCol == "" {
			return nil, fmt.Errorf("core: output %q KeyMap does not cover group column %q", out.tbl.Def.Name, drivCol)
		}
		pred = expr.CombineConjuncts(pred,
			expr.NewBinOp(expr.OpEq, expr.NewCol("", outCol), expr.NewConst(keyRow[i])))
	}
	return pred, nil
}

// deleteOutputsFor removes output rows derived from the given driving rows
// (bitmap statements), identified through each output's KeyMap.
func (ms *MultiStep) deleteOutputsFor(tx *txn.Txn, rt *StmtRuntime, drivingRows []types.Row) error {
	for _, out := range rt.outputs {
		if out.spec.KeyMap == nil {
			return fmt.Errorf("core: multi-step requires KeyMap on output %q", out.tbl.Def.Name)
		}
		// Resolve KeyMap to ordinals once.
		type pair struct {
			outName string
			drivOrd int
		}
		var pairs []pair
		for outCol, drivCol := range out.spec.KeyMap {
			ord := rt.drivingTbl.Def.ColumnIndex(drivCol)
			if ord < 0 {
				return fmt.Errorf("core: KeyMap driving column %q missing", drivCol)
			}
			pairs = append(pairs, pair{outName: outCol, drivOrd: ord})
		}
		for _, row := range drivingRows {
			var pred expr.Expr
			for _, p := range pairs {
				pred = expr.CombineConjuncts(pred,
					expr.NewBinOp(expr.OpEq, expr.NewCol("", p.outName), expr.NewConst(row[p.drivOrd])))
			}
			tids, _, err := ms.ctrl.db.ScanForWrite(tx, out.tbl, "", pred)
			if err != nil {
				return err
			}
			for _, tid := range tids {
				if err := ms.ctrl.db.DeleteRow(tx, out.tbl, tid); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func hashKey(b []byte) uint64 {
	var h uint64 = 14695981039346656037
	for _, c := range b {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h
}
