// Package core implements BullFrog's lazy schema-migration machinery: the
// bitmap and hashmap migration-status trackers (paper §3.3, §3.4), the
// per-transaction migration loop with WIP/SKIP lists (Algorithm 1), abort
// handling (§3.5), predicate-scoped lazy migration driven by view
// transposition (§2.1), background migration (§2.2), the ON CONFLICT
// duplicate-detection alternative (§3.7), and the eager and multi-step
// baselines the paper evaluates against (§4).
package core

// ClaimResult is the outcome of attempting to claim a migration granule
// (a tuple, page of tuples, or group).
type ClaimResult int

const (
	// Claimed: this worker now owns the granule and must migrate it (the
	// paper's lock bit / "in progress" state).
	Claimed ClaimResult = iota
	// Busy: another worker is migrating the granule; add it to SKIP and
	// re-check later (Algorithm 2 lines 3-4; Algorithm 3 line 6).
	Busy
	// Done: the granule has already been migrated.
	Done
)

func (r ClaimResult) String() string {
	switch r {
	case Claimed:
		return "claimed"
	case Busy:
		return "busy"
	case Done:
		return "done"
	default:
		return "unknown"
	}
}

// Tracker is the status-tracking interface shared by bitmap and hashmap
// migrations. Keys are granule identifiers: the bitmap uses encoded granule
// ordinals, the hash tracker uses encoded group keys.
type Tracker interface {
	// TryClaim attempts to acquire the granule for migration.
	TryClaim(key []byte) ClaimResult
	// MarkMigrated transitions a claimed granule to migrated (Algorithm 1
	// line 9, run after the migration transaction commits).
	MarkMigrated(key []byte)
	// ReleaseAbort returns a claimed granule to a claimable state after the
	// migrating transaction aborts (§3.5).
	ReleaseAbort(key []byte)
	// IsMigrated reports whether the granule has been migrated.
	IsMigrated(key []byte) bool
	// RestoreMigrated force-marks a granule migrated (crash recovery from
	// the REDO log, §3.5).
	RestoreMigrated(key []byte)
	// MigratedCount returns how many granules have been migrated.
	MigratedCount() int64
	// SnapshotMigrated calls fn for every migrated granule's key. Used by
	// checkpoints to persist tracker state; the snapshot is consistent when
	// the caller has quiesced marking (the WAL commit fence does this).
	SnapshotMigrated(fn func(key []byte))
}
