package core

import (
	"context"
	"errors"
	"testing"

	"github.com/bullfrogdb/bullfrog/internal/engine"
)

// TestCatchUpDrainsEverything: CatchUp synchronously completes a statement
// regardless of prior progress (used by the multi-step switch; also handy
// for forcing completion on demand).
func TestCatchUpDrainsEverything(t *testing.T) {
	db := engine.New(engine.Options{})
	m := splitFixture(t, db, 80)
	ctrl := NewController(db, DetectEarly)
	if err := ctrl.Start(m); err != nil {
		t.Fatal(err)
	}
	// Partially migrate.
	if err := ctrl.EnsureMigrated("cust_private", parsePred(t, `c_id < 10`)); err != nil {
		t.Fatal(err)
	}
	rt := ctrl.RuntimeFor("cust_private")
	if rt.Complete() {
		t.Fatal("should not be complete yet")
	}
	if err := rt.CatchUp(nil); err != nil {
		t.Fatal(err)
	}
	if !rt.Complete() || !ctrl.Complete() {
		t.Fatal("CatchUp should complete the migration")
	}
	if got := mustSelect(t, db, `SELECT COUNT(*) FROM cust_private`)[0][0].Int(); got != 80 {
		t.Errorf("rows = %d", got)
	}
	// Idempotent on a finished statement.
	if err := rt.CatchUp(nil); err != nil {
		t.Fatal(err)
	}
}

// TestCatchUpHash drains a group-tracked statement.
func TestCatchUpHash(t *testing.T) {
	db := engine.New(engine.Options{})
	mustExec(t, db, `CREATE TABLE ev (k INT, v INT, PRIMARY KEY (k, v))`)
	for i := 0; i < 50; i++ {
		mustExec(t, db, `INSERT INTO ev VALUES (`+itoa(i%5)+`, `+itoa(i)+`)`)
	}
	m := &Migration{
		Name:  "agg",
		Setup: `CREATE TABLE ev_count (k INT PRIMARY KEY, n INT)`,
		Statements: []*Statement{{
			Name: "agg", Driving: "e", Category: ManyToOne, GroupBy: []string{"k"},
			Outputs: []OutputSpec{{
				Table: "ev_count",
				Def:   parseSelect(t, `SELECT k, COUNT(*) AS n FROM ev e GROUP BY k`),
			}},
		}},
	}
	ctrl := NewController(db, DetectEarly)
	if err := ctrl.Start(m); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Runtimes()[0].CatchUp(nil); err != nil {
		t.Fatal(err)
	}
	rows := mustSelect(t, db, `SELECT COUNT(*) FROM ev_count`)
	if rows[0][0].Int() != 5 {
		t.Errorf("groups = %v", rows[0][0])
	}
}

// TestCatchUpContextCancel: a cancelled context stops the drain promptly with
// the context's error instead of running to completion — the mechanism that
// keeps DB.Close from hanging behind a long multi-step switch-over.
func TestCatchUpContextCancel(t *testing.T) {
	db := engine.New(engine.Options{})
	m := splitFixture(t, db, 80)
	ctrl := NewController(db, DetectEarly)
	if err := ctrl.Start(m); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rt := ctrl.RuntimeFor("cust_private")
	if err := rt.CatchUp(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("CatchUp with cancelled ctx = %v, want context.Canceled", err)
	}
	if ctrl.Complete() {
		t.Fatal("cancelled CatchUp should not have drained the migration")
	}
	// A live context drains normally afterwards.
	if err := rt.CatchUp(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !rt.Complete() {
		t.Fatal("CatchUp with live ctx should complete")
	}
}
