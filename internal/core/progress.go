package core

import (
	"time"
)

// TableProgressReport is one migration statement's live physical progress
// plus a throughput-window rate and ETA. Totals count granules for bitmap
// statements and are -1 (unknown) for hash statements, whose group count is
// only discovered as groups migrate.
type TableProgressReport struct {
	Statement    string  `json:"statement"`
	Table        string  `json:"table"`
	Migrated     int64   `json:"migrated"`
	Total        int64   `json:"total"`
	Progress     float64 `json:"progress"`
	RowsMigrated int64   `json:"rows_migrated"`
	Complete     bool    `json:"complete"`
	// RatePerSec is an EWMA of granules (or groups) migrated per second,
	// sampled between ProgressReport calls.
	RatePerSec float64 `json:"rate_per_sec"`
	// ETASeconds estimates time to completion from the remaining granules and
	// RatePerSec; -1 when unknown (hash statements, zero rate).
	ETASeconds float64 `json:"eta_seconds"`
}

// ProgressReport is the live migration progress surface behind
// bullfrog.DB.MigrationProgress and the shell's \top view.
type ProgressReport struct {
	Active    bool                  `json:"active"`
	Name      string                `json:"name,omitempty"`
	StartedAt time.Time             `json:"started_at,omitempty"`
	Workers   int64                 `json:"workers"`
	BatchSize int64                 `json:"batch_size"`
	Tables    []TableProgressReport `json:"tables,omitempty"`
}

// etaAlpha is the EWMA smoothing factor for the progress rate: heavy enough
// that ETAs settle within a few samples, light enough to ride out bursty
// batch completion.
const etaAlpha = 0.4

// sampleRate updates the runtime's EWMA progress rate from the delta since
// the previous sample and returns the smoothed rate (units: granules or
// groups per second). Samples closer together than 10ms reuse the previous
// rate — the delta is too noisy to divide.
func (rt *StmtRuntime) sampleRate(now time.Time, migrated int64) float64 {
	rt.progMu.Lock()
	defer rt.progMu.Unlock()
	if rt.progAt.IsZero() {
		rt.progAt, rt.progCount = now, migrated
		return 0
	}
	dt := now.Sub(rt.progAt)
	if dt < 10*time.Millisecond {
		return rt.progRate
	}
	inst := float64(migrated-rt.progCount) / dt.Seconds()
	if rt.progRate == 0 {
		rt.progRate = inst
	} else {
		rt.progRate = etaAlpha*inst + (1-etaAlpha)*rt.progRate
	}
	rt.progAt, rt.progCount = now, migrated
	return rt.progRate
}

// ProgressReport assembles the live progress/ETA view. The report is freshly
// allocated on every call and safe to retain. Calling it periodically (the
// shell's \top refresh) is what feeds the rate window; a one-off call after a
// long gap still yields a meaningful average since the last call.
func (c *Controller) ProgressReport() ProgressReport {
	c.mu.RLock()
	mig := c.mig
	started := c.startedAt
	rts := append([]*StmtRuntime(nil), c.runtimes...)
	c.mu.RUnlock()
	rep := ProgressReport{
		Workers:   c.obsMig().BackfillWorkersActive.Load(),
		BatchSize: c.obsMig().BackfillBatchSize.Load(),
	}
	if mig == nil {
		return rep
	}
	rep.Active, rep.Name, rep.StartedAt = true, mig.Name, started
	now := time.Now()
	for _, rt := range rts {
		t := TableProgressReport{
			Statement:    rt.Stmt.Name,
			Table:        rt.drivingTbl.Def.Name,
			Migrated:     rt.Tracker().MigratedCount(),
			Total:        -1,
			RowsMigrated: rt.stats.rowsMigrated.Load(),
			Complete:     rt.complete.Load(),
			ETASeconds:   -1,
		}
		if rt.bitmap != nil {
			t.Total = rt.bitmap.Granules()
			if t.Total > 0 {
				t.Progress = float64(t.Migrated) / float64(t.Total)
			}
		}
		if t.Complete || (rt.bitmap != nil && t.Total == 0) {
			t.Progress = 1
		}
		t.RatePerSec = rt.sampleRate(now, t.Migrated)
		if t.Complete {
			t.ETASeconds = 0
		} else if t.Total > 0 && t.RatePerSec > 0 {
			t.ETASeconds = float64(t.Total-t.Migrated) / t.RatePerSec
		}
		rep.Tables = append(rep.Tables, t)
	}
	return rep
}
