package core

import (
	"math"
	"time"
)

// TableProgressReport is one migration statement's live physical progress
// plus a throughput-window rate and ETA. Totals count granules for bitmap
// statements and are -1 (unknown) for hash statements, whose group count is
// only discovered as groups migrate.
type TableProgressReport struct {
	Statement    string  `json:"statement"`
	Table        string  `json:"table"`
	Migrated     int64   `json:"migrated"`
	Total        int64   `json:"total"`
	Progress     float64 `json:"progress"`
	RowsMigrated int64   `json:"rows_migrated"`
	Complete     bool    `json:"complete"`
	// Done reports the boundary where every granule is migrated but the
	// controller has not finished swapping the runtime to complete yet
	// (Complete implies Done; Done does not imply Complete). Callers
	// rendering ETAs should treat Done as "0s left" rather than trusting
	// the rate window, which has no remaining work to measure.
	Done bool `json:"done,omitempty"`
	// RatePerSec is an EWMA of granules (or groups) migrated per second,
	// sampled between ProgressReport calls.
	RatePerSec float64 `json:"rate_per_sec"`
	// ETASeconds estimates time to completion from the remaining granules and
	// RatePerSec; -1 when unknown (hash statements, zero rate).
	ETASeconds float64 `json:"eta_seconds"`
}

// ProgressReport is the live migration progress surface behind
// bullfrog.DB.MigrationProgress and the shell's \top view.
type ProgressReport struct {
	Active bool `json:"active"`
	// Done reports that a migration was registered and every statement has
	// completed (done==total everywhere) even if the controller has not been
	// Reset yet — the "just finished" boundary where per-table rates would
	// otherwise yield garbage ETAs. In that window every table reports
	// ETASeconds=0 and Progress=1 instead of whatever the rate window says.
	Done      bool                  `json:"done,omitempty"`
	Name      string                `json:"name,omitempty"`
	StartedAt time.Time             `json:"started_at,omitempty"`
	Workers   int64                 `json:"workers"`
	BatchSize int64                 `json:"batch_size"`
	Tables    []TableProgressReport `json:"tables,omitempty"`
}

// etaAlpha is the EWMA smoothing factor for the progress rate: heavy enough
// that ETAs settle within a few samples, light enough to ride out bursty
// batch completion.
const etaAlpha = 0.4

// sampleRate updates the runtime's EWMA progress rate from the delta since
// the previous sample and returns the smoothed rate (units: granules or
// groups per second). Samples closer together than 10ms reuse the previous
// rate — the delta is too noisy to divide.
func (rt *StmtRuntime) sampleRate(now time.Time, migrated int64) float64 {
	rt.progMu.Lock()
	defer rt.progMu.Unlock()
	if rt.progAt.IsZero() {
		rt.progAt, rt.progCount = now, migrated
		return 0
	}
	dt := now.Sub(rt.progAt)
	if dt < 10*time.Millisecond {
		return rt.progRate
	}
	inst := float64(migrated-rt.progCount) / dt.Seconds()
	// Clamp the instantaneous sample: a non-monotonic count (recovery
	// re-seeding the tracker) or a degenerate clock delta would otherwise
	// poison the EWMA with a negative/NaN/Inf rate that every later sample
	// inherits.
	if inst < 0 || math.IsNaN(inst) || math.IsInf(inst, 0) {
		inst = 0
	}
	if rt.progRate == 0 {
		rt.progRate = inst
	} else {
		rt.progRate = etaAlpha*inst + (1-etaAlpha)*rt.progRate
	}
	rt.progAt, rt.progCount = now, migrated
	return rt.progRate
}

// ProgressReport assembles the live progress/ETA view. The report is freshly
// allocated on every call and safe to retain. Calling it periodically (the
// shell's \top refresh) is what feeds the rate window; a one-off call after a
// long gap still yields a meaningful average since the last call.
func (c *Controller) ProgressReport() ProgressReport {
	c.mu.RLock()
	var mig *Migration
	if len(c.migs) > 0 {
		mig = c.migs[len(c.migs)-1]
	}
	started := c.startedAt
	rts := append([]*StmtRuntime(nil), c.runtimes...)
	c.mu.RUnlock()
	rep := ProgressReport{
		Workers:   c.obsMig().BackfillWorkersActive.Load(),
		BatchSize: c.obsMig().BackfillBatchSize.Load(),
	}
	if mig == nil {
		return rep
	}
	// Just-completed boundary: every statement is done but the controller has
	// not been Reset. The rate windows have nothing left to measure, so flag
	// the whole report Done; the per-table loop below pins ETAs to 0.
	rep.Done = c.completedAt.Load() != 0
	rep.Active, rep.Name, rep.StartedAt = true, mig.Name, started
	now := time.Now()
	for _, rt := range rts {
		t := TableProgressReport{
			Statement:    rt.Stmt.Name,
			Table:        rt.drivingTbl.Def.Name,
			Migrated:     rt.Tracker().MigratedCount(),
			Total:        -1,
			RowsMigrated: rt.stats.rowsMigrated.Load(),
			Complete:     rt.complete.Load(),
			ETASeconds:   -1,
		}
		if rt.bitmap != nil {
			t.Total = rt.bitmap.Granules()
			if t.Total > 0 {
				t.Progress = float64(t.Migrated) / float64(t.Total)
			}
		}
		if t.Complete || (rt.bitmap != nil && t.Total == 0) {
			t.Progress = 1
		}
		t.RatePerSec = rt.sampleRate(now, t.Migrated)
		t.Done = t.Complete || (t.Total >= 0 && t.Migrated >= t.Total)
		switch {
		case t.Done:
			// done==total (or fully complete): zero time left by definition,
			// regardless of what the rate window says.
			t.Progress, t.ETASeconds = 1, 0
		case t.Total > 0 && t.RatePerSec > 0:
			t.ETASeconds = float64(t.Total-t.Migrated) / t.RatePerSec
			if t.ETASeconds < 0 || math.IsNaN(t.ETASeconds) || math.IsInf(t.ETASeconds, 0) {
				t.ETASeconds = -1
			}
		}
		rep.Tables = append(rep.Tables, t)
	}
	return rep
}
