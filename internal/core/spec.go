package core

import (
	"fmt"
	"strings"

	"github.com/bullfrogdb/bullfrog/internal/sql"
)

// Category classifies a migration statement relative to its driving input
// table (paper §3.1).
type Category int

// Migration categories.
const (
	// OneToOne: each driving tuple produces at most one output tuple
	// (column add/drop/retype, constraint add, FK-PK join from the FK side).
	OneToOne Category = iota
	// OneToMany: each driving tuple may produce several output tuples
	// (table split, PK side of an FK-PK join). Tracked like OneToOne: the
	// granule is marked migrated only after all dependent outputs exist,
	// which the per-granule migration transaction guarantees atomically.
	OneToMany
	// ManyToOne: a group of driving tuples produces one output tuple
	// (GROUP BY aggregation). Tracked by group in a hash table.
	ManyToOne
	// ManyToMany: groups on both sides (general joins). Tracked by group.
	ManyToMany
)

func (c Category) String() string {
	switch c {
	case OneToOne:
		return "1:1"
	case OneToMany:
		return "1:n"
	case ManyToOne:
		return "n:1"
	case ManyToMany:
		return "n:n"
	default:
		return "?"
	}
}

// UsesBitmap reports whether the category tracks status in a bitmap (paper:
// "bitmap migrations") rather than a hash table.
func (c Category) UsesBitmap() bool { return c == OneToOne || c == OneToMany }

// OutputSpec is one output table of a migration statement together with the
// query that derives its rows from the old schema.
type OutputSpec struct {
	// Table is the output (new-schema) table; it must exist after the
	// migration's Setup DDL has run.
	Table string
	// Def is the transform: a SELECT over old-schema tables whose output
	// columns match Table's columns positionally.
	Def *sql.SelectStmt
	// KeyMap maps output column names to driving-table column names for the
	// columns that identify which driving tuple/group an output row came
	// from. Used by the multi-step baseline's dual-write recomputation and
	// by tests; optional for pure BullFrog operation.
	KeyMap map[string]string
}

// SeedSpec optionally inserts rows derived from a secondary input table when
// a group migrates with no driving rows, completing a denormalizing join so
// no secondary-table data is lost (the join-migration experiment, §4.3).
type SeedSpec struct {
	Def     *sql.SelectStmt // over the secondary table
	Driving string          // secondary table's alias in Def
	GroupBy []string        // secondary-table columns aligned with the statement's group key
}

// Statement is one migration statement: one or more output tables populated
// from old-schema input tables, tracked by a single status structure on the
// driving input table. A table split is a single Statement with two Outputs
// and one bitmap, matching the paper's treatment (§3.1, §4.1).
type Statement struct {
	// Name identifies the statement's tracker in the WAL and in stats.
	Name string
	// Driving is the alias (in the Defs' FROM clauses) of the input table
	// whose tuples/groups are the unit of migration.
	Driving string
	// Category relative to the driving table; chooses bitmap vs hashmap.
	Category Category
	// Outputs: at least one.
	Outputs []OutputSpec
	// GroupBy: driving-table column names forming the group key (hashmap
	// categories only).
	GroupBy []string
	// Granularity: tuple ordinals per bitmap granule; 0/1 = tuple level,
	// larger values implement page-level tracking (§4.4.3).
	Granularity int64
	// Seed: optional secondary-table completion for join migrations.
	Seed *SeedSpec
}

// Validate performs structural checks.
func (s *Statement) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("core: statement needs a name")
	}
	if len(s.Outputs) == 0 {
		return fmt.Errorf("core: statement %q has no outputs", s.Name)
	}
	if s.Driving == "" {
		return fmt.Errorf("core: statement %q has no driving table", s.Name)
	}
	for _, out := range s.Outputs {
		if out.Def == nil || out.Table == "" {
			return fmt.Errorf("core: statement %q has an incomplete output", s.Name)
		}
		found := false
		for _, ref := range out.Def.From {
			if strings.EqualFold(ref.AliasOrName(), s.Driving) {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("core: statement %q: driving alias %q not in output %q's FROM", s.Name, s.Driving, out.Table)
		}
	}
	if s.Category.UsesBitmap() {
		if len(s.GroupBy) > 0 {
			return fmt.Errorf("core: statement %q: bitmap categories do not take GroupBy", s.Name)
		}
	} else if len(s.GroupBy) == 0 {
		return fmt.Errorf("core: statement %q: hashmap categories require GroupBy", s.Name)
	}
	return nil
}

// Migration is a complete schema migration: setup DDL plus one or more
// statements, applied as a single logical switch.
type Migration struct {
	Name string
	// Setup is DDL executed when the migration is registered: CREATE TABLE
	// for outputs, indexes, constraints. The new schema becomes active
	// immediately (paper §2.1).
	Setup string
	// Statements describe the lazy data movement.
	Statements []*Statement
	// RetireInputs lists old-schema tables to retire at the switch (the big
	// flip): client requests against them are rejected while migration
	// workers continue to read them. Tables that remain part of the new
	// schema (e.g. the base table of a maintained aggregate) are not listed.
	RetireInputs []string
	// DropInputsOnComplete removes retired tables once migration finishes.
	DropInputsOnComplete bool
	// PrevalidateUnique performs the synchronous check of §2.4: before the
	// logical switch, every output's unique keys are computed from the old
	// data and duplicate keys fail the migration up front. Without it, a
	// pure lazy migration only discovers such conflicts after the new schema
	// is live (rows are then dropped with a warning counter).
	PrevalidateUnique bool
	// VersionMeta is opaque metadata recorded with the migration's install
	// marker (WAL and checkpoint sidecar) and surfaced by the engine's install
	// history. The facade stores the encoded schema version here so the
	// version registry survives crashes checkpoint-bounded.
	VersionMeta []byte
}

// Validate performs structural checks on the whole migration.
func (m *Migration) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("core: migration needs a name")
	}
	if len(m.Statements) == 0 {
		return fmt.Errorf("core: migration %q has no statements", m.Name)
	}
	seen := map[string]bool{}
	for _, s := range m.Statements {
		if err := s.Validate(); err != nil {
			return err
		}
		if seen[s.Name] {
			return fmt.Errorf("core: duplicate statement name %q", s.Name)
		}
		seen[s.Name] = true
	}
	return nil
}

// ConflictMode selects how duplicate migrations are prevented (paper §3.7).
type ConflictMode int

const (
	// DetectEarly uses the bitmap/hashmap lock protocol to prevent two
	// workers from transforming the same granule (Algorithms 2 and 3).
	DetectEarly ConflictMode = iota
	// DetectOnInsert skips the lock protocol and relies on unique indexes on
	// the output tables plus ON CONFLICT DO NOTHING semantics: duplicated
	// work is possible but duplicate rows are not. Requires every output to
	// have a unique index over deterministic columns.
	DetectOnInsert
)

func (m ConflictMode) String() string {
	if m == DetectOnInsert {
		return "on-conflict"
	}
	return "tracker"
}
