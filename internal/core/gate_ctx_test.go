package core

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestGateEnterContextCancel: an EnterContext parked behind an exclusive
// section returns the context's cause on cancel without consuming a slot,
// and the gate keeps full capacity afterwards.
func TestGateEnterContextCancel(t *testing.T) {
	g := NewGate()
	holding := make(chan struct{})
	release := make(chan struct{})
	exclDone := make(chan error, 1)
	go func() {
		exclDone <- g.Exclusive(func() error {
			close(holding)
			<-release
			return nil
		})
	}()
	<-holding

	cause := errors.New("caller gave up")
	ctx, cancel := context.WithCancelCause(context.Background())
	entered := make(chan error, 1)
	go func() { entered <- g.EnterContext(ctx) }()
	time.Sleep(10 * time.Millisecond)
	cancel(cause)
	select {
	case err := <-entered:
		if !errors.Is(err, cause) {
			t.Fatalf("cancelled EnterContext returned %v, want %v", err, cause)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled EnterContext never returned")
	}

	close(release)
	if err := <-exclDone; err != nil {
		t.Fatalf("Exclusive: %v", err)
	}
	// Full capacity survived the cancellation: a fresh exclusive drain (all
	// slots) completes.
	if err := g.Exclusive(func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := g.EnterContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	g.Leave()
}

// TestGateExclusiveContextCancel: a cancelled exclusive drain returns every
// slot it had acquired, so the gate's capacity is intact and a later drain
// succeeds.
func TestGateExclusiveContextCancel(t *testing.T) {
	g := NewGate()
	g.Enter() // one client keeps the drain from ever completing

	cause := errors.New("migration abandoned")
	ctx, cancel := context.WithCancelCause(context.Background())
	ran := false
	exclDone := make(chan error, 1)
	go func() {
		exclDone <- g.ExclusiveContext(ctx, func() error {
			ran = true
			return nil
		})
	}()
	time.Sleep(10 * time.Millisecond)
	cancel(cause)
	select {
	case err := <-exclDone:
		if !errors.Is(err, cause) {
			t.Fatalf("cancelled ExclusiveContext returned %v, want %v", err, cause)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled ExclusiveContext never returned")
	}
	if ran {
		t.Fatal("f ran despite cancellation")
	}

	// The partial drain was rolled back: with the client gone, a full
	// exclusive drain completes.
	g.Leave()
	if err := g.ExclusiveContext(context.Background(), func() error { return nil }); err != nil {
		t.Fatal(err)
	}
}

// TestGateNilContextDelegation: nil contexts take the unbounded paths.
func TestGateNilContextDelegation(t *testing.T) {
	g := NewGate()
	if err := g.EnterContext(nil); err != nil {
		t.Fatal(err)
	}
	g.Leave()
	ran := false
	if err := g.ExclusiveContext(nil, func() error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("f did not run")
	}
}
