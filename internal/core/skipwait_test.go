package core

import (
	"sync"
	"testing"
	"time"

	"github.com/bullfrogdb/bullfrog/internal/engine"
)

// TestSkipWaitUntilCompetitorFinishes exercises Algorithm 1 line 10: a
// worker whose granule is held by another worker loops (SKIP non-empty)
// until the holder marks it migrated, then proceeds without migrating it
// again — the w2/w3 interplay of paper Figure 1.
func TestSkipWaitUntilCompetitorFinishes(t *testing.T) {
	db := engine.New(engine.Options{})
	m := splitFixture(t, db, 20)
	ctrl := NewController(db, DetectEarly)
	if err := ctrl.Start(m); err != nil {
		t.Fatal(err)
	}
	rt := ctrl.RuntimeFor("cust_private")

	// Hand-claim granule of tuple ordinal 4 (c_id = 5), playing worker w2.
	g := rt.bitmap.GranuleOf(4)
	if rt.bitmap.TryClaimGranule(g) != Claimed {
		t.Fatal("setup claim failed")
	}

	// Worker w3: EnsureMigrated for the same tuple must block in the skip
	// loop until we release.
	done := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		done <- ctrl.EnsureMigrated("cust_private", parsePred(t, `c_id = 5`))
	}()
	select {
	case err := <-done:
		t.Fatalf("worker proceeded while granule was held: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	if rt.Stats().SkipWaits == 0 {
		t.Error("skip-wait loop not exercised")
	}

	// Case A of Figure 2: the holder aborts; w3 must claim and migrate it.
	rt.bitmap.ReleaseAbortGranule(g)
	wg.Wait()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !rt.bitmap.IsMigratedGranule(g) {
		t.Fatal("granule not migrated after the waiter took over")
	}
	rows := mustSelect(t, db, `SELECT COUNT(*) FROM cust_private WHERE c_id = 5`)
	if rows[0][0].Int() != 1 {
		t.Fatalf("rows = %v", rows[0][0])
	}
}

// TestSkipWaitCompetitorCompletes is the other branch: the holder finishes
// normally and the waiter must NOT migrate the granule again.
func TestSkipWaitCompetitorCompletes(t *testing.T) {
	db := engine.New(engine.Options{})
	m := splitFixture(t, db, 20)
	ctrl := NewController(db, DetectEarly)
	if err := ctrl.Start(m); err != nil {
		t.Fatal(err)
	}
	rt := ctrl.RuntimeFor("cust_private")
	g := rt.bitmap.GranuleOf(7)
	if rt.bitmap.TryClaimGranule(g) != Claimed {
		t.Fatal("setup claim failed")
	}
	done := make(chan error, 1)
	go func() {
		done <- ctrl.EnsureMigrated("cust_private", parsePred(t, `c_id = 8`))
	}()
	time.Sleep(20 * time.Millisecond)
	// The holder completes the migration itself (simulate worker w2
	// committing): transform + mark.
	tx := ctrl.beginMigTxn(nil)
	rows, err := rt.fetchGranuleRows(tx, []int64{g})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.transform(tx, rows, nil); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.commitMigTxn(tx); err != nil {
		t.Fatal(err)
	}
	rt.bitmap.MarkMigratedGranule(g)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Exactly one copy.
	got := mustSelect(t, db, `SELECT COUNT(*) FROM cust_private WHERE c_id = 8`)
	if got[0][0].Int() != 1 {
		t.Fatalf("rows = %v (duplicated or missing)", got[0][0])
	}
}
