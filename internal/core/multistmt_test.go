package core

import (
	"testing"

	"github.com/bullfrogdb/bullfrog/internal/engine"
	"github.com/bullfrogdb/bullfrog/internal/types"
)

// TestTwoStatementsOverSameInput covers §3.1's "when the same input table is
// involved in separate migration statements, BullFrog maintains multiple
// data structures for it": one 1:1 statement (column subset) and one n:1
// statement (aggregation) both drive off the same old table, each with its
// own tracker.
func TestTwoStatementsOverSameInput(t *testing.T) {
	db := engine.New(engine.Options{})
	mustExec(t, db, `CREATE TABLE sales (id INT PRIMARY KEY, region INT, amount FLOAT)`)
	for i := 1; i <= 60; i++ {
		mustExec(t, db, `INSERT INTO sales VALUES (`+itoa(i)+`, `+itoa(i%5)+`, 2.5)`)
	}
	m := &Migration{
		Name: "two-statements",
		Setup: `
			CREATE TABLE sales_slim (id INT PRIMARY KEY, amount FLOAT);
			CREATE TABLE region_totals (region INT PRIMARY KEY, total FLOAT);`,
		Statements: []*Statement{
			{
				Name: "slim", Driving: "s", Category: OneToOne,
				Outputs: []OutputSpec{{
					Table: "sales_slim",
					Def:   parseSelect(t, `SELECT id, amount FROM sales s`),
				}},
			},
			{
				Name: "regions", Driving: "s", Category: ManyToOne,
				GroupBy: []string{"region"},
				Outputs: []OutputSpec{{
					Table: "region_totals",
					Def:   parseSelect(t, `SELECT region, SUM(amount) AS total FROM sales s GROUP BY region`),
				}},
			},
		},
		RetireInputs: []string{"sales"},
	}
	ctrl := NewController(db, DetectEarly)
	if err := ctrl.Start(m); err != nil {
		t.Fatal(err)
	}
	// The two statements have independent trackers.
	slim := ctrl.RuntimeFor("sales_slim")
	regions := ctrl.RuntimeFor("region_totals")
	if slim == regions || slim.bitmap == nil || regions.hash == nil {
		t.Fatalf("expected independent bitmap + hashmap runtimes")
	}
	// Migrating one statement's data does not move the other's.
	if err := ctrl.EnsureMigrated("sales_slim", parsePred(t, `id = 10`)); err != nil {
		t.Fatal(err)
	}
	if n := mustSelect(t, db, `SELECT COUNT(*) FROM region_totals`)[0][0].Int(); n != 0 {
		t.Errorf("aggregation migrated prematurely: %d", n)
	}
	if err := ctrl.EnsureMigrated("region_totals", parsePred(t, `region = 2`)); err != nil {
		t.Fatal(err)
	}
	row := mustSelect(t, db, `SELECT total FROM region_totals WHERE region = 2`)
	if len(row) != 1 || row[0][0].Float() != 12*2.5 {
		t.Errorf("region 2 total: %v", row)
	}
	// Background completes both.
	bg := NewBackground(ctrl, 0)
	bg.Start()
	bg.Wait()
	if err := bg.Err(); err != nil {
		t.Fatal(err)
	}
	if !ctrl.Complete() {
		t.Fatal("both statements should complete")
	}
	if n := mustSelect(t, db, `SELECT COUNT(*) FROM sales_slim`)[0][0].Int(); n != 60 {
		t.Errorf("slim rows: %d", n)
	}
	if n := mustSelect(t, db, `SELECT COUNT(*) FROM region_totals`)[0][0].Int(); n != 5 {
		t.Errorf("region rows: %d", n)
	}
}

func TestEnsureGroupMigratedErrors(t *testing.T) {
	db := engine.New(engine.Options{})
	m := splitFixture(t, db, 10)
	ctrl := NewController(db, DetectEarly)
	if err := ctrl.Start(m); err != nil {
		t.Fatal(err)
	}
	// Bitmap statements reject group APIs.
	if err := ctrl.EnsureGroupMigrated("cust_private", types.Row{types.NewInt(1)}); err == nil {
		t.Error("group API on a bitmap statement should fail")
	}
	// Unknown output is a no-op.
	if err := ctrl.EnsureGroupMigrated("nosuch", types.Row{types.NewInt(1)}); err != nil {
		t.Error(err)
	}
}

func TestGroupKeyArityChecked(t *testing.T) {
	db := engine.New(engine.Options{})
	mustExec(t, db, `CREATE TABLE g (a INT, b INT, v INT, PRIMARY KEY (a, b, v))`)
	mustExec(t, db, `INSERT INTO g VALUES (1, 1, 1)`)
	m := &Migration{
		Name:  "g",
		Setup: `CREATE TABLE gt (a INT, b INT, n INT, PRIMARY KEY (a, b))`,
		Statements: []*Statement{{
			Name: "g", Driving: "g", Category: ManyToOne, GroupBy: []string{"a", "b"},
			Outputs: []OutputSpec{{
				Table: "gt",
				Def:   parseSelect(t, `SELECT a, b, COUNT(*) AS n FROM g GROUP BY a, b`),
			}},
		}},
	}
	ctrl := NewController(db, DetectEarly)
	if err := ctrl.Start(m); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.EnsureGroupMigrated("gt", types.Row{types.NewInt(1)}); err == nil {
		t.Error("wrong group-key arity should fail")
	}
	if err := ctrl.EnsureGroupMigrated("gt", types.Row{types.NewInt(1), types.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	if n := mustSelect(t, db, `SELECT n FROM gt WHERE a = 1 AND b = 1`)[0][0].Int(); n != 1 {
		t.Errorf("count: %d", n)
	}
}
