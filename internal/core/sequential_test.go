package core

import (
	"testing"

	"github.com/bullfrogdb/bullfrog/internal/engine"
)

// TestSequentialMigrations runs two schema evolutions back to back — the
// continuous-deployment cadence from the paper's introduction (schema
// changes ~weekly, deployments daily).
func TestSequentialMigrations(t *testing.T) {
	db := engine.New(engine.Options{})
	m1 := splitFixture(t, db, 40)
	m1.DropInputsOnComplete = true
	ctrl := NewController(db, DetectEarly)
	if err := ctrl.Start(m1); err != nil {
		t.Fatal(err)
	}
	// Reset while incomplete is refused.
	if err := ctrl.Reset(); err == nil {
		t.Fatal("Reset during an active migration must fail")
	}
	bg := NewBackground(ctrl, 0)
	bg.Start()
	bg.Wait()
	if err := bg.Err(); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Reset(); err != nil {
		t.Fatal(err)
	}
	if ctrl.Migration() != nil || ctrl.RuntimeFor("cust_private") != nil {
		t.Fatal("Reset did not clear state")
	}

	// Second evolution: aggregate over one of the first migration's outputs.
	m2 := &Migration{
		Name:  "payments-by-count",
		Setup: `CREATE TABLE payments_hist (c_payments INT PRIMARY KEY, n INT)`,
		Statements: []*Statement{{
			Name: "payments-by-count", Driving: "p", Category: ManyToOne,
			GroupBy: []string{"c_payments"},
			Outputs: []OutputSpec{{
				Table: "payments_hist",
				Def:   parseSelect(t, `SELECT c_payments, COUNT(*) AS n FROM cust_private p GROUP BY c_payments`),
			}},
		}},
	}
	if err := ctrl.Start(m2); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.EnsureMigrated("payments_hist", parsePred(t, `c_payments = 3`)); err != nil {
		t.Fatal(err)
	}
	rows := mustSelect(t, db, `SELECT n FROM payments_hist WHERE c_payments = 3`)
	if len(rows) != 1 || rows[0][0].Int() == 0 {
		t.Fatalf("second migration's lazy group: %v", rows)
	}
	bg2 := NewBackground(ctrl, 0)
	bg2.Start()
	bg2.Wait()
	if !ctrl.Complete() {
		t.Fatal("second migration incomplete")
	}
	// The histogram covers all 7 payment-count values (i %% 7 in the fixture).
	if got := mustSelect(t, db, `SELECT COUNT(*) FROM payments_hist`)[0][0].Int(); got != 7 {
		t.Errorf("histogram groups: %d", got)
	}
}
