package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/bullfrogdb/bullfrog/internal/engine"
	"github.com/bullfrogdb/bullfrog/internal/sql"
	"github.com/bullfrogdb/bullfrog/internal/types"
)

func mustExec(t *testing.T, db *engine.DB, src string) *engine.Result {
	t.Helper()
	res, err := db.Exec(src)
	if err != nil {
		t.Fatalf("Exec(%q): %v", src, err)
	}
	return res
}

func mustSelect(t *testing.T, db *engine.DB, src string) []types.Row {
	t.Helper()
	return mustExec(t, db, src).Rows
}

func parseSelect(t *testing.T, src string) *sql.SelectStmt {
	t.Helper()
	s, err := sql.ParseOne(src)
	if err != nil {
		t.Fatal(err)
	}
	return s.(*sql.SelectStmt)
}

func parsePred(t *testing.T, src string) exprExpr {
	t.Helper()
	e, err := sql.ParseExpr(src)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// splitFixture creates the old-schema `cust` table with n rows and returns
// the table-split migration spec (paper §4.1 shape: one input, two outputs,
// one bitmap).
func splitFixture(t *testing.T, db *engine.DB, n int) *Migration {
	t.Helper()
	mustExec(t, db, `CREATE TABLE cust (
		c_id INT PRIMARY KEY, c_name CHAR(16), c_city CHAR(16), c_balance FLOAT, c_payments INT)`)
	tx := db.Begin()
	tbl, _ := db.Catalog().Table("cust")
	for i := 1; i <= n; i++ {
		row := types.Row{
			types.NewInt(int64(i)),
			types.NewString(fmt.Sprintf("name-%d", i)),
			types.NewString(fmt.Sprintf("city-%d", i%10)),
			types.NewFloat(float64(i) * 1.5),
			types.NewInt(int64(i % 7)),
		}
		if _, _, err := db.InsertRow(tx, tbl, row, sql.ConflictError); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Commit(tx); err != nil {
		t.Fatal(err)
	}
	return &Migration{
		Name: "split-cust",
		Setup: `
			CREATE TABLE cust_private (c_id INT PRIMARY KEY, c_balance FLOAT, c_payments INT);
			CREATE TABLE cust_public (c_id INT PRIMARY KEY, c_name CHAR(16), c_city CHAR(16));`,
		Statements: []*Statement{{
			Name:     "split",
			Driving:  "c",
			Category: OneToMany,
			Outputs: []OutputSpec{
				{
					Table:  "cust_private",
					Def:    parseSelect(t, `SELECT c_id, c_balance, c_payments FROM cust c`),
					KeyMap: map[string]string{"c_id": "c_id"},
				},
				{
					Table:  "cust_public",
					Def:    parseSelect(t, `SELECT c_id, c_name, c_city FROM cust c`),
					KeyMap: map[string]string{"c_id": "c_id"},
				},
			},
		}},
		RetireInputs: []string{"cust"},
	}
}

type exprExpr = interface {
	Eval(types.Row) (types.Datum, error)
	String() string
}

func TestSplitMigrationLazyScope(t *testing.T) {
	db := engine.New(engine.Options{})
	m := splitFixture(t, db, 100)
	ctrl := NewController(db, DetectEarly)
	if err := ctrl.Start(m); err != nil {
		t.Fatal(err)
	}
	if !ctrl.IsRetired("cust") {
		t.Fatal("input should be retired at the flip")
	}
	// A client request for c_id = 5 must migrate exactly that tuple.
	if err := ctrl.EnsureMigrated("cust_private", parsePred(t, `c_id = 5`)); err != nil {
		t.Fatal(err)
	}
	rt := ctrl.RuntimeFor("cust_private")
	if rt.bitmap.MigratedCount() != 1 {
		t.Fatalf("migrated %d granules, want 1", rt.bitmap.MigratedCount())
	}
	// Both outputs received the row (1:n semantics: marked only when all
	// dependents exist).
	priv := mustSelect(t, db, `SELECT c_balance FROM cust_private WHERE c_id = 5`)
	pub := mustSelect(t, db, `SELECT c_name FROM cust_public WHERE c_id = 5`)
	if len(priv) != 1 || priv[0][0].Float() != 7.5 {
		t.Errorf("private: %v", priv)
	}
	if len(pub) != 1 || pub[0][0].Str() != "name-5" {
		t.Errorf("public: %v", pub)
	}
	// Unrelated tuples were not migrated.
	if len(mustSelect(t, db, `SELECT * FROM cust_public WHERE c_id = 6`)) != 0 {
		t.Error("tuple 6 migrated prematurely")
	}
	// Idempotence.
	if err := ctrl.EnsureMigrated("cust_private", parsePred(t, `c_id = 5`)); err != nil {
		t.Fatal(err)
	}
	if rt.stats.snapshot().RowsMigrated != 2 { // one row into each output
		t.Errorf("RowsMigrated = %d, want 2", rt.stats.snapshot().RowsMigrated)
	}
	// A broader predicate migrates its whole scope.
	if err := ctrl.EnsureMigrated("cust_public", parsePred(t, `c_city = 'city-3'`)); err != nil {
		t.Fatal(err)
	}
	rows := mustSelect(t, db, `SELECT COUNT(*) FROM cust_public`)
	if rows[0][0].Int() != 11 { // 10 city-3 members + id 5
		t.Errorf("after city migration: %v", rows[0][0])
	}
}

func TestSplitMigrationBackgroundCompletes(t *testing.T) {
	db := engine.New(engine.Options{})
	m := splitFixture(t, db, 200)
	m.DropInputsOnComplete = true
	ctrl := NewController(db, DetectEarly)
	if err := ctrl.Start(m); err != nil {
		t.Fatal(err)
	}
	ctrl.EnsureMigrated("cust_private", parsePred(t, `c_id = 7`))
	bg := NewBackground(ctrl, 0)
	bg.Start()
	bg.Wait()
	if err := bg.Err(); err != nil {
		t.Fatal(err)
	}
	if !ctrl.Complete() {
		t.Fatal("migration should be complete")
	}
	if ctrl.CompletedAt().IsZero() {
		t.Error("CompletedAt not recorded")
	}
	n := mustSelect(t, db, `SELECT COUNT(*) FROM cust_private`)[0][0].Int()
	if n != 200 {
		t.Errorf("private rows = %d", n)
	}
	n = mustSelect(t, db, `SELECT COUNT(*) FROM cust_public`)[0][0].Int()
	if n != 200 {
		t.Errorf("public rows = %d", n)
	}
	// Old table dropped after completion.
	if db.Catalog().HasTable("cust") {
		t.Error("old table should be dropped")
	}
	// Sum preserved (no lost or duplicated rows).
	sum := mustSelect(t, db, `SELECT SUM(c_balance) FROM cust_private`)[0][0].Float()
	want := 0.0
	for i := 1; i <= 200; i++ {
		want += float64(i) * 1.5
	}
	if sum != want {
		t.Errorf("balance sum = %f, want %f", sum, want)
	}
}

// TestSplitExactlyOnceConcurrent is the paper's central correctness claim:
// concurrent client requests over overlapping data migrate every tuple
// exactly once. Inserts use ConflictError, so any double migration fails
// loudly; counts are verified at the end.
func TestSplitExactlyOnceConcurrent(t *testing.T) {
	const n = 300
	for _, mode := range []ConflictMode{DetectEarly, DetectOnInsert} {
		t.Run(mode.String(), func(t *testing.T) {
			db := engine.New(engine.Options{})
			m := splitFixture(t, db, n)
			ctrl := NewController(db, mode)
			if err := ctrl.Start(m); err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			errCh := make(chan error, 16)
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 40; i++ {
						id := (w*13+i*7)%n + 1
						if err := ctrl.EnsureMigrated("cust_private", parsePred(t, fmt.Sprintf(`c_id = %d`, id))); err != nil {
							errCh <- err
							return
						}
						city := (w + i) % 10
						if err := ctrl.EnsureMigrated("cust_public", parsePred(t, fmt.Sprintf(`c_city = 'city-%d'`, city))); err != nil {
							errCh <- err
							return
						}
					}
				}(w)
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Fatal(err)
			}
			// All 300 tuples end up migrated (the city predicates cover all)
			// with exactly one copy each.
			for _, q := range []string{
				`SELECT COUNT(*) FROM cust_private`,
				`SELECT COUNT(*) FROM cust_public`,
			} {
				if got := mustSelect(t, db, q)[0][0].Int(); got != n {
					t.Errorf("%s = %d, want %d", q, got, n)
				}
			}
		})
	}
}

func TestAbortHandlingReleasesAndRetries(t *testing.T) {
	db := engine.New(engine.Options{})
	m := splitFixture(t, db, 50)
	ctrl := NewController(db, DetectEarly)
	if err := ctrl.Start(m); err != nil {
		t.Fatal(err)
	}
	ctrl.InjectTransformFailures(1)
	err := ctrl.EnsureMigrated("cust_private", parsePred(t, `c_id = 9`))
	if !errors.Is(err, errInjected) {
		t.Fatalf("expected injected failure, got %v", err)
	}
	rt := ctrl.RuntimeFor("cust_private")
	// The claim must have been released (paper §3.5 / Figure 2): a retry
	// succeeds and the tuple migrates exactly once.
	if err := ctrl.EnsureMigrated("cust_private", parsePred(t, `c_id = 9`)); err != nil {
		t.Fatal(err)
	}
	if rt.bitmap.MigratedCount() != 1 {
		t.Fatalf("migrated = %d", rt.bitmap.MigratedCount())
	}
	rows := mustSelect(t, db, `SELECT COUNT(*) FROM cust_private WHERE c_id = 9`)
	if rows[0][0].Int() != 1 {
		t.Fatalf("row count after retry: %v", rows[0][0])
	}
	// The aborted attempt's partial inserts were rolled back.
	rows = mustSelect(t, db, `SELECT COUNT(*) FROM cust_private`)
	if rows[0][0].Int() != 1 {
		t.Fatalf("total rows: %v", rows[0][0])
	}
}

func TestPageGranularityMigratesWholeGranule(t *testing.T) {
	db := engine.New(engine.Options{})
	m := splitFixture(t, db, 100)
	m.Statements[0].Granularity = 32
	ctrl := NewController(db, DetectEarly)
	if err := ctrl.Start(m); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.EnsureMigrated("cust_private", parsePred(t, `c_id = 1`)); err != nil {
		t.Fatal(err)
	}
	// Tuple 1 lives in granule 0 (ordinals 0..31): the whole page migrated.
	got := mustSelect(t, db, `SELECT COUNT(*) FROM cust_private`)[0][0].Int()
	if got != 32 {
		t.Errorf("page-granularity migrated %d rows, want 32", got)
	}
}

func TestHookMigratesOnInsertConflictCheck(t *testing.T) {
	// Inserting into the new schema with a unique key must first migrate
	// potentially conflicting old rows (paper §2.1 last paragraph).
	db := engine.New(engine.Options{})
	m := splitFixture(t, db, 20)
	ctrl := NewController(db, DetectEarly)
	if err := ctrl.Start(m); err != nil {
		t.Fatal(err)
	}
	// Insert a row whose c_id collides with old row 12: the unique check
	// migrates row 12 first, so the insert correctly fails.
	_, err := db.Exec(`INSERT INTO cust_private VALUES (12, 0.0, 0)`)
	if err == nil || !errors.Is(err, engine.ErrUniqueViolation) {
		t.Fatalf("expected unique violation after lazy migration, got %v", err)
	}
	// The conflicting old row is now physically migrated.
	rows := mustSelect(t, db, `SELECT c_balance FROM cust_private WHERE c_id = 12`)
	if len(rows) != 1 || rows[0][0].Float() != 18 {
		t.Errorf("migrated row: %v", rows)
	}
	// A non-conflicting insert succeeds (migrating nothing extra: id 999
	// does not exist in the old table).
	mustExec(t, db, `INSERT INTO cust_private VALUES (999, 1.0, 0)`)
	if got := mustSelect(t, db, `SELECT COUNT(*) FROM cust_private`)[0][0].Int(); got != 2 {
		t.Errorf("rows after inserts: %d", got)
	}
}

func TestAggregateMigration(t *testing.T) {
	db := engine.New(engine.Options{})
	mustExec(t, db, `CREATE TABLE lines (
		w INT, o INT, n INT, amount FLOAT, PRIMARY KEY (w, o, n))`)
	tx := db.Begin()
	tbl, _ := db.Catalog().Table("lines")
	for w := 1; w <= 3; w++ {
		for o := 1; o <= 10; o++ {
			for n := 1; n <= 4; n++ {
				row := types.Row{types.NewInt(int64(w)), types.NewInt(int64(o)), types.NewInt(int64(n)), types.NewFloat(float64(o * n))}
				db.InsertRow(tx, tbl, row, sql.ConflictError)
			}
		}
	}
	db.Commit(tx)

	m := &Migration{
		Name:  "agg-lines",
		Setup: `CREATE TABLE line_totals (w INT, o INT, total FLOAT, PRIMARY KEY (w, o))`,
		Statements: []*Statement{{
			Name:     "agg",
			Driving:  "l",
			Category: ManyToOne,
			GroupBy:  []string{"w", "o"},
			Outputs: []OutputSpec{{
				Table:  "line_totals",
				Def:    parseSelect(t, `SELECT w, o, SUM(amount) AS total FROM lines l GROUP BY w, o`),
				KeyMap: map[string]string{"w": "w", "o": "o"},
			}},
		}},
		// The base table stays in the new schema (maintained aggregate).
	}
	ctrl := NewController(db, DetectEarly)
	if err := ctrl.Start(m); err != nil {
		t.Fatal(err)
	}
	// Client request for one group migrates the whole group, not the rows
	// that matched a narrower tuple predicate.
	if err := ctrl.EnsureMigrated("line_totals", parsePred(t, `w = 2 AND o = 3`)); err != nil {
		t.Fatal(err)
	}
	rows := mustSelect(t, db, `SELECT total FROM line_totals WHERE w = 2 AND o = 3`)
	if len(rows) != 1 || rows[0][0].Float() != 3+6+9+12 {
		t.Fatalf("group total: %v", rows)
	}
	rt := ctrl.RuntimeFor("line_totals")
	if rt.hash.MigratedCount() != 1 {
		t.Fatalf("groups migrated: %d", rt.hash.MigratedCount())
	}
	// Writer path: EnsureGroupMigrated then maintain both tables.
	group := types.Row{types.NewInt(1), types.NewInt(5)}
	if err := ctrl.EnsureGroupMigrated("line_totals", group); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `INSERT INTO lines VALUES (1, 5, 99, 100.0)`)
	mustExec(t, db, `UPDATE line_totals SET total = total + 100.0 WHERE w = 1 AND o = 5`)
	rows = mustSelect(t, db, `SELECT total FROM line_totals WHERE w = 1 AND o = 5`)
	if rows[0][0].Float() != 5+10+15+20+100 {
		t.Fatalf("maintained total: %v", rows[0][0])
	}
	// Background completes every group; totals must match a direct
	// aggregation over the base table.
	bg := NewBackground(ctrl, 0)
	bg.Start()
	bg.Wait()
	if err := bg.Err(); err != nil {
		t.Fatal(err)
	}
	if !ctrl.Complete() {
		t.Fatal("aggregate migration should complete")
	}
	want := mustSelect(t, db, `SELECT w, o, SUM(amount) FROM lines GROUP BY w, o ORDER BY w, o`)
	got := mustSelect(t, db, `SELECT w, o, total FROM line_totals ORDER BY w, o`)
	if len(want) != len(got) {
		t.Fatalf("group counts: want %d got %d", len(want), len(got))
	}
	for i := range want {
		if want[i][2].Float() != got[i][2].Float() {
			t.Fatalf("group %v: want %v got %v", want[i][:2], want[i][2], got[i][2])
		}
	}
}

func TestJoinMigrationWithSeed(t *testing.T) {
	db := engine.New(engine.Options{})
	mustExec(t, db, `
		CREATE TABLE ol (w INT, o INT, i INT, qty INT, PRIMARY KEY (w, o, i));
		CREATE TABLE stock (s_w INT, s_i INT, s_qty INT, PRIMARY KEY (s_w, s_i));`)
	// Stock for items 1..6 in warehouse 1; order lines reference items 1..4
	// only, so items 5 and 6 have empty groups and need seeding.
	for i := 1; i <= 6; i++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO stock VALUES (1, %d, %d)`, i, i*10))
	}
	for o := 1; o <= 3; o++ {
		for i := 1; i <= 4; i++ {
			mustExec(t, db, fmt.Sprintf(`INSERT INTO ol VALUES (1, %d, %d, %d)`, o, i, o+i))
		}
	}
	m := &Migration{
		Name: "join-denorm",
		Setup: `CREATE TABLE ol_stock (
			w INT, o INT, i INT, qty INT, s_qty INT,
			UNIQUE (w, i, o));`,
		Statements: []*Statement{{
			Name:     "join",
			Driving:  "l",
			Category: ManyToMany,
			GroupBy:  []string{"w", "i"},
			Outputs: []OutputSpec{{
				Table: "ol_stock",
				Def: parseSelect(t, `SELECT l.w, l.o, l.i, l.qty, s.s_qty
					FROM ol l, stock s WHERE s.s_w = l.w AND s.s_i = l.i`),
				KeyMap: map[string]string{"w": "w", "i": "i"},
			}},
			Seed: &SeedSpec{
				Def:     parseSelect(t, `SELECT s.s_w, NULL AS o, s.s_i, NULL AS qty, s.s_qty FROM stock s`),
				Driving: "s",
				GroupBy: []string{"s_w", "s_i"},
			},
		}},
		RetireInputs: []string{"ol", "stock"},
	}
	ctrl := NewController(db, DetectEarly)
	if err := ctrl.Start(m); err != nil {
		t.Fatal(err)
	}
	// A request touching item 2 migrates group (1,2): 3 joined rows.
	if err := ctrl.EnsureGroupMigrated("ol_stock", types.Row{types.NewInt(1), types.NewInt(2)}); err != nil {
		t.Fatal(err)
	}
	rows := mustSelect(t, db, `SELECT COUNT(*) FROM ol_stock WHERE i = 2`)
	if rows[0][0].Int() != 3 {
		t.Fatalf("joined rows for item 2: %v", rows[0][0])
	}
	// An empty group (item 5) migrates as a seed row carrying stock data.
	if err := ctrl.EnsureGroupMigrated("ol_stock", types.Row{types.NewInt(1), types.NewInt(5)}); err != nil {
		t.Fatal(err)
	}
	rows = mustSelect(t, db, `SELECT s_qty FROM ol_stock WHERE i = 5`)
	if len(rows) != 1 || rows[0][0].Int() != 50 {
		t.Fatalf("seed row for item 5: %v", rows)
	}
	// Predicate-driven path through transposition: filter on output column.
	if err := ctrl.EnsureMigrated("ol_stock", parsePred(t, `i = 3 AND w = 1`)); err != nil {
		t.Fatal(err)
	}
	rows = mustSelect(t, db, `SELECT COUNT(*) FROM ol_stock WHERE i = 3`)
	if rows[0][0].Int() != 3 {
		t.Fatalf("item 3 rows: %v", rows[0][0])
	}
	// Background completes the rest: 12 joined + 2 seed rows.
	bg := NewBackground(ctrl, 0)
	bg.Start()
	bg.Wait()
	if err := bg.Err(); err != nil {
		t.Fatal(err)
	}
	total := mustSelect(t, db, `SELECT COUNT(*) FROM ol_stock`)[0][0].Int()
	if total != 14 {
		t.Errorf("total rows = %d, want 14", total)
	}
}

func TestRetiredAndDoubleStart(t *testing.T) {
	db := engine.New(engine.Options{})
	m := splitFixture(t, db, 10)
	ctrl := NewController(db, DetectEarly)
	if err := ctrl.Start(m); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Start(m); err == nil {
		t.Error("double Start should fail")
	}
	if !ctrl.IsRetired("CUST") || ctrl.IsRetired("cust_private") {
		t.Error("retired flags wrong")
	}
	// The lazy flip marks retirement on the installed catalog version, not on
	// the table itself: older snapshots must keep seeing the pre-flip schema.
	head := db.Catalog().Head()
	if !head.Retired("cust") {
		t.Error("head version should mark cust retired")
	}
	tbl, _ := db.Catalog().Table("cust")
	if tbl.Retired() {
		t.Error("table-global retired flag must stay clear on the lazy path")
	}
	if db.CatalogAt(0).Retired("cust") {
		t.Error("pre-install version must not see cust retired")
	}
}

func TestEnsureMigratedUnknownTableIsNoop(t *testing.T) {
	db := engine.New(engine.Options{})
	ctrl := NewController(db, DetectEarly)
	if err := ctrl.EnsureMigrated("nosuch", nil); err != nil {
		t.Fatal(err)
	}
	if !ctrl.Complete() {
		t.Error("no migration means complete")
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []*Migration{
		{Name: "", Statements: []*Statement{{}}},
		{Name: "x"},
		{Name: "x", Statements: []*Statement{{Name: "s"}}},
		{Name: "x", Statements: []*Statement{{Name: "s", Driving: "d", Outputs: []OutputSpec{{}}}}},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
	// Bitmap with GroupBy and hash without GroupBy both fail.
	def := &sql.SelectStmt{Items: []sql.SelectItem{{Star: true}}, From: []sql.TableRef{{Name: "t", Alias: "d"}}, Limit: -1}
	s := &Statement{Name: "s", Driving: "d", Category: OneToOne, GroupBy: []string{"x"},
		Outputs: []OutputSpec{{Table: "o", Def: def}}}
	if err := s.Validate(); err == nil {
		t.Error("bitmap + GroupBy should fail")
	}
	s = &Statement{Name: "s", Driving: "d", Category: ManyToOne,
		Outputs: []OutputSpec{{Table: "o", Def: def}}}
	if err := s.Validate(); err == nil {
		t.Error("hash without GroupBy should fail")
	}
	if (&Statement{Name: "s", Driving: "zz", Category: OneToOne,
		Outputs: []OutputSpec{{Table: "o", Def: def}}}).Validate() == nil {
		t.Error("driving alias not in FROM should fail")
	}
}

func TestCategoryStrings(t *testing.T) {
	if OneToOne.String() != "1:1" || OneToMany.String() != "1:n" ||
		ManyToOne.String() != "n:1" || ManyToMany.String() != "n:n" || Category(9).String() != "?" {
		t.Error("category strings")
	}
	if !OneToOne.UsesBitmap() || ManyToOne.UsesBitmap() {
		t.Error("UsesBitmap")
	}
	if DetectEarly.String() != "tracker" || DetectOnInsert.String() != "on-conflict" {
		t.Error("mode strings")
	}
}

func TestOnConflictModeRequiresUniqueIndex(t *testing.T) {
	db := engine.New(engine.Options{})
	mustExec(t, db, `CREATE TABLE src (a INT PRIMARY KEY)`)
	m := &Migration{
		Name:  "m",
		Setup: `CREATE TABLE dst (a INT)`, // no unique index
		Statements: []*Statement{{
			Name: "s", Driving: "s", Category: OneToOne,
			Outputs: []OutputSpec{{Table: "dst", Def: parseSelect(t, `SELECT a FROM src s`)}},
		}},
	}
	ctrl := NewController(db, DetectOnInsert)
	if err := ctrl.Start(m); err == nil {
		t.Fatal("on-conflict mode must demand a unique output index")
	}
}

func TestBackgroundDelay(t *testing.T) {
	db := engine.New(engine.Options{})
	m := splitFixture(t, db, 30)
	ctrl := NewController(db, DetectEarly)
	if err := ctrl.Start(m); err != nil {
		t.Fatal(err)
	}
	bg := NewBackground(ctrl, 50*time.Millisecond)
	bg.Start()
	if !bg.Started().IsZero() {
		t.Error("background should not have started yet")
	}
	bg.Wait()
	if bg.Started().IsZero() {
		t.Error("background never started")
	}
	if !ctrl.Complete() {
		t.Error("background did not finish the migration")
	}
}

func TestBackgroundStop(t *testing.T) {
	db := engine.New(engine.Options{})
	m := splitFixture(t, db, 30)
	ctrl := NewController(db, DetectEarly)
	ctrl.Start(m)
	bg := NewBackground(ctrl, time.Hour) // never starts working
	bg.Start()
	bg.Stop()
	if ctrl.Complete() {
		t.Error("stopped background should not complete the migration")
	}
	bg.Stop() // double stop is safe
}
