package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/bullfrogdb/bullfrog/internal/types"
)

func gkey(parts ...int64) []byte {
	row := make(types.Row, len(parts))
	for i, p := range parts {
		row[i] = types.NewInt(p)
	}
	return types.EncodeKey(nil, row)
}

func TestHashTrackerStateMachine(t *testing.T) {
	h := NewHashTracker()
	k := gkey(1, 2)
	if h.TryClaim(k) != Claimed {
		t.Fatal("first claim")
	}
	if h.TryClaim(k) != Busy {
		t.Fatal("second claim should be busy")
	}
	h.MarkMigrated(k)
	if h.TryClaim(k) != Done {
		t.Fatal("claim after migrate")
	}
	if !h.IsMigrated(k) || h.IsMigrated(gkey(9)) {
		t.Fatal("IsMigrated wrong")
	}
	if h.MigratedCount() != 1 {
		t.Fatalf("MigratedCount = %d", h.MigratedCount())
	}
}

func TestHashTrackerAbortClaimable(t *testing.T) {
	// Algorithm 3 lines 7-9: an aborted group is claimable by exactly one
	// successor.
	h := NewHashTracker()
	k := gkey(7)
	h.TryClaim(k)
	h.ReleaseAbort(k)
	if h.TryClaim(k) != Claimed {
		t.Fatal("aborted group should be claimable")
	}
	if h.TryClaim(k) != Busy {
		t.Fatal("only one successor may claim")
	}
	// ReleaseAbort must not clear a migrated group.
	h.MarkMigrated(k)
	h.ReleaseAbort(k)
	if !h.IsMigrated(k) {
		t.Fatal("ReleaseAbort cleared migrated state")
	}
	// MarkMigrated on a non-claimed group is a no-op.
	h.MarkMigrated(gkey(42))
	if h.IsMigrated(gkey(42)) {
		t.Fatal("MarkMigrated without claim should not migrate")
	}
}

func TestHashTrackerRestore(t *testing.T) {
	h := NewHashTracker()
	k := gkey(3)
	h.RestoreMigrated(k)
	h.RestoreMigrated(k)
	if h.MigratedCount() != 1 || !h.IsMigrated(k) {
		t.Fatal("restore idempotency")
	}
}

// TestHashTrackerExactlyOnce: many workers race over overlapping group sets;
// every group must be claimed (and migrated) exactly once, with aborts
// allowing exactly one successor.
func TestHashTrackerExactlyOnce(t *testing.T) {
	h := NewHashTracker()
	const nGroups = 3000
	success := make([]int32, nGroups)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for h.MigratedCount() < nGroups {
				g := r.Intn(nGroups)
				k := gkey(int64(g))
				if h.TryClaim(k) != Claimed {
					continue
				}
				if r.Intn(4) == 0 {
					h.ReleaseAbort(k)
					continue
				}
				success[g]++ // single owner: no lock needed
				h.MarkMigrated(k)
			}
		}(int64(w))
	}
	wg.Wait()
	for g, c := range success {
		if c != 1 {
			t.Fatalf("group %d migrated %d times", g, c)
		}
	}
}

func TestHashTrackerManyDistinctKeys(t *testing.T) {
	h := NewHashTracker()
	for i := 0; i < 10000; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		if h.TryClaim(k) != Claimed {
			t.Fatalf("key %d claim failed", i)
		}
		h.MarkMigrated(k)
	}
	if h.MigratedCount() != 10000 {
		t.Fatalf("MigratedCount = %d", h.MigratedCount())
	}
}
