package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/bullfrogdb/bullfrog/internal/engine"
)

// TestCompletionDropErrorSurfaces is the errdrop regression test for the
// end-of-migration cleanup: when the DropTable of a retired input fails, the
// error must reach (a) the background worker's Err/CompletionErr, and (b)
// AwaitMigration waiters — it used to die silently inside a background
// goroutine. The input table is emptied (zero granules: the bitmap is
// complete from the start) and dropped out from under the migration, so the
// cleanup's DropTable deterministically fails.
func TestCompletionDropErrorSurfaces(t *testing.T) {
	db := engine.New(engine.Options{})
	m := splitFixture(t, db, 0) // empty input: completion needs no data pass
	m.DropInputsOnComplete = true
	ctrl := NewController(db, DetectEarly)
	if err := ctrl.Start(m); err != nil {
		t.Fatal(err)
	}
	// Simulate an operator racing the cleanup: the input vanishes before the
	// end-of-migration drop runs.
	if err := db.Catalog().DropTable("cust"); err != nil {
		t.Fatalf("pre-drop: %v", err)
	}

	bg := NewBackground(ctrl, 0)
	bg.Workers = 1
	bg.Start()
	bg.Wait()

	err := bg.Err()
	if err == nil {
		t.Fatal("background Err() is nil; DropTable failure was dropped")
	}
	select {
	case cerr := <-bg.CompletionErr():
		if !errors.Is(cerr, err) && cerr.Error() != err.Error() {
			t.Fatalf("CompletionErr channel carries %v, Err() %v", cerr, err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("CompletionErr channel never received the cleanup failure")
	}

	// The migration still counts as complete (data is all moved); waiters get
	// the cleanup failure rather than a silent nil.
	if !ctrl.Complete() {
		t.Fatal("migration should be complete despite the cleanup failure")
	}
	if aerr := ctrl.AwaitMigration(context.Background()); aerr == nil {
		t.Fatal("AwaitMigration returned nil; completion error was dropped")
	} else if aerr.Error() != err.Error() {
		t.Fatalf("AwaitMigration error %v != worker error %v", aerr, err)
	}
	if ctrl.CompletionErr() == nil {
		t.Fatal("CompletionErr() accessor is nil")
	}
}
