package core

import (
	"strings"
	"testing"

	"github.com/bullfrogdb/bullfrog/internal/engine"
)

// TestPrevalidateUniqueRejectsDuplicates covers the §2.4 synchronous check:
// a migration that would funnel duplicate keys into a unique output column
// is rejected at Start rather than silently dropping rows later.
func TestPrevalidateUniqueRejectsDuplicates(t *testing.T) {
	db := engine.New(engine.Options{})
	mustExec(t, db, `CREATE TABLE src (id INT PRIMARY KEY, cat INT)`)
	mustExec(t, db, `INSERT INTO src VALUES (1, 7), (2, 7), (3, 8)`) // cat 7 duplicated
	m := &Migration{
		Name:  "dedup",
		Setup: `CREATE TABLE by_cat (cat INT PRIMARY KEY, id INT)`,
		Statements: []*Statement{{
			Name: "dedup", Driving: "s", Category: OneToOne,
			Outputs: []OutputSpec{{
				Table: "by_cat",
				Def:   parseSelect(t, `SELECT cat, id FROM src s`),
			}},
		}},
		RetireInputs:      []string{"src"},
		PrevalidateUnique: true,
	}
	ctrl := NewController(db, DetectEarly)
	err := ctrl.Start(m)
	if err == nil || !strings.Contains(err.Error(), "unique") {
		t.Fatalf("pre-check should reject duplicate keys, got %v", err)
	}
	// The switch never happened: the old table is still live.
	if ctrl.IsRetired("src") {
		t.Error("failed migration must not retire inputs")
	}
	// Without duplicates the same spec passes.
	mustExec(t, db, `DELETE FROM src WHERE id = 2`)
	mustExec(t, db, `DROP TABLE by_cat`) // Setup re-runs
	ctrl2 := NewController(db, DetectEarly)
	if err := ctrl2.Start(m); err != nil {
		t.Fatalf("clean data should pass the pre-check: %v", err)
	}
}

// TestWithoutPrevalidationDuplicatesDrop covers the other §2.4 option: pure
// lazy migration proceeds and conflicting rows simply fail to migrate,
// counted as dropped.
func TestWithoutPrevalidationDuplicatesDrop(t *testing.T) {
	db := engine.New(engine.Options{})
	mustExec(t, db, `CREATE TABLE src (id INT PRIMARY KEY, cat INT)`)
	mustExec(t, db, `INSERT INTO src VALUES (1, 7), (2, 7)`)
	m := &Migration{
		Name:  "dedup",
		Setup: `CREATE TABLE by_cat (cat INT PRIMARY KEY, id INT)`,
		Statements: []*Statement{{
			Name: "dedup", Driving: "s", Category: OneToOne,
			Outputs: []OutputSpec{{
				Table: "by_cat",
				Def:   parseSelect(t, `SELECT cat, id FROM src s`),
			}},
		}},
		RetireInputs: []string{"src"},
	}
	// On-conflict mode tolerates the duplicate (DO NOTHING).
	ctrl := NewController(db, DetectOnInsert)
	if err := ctrl.Start(m); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.EnsureMigrated("by_cat", nil); err != nil {
		t.Fatal(err)
	}
	rows := mustSelect(t, db, `SELECT COUNT(*) FROM by_cat`)
	if rows[0][0].Int() != 1 {
		t.Errorf("rows = %v, want 1 (one of the duplicates dropped)", rows[0][0])
	}
}
