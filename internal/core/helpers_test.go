package core

import (
	"strconv"

	"github.com/bullfrogdb/bullfrog/internal/expr"
	"github.com/bullfrogdb/bullfrog/internal/sql"
)

type typesSelect = sql.SelectStmt

func itoa(v int) string { return strconv.Itoa(v) }

func parseWhereCore(src string) (expr.Expr, error) { return sql.ParseExpr(src) }

func mustParseSelect(src string) *sql.SelectStmt {
	s, err := sql.ParseOne(src)
	if err != nil {
		panic(err)
	}
	return s.(*sql.SelectStmt)
}
