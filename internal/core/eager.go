package core

import (
	"context"
	"fmt"
	"time"

	"github.com/bullfrogdb/bullfrog/internal/engine"
	"github.com/bullfrogdb/bullfrog/internal/obs"
	"github.com/bullfrogdb/bullfrog/internal/sql"
	"github.com/bullfrogdb/bullfrog/internal/txn"
	"github.com/bullfrogdb/bullfrog/internal/types"
)

// Gate serializes truly-exclusive operations against client transactions.
// Clients hold the shared side for the duration of each transaction; the
// exclusive side is taken only by operations that must observe zero in-flight
// work: the eager baseline's transform-and-swap (which is what produces the
// paper's downtime window — Figures 3, 5, 7: throughput drops to near zero
// while queued requests wait), the multi-step baseline's final Switch, and
// DB.Close. BullFrog's lazy migration never takes the exclusive side: its big
// flip is a versioned-catalog install at a commit barrier
// (engine.DB.InstallCatalogVersion), so migration start has no stall point.
type Gate struct {
	sem chan struct{}
	met *obs.MigrationMetrics // nil = wait time not recorded
}

// gateCapacity bounds concurrent client transactions under the gate; eager
// migration drains all slots.
const gateCapacity = 1 << 14

// NewGate returns a client/migration gate.
func NewGate() *Gate { return &Gate{sem: make(chan struct{}, gateCapacity)} }

// SetObs attaches migration metrics so blocked Enter calls feed the
// gate-wait histogram. Call before concurrent use.
func (g *Gate) SetObs(m *obs.MigrationMetrics) { g.met = m }

// Enter takes a shared slot (a client transaction begins), waiting without
// bound. Statement-scoped callers should prefer EnterContext. The uncontended
// fast path records nothing; a blocked entry (eager migration holds the
// exclusive side, or the gate is saturated) feeds the gate-wait histogram.
func (g *Gate) Enter() {
	select {
	case g.sem <- struct{}{}:
		return
	default:
	}
	if g.met == nil {
		g.sem <- struct{}{}
		return
	}
	start := time.Now()
	g.sem <- struct{}{}
	g.met.GateWait.ObserveSince(start)
}

// EnterContext is Enter bounded by a context: a caller parked behind an eager
// migration's exclusive section (or a saturated gate) returns
// context.Cause(ctx) as soon as ctx is done, without having taken a slot.
// Blocked time feeds the gate-wait histogram whether or not entry succeeds.
// A nil ctx waits without bound, like Enter.
func (g *Gate) EnterContext(ctx context.Context) error {
	if ctx == nil {
		g.Enter()
		return nil
	}
	select {
	case g.sem <- struct{}{}:
		return nil
	default:
	}
	if err := ctx.Err(); err != nil {
		return context.Cause(ctx)
	}
	var start time.Time
	if g.met != nil {
		start = time.Now()
	}
	select {
	case g.sem <- struct{}{}:
		if g.met != nil {
			g.met.GateWait.ObserveSince(start)
		}
		return nil
	case <-ctx.Done():
		if g.met != nil {
			g.met.GateWait.ObserveSince(start)
		}
		return context.Cause(ctx)
	}
}

// Leave releases the shared slot. It is deliberately unconditional — there is
// no LeaveContext — because a held slot must always be returned or the gate
// permanently loses capacity (and Exclusive eventually wedges).
//
//lint:ignore ctxflow releases a held slot: must complete or the gate leaks capacity
func (g *Gate) Leave() { <-g.sem }

// Exclusive drains every slot (waiting out in-flight clients and blocking
// new ones), runs f, then refills. The benchmark harness also uses this to
// switch schema variants atomically with respect to client transactions.
// Cancellable callers should prefer ExclusiveContext.
func (g *Gate) Exclusive(f func() error) error {
	for i := 0; i < gateCapacity; i++ {
		g.sem <- struct{}{}
	}
	defer func() {
		for i := 0; i < gateCapacity; i++ {
			<-g.sem
		}
	}()
	return f()
}

// ExclusiveContext is Exclusive bounded by a context: if ctx is done before
// every slot is drained, the slots acquired so far are returned and
// context.Cause(ctx) is reported without running f. Once the drain completes,
// f runs to completion and the refill is unconditional (capacity can never
// leak). A nil ctx behaves like Exclusive.
func (g *Gate) ExclusiveContext(ctx context.Context, f func() error) error {
	if ctx == nil {
		return g.Exclusive(f)
	}
	for i := 0; i < gateCapacity; i++ {
		select {
		case g.sem <- struct{}{}:
		case <-ctx.Done():
			for j := 0; j < i; j++ {
				<-g.sem
			}
			return context.Cause(ctx)
		}
	}
	defer func() {
		for i := 0; i < gateCapacity; i++ {
			<-g.sem
		}
	}()
	return f()
}

// EagerResult reports an eager migration's outcome.
type EagerResult struct {
	Duration time.Duration
	Rows     int64 // rows written into the new schema
}

// MigrateEager is the baseline the paper compares against (§4): it blocks
// all client transactions (via the gate), physically transforms every input
// row into the new schema in one shot, retires the old tables, and only then
// lets clients proceed. onSwitched, if non-nil, runs inside the exclusive
// section after the data moved (the harness flips its workload variant
// there, before any queued client can run).
func MigrateEager(db *engine.DB, m *Migration, gate *Gate, onSwitched ...func()) (EagerResult, error) {
	return MigrateEagerContext(nil, db, m, gate, onSwitched...)
}

// MigrateEagerContext is MigrateEager bounded by a context: a caller parked
// behind the gate drain gives up (with context.Cause) when ctx is done before
// the exclusive section is entered; once entered, the migration runs to
// completion. A nil ctx waits without bound.
func MigrateEagerContext(ctx context.Context, db *engine.DB, m *Migration, gate *Gate, onSwitched ...func()) (EagerResult, error) {
	if err := m.Validate(); err != nil {
		return EagerResult{}, err
	}
	var res EagerResult
	start := time.Now()
	err := gate.ExclusiveContext(ctx, func() error {
		if m.Setup != "" {
			if _, err := db.Exec(m.Setup); err != nil {
				return fmt.Errorf("core: eager setup: %w", err)
			}
		}
		tx := db.Begin()
		for _, stmt := range m.Statements {
			for _, out := range stmt.Outputs {
				tbl, err := db.Catalog().Table(out.Table)
				if err != nil {
					tx.Abort()
					return err
				}
				plan, err := db.PlanSelect(out.Def)
				if err != nil {
					tx.Abort()
					return err
				}
				err = plan.Execute(tx, func(row types.Row) error {
					_, ok, ierr := db.InsertRow(tx, tbl, row.Clone(), sql.ConflictError)
					if ierr != nil {
						return ierr
					}
					if ok {
						res.Rows++
					}
					return nil
				})
				if err != nil {
					// The transform error unwinds to the caller; a lost abort
					// record is advisory (see engine.DB.Abort) and counted.
					_ = db.Abort(tx)
					return err
				}
			}
			// Seed completion for join migrations: secondary rows whose
			// group produced no joined output.
			if stmt.Seed != nil {
				if err := eagerSeed(db, tx, stmt, &res); err != nil {
					_ = db.Abort(tx)
					return err
				}
			}
		}
		if err := db.Commit(tx); err != nil {
			return err
		}
		for _, name := range m.RetireInputs {
			tbl, err := db.Catalog().Table(name)
			if err != nil {
				return err
			}
			tbl.SetRetired(true)
			if m.DropInputsOnComplete {
				if err := db.Catalog().DropTable(name); err != nil {
					return err
				}
			}
		}
		for _, f := range onSwitched {
			f()
		}
		return nil
	})
	res.Duration = time.Since(start)
	return res, err
}

// eagerSeed inserts seed rows for every secondary-table group with no output
// rows yet (the eager analogue of StmtRuntime.migrateSeed).
func eagerSeed(db *engine.DB, tx *txn.Txn, stmt *Statement, res *EagerResult) error {
	// Find distinct secondary-table group keys, then the subset that
	// produced no output, then run the seed def for those rows.
	seedTblName := ""
	for _, ref := range stmt.Seed.Def.From {
		if norm(ref.AliasOrName()) == norm(stmt.Seed.Driving) {
			seedTblName = ref.Name
		}
	}
	seedTbl, err := db.Catalog().Table(seedTblName)
	if err != nil {
		return err
	}
	outTbl, err := db.Catalog().Table(stmt.Outputs[0].Table)
	if err != nil {
		return err
	}
	seedOrds := make([]int, len(stmt.Seed.GroupBy))
	for i, name := range stmt.Seed.GroupBy {
		seedOrds[i] = seedTbl.Def.ColumnIndex(name)
	}
	// Group keys already present in the output (via the output's KeyMap
	// columns aligned with the seed group key are unknown here; instead use
	// the driving table's groups, which by construction produced outputs).
	// A group is "covered" when the driving table has any row for it.
	drivingName := ""
	for _, ref := range stmt.Outputs[0].Def.From {
		if norm(ref.AliasOrName()) == norm(stmt.Driving) {
			drivingName = ref.Name
		}
	}
	drivingTbl, err := db.Catalog().Table(drivingName)
	if err != nil {
		return err
	}
	drivingOrds := make([]int, len(stmt.GroupBy))
	for i, name := range stmt.GroupBy {
		drivingOrds[i] = drivingTbl.Def.ColumnIndex(name)
	}
	covered := map[string]bool{}
	p, err := db.PlanSelect(selectAll(drivingTbl.Def.Name))
	if err != nil {
		return err
	}
	if err := p.Execute(tx, func(row types.Row) error {
		key := make(types.Row, len(drivingOrds))
		for i, ord := range drivingOrds {
			key[i] = row[ord]
		}
		covered[string(types.EncodeKey(nil, key))] = true
		return nil
	}); err != nil {
		return err
	}
	// Seed rows for uncovered groups.
	var seedRows []types.Row
	sp, err := db.PlanSelect(selectAll(seedTbl.Def.Name))
	if err != nil {
		return err
	}
	if err := sp.Execute(tx, func(row types.Row) error {
		key := make(types.Row, len(seedOrds))
		for i, ord := range seedOrds {
			key[i] = row[ord]
		}
		if !covered[string(types.EncodeKey(nil, key))] {
			seedRows = append(seedRows, row.Clone())
		}
		return nil
	}); err != nil {
		return err
	}
	if len(seedRows) == 0 {
		return nil
	}
	plan, err := db.PlanSelectWithBoundRows(stmt.Seed.Def, norm(stmt.Seed.Driving), &engine.BoundRows{Rows: seedRows})
	if err != nil {
		return err
	}
	return plan.Execute(tx, func(row types.Row) error {
		_, ok, ierr := db.InsertRow(tx, outTbl, row.Clone(), sql.ConflictError)
		if ierr != nil {
			return ierr
		}
		if ok {
			res.Rows++
		}
		return nil
	})
}

func selectAll(table string) *sql.SelectStmt {
	return &sql.SelectStmt{
		Items: []sql.SelectItem{{Star: true}},
		From:  []sql.TableRef{{Name: table}},
		Limit: -1,
	}
}
