package core

import (
	"bytes"
	"io"
	"testing"

	"github.com/bullfrogdb/bullfrog/internal/engine"
	"github.com/bullfrogdb/bullfrog/internal/wal"
)

// chainFixtureSpecs returns two sequential migration specs: m1 copies t0 to
// t1, m2 copies t1 to t2. Inputs are retired but kept (no drop), so replay
// of a multi-migration log finds every table it needs.
func chainFixtureSpecs() (*Migration, *Migration) {
	m1 := &Migration{
		Name:  "m1",
		Setup: `CREATE TABLE t1 (a INT PRIMARY KEY, v INT)`,
		Statements: []*Statement{{
			Name: "s1", Driving: "x", Category: OneToOne,
			Outputs: []OutputSpec{{
				Table: "t1", Def: mustParseSelect(`SELECT a, v FROM t0 x`),
				KeyMap: map[string]string{"a": "a"},
			}},
		}},
		RetireInputs: []string{"t0"},
	}
	m2 := &Migration{
		Name:  "m2",
		Setup: `CREATE TABLE t2 (a INT PRIMARY KEY, v INT)`,
		Statements: []*Statement{{
			Name: "s2", Driving: "x", Category: OneToOne,
			Outputs: []OutputSpec{{
				Table: "t2", Def: mustParseSelect(`SELECT a, v FROM t1 x`),
				KeyMap: map[string]string{"a": "a"},
			}},
		}},
		RetireInputs: []string{"t1"},
	}
	return m1, m2
}

// installMarkers pre-scans a redo log for catalog-install markers — the
// recovery bootstrap: the marker list tells the restarted process which
// migration scripts to re-run (all of them) and which migration was active
// at the crash (the last one).
func installMarkers(t *testing.T, logBytes []byte) []string {
	t.Helper()
	var installs []string
	err := wal.Replay(bytes.NewReader(logBytes), func(rec wal.Record) error {
		if rec.Type == wal.RecInstall {
			installs = append(installs, rec.Table)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return installs
}

// TestRecoveryRebuildsActiveVersion is the §3.5 story across two catalog
// installs: migration m1 ran to completion, m2 started and migrated part of
// its data, then the process died. Depending on where the log was cut
// (before m2's install marker, after it, or after some of m2's migration
// records), the restarted process must identify the correct active migration
// from the install markers and rebuild the matching catalog version and
// tracker state.
func TestRecoveryRebuildsActiveVersion(t *testing.T) {
	var logBuf bytes.Buffer
	logWriter := wal.NewWriter(&logBuf)
	db := engine.New(engine.Options{WAL: logWriter})
	m1, m2 := chainFixtureSpecs()

	mustExec(t, db, `CREATE TABLE t0 (a INT PRIMARY KEY, v INT)`)
	for i := 1; i <= 10; i++ {
		mustExec(t, db, `INSERT INTO t0 VALUES (`+itoa(i)+`, `+itoa(i*100)+`)`)
	}

	ctrl := NewController(db, DetectEarly)
	if err := ctrl.Start(m1); err != nil {
		t.Fatal(err)
	}
	bg := NewBackground(ctrl, 0)
	bg.Start()
	bg.Wait()
	if err := bg.Err(); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Reset(); err != nil {
		t.Fatal(err)
	}
	if err := logWriter.Flush(); err != nil {
		t.Fatal(err)
	}
	cutBeforeInstall := logBuf.Len() // crash point: m2 never flipped

	if err := ctrl.Start(m2); err != nil {
		t.Fatal(err)
	}
	cutAfterInstall := logBuf.Len() // crash point: flip published, no data moved
	for _, id := range []int{2, 5, 7} {
		if err := ctrl.EnsureMigrated("t2", parsePred(t, `a = `+itoa(id))); err != nil {
			t.Fatal(err)
		}
	}
	if err := logWriter.Flush(); err != nil {
		t.Fatal(err)
	}
	logBytes := append([]byte(nil), logBuf.Bytes()...)

	// recover boots a fresh process from a log prefix: re-run the schema
	// script, re-run every completed migration's setup, Start the active
	// one, replay. Returns the recovered db and its controller.
	recover := func(t *testing.T, prefix []byte) (*engine.DB, *Controller, engine.RecoverStats) {
		t.Helper()
		installs := installMarkers(t, prefix)
		db2 := engine.New(engine.Options{})
		mustExec(t, db2, `CREATE TABLE t0 (a INT PRIMARY KEY, v INT)`)
		specs := map[string]*Migration{"m1": m1, "m2": m2}
		for _, name := range installs[:len(installs)-1] {
			// Completed migrations: their setup DDL must exist for replay;
			// their data comes back from the log itself.
			mustExec(t, db2, specs[name].Setup)
		}
		active := specs[installs[len(installs)-1]]
		ctrl2 := NewController(db2, DetectEarly)
		if err := ctrl2.Start(active); err != nil {
			t.Fatal(err)
		}
		stats, err := ctrl2.Recover(func() (io.Reader, error) {
			return bytes.NewReader(prefix), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := len(stats.Installs); got != len(installs) {
			t.Errorf("stats.Installs = %v, want %d markers", stats.Installs, len(installs))
		}
		return db2, ctrl2, stats
	}

	t.Run("cut-before-second-install", func(t *testing.T) {
		db2, ctrl2, _ := recover(t, logBytes[:cutBeforeInstall])
		// m1 was the last (and only) install; its data replays in full, so
		// recovery finds the trackers complete.
		if !ctrl2.Complete() {
			t.Error("m1 should recover as complete")
		}
		head := db2.Catalog().Head()
		if !head.Retired("t0") {
			t.Error("head must retire t0 (m1's input)")
		}
		if head.Retired("t1") {
			t.Error("t1 must not be retired before m2's install")
		}
		if n := mustSelect(t, db2, `SELECT COUNT(*) FROM t1`)[0][0].Int(); n != 10 {
			t.Errorf("t1 rows = %d, want 10", n)
		}
	})

	t.Run("cut-after-second-install", func(t *testing.T) {
		db2, ctrl2, stats := recover(t, logBytes[:cutAfterInstall])
		// The flip was published (marker flushed before the version install),
		// so recovery must rebuild m2 as active with an empty tracker.
		if stats.Migrated != 10 {
			t.Errorf("replayed migration records = %d, want 10 (m1's)", stats.Migrated)
		}
		head := db2.Catalog().Head()
		if !head.Retired("t1") {
			t.Error("head must retire t1 (m2's input)")
		}
		rt := ctrl2.RuntimeFor("t2")
		if rt == nil {
			t.Fatal("m2 runtime missing")
		}
		if got := rt.Stats().RowsMigrated; got != 0 {
			t.Errorf("m2 rows migrated = %d, want 0", got)
		}
		bg := NewBackground(ctrl2, 0)
		bg.Start()
		bg.Wait()
		if err := bg.Err(); err != nil {
			t.Fatal(err)
		}
		if n := mustSelect(t, db2, `SELECT COUNT(*) FROM t2`)[0][0].Int(); n != 10 {
			t.Errorf("t2 rows = %d, want 10", n)
		}
	})

	t.Run("cut-after-partial-work", func(t *testing.T) {
		db2, ctrl2, _ := recover(t, logBytes)
		head := db2.Catalog().Head()
		if !head.Retired("t1") {
			t.Error("head must retire t1 (m2's input)")
		}
		// m2's three lazily-migrated tuples are restored exactly once:
		// completing the migration with ConflictError inserts would fail
		// loudly on any duplicate.
		if n := mustSelect(t, db2, `SELECT COUNT(*) FROM t2`)[0][0].Int(); n != 3 {
			t.Errorf("t2 rows after replay = %d, want 3", n)
		}
		bg := NewBackground(ctrl2, 0)
		bg.Start()
		bg.Wait()
		if err := bg.Err(); err != nil {
			t.Fatal(err)
		}
		if n := mustSelect(t, db2, `SELECT COUNT(*) FROM t2`)[0][0].Int(); n != 10 {
			t.Errorf("t2 rows after completion = %d, want 10", n)
		}
	})
}
