package core

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/bullfrogdb/bullfrog/internal/obs"
	"github.com/bullfrogdb/bullfrog/internal/obs/trace"
)

// pacer is the backfill pool's adaptive throttle. Workers call observe()
// every batch; at most once per pacerSampleEvery it diffs the foreground
// exec-latency histograms and write-conflict counter in internal/obs against
// the previous sample, computes the windowed p99, and raises or lowers a
// throttle level. The level halves the batch size per step (batch) and adds
// a quadratic inter-batch pause (pause), so parallel backfill backs off as
// soon as client traffic degrades and ramps back up when it recovers — the
// paper's background threads (§2.2) without trampling TPC-C (§4).
//
// The healthy-latency baseline is an EWMA over non-degraded windows rather
// than a running minimum, so one unusually quiet window cannot pin the
// throttle on forever.
type pacer struct {
	met *obs.Set
	tr  *trace.Tracer // optional; level changes emit EvPacerLevel events

	// level is read lock-free on every batch; only observe() writes it.
	level atomic.Int32

	mu       sync.Mutex
	lastAt   time.Time
	lastExec [len(pacerKinds)]obs.HistogramSnapshot
	lastConf int64
	baseP99  float64 // EWMA of healthy windowed p99 (ns); 0 = no sample yet

	// now is the sampling clock; tests substitute a synthetic one so backoff
	// behavior is verifiable without wall-clock sleeps.
	now func() time.Time
}

// pacerKinds are the statement kinds whose latency counts as foreground
// health. DDL and "other" are excluded: they are rare and often slow by
// nature (a migration's own setup DDL must not throttle its backfill).
var pacerKinds = [...]obs.StmtKind{obs.StmtSelect, obs.StmtInsert, obs.StmtUpdate, obs.StmtDelete}

const (
	// pacerMaxLevel caps backoff at batch/64 plus 9ms pauses.
	pacerMaxLevel = 6
	// pacerSampleEvery rate-limits histogram snapshots; between samples
	// workers run at the current level.
	pacerSampleEvery = 50 * time.Millisecond
	// pacerDegradeFactor: a windowed p99 above baseline*factor is degraded.
	pacerDegradeFactor = 1.5
	// pacerMinSamples: windows with fewer foreground statements than this
	// are considered idle and decay the throttle instead of steering it.
	pacerMinSamples = 16
	// pacerConflictBump: this many new write conflicts in one window bumps
	// the throttle even when latency still looks fine.
	pacerConflictBump = 8
	// pacerStep scales the quadratic inter-batch pause: level²·step.
	pacerStep = 250 * time.Microsecond
	// pacerBaseAlpha is the EWMA weight of a new healthy window's p99.
	pacerBaseAlpha = 0.2
)

func newPacer(met *obs.Set, tr *trace.Tracer) *pacer {
	return &pacer{met: met, tr: tr, now: time.Now}
}

// observe samples foreground health and adjusts the throttle level. Safe and
// cheap to call from every worker on every batch: it returns immediately
// unless pacerSampleEvery has elapsed since the last sample.
func (p *pacer) observe() {
	now := p.now()
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.lastAt.IsZero() && now.Sub(p.lastAt) < pacerSampleEvery {
		return
	}
	first := p.lastAt.IsZero()
	p.lastAt = now

	var cur [len(pacerKinds)]obs.HistogramSnapshot
	var delta obs.HistogramSnapshot
	for i, k := range pacerKinds {
		cur[i] = p.met.Engine.Exec[k].Snapshot()
		prev := p.lastExec[i]
		delta.Count += cur[i].Count - prev.Count
		// The lifetime max over-approximates the window max; without it the
		// quantile clamp reads Max == 0 and every windowed p99 collapses to
		// zero, silencing the latency-degradation trigger entirely.
		if cur[i].Max > delta.Max {
			delta.Max = cur[i].Max
		}
		for bi, n := range cur[i].Buckets {
			var old int64
			if bi < len(prev.Buckets) {
				old = prev.Buckets[bi]
			}
			for len(delta.Buckets) <= bi {
				delta.Buckets = append(delta.Buckets, 0)
			}
			delta.Buckets[bi] += n - old
		}
	}
	p.lastExec = cur
	conf := p.met.Txn.WriteConflicts.Load()
	confDelta := conf - p.lastConf
	p.lastConf = conf
	if first {
		return // no window to diff yet
	}

	if delta.Count < pacerMinSamples {
		// Foreground (nearly) idle: nothing to protect, speed back up.
		p.decay()
		return
	}
	p99 := delta.Quantile(0.99)
	if p.baseP99 == 0 {
		p.baseP99 = p99
	}
	degraded := p99 > p.baseP99*pacerDegradeFactor
	if !degraded {
		// Healthy window: fold into the baseline so it tracks slow drift.
		p.baseP99 += (p99 - p.baseP99) * pacerBaseAlpha
	}
	if degraded || confDelta >= pacerConflictBump {
		if lv := p.level.Load(); lv < pacerMaxLevel {
			p.level.Store(lv + 1)
			reason := "latency"
			if !degraded {
				reason = "conflicts"
			}
			p.tr.Event(trace.EvPacerLevel, 0, int64(lv+1), reason)
		}
		return
	}
	p.decay()
}

func (p *pacer) decay() {
	if lv := p.level.Load(); lv > 0 {
		p.level.Store(lv - 1)
		p.tr.Event(trace.EvPacerLevel, 0, int64(lv-1), "recovered")
	}
}

// batch scales a base batch size down 2x per throttle level (never below 1)
// and publishes the result through the BackfillBatchSize gauge.
func (p *pacer) batch(base int) int {
	n := base >> p.level.Load()
	if n < 1 {
		n = 1
	}
	p.met.Migration.BackfillBatchSize.Set(int64(n))
	return n
}

// pause returns the inter-batch sleep for the current level on top of the
// configured interval: base + level²·pacerStep.
func (p *pacer) pause(base time.Duration) time.Duration {
	lv := time.Duration(p.level.Load())
	return base + lv*lv*pacerStep
}
