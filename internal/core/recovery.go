package core

import (
	"io"

	"github.com/bullfrogdb/bullfrog/internal/engine"
	"github.com/bullfrogdb/bullfrog/internal/wal"
)

// Recover replays the redo log into the database and restores the
// controller's tracker state from committed RecMigrated records — the
// crash-recovery procedure of paper §3.5 ("while the REDO log is scanned
// during recovery, for each tuple (or group) that is found in a committed
// migration transaction, the corresponding status is set to [0 1] in the
// bitmap or migrated in the hashmap"). The paper's prototype left this
// unimplemented; here it is.
//
// Call order after a crash: recreate the schema (DDL is not logged), call
// Controller.Start with the same migration spec, then Recover. Bitmap
// trackers are re-sized after the data replay (Start sees empty heaps) and
// only then receive their restored migrate bits.
func (c *Controller) Recover(readLog func() (io.Reader, error)) (engine.RecoverStats, error) {
	return c.recoverWith(func(onMigrated func(string, []byte)) (engine.RecoverStats, error) {
		return c.db.Recover(readLog, onMigrated)
	})
}

// RecoverFrom is Recover for a checkpointed, segmented log: the engine
// replays the checkpoint snapshot plus the post-checkpoint segments in a
// single pass (engine.DB.RecoverFrom), and tracker restoration works exactly
// as in Recover — the checkpoint's RecMigrated records and the segments'
// committed ones both flow through the same callback.
func (c *Controller) RecoverFrom(src *wal.RecoverySource) (engine.RecoverStats, error) {
	return c.recoverWith(func(onMigrated func(string, []byte)) (engine.RecoverStats, error) {
		return c.db.RecoverFrom(src, onMigrated)
	})
}

func (c *Controller) recoverWith(replay func(onMigrated func(string, []byte)) (engine.RecoverStats, error)) (engine.RecoverStats, error) {
	byName := map[string]*StmtRuntime{}
	for _, rt := range c.Runtimes() {
		byName[rt.Stmt.Name] = rt
	}
	type migratedRec struct {
		rt  *StmtRuntime
		key []byte
	}
	var pending []migratedRec
	stats, err := replay(func(tracker string, key []byte) {
		if rt, ok := byName[tracker]; ok {
			pending = append(pending, migratedRec{rt: rt, key: append([]byte(nil), key...)})
		}
	})
	if err != nil {
		return stats, err
	}
	// Heaps are now populated: size the bitmaps for real before restoring.
	for _, rt := range c.Runtimes() {
		if rt.bitmap != nil {
			gran := rt.Stmt.Granularity
			if gran <= 0 {
				gran = 1
			}
			rt.bitmap = NewBitmap(rt.drivingTbl.Heap.NumSlots(), gran)
		}
	}
	for _, p := range pending {
		p.rt.Tracker().RestoreMigrated(p.key)
	}
	for _, rt := range c.Runtimes() {
		if rt.bitmap != nil && rt.bitmap.Complete() {
			if err := c.markRuntimeComplete(rt); err != nil {
				return stats, err
			}
		}
	}
	return stats, nil
}
