package core

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/bullfrogdb/bullfrog/internal/engine"
)

// TestLazyMigrationSoundnessProperty is the §2.1/§2.4 soundness property,
// end to end: for ANY client predicate, after EnsureMigrated the new table
// answers the predicate exactly as the transform over the full old data
// would. (The migrated set may be a superset of what the predicate needs —
// never a subset.)
func TestLazyMigrationSoundnessProperty(t *testing.T) {
	const n = 120
	db := engine.New(engine.Options{})
	m := splitFixture(t, db, n)

	// Reference: what cust_private should eventually contain, computed from
	// the old table before the flip.
	type privRow struct {
		balance  float64
		payments int64
	}
	ref := map[int64]privRow{}
	for _, row := range mustSelect(t, db, `SELECT c_id, c_balance, c_payments FROM cust`) {
		ref[row[0].Int()] = privRow{balance: row[1].Float(), payments: row[2].Int()}
	}

	ctrl := NewController(db, DetectEarly)
	if err := ctrl.Start(m); err != nil {
		t.Fatal(err)
	}

	r := rand.New(rand.NewSource(99))
	predicates := []func() string{
		func() string { return fmt.Sprintf(`c_id = %d`, r.Intn(n)+1) },
		func() string { return fmt.Sprintf(`c_id >= %d AND c_id < %d`, r.Intn(n), r.Intn(n)+2) },
		func() string { return fmt.Sprintf(`c_balance > %d.0`, r.Intn(200)) },
		func() string { return fmt.Sprintf(`c_payments = %d`, r.Intn(7)) },
		func() string { return fmt.Sprintf(`c_id IN (%d, %d, %d)`, r.Intn(n)+1, r.Intn(n)+1, r.Intn(n)+1) },
	}
	for i := 0; i < 40; i++ {
		src := predicates[r.Intn(len(predicates))]()
		pred := parsePred(t, src)
		if err := ctrl.EnsureMigrated("cust_private", pred); err != nil {
			t.Fatalf("EnsureMigrated(%s): %v", src, err)
		}
		// Every reference row matching the predicate must now be present
		// and correct in the new table.
		got := mustSelect(t, db, `SELECT c_id, c_balance, c_payments FROM cust_private WHERE `+src)
		gotIDs := map[int64]bool{}
		for _, row := range got {
			id := row[0].Int()
			gotIDs[id] = true
			want, ok := ref[id]
			if !ok {
				t.Fatalf("pred %q migrated a row that never existed: id=%d", src, id)
			}
			if row[1].Float() != want.balance || row[2].Int() != want.payments {
				t.Fatalf("pred %q: row %d corrupted: %v", src, id, row)
			}
		}
		// Compute which reference ids satisfy the predicate by evaluating
		// it against the reference via the old-data snapshot semantics:
		// re-run the same predicate over a virtual "full" migration using
		// SQL against the retired table (readable internally).
		want := mustSelect(t, db, `SELECT c_id FROM (SELECT c_id, c_balance, c_payments FROM cust) AS v WHERE `+src)
		for _, rw := range want {
			if !gotIDs[rw[0].Int()] {
				t.Fatalf("pred %q: row %d missing from new schema (unsound transposition)", src, rw[0].Int())
			}
		}
		if len(want) != len(got) {
			t.Fatalf("pred %q: new schema returned %d rows, reference %d", src, len(got), len(want))
		}
	}
	// No duplicates anywhere.
	dups := mustSelect(t, db, `SELECT c_id, COUNT(*) FROM cust_private GROUP BY c_id HAVING COUNT(*) > 1`)
	if len(dups) != 0 {
		t.Fatalf("duplicate migrations: %v", dups)
	}
}
