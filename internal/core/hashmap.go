package core

import (
	"sync"
	"sync/atomic"
)

// groupState is a group's status in the hash tracker (paper §3.4).
type groupState uint8

const (
	groupInProgress groupState = iota + 1
	groupMigrated
	groupAborted
)

// HashTracker tracks migration status at group granularity for n:1 and n:n
// migrations (paper §3.4). Group identifiers are encoded group-key rows.
// Absence from the table means "not started". The table is partitioned and
// each partition has its own latch; two latches are never held at once, so
// latch deadlock cannot occur (paper footnote 4).
type HashTracker struct {
	shards   [64]hashTrackerShard
	migrated atomic.Int64
}

type hashTrackerShard struct {
	mu     sync.Mutex
	states map[string]groupState
}

// NewHashTracker returns an empty group tracker.
func NewHashTracker() *HashTracker {
	t := &HashTracker{}
	for i := range t.shards {
		t.shards[i].states = make(map[string]groupState)
	}
	return t
}

func (t *HashTracker) shardFor(key []byte) *hashTrackerShard {
	var h uint64 = 14695981039346656037
	for _, c := range key {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return &t.shards[h%uint64(len(t.shards))]
}

// TryClaim implements Algorithm 3's hash-table portion (lines 4-13): claim
// the group if it is unknown or aborted; report Busy if another worker is
// migrating it; Done if already migrated. (Lines 2-3, the worker-local WIP /
// SKIP list checks, belong to the caller.)
func (t *HashTracker) TryClaim(key []byte) ClaimResult {
	s := t.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.states[string(key)] {
	case groupInProgress:
		return Busy
	case groupMigrated:
		return Done
	default: // absent or aborted: claim it
		s.states[string(key)] = groupInProgress
		return Claimed
	}
}

// MarkMigrated transitions in-progress -> migrated (Algorithm 1 line 9).
func (t *HashTracker) MarkMigrated(key []byte) {
	s := t.shardFor(key)
	s.mu.Lock()
	if s.states[string(key)] == groupInProgress {
		s.states[string(key)] = groupMigrated
		s.mu.Unlock()
		t.migrated.Add(1)
		return
	}
	s.mu.Unlock()
}

// ReleaseAbort transitions in-progress -> aborted (§3.5): the group becomes
// claimable by exactly one successor (Algorithm 3 lines 7-9).
func (t *HashTracker) ReleaseAbort(key []byte) {
	s := t.shardFor(key)
	s.mu.Lock()
	if s.states[string(key)] == groupInProgress {
		s.states[string(key)] = groupAborted
	}
	s.mu.Unlock()
}

// IsMigrated reports whether the group completed migration.
func (t *HashTracker) IsMigrated(key []byte) bool {
	s := t.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.states[string(key)] == groupMigrated
}

// RestoreMigrated force-marks a group migrated (recovery, §3.5).
func (t *HashTracker) RestoreMigrated(key []byte) {
	s := t.shardFor(key)
	s.mu.Lock()
	if s.states[string(key)] != groupMigrated {
		s.states[string(key)] = groupMigrated
		s.mu.Unlock()
		t.migrated.Add(1)
		return
	}
	s.mu.Unlock()
}

// MigratedCount returns the number of migrated groups.
func (t *HashTracker) MigratedCount() int64 { return t.migrated.Load() }

// SnapshotMigrated implements Tracker: fn receives every migrated group's
// key. Shard latches are taken one at a time (never two at once).
func (t *HashTracker) SnapshotMigrated(fn func(key []byte)) {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		keys := make([]string, 0, len(s.states))
		for k, st := range s.states {
			if st == groupMigrated {
				keys = append(keys, k)
			}
		}
		s.mu.Unlock()
		for _, k := range keys {
			fn([]byte(k))
		}
	}
}
