package core

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/bullfrogdb/bullfrog/internal/catalog"
	"github.com/bullfrogdb/bullfrog/internal/storage"
	"github.com/bullfrogdb/bullfrog/internal/types"
)

// Background runs the background migration threads of paper §2.2: they
// inject simulated client requests that cumulatively cover the entire old
// tables, guaranteeing the migration eventually completes even for data no
// client request ever touches. In the paper's experiments the threads start
// 20 seconds after the migration begins (client requests alone drive early
// progress); Delay models that.
type Background struct {
	// Delay before the threads begin working.
	Delay time.Duration
	// ChunkGranules is how many bitmap granules each simulated request
	// covers; ChunkTuples the scan width for group discovery.
	ChunkGranules int
	ChunkTuples   int64
	// Interval throttles between simulated requests (0 = none).
	Interval time.Duration

	ctrl    *Controller
	stop    chan struct{}
	wg      sync.WaitGroup
	started atomic.Int64 // unix nanos when work actually began; 0 = not yet
	err     atomic.Value
}

// NewBackground creates a background migrator for the controller's active
// migration.
func NewBackground(ctrl *Controller, delay time.Duration) *Background {
	return &Background{
		Delay:         delay,
		ChunkGranules: 64,
		ChunkTuples:   4096,
		ctrl:          ctrl,
		stop:          make(chan struct{}),
	}
}

// Started returns when background work began (zero time if it has not).
func (b *Background) Started() time.Time {
	n := b.started.Load()
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, n)
}

// Err returns the first error a background worker hit, if any.
func (b *Background) Err() error {
	if v := b.err.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// Start launches one worker per migration statement.
func (b *Background) Start() {
	for _, rt := range b.ctrl.Runtimes() {
		b.wg.Add(1)
		go b.run(rt)
	}
}

// Stop halts the workers and waits for them to exit.
func (b *Background) Stop() {
	select {
	case <-b.stop:
	default:
		close(b.stop)
	}
	b.wg.Wait()
}

// Wait blocks until the workers finish (migration complete or stopped).
func (b *Background) Wait() { b.wg.Wait() }

func (b *Background) sleep(d time.Duration) bool {
	if d <= 0 {
		select {
		case <-b.stop:
			return false
		default:
			return true
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-b.stop:
		return false
	case <-t.C:
		return true
	}
}

func (b *Background) run(rt *StmtRuntime) {
	defer b.wg.Done()
	if !b.sleep(b.Delay) {
		return
	}
	b.started.CompareAndSwap(0, time.Now().UnixNano())
	var err error
	if rt.bitmap != nil {
		err = b.runBitmap(rt)
	} else {
		err = b.runHash(rt)
	}
	if err != nil {
		b.err.CompareAndSwap(nil, err)
	}
}

// runBitmap sweeps the bitmap, claiming and migrating unmigrated granules in
// chunks until the statement completes.
func (b *Background) runBitmap(rt *StmtRuntime) error {
	cursor := int64(0)
	for {
		if rt.complete.Load() {
			return nil
		}
		g := rt.bitmap.NextUnmigrated(cursor)
		if g < 0 {
			// Tail: granules claimed by client workers may still be in
			// flight; poll from the start until the bitmap fills.
			if rt.bitmap.Complete() {
				rt.ctrl.markRuntimeComplete(rt)
				return nil
			}
			cursor = 0
			if !b.sleep(time.Millisecond) {
				return nil
			}
			continue
		}
		batch := make([]int64, 0, b.ChunkGranules)
		for i := 0; i < b.ChunkGranules && g >= 0; i++ {
			batch = append(batch, g)
			g = rt.bitmap.NextUnmigrated(g + 1)
		}
		if _, err := rt.bitmapPass(nil, batch, true); err != nil {
			return err
		}
		if g < 0 {
			cursor = 0
		} else {
			cursor = batch[len(batch)-1] + 1
		}
		if !b.sleep(b.Interval) {
			return nil
		}
	}
}

// runHash sweeps the driving table discovering group keys and migrating any
// unmigrated groups, repeating until a full pass finds nothing left.
func (b *Background) runHash(rt *StmtRuntime) error {
	for {
		if rt.complete.Load() {
			return nil
		}
		remaining, err := b.hashSweep(rt)
		if err != nil {
			return err
		}
		select {
		case <-b.stop:
			return nil
		default:
		}
		if remaining == 0 {
			rt.ctrl.markRuntimeComplete(rt)
			return nil
		}
		if !b.sleep(time.Millisecond) {
			return nil
		}
	}
}

// hashSweep performs one full pass over the driving table (and, for seeded
// join migrations, the secondary table, whose groups may have no driving
// rows at all); it returns how many groups were found unmigrated (0 means
// the pass found everything migrated).
func (b *Background) hashSweep(rt *StmtRuntime) (remaining int, err error) {
	n, err := b.sweepTable(rt, rt.drivingTbl, rt.groupOrds)
	if err != nil {
		return n, err
	}
	remaining += n
	if rt.seedTbl != nil {
		n, err := b.sweepTable(rt, rt.seedTbl, rt.seedOrds)
		if err != nil {
			return remaining + n, err
		}
		remaining += n
	}
	return remaining, nil
}

// CatchUp synchronously migrates everything not yet covered — the final
// pass a multi-step switch-over runs while client writes are quiesced, and
// generally useful for draining a migration on demand. It loops until a
// full pass finds nothing left.
func (rt *StmtRuntime) CatchUp() error {
	b := &Background{ctrl: rt.ctrl, ChunkGranules: 256, ChunkTuples: 1 << 14, stop: make(chan struct{})}
	if rt.bitmap != nil {
		// The bitmap was sized at Start; sweep whatever it tracks.
		for {
			g := rt.bitmap.NextUnmigrated(0)
			if g < 0 {
				rt.ctrl.markRuntimeComplete(rt)
				return nil
			}
			batch := make([]int64, 0, b.ChunkGranules)
			for i := 0; i < b.ChunkGranules && g >= 0; i++ {
				batch = append(batch, g)
				g = rt.bitmap.NextUnmigrated(g + 1)
			}
			busy, err := rt.bitmapPass(nil, batch, true)
			if err != nil {
				return err
			}
			if busy > 0 {
				time.Sleep(rt.ctrl.backoff)
			}
		}
	}
	for {
		remaining, err := b.hashSweep(rt)
		if err != nil {
			return err
		}
		if remaining == 0 {
			rt.ctrl.markRuntimeComplete(rt)
			return nil
		}
	}
}

func (b *Background) sweepTable(rt *StmtRuntime, tbl *catalog.Table, ords []int) (remaining int, err error) {
	total := tbl.Heap.NumSlots()
	for lo := int64(0); lo < total; lo += b.ChunkTuples {
		select {
		case <-b.stop:
			return remaining, nil
		default:
		}
		hi := lo + b.ChunkTuples
		keys, err := b.discoverKeys(rt, tbl, ords, lo, hi)
		if err != nil {
			return remaining, err
		}
		var todo [][]byte
		for _, k := range keys {
			if !rt.hash.IsMigrated(k) {
				todo = append(todo, k)
			}
		}
		if len(todo) == 0 {
			continue
		}
		remaining += len(todo)
		// Migrate, waiting out busy groups like any client request.
		for {
			busy, err := rt.hashPass(nil, todo, true)
			if err != nil {
				return remaining, err
			}
			if busy == 0 {
				break
			}
			if !b.sleep(rt.ctrl.backoff) {
				return remaining, nil
			}
		}
		if !b.sleep(b.Interval) {
			return remaining, nil
		}
	}
	return remaining, nil
}

// discoverKeys collects the distinct group keys of visible tuples in the
// ordinal range of the given table (driving or seed).
func (b *Background) discoverKeys(rt *StmtRuntime, tbl *catalog.Table, ords []int, lo, hi int64) ([][]byte, error) {
	tx := rt.ctrl.db.Begin()
	defer tx.Abort()
	seen := map[string]bool{}
	var keys [][]byte
	err := tbl.Heap.ScanRange(lo, hi, func(tid storage.TID, head *storage.Version) error {
		row, ok := tx.VisibleRow(head)
		if !ok {
			return nil
		}
		key := make(types.Row, len(ords))
		for i, ord := range ords {
			key[i] = row[ord]
		}
		k := types.EncodeKey(nil, key)
		if !seen[string(k)] {
			seen[string(k)] = true
			keys = append(keys, k)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return keys, nil
}
