package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bullfrogdb/bullfrog/internal/catalog"
	"github.com/bullfrogdb/bullfrog/internal/obs/trace"
	"github.com/bullfrogdb/bullfrog/internal/storage"
	"github.com/bullfrogdb/bullfrog/internal/types"
)

// Background runs the background migration threads of paper §2.2: they
// inject simulated client requests that cumulatively cover the entire old
// tables, guaranteeing the migration eventually completes even for data no
// client request ever touches. In the paper's experiments the threads start
// 20 seconds after the migration begins (client requests alone drive early
// progress); Delay models that.
//
// Backfill is a parallel, adaptive pool. Bitmap-tracked statements get
// Workers goroutines sweeping striped regions of the bitmap: worker i starts
// at stripe i and wraps to granule 0 when its region drains, stealing into
// neighbors' unfinished stripes near the tail. The CAS claim protocol
// (Algorithm 2) makes collisions harmless — a stolen granule is simply Busy
// or Done for the second worker. Hash-tracked statements partition the
// driving (and seed) table's ordinal space into chunks handed out from a
// shared atomic cursor; the claim/busy/skip protocol in hashPass (Algorithm
// 3) dedups groups discovered by multiple chunks. All workers sample
// foreground health through a shared pacer and shrink their batches / extend
// their pauses when client p99 or the write-conflict rate degrades.
type Background struct {
	// Delay before the threads begin working.
	Delay time.Duration
	// ChunkGranules is how many bitmap granules each simulated request
	// covers; ChunkTuples the scan width for group discovery. Both are the
	// un-throttled maxima — the pacer scales the effective batch down.
	ChunkGranules int
	ChunkTuples   int64
	// Interval throttles between simulated requests (0 = none; the pacer
	// adds its own backoff on top when the foreground degrades).
	Interval time.Duration
	// Workers is the number of concurrent backfill workers per migration
	// statement; <= 0 means runtime.NumCPU().
	Workers int

	ctrl    *Controller
	pace    *pacer
	stop    chan struct{}
	wg      sync.WaitGroup
	started atomic.Int64 // unix nanos when work actually began; 0 = not yet
	err     atomic.Value
	// errs receives the first worker error — including the end-of-migration
	// cleanup (DropTable) failure from markRuntimeComplete, which would
	// otherwise die with a background goroutine. Buffered; at most one send.
	errs chan error
}

// NewBackground creates a background migrator for the controller's active
// migration.
func NewBackground(ctrl *Controller, delay time.Duration) *Background {
	return &Background{
		Delay:         delay,
		ChunkGranules: 64,
		ChunkTuples:   4096,
		ctrl:          ctrl,
		pace:          newPacer(ctrl.db.Obs(), ctrl.tr),
		stop:          make(chan struct{}),
		errs:          make(chan error, 1),
	}
}

// Started returns when background work began (zero time if it has not).
func (b *Background) Started() time.Time {
	n := b.started.Load()
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, n)
}

// Err returns the first error a background worker hit, if any.
func (b *Background) Err() error {
	if v := b.err.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// CompletionErr returns a channel carrying the first worker error, including
// an end-of-migration cleanup failure (Controller.markRuntimeComplete's
// DropTable error). The channel is buffered with capacity one and never
// closed; poll it with a select, or use Err after Wait/Stop. The same error
// also surfaces through Controller.AwaitMigration.
func (b *Background) CompletionErr() <-chan error { return b.errs }

// fail records a worker error: the first one wins Err() and is published on
// the CompletionErr channel.
func (b *Background) fail(err error) {
	if err == nil {
		return
	}
	if b.err.CompareAndSwap(nil, err) {
		select {
		case b.errs <- err:
		default:
		}
	}
}

// workers resolves the configured pool size.
func (b *Background) workers() int {
	if b.Workers > 0 {
		return b.Workers
	}
	return runtime.NumCPU()
}

// Start launches the backfill pool: Workers striped sweepers per
// bitmap-tracked statement, and one sweep coordinator (fanning out Workers
// chunk workers per pass) per hash-tracked statement.
func (b *Background) Start() {
	w := b.workers()
	for _, rt := range b.ctrl.Runtimes() {
		// One pool per runtime: a chained migration's Background sees the
		// whole chain in Runtimes(), but earlier statements already have
		// their own workers.
		if !rt.bgOwned.CompareAndSwap(false, true) {
			continue
		}
		if rt.bitmap != nil {
			for i := 0; i < w; i++ {
				b.wg.Add(1)
				go b.runBitmap(rt, i, w)
			}
		} else {
			b.wg.Add(1)
			go b.runHash(rt, w)
		}
	}
}

// Stop halts the workers and waits for them to exit.
//
//lint:ignore ctxflow teardown join: Stop must run to completion so workers never outlive the controller
func (b *Background) Stop() {
	select {
	case <-b.stop:
	default:
		close(b.stop)
	}
	b.wg.Wait()
}

// Wait blocks until the workers finish (migration complete or stopped).
// Bound the wait by calling Stop from another goroutine.
//
//lint:ignore ctxflow bare join by design: cancellation is Stop's job, a second cancel path would race it
func (b *Background) Wait() { b.wg.Wait() }

func (b *Background) stopped() bool {
	select {
	case <-b.stop:
		return true
	default:
		return false
	}
}

func (b *Background) sleep(d time.Duration) bool {
	if d <= 0 {
		return !b.stopped()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-b.stop:
		return false
	case <-t.C:
		return true
	}
}

// begin performs the common worker prologue: the start delay, the started
// timestamp, and the active-workers gauge. It reports false if the pool was
// stopped during the delay.
func (b *Background) begin() bool {
	if !b.sleep(b.Delay) {
		return false
	}
	b.started.CompareAndSwap(0, time.Now().UnixNano())
	b.ctrl.obsMig().BackfillWorkersActive.Add(1)
	return true
}

func (b *Background) end() {
	b.ctrl.obsMig().BackfillWorkersActive.Add(-1)
}

// runBitmap is one striped bitmap sweeper: claim and migrate unmigrated
// granules in pacer-sized chunks from this worker's stripe onward, wrapping
// to the front (other workers' stripes) until the statement completes.
func (b *Background) runBitmap(rt *StmtRuntime, worker, workers int) {
	defer b.wg.Done()
	if !b.begin() {
		return
	}
	defer b.end()
	b.fail(b.bitmapSweep(rt, worker, workers))
}

func (b *Background) bitmapSweep(rt *StmtRuntime, worker, workers int) error {
	cursor := rt.bitmap.Granules() / int64(workers) * int64(worker) // stripe start
	batch := make([]int64, 0, b.ChunkGranules)                      // reused across batches
	for {
		if rt.complete.Load() {
			return nil
		}
		if b.stopped() {
			return nil
		}
		if !rt.upstreamDone() {
			// Chained statement: the driving table is still being filled by
			// the upstream backfill. Sweeping now would claim granules whose
			// tail can still gain rows; park until the heap freezes.
			if !b.sleep(time.Millisecond) {
				return nil
			}
			continue
		}
		rt.syncBitmapSize()
		b.pace.observe()
		g := rt.bitmap.NextUnmigrated(cursor)
		if g < 0 {
			// Stripe (and everything after it) is drained: wrap and steal
			// from the front. Granules claimed by other workers may still be
			// in flight, so poll until the bitmap actually fills.
			if rt.bitmap.Complete() {
				return rt.ctrl.markRuntimeComplete(rt)
			}
			cursor = 0
			if rt.bitmap.NextUnmigrated(0) < 0 {
				// Only in-flight granules remain; nothing claimable.
				if !b.sleep(time.Millisecond) {
					return nil
				}
			}
			continue
		}
		limit := b.pace.batch(b.ChunkGranules)
		batch = batch[:0]
		for i := 0; i < limit && g >= 0; i++ {
			batch = append(batch, g)
			g = rt.bitmap.NextUnmigrated(g + 1)
		}
		batchStart := time.Now()
		if _, err := rt.bitmapPass(nil, nil, batch, true); err != nil {
			return err
		}
		b.ctrl.tr.BatchDone(b.ctrl.migSpan.Load(), rt.Stmt.Name,
			len(batch), limit, time.Since(batchStart))
		if g < 0 {
			cursor = 0
		} else {
			cursor = batch[len(batch)-1] + 1
		}
		if !b.sleep(b.pace.pause(b.Interval)) {
			return nil
		}
	}
}

// runHash coordinates one hash-tracked statement: repeated parallel sweeps
// over the driving (and seed) table until a full pass finds nothing left.
func (b *Background) runHash(rt *StmtRuntime, workers int) {
	defer b.wg.Done()
	if !b.sleep(b.Delay) {
		return
	}
	b.started.CompareAndSwap(0, time.Now().UnixNano())
	var err error
	for {
		if rt.complete.Load() {
			break
		}
		if !rt.upstreamDone() {
			// Chained statement: groups are only sound to claim once the
			// driving table froze (see bitmapSweep's gate).
			if !b.sleep(time.Millisecond) {
				break
			}
			continue
		}
		remaining, serr := b.hashSweepParallel(rt, workers)
		if serr != nil {
			err = serr
			break
		}
		if b.stopped() {
			break
		}
		if remaining == 0 {
			err = rt.ctrl.markRuntimeComplete(rt)
			break
		}
		if !b.sleep(time.Millisecond) {
			break
		}
	}
	b.fail(err)
}

// hashSweepParallel performs one full pass over the driving table (and, for
// seeded join migrations, the secondary table, whose groups may have no
// driving rows at all) with `workers` goroutines pulling ordinal-range
// chunks from a shared cursor. It returns how many groups were found
// unmigrated (0 means the pass found everything migrated).
func (b *Background) hashSweepParallel(rt *StmtRuntime, workers int) (int64, error) {
	remaining, err := b.sweepTableParallel(rt, rt.drivingTbl, rt.groupOrds, workers)
	if err != nil {
		return remaining, err
	}
	if rt.seedTbl != nil {
		n, err := b.sweepTableParallel(rt, rt.seedTbl, rt.seedOrds, workers)
		remaining += n
		if err != nil {
			return remaining, err
		}
	}
	return remaining, nil
}

// sweepTableParallel scans [0, NumSlots) of one table: each worker draws the
// next pacer-sized chunk from the shared cursor, discovers that chunk's
// group keys, and migrates the unmigrated ones through hashPass.
func (b *Background) sweepTableParallel(rt *StmtRuntime, tbl *catalog.Table, ords []int, workers int) (int64, error) {
	total := tbl.Heap.NumSlots()
	var cursor, remaining atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.ctrl.obsMig().BackfillWorkersActive.Add(1)
			defer b.ctrl.obsMig().BackfillWorkersActive.Add(-1)
			sc := newSweepScratch()
			for {
				if b.stopped() || firstErr.Load() != nil || rt.complete.Load() {
					return
				}
				b.pace.observe()
				chunk := int64(b.pace.batch(int(b.ChunkTuples)))
				lo := cursor.Add(chunk) - chunk
				if lo >= total {
					return
				}
				hi := lo + chunk
				if hi > total {
					hi = total
				}
				n, err := b.sweepChunk(rt, tbl, ords, lo, hi, sc)
				remaining.Add(n)
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				if !b.sleep(b.pace.pause(b.Interval)) {
					return
				}
			}
		}()
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok {
		return remaining.Load(), err
	}
	return remaining.Load(), nil
}

// sweepChunk discovers the chunk's group keys and migrates the unmigrated
// ones, waiting out busy groups like any client request. It returns how many
// groups it found unmigrated.
func (b *Background) sweepChunk(rt *StmtRuntime, tbl *catalog.Table, ords []int, lo, hi int64, sc *sweepScratch) (int64, error) {
	keys, err := b.discoverKeys(rt, tbl, ords, lo, hi, sc)
	if err != nil {
		return 0, err
	}
	sc.todo = sc.todo[:0]
	for _, k := range keys {
		if !rt.hash.IsMigrated(k) {
			sc.todo = append(sc.todo, k)
		}
	}
	if len(sc.todo) == 0 {
		return 0, nil
	}
	batchStart := time.Now()
	for {
		busy, err := rt.hashPass(nil, nil, sc.todo, true)
		if err != nil {
			return int64(len(sc.todo)), err
		}
		if busy == 0 {
			b.ctrl.tr.BatchDone(b.ctrl.migSpan.Load(), rt.Stmt.Name,
				len(sc.todo), int(hi-lo), time.Since(batchStart))
			return int64(len(sc.todo)), nil
		}
		if !b.sleep(rt.ctrl.backoff) {
			return int64(len(sc.todo)), nil
		}
	}
}

// sweepScratch holds one worker's reusable discovery buffers so per-chunk
// group discovery stops allocating a map and slices on every batch. Workers
// are single-goroutine, so no synchronization is needed.
type sweepScratch struct {
	seen   map[string]bool
	keys   [][]byte
	todo   [][]byte
	keyBuf types.Row
}

func newSweepScratch() *sweepScratch {
	return &sweepScratch{seen: make(map[string]bool, 64)}
}

func (sc *sweepScratch) reset(ords int) {
	clear(sc.seen)
	sc.keys = sc.keys[:0]
	if cap(sc.keyBuf) < ords {
		sc.keyBuf = make(types.Row, ords)
	}
}

// discoverKeys collects the distinct group keys of visible tuples in the
// ordinal range of the given table (driving or seed). The returned slice
// aliases sc and is valid until the next call with the same scratch; the
// keys themselves are freshly allocated (hashPass retains them).
func (b *Background) discoverKeys(rt *StmtRuntime, tbl *catalog.Table, ords []int, lo, hi int64, sc *sweepScratch) ([][]byte, error) {
	tx := rt.ctrl.db.Begin()
	defer tx.Abort()
	sc.reset(len(ords))
	key := sc.keyBuf[:len(ords)]
	err := tbl.Heap.ScanRange(lo, hi, func(tid storage.TID, head *storage.Version) error {
		row, ok := tx.VisibleRow(head)
		if !ok {
			return nil
		}
		for i, ord := range ords {
			key[i] = row[ord]
		}
		k := types.EncodeKey(nil, key)
		if !sc.seen[string(k)] {
			sc.seen[string(k)] = true
			sc.keys = append(sc.keys, k)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sc.keys, nil
}

// CatchUp synchronously migrates everything not yet covered — the final
// pass a multi-step switch-over runs while client writes are quiesced, and
// generally useful for draining a migration on demand. It loops until a
// full pass finds nothing left, or ctx is cancelled (so a DB.Close during a
// switch-over cannot hang the drain). A nil ctx means no cancellation.
func (rt *StmtRuntime) CatchUp(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if rt.upstream != nil && !rt.upstream.complete.Load() {
		// A chained statement cannot drain before its driving table stops
		// growing: drain the producer first (recursively up the chain).
		if err := rt.upstream.CatchUp(ctx); err != nil {
			return err
		}
	}
	rt.syncBitmapSize()
	if tr := rt.ctrl.tr; tr != nil {
		start := time.Now()
		defer func() {
			sp := rt.ctrl.migSpan.Load()
			sp.AddSince(trace.PhaseCatchUp, start)
			tr.Event(trace.EvCatchUp, sp.ID(), int64(time.Since(start)), rt.Stmt.Name)
		}()
	}
	b := &Background{
		ctrl: rt.ctrl, ChunkGranules: 256, ChunkTuples: 1 << 14,
		pace: newPacer(rt.ctrl.db.Obs(), rt.ctrl.tr), stop: make(chan struct{}),
	}
	// Bridge ctx cancellation onto the stop channel so the sweep helpers'
	// interruptible sleeps observe it.
	if done := ctx.Done(); done != nil {
		finished := make(chan struct{})
		defer close(finished)
		go func() {
			select {
			case <-done:
				close(b.stop)
			case <-finished:
			}
		}()
	}
	if rt.bitmap != nil {
		batch := make([]int64, 0, b.ChunkGranules)
		for {
			if err := ctx.Err(); err != nil {
				return err
			}
			g := rt.bitmap.NextUnmigrated(0)
			if g < 0 {
				return rt.ctrl.markRuntimeComplete(rt)
			}
			batch = batch[:0]
			for i := 0; i < b.ChunkGranules && g >= 0; i++ {
				batch = append(batch, g)
				g = rt.bitmap.NextUnmigrated(g + 1)
			}
			busy, err := rt.bitmapPass(ctx, nil, batch, true)
			if err != nil {
				return err
			}
			if busy > 0 {
				if !b.sleep(rt.ctrl.backoff) {
					return ctx.Err()
				}
			}
		}
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		remaining, err := b.hashSweepParallel(rt, 1)
		if err != nil {
			return err
		}
		if b.stopped() {
			return ctx.Err()
		}
		if remaining == 0 {
			return rt.ctrl.markRuntimeComplete(rt)
		}
	}
}
