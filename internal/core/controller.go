package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bullfrogdb/bullfrog/internal/catalog"
	"github.com/bullfrogdb/bullfrog/internal/engine"
	"github.com/bullfrogdb/bullfrog/internal/expr"
	"github.com/bullfrogdb/bullfrog/internal/obs"
	"github.com/bullfrogdb/bullfrog/internal/obs/trace"
	"github.com/bullfrogdb/bullfrog/internal/sql"
	"github.com/bullfrogdb/bullfrog/internal/storage"
	"github.com/bullfrogdb/bullfrog/internal/txn"
	"github.com/bullfrogdb/bullfrog/internal/types"
	"github.com/bullfrogdb/bullfrog/internal/wal"
)

// ErrRetiredTable is returned when a client statement touches a table that
// was retired by the big flip (paper §2.1: "the old schema becomes inactive,
// and all subsequent requests that access it are rejected").
var ErrRetiredTable = errors.New("core: relation belongs to a retired schema version")

// ErrMigrationActive is returned by Start when a migration is already
// registered; Reset the completed one first (one evolution per deploy).
var ErrMigrationActive = errors.New("core: a migration is already active")

// Stats counts a statement runtime's migration activity.
type Stats struct {
	RowsMigrated int64 // rows inserted into output tables by migration
	Transforms   int64 // migration transactions executed
	SkipWaits    int64 // Algorithm 1 loop repeats caused by busy granules
	DroppedRows  int64 // rows rejected by new-schema constraints (§2.4)
}

type statCounters struct {
	rowsMigrated atomic.Int64
	transforms   atomic.Int64
	skipWaits    atomic.Int64
	droppedRows  atomic.Int64
}

func (s *statCounters) snapshot() Stats {
	return Stats{
		RowsMigrated: s.rowsMigrated.Load(),
		Transforms:   s.transforms.Load(),
		SkipWaits:    s.skipWaits.Load(),
		DroppedRows:  s.droppedRows.Load(),
	}
}

// outputRuntime binds an OutputSpec to its catalog table.
type outputRuntime struct {
	spec OutputSpec
	tbl  *catalog.Table
}

// StmtRuntime is the live state of one migration statement: trackers,
// resolved tables, and counters.
type StmtRuntime struct {
	ctrl         *Controller
	Stmt         *Statement
	drivingTbl   *catalog.Table
	drivingAlias string
	outputs      []outputRuntime
	bitmap       *Bitmap      // bitmap categories
	hash         *HashTracker // hashmap categories
	groupOrds    []int        // driving-table ordinals of the group key
	seedTbl      *catalog.Table
	seedOrds     []int
	// upstream is the runtime producing this statement's driving table when
	// the driving table is itself a still-migrating output (a chained
	// migration, v2→v3 while v1→v2 backfills). Lazy ensures first pull the
	// relevant rows through the upstream runtime; this runtime cannot
	// complete before upstream does.
	upstream   *StmtRuntime
	complete   atomic.Bool
	completeAt atomic.Int64 // unix nanos
	stats      statCounters
	// bgOwned marks that a Background pool already owns this runtime, so the
	// pool started for a chained migration skips the earlier chain entries.
	bgOwned atomic.Bool

	// Progress-rate window for ProgressReport's ETA (see progress.go).
	progMu    sync.Mutex
	progAt    time.Time
	progCount int64
	progRate  float64
}

// Complete reports whether every granule/group of this statement migrated.
func (rt *StmtRuntime) Complete() bool { return rt.complete.Load() }

// upstreamDone reports whether this runtime's driving table has reached its
// final extent: either it was frozen by the big flip (no upstream), or the
// upstream statement producing it has completed.
func (rt *StmtRuntime) upstreamDone() bool {
	return rt.upstream == nil || rt.upstream.complete.Load()
}

// syncBitmapSize grows a chained statement's bitmap to the driving heap's
// final size once upstream completed (the heap is frozen from then on: the
// input is retired, so only upstream migration transactions could append).
// The appended granules start unmigrated; their rows may already exist in
// the outputs from pass-through transforms, which the unique-index dedup
// absorbs when they migrate again. No-op for hash runtimes and while the
// upstream is still filling the heap.
func (rt *StmtRuntime) syncBitmapSize() {
	if rt.bitmap == nil || !rt.upstreamDone() {
		return
	}
	rt.bitmap.Grow(rt.drivingTbl.Heap.NumSlots())
}

// Stats returns a snapshot of the runtime's counters.
func (rt *StmtRuntime) Stats() Stats { return rt.stats.snapshot() }

// Tracker returns the statement's tracker (bitmap or hash).
func (rt *StmtRuntime) Tracker() Tracker {
	if rt.bitmap != nil {
		return rt.bitmap
	}
	return rt.hash
}

// Controller coordinates an active BullFrog migration: it owns the trackers,
// runs the per-transaction migration loop (Algorithm 1), implements the
// engine hook for constraint-driven migration widening, and reports
// progress. At most one migration is active at a time (as in the paper's
// deployment model: one evolution transaction per deployment).
type Controller struct {
	db   *engine.DB
	mode ConflictMode

	// shadow marks a controller used by the multi-step baseline: trackers
	// and transforms run, but inputs are not retired and the engine hook is
	// not installed (the old schema stays authoritative until the switch).
	shadow bool

	// backoff between Algorithm 1 loop iterations while waiting on busy
	// granules (line 10's re-check loop).
	backoff time.Duration

	mu sync.RWMutex
	// migs is the active migration chain, in Start order. One entry is the
	// paper's deployment model; later entries are chained migrations whose
	// driving tables may be earlier entries' still-backfilling outputs
	// (v1→v2→v3 with v2 incomplete). cleaned counts the prefix of migs whose
	// end-of-migration cleanup (DropInputsOnComplete) already ran.
	migs     []*Migration
	cleaned  int
	runtimes []*StmtRuntime
	byOutput map[string]*StmtRuntime
	retired  map[string]bool
	done     chan struct{} // non-nil while a migration is active; closed at completion
	// completionErr records the end-of-migration cleanup failure (DropTable of
	// retired inputs). It is written under mu before done is closed, so every
	// AwaitMigration waiter observes it.
	completionErr error

	migTxns     sync.Map // txn id -> struct{}; migration transactions bypass the hook
	startedAt   time.Time
	completedAt atomic.Int64 // unix nanos; 0 = not complete

	// failTransforms > 0 makes that many transforms fail (tests exercise the
	// abort/release path of §3.5 with it).
	failTransforms atomic.Int32

	// trackingDisabled turns off status maintenance entirely (the paper's
	// §4.4.1 "no bitmap" ablation, Figure 9). Correct only when the workload
	// accesses each granule exactly once.
	trackingDisabled atomic.Bool

	// tr is the optional tracer (nil = tracing disabled; every call on it is
	// nil-safe). migSpan is the active migration's span, finished at
	// completion and dropped by Reset.
	tr      *trace.Tracer
	migSpan atomic.Pointer[trace.Span]
}

// SetTracer attaches a tracer for migration spans and backfill/pacer events.
// Call before Start; a nil tracer disables tracing.
func (c *Controller) SetTracer(tr *trace.Tracer) { c.tr = tr }

// MigrationSpan returns the active migration's span (nil when tracing is off
// or no migration is active).
func (c *Controller) MigrationSpan() *trace.Span { return c.migSpan.Load() }

// SetTrackingDisabled toggles the §4.4.1 no-tracking ablation: claims always
// succeed and no migration status is recorded. Use only with workloads that
// touch each granule exactly once; background migration must stay off.
func (c *Controller) SetTrackingDisabled(v bool) { c.trackingDisabled.Store(v) }

// InjectTransformFailures makes the next n migration transforms fail after
// claiming their granules, exercising abort handling. Test use only.
func (c *Controller) InjectTransformFailures(n int32) { c.failTransforms.Store(n) }

// errInjected is the fault-injection error.
var errInjected = errors.New("core: injected transform failure")

// Dedup-map pools for the lazy migration passes: bitmapPass and hashPass run
// on every intercepted client request, so their candidate-dedup maps come
// from pools instead of being allocated per pass.
var (
	granuleSeenPool = sync.Pool{New: func() any { return make(map[int64]bool, 64) }}
	keySeenPool     = sync.Pool{New: func() any { return make(map[string]bool, 64) }}
)

func putGranuleSeen(m map[int64]bool) {
	clear(m)
	granuleSeenPool.Put(m)
}

func putKeySeen(m map[string]bool) {
	clear(m)
	keySeenPool.Put(m)
}

func (c *Controller) maybeInjectFailure() error {
	for {
		n := c.failTransforms.Load()
		if n <= 0 {
			return nil
		}
		if c.failTransforms.CompareAndSwap(n, n-1) {
			return errInjected
		}
	}
}

// NewController creates a controller over the database.
func NewController(db *engine.DB, mode ConflictMode) *Controller {
	return &Controller{
		db:       db,
		mode:     mode,
		backoff:  200 * time.Microsecond,
		byOutput: map[string]*StmtRuntime{},
		retired:  map[string]bool{},
	}
}

// DB returns the underlying engine.
func (c *Controller) DB() *engine.DB { return c.db }

// Mode returns the conflict-detection mode.
func (c *Controller) Mode() ConflictMode { return c.mode }

func norm(s string) string { return strings.ToLower(s) }

// Start registers and activates a migration: setup DDL runs, input tables
// are retired (the big flip), trackers are allocated, and the engine hook is
// installed. The new schema is active the moment Start returns — no data has
// moved yet.
//
// A second Start while a migration is active is accepted when the new
// migration chains cleanly onto the active one: its outputs are fresh tables
// and each driving table is either untouched by the active chain or an
// active statement's still-backfilling output (which the new migration must
// retire). Anything else — re-driving a table an incomplete statement
// already drives, or writing an output some statement owns — returns
// ErrMigrationActive: Reset the chain first.
func (c *Controller) Start(m *Migration) error {
	if err := m.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.checkChainConflicts(m); err != nil {
		return err
	}
	if m.Setup != "" {
		// runSetup's summary includes re-acquiring c.mu (the lazy-migration
		// hook calls back into the controller), but the hook paths cannot
		// re-enter here: for a first migration the hook is only installed at
		// the end of Start, and for a chained one the setup DDL is pure DDL
		// over fresh tables, which never reaches an ensure path.
		//lint:ignore lockflow the migration hook that re-enters the controller cannot fire during setup DDL
		if err := c.runSetup(m.Setup); err != nil {
			return fmt.Errorf("core: migration setup: %w", err)
		}
	}
	var runtimes []*StmtRuntime
	byOutput := map[string]*StmtRuntime{}
	for k, rt := range c.byOutput {
		byOutput[k] = rt
	}
	for _, stmt := range m.Statements {
		rt, err := c.buildRuntime(stmt, m, byOutput)
		if err != nil {
			return err
		}
		runtimes = append(runtimes, rt)
		for _, out := range rt.outputs {
			if byOutput[norm(out.tbl.Def.Name)] != nil {
				return fmt.Errorf("core: output table %q used by two statements", out.tbl.Def.Name)
			}
			byOutput[norm(out.tbl.Def.Name)] = rt
		}
	}
	if m.PrevalidateUnique {
		for _, rt := range runtimes {
			if err := c.prevalidateUnique(rt); err != nil {
				return err
			}
		}
	}
	sp := c.tr.StartMigration(m.Name)
	if !c.shadow {
		// The big flip (paper §2.1) as a catalog version install: a new
		// version marking the inputs retired is published with a CAS at a
		// reserved commit sequence, so in-flight statements keep the schema
		// their snapshot pinned and nothing drains. (The eager and multi-step
		// baselines still flip under the gate; see eager.go.)
		installStart := time.Now()
		if _, err := c.db.InstallCatalogVersion(m.Name, m.VersionMeta, m.RetireInputs); err != nil {
			c.tr.Finish(sp) // migration never activated; don't leave the span live
			return fmt.Errorf("core: installing catalog version: %w", err)
		}
		sp.AddSince(trace.PhaseInstall, installStart)
		for _, name := range m.RetireInputs {
			c.retired[norm(name)] = true
		}
	}
	if sp != nil {
		c.migSpan.Store(sp)
		c.tr.Event(trace.EvMigrationStart, sp.ID(), int64(len(m.Statements)), m.Name)
	}
	if len(c.migs) == 0 {
		c.startedAt = time.Now()
	}
	c.migs = append(c.migs, m)
	c.runtimes = append(c.runtimes, runtimes...)
	c.byOutput = byOutput
	// A chained Start reopens a chain whose earlier migrations already
	// completed: fresh done channel, completion clock rewound.
	if c.done == nil || c.completedAt.Load() != 0 {
		c.done = make(chan struct{})
	}
	c.completedAt.Store(0)
	c.completionErr = nil
	if !c.shadow {
		c.db.SetMigrationHook(c)
	}
	// The big flip changes what plans may legally touch (retired inputs, new
	// outputs); drop everything compiled before it.
	c.db.InvalidatePlans()
	return nil
}

// checkChainConflicts decides whether m may start given the active chain
// (caller holds c.mu). The rule: a chained migration must not re-drive a
// table an incomplete statement already drives, and must not target an
// output some active statement owns.
func (c *Controller) checkChainConflicts(m *Migration) error {
	if len(c.migs) == 0 {
		return nil
	}
	active := c.migs[len(c.migs)-1].Name
	for _, rt := range c.runtimes {
		if rt.complete.Load() {
			continue
		}
		for _, stmt := range m.Statements {
			if norm(drivingTableName(stmt)) == norm(rt.drivingTbl.Def.Name) {
				return fmt.Errorf("%w: %q (statement %q drives %q, still migrating)",
					ErrMigrationActive, active, rt.Stmt.Name, rt.drivingTbl.Def.Name)
			}
		}
	}
	for _, stmt := range m.Statements {
		for _, out := range stmt.Outputs {
			if c.byOutput[norm(out.Table)] != nil {
				return fmt.Errorf("%w: %q (output %q is owned by an active statement)",
					ErrMigrationActive, active, out.Table)
			}
		}
	}
	return nil
}

// runSetup executes migration setup DDL statement by statement, skipping
// CREATE TABLE for tables that already exist (and the indexes/views layered
// on them). That makes setup replay idempotent: recovery re-runs a completed
// migration's Start against a schema script that may already contain the
// new-version tables, and a generated inverse migration re-creates input
// tables that were never dropped — neither may fail with a duplicate-table
// error.
func (c *Controller) runSetup(setup string) error {
	stmts, err := sql.Parse(setup)
	if err != nil {
		return err
	}
	existing := map[string]bool{}
	for _, s := range stmts {
		switch st := s.(type) {
		case *sql.CreateTableStmt:
			if c.db.Catalog().HasTable(st.Name) {
				existing[norm(st.Name)] = true
				continue
			}
		case *sql.CreateIndexStmt:
			if existing[norm(st.Table)] {
				continue // the pre-existing table carries its indexes already
			}
		case *sql.CreateViewStmt:
			if c.db.Catalog().HasView(st.Name) {
				continue
			}
		}
		tx := c.db.Begin()
		if _, err := c.db.ExecStmt(tx, s); err != nil {
			_ = c.db.Abort(tx)
			return err
		}
		if err := c.db.Commit(tx); err != nil {
			return err
		}
	}
	return nil
}

// drivingTableName resolves a statement's driving alias to the underlying
// table name through the first output's FROM clause.
func drivingTableName(stmt *Statement) string {
	for _, ref := range stmt.Outputs[0].Def.From {
		if norm(ref.AliasOrName()) == norm(stmt.Driving) {
			return ref.Name
		}
	}
	return stmt.Driving
}

// buildRuntime constructs the live state for one statement of migration m.
// byOutput is the merged output→runtime map accumulated so far (active chain
// plus m's earlier statements); a driving table found there is a chained
// input and links the new runtime to its upstream producer.
func (c *Controller) buildRuntime(stmt *Statement, m *Migration, byOutput map[string]*StmtRuntime) (*StmtRuntime, error) {
	rt := &StmtRuntime{ctrl: c, Stmt: stmt, drivingAlias: norm(stmt.Driving)}
	// Resolve the driving table through the first output's FROM clause.
	first := stmt.Outputs[0].Def
	for _, ref := range first.From {
		if norm(ref.AliasOrName()) == rt.drivingAlias {
			tbl, err := c.db.Catalog().Table(ref.Name)
			if err != nil {
				return nil, err
			}
			rt.drivingTbl = tbl
		}
	}
	if rt.drivingTbl == nil {
		return nil, fmt.Errorf("core: statement %q: cannot resolve driving table %q", stmt.Name, stmt.Driving)
	}
	if up := byOutput[norm(rt.drivingTbl.Def.Name)]; up != nil && !up.complete.Load() {
		// Chained input: the driving table is still being filled by an
		// earlier statement. Two preconditions keep that sound: the input
		// must be retired (so only upstream migration transactions write it
		// — a granule ensured here can only gain rows through the upstream
		// ensures we issue first), and every output needs a unique index
		// (pass-through transforms before upstream completes dedup there).
		retired := false
		for _, name := range m.RetireInputs {
			if norm(name) == norm(rt.drivingTbl.Def.Name) {
				retired = true
			}
		}
		if !retired {
			return nil, fmt.Errorf("core: statement %q: chained driving table %q must be in RetireInputs while %q is still migrating",
				stmt.Name, rt.drivingTbl.Def.Name, up.Stmt.Name)
		}
		rt.upstream = up
	}
	for _, out := range stmt.Outputs {
		tbl, err := c.db.Catalog().Table(out.Table)
		if err != nil {
			return nil, fmt.Errorf("core: statement %q: output %w (create it in Migration.Setup)", stmt.Name, err)
		}
		rt.outputs = append(rt.outputs, outputRuntime{spec: out, tbl: tbl})
		if len(tbl.UniqueIndexes()) == 0 {
			if c.mode == DetectOnInsert {
				return nil, fmt.Errorf("core: on-conflict mode requires a unique index on output %q (§3.7)", out.Table)
			}
			if rt.upstream != nil && stmt.Category.UsesBitmap() {
				return nil, fmt.Errorf("core: chained statement %q requires a unique index on output %q (pass-through rows dedup there)",
					stmt.Name, out.Table)
			}
		}
	}
	if stmt.Category.UsesBitmap() {
		gran := stmt.Granularity
		if gran <= 0 {
			gran = 1
		}
		rt.bitmap = NewBitmap(rt.drivingTbl.Heap.NumSlots(), gran)
	} else {
		rt.hash = NewHashTracker()
		for _, colName := range stmt.GroupBy {
			ord := rt.drivingTbl.Def.ColumnIndex(colName)
			if ord < 0 {
				return nil, fmt.Errorf("core: statement %q: group column %q not in %q", stmt.Name, colName, rt.drivingTbl.Def.Name)
			}
			rt.groupOrds = append(rt.groupOrds, ord)
		}
	}
	if stmt.Seed != nil {
		for _, ref := range stmt.Seed.Def.From {
			if norm(ref.AliasOrName()) == norm(stmt.Seed.Driving) {
				tbl, err := c.db.Catalog().Table(ref.Name)
				if err != nil {
					return nil, err
				}
				rt.seedTbl = tbl
			}
		}
		if rt.seedTbl == nil {
			return nil, fmt.Errorf("core: statement %q: cannot resolve seed table", stmt.Name)
		}
		for _, colName := range stmt.Seed.GroupBy {
			ord := rt.seedTbl.Def.ColumnIndex(colName)
			if ord < 0 {
				return nil, fmt.Errorf("core: statement %q: seed group column %q not in %q", stmt.Name, colName, rt.seedTbl.Def.Name)
			}
			rt.seedOrds = append(rt.seedOrds, ord)
		}
		if len(rt.seedOrds) != len(rt.groupOrds) {
			return nil, fmt.Errorf("core: statement %q: seed group arity mismatch", stmt.Name)
		}
	}
	return rt, nil
}

// prevalidateUnique runs the §2.4 synchronous check: compute every output's
// transform eagerly (read-only) and fail on any unique-key duplicate, so the
// error surfaces before the new schema goes live.
func (c *Controller) prevalidateUnique(rt *StmtRuntime) error {
	tx := c.db.Begin()
	defer tx.Abort()
	for _, out := range rt.outputs {
		uniques := out.tbl.UniqueIndexes()
		if len(uniques) == 0 {
			continue
		}
		plan, err := c.db.PlanSelect(out.spec.Def)
		if err != nil {
			return err
		}
		seen := make(map[string]struct{})
		err = plan.Execute(tx, func(row types.Row) error {
			for _, idx := range uniques {
				def := idx.Def()
				keyRow := make(types.Row, len(def.Columns))
				null := false
				for i, ord := range def.Columns {
					if row[ord].IsNull() {
						null = true
						break
					}
					keyRow[i] = row[ord]
				}
				if null {
					continue
				}
				k := fmt.Sprintf("%d|%s", def.ID, types.EncodeKey(nil, keyRow))
				if _, dup := seen[k]; dup {
					return fmt.Errorf("core: migration %q would violate unique index %q on %q (duplicate key %v); rejected by synchronous pre-check (§2.4)",
						rt.Stmt.Name, def.Name, out.tbl.Def.Name, keyRow)
				}
				seen[k] = struct{}{}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Reset clears a completed migration so the next one can Start — the
// continuous-deployment cadence the paper motivates (multiple schema changes
// per day). It fails while data is still moving.
func (c *Controller) Reset() error {
	if !c.Complete() {
		name := ""
		c.mu.RLock()
		if len(c.migs) > 0 {
			name = c.migs[len(c.migs)-1].Name
		}
		c.mu.RUnlock()
		return fmt.Errorf("core: cannot reset: migration %q is still in progress", name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.migs) == 0 {
		return nil
	}
	c.db.SetMigrationHook(nil)
	// Un-retire any inputs the flips' catalog installs marked (inputs already
	// dropped at completion carry no mark; ClearRetired ignores them).
	for _, m := range c.migs {
		c.db.Catalog().ClearRetired(m.RetireInputs...)
	}
	c.migs = nil
	c.cleaned = 0
	c.runtimes = nil
	c.byOutput = map[string]*StmtRuntime{}
	c.retired = map[string]bool{}
	c.done = nil
	c.completionErr = nil
	c.completedAt.Store(0)
	c.migSpan.Store(nil)
	c.db.InvalidatePlans()
	return nil
}

// Migration returns the most recently started migration of the active chain,
// or nil.
func (c *Controller) Migration() *Migration {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.migs) == 0 {
		return nil
	}
	return c.migs[len(c.migs)-1]
}

// Migrations returns the active migration chain in Start order.
func (c *Controller) Migrations() []*Migration {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]*Migration(nil), c.migs...)
}

// Runtimes returns the active statement runtimes.
func (c *Controller) Runtimes() []*StmtRuntime {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]*StmtRuntime(nil), c.runtimes...)
}

// RuntimeFor returns the runtime owning the given output table, or nil.
func (c *Controller) RuntimeFor(outputTable string) *StmtRuntime {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.byOutput[norm(outputTable)]
}

// IsRetired reports whether client access to the table is rejected.
func (c *Controller) IsRetired(table string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.retired[norm(table)]
}

// Complete reports whether every statement finished migrating.
func (c *Controller) Complete() bool {
	c.mu.RLock()
	rts := c.runtimes
	active := len(c.migs) > 0
	c.mu.RUnlock()
	if !active {
		return true
	}
	for _, rt := range rts {
		if !rt.complete.Load() {
			return false
		}
	}
	return true
}

// CompletedAt returns when the migration finished (zero time if not yet).
func (c *Controller) CompletedAt() time.Time {
	n := c.completedAt.Load()
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, n)
}

// StartedAt returns when the migration was registered.
func (c *Controller) StartedAt() time.Time {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.startedAt
}

// markRuntimeComplete records completion and, when the whole migration is
// done, performs end-of-migration cleanup (§2.2: "the migration is complete
// and the old schema can be deleted"). The returned error is any cleanup
// failure (DropTable of a retired input); it is also recorded as the
// controller's completion error — before the done channel closes — so
// AwaitMigration waiters surface it even when the completing worker is a
// background goroutine with no caller.
func (c *Controller) markRuntimeComplete(rt *StmtRuntime) error {
	if rt.upstream != nil && !rt.upstream.complete.Load() {
		// A chained runtime's driving table is still being filled upstream;
		// whatever looks "complete" now can still gain rows. The completion
		// check re-fires once upstream finishes.
		return nil
	}
	if !rt.complete.CompareAndSwap(false, true) {
		return nil
	}
	rt.completeAt.Store(time.Now().UnixNano())
	if !c.Complete() {
		return nil
	}
	if !c.completedAt.CompareAndSwap(0, time.Now().UnixNano()) {
		return nil // another worker already ran the end-of-migration step
	}
	if sp := c.migSpan.Load(); sp != nil {
		c.tr.Finish(sp)
		var rows int64
		for _, r := range c.Runtimes() {
			rows += r.stats.rowsMigrated.Load()
		}
		c.tr.Event(trace.EvMigrationComplete, sp.ID(), rows, sp.Name())
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var err error
	dropped := false
	// Per-migration cleanup over the uncleaned suffix of the chain, so a
	// chained Start after a completed migration does not re-drop its inputs.
	for ; c.cleaned < len(c.migs); c.cleaned++ {
		m := c.migs[c.cleaned]
		if !m.DropInputsOnComplete {
			continue
		}
		for _, name := range m.RetireInputs {
			// DropTable clears the head version's retire mark with the table.
			if derr := c.db.Catalog().DropTable(name); derr != nil {
				err = errors.Join(err, fmt.Errorf("core: end-of-migration drop of %q: %w", name, derr))
			}
			delete(c.retired, norm(name))
			dropped = true
		}
	}
	if dropped {
		// The drops bypassed the SQL DDL path; cached plans may still
		// reference the dropped tables.
		c.db.InvalidatePlans()
	}
	c.completionErr = err
	if c.done != nil {
		close(c.done) // wake AwaitMigration waiters; completionErr is set first
	}
	return err
}

// CompletionErr returns the end-of-migration cleanup error, or nil. It is
// meaningful once the migration completed and is cleared by Reset.
func (c *Controller) CompletionErr() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.completionErr
}

// AwaitMigration blocks until the active migration completes or ctx is
// done, without polling: completion closes a channel that waiters select on.
// It returns immediately when no migration is active. On completion it
// returns the migration's completion error (end-of-migration cleanup
// failure), if any.
func (c *Controller) AwaitMigration(ctx context.Context) error {
	c.mu.RLock()
	ch := c.done
	c.mu.RUnlock()
	if ch == nil || c.Complete() {
		return c.CompletionErr()
	}
	select {
	case <-ch:
		return c.CompletionErr()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// --- migration transactions ---

// beginMigTxn starts a migration transaction with ctx as its statement
// context (nil = no cancellation bound), so lock waits inside the transform
// stop when the intercepted client statement is cancelled.
func (c *Controller) beginMigTxn(ctx context.Context) *txn.Txn {
	tx := c.db.Begin()
	tx.SetContext(ctx)
	c.migTxns.Store(tx.ID(), struct{}{})
	return tx
}

func (c *Controller) commitMigTxn(tx *txn.Txn) error {
	defer c.migTxns.Delete(tx.ID())
	return c.db.Commit(tx)
}

func (c *Controller) abortMigTxn(tx *txn.Txn) {
	c.migTxns.Delete(tx.ID())
	// Batch logging drops the buffered redo with the transaction; nothing
	// reaches the log, so Abort cannot fail.
	_ = c.db.Abort(tx)
}

// isMigTxn reports whether the transaction is a migration transaction.
func (c *Controller) isMigTxn(tx *txn.Txn) bool {
	_, ok := c.migTxns.Load(tx.ID())
	return ok
}

// BeforeKeyCheck implements engine.MigrationHook: before the engine checks a
// unique key or foreign key against a table under migration, the rows that
// could produce that key are migrated (paper §2.1's constraint-driven scope
// widening, evaluated in §4.5).
func (c *Controller) BeforeKeyCheck(tx *txn.Txn, table string, cols []int, key types.Row) error {
	if c.isMigTxn(tx) {
		return nil
	}
	rt := c.RuntimeFor(table)
	if rt == nil || rt.complete.Load() {
		return nil
	}
	outTbl, err := c.db.Catalog().Table(table)
	if err != nil {
		return nil
	}
	var pred expr.Expr
	for i, ord := range cols {
		name := outTbl.Def.Columns[ord].Name
		pred = expr.CombineConjuncts(pred,
			expr.NewBinOp(expr.OpEq, expr.NewCol("", name), expr.NewConst(key[i])))
	}
	return c.EnsureMigratedContext(tx.Context(), table, pred)
}

// obsMig returns the migration metrics shared through the engine's Set.
func (c *Controller) obsMig() *obs.MigrationMetrics { return c.db.Obs().Migration }

// EnsureForTable migrates data relevant to a client request on `table`
// filtered by `where`. Only the conjuncts fully resolvable against the
// table's columns narrow the migration; everything else falls back to the
// table's full scope for safety (superset semantics, paper §2.4). alias is
// the request's binding name for the table ("" = the table name).
func (c *Controller) EnsureForTable(table, alias string, where expr.Expr) error {
	return c.EnsureForTableContext(nil, table, alias, where)
}

// EnsureForTableContext is EnsureForTable bounded by the statement's context:
// the busy-granule backoff loop and the migration transactions' lock waits
// stop when ctx is done. A nil ctx waits without cancellation bound.
func (c *Controller) EnsureForTableContext(ctx context.Context, table, alias string, where expr.Expr) error {
	rt := c.RuntimeFor(table)
	if rt == nil || rt.complete.Load() {
		return nil
	}
	tbl, err := c.db.Catalog().Table(table)
	if err != nil {
		return nil // engine will surface the real error
	}
	if alias == "" {
		alias = table
	}
	var pred expr.Expr
	for _, conj := range expr.SplitConjuncts(where) {
		ok := true
		for _, col := range expr.CollectCols(conj) {
			if col.Table != "" && !strings.EqualFold(col.Table, alias) {
				ok = false
				break
			}
			if tbl.Def.ColumnIndex(col.Name) < 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		// Strip qualifiers so the predicate speaks the output table's
		// column language for transposition.
		stripped, err := expr.Transform(conj, func(x expr.Expr) (expr.Expr, error) {
			if col, ok := x.(*expr.Col); ok {
				return expr.NewCol("", col.Name), nil
			}
			return x, nil
		})
		if err != nil {
			return err
		}
		pred = expr.CombineConjuncts(pred, stripped)
	}
	return c.EnsureMigratedContext(ctx, table, pred)
}

// EnsureMigrated migrates, before the caller proceeds, every old-schema
// tuple or group potentially relevant to a client request against
// outputTable whose WHERE-equivalent predicate is pred (nil = everything).
// This is the entry point of the paper's request-driven lazy migration.
func (c *Controller) EnsureMigrated(outputTable string, pred expr.Expr) error {
	return c.EnsureMigratedContext(nil, outputTable, pred)
}

// EnsureMigratedContext is EnsureMigrated bounded by the statement's context
// (nil = no cancellation bound): a cancelled statement stops waiting on busy
// granules/groups and its migration transactions stop waiting in lock queues,
// returning the context's cause.
func (c *Controller) EnsureMigratedContext(ctx context.Context, outputTable string, pred expr.Expr) error {
	rt := c.RuntimeFor(outputTable)
	if rt == nil || rt.complete.Load() {
		return nil
	}
	start := time.Now()
	err := c.ensureMigrated(ctx, rt, outputTable, pred)
	c.obsMig().EnsureLatency.ObserveSince(start)
	if sp := trace.FromContext(ctx); sp != nil {
		sp.AddSince(trace.PhaseLazyMigrate, start)
	}
	return err
}

func (c *Controller) ensureMigrated(ctx context.Context, rt *StmtRuntime, outputTable string, pred expr.Expr) error {
	spec := rt.specFor(outputTable)
	filters, err := c.db.TransposeFilters(spec.Def, pred)
	if err != nil {
		return err
	}
	var drivingPred expr.Expr
	for _, f := range filters {
		if norm(f.Alias) == rt.drivingAlias {
			drivingPred = f.Pred
		}
	}
	if rt.bitmap != nil {
		return rt.migrateBitmapPred(ctx, drivingPred)
	}
	// Seeded join migrations must also discover groups that exist only in
	// the secondary table (e.g. stock for never-ordered items): transpose
	// the client predicate through the seed query too.
	var seedPred expr.Expr
	seedScan := false
	if rt.Stmt.Seed != nil {
		seedFilters, err := c.db.TransposeFilters(rt.Stmt.Seed.Def, pred)
		if err == nil {
			seedScan = true
			for _, f := range seedFilters {
				if norm(f.Alias) == norm(rt.Stmt.Seed.Driving) {
					seedPred = f.Pred
				}
			}
		}
	}
	return rt.migrateHashPredSeeded(ctx, drivingPred, seedPred, seedScan)
}

func (rt *StmtRuntime) specFor(outputTable string) *OutputSpec {
	for i := range rt.outputs {
		if norm(rt.outputs[i].tbl.Def.Name) == norm(outputTable) {
			return &rt.outputs[i].spec
		}
	}
	return &rt.outputs[0].spec
}

// --- bitmap migrations (Algorithm 1 over Algorithm 2) ---

func (rt *StmtRuntime) migrateBitmapPred(ctx context.Context, pred expr.Expr) error {
	for {
		busy, err := rt.bitmapPass(ctx, pred, nil, false)
		if err != nil {
			return err
		}
		if busy == 0 {
			return nil
		}
		// Another worker is migrating some of our granules: wait for it to
		// finish or abort, then re-check (Algorithm 1 line 10).
		rt.stats.skipWaits.Add(1)
		rt.noteCollision(ctx, busy)
		if err := sleepCtx(ctx, rt.ctrl.backoff); err != nil {
			return err
		}
	}
}

// noteCollision annotates the statement's span with the migration batch it
// collided with (first collision wins) and emits a granule_collision ring
// event, so a slow statement names what it waited on.
func (rt *StmtRuntime) noteCollision(ctx context.Context, busy int) {
	sp := trace.FromContext(ctx)
	if sp == nil {
		return
	}
	detail := fmt.Sprintf("migration stmt=%s busy=%d", rt.Stmt.Name, busy)
	sp.Collide(detail)
	rt.ctrl.tr.Event(trace.EvCollision, sp.ID(), int64(busy), detail)
}

// bitmapPass runs one iteration of the per-transaction migration loop:
// claim, transform, commit, mark, over either the granules matching pred or
// an explicit granule list (the background migrator's path). ctx (nil ok)
// bounds the migration transaction's lock waits. background attributes
// migrated tuples to the lazy or background counter. It returns how many
// relevant granules were busy (in progress by other workers).
func (rt *StmtRuntime) bitmapPass(ctx context.Context, pred expr.Expr, directGranules []int64, background bool) (busy int, err error) {
	if rt.upstream != nil {
		if !rt.upstream.complete.Load() {
			if directGranules != nil {
				// Background sweeps stay parked while upstream is still
				// filling the driving heap (background.go gates on
				// upstreamDone); a direct-granule pass that raced the gate
				// has nothing sound to do yet.
				return 0, nil
			}
			// Pull the relevant slice of the driving table through the
			// upstream statement first: the predicate is already in the
			// driving table's column language, which is exactly an output
			// predicate for the upstream runtime.
			if err := rt.ctrl.ensureMigrated(ctx, rt.upstream, rt.drivingTbl.Def.Name, pred); err != nil {
				return 0, err
			}
			if !rt.upstream.complete.Load() {
				return 0, rt.passThrough(ctx, pred, background)
			}
		}
		rt.syncBitmapSize()
	}
	tx := rt.ctrl.beginMigTxn(ctx)
	finished := false
	var wip []int64
	defer func() {
		if !finished {
			rt.ctrl.abortMigTxn(tx)
			if rt.ctrl.mode == DetectEarly {
				for _, g := range wip {
					rt.bitmap.ReleaseAbortGranule(g)
				}
			}
		}
	}()

	var candidates []int64
	if directGranules != nil {
		candidates = directGranules
	} else {
		tids, _, serr := rt.ctrl.db.ScanForWrite(tx, rt.drivingTbl, rt.drivingAlias, pred)
		if serr != nil {
			return 0, serr
		}
		seen := granuleSeenPool.Get().(map[int64]bool)
		for _, tid := range tids {
			g := rt.bitmap.GranuleOf(tid.Ordinal(rt.drivingTbl.Heap.PageSize()))
			if !seen[g] {
				seen[g] = true
				candidates = append(candidates, g)
			}
		}
		putGranuleSeen(seen)
	}
	for _, g := range candidates {
		switch rt.claimGranule(g) {
		case Claimed:
			wip = append(wip, g)
		case Busy:
			busy++
		}
	}
	if len(wip) == 0 {
		rt.ctrl.abortMigTxn(tx)
		finished = true // nothing to undo; skip the deferred release
		return busy, nil
	}
	rows, err := rt.fetchGranuleRows(tx, wip)
	if err != nil {
		return busy, err
	}
	inserted := 0
	if err := rt.transform(tx, rows, &inserted); err != nil {
		return busy, err
	}
	for _, g := range wip {
		rt.ctrl.db.LogRedo(tx, wal.Record{
			Type: wal.RecMigrated, Table: rt.Stmt.Name, Key: GranuleKey(g),
		})
	}
	// Mark trackers from inside the commit (OnCommit runs within Txn.Commit,
	// before the engine releases the WAL commit fence): a checkpoint's
	// snapshot then always agrees with its log cut — it can never miss a
	// granule whose RecMigrated record lives in an about-to-be-deleted
	// segment.
	tx.OnCommit(func() {
		for _, g := range wip {
			rt.markGranuleMigrated(g)
		}
	})
	if err := rt.ctrl.commitMigTxn(tx); err != nil {
		return busy, err
	}
	finished = true
	rt.stats.transforms.Add(1)
	rt.attributeTuples(inserted, background)
	return busy, rt.checkBitmapComplete()
}

// attributeTuples records migrated output rows against the lazy or
// background counter (the paper's "client requests vs. background threads"
// split, Figure 3's two progress drivers).
func (rt *StmtRuntime) attributeTuples(inserted int, background bool) {
	if inserted <= 0 {
		return
	}
	m := rt.ctrl.obsMig()
	if background {
		m.TuplesBackground.Add(int64(inserted))
	} else {
		m.TuplesLazy.Add(int64(inserted))
	}
}

// claimGranule applies the conflict-detection mode: early detection uses the
// lock-bit protocol; on-insert detection only skips already-migrated
// granules and lets the unique index resolve duplicates (§3.7).
func (rt *StmtRuntime) claimGranule(g int64) ClaimResult {
	if rt.ctrl.trackingDisabled.Load() {
		return Claimed
	}
	if rt.ctrl.mode == DetectEarly {
		return rt.bitmap.TryClaimGranule(g)
	}
	if rt.bitmap.IsMigratedGranule(g) {
		return Done
	}
	return Claimed
}

func (rt *StmtRuntime) markGranuleMigrated(g int64) {
	if rt.ctrl.trackingDisabled.Load() {
		return
	}
	if rt.ctrl.mode == DetectEarly {
		rt.bitmap.MarkMigratedGranule(g)
	} else {
		rt.bitmap.RestoreMigratedGranule(g) // idempotent under duplicated work
	}
}

// checkBitmapComplete runs the end-of-migration step when the bitmap filled;
// the returned error is the cleanup failure from markRuntimeComplete. A
// chained runtime first syncs its bitmap to the frozen heap — before the
// upstream statement completes, a full-looking bitmap proves nothing (the
// heap can still grow) and completion is deferred.
func (rt *StmtRuntime) checkBitmapComplete() error {
	if !rt.upstreamDone() {
		return nil
	}
	rt.syncBitmapSize()
	if rt.bitmap.Complete() {
		return rt.ctrl.markRuntimeComplete(rt)
	}
	return nil
}

// passThrough makes the client's view of a chained bitmap statement correct
// while the upstream statement is still filling the driving table: the
// driving rows matching pred (just pulled through upstream) are transformed
// directly, with no granule claims and no durable marks — the required
// unique index on every output dedups re-transforms. Durable progress
// restarts from scratch once upstream completes and the bitmap grows to the
// frozen heap; each granule then migrates exactly once, deduping against
// pass-through-era rows the same way.
func (rt *StmtRuntime) passThrough(ctx context.Context, pred expr.Expr, background bool) error {
	tx := rt.ctrl.beginMigTxn(ctx)
	committed := false
	defer func() {
		if !committed {
			rt.ctrl.abortMigTxn(tx)
		}
	}()
	_, rows, err := rt.ctrl.db.ScanForWrite(tx, rt.drivingTbl, rt.drivingAlias, pred)
	if err != nil {
		return err
	}
	if len(rows) == 0 {
		rt.ctrl.abortMigTxn(tx)
		committed = true
		return nil
	}
	inserted := 0
	if err := rt.transform(tx, rows, &inserted); err != nil {
		return err
	}
	if err := rt.ctrl.commitMigTxn(tx); err != nil {
		return err
	}
	committed = true
	rt.stats.transforms.Add(1)
	rt.attributeTuples(inserted, background)
	return nil
}

// fetchGranuleRows collects every tuple visible to tx in the claimed
// granules — with page-level granularity the whole page migrates even if the
// request matched one tuple (§4.4.3).
func (rt *StmtRuntime) fetchGranuleRows(tx *txn.Txn, granules []int64) ([]types.Row, error) {
	var rows []types.Row
	for _, g := range granules {
		lo, hi := rt.bitmap.TupleRange(g)
		err := rt.drivingTbl.Heap.ScanRange(lo, hi, func(tid storage.TID, head *storage.Version) error {
			if row, ok := tx.VisibleRow(head); ok {
				rows = append(rows, row.Clone())
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// transform runs every output's defining query over the bound driving rows
// and inserts the results. outputsInserted, when non-nil, receives the
// number of rows inserted per output (used by group seeding).
func (rt *StmtRuntime) transform(tx *txn.Txn, drivingRows []types.Row, outputsInserted *int) error {
	if err := rt.ctrl.maybeInjectFailure(); err != nil {
		return err
	}
	conflict := sql.ConflictError
	if rt.ctrl.mode == DetectOnInsert || rt.ctrl.trackingDisabled.Load() ||
		(rt.upstream != nil && rt.bitmap != nil) {
		// Without tracking there is no exactly-once guarantee to assert;
		// duplicated work must dedup at the unique index (§3.7 semantics).
		// Chained bitmap statements keep this forever: rows inserted by
		// pass-through transforms (before upstream completed) collide with
		// the post-freeze granule migration of the same rows.
		conflict = sql.ConflictDoNothing
	}
	for _, out := range rt.outputs {
		// PlanSelectBound caches the transform plan across batches (and
		// across workers); each execution binds its own claimed rows.
		plan, err := rt.ctrl.db.PlanSelectBound(out.spec.Def, rt.drivingAlias)
		if err != nil {
			return err
		}
		err = plan.ExecuteBound(tx, drivingRows, func(row types.Row) error {
			_, ok, ierr := rt.ctrl.db.InsertRow(tx, out.tbl, row.Clone(), conflict)
			if ierr != nil {
				if errors.Is(ierr, engine.ErrCheckViolation) {
					// New-schema constraints may legitimately reject old
					// rows (§2.4); count and continue.
					rt.stats.droppedRows.Add(1)
					return nil
				}
				return ierr
			}
			if ok {
				rt.stats.rowsMigrated.Add(1)
				if outputsInserted != nil {
					*outputsInserted++
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// --- hashmap migrations (Algorithm 1 over Algorithm 3) ---

// groupKeyOf builds the tracker key for a driving row.
func (rt *StmtRuntime) groupKeyOf(row types.Row) []byte {
	key := make(types.Row, len(rt.groupOrds))
	for i, ord := range rt.groupOrds {
		key[i] = row[ord]
	}
	return types.EncodeKey(nil, key)
}

func (rt *StmtRuntime) migrateHashPred(ctx context.Context, pred expr.Expr) error {
	return rt.migrateHashPredSeeded(ctx, pred, nil, false)
}

// ProgressTables reports per-statement physical migration progress for
// metrics snapshots. Bitmap migrations report granule counts; hash
// migrations have no known group total (Total = -1) until complete.
func (c *Controller) ProgressTables() []obs.TableProgress {
	rts := c.Runtimes()
	if len(rts) == 0 {
		return nil
	}
	out := make([]obs.TableProgress, 0, len(rts))
	for _, rt := range rts {
		p := obs.TableProgress{
			Statement: rt.Stmt.Name,
			Table:     rt.drivingTbl.Def.Name,
			Migrated:  rt.Tracker().MigratedCount(),
			Complete:  rt.complete.Load(),
		}
		if rt.bitmap != nil {
			p.Total = rt.bitmap.Granules()
			if p.Total > 0 {
				p.Progress = float64(p.Migrated) / float64(p.Total)
			}
		} else {
			p.Total = -1
		}
		if p.Complete || (rt.bitmap != nil && p.Total == 0) {
			p.Progress = 1
		}
		out = append(out, p)
	}
	return out
}

// migrateHashPredSeeded is migrateHashPred that additionally discovers
// candidate groups from the seed (secondary) table when seedScan is set.
func (rt *StmtRuntime) migrateHashPredSeeded(ctx context.Context, pred, seedPred expr.Expr, seedScan bool) error {
	if rt.upstream != nil && !rt.upstream.complete.Load() {
		// Chained hash statement with the driving table still filling: groups
		// must be fully materialized before they are claimed (an aggregate
		// computed over a partial group would be durably wrong), so discovery
		// and per-group upstream ensures happen up front and the hashPass
		// below runs over explicit keys only.
		keys, err := rt.chainedGroupKeys(ctx, pred)
		if err != nil {
			return err
		}
		if len(keys) == 0 {
			return nil
		}
		for {
			busy, err := rt.hashPass(ctx, nil, keys, false)
			if err != nil {
				return err
			}
			if busy == 0 {
				return nil
			}
			rt.stats.skipWaits.Add(1)
			rt.noteCollision(ctx, busy)
			if err := sleepCtx(ctx, rt.ctrl.backoff); err != nil {
				return err
			}
		}
	}
	var directKeys [][]byte
	if seedScan && rt.seedTbl != nil {
		tx := rt.ctrl.db.Begin()
		tx.SetContext(ctx)
		_, rows, err := rt.ctrl.db.ScanForWrite(tx, rt.seedTbl, norm(rt.Stmt.Seed.Driving), seedPred)
		tx.Abort()
		if err != nil {
			return err
		}
		seen := map[string]bool{}
		for _, row := range rows {
			key := make(types.Row, len(rt.seedOrds))
			for i, ord := range rt.seedOrds {
				key[i] = row[ord]
			}
			k := types.EncodeKey(nil, key)
			if !seen[string(k)] {
				seen[string(k)] = true
				directKeys = append(directKeys, k)
			}
		}
	}
	for {
		busy, err := rt.hashPass(ctx, pred, nil, false)
		if err != nil {
			return err
		}
		busySeed := 0
		if len(directKeys) > 0 {
			busySeed, err = rt.hashPass(ctx, nil, directKeys, false)
			if err != nil {
				return err
			}
		}
		if busy+busySeed == 0 {
			return nil
		}
		rt.stats.skipWaits.Add(1)
		rt.noteCollision(ctx, busy+busySeed)
		if err := sleepCtx(ctx, rt.ctrl.backoff); err != nil {
			return err
		}
	}
}

// chainedGroupKeys prepares a chained hash statement's lazy migration: it
// ensures the upstream statement has materialized every driving row matching
// pred, discovers the matching group keys, then ensures each discovered
// group's full extent through upstream (the group may contain rows outside
// pred). After this, the returned groups are complete and frozen — upstream's
// claim protocol guarantees their source granules never re-produce — so the
// caller's hashPass can claim and durably mark them.
func (rt *StmtRuntime) chainedGroupKeys(ctx context.Context, pred expr.Expr) ([][]byte, error) {
	driving := rt.drivingTbl.Def.Name
	if err := rt.ctrl.ensureMigrated(ctx, rt.upstream, driving, pred); err != nil {
		return nil, err
	}
	tx := rt.ctrl.db.Begin()
	tx.SetContext(ctx)
	_, rows, err := rt.ctrl.db.ScanForWrite(tx, rt.drivingTbl, rt.drivingAlias, pred)
	tx.Abort()
	if err != nil {
		return nil, err
	}
	var keys [][]byte
	seen := map[string]bool{}
	for _, row := range rows {
		k := rt.groupKeyOf(row)
		if !seen[string(k)] {
			seen[string(k)] = true
			keys = append(keys, k)
		}
	}
	for _, k := range keys {
		keyRow, err := types.DecodeKey(k)
		if err != nil {
			return nil, err
		}
		groupPred := rt.equalityPred(rt.drivingTbl, rt.Stmt.GroupBy, keyRow)
		if err := rt.ctrl.ensureMigrated(ctx, rt.upstream, driving, groupPred); err != nil {
			return nil, err
		}
	}
	return keys, nil
}

// EnsureGroupMigrated migrates (or waits for) the single group identified by
// groupKey — the fast path for post-flip writers that maintain an aggregate
// or denormalized table (paper §4.2, §4.3).
func (c *Controller) EnsureGroupMigrated(outputTable string, groupKey types.Row) error {
	return c.EnsureGroupMigratedContext(nil, outputTable, groupKey)
}

// EnsureGroupMigratedContext is EnsureGroupMigrated with cancellation: the
// backoff wait on a group claimed by a concurrent migrator stops when ctx is
// done. A nil ctx waits without deadline.
func (c *Controller) EnsureGroupMigratedContext(ctx context.Context, outputTable string, groupKey types.Row) error {
	if ctx == nil {
		ctx = context.Background()
	}
	rt := c.RuntimeFor(outputTable)
	if rt == nil || rt.complete.Load() {
		return nil
	}
	if rt.hash == nil {
		return fmt.Errorf("core: %q is not a group-tracked migration", outputTable)
	}
	if len(groupKey) != len(rt.groupOrds) {
		return fmt.Errorf("core: group key arity %d, want %d", len(groupKey), len(rt.groupOrds))
	}
	start := time.Now()
	defer func() { c.obsMig().EnsureLatency.ObserveSince(start) }()
	if rt.upstream != nil && !rt.upstream.complete.Load() {
		// The group must be fully materialized before it is claimed: pull its
		// whole extent through the upstream statement first (see
		// chainedGroupKeys for why partial groups cannot be marked).
		groupPred := rt.equalityPred(rt.drivingTbl, rt.Stmt.GroupBy, groupKey)
		if err := c.ensureMigrated(ctx, rt.upstream, rt.drivingTbl.Def.Name, groupPred); err != nil {
			return err
		}
	}
	for {
		busy, err := rt.hashPass(ctx, nil, [][]byte{types.EncodeKey(nil, groupKey)}, false)
		if err != nil {
			return err
		}
		if busy == 0 {
			return nil
		}
		rt.stats.skipWaits.Add(1)
		rt.noteCollision(ctx, busy)
		if err := sleepCtx(ctx, rt.ctrl.backoff); err != nil {
			return err
		}
	}
}

// sleepCtx pauses for d or until ctx is done, whichever comes first,
// returning the context's cause in the latter case. A nil ctx just sleeps.
func sleepCtx(ctx context.Context, d time.Duration) error {
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-done:
		return context.Cause(ctx)
	case <-t.C:
		return nil
	}
}

// hashPass runs one migration transaction over either the groups matching
// pred or an explicit key list; ctx (nil ok) bounds the transaction's lock
// waits. background attributes migrated tuples to the lazy or background
// counter. Returns the number of busy groups.
func (rt *StmtRuntime) hashPass(ctx context.Context, pred expr.Expr, directKeys [][]byte, background bool) (busy int, err error) {
	tx := rt.ctrl.beginMigTxn(ctx)
	committed := false
	var wip [][]byte
	defer func() {
		if !committed {
			rt.ctrl.abortMigTxn(tx)
			if rt.ctrl.mode == DetectEarly {
				for _, k := range wip {
					rt.hash.ReleaseAbort(k)
				}
			}
		}
	}()

	// Candidate group keys.
	var candidates [][]byte
	if directKeys != nil {
		candidates = directKeys
	} else {
		_, rows, serr := rt.ctrl.db.ScanForWrite(tx, rt.drivingTbl, rt.drivingAlias, pred)
		if serr != nil {
			return 0, serr
		}
		seen := keySeenPool.Get().(map[string]bool)
		for _, row := range rows {
			k := rt.groupKeyOf(row)
			if !seen[string(k)] {
				seen[string(k)] = true
				candidates = append(candidates, k)
			}
		}
		putKeySeen(seen)
	}
	// Claim (Algorithm 3; the WIP/SKIP local-list checks collapse into the
	// candidate dedup above and the busy counter).
	for _, k := range candidates {
		switch rt.claimGroup(k) {
		case Claimed:
			wip = append(wip, k)
		case Busy:
			busy++
		}
	}
	if len(wip) == 0 {
		rt.ctrl.abortMigTxn(tx)
		committed = true
		return busy, nil
	}
	inserted := 0
	for _, k := range wip {
		n, err := rt.migrateGroup(tx, k)
		inserted += n
		if err != nil {
			return busy, err
		}
		rt.ctrl.db.LogRedo(tx, wal.Record{
			Type: wal.RecMigrated, Table: rt.Stmt.Name, Key: k,
		})
	}
	// Mark trackers from inside the commit, within the WAL commit fence (see
	// bitmapPass): checkpoint snapshots stay aligned with the log cut.
	tx.OnCommit(func() {
		for _, k := range wip {
			rt.markGroupMigrated(k)
		}
	})
	if err := rt.ctrl.commitMigTxn(tx); err != nil {
		return busy, err
	}
	committed = true
	rt.stats.transforms.Add(1)
	rt.attributeTuples(inserted, background)
	return busy, nil
}

func (rt *StmtRuntime) claimGroup(k []byte) ClaimResult {
	if rt.ctrl.trackingDisabled.Load() {
		return Claimed
	}
	if rt.ctrl.mode == DetectEarly {
		return rt.hash.TryClaim(k)
	}
	if rt.hash.IsMigrated(k) {
		return Done
	}
	return Claimed
}

func (rt *StmtRuntime) markGroupMigrated(k []byte) {
	if rt.ctrl.trackingDisabled.Load() {
		return
	}
	if rt.ctrl.mode == DetectEarly {
		rt.hash.MarkMigrated(k)
	} else {
		rt.hash.RestoreMigrated(k)
	}
}

// migrateGroup transforms one whole group: all driving rows with the group
// key (fetched fresh inside the migration transaction so the group is
// complete), falling back to the seed query when the group is empty. It
// returns how many output rows it inserted.
func (rt *StmtRuntime) migrateGroup(tx *txn.Txn, key []byte) (int, error) {
	keyRow, err := types.DecodeKey(key)
	if err != nil {
		return 0, err
	}
	groupPred := rt.equalityPred(rt.drivingTbl, rt.Stmt.GroupBy, keyRow)
	_, rows, err := rt.ctrl.db.ScanForWrite(tx, rt.drivingTbl, rt.drivingAlias, groupPred)
	if err != nil {
		return 0, err
	}
	inserted := 0
	if len(rows) > 0 {
		if err := rt.transform(tx, rows, &inserted); err != nil {
			return inserted, err
		}
	}
	if inserted == 0 && rt.Stmt.Seed != nil {
		return rt.migrateSeed(tx, keyRow)
	}
	return inserted, nil
}

// migrateSeed inserts the secondary-table completion rows for an empty group
// (e.g. stock rows for items with no order lines in the join migration),
// returning how many rows it inserted.
func (rt *StmtRuntime) migrateSeed(tx *txn.Txn, keyRow types.Row) (int, error) {
	seed := rt.Stmt.Seed
	seedPred := rt.equalityPred(rt.seedTbl, seed.GroupBy, keyRow)
	_, rows, err := rt.ctrl.db.ScanForWrite(tx, rt.seedTbl, norm(seed.Driving), seedPred)
	if err != nil {
		return 0, err
	}
	if len(rows) == 0 {
		return 0, nil
	}
	conflict := sql.ConflictError
	if rt.ctrl.mode == DetectOnInsert {
		conflict = sql.ConflictDoNothing
	}
	out := rt.outputs[0]
	plan, err := rt.ctrl.db.PlanSelectBound(seed.Def, norm(seed.Driving))
	if err != nil {
		return 0, err
	}
	inserted := 0
	err = plan.ExecuteBound(tx, rows, func(row types.Row) error {
		_, ok, ierr := rt.ctrl.db.InsertRow(tx, out.tbl, row.Clone(), conflict)
		if ierr != nil {
			if errors.Is(ierr, engine.ErrCheckViolation) {
				rt.stats.droppedRows.Add(1)
				return nil
			}
			return ierr
		}
		if ok {
			rt.stats.rowsMigrated.Add(1)
			inserted++
		}
		return nil
	})
	return inserted, err
}

// equalityPred builds col1 = v1 AND col2 = v2 ... over the given table's
// columns (unbound, unqualified names).
func (rt *StmtRuntime) equalityPred(tbl *catalog.Table, colNames []string, vals types.Row) expr.Expr {
	var pred expr.Expr
	for i, name := range colNames {
		pred = expr.CombineConjuncts(pred,
			expr.NewBinOp(expr.OpEq, expr.NewCol("", name), expr.NewConst(vals[i])))
	}
	return pred
}
