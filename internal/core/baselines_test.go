package core

import (
	"bytes"
	"io"
	"sync"
	"testing"
	"time"

	"github.com/bullfrogdb/bullfrog/internal/engine"
	"github.com/bullfrogdb/bullfrog/internal/types"
	"github.com/bullfrogdb/bullfrog/internal/wal"
)

func TestEagerMigration(t *testing.T) {
	db := engine.New(engine.Options{})
	m := splitFixture(t, db, 100)
	gate := NewGate()
	res, err := MigrateEager(db, m, gate)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 200 { // 100 rows into each of two outputs
		t.Errorf("rows = %d", res.Rows)
	}
	if res.Duration <= 0 {
		t.Error("duration not measured")
	}
	got := mustSelect(t, db, `SELECT COUNT(*) FROM cust_private`)[0][0].Int()
	if got != 100 {
		t.Errorf("private rows = %d", got)
	}
	tbl, _ := db.Catalog().Table("cust")
	if !tbl.Retired() {
		t.Error("input should be retired after eager migration")
	}
}

func TestEagerMigrationBlocksClients(t *testing.T) {
	db := engine.New(engine.Options{})
	m := splitFixture(t, db, 2000)
	gate := NewGate()

	// A client holding the shared gate delays eager migration; clients
	// arriving during the exclusive section are queued.
	gate.Enter()
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(started)
		_, err := MigrateEager(db, m, gate)
		done <- err
	}()
	<-started
	time.Sleep(10 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("eager migration proceeded while a client held the gate")
	default:
	}
	gate.Leave()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Gate usable again afterwards.
	gate.Enter()
	gate.Leave()
}

func TestEagerSeedCompletion(t *testing.T) {
	db := engine.New(engine.Options{})
	mustExec(t, db, `
		CREATE TABLE ol (w INT, o INT, i INT, qty INT, PRIMARY KEY (w, o, i));
		CREATE TABLE stock (s_w INT, s_i INT, s_qty INT, PRIMARY KEY (s_w, s_i));
		INSERT INTO stock VALUES (1, 1, 10), (1, 2, 20), (1, 3, 30);
		INSERT INTO ol VALUES (1, 1, 1, 5);`)
	m := &Migration{
		Name:  "join",
		Setup: `CREATE TABLE ol_stock (w INT, o INT, i INT, qty INT, s_qty INT, UNIQUE (w, i, o))`,
		Statements: []*Statement{{
			Name: "join", Driving: "l", Category: ManyToMany, GroupBy: []string{"w", "i"},
			Outputs: []OutputSpec{{
				Table: "ol_stock",
				Def:   parseSelect(t, `SELECT l.w, l.o, l.i, l.qty, s.s_qty FROM ol l, stock s WHERE s.s_w = l.w AND s.s_i = l.i`),
			}},
			Seed: &SeedSpec{
				Def:     parseSelect(t, `SELECT s.s_w, NULL AS o, s.s_i, NULL AS qty, s.s_qty FROM stock s`),
				Driving: "s",
				GroupBy: []string{"s_w", "s_i"},
			},
		}},
		RetireInputs: []string{"ol", "stock"},
	}
	res, err := MigrateEager(db, m, NewGate())
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 3 { // one joined row + two seeds
		t.Errorf("rows = %d", res.Rows)
	}
	seeds := mustSelect(t, db, `SELECT COUNT(*) FROM ol_stock WHERE o IS NULL`)[0][0].Int()
	if seeds != 2 {
		t.Errorf("seed rows = %d", seeds)
	}
}

func TestMultiStepCopyAndDualWrite(t *testing.T) {
	db := engine.New(engine.Options{})
	m := splitFixture(t, db, 150)
	ms, err := StartMultiStep(nil, db, m)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Stop()

	// During the copy window, the application writes to the OLD schema and
	// calls NoteWrite; the new schema must converge to the final state.
	custTbl, _ := db.Catalog().Table("cust")
	for i := 0; i < 50; i++ {
		tx := db.Begin()
		where, _ := parseWhereCore(`c_id = ` + itoa(i%150+1))
		tids, rows, err := db.ScanForWrite(tx, custTbl, "cust", where)
		if err != nil || len(tids) != 1 {
			t.Fatalf("scan: %v %d", err, len(tids))
		}
		newRow := rows[0].Clone()
		newRow[3] = types.NewFloat(newRow[3].Float() + 1000)
		if err := db.UpdateRow(tx, custTbl, tids[0], newRow); err != nil {
			t.Fatal(err)
		}
		if err := db.Commit(tx); err != nil {
			t.Fatal(err)
		}
		if err := ms.NoteWrite("cust", tids, []types.Row{newRow}); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for the copier.
	deadline := time.After(10 * time.Second)
	for !ms.Complete() {
		select {
		case <-deadline:
			t.Fatal("copier never completed")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if err := ms.Switch(); err != nil {
		t.Fatal(err)
	}
	if !ms.Switched() {
		t.Error("switch flag")
	}
	// The new schema must exactly match the old schema's final state.
	oldSum := mustSelect(t, db, `SELECT SUM(c_balance) FROM cust`)[0][0].Float()
	newSum := mustSelect(t, db, `SELECT SUM(c_balance) FROM cust_private`)[0][0].Float()
	if oldSum != newSum {
		t.Errorf("balance divergence: old %f new %f", oldSum, newSum)
	}
	n := mustSelect(t, db, `SELECT COUNT(*) FROM cust_private`)[0][0].Int()
	if n != 150 {
		t.Errorf("row count: %d", n)
	}
}

func TestMultiStepSwitchBeforeCompleteFails(t *testing.T) {
	db := engine.New(engine.Options{})
	mustExec(t, db, `CREATE TABLE src (a INT PRIMARY KEY)`)
	mustExec(t, db, `INSERT INTO src VALUES (1)`)
	m := &Migration{
		Name:  "m",
		Setup: `CREATE TABLE dst (a INT PRIMARY KEY)`,
		Statements: []*Statement{{
			Name: "s", Driving: "s", Category: OneToOne,
			Outputs: []OutputSpec{{Table: "dst", Def: parseSelect(t, `SELECT a FROM src s`), KeyMap: map[string]string{"a": "a"}}},
		}},
		RetireInputs: []string{"src"},
	}
	// Build but do not start the copier, so copy cannot be complete.
	ctrl := NewController(db, DetectEarly)
	ctrl.shadow = true
	shadow := *m
	shadow.RetireInputs = nil
	if err := ctrl.Start(&shadow); err != nil {
		t.Fatal(err)
	}
	ms := &MultiStep{ctrl: ctrl, mig: m}
	ms.bg = NewBackground(ctrl, time.Hour)
	if err := ms.Switch(); err == nil {
		t.Fatal("switch before complete should fail")
	}
}

func TestRecoveryRestoresTrackers(t *testing.T) {
	var logBuf bytes.Buffer
	logWriter := wal.NewWriter(&logBuf)
	db := engine.New(engine.Options{WAL: logWriter})

	m := splitFixture(t, db, 60)
	ctrl := NewController(db, DetectEarly)
	if err := ctrl.Start(m); err != nil {
		t.Fatal(err)
	}
	// Migrate a few tuples lazily, then "crash".
	for _, id := range []int{3, 14, 15, 9} {
		if err := ctrl.EnsureMigrated("cust_private", parsePred(t, `c_id = `+itoa(id))); err != nil {
			t.Fatal(err)
		}
	}
	logWriter.Flush()
	logBytes := append([]byte(nil), logBuf.Bytes()...)

	// Fresh process: recreate schema + migration spec, then recover.
	db2 := engine.New(engine.Options{})
	mustExec(t, db2, `CREATE TABLE cust (
		c_id INT PRIMARY KEY, c_name CHAR(16), c_city CHAR(16), c_balance FLOAT, c_payments INT)`)
	m2 := splitFixtureSpecOnly()
	ctrl2 := NewController(db2, DetectEarly)
	if err := ctrl2.Start(m2); err != nil {
		t.Fatal(err)
	}
	stats, err := ctrl2.Recover(func() (io.Reader, error) {
		return bytes.NewReader(logBytes), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Migrated != 4 {
		t.Errorf("migration records replayed: %d", stats.Migrated)
	}
	// Old rows and migrated copies are back...
	n := mustSelect(t, db2, `SELECT COUNT(*) FROM cust_private`)[0][0].Int()
	if n != 4 {
		t.Errorf("recovered private rows: %d", n)
	}
	// ...and the tracker refuses to migrate them again: completing the
	// migration must not duplicate those tuples (inserts use ConflictError,
	// so a duplicate would fail loudly).
	rt := ctrl2.RuntimeFor("cust_private")
	if rt.bitmap.MigratedCount() != 4 {
		t.Errorf("tracker restored %d granules", rt.bitmap.MigratedCount())
	}
	bg := NewBackground(ctrl2, 0)
	bg.Start()
	bg.Wait()
	if err := bg.Err(); err != nil {
		t.Fatal(err)
	}
	n = mustSelect(t, db2, `SELECT COUNT(*) FROM cust_private`)[0][0].Int()
	if n != 60 {
		t.Errorf("rows after completion: %d", n)
	}
}

// splitFixtureSpecOnly returns the same migration spec as splitFixture
// without touching the database (for the recovery test's second process).
func splitFixtureSpecOnly() *Migration {
	sel := func(src string) *typesSelect { return mustParseSelect(src) }
	return &Migration{
		Name: "split-cust",
		Setup: `
			CREATE TABLE cust_private (c_id INT PRIMARY KEY, c_balance FLOAT, c_payments INT);
			CREATE TABLE cust_public (c_id INT PRIMARY KEY, c_name CHAR(16), c_city CHAR(16));`,
		Statements: []*Statement{{
			Name:     "split",
			Driving:  "c",
			Category: OneToMany,
			Outputs: []OutputSpec{
				{Table: "cust_private", Def: sel(`SELECT c_id, c_balance, c_payments FROM cust c`), KeyMap: map[string]string{"c_id": "c_id"}},
				{Table: "cust_public", Def: sel(`SELECT c_id, c_name, c_city FROM cust c`), KeyMap: map[string]string{"c_id": "c_id"}},
			},
		}},
		RetireInputs: []string{"cust"},
	}
}

func TestConcurrentEnsureWithBackground(t *testing.T) {
	db := engine.New(engine.Options{})
	m := splitFixture(t, db, 400)
	ctrl := NewController(db, DetectEarly)
	if err := ctrl.Start(m); err != nil {
		t.Fatal(err)
	}
	bg := NewBackground(ctrl, 0)
	bg.ChunkGranules = 8
	bg.Start()
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := (w*53+i*17)%400 + 1
				if err := ctrl.EnsureMigrated("cust_public", parsePred(t, `c_id = `+itoa(id))); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	bg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if err := bg.Err(); err != nil {
		t.Fatal(err)
	}
	// Exactly-once even with clients and background racing.
	n := mustSelect(t, db, `SELECT COUNT(*) FROM cust_public`)[0][0].Int()
	if n != 400 {
		t.Errorf("rows = %d", n)
	}
}
