package core

import (
	"testing"
	"time"

	"github.com/bullfrogdb/bullfrog/internal/obs"
)

// TestPacerBackoff drives the backfill pacer with a synthetic clock and
// synthetic foreground traffic: a p99 spike must shrink the batch size,
// recovery must regrow it, a write-conflict burst must back off even with
// healthy latency, and an idle window must decay the throttle. No step
// sleeps on the wall clock.
func TestPacerBackoff(t *testing.T) {
	set := obs.NewSet()
	p := newPacer(set, nil)
	now := time.Unix(1_700_000_000, 0)
	p.now = func() time.Time { return now }

	observeN := func(n int, d time.Duration) {
		for i := 0; i < n; i++ {
			set.Engine.Exec[obs.StmtSelect].Observe(int64(d))
		}
	}

	const base = 64
	steps := []struct {
		name      string
		latency   time.Duration
		n         int
		conflicts int64
		wantLevel int32
		wantBatch int
	}{
		{"priming sample", time.Millisecond, 32, 0, 0, base},
		{"healthy baseline", time.Millisecond, 32, 0, 0, base},
		{"p99 spike shrinks batch", 20 * time.Millisecond, 32, 0, 1, base / 2},
		{"sustained spike shrinks further", 20 * time.Millisecond, 32, 0, 2, base / 4},
		{"recovery regrows", time.Millisecond, 32, 0, 1, base / 2},
		{"full recovery", time.Millisecond, 32, 0, 0, base},
		{"conflict burst backs off", time.Millisecond, 32, pacerConflictBump, 1, base / 2},
		{"idle window decays", 0, 0, 0, 0, base},
	}
	for _, st := range steps {
		observeN(st.n, st.latency)
		if st.conflicts != 0 {
			set.Txn.WriteConflicts.Add(st.conflicts)
		}
		now = now.Add(pacerSampleEvery)
		p.observe()
		if got := p.level.Load(); got != st.wantLevel {
			t.Fatalf("%s: level = %d, want %d", st.name, got, st.wantLevel)
		}
		if got := p.batch(base); got != st.wantBatch {
			t.Fatalf("%s: batch(%d) = %d, want %d", st.name, base, got, st.wantBatch)
		}
	}

	// Between samples observe() is a no-op, whatever the traffic looks like.
	observeN(32, 20*time.Millisecond)
	p.observe()
	if got := p.level.Load(); got != 0 {
		t.Fatalf("rate-limited observe moved level to %d", got)
	}

	// The inter-batch pause grows quadratically with the level.
	var last time.Duration = -1
	for lv := int32(0); lv <= pacerMaxLevel; lv++ {
		p.level.Store(lv)
		if got := p.pause(0); got <= last {
			t.Fatalf("pause at level %d = %v, not above %v", lv, got, last)
		} else {
			last = got
		}
	}
}
