package core

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestBitmapStateMachine(t *testing.T) {
	b := NewBitmap(100, 1)
	if b.Granules() != 100 || b.GranuleSize() != 1 {
		t.Fatalf("geometry: %d granules, size %d", b.Granules(), b.GranuleSize())
	}
	if b.TryClaimGranule(5) != Claimed {
		t.Fatal("first claim should succeed")
	}
	if b.TryClaimGranule(5) != Busy {
		t.Fatal("second claim should be busy")
	}
	b.MarkMigratedGranule(5)
	if b.TryClaimGranule(5) != Done {
		t.Fatal("claim after migrate should be done")
	}
	if !b.IsMigratedGranule(5) || b.IsMigratedGranule(6) {
		t.Fatal("IsMigrated wrong")
	}
	if b.MigratedCount() != 1 {
		t.Fatalf("MigratedCount = %d", b.MigratedCount())
	}
}

func TestBitmapAbortRelease(t *testing.T) {
	b := NewBitmap(10, 1)
	if b.TryClaimGranule(3) != Claimed {
		t.Fatal("claim")
	}
	b.ReleaseAbortGranule(3)
	// After abort, the granule is claimable again — the w3-unblocks scenario
	// of paper Figure 2.
	if b.TryClaimGranule(3) != Claimed {
		t.Fatal("claim after abort should succeed")
	}
	// ReleaseAbort on a migrated granule must not clear it.
	b.MarkMigratedGranule(3)
	b.ReleaseAbortGranule(3)
	if !b.IsMigratedGranule(3) {
		t.Fatal("ReleaseAbort cleared a migrated granule")
	}
}

func TestBitmapInvalidTransitionsPanic(t *testing.T) {
	b := NewBitmap(4, 1)
	mustPanic := func(f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { b.MarkMigratedGranule(0) }) // not claimed
	mustPanic(func() { b.TryClaimGranule(99) })    // out of range
	b.TryClaimGranule(1)
	b.MarkMigratedGranule(1)
	mustPanic(func() { b.MarkMigratedGranule(1) }) // double mark
}

func TestBitmapPageGranularity(t *testing.T) {
	b := NewBitmap(1000, 64)
	if b.Granules() != 16 { // ceil(1000/64)
		t.Fatalf("granules = %d", b.Granules())
	}
	if b.GranuleOf(0) != 0 || b.GranuleOf(63) != 0 || b.GranuleOf(64) != 1 || b.GranuleOf(999) != 15 {
		t.Fatal("GranuleOf mapping wrong")
	}
	lo, hi := b.TupleRange(15)
	if lo != 960 || hi != 1024 {
		t.Fatalf("TupleRange(15) = [%d,%d)", lo, hi)
	}
}

func TestBitmapNextUnmigratedAndComplete(t *testing.T) {
	b := NewBitmap(8, 1)
	for g := int64(0); g < 8; g++ {
		if g == 3 || g == 7 {
			continue
		}
		b.TryClaimGranule(g)
		b.MarkMigratedGranule(g)
	}
	if got := b.NextUnmigrated(0); got != 3 {
		t.Fatalf("NextUnmigrated(0) = %d", got)
	}
	if got := b.NextUnmigrated(4); got != 7 {
		t.Fatalf("NextUnmigrated(4) = %d", got)
	}
	if b.Complete() {
		t.Fatal("not complete yet")
	}
	for _, g := range []int64{3, 7} {
		b.TryClaimGranule(g)
		b.MarkMigratedGranule(g)
	}
	if !b.Complete() || b.NextUnmigrated(0) != -1 {
		t.Fatal("should be complete")
	}
}

func TestBitmapRestoreMigratedIdempotent(t *testing.T) {
	b := NewBitmap(4, 1)
	b.RestoreMigratedGranule(2)
	b.RestoreMigratedGranule(2)
	if b.MigratedCount() != 1 {
		t.Fatalf("MigratedCount = %d", b.MigratedCount())
	}
	if b.TryClaimGranule(2) != Done {
		t.Fatal("restored granule should be done")
	}
	// Restore over an in-progress claim (recovery wins).
	b.TryClaimGranule(0)
	b.RestoreMigratedGranule(0)
	if !b.IsMigratedGranule(0) {
		t.Fatal("restore should overwrite in-progress")
	}
}

// TestBitmapExactlyOnceUnderContention is the central §3 invariant: many
// workers racing to claim granules, each claim must be granted to exactly
// one worker, and every granule ends migrated exactly once.
func TestBitmapExactlyOnceUnderContention(t *testing.T) {
	const n = 5000
	b := NewBitmap(n, 1)
	claims := make([]int32, n)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			order := r.Perm(n)
			for _, g := range order {
				switch b.TryClaimGranule(int64(g)) {
				case Claimed:
					claims[g]++ // safe: only one worker can be here per g
					b.MarkMigratedGranule(int64(g))
				case Busy, Done:
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if !b.Complete() {
		t.Fatalf("only %d/%d migrated", b.MigratedCount(), b.Granules())
	}
	for g, c := range claims {
		if c != 1 {
			t.Fatalf("granule %d claimed %d times", g, c)
		}
	}
}

// TestBitmapExactlyOnceWithAborts mixes aborts into the race: a claimed
// granule is sometimes released (abort), and the invariant becomes "each
// granule is SUCCESSFULLY migrated exactly once".
func TestBitmapExactlyOnceWithAborts(t *testing.T) {
	const n = 2000
	b := NewBitmap(n, 1)
	success := make([]int32, n)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for !b.Complete() {
				g := int64(r.Intn(n))
				if b.TryClaimGranule(g) != Claimed {
					continue
				}
				if r.Intn(3) == 0 {
					b.ReleaseAbortGranule(g) // simulate txn abort
					continue
				}
				success[g]++
				b.MarkMigratedGranule(g)
			}
		}(int64(w + 100))
	}
	wg.Wait()
	for g, c := range success {
		if c != 1 {
			t.Fatalf("granule %d migrated %d times", g, c)
		}
	}
}

func TestBitmapGeometryProperty(t *testing.T) {
	f := func(nSeed uint16, granSeed uint8) bool {
		n := int64(nSeed)%5000 + 1
		gran := int64(granSeed)%128 + 1
		b := NewBitmap(n, gran)
		// Every tuple ordinal maps into a valid granule whose range covers it.
		for _, ord := range []int64{0, n / 2, n - 1} {
			g := b.GranuleOf(ord)
			if g < 0 || g >= b.Granules() {
				return false
			}
			lo, hi := b.TupleRange(g)
			if ord < lo || ord >= hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGranuleKeyRoundTrip(t *testing.T) {
	f := func(g int64) bool {
		if g < 0 {
			g = -g
		}
		return GranuleFromKey(GranuleKey(g)) == g
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitmapTrackerInterface(t *testing.T) {
	var tr Tracker = NewBitmap(10, 1)
	k := GranuleKey(4)
	if tr.TryClaim(k) != Claimed {
		t.Fatal("claim via interface")
	}
	tr.MarkMigrated(k)
	if !tr.IsMigrated(k) || tr.MigratedCount() != 1 {
		t.Fatal("interface state wrong")
	}
	k2 := GranuleKey(5)
	tr.TryClaim(k2)
	tr.ReleaseAbort(k2)
	if tr.TryClaim(k2) != Claimed {
		t.Fatal("release via interface")
	}
	tr.RestoreMigrated(k2)
	if !tr.IsMigrated(k2) {
		t.Fatal("restore via interface")
	}
}

func TestClaimResultString(t *testing.T) {
	if Claimed.String() != "claimed" || Busy.String() != "busy" || Done.String() != "done" || ClaimResult(9).String() != "unknown" {
		t.Error("ClaimResult strings")
	}
}
