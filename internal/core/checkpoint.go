package core

import (
	"context"
	"fmt"
	"time"

	"github.com/bullfrogdb/bullfrog/internal/storage"
	"github.com/bullfrogdb/bullfrog/internal/wal"
)

// Checkpointer periodically writes transaction-consistent checkpoints of a
// segmented WAL directory, bounding recovery replay to the records appended
// since the last checkpoint. A checkpoint captures three things the log's
// deleted prefix would otherwise carry: the catalog install history, a full
// table snapshot (rows with their live TIDs, so post-checkpoint updates and
// deletes still resolve), and the migration trackers' migrated sets.
//
// Consistency comes from the WAL commit fence (wal.Dir.BeginCheckpoint):
// while the fence is up no commit can append or publish, so the snapshot
// transaction, the install history, and the tracker state captured under the
// fence agree exactly with the segments below the rotation cut. Tracker
// marking happens inside Txn.Commit (before the committer releases its fence
// token), which is what makes the tracker capture sound.
type Checkpointer struct {
	ctrl     *Controller
	dir      *wal.Dir
	interval time.Duration

	ctx  context.Context
	stop chan struct{}
	done chan struct{}
}

// NewCheckpointer creates a checkpointer for the controller's database and
// the given log directory. ctx bounds every background checkpoint's fence
// drain (pass the facade's close context); interval is the cadence of the
// background loop started by Start.
func NewCheckpointer(ctx context.Context, ctrl *Controller, dir *wal.Dir, interval time.Duration) *Checkpointer {
	return &Checkpointer{
		ctrl:     ctrl,
		dir:      dir,
		interval: interval,
		ctx:      ctx,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the background loop. One checkpoint runs per interval tick;
// a tick with nothing new in the log (no records since the last cut) still
// checkpoints — the cost is proportional to live data, not log length.
func (cp *Checkpointer) Start() {
	go cp.loop()
}

// Stop halts the background loop and waits for an in-flight checkpoint to
// finish.
//
//lint:ignore ctxflow teardown join: Stop must run to completion so a half-written checkpoint is aborted, not leaked
func (cp *Checkpointer) Stop() {
	close(cp.stop)
	<-cp.done
}

func (cp *Checkpointer) loop() {
	defer close(cp.done)
	t := time.NewTicker(cp.interval)
	defer t.Stop()
	for {
		select {
		case <-cp.stop:
			return
		case <-cp.ctx.Done():
			return
		case <-t.C:
			// Best-effort: a failed checkpoint leaves the previous one (or a
			// full replay) intact; the next tick retries.
			_, _ = cp.CheckpointNow(cp.ctx)
		}
	}
}

// CheckpointNow takes one checkpoint synchronously and returns its metadata.
// Concurrent calls collide on wal.ErrCheckpointActive.
func (cp *Checkpointer) CheckpointNow(ctx context.Context) (wal.CheckpointMeta, error) {
	db := cp.ctrl.db
	firstSeg, release, err := cp.dir.BeginCheckpoint(ctx)
	if err != nil {
		return wal.CheckpointMeta{}, err
	}
	// Under the fence: pin the snapshot and capture the fence-consistent
	// state. Everything here is in-memory work; the streaming happens after
	// release so commits are stalled only for the capture.
	tx := db.Begin()
	meta := wal.CheckpointMeta{FirstSeg: firstSeg, Watermark: tx.Snapshot().Seq}
	installs := db.InstallHistory()
	type trackerSnap struct {
		stmt string
		keys [][]byte
	}
	var trackers []trackerSnap
	for _, rt := range cp.ctrl.Runtimes() {
		ts := trackerSnap{stmt: rt.Stmt.Name}
		rt.Tracker().SnapshotMigrated(func(key []byte) {
			ts.keys = append(ts.keys, append([]byte(nil), key...))
		})
		trackers = append(trackers, ts)
	}
	release()

	fail := func(err error) (wal.CheckpointMeta, error) {
		_ = db.Abort(tx)
		return wal.CheckpointMeta{}, err
	}
	cw, err := cp.dir.NewCheckpoint(meta)
	if err != nil {
		return fail(err)
	}
	failw := func(err error) (wal.CheckpointMeta, error) {
		cw.Abort()
		return fail(err)
	}
	// Install history, metadata included: a recovery bounded by this
	// checkpoint rebuilds the schema version registry from these records
	// alone, so the sidecar must carry everything the live markers did.
	for _, in := range installs {
		if err := cw.Append(wal.Record{Type: wal.RecInstall, Table: in.Name, Key: in.Meta}); err != nil {
			return failw(err)
		}
	}
	// Table snapshot: every row visible to the pinned snapshot, with its live
	// TID so post-checkpoint log records resolve against it on recovery.
	for _, name := range db.Catalog().TableNames() {
		tbl, err := db.Catalog().Table(name)
		if err != nil {
			continue
		}
		err = tbl.Heap.Scan(func(tid storage.TID, head *storage.Version) error {
			row, ok := tx.VisibleRow(head)
			if !ok {
				return nil
			}
			return cw.Append(wal.Record{Type: wal.RecInsert, Table: name, TID: tid, Row: row})
		})
		if err != nil {
			return failw(fmt.Errorf("core: checkpoint snapshot of %q: %w", name, err))
		}
	}
	for _, ts := range trackers {
		for _, key := range ts.keys {
			if err := cw.Append(wal.Record{Type: wal.RecMigrated, Table: ts.stmt, Key: key}); err != nil {
				return failw(err)
			}
		}
	}
	if err := cw.Commit(); err != nil {
		return fail(err)
	}
	if err := cp.dir.CompleteCheckpoint(meta); err != nil {
		return fail(err)
	}
	_ = db.Abort(tx)
	return meta, nil
}
