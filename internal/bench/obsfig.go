package bench

import (
	"fmt"
)

// FigureObs quantifies the tracing overhead: the same TPC-C table-split run
// with the structured tracer off and on. The acceptance bar is tracing
// within a few percent of the disabled run — disabled instrumentation is a
// nil/bool check per site, enabled adds a handful of atomic adds and clock
// reads per statement. The traced run's timeline carries per-phase span
// totals, so its BENCH JSON also demonstrates phase attribution end to end.
func FigureObs(p Profile, frac float64) (*FigureResult, error) {
	off := p.config(SysBullFrog, MigSplit, frac)
	on := p.config(SysBullFrog, MigSplit, frac)
	on.Trace = true
	return runAll("obs",
		fmt.Sprintf("tracing overhead: tracer off vs on, table split, rate=%.0f%%", frac*100),
		[]Config{off, on})
}
