package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"github.com/bullfrogdb/bullfrog/internal/core"
	"github.com/bullfrogdb/bullfrog/internal/engine"
	"github.com/bullfrogdb/bullfrog/internal/tpcc"
)

// Profile bundles the run geometry. The paper's experiments run 200-500
// seconds against 50 warehouses on 8 cores; Quick compresses that to seconds
// against a small scale, preserving the load-to-capacity ratio that drives
// every qualitative effect.
type Profile struct {
	Scale     tpcc.Scale
	Workers   int
	Duration  time.Duration
	MigrateAt time.Duration
	BGDelay   time.Duration
	Seed      int64
}

// Quick is the CI-sized profile (each run a few seconds).
func Quick() Profile {
	return Profile{
		Scale: tpcc.Scale{
			Warehouses: 1, DistrictsPerW: 10, CustomersPerDist: 150,
			Items: 300, InitialOrdersPerD: 60, MaxLinesPerOrder: 8,
		},
		Workers:   4,
		Duration:  4 * time.Second,
		MigrateAt: 1 * time.Second,
		BGDelay:   800 * time.Millisecond,
		Seed:      42,
	}
}

// Medium is large enough that the eager baseline's downtime spans several
// throughput buckets (the shape the paper's figures show) while each figure
// still completes in a couple of minutes.
func Medium() Profile {
	return Profile{
		Scale: tpcc.Scale{
			Warehouses: 1, DistrictsPerW: 10, CustomersPerDist: 1500,
			Items: 500, InitialOrdersPerD: 400, MaxLinesPerOrder: 8,
		},
		Workers:   6,
		Duration:  12 * time.Second,
		MigrateAt: 2 * time.Second,
		BGDelay:   2 * time.Second,
		Seed:      42,
	}
}

// Full is the benchmark-sized profile used by cmd/bullfrog-bench -profile full.
func Full() Profile {
	return Profile{
		Scale: tpcc.Scale{
			Warehouses: 2, DistrictsPerW: 10, CustomersPerDist: 2000,
			Items: 1000, InitialOrdersPerD: 500, MaxLinesPerOrder: 10,
		},
		Workers:   8,
		Duration:  30 * time.Second,
		MigrateAt: 5 * time.Second,
		BGDelay:   5 * time.Second,
		Seed:      42,
	}
}

func (p Profile) config(sys System, kind MigrationKind, frac float64) Config {
	return Config{
		Scale:        p.Scale,
		System:       sys,
		Migration:    kind,
		RateFraction: frac,
		Workers:      p.Workers,
		Duration:     p.Duration,
		MigrateAt:    p.MigrateAt,
		BGDelay:      p.BGDelay,
		Seed:         p.Seed,
	}
}

// FigureResult is a set of comparable runs plus context.
type FigureResult struct {
	Name string
	Note string
	Runs []*Result
}

// runAll executes the configs sequentially (each builds its own database).
// When configs use RateFraction, capacity is calibrated once on a throwaway
// database and the SAME absolute rate is offered to every run — the paper's
// methodology (450/700 TPS held constant across systems).
func runAll(name, note string, cfgs []Config) (*FigureResult, error) {
	fr := &FigureResult{Name: name, Note: note}
	needCal := false
	for _, cfg := range cfgs {
		if cfg.Rate == 0 {
			needCal = true
		}
	}
	var capacity float64
	if needCal {
		var err error
		capacity, err = calibrateOnce(cfgs[0])
		if err != nil {
			return nil, fmt.Errorf("%s calibration: %w", name, err)
		}
	}
	for _, cfg := range cfgs {
		if cfg.Rate == 0 {
			frac := cfg.RateFraction
			if frac == 0 {
				frac = 0.6
			}
			cfg.Rate = capacity * frac
			if cfg.Rate < 10 {
				cfg.Rate = 10
			}
		}
		r, err := Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("%s [%v/%v]: %w", name, cfg.System, cfg.Migration, err)
		}
		r.Calibrated = capacity
		fr.Runs = append(fr.Runs, r)
	}
	return fr, nil
}

// calibrateOnce builds a throwaway database at the config's scale and
// measures closed-loop capacity with its workload knobs.
func calibrateOnce(cfg Config) (float64, error) {
	db := engine.New(engine.Options{})
	if err := tpcc.CreateSchema(db); err != nil {
		return 0, err
	}
	if err := tpcc.Load(db, cfg.Scale, cfg.Seed); err != nil {
		return 0, err
	}
	w := tpcc.NewWorkload(db, core.NewGate(), cfg.Scale)
	w.HotCustomers = cfg.HotCustomers
	w.Sequential = cfg.Sequential
	workers := cfg.Workers
	if workers == 0 {
		workers = 4
	}
	// Closed-loop capacity overstates what the open-loop driver (generator,
	// queue, autovacuum) sustains; derate so "60% of capacity" really is the
	// comfortable regime and "100%" the saturation point, as in the paper.
	return Calibrate(w, workers, 2*time.Second) * 0.92, nil
}

// Figure3 reproduces "Throughput during table-split migration": eager vs
// multi-step vs BullFrog (bitmap) vs BullFrog (on-conflict), plus the
// no-background variants at saturation (the dotted lines of Figure 3b).
func Figure3(p Profile, frac float64) (*FigureResult, error) {
	systems := []System{SysEager, SysMultiStep, SysBullFrog, SysBullFrogOnConflict}
	if frac >= 1.0 {
		systems = append(systems, SysBullFrogNoBG)
	}
	var cfgs []Config
	for _, s := range systems {
		cfgs = append(cfgs, p.config(s, MigSplit, frac))
	}
	return runAll("figure-3", fmt.Sprintf("table split, rate=%.0f%% of capacity", frac*100), cfgs)
}

// Figure4 reproduces the latency CDFs of the same experiment, adding the
// no-migration baseline the paper plots.
func Figure4(p Profile, frac float64) (*FigureResult, error) {
	systems := []System{SysNone, SysEager, SysMultiStep, SysBullFrog, SysBullFrogOnConflict}
	var cfgs []Config
	for _, s := range systems {
		cfgs = append(cfgs, p.config(s, MigSplit, frac))
	}
	return runAll("figure-4", fmt.Sprintf("table split latency CDF, rate=%.0f%%", frac*100), cfgs)
}

// Figure5 reproduces "Throughput during aggregation migration" (hashmap).
func Figure5(p Profile, frac float64) (*FigureResult, error) {
	var cfgs []Config
	for _, s := range []System{SysEager, SysMultiStep, SysBullFrog} {
		cfgs = append(cfgs, p.config(s, MigAggregate, frac))
	}
	return runAll("figure-5", fmt.Sprintf("aggregate migration, rate=%.0f%%", frac*100), cfgs)
}

// Figure6 is the aggregate migration's latency CDF.
func Figure6(p Profile, frac float64) (*FigureResult, error) {
	var cfgs []Config
	for _, s := range []System{SysNone, SysEager, SysMultiStep, SysBullFrog} {
		cfgs = append(cfgs, p.config(s, MigAggregate, frac))
	}
	return runAll("figure-6", fmt.Sprintf("aggregate latency CDF, rate=%.0f%%", frac*100), cfgs)
}

// joinScale widens the item catalog so the order-lines-per-item ratio
// matches the paper's (~3: their 50-warehouse run has ~15M order lines over
// 5M (warehouse, item) pairs). Without this, the denormalized table's fan-out
// per stock update is an order of magnitude larger than theirs and the
// post-migration schema cannot sustain the pre-migration rate — a scale
// artifact, not a property of the algorithms.
func joinScale(s tpcc.Scale) tpcc.Scale {
	avgLines := (5 + s.MaxLinesPerOrder) / 2
	lines := s.DistrictsPerW * s.InitialOrdersPerD * avgLines
	wantItems := lines / 3
	if wantItems > s.Items {
		s.Items = wantItems
	}
	return s
}

// Figure7 reproduces "Throughput during join migration" (n:n hashmap).
func Figure7(p Profile, frac float64) (*FigureResult, error) {
	p.Scale = joinScale(p.Scale)
	rate, err := joinRate(p, frac)
	if err != nil {
		return nil, err
	}
	var cfgs []Config
	for _, s := range []System{SysEager, SysMultiStep, SysBullFrog} {
		cfg := p.config(s, MigJoin, frac)
		cfg.Rate = rate
		cfgs = append(cfgs, cfg)
	}
	return runAll("figure-7", fmt.Sprintf("join migration, rate=%.0f%%", frac*100), cfgs)
}

// Figure8 is the join migration's latency CDF.
func Figure8(p Profile, frac float64) (*FigureResult, error) {
	p.Scale = joinScale(p.Scale)
	rate, err := joinRate(p, frac)
	if err != nil {
		return nil, err
	}
	var cfgs []Config
	for _, s := range []System{SysNone, SysEager, SysMultiStep, SysBullFrog} {
		cfg := p.config(s, MigJoin, frac)
		cfg.Rate = rate
		cfgs = append(cfgs, cfg)
	}
	return runAll("figure-8", fmt.Sprintf("join latency CDF, rate=%.0f%%", frac*100), cfgs)
}

// joinRate calibrates capacity on BOTH schema versions and offers frac of
// the smaller. The denormalized schema's write path costs several row
// updates per order line, so its capacity is below the original's; the
// paper's fixed 450/700 TPS rates sat below both capacities on its testbed,
// and this reproduces that relationship.
func joinRate(p Profile, frac float64) (float64, error) {
	base := p.config(SysBullFrog, MigJoin, frac)
	oldCap, err := calibrateOnce(base)
	if err != nil {
		return 0, err
	}
	newCap, err := calibrateJoinVariant(base)
	if err != nil {
		return 0, err
	}
	capacity := oldCap
	if newCap < capacity {
		capacity = newCap
	}
	rate := capacity * frac
	if rate < 10 {
		rate = 10
	}
	return rate, nil
}

// calibrateJoinVariant measures capacity on a pre-migrated (eager) database
// running the post-join transaction implementations.
func calibrateJoinVariant(cfg Config) (float64, error) {
	db := engine.New(engine.Options{})
	if err := tpcc.CreateSchema(db); err != nil {
		return 0, err
	}
	if err := tpcc.Load(db, cfg.Scale, cfg.Seed); err != nil {
		return 0, err
	}
	gate := core.NewGate()
	if _, err := core.MigrateEager(db, tpcc.JoinMigration(), gate); err != nil {
		return 0, err
	}
	w := tpcc.NewWorkload(db, gate, cfg.Scale)
	w.SetVariant(tpcc.SchemaJoin)
	workers := cfg.Workers
	if workers == 0 {
		workers = 4
	}
	return Calibrate(w, workers, 2*time.Second) * 0.92, nil
}

// Figure9 reproduces the §4.4.1 tracking-overhead ablation: BullFrog with
// its bitmap vs a variant with tracking disabled, under a NewOrder-only
// workload that touches each customer exactly once.
func Figure9(p Profile, frac float64) (*FigureResult, error) {
	newOrderOnly := func(r *rand.Rand) tpcc.TxnType { return tpcc.TxnNewOrder }
	// The premise — each tuple accessed exactly once — requires the run not
	// to wrap the customer set; cap the offered rate accordingly.
	maxRate := 0.85 * float64(p.Scale.Customers()) / p.Duration.Seconds()
	var cfgs []Config
	for _, s := range []System{SysBullFrogNoBG, SysBullFrogNoTracking} {
		cfg := p.config(s, MigSplit, frac)
		cfg.Sequential = true
		cfg.Mix = newOrderOnly
		cfg.Rate = maxRate
		cfgs = append(cfgs, cfg)
	}
	return runAll("figure-9", "data structure maintenance cost (bitmap vs none)", cfgs)
}

// Figure10 reproduces the §4.4.2 skew experiment: hot sets of 100%, 1%, and
// 0.2% of the customers (the paper's 1.5M / 15k / 3k).
func Figure10(p Profile, frac float64) (*FigureResult, error) {
	total := p.Scale.Customers()
	var cfgs []Config
	for _, hot := range []int{total, total / 100, total / 500} {
		if hot < 1 {
			hot = 1
		}
		cfg := p.config(SysBullFrog, MigSplit, frac)
		cfg.HotCustomers = hot
		cfgs = append(cfgs, cfg)
	}
	return runAll("figure-10", "skewed access: hot set 100% / 1% / 0.2%", cfgs)
}

// Figure11 reproduces §4.4.3 migration granularity: tuple-level vs pages of
// 64/128/256 tuples, crossed with hot-set size.
func Figure11(p Profile, frac float64) (*FigureResult, error) {
	total := p.Scale.Customers()
	var cfgs []Config
	for _, hot := range []int{total, total / 100} {
		for _, gran := range []int64{1, 64, 128, 256} {
			cfg := p.config(SysBullFrog, MigSplit, frac)
			cfg.Granularity = gran
			cfg.HotCustomers = hot
			cfgs = append(cfgs, cfg)
		}
	}
	return runAll("figure-11", "migration granularity x access skew", cfgs)
}

// Figure12 reproduces §4.5: FOREIGN KEY constraints on the split migration —
// none, +district, +district&orders — under the full mix and under the
// customer-only partial workload the paper switches to.
func Figure12(p Profile, frac float64, partial bool) (*FigureResult, error) {
	mixes := map[bool]func(*rand.Rand) tpcc.TxnType{
		true: func(r *rand.Rand) tpcc.TxnType {
			// Partial workload: only transactions that access customer.
			switch r.Intn(96) % 96 { // renormalized mix without StockLevel
			case 0, 1, 2, 3:
				return tpcc.TxnDelivery
			case 4, 5, 6, 7:
				return tpcc.TxnOrderStatus
			default:
				if r.Intn(88) < 45 {
					return tpcc.TxnNewOrder
				}
				return tpcc.TxnPayment
			}
		},
		false: nil,
	}
	consSets := []tpcc.SplitConstraints{
		{},
		{FKDistrict: true},
		{FKDistrict: true, FKOrders: true},
	}
	var cfgs []Config
	for _, cons := range consSets {
		cfg := p.config(SysBullFrog, MigSplit, frac)
		cfg.Constraints = cons
		cfg.Mix = mixes[partial]
		cfgs = append(cfgs, cfg)
	}
	name := "figure-12a"
	note := "FK constraints, full workload"
	if partial {
		name, note = "figure-12b", "FK constraints, customer-only workload"
	}
	return runAll(name, note, cfgs)
}

// FigureCatalog is the versioned-catalog before/after: the same BullFrog
// table-split run with the legacy drain-at-start flip (gate drains every
// in-flight transaction before the logical switch) versus the versioned
// install (a pointer swap at the commit barrier). The comparison metric is
// mig_window_p99_ms — the p99 latency in the two seconds after migration
// start, where the drain's stall shows up.
func FigureCatalog(p Profile, frac float64) (*FigureResult, error) {
	drained := p.config(SysBullFrog, MigSplit, frac)
	drained.DrainAtStart = true
	versioned := p.config(SysBullFrog, MigSplit, frac)
	return runAll("catalog",
		fmt.Sprintf("migration-start stall: drained flip vs versioned install, rate=%.0f%%", frac*100),
		[]Config{drained, versioned})
}

// --- formatters ---

// labelFor renders the distinguishing parameters of a run within a figure.
func labelFor(r *Result) string {
	parts := []string{r.Config.System.String()}
	if r.Config.Granularity > 1 {
		parts = append(parts, fmt.Sprintf("page=%d", r.Config.Granularity))
	}
	if r.Config.HotCustomers > 0 {
		parts = append(parts, fmt.Sprintf("hot=%d", r.Config.HotCustomers))
	}
	if r.Config.BGWorkers > 0 {
		// Worker-scaling runs compare migration kinds within one figure, so
		// the kind is distinguishing there (elsewhere it's figure-constant).
		parts = append(parts, r.Config.Migration.String(), fmt.Sprintf("bgw=%d", r.Config.BGWorkers))
	}
	if r.Config.DrainAtStart {
		parts = append(parts, "drain=start")
	}
	if r.Config.Trace {
		parts = append(parts, "trace=on")
	}
	if r.Config.Constraints.FKOrders {
		parts = append(parts, "fk=district+orders")
	} else if r.Config.Constraints.FKDistrict {
		parts = append(parts, "fk=district")
	}
	return strings.Join(parts, " ")
}

// FormatThroughput renders the per-interval TPS series of each run, with
// the migration start/end and background-start markers the paper annotates.
func FormatThroughput(fr *FigureResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", fr.Name, fr.Note)
	maxBuckets := 0
	for _, r := range fr.Runs {
		if len(r.Metrics.Series) > maxBuckets {
			maxBuckets = len(r.Metrics.Series)
		}
	}
	fmt.Fprintf(&sb, "%-10s", "t(s)")
	for _, r := range fr.Runs {
		fmt.Fprintf(&sb, " %28s", labelFor(r))
	}
	sb.WriteString("\n")
	interval := fr.Runs[0].Metrics.Interval
	for b := 0; b < maxBuckets; b++ {
		fmt.Fprintf(&sb, "%-10.1f", (time.Duration(b) * interval).Seconds())
		for _, r := range fr.Runs {
			v := 0.0
			if b < len(r.Metrics.Series) {
				v = r.Metrics.Series[b]
			}
			fmt.Fprintf(&sb, " %28.0f", v)
		}
		sb.WriteString("\n")
	}
	for _, r := range fr.Runs {
		fmt.Fprintf(&sb, "markers %-28s migration-start=%.1fs", labelFor(r), r.MigStart.Seconds())
		if r.BGStart > 0 {
			fmt.Fprintf(&sb, " background-start=%.1fs", r.BGStart.Seconds())
		}
		if r.MigEnd > 0 {
			fmt.Fprintf(&sb, " migration-end=%.1fs", r.MigEnd.Seconds())
		} else if r.Config.System != SysNone {
			fmt.Fprintf(&sb, " migration-end=unfinished")
		}
		if r.Calibrated > 0 {
			fmt.Fprintf(&sb, " offered=%.0ftps (%.0f%% of %.0f)", r.Calibrated*r.Config.RateFraction, r.Config.RateFraction*100, r.Calibrated)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// cdfFractions are the CDF sample points reported (log-ish spacing like the
// paper's log-x CDF plots).
var cdfFractions = []float64{0.01, 0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999}

// FormatCDF renders the latency CDFs (NewOrder, as in the paper).
func FormatCDF(fr *FigureResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s (NewOrder latency CDF) ==\n", fr.Name, fr.Note)
	fmt.Fprintf(&sb, "%-10s", "fraction")
	for _, r := range fr.Runs {
		fmt.Fprintf(&sb, " %28s", labelFor(r))
	}
	sb.WriteString("\n")
	for _, f := range cdfFractions {
		fmt.Fprintf(&sb, "%-10.3f", f)
		for _, r := range fr.Runs {
			fmt.Fprintf(&sb, " %28s", r.Metrics.Percentile(f*100).Round(10*time.Microsecond))
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// FormatSummary renders one digest line per run.
func FormatSummary(fr *FigureResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", fr.Name, fr.Note)
	for _, r := range fr.Runs {
		fmt.Fprintf(&sb, "  %s %s\n", labelFor(r), r.Summary())
	}
	return sb.String()
}
