package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bullfrogdb/bullfrog"
	"github.com/bullfrogdb/bullfrog/internal/obs"
	"github.com/bullfrogdb/bullfrog/internal/wal"
)

// WalGroupResult is the walgroup figure: group-commit throughput scaling
// (commit TPS and fsync amortization vs committer count, sync on and off)
// and recovery-time scaling (replay time vs log length, with and without a
// checkpoint bounding the replay).
type WalGroupResult struct {
	Name     string           `json:"name"`
	Note     string           `json:"note"`
	Commit   []WalCommitRun   `json:"commit"`
	Recovery []WalRecoveryRun `json:"recovery"`
}

// WalCommitRun is one cell of the commit-throughput matrix.
type WalCommitRun struct {
	Committers  int     `json:"committers"`
	Sync        bool    `json:"sync"`
	DurationSec float64 `json:"duration_sec"`
	Commits     int64   `json:"commits"`
	TPS         float64 `json:"tps"`
	// Syncs is the number of device fsyncs issued; with group commit it
	// should be far below Commits once committers > 1.
	Syncs int64 `json:"syncs"`
	// CommitsPerSync is the amortization factor (Commits/Syncs; 0 when
	// sync is off).
	CommitsPerSync float64 `json:"commits_per_sync,omitempty"`
	MeanBatch      float64 `json:"mean_batch"`
}

// WalRecoveryRun is one cell of the recovery matrix: a log built from Ops
// committed update transactions over a fixed set of live rows (so log length
// grows while live data does not), recovered into a fresh database.
type WalRecoveryRun struct {
	// Ops is the total committed transactions in the log's history.
	Ops          int  `json:"ops"`
	LiveRows     int  `json:"live_rows"`
	Checkpointed bool `json:"checkpointed"`
	// OpsSinceCheckpoint is how many transactions post-date the checkpoint
	// cut (equals Ops when not checkpointed): checkpointed recovery cost
	// tracks this plus LiveRows, not Ops.
	OpsSinceCheckpoint int     `json:"ops_since_checkpoint"`
	LogBytes           int64   `json:"log_bytes"`
	Segments           int     `json:"segments"`
	RecoverySec        float64 `json:"recovery_sec"`
	// ReplayedRecords counts data records applied from the segments;
	// SnapshotRows counts rows seeded from the checkpoint snapshot.
	ReplayedRecords int64 `json:"replayed_records"`
	SnapshotRows    int64 `json:"snapshot_rows"`
}

// FigureWalGroup runs both matrices. The profile scales per-cell duration
// and log sizes; frac is unused (no offered-load dimension here).
func FigureWalGroup(p Profile) (*WalGroupResult, error) {
	res := &WalGroupResult{
		Name: "walgroup",
		Note: "group-commit WAL: commit TPS vs committers (sync on/off) and recovery time vs log length (checkpoint on/off)",
	}
	cell := p.Duration / 16
	if cell < 200*time.Millisecond {
		cell = 200 * time.Millisecond
	}
	for _, nsync := range []bool{true, false} {
		for _, committers := range []int{1, 4, 16, 64} {
			run, err := walCommitCell(committers, nsync, cell)
			if err != nil {
				return nil, err
			}
			res.Commit = append(res.Commit, run)
		}
	}
	base := p.Scale.CustomersPerDist * 4 // quick: 600 ops
	if base < 400 {
		base = 400
	}
	for _, ops := range []int{base, base * 2, base * 4} {
		for _, ckpt := range []bool{false, true} {
			run, err := walRecoveryCell(ops, ckpt, base/4)
			if err != nil {
				return nil, err
			}
			res.Recovery = append(res.Recovery, run)
		}
	}
	return res, nil
}

// walCommitCell hammers one segmented log from n concurrent committers for
// the given duration, each commit a 2-record AppendBatch (redo + commit).
func walCommitCell(n int, doSync bool, d time.Duration) (WalCommitRun, error) {
	dir, err := os.MkdirTemp("", "walgroup")
	if err != nil {
		return WalCommitRun{}, err
	}
	defer os.RemoveAll(dir)
	wdir, err := wal.OpenDir(dir, wal.DirOptions{NoSync: !doSync})
	if err != nil {
		return WalCommitRun{}, err
	}
	met := &obs.WALMetrics{}
	wdir.SetObs(met)

	var commits atomic.Int64
	var failure atomic.Pointer[error]
	stop := make(chan struct{})
	var wg sync.WaitGroup
	row := []byte("walgroup-payload-0123456789abcdef")
	start := time.Now()
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var xid uint64 = uint64(g)<<32 + 1
			for {
				select {
				case <-stop:
					return
				default:
				}
				err := wdir.AppendBatch([]wal.Record{
					{Type: wal.RecMigrated, XID: xid, Table: "bench", Key: row},
					{Type: wal.RecCommit, XID: xid},
				})
				if err != nil {
					failure.Store(&err)
					return
				}
				xid++
				commits.Add(1)
			}
		}(g)
	}
	time.Sleep(d)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	if err := wdir.Close(); err != nil {
		return WalCommitRun{}, err
	}
	if p := failure.Load(); p != nil {
		return WalCommitRun{}, *p
	}
	run := WalCommitRun{
		Committers:  n,
		Sync:        doSync,
		DurationSec: elapsed.Seconds(),
		Commits:     commits.Load(),
		Syncs:       met.Syncs.Load(),
	}
	run.TPS = float64(run.Commits) / elapsed.Seconds()
	if run.Syncs > 0 {
		run.CommitsPerSync = float64(run.Commits) / float64(run.Syncs)
	}
	if snap := met.GroupBatchSize.Snapshot(); snap.Count > 0 {
		run.MeanBatch = float64(snap.Sum) / float64(snap.Count)
	}
	return run, nil
}

// walRecoveryCell builds a log of `ops` committed transactions — a fixed
// set of live rows updated over and over, so the log's history outgrows the
// data — optionally checkpointing so only `tail` transactions post-date the
// checkpoint, then times recovery into a fresh database.
func walRecoveryCell(ops int, checkpoint bool, tail int) (WalRecoveryRun, error) {
	const live = 100
	dir, err := os.MkdirTemp("", "walgroup")
	if err != nil {
		return WalRecoveryRun{}, err
	}
	defer os.RemoveAll(dir)
	wdir, err := wal.OpenDir(dir, wal.DirOptions{SegmentSize: 1 << 18, NoSync: true})
	if err != nil {
		return WalRecoveryRun{}, err
	}
	const ddl = `CREATE TABLE kv (id INT PRIMARY KEY, pad CHAR(32))`
	db := bullfrog.Open(bullfrog.Options{WAL: wdir})
	if _, err := db.Exec(ddl); err != nil {
		return WalRecoveryRun{}, err
	}
	for i := 1; i <= live; i++ {
		if _, err := db.Exec(fmt.Sprintf(`INSERT INTO kv VALUES (%d, 'padding-padding-padding-padding')`, i)); err != nil {
			return WalRecoveryRun{}, err
		}
	}
	ckptAt := ops - tail
	sinceCkpt := ops
	for i := 1; i <= ops; i++ {
		if _, err := db.Exec(fmt.Sprintf(`UPDATE kv SET pad = 'rev-%d' WHERE id = %d`, i, i%live+1)); err != nil {
			return WalRecoveryRun{}, err
		}
		if checkpoint && i == ckptAt {
			if err := db.Checkpoint(context.Background()); err != nil {
				return WalRecoveryRun{}, err
			}
			sinceCkpt = tail
		}
	}
	if err := wdir.Close(); err != nil {
		return WalRecoveryRun{}, err
	}
	var logBytes int64
	ents, err := os.ReadDir(dir)
	if err != nil {
		return WalRecoveryRun{}, err
	}
	for _, e := range ents {
		if info, err := e.Info(); err == nil {
			logBytes += info.Size()
		}
	}
	src, err := wal.OpenRecovery(dir)
	if err != nil {
		return WalRecoveryRun{}, err
	}
	db2 := bullfrog.Open(bullfrog.Options{})
	if _, err := db2.Exec(ddl); err != nil {
		return WalRecoveryRun{}, err
	}
	start := time.Now()
	stats, err := db2.Controller().RecoverFrom(src)
	if err != nil {
		return WalRecoveryRun{}, err
	}
	elapsed := time.Since(start)
	return WalRecoveryRun{
		Ops:                ops,
		LiveRows:           live,
		Checkpointed:       checkpoint,
		OpsSinceCheckpoint: sinceCkpt,
		LogBytes:           logBytes,
		Segments:           len(src.Segments),
		RecoverySec:        elapsed.Seconds(),
		ReplayedRecords:    int64(stats.Inserts + stats.Updates + stats.Deletes),
		SnapshotRows:       int64(stats.SnapshotRows),
	}, nil
}

// FormatWalGroup renders the result as aligned text tables.
func FormatWalGroup(res *WalGroupResult) string {
	var b []byte
	app := func(s string, args ...any) { b = append(b, fmt.Sprintf(s, args...)...) }
	app("== %s: %s ==\n", res.Name, res.Note)
	app("%-11s %-5s %10s %10s %14s %10s\n", "committers", "sync", "tps", "syncs", "commits/sync", "meanbatch")
	for _, r := range res.Commit {
		app("%-11d %-5v %10.0f %10d %14.1f %10.1f\n", r.Committers, r.Sync, r.TPS, r.Syncs, r.CommitsPerSync, r.MeanBatch)
	}
	app("%-7s %-6s %12s %10s %9s %9s %13s\n", "ops", "ckpt", "since_ckpt", "log_bytes", "segments", "replayed", "recovery_ms")
	for _, r := range res.Recovery {
		app("%-7d %-6v %12d %10d %9d %9d %13.2f\n", r.Ops, r.Checkpointed, r.OpsSinceCheckpoint, r.LogBytes, r.Segments, r.ReplayedRecords, r.RecoverySec*1000)
	}
	return string(b)
}

// WriteWalGroupJSON writes dir/BENCH_walgroup.json.
func WriteWalGroupJSON(res *WalGroupResult, dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_walgroup.json")
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return "", err
	}
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}
