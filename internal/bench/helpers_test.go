package bench

import (
	"testing"

	"github.com/bullfrogdb/bullfrog/internal/core"
	"github.com/bullfrogdb/bullfrog/internal/engine"
	"github.com/bullfrogdb/bullfrog/internal/tpcc"
)

func buildWorkload(t *testing.T, p Profile) (*engine.DB, *tpcc.Workload) {
	t.Helper()
	db := engine.New(engine.Options{})
	if err := tpcc.CreateSchema(db); err != nil {
		t.Fatal(err)
	}
	if err := tpcc.Load(db, p.Scale, p.Seed); err != nil {
		t.Fatal(err)
	}
	return db, tpcc.NewWorkload(db, core.NewGate(), p.Scale)
}
