package bench

import "fmt"

// FigureBackfill measures backfill-pool worker-count dependence: the same
// table-split migration (bitmap tracking) and aggregation migration (hash
// tracking) under BullFrog at 1 and 4 background workers, same offered load.
// The interesting outputs are mig_end_sec (drain time, expected to shrink
// with workers on multi-core machines) and p99_ms (foreground latency, which
// the adaptive pacer must keep within bounds as workers scale).
func FigureBackfill(p Profile, frac float64) (*FigureResult, error) {
	var cfgs []Config
	for _, kind := range []MigrationKind{MigSplit, MigAggregate} {
		for _, w := range []int{1, 4} {
			cfg := p.config(SysBullFrog, kind, frac)
			cfg.BGWorkers = w
			cfgs = append(cfgs, cfg)
		}
	}
	return runAll("backfill",
		fmt.Sprintf("backfill pool scaling (bitmap + hash, 1 vs 4 workers), rate=%.0f%% of capacity", frac*100),
		cfgs)
}
