package bench

import (
	"testing"
	"time"

	"github.com/bullfrogdb/bullfrog/internal/tpcc"
)

func TestMetricsEdgeCases(t *testing.T) {
	m := &Metrics{}
	if m.Percentile(99) != 0 {
		t.Error("empty percentile should be 0")
	}
	if m.MeanTPS() != 0 {
		t.Error("empty mean should be 0")
	}
	m = &Metrics{
		Interval:  time.Second,
		Series:    []float64{100, 200, 300},
		Latencies: []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
	}
	if m.MeanTPS() != 200 {
		t.Errorf("mean = %f", m.MeanTPS())
	}
	if m.Percentile(0) != 1 || m.Percentile(100) != 10 {
		t.Errorf("extreme percentiles: %v %v", m.Percentile(0), m.Percentile(100))
	}
	if p50 := m.Percentile(50); p50 < 5 || p50 > 6 {
		t.Errorf("p50 = %v", p50)
	}
}

func TestLabelFor(t *testing.T) {
	r := &Result{Config: Config{System: SysBullFrog, Granularity: 64, HotCustomers: 150,
		Constraints: tpcc.SplitConstraints{FKDistrict: true}}}
	got := labelFor(r)
	for _, want := range []string{"bullfrog", "page=64", "hot=150", "fk=district"} {
		if !contains(got, want) {
			t.Errorf("label %q missing %q", got, want)
		}
	}
	r.Config.Constraints.FKOrders = true
	if !contains(labelFor(r), "fk=district+orders") {
		t.Errorf("label %q", labelFor(r))
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
