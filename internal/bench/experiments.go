package bench

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/bullfrogdb/bullfrog"
	"github.com/bullfrogdb/bullfrog/internal/core"
	"github.com/bullfrogdb/bullfrog/internal/obs"
	"github.com/bullfrogdb/bullfrog/internal/tpcc"
)

// System identifies a migration approach under test (the lines of the
// paper's figures).
type System int

// The systems compared in §4.
const (
	SysNone System = iota // TPC-C without migration (latency baseline)
	SysEager
	SysMultiStep
	SysBullFrog           // tracker mode (bitmap or hashmap per migration)
	SysBullFrogOnConflict // §3.7 insert-time conflict detection
	SysBullFrogNoBG       // lazy only, background threads disabled
	SysBullFrogNoTracking // §4.4.1 ablation (Figure 9's "no bitmap")
)

func (s System) String() string {
	switch s {
	case SysNone:
		return "tpcc-no-migration"
	case SysEager:
		return "eager"
	case SysMultiStep:
		return "multistep"
	case SysBullFrog:
		return "bullfrog"
	case SysBullFrogOnConflict:
		return "bullfrog-on-conflict"
	case SysBullFrogNoBG:
		return "bullfrog-no-background"
	case SysBullFrogNoTracking:
		return "bullfrog-no-tracking"
	default:
		return "?"
	}
}

// MigrationKind selects which of the paper's three migrations runs.
type MigrationKind int

// The three evaluated migrations.
const (
	MigSplit     MigrationKind = iota // §4.1 customer table split (1:n, bitmap)
	MigAggregate                      // §4.2 order_line aggregation (n:1, hashmap)
	MigJoin                           // §4.3 order_line ⋈ stock (n:n, hashmap)
)

func (m MigrationKind) String() string {
	switch m {
	case MigSplit:
		return "table-split"
	case MigAggregate:
		return "aggregate"
	case MigJoin:
		return "join"
	default:
		return "?"
	}
}

func (m MigrationKind) migration(cons tpcc.SplitConstraints, granularity int64) *core.Migration {
	var mig *core.Migration
	switch m {
	case MigSplit:
		mig = tpcc.SplitMigration(cons)
	case MigAggregate:
		mig = tpcc.AggregateMigration()
	case MigJoin:
		mig = tpcc.JoinMigration()
	}
	if granularity > 1 {
		for _, s := range mig.Statements {
			s.Granularity = granularity
		}
	}
	return mig
}

func (m MigrationKind) variant() tpcc.SchemaVariant {
	switch m {
	case MigSplit:
		return tpcc.SchemaSplit
	case MigAggregate:
		return tpcc.SchemaAggregate
	default:
		return tpcc.SchemaJoin
	}
}

// Config describes one experiment run.
type Config struct {
	Scale     tpcc.Scale
	System    System
	Migration MigrationKind
	// Rate is the absolute offered load (txns/s); if zero, RateFraction of
	// a calibration run is used.
	Rate         float64
	RateFraction float64
	Workers      int
	Duration     time.Duration
	MigrateAt    time.Duration
	BGDelay      time.Duration
	// BGWorkers sizes the background backfill pool (0 = runtime.NumCPU()).
	BGWorkers    int
	Granularity  int64
	HotCustomers int
	Sequential   bool // Figure 9 access pattern
	// DrainAtStart reproduces the legacy migration start for BullFrog modes:
	// the gate drains every in-flight transaction before the flip (the
	// pre-versioned-catalog behavior). Off by default — the flip is a
	// versioned-catalog install at a commit barrier, with no drain.
	DrainAtStart bool
	// Trace enables the structured tracer for the run (the -fig obs overhead
	// experiment and phase-attributed timelines).
	Trace       bool
	Constraints tpcc.SplitConstraints
	Mix         func(r *rand.Rand) tpcc.TxnType
	Seed        int64
}

// Result is an experiment's outcome, with the timeline markers the paper's
// figures annotate.
type Result struct {
	Config     Config
	Metrics    *Metrics
	Calibrated float64       // measured capacity (0 when Rate was absolute)
	MigStart   time.Duration // relative to run start
	// MigFlip is how long the logical switch itself took (for BullFrog
	// modes: Controller.Start, including the gate drain when DrainAtStart) —
	// the client-visible stall window at migration start.
	MigFlip      time.Duration
	MigEnd       time.Duration // zero if not finished in the window
	BGStart      time.Duration // zero if none
	RowsMigrated int64
	SkipWaits    int64
	// Timeline holds per-second samples of the engine's internal metrics
	// over the run (see TimelinePoint).
	Timeline []TimelinePoint
	// Obs is the final internal-metrics snapshot at run end.
	Obs obs.Snapshot
	Err error
}

// Run executes one experiment: fresh database, load, steady workload,
// migration at MigrateAt, measurement until Duration.
func Run(cfg Config) (*Result, error) {
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	// The run goes through the public facade so it exercises — and samples —
	// the same observability surface an embedding application sees.
	mode := core.DetectEarly
	if cfg.System == SysBullFrogOnConflict {
		mode = core.DetectOnInsert
	}
	fdb := bullfrog.Open(bullfrog.Options{ConflictMode: mode, Trace: cfg.Trace})
	defer fdb.Close()
	db := fdb.Engine()
	if err := tpcc.CreateSchema(db); err != nil {
		return nil, err
	}
	if err := tpcc.Load(db, cfg.Scale, cfg.Seed); err != nil {
		return nil, err
	}
	gate := fdb.Gate()
	w := tpcc.NewWorkload(db, gate, cfg.Scale)
	w.HotCustomers = cfg.HotCustomers
	w.Sequential = cfg.Sequential

	rate := cfg.Rate
	res := &Result{Config: cfg}
	if rate == 0 {
		res.Calibrated = Calibrate(w, cfg.Workers, 800*time.Millisecond)
		frac := cfg.RateFraction
		if frac == 0 {
			frac = 0.6
		}
		rate = res.Calibrated * frac
		if rate < 10 {
			rate = 10
		}
	}

	d := &Driver{W: w, Rate: rate, Workers: cfg.Workers, Seed: cfg.Seed, Mix: cfg.Mix}
	d.Start(cfg.Duration)
	start := time.Now()
	smp := newSampler(fdb, start, time.Second)
	defer smp.Stop()

	// Autovacuum: long runs accumulate version chains and transaction state;
	// prune them in the background the way PostgreSQL would.
	vacStop := make(chan struct{})
	defer close(vacStop)
	go func() {
		ticker := time.NewTicker(2 * time.Second)
		defer ticker.Stop()
		for {
			select {
			case <-vacStop:
				return
			case <-ticker.C:
				db.Vacuum()
			}
		}
	}()

	// Fire the migration at MigrateAt.
	time.Sleep(cfg.MigrateAt)
	res.MigStart = time.Since(start)
	var ctrl *core.Controller
	var bg *core.Background
	var ms *core.MultiStep
	mig := cfg.Migration.migration(cfg.Constraints, cfg.Granularity)
	switch cfg.System {
	case SysNone:
		// No migration: measure the baseline.
	case SysEager:
		_, err := core.MigrateEager(db, mig, gate, func() {
			w.SetVariant(cfg.Migration.variant())
		})
		if err != nil {
			res.Err = err
		}
		res.MigEnd = time.Since(start)
	case SysMultiStep:
		var err error
		ms, err = core.StartMultiStep(nil, db, mig)
		if err != nil {
			return nil, err
		}
		w.SetMultiStep(ms)
		// Switch over as soon as the copier catches up.
		go func() {
			for !ms.Complete() {
				time.Sleep(5 * time.Millisecond)
			}
			gate.Exclusive(func() error {
				if err := ms.Switch(); err != nil {
					res.Err = err
					return nil
				}
				w.SetMultiStep(nil)
				w.SetController(nil)
				w.SetVariant(cfg.Migration.variant())
				return nil
			})
			res.MigEnd = time.Since(start)
		}()
	default: // BullFrog modes
		ctrl = fdb.Controller()
		if cfg.System == SysBullFrogNoTracking {
			ctrl.SetTrackingDisabled(true)
		}
		startMig := func() error {
			if err := ctrl.Start(mig); err != nil {
				return err
			}
			w.SetController(ctrl)
			w.SetVariant(cfg.Migration.variant())
			return nil
		}
		var err error
		flipStart := time.Now()
		if cfg.DrainAtStart {
			// Legacy behavior: drain all in-flight transactions first — the
			// stall the versioned catalog removed. Kept for before/after
			// comparison (FigureCatalog).
			err = gate.Exclusive(startMig)
		} else {
			// The flip publishes via the commit barrier; in-flight
			// transactions keep their pinned catalog version. The workload
			// flips its variant right after, so a handful of old-variant
			// transactions may hit retired tables — those are retryable
			// rejections, not stalls.
			err = startMig()
		}
		res.MigFlip = time.Since(flipStart)
		if err != nil {
			return nil, err
		}
		if cfg.System != SysBullFrogNoBG && cfg.System != SysBullFrogNoTracking {
			bg = core.NewBackground(ctrl, cfg.BGDelay)
			bg.Interval = time.Millisecond
			bg.Workers = cfg.BGWorkers
			bg.Start()
			res.BGStart = res.MigStart + cfg.BGDelay
		}
	}

	m := d.Wait()
	res.Metrics = m
	res.Timeline = smp.Stop()
	res.Obs = fdb.Metrics()
	if bg != nil {
		bg.Stop()
		if err := bg.Err(); err != nil && res.Err == nil {
			res.Err = err
		}
	}
	if ms != nil {
		ms.Stop()
	}
	if ctrl != nil {
		if at := ctrl.CompletedAt(); !at.IsZero() {
			res.MigEnd = at.Sub(start)
		}
		for _, rt := range ctrl.Runtimes() {
			s := rt.Stats()
			res.RowsMigrated += s.RowsMigrated
			res.SkipWaits += s.SkipWaits
		}
	}
	if ms != nil && res.MigEnd == 0 {
		if at := ms.CompletedAt(); !at.IsZero() {
			res.MigEnd = at.Sub(start)
		}
	}
	return res, nil
}

func migInfo(r *Result) string {
	if r.RowsMigrated == 0 {
		return ""
	}
	return fmt.Sprintf(" rowsMigrated=%d skipWaits=%d", r.RowsMigrated, r.SkipWaits)
}

// Summary renders a one-line digest.
func (r *Result) Summary() string {
	end := "unfinished"
	if r.MigEnd > 0 {
		end = fmt.Sprintf("%.1fs", r.MigEnd.Seconds())
	}
	return fmt.Sprintf("%-24s mean=%6.0f tps p50=%8s p99=%8s migEnd=%s completed=%d retries=%d dropped=%d",
		r.Config.System, r.Metrics.MeanTPS(),
		r.Metrics.Percentile(50).Round(time.Microsecond*100),
		r.Metrics.Percentile(99).Round(time.Microsecond*100),
		end, r.Metrics.Completed, r.Metrics.Retries, r.Metrics.Dropped) + migInfo(r)
}
