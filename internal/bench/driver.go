// Package bench is the evaluation harness: an OLTP-Bench-style open-loop
// workload driver with rate control and queueing (so queueing delay is
// visible exactly as in the paper's Figures 3b/4b), per-interval throughput
// series, latency CDFs, and one experiment definition per figure of the
// paper's §4.
package bench

import (
	"errors"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bullfrogdb/bullfrog/internal/tpcc"
)

// Driver issues TPC-C transactions open-loop: a generator enqueues requests
// at a fixed rate regardless of completion, workers drain the queue, and
// latency is measured from enqueue to completion (so a stalled system
// accumulates queueing delay, the paper's key downtime signal).
type Driver struct {
	W        *tpcc.Workload
	Rate     float64       // offered load, transactions/second
	Workers  int           // concurrent executors
	Interval time.Duration // throughput bucket width
	Seed     int64
	// Mix picks the next transaction type (nil = the standard TPC-C mix).
	Mix func(r *rand.Rand) tpcc.TxnType
	// LatencyFor selects which transaction type's latencies are recorded
	// (-1 = all). The paper plots NewOrder only.
	LatencyFor tpcc.TxnType

	queue     chan request
	stop      chan struct{}
	wg        sync.WaitGroup
	started   time.Time
	duration  time.Duration
	buckets   []atomic.Int64
	latMu     sync.Mutex
	latencies []time.Duration
	samples   []LatencySample
	completed atomic.Int64
	retries   atomic.Int64
	errs      atomic.Int64
	dropped   atomic.Int64
	qlen      atomic.Int64
}

type request struct {
	enqueued time.Time
	tt       tpcc.TxnType
}

// Start launches the generator and workers for the given duration. Call
// Wait to collect results.
func (d *Driver) Start(duration time.Duration) {
	if d.Workers <= 0 {
		d.Workers = 4
	}
	if d.Interval <= 0 {
		d.Interval = 500 * time.Millisecond
	}
	// LatencyFor's zero value is TxnNewOrder — the paper's choice; set -1
	// explicitly to record all types.
	d.duration = duration
	nBuckets := int(duration/d.Interval) + 2
	d.buckets = make([]atomic.Int64, nBuckets)
	d.queue = make(chan request, 1<<18)
	d.stop = make(chan struct{})
	d.started = time.Now()

	for i := 0; i < d.Workers; i++ {
		d.wg.Add(1)
		go d.worker(int64(i))
	}
	d.wg.Add(1)
	go d.generator(duration)
}

func (d *Driver) generator(duration time.Duration) {
	defer d.wg.Done()
	defer close(d.stop)
	r := rand.New(rand.NewSource(d.Seed))
	interval := time.Duration(float64(time.Second) / d.Rate)
	end := d.started.Add(duration)
	next := d.started
	for {
		now := time.Now()
		if now.After(end) {
			return
		}
		// Catch up: enqueue every arrival whose time has passed (open loop).
		for !next.After(now) {
			tt := tpcc.PickTxn(r)
			if d.Mix != nil {
				tt = d.Mix(r)
			}
			select {
			case d.queue <- request{enqueued: next, tt: tt}:
				d.qlen.Add(1)
			default:
				// Queue overflow: the system is hopelessly behind; count as
				// an error rather than blocking the generator.
				d.errs.Add(1)
			}
			next = next.Add(interval)
		}
		sleep := time.Until(next)
		if sleep > time.Millisecond {
			sleep = time.Millisecond
		}
		time.Sleep(sleep)
	}
}

func (d *Driver) worker(seed int64) {
	defer d.wg.Done()
	r := rand.New(rand.NewSource(d.Seed*1000 + seed))
	for {
		select {
		case req := <-d.queue:
			d.qlen.Add(-1)
			d.runOne(r, req)
		case <-d.stop:
			// Unserved requests are discarded at the deadline (OLTP-Bench
			// semantics): a hopelessly backlogged system must not stall the
			// harness draining its queue; the backlog shows up as the
			// latencies of the requests that did complete.
			for {
				select {
				case <-d.queue:
					d.qlen.Add(-1)
					d.dropped.Add(1)
				default:
					return
				}
			}
		}
	}
}

func (d *Driver) runOne(r *rand.Rand, req request) {
	for attempt := 0; ; attempt++ {
		err := d.W.Run(r, req.tt)
		if err == nil || errors.Is(err, tpcc.ErrExpectedRollback) {
			break
		}
		if !tpcc.IsRetryable(err) || attempt > 100 {
			d.errs.Add(1)
			return
		}
		d.retries.Add(1)
	}
	done := time.Now()
	d.completed.Add(1)
	bucket := int(done.Sub(d.started) / d.Interval)
	if bucket >= 0 && bucket < len(d.buckets) {
		d.buckets[bucket].Add(1)
	}
	if d.LatencyFor < 0 || req.tt == d.LatencyFor {
		lat := done.Sub(req.enqueued)
		d.latMu.Lock()
		d.latencies = append(d.latencies, lat)
		d.samples = append(d.samples, LatencySample{At: done.Sub(d.started), Lat: lat})
		d.latMu.Unlock()
	}
}

// QueueLen reports the current backlog (requests enqueued but not finished).
func (d *Driver) QueueLen() int64 { return d.qlen.Load() }

// Wait blocks until the run completes and returns the metrics.
func (d *Driver) Wait() *Metrics {
	d.wg.Wait()
	m := &Metrics{
		Interval:  d.Interval,
		Completed: d.completed.Load(),
		Retries:   d.retries.Load(),
		Errors:    d.errs.Load(),
		Dropped:   d.dropped.Load(),
	}
	// Report only the run window; the post-deadline drain contributes to
	// latency but would show as artifact buckets in the series.
	window := int(d.duration / d.Interval)
	for i := 0; i < window && i < len(d.buckets); i++ {
		m.Series = append(m.Series, float64(d.buckets[i].Load())/d.Interval.Seconds())
	}
	for len(m.Series) > 0 && m.Series[len(m.Series)-1] == 0 {
		m.Series = m.Series[:len(m.Series)-1]
	}
	d.latMu.Lock()
	m.Latencies = append([]time.Duration(nil), d.latencies...)
	m.Samples = append([]LatencySample(nil), d.samples...)
	d.latMu.Unlock()
	sort.Slice(m.Latencies, func(i, j int) bool { return m.Latencies[i] < m.Latencies[j] })
	return m
}

// LatencySample is one completed request's latency, stamped with its
// completion time relative to the run start, so percentiles can be computed
// over arbitrary windows (e.g. the seconds surrounding a migration start).
type LatencySample struct {
	At  time.Duration // completion time since run start
	Lat time.Duration
}

// Metrics is a run's output.
type Metrics struct {
	Interval  time.Duration
	Series    []float64 // per-interval completed transactions/second
	Latencies []time.Duration
	// Samples preserves each latency with its completion timestamp (the
	// Latencies slice is sorted for CDFs and loses ordering).
	Samples   []LatencySample
	Completed int64
	Retries   int64
	Errors    int64
	Dropped   int64 // enqueued but unserved at the deadline
}

// Percentile returns the p-th latency percentile (0 < p <= 100).
func (m *Metrics) Percentile(p float64) time.Duration {
	if len(m.Latencies) == 0 {
		return 0
	}
	idx := int(p / 100 * float64(len(m.Latencies)-1))
	return m.Latencies[idx]
}

// WindowPercentile returns the p-th latency percentile over requests that
// completed in [from, to). It returns 0 when the window holds no samples.
func (m *Metrics) WindowPercentile(from, to time.Duration, p float64) time.Duration {
	var lats []time.Duration
	for _, s := range m.Samples {
		if s.At >= from && s.At < to {
			lats = append(lats, s.Lat)
		}
	}
	if len(lats) == 0 {
		return 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	idx := int(p / 100 * float64(len(lats)-1))
	return lats[idx]
}

// MeanTPS returns the average completed throughput over the run.
func (m *Metrics) MeanTPS() float64 {
	if len(m.Series) == 0 {
		return 0
	}
	total := 0.0
	for _, v := range m.Series {
		total += v
	}
	return total / float64(len(m.Series))
}

// CDF returns (latency, fraction) points at the given fractions.
func (m *Metrics) CDF(fractions []float64) []CDFPoint {
	out := make([]CDFPoint, 0, len(fractions))
	for _, f := range fractions {
		out = append(out, CDFPoint{Fraction: f, Latency: m.Percentile(f * 100)})
	}
	return out
}

// CDFPoint is one point of a latency CDF.
type CDFPoint struct {
	Fraction float64
	Latency  time.Duration
}

// Calibrate measures the workload's maximum sustainable throughput by
// running closed-loop with the given worker count, mirroring the paper's
// methodology ("increasing the rate ... until the latency starts to
// increase"). The offered rates of the experiments are then expressed as
// fractions of this capacity (0.6 ≈ the paper's 450 TPS regime, 1.0 ≈ the
// saturated 700 TPS regime).
func Calibrate(w *tpcc.Workload, workers int, duration time.Duration) float64 {
	var done atomic.Int64
	var measuring atomic.Bool
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				tt := tpcc.PickTxn(r)
				if err := w.Run(r, tt); err == nil || errors.Is(err, tpcc.ErrExpectedRollback) {
					if measuring.Load() {
						done.Add(1)
					}
				}
			}
		}(int64(i + 1))
	}
	// Warm up (caches, allocator) before measuring.
	time.Sleep(duration / 2)
	measuring.Store(true)
	time.Sleep(duration)
	close(stop)
	wg.Wait()
	return float64(done.Load()) / duration.Seconds()
}
