package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/bullfrogdb/bullfrog/internal/obs"
)

// jsonFigure is the on-disk shape of a figure's results.
type jsonFigure struct {
	Name string    `json:"name"`
	Note string    `json:"note"`
	Runs []jsonRun `json:"runs"`
}

// jsonRun flattens a Result for JSON output. Config carries a workload-mix
// function, so it cannot be marshalled directly; the fields that identify
// and reproduce the run are copied out instead.
type jsonRun struct {
	Label         string  `json:"label"`
	System        string  `json:"system"`
	Migration     string  `json:"migration"`
	RateTPS       float64 `json:"rate_tps"`
	CalibratedTPS float64 `json:"calibrated_tps,omitempty"`
	Workers       int     `json:"workers"`
	DurationSec   float64 `json:"duration_sec"`
	MigStartSec   float64 `json:"mig_start_sec"`
	MigEndSec     float64 `json:"mig_end_sec,omitempty"` // 0 = unfinished
	BGStartSec    float64 `json:"bg_start_sec,omitempty"`
	BGWorkers     int     `json:"bg_workers,omitempty"`
	DrainAtStart  bool    `json:"drain_at_start,omitempty"`
	Trace         bool    `json:"trace,omitempty"`
	// MigFlipMs is how long the logical switch took (gate drain + Start when
	// drain_at_start, just Start otherwise) — the client-visible stall at
	// migration start the versioned catalog removes.
	MigFlipMs float64 `json:"mig_flip_ms,omitempty"`
	// MigWindowP99Ms is the p99 latency over requests completing in the
	// half second after the migration started — where the drained flip's
	// stall surfaces (compare drain_at_start true vs false).
	MigWindowP99Ms float64         `json:"mig_window_p99_ms,omitempty"`
	RowsMigrated   int64           `json:"rows_migrated"`
	SkipWaits      int64           `json:"skip_waits"`
	Completed      int64           `json:"completed"`
	Retries        int64           `json:"retries"`
	Errors         int64           `json:"errors"`
	Dropped        int64           `json:"dropped"`
	MeanTPS        float64         `json:"mean_tps"`
	P50Ms          float64         `json:"p50_ms"`
	P99Ms          float64         `json:"p99_ms"`
	IntervalSec    float64         `json:"interval_sec"`
	Series         []float64       `json:"series"`
	Timeline       []TimelinePoint `json:"timeline"`
	Obs            obs.Snapshot    `json:"obs"`
	Err            string          `json:"err,omitempty"`
}

// WriteJSON writes a figure's results — including each run's per-second
// internal-metrics timeline and final snapshot — to dir/BENCH_<name>.json.
func WriteJSON(fr *FigureResult, dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	out := jsonFigure{Name: fr.Name, Note: fr.Note}
	for _, r := range fr.Runs {
		jr := jsonRun{
			Label:          labelFor(r),
			System:         r.Config.System.String(),
			Migration:      r.Config.Migration.String(),
			RateTPS:        r.Config.Rate,
			CalibratedTPS:  r.Calibrated,
			Workers:        r.Config.Workers,
			DurationSec:    r.Config.Duration.Seconds(),
			MigStartSec:    r.MigStart.Seconds(),
			MigEndSec:      r.MigEnd.Seconds(),
			BGStartSec:     r.BGStart.Seconds(),
			BGWorkers:      r.Config.BGWorkers,
			DrainAtStart:   r.Config.DrainAtStart,
			Trace:          r.Config.Trace,
			MigFlipMs:      float64(r.MigFlip) / float64(time.Millisecond),
			MigWindowP99Ms: float64(r.Metrics.WindowPercentile(r.MigStart, r.MigStart+500*time.Millisecond, 99)) / float64(time.Millisecond),
			RowsMigrated:   r.RowsMigrated,
			SkipWaits:      r.SkipWaits,
			Completed:      r.Metrics.Completed,
			Retries:        r.Metrics.Retries,
			Errors:         r.Metrics.Errors,
			Dropped:        r.Metrics.Dropped,
			MeanTPS:        r.Metrics.MeanTPS(),
			P50Ms:          float64(r.Metrics.Percentile(50)) / float64(time.Millisecond),
			P99Ms:          float64(r.Metrics.Percentile(99)) / float64(time.Millisecond),
			IntervalSec:    r.Metrics.Interval.Seconds(),
			Series:         r.Metrics.Series,
			Timeline:       r.Timeline,
			Obs:            r.Obs,
		}
		if r.Err != nil {
			jr.Err = r.Err.Error()
		}
		out.Runs = append(out.Runs, jr)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("BENCH_%s.json", fr.Name))
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}
