package bench

import (
	"strings"
	"testing"
	"time"

	"github.com/bullfrogdb/bullfrog/internal/tpcc"
)

// testProfile is deliberately tiny: these tests validate harness mechanics,
// not performance numbers.
func testProfile() Profile {
	return Profile{
		Scale: tpcc.Scale{
			Warehouses: 1, DistrictsPerW: 4, CustomersPerDist: 60,
			Items: 100, InitialOrdersPerD: 30, MaxLinesPerOrder: 6,
		},
		Workers:   2,
		Duration:  1200 * time.Millisecond,
		MigrateAt: 300 * time.Millisecond,
		BGDelay:   200 * time.Millisecond,
		Seed:      7,
	}
}

func TestDriverProducesSeriesAndLatencies(t *testing.T) {
	p := testProfile()
	cfg := p.config(SysNone, MigSplit, 0)
	cfg.Rate = 400 // absolute, no calibration
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.Completed == 0 {
		t.Fatal("no transactions completed")
	}
	if len(m.Series) == 0 {
		t.Fatal("no throughput series")
	}
	if len(m.Latencies) == 0 {
		t.Fatal("no latencies recorded")
	}
	if m.Percentile(99) < m.Percentile(50) {
		t.Error("percentiles not monotone")
	}
	if m.MeanTPS() <= 0 {
		t.Error("mean TPS")
	}
	if m.Errors > m.Completed/10 {
		t.Errorf("too many errors: %d of %d", m.Errors, m.Completed)
	}
	pts := m.CDF([]float64{0.5, 0.9})
	if len(pts) != 2 || pts[1].Latency < pts[0].Latency {
		t.Errorf("CDF points: %v", pts)
	}
}

func TestRunBullFrogSplitExperiment(t *testing.T) {
	p := testProfile()
	cfg := p.config(SysBullFrog, MigSplit, 0)
	cfg.Rate = 300
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.MigStart == 0 {
		t.Error("migration start not recorded")
	}
	if res.MigEnd == 0 {
		t.Error("background migration should complete within the window at this scale")
	}
	if res.RowsMigrated < int64(p.Scale.Customers()*2) {
		t.Errorf("rows migrated = %d, want >= %d", res.RowsMigrated, p.Scale.Customers()*2)
	}
	if !strings.Contains(res.Summary(), "bullfrog") {
		t.Error("summary label")
	}
}

func TestRunEagerExperiment(t *testing.T) {
	p := testProfile()
	cfg := p.config(SysEager, MigSplit, 0)
	cfg.Rate = 300
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.MigEnd == 0 || res.MigEnd < res.MigStart {
		t.Errorf("eager end marker: start=%v end=%v", res.MigStart, res.MigEnd)
	}
}

func TestRunMultiStepExperiment(t *testing.T) {
	p := testProfile()
	cfg := p.config(SysMultiStep, MigSplit, 0)
	cfg.Rate = 200
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.MigEnd == 0 {
		t.Error("multi-step switch did not happen within the window")
	}
}

func TestRunAggregateAndJoinExperiments(t *testing.T) {
	p := testProfile()
	for _, kind := range []MigrationKind{MigAggregate, MigJoin} {
		cfg := p.config(SysBullFrog, kind, 0)
		cfg.Rate = 200
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.Err != nil {
			t.Fatalf("%v: %v", kind, res.Err)
		}
		if res.Metrics.Completed == 0 {
			t.Errorf("%v: nothing completed", kind)
		}
	}
}

func TestFigureFormatters(t *testing.T) {
	p := testProfile()
	cfg1 := p.config(SysBullFrog, MigSplit, 0)
	cfg1.Rate = 200
	cfg2 := p.config(SysEager, MigSplit, 0)
	cfg2.Rate = 200
	fr, err := runAll("figure-test", "smoke", []Config{cfg1, cfg2})
	if err != nil {
		t.Fatal(err)
	}
	thr := FormatThroughput(fr)
	if !strings.Contains(thr, "figure-test") || !strings.Contains(thr, "migration-start") {
		t.Errorf("throughput format:\n%s", thr)
	}
	cdf := FormatCDF(fr)
	if !strings.Contains(cdf, "0.500") {
		t.Errorf("cdf format:\n%s", cdf)
	}
	sum := FormatSummary(fr)
	if !strings.Contains(sum, "bullfrog") || !strings.Contains(sum, "eager") {
		t.Errorf("summary format:\n%s", sum)
	}
}

func TestCalibrateReturnsPositive(t *testing.T) {
	p := testProfile()
	db, w := buildWorkload(t, p)
	_ = db
	tps := Calibrate(w, 2, 300*time.Millisecond)
	if tps <= 0 {
		t.Fatalf("calibrated %f", tps)
	}
}

func TestSystemAndKindStrings(t *testing.T) {
	names := map[System]string{
		SysNone: "tpcc-no-migration", SysEager: "eager", SysMultiStep: "multistep",
		SysBullFrog: "bullfrog", SysBullFrogOnConflict: "bullfrog-on-conflict",
		SysBullFrogNoBG: "bullfrog-no-background", SysBullFrogNoTracking: "bullfrog-no-tracking",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d = %q", s, s.String())
		}
	}
	if MigSplit.String() != "table-split" || MigAggregate.String() != "aggregate" || MigJoin.String() != "join" {
		t.Error("kind strings")
	}
}
