package bench

import (
	"sync"
	"time"

	"github.com/bullfrogdb/bullfrog"
)

// TimelinePoint is one periodic sample of the database's internal metrics
// during a run: cumulative counters plus the instantaneous migration
// progress gauge. Figure JSON carries these so plots can overlay internal
// activity (conflicts, WAL volume, lazy vs background migration) on the
// client-observed throughput series.
type TimelinePoint struct {
	T                float64 `json:"t"` // seconds since run start
	Commits          int64   `json:"commits"`
	Aborts           int64   `json:"aborts"`
	WriteConflicts   int64   `json:"write_conflicts"`
	LockTimeouts     int64   `json:"lock_timeouts"`
	RowsScanned      int64   `json:"rows_scanned"`
	WALRecords       int64   `json:"wal_records"`
	TuplesLazy       int64   `json:"tuples_lazy"`
	TuplesBackground int64   `json:"tuples_background"`
	// Progress is the minimum migration progress across tables still
	// migrating; 1 when no migration is active or all are complete.
	Progress float64 `json:"progress"`
	// Phases is cumulative per-phase span time (ns) when the run traces
	// (Config.Trace): plots can attribute wall time to parse/gate/exec/WAL/
	// lazy-migrate/backfill per sample. Nil with tracing off.
	Phases map[string]int64 `json:"phases_ns,omitempty"`
}

// sampler polls db.Metrics() on a fixed interval (1s by default, matching
// the paper's per-second throughput plots) until stopped.
type sampler struct {
	db       *bullfrog.DB
	start    time.Time
	interval time.Duration
	quit     chan struct{}
	wg       sync.WaitGroup
	once     sync.Once
	points   []TimelinePoint
}

func newSampler(db *bullfrog.DB, start time.Time, interval time.Duration) *sampler {
	if interval <= 0 {
		interval = time.Second
	}
	s := &sampler{db: db, start: start, interval: interval, quit: make(chan struct{})}
	s.wg.Add(1)
	go s.loop()
	return s
}

func (s *sampler) loop() {
	defer s.wg.Done()
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-t.C:
			s.points = append(s.points, samplePoint(s.db, s.start))
		}
	}
}

// Stop halts sampling, takes one final sample so short runs always have at
// least one point, and returns the timeline. Idempotent.
func (s *sampler) Stop() []TimelinePoint {
	s.once.Do(func() {
		close(s.quit)
		s.wg.Wait()
		s.points = append(s.points, samplePoint(s.db, s.start))
	})
	return s.points
}

func samplePoint(db *bullfrog.DB, start time.Time) TimelinePoint {
	snap := db.Metrics()
	progress := 1.0
	for _, t := range snap.Migration.Tables {
		if t.Progress < progress {
			progress = t.Progress
		}
	}
	return TimelinePoint{
		T:                time.Since(start).Seconds(),
		Commits:          snap.Txn.Commits,
		Aborts:           snap.Txn.Aborts,
		WriteConflicts:   snap.Txn.WriteConflicts,
		LockTimeouts:     snap.Txn.LockTimeouts,
		RowsScanned:      snap.Engine.RowsScanned,
		WALRecords:       snap.WAL.Records,
		TuplesLazy:       snap.Migration.TuplesLazy,
		TuplesBackground: snap.Migration.TuplesBackground,
		Progress:         progress,
		Phases:           db.TracePhaseTotals(),
	}
}
