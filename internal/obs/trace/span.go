package trace

import (
	"context"
	"sync/atomic"
	"time"
)

// Phase indexes one slice of a span's wall time. Statement spans use
// parse..commit; migration spans use install_barrier/backfill/catch_up.
// Leaf phases are timed at their call sites; exec and commit are recorded as
// remainders (elapsed minus the nested phases' deltas), so a finished span's
// phases sum to its wall time up to the unattributed residue.
type Phase uint8

// The span phase taxonomy.
const (
	PhaseParse Phase = iota
	PhasePlan
	PhaseGate
	PhaseLockWait
	PhaseLazyMigrate
	PhaseExec
	PhaseWALAppend
	PhaseGroupWait
	PhaseFsync
	PhaseCommit
	PhaseInstall
	PhaseBackfill
	PhaseCatchUp
	NumPhases // array bound, not a phase
)

var phaseNames = [NumPhases]string{
	PhaseParse:       "parse",
	PhasePlan:        "plan",
	PhaseGate:        "gate",
	PhaseLockWait:    "lock_wait",
	PhaseLazyMigrate: "lazy_migrate",
	PhaseExec:        "exec",
	PhaseWALAppend:   "wal_append",
	PhaseGroupWait:   "group_commit_wait",
	PhaseFsync:       "fsync",
	PhaseCommit:      "commit",
	PhaseInstall:     "install_barrier",
	PhaseBackfill:    "backfill",
	PhaseCatchUp:     "catch_up",
}

func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return "unknown"
}

// SpanKind distinguishes statement spans from migration spans.
type SpanKind uint8

// Span kinds.
const (
	SpanStatement SpanKind = iota
	SpanMigration
)

func (k SpanKind) String() string {
	if k == SpanMigration {
		return "migration"
	}
	return "statement"
}

// Span is one traced operation. All mutable state is atomic so the /trace
// endpoint snapshots active spans while their owners still record into them,
// and all methods tolerate a nil receiver so call sites stay unconditional.
type Span struct {
	tr    *Tracer
	id    uint64
	kind  SpanKind
	name  string
	start time.Time

	end     atomic.Int64 // wall ns once finished; 0 while active
	phases  [NumPhases]atomic.Int64
	counts  [NumPhases]atomic.Int64
	collide atomic.Pointer[string]
}

// ID returns the span's tracer-unique id (0 for a nil span).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Name returns the span's label.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Add attributes d to phase p (and to the tracer's cumulative per-phase
// totals). Negative durations are dropped.
func (s *Span) Add(p Phase, d time.Duration) {
	if s == nil || d < 0 {
		return
	}
	s.phases[p].Add(int64(d))
	s.counts[p].Add(1)
	s.tr.phaseTotals[p].Add(int64(d))
}

// AddSince is Add(p, time.Since(start)).
func (s *Span) AddSince(p Phase, start time.Time) {
	if s == nil {
		return
	}
	s.Add(p, time.Since(start))
}

// PhaseTotal returns the time accumulated in p so far. Remainder phases are
// computed from before/after deltas of the nested phases' totals.
func (s *Span) PhaseTotal(p Phase) time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.phases[p].Load())
}

// Collide annotates the span with the migration work it collided with (the
// first collision wins; later ones only bump the event ring).
func (s *Span) Collide(detail string) {
	if s == nil {
		return
	}
	d := detail
	s.collide.CompareAndSwap(nil, &d)
}

// Event records a ring event attributed to this span.
func (s *Span) Event(kind EventKind, arg int64, detail string) {
	if s == nil {
		return
	}
	s.tr.Event(kind, s.id, arg, detail)
}

// ctxKey carries a span on a context.Context.
type ctxKey struct{}

// WithSpan returns ctx carrying sp (ctx unchanged when sp is nil).
func WithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// FromContext returns the span ctx carries, or nil (nil ctx included).
// Callers on hot paths should gate the lookup on their own tracing flag so
// the disabled-tracer cost stays a plain nil/bool check.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// PhaseTiming is one phase's accumulated time within a span snapshot.
type PhaseTiming struct {
	Phase string `json:"phase"`
	Nanos int64  `json:"ns"`
	Count int64  `json:"count"`
}

// SpanSnapshot is a JSON-ready copy of a span. WallNanos is 0 while the span
// is active; for finished spans UnattributedNanos is the wall time no phase
// accounts for (scheduler time, the facade loop, …).
type SpanSnapshot struct {
	ID                uint64        `json:"id"`
	Kind              string        `json:"kind"`
	Name              string        `json:"name"`
	Start             time.Time     `json:"start"`
	WallNanos         int64         `json:"wall_ns,omitempty"`
	UnattributedNanos int64         `json:"unattributed_ns,omitempty"`
	Phases            []PhaseTiming `json:"phases,omitempty"`
	Collision         string        `json:"collision,omitempty"`
}

func (s *Span) snapshot() SpanSnapshot {
	out := SpanSnapshot{ID: s.id, Kind: s.kind.String(), Name: s.name, Start: s.start}
	var attributed int64
	for p := Phase(0); p < NumPhases; p++ {
		ns, n := s.phases[p].Load(), s.counts[p].Load()
		if ns == 0 && n == 0 {
			continue
		}
		out.Phases = append(out.Phases, PhaseTiming{Phase: p.String(), Nanos: ns, Count: n})
		attributed += ns
	}
	if wall := s.end.Load(); wall > 0 {
		out.WallNanos = wall
		if rem := wall - attributed; rem > 0 {
			out.UnattributedNanos = rem
		}
	}
	if c := s.collide.Load(); c != nil {
		out.Collision = *c
	}
	return out
}
