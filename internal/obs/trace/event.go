// Package trace is BullFrog's request-scoped tracing: a lock-free
// fixed-capacity event ring, statement and migration spans with per-phase
// latency attribution, a structured slow-op log, and JSON snapshots served by
// the facade's TraceHandler. Tracing is pay-for-what-you-use: a nil *Tracer
// (the disabled tracer) is valid everywhere and every method no-ops, so the
// hot-path cost of disabled tracing is one nil check.
package trace

// EventKind identifies one entry in the trace-event registry below. Every
// kind must have exactly one snake_case name in eventNames — the obsmetric
// analyzer enforces the pairing — and ring writes outside this package must
// pass one of these constants, never a computed kind.
type EventKind uint8

// The trace-event registry.
const (
	// EvStatementSlow fires when a finished statement span crossed the
	// SlowStatement threshold (arg = wall ns, detail = statement name).
	EvStatementSlow EventKind = iota
	// EvMigrationStart fires at the lazy migration's catalog install
	// (detail = migration name, arg = install-barrier ns).
	EvMigrationStart
	// EvMigrationComplete fires at end-of-migration cleanup
	// (arg = migration wall ns).
	EvMigrationComplete
	// EvBackfillBatch fires per background backfill batch
	// (arg = batch ns, detail = statement, granules, pacer batch size).
	EvBackfillBatch
	// EvPacerLevel fires when the backfill pacer changes throttle level
	// (arg = new level).
	EvPacerLevel
	// EvGroupSync fires per WAL flush-leader round (arg = group batch size,
	// detail = dwell and fsync durations).
	EvGroupSync
	// EvCatchUp fires when a CatchUp drain starts (detail = statement name).
	EvCatchUp
	// EvCollision fires when a client statement waits on migration granules
	// another worker holds (arg = busy count, detail = migration statement).
	EvCollision
	// NumEventKinds is the registry size — an array bound, not a kind.
	NumEventKinds
)

// eventNames is the single source of event names: one unique snake_case name
// per kind, in registry order. The obsmetric analyzer checks this table.
var eventNames = [NumEventKinds]string{
	EvStatementSlow:     "statement_slow",
	EvMigrationStart:    "migration_start",
	EvMigrationComplete: "migration_complete",
	EvBackfillBatch:     "backfill_batch",
	EvPacerLevel:        "pacer_level",
	EvGroupSync:         "group_sync",
	EvCatchUp:           "catch_up",
	EvCollision:         "granule_collision",
}

func (k EventKind) String() string {
	if k < NumEventKinds {
		return eventNames[k]
	}
	return "unknown"
}
