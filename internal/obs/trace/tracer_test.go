package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestNilTracerIsDisabled: the nil *Tracer (and nil *Span) is the disabled
// tracer — every method must no-op without panicking, so call sites stay
// unconditional.
func TestNilTracerIsDisabled(t *testing.T) {
	var tr *Tracer
	sp := tr.StartStatement("x")
	if sp != nil {
		t.Fatalf("nil tracer StartStatement = %v, want nil", sp)
	}
	tr.Finish(sp)
	tr.Event(EvCollision, 0, 1, "d")
	tr.BatchDone(nil, "s", 1, 2, time.Millisecond)
	if got := tr.Snapshot(); got.Enabled {
		t.Error("nil tracer snapshot Enabled = true")
	}
	if tr.PhaseTotals() != nil {
		t.Error("nil tracer PhaseTotals != nil")
	}

	sp.Add(PhaseExec, time.Second)
	sp.AddSince(PhaseParse, time.Now())
	sp.Collide("m")
	sp.Event(EvCatchUp, 1, "d")
	if sp.ID() != 0 || sp.Name() != "" || sp.PhaseTotal(PhaseExec) != 0 {
		t.Error("nil span accessors not zero")
	}
	if FromContext(nil) != nil || FromContext(context.Background()) != nil {
		t.Error("FromContext without a span != nil")
	}
	if ctx := context.Background(); WithSpan(ctx, nil) != ctx {
		t.Error("WithSpan(ctx, nil) should return ctx unchanged")
	}
}

func TestSpanContextRoundTrip(t *testing.T) {
	tr := New(Config{RingSize: 64}, nil)
	sp := tr.StartStatement("SELECT 1")
	ctx := WithSpan(context.Background(), sp)
	if got := FromContext(ctx); got != sp {
		t.Fatalf("FromContext = %v, want %v", got, sp)
	}
}

func TestFinishIsIdempotentAndTracksActive(t *testing.T) {
	tr := New(Config{RingSize: 64}, nil)
	a := tr.StartStatement("a")
	b := tr.StartMigration("b")
	snap := tr.Snapshot()
	if len(snap.Active) != 2 || snap.Active[0].ID != a.ID() || snap.Active[1].ID != b.ID() {
		t.Fatalf("active spans = %+v, want [a b] sorted by id", snap.Active)
	}
	if snap.Active[0].WallNanos != 0 {
		t.Error("active span has WallNanos set")
	}
	tr.Finish(a)
	tr.Finish(a) // second finish must be a no-op
	snap = tr.Snapshot()
	if len(snap.Active) != 1 || snap.Active[0].ID != b.ID() {
		t.Fatalf("after finish, active = %+v, want just the migration span", snap.Active)
	}
}

func TestSlowStatementLogged(t *testing.T) {
	var log bytes.Buffer
	tr := New(Config{RingSize: 64, SlowStatement: time.Millisecond, SlowLog: &log}, nil)

	// Phases are timed inside the span's lifetime (as real call sites do),
	// so attributed time can never exceed wall time.
	sp := tr.StartStatement("UPDATE t SET x = 1")
	phaseStart := time.Now()
	time.Sleep(2 * time.Millisecond)
	sp.AddSince(PhaseParse, phaseStart)
	phaseStart = time.Now()
	time.Sleep(time.Millisecond)
	sp.AddSince(PhaseExec, phaseStart)
	sp.Collide("migration stmt=split busy=3")
	tr.Finish(sp)

	snap := tr.Snapshot()
	if len(snap.Slow) != 1 {
		t.Fatalf("recent slow = %d entries, want 1", len(snap.Slow))
	}
	e := snap.Slow[0]
	if e.Type != "statement" || e.Span == nil {
		t.Fatalf("slow entry = %+v, want statement type with span", e)
	}
	if e.Span.Collision != "migration stmt=split busy=3" {
		t.Errorf("slow span collision = %q", e.Span.Collision)
	}
	// The phase breakdown must explain the wall time: attributed + residue
	// equals wall exactly.
	var attributed int64
	for _, p := range e.Span.Phases {
		attributed += p.Nanos
	}
	if e.Span.WallNanos == 0 || attributed+e.Span.UnattributedNanos != e.Span.WallNanos {
		t.Errorf("phases (%d ns) + unattributed (%d ns) != wall (%d ns)",
			attributed, e.Span.UnattributedNanos, e.Span.WallNanos)
	}

	found := false
	for _, ev := range snap.Events {
		if ev.Kind == "statement_slow" && ev.Span == sp.ID() {
			found = true
		}
	}
	if !found {
		t.Error("no statement_slow ring event for the slow span")
	}

	var line SlowEntry
	if err := json.Unmarshal(bytes.TrimSpace(log.Bytes()), &line); err != nil {
		t.Fatalf("slow log line is not one JSON object: %v (%q)", err, log.String())
	}
	if line.Type != "statement" || line.Span == nil || line.Span.Name != "UPDATE t SET x = 1" {
		t.Errorf("slow log line = %+v", line)
	}
}

func TestSlowBatchLogged(t *testing.T) {
	var log bytes.Buffer
	tr := New(Config{RingSize: 64, SlowBatch: time.Millisecond, SlowLog: &log}, nil)
	mig := tr.StartMigration("split")

	tr.BatchDone(mig, "split", 8, 64, 500*time.Microsecond) // under threshold
	tr.BatchDone(mig, "split", 16, 64, 5*time.Millisecond)  // over

	snap := tr.Snapshot()
	if len(snap.Slow) != 1 {
		t.Fatalf("recent slow = %d entries, want 1 (only the over-threshold batch)", len(snap.Slow))
	}
	e := snap.Slow[0]
	if e.Type != "batch" || e.Statement != "split" || e.Granules != 16 || e.Batch != 64 {
		t.Errorf("slow batch entry = %+v", e)
	}
	if got := mig.PhaseTotal(PhaseBackfill); got != 500*time.Microsecond+5*time.Millisecond {
		t.Errorf("migration span backfill total = %v", got)
	}
	batches := 0
	for _, ev := range snap.Events {
		if ev.Kind == "backfill_batch" {
			batches++
			if !strings.Contains(ev.Detail, "split granules=") {
				t.Errorf("backfill event detail = %q", ev.Detail)
			}
		}
	}
	if batches != 2 {
		t.Errorf("backfill_batch events = %d, want 2", batches)
	}
}

func TestCollideFirstWins(t *testing.T) {
	tr := New(Config{RingSize: 64}, nil)
	sp := tr.StartStatement("s")
	sp.Collide("first")
	sp.Collide("second")
	tr.Finish(sp)
	// Finished spans leave the active set; re-snapshot through the slow path
	// is not available here, so read the annotation directly.
	if c := sp.collide.Load(); c == nil || *c != "first" {
		t.Errorf("collision = %v, want first-wins", c)
	}
}

func TestPhaseTotalsAccumulateAcrossSpans(t *testing.T) {
	tr := New(Config{RingSize: 64}, nil)
	a := tr.StartStatement("a")
	b := tr.StartStatement("b")
	a.Add(PhaseExec, 10*time.Millisecond)
	b.Add(PhaseExec, 5*time.Millisecond)
	b.Add(PhaseGate, 1*time.Millisecond)
	b.Add(PhaseParse, -time.Second) // negative durations are dropped
	tr.Finish(a)
	tr.Finish(b)
	totals := tr.PhaseTotals()
	if totals["exec"] != int64(15*time.Millisecond) {
		t.Errorf("exec total = %d", totals["exec"])
	}
	if totals["gate"] != int64(time.Millisecond) {
		t.Errorf("gate total = %d", totals["gate"])
	}
	if _, ok := totals["parse"]; ok {
		t.Error("negative duration leaked into phase totals")
	}
}

func TestRecentSlowBufferBounded(t *testing.T) {
	tr := New(Config{RingSize: 64, SlowBatch: time.Nanosecond}, nil)
	for i := 0; i < recentSlowCap+10; i++ {
		tr.BatchDone(nil, "s", i, 1, time.Millisecond)
	}
	snap := tr.Snapshot()
	if len(snap.Slow) != recentSlowCap {
		t.Fatalf("recent slow = %d entries, want bounded at %d", len(snap.Slow), recentSlowCap)
	}
	if got := snap.Slow[len(snap.Slow)-1].Granules; got != recentSlowCap+9 {
		t.Errorf("newest slow entry granules = %d, want the last batch", got)
	}
}
