package trace

import (
	"sync/atomic"
	"time"

	"github.com/bullfrogdb/bullfrog/internal/obs"
)

// spanMask is the low 56 bits of the packed kind/span word; span ids above
// it (never reached in practice — it is 2^56 statements) alias harmlessly.
const spanMask = (uint64(1) << 56) - 1

// Event is one decoded ring entry.
type Event struct {
	// Seq is the event's global sequence number (1-based, dense).
	Seq uint64 `json:"seq"`
	// At is the wall-clock write time.
	At time.Time `json:"at"`
	// Kind is the registry name of the event kind.
	Kind string `json:"kind"`
	// Span is the id of the span the event belongs to (0 = none).
	Span uint64 `json:"span,omitempty"`
	// Arg is the kind-specific numeric payload (duration ns, batch size, …).
	Arg int64 `json:"arg,omitempty"`
	// Detail is the kind-specific free-form payload.
	Detail string `json:"detail,omitempty"`
}

// slot holds one event entirely in atomics so snapshot readers never race
// writers — clean under the race detector, not just on the hardware. seq is
// the publication word: writers zero it, store the payload, then store the
// slot's sequence number; readers validate seq before and after copying.
type slot struct {
	seq      atomic.Uint64 // 0 = write in progress
	at       atomic.Int64
	kindSpan atomic.Uint64 // kind in the top 8 bits, span id in the low 56
	arg      atomic.Int64
	detail   atomic.Pointer[string]
}

// Ring is a lock-free fixed-capacity event buffer: a single atomic cursor
// allocates slots, writers publish through per-slot sequence numbers, and
// Snapshot copies the surviving window without blocking anyone. Overwritten
// or in-flight slots are skipped (torn-read safety) and counted as dropped.
type Ring struct {
	mask   uint64
	cursor atomic.Uint64 // last allocated sequence (1-based)
	slots  []slot
	met    *obs.TraceMetrics // dropped/lap counters; nil = uncounted
}

// NewRing allocates a ring with at least the requested capacity, rounded up
// to a power of two (0 or negative = 4096, minimum 64). met may be nil.
func NewRing(capacity int, met *obs.TraceMetrics) *Ring {
	if capacity <= 0 {
		capacity = 4096
	}
	n := 64
	for n < capacity {
		n <<= 1
	}
	return &Ring{mask: uint64(n - 1), slots: make([]slot, n), met: met}
}

// Cap returns the ring's slot count.
func (r *Ring) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Record writes one event. Lock-free: one atomic add claims the slot, five
// atomic stores publish it. Safe for any number of concurrent writers; a
// writer lapped by cap(ring) newer events simply loses its slot to them.
func (r *Ring) Record(kind EventKind, span uint64, arg int64, detail string) {
	if r == nil {
		return
	}
	seq := r.cursor.Add(1)
	s := &r.slots[(seq-1)&r.mask]
	s.seq.Store(0) // invalidate while the payload is torn
	s.at.Store(time.Now().UnixNano())
	s.kindSpan.Store(uint64(kind)<<56 | span&spanMask)
	s.arg.Store(arg)
	if detail == "" {
		s.detail.Store(nil)
	} else {
		d := detail
		s.detail.Store(&d)
	}
	s.seq.Store(seq)
	if seq > uint64(len(r.slots)) && seq&r.mask == 0 && r.met != nil {
		r.met.RingLaps.Inc()
	}
}

// Snapshot copies the ring's surviving window, oldest first. Slots being
// rewritten concurrently (seq mismatch before or after the payload copy) are
// skipped and counted on trace.events_dropped; everything returned is a
// consistent single event.
func (r *Ring) Snapshot() []Event {
	if r == nil {
		return nil
	}
	cur := r.cursor.Load()
	if cur == 0 {
		return nil
	}
	lo := uint64(1)
	if n := uint64(len(r.slots)); cur > n {
		lo = cur - n + 1
	}
	out := make([]Event, 0, cur-lo+1)
	for seq := lo; seq <= cur; seq++ {
		s := &r.slots[(seq-1)&r.mask]
		if s.seq.Load() != seq {
			r.drop()
			continue
		}
		at := s.at.Load()
		ks := s.kindSpan.Load()
		arg := s.arg.Load()
		var detail string
		if p := s.detail.Load(); p != nil {
			detail = *p
		}
		if s.seq.Load() != seq { // a writer lapped us mid-copy
			r.drop()
			continue
		}
		out = append(out, Event{
			Seq:    seq,
			At:     time.Unix(0, at),
			Kind:   EventKind(ks >> 56).String(),
			Span:   ks & spanMask,
			Arg:    arg,
			Detail: detail,
		})
	}
	return out
}

func (r *Ring) drop() {
	if r.met != nil {
		r.met.EventsDropped.Inc()
	}
}
