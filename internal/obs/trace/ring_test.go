package trace

import (
	"fmt"
	"sync"
	"testing"

	"github.com/bullfrogdb/bullfrog/internal/obs"
)

func TestRingCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, 4096}, {-5, 4096}, {1, 64}, {64, 64}, {65, 128}, {100, 128}, {4096, 4096},
	} {
		if got := NewRing(tc.ask, nil).Cap(); got != tc.want {
			t.Errorf("NewRing(%d).Cap() = %d, want %d", tc.ask, got, tc.want)
		}
	}
	if (*Ring)(nil).Cap() != 0 {
		t.Error("nil ring Cap() != 0")
	}
}

func TestRingRecordSnapshot(t *testing.T) {
	r := NewRing(64, nil)
	if got := r.Snapshot(); got != nil {
		t.Fatalf("empty ring snapshot = %v, want nil", got)
	}
	for i := 0; i < 10; i++ {
		r.Record(EvBackfillBatch, uint64(i+1), int64(i*10), fmt.Sprintf("e%d", i))
	}
	evs := r.Snapshot()
	if len(evs) != 10 {
		t.Fatalf("snapshot len = %d, want 10", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d seq = %d, want %d (oldest first, dense)", i, e.Seq, i+1)
		}
		if e.Kind != "backfill_batch" {
			t.Errorf("event %d kind = %q", i, e.Kind)
		}
		if e.Span != uint64(i+1) || e.Arg != int64(i*10) || e.Detail != fmt.Sprintf("e%d", i) {
			t.Errorf("event %d payload = {span:%d arg:%d detail:%q}", i, e.Span, e.Arg, e.Detail)
		}
	}
}

func TestRingWrapKeepsNewestWindow(t *testing.T) {
	met := &obs.TraceMetrics{}
	r := NewRing(64, met)
	const n = 200 // > 3 laps of 64
	for i := 0; i < n; i++ {
		r.Record(EvPacerLevel, 0, int64(i), "")
	}
	evs := r.Snapshot()
	if len(evs) != 64 {
		t.Fatalf("snapshot len = %d, want 64 (ring capacity)", len(evs))
	}
	for i, e := range evs {
		if want := uint64(n - 64 + 1 + i); e.Seq != want {
			t.Errorf("event %d seq = %d, want %d (newest window survives)", i, e.Seq, want)
		}
	}
	if met.RingLaps.Load() == 0 {
		t.Error("ring_laps counter not bumped after wrapping")
	}
}

func TestRingNilSafe(t *testing.T) {
	var r *Ring
	r.Record(EvCatchUp, 1, 2, "x") // must not panic
	if r.Snapshot() != nil {
		t.Error("nil ring snapshot != nil")
	}
}

// TestRingConcurrentStress is the race-detector stress test for the ring's
// writer protocol: concurrent writers and snapshot readers, with every
// returned event checked for internal consistency (arg and detail written
// together must be read together — a torn read would mix them). Run under
// -race this also proves the atomics are the only shared state.
func TestRingConcurrentStress(t *testing.T) {
	met := &obs.TraceMetrics{}
	r := NewRing(256, met)
	const writers = 8
	perWriter := 2000
	if testing.Short() {
		perWriter = 200
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				arg := int64(w)<<32 | int64(i)
				r.Record(EvBackfillBatch, uint64(w+1), arg, fmt.Sprintf("w%d-%d", w, i))
			}
		}(w)
	}

	stop := make(chan struct{})
	var snaps sync.WaitGroup
	for g := 0; g < 4; g++ {
		snaps.Add(1)
		go func() {
			defer snaps.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, e := range r.Snapshot() {
					w, i := e.Arg>>32, e.Arg&0xffffffff
					if want := fmt.Sprintf("w%d-%d", w, i); e.Detail != want {
						t.Errorf("torn event: arg says %q, detail is %q", want, e.Detail)
						return
					}
					if e.Span != uint64(w+1) {
						t.Errorf("torn event: span %d for writer %d", e.Span, w)
						return
					}
					if e.Kind != "backfill_batch" {
						t.Errorf("torn event kind %q", e.Kind)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	snaps.Wait()

	final := r.Snapshot()
	if len(final) != 256 {
		t.Fatalf("final snapshot len = %d, want full ring 256", len(final))
	}
	total := uint64(writers * perWriter)
	for i, e := range final {
		if want := total - 256 + 1 + uint64(i); e.Seq != want {
			t.Fatalf("final event %d seq = %d, want %d", i, e.Seq, want)
		}
	}
}
