package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bullfrogdb/bullfrog/internal/obs"
)

// recentSlowCap bounds the in-memory recent-slow buffer served by /trace.
const recentSlowCap = 32

// Config tunes a Tracer.
type Config struct {
	// RingSize is the event-ring capacity (rounded up to a power of two;
	// 0 = 4096).
	RingSize int
	// SlowStatement: finished statement spans at least this slow emit an
	// EvStatementSlow ring event and one slow-op JSON line with the full
	// phase breakdown (0 disables the slow-op path, not the spans).
	SlowStatement time.Duration
	// SlowBatch is the same threshold for background backfill batches.
	SlowBatch time.Duration
	// SlowLog receives slow-op JSON lines. nil keeps slow ops only in the
	// in-memory recent-slow buffer.
	SlowLog io.Writer
}

// Tracer owns the event ring, issues span ids, tracks active spans, and
// applies the slow-op thresholds. The nil *Tracer is the disabled tracer:
// every method no-ops behind one nil check.
type Tracer struct {
	ring *Ring
	met  *obs.TraceMetrics
	cfg  Config

	nextID      atomic.Uint64
	phaseTotals [NumPhases]atomic.Int64
	active      sync.Map // span id -> *Span

	slowMu sync.Mutex
	slow   []SlowEntry
}

// New creates an enabled tracer. met receives the ring health counters and
// may be nil.
func New(cfg Config, met *obs.TraceMetrics) *Tracer {
	return &Tracer{ring: NewRing(cfg.RingSize, met), met: met, cfg: cfg}
}

// StartStatement opens a statement span. Finish it with Tracer.Finish.
func (t *Tracer) StartStatement(name string) *Span { return t.start(SpanStatement, name) }

// StartMigration opens a migration span.
func (t *Tracer) StartMigration(name string) *Span { return t.start(SpanMigration, name) }

func (t *Tracer) start(kind SpanKind, name string) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{tr: t, id: t.nextID.Add(1), kind: kind, name: name, start: time.Now()}
	t.active.Store(sp.id, sp)
	return sp
}

// Finish ends sp: records its wall time, removes it from the active set, and
// applies the statement slow-op threshold. Nil tracer or span is a no-op.
func (t *Tracer) Finish(sp *Span) {
	if t == nil || sp == nil {
		return
	}
	wall := time.Since(sp.start)
	if !sp.end.CompareAndSwap(0, int64(wall)) {
		return // already finished
	}
	t.active.Delete(sp.id)
	if sp.kind != SpanStatement {
		return
	}
	if thr := t.cfg.SlowStatement; thr > 0 && wall >= thr {
		t.ring.Record(EvStatementSlow, sp.id, int64(wall), sp.name)
		snap := sp.snapshot()
		t.logSlow(SlowEntry{Type: "statement", At: time.Now(), WallNanos: int64(wall), Span: &snap})
	}
}

// Event records a ring event (span 0 = not attributed to a span).
func (t *Tracer) Event(kind EventKind, span uint64, arg int64, detail string) {
	if t == nil {
		return
	}
	t.ring.Record(kind, span, arg, detail)
}

// BatchDone records one backfill batch: backfill time on the migration span,
// an EvBackfillBatch ring event, and — past the SlowBatch threshold — a
// slow-op line naming the statement and batch geometry.
func (t *Tracer) BatchDone(sp *Span, stmt string, granules, batchSize int, d time.Duration) {
	if t == nil {
		return
	}
	sp.Add(PhaseBackfill, d)
	t.ring.Record(EvBackfillBatch, sp.ID(), int64(d),
		fmt.Sprintf("%s granules=%d batch=%d", stmt, granules, batchSize))
	if thr := t.cfg.SlowBatch; thr > 0 && d >= thr {
		t.logSlow(SlowEntry{
			Type: "batch", At: time.Now(), Statement: stmt,
			Granules: granules, Batch: batchSize, WallNanos: int64(d),
		})
	}
}

// SlowEntry is one slow-op log line: a statement span past SlowStatement or
// a backfill batch past SlowBatch.
type SlowEntry struct {
	Type      string        `json:"type"` // "statement" | "batch"
	At        time.Time     `json:"at"`
	WallNanos int64         `json:"wall_ns"`
	Span      *SpanSnapshot `json:"span,omitempty"`
	Statement string        `json:"statement,omitempty"`
	Granules  int           `json:"granules,omitempty"`
	Batch     int           `json:"batch,omitempty"`
}

func (t *Tracer) logSlow(e SlowEntry) {
	t.slowMu.Lock()
	if len(t.slow) >= recentSlowCap {
		copy(t.slow, t.slow[1:])
		t.slow = t.slow[:recentSlowCap-1]
	}
	t.slow = append(t.slow, e)
	w := t.cfg.SlowLog
	t.slowMu.Unlock()
	if w == nil {
		return
	}
	b, err := json.Marshal(e)
	if err != nil {
		return // a span snapshot always marshals; nothing useful to do here
	}
	t.slowMu.Lock()
	defer t.slowMu.Unlock()
	// The slow log is a diagnostics stream: a failing writer must not fail
	// the statement that happened to be slow.
	_, _ = w.Write(append(b, '\n'))
}

// Snapshot is the /trace payload.
type Snapshot struct {
	// Enabled is false for the disabled (nil) tracer; all other fields are
	// zero then.
	Enabled bool `json:"enabled"`
	// Events is the ring's surviving window, oldest first.
	Events []Event `json:"events,omitempty"`
	// Active are the spans currently open, ordered by id.
	Active []SpanSnapshot `json:"active_spans,omitempty"`
	// Slow holds the most recent slow-op entries (bounded).
	Slow []SlowEntry `json:"recent_slow,omitempty"`
	// PhaseTotals is cumulative per-phase time (ns) across all spans.
	PhaseTotals map[string]int64 `json:"phase_totals_ns,omitempty"`
	// EventsDropped / RingLaps mirror the trace.* obs counters.
	EventsDropped int64 `json:"events_dropped"`
	RingLaps      int64 `json:"ring_laps"`
}

// Snapshot captures the ring, the active spans, and the recent slow ops.
// Safe to call concurrently with any writers.
func (t *Tracer) Snapshot() Snapshot {
	if t == nil {
		return Snapshot{}
	}
	out := Snapshot{Enabled: true, Events: t.ring.Snapshot(), PhaseTotals: t.PhaseTotals()}
	t.active.Range(func(_, v any) bool {
		out.Active = append(out.Active, v.(*Span).snapshot())
		return true
	})
	sort.Slice(out.Active, func(i, j int) bool { return out.Active[i].ID < out.Active[j].ID })
	t.slowMu.Lock()
	out.Slow = append([]SlowEntry(nil), t.slow...)
	t.slowMu.Unlock()
	if t.met != nil {
		out.EventsDropped = t.met.EventsDropped.Load()
		out.RingLaps = t.met.RingLaps.Load()
	}
	return out
}

// PhaseTotals returns cumulative per-phase nanoseconds across every span the
// tracer has seen — the bench timeline's phase attribution. Nil for the
// disabled tracer.
func (t *Tracer) PhaseTotals() map[string]int64 {
	if t == nil {
		return nil
	}
	out := make(map[string]int64, NumPhases)
	for p := Phase(0); p < NumPhases; p++ {
		if v := t.phaseTotals[p].Load(); v != 0 {
			out[p.String()] = v
		}
	}
	return out
}
