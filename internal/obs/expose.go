package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"
)

// Text renders the snapshot as a human-readable metrics page (the shell's
// \metrics output and the HTTP handler's default format). Histograms here
// hold nanosecond latencies and render as durations.
func (s Snapshot) Text() string {
	var b strings.Builder
	writeHist := func(name string, h HistogramSnapshot) {
		fmt.Fprintf(&b, "%-28s count=%-8d mean=%-10s p50=%-10s p99=%-10s max=%s\n",
			name, h.Count,
			fmtDur(h.Mean()), fmtDur(h.Quantile(0.50)), fmtDur(h.Quantile(0.99)),
			fmtDur(float64(h.Max)))
	}
	kinds := make([]string, 0, len(s.Engine.Exec))
	for k := range s.Engine.Exec {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		writeHist("engine.exec."+k, s.Engine.Exec[k])
	}
	fmt.Fprintf(&b, "%-28s %d\n", "engine.rows_scanned", s.Engine.RowsScanned)
	fmt.Fprintf(&b, "%-28s %d\n", "engine.rows_returned", s.Engine.RowsReturned)
	fmt.Fprintf(&b, "%-28s %d\n", "engine.plans_built", s.Engine.PlansBuilt)
	fmt.Fprintf(&b, "%-28s %d\n", "engine.plans_reused", s.Engine.PlansReused)
	fmt.Fprintf(&b, "%-28s %d\n", "txn.begins", s.Txn.Begins)
	fmt.Fprintf(&b, "%-28s %d\n", "txn.commits", s.Txn.Commits)
	fmt.Fprintf(&b, "%-28s %d\n", "txn.aborts", s.Txn.Aborts)
	fmt.Fprintf(&b, "%-28s %d\n", "txn.write_conflicts", s.Txn.WriteConflicts)
	fmt.Fprintf(&b, "%-28s %d\n", "txn.lock_timeouts", s.Txn.LockTimeouts)
	writeHist("txn.lock_wait", s.Txn.LockWait)
	writeHist("txn.commit_latency", s.Txn.CommitLatency)
	fmt.Fprintf(&b, "%-28s %d\n", "wal.records", s.WAL.Records)
	fmt.Fprintf(&b, "%-28s %d\n", "wal.bytes", s.WAL.Bytes)
	writeHist("wal.sync_latency", s.WAL.SyncLatency)
	fmt.Fprintf(&b, "%-28s %d\n", "migration.tuples_lazy", s.Migration.TuplesLazy)
	fmt.Fprintf(&b, "%-28s %d\n", "migration.tuples_background", s.Migration.TuplesBackground)
	writeHist("migration.ensure_latency", s.Migration.EnsureLatency)
	writeHist("migration.gate_wait", s.Migration.GateWait)
	fmt.Fprintf(&b, "%-28s %d\n", "migration.backfill_workers", s.Migration.BackfillWorkersActive)
	fmt.Fprintf(&b, "%-28s %d\n", "migration.backfill_batch", s.Migration.BackfillBatchSize)
	fmt.Fprintf(&b, "%-28s %d\n", "schemaver.versions", s.Migration.SchemaVersions)
	fmt.Fprintf(&b, "%-28s %d\n", "schemaver.rollbacks", s.Migration.SchemaRollbacks)
	fmt.Fprintf(&b, "%-28s %d\n", "catalog.versions_live", s.Catalog.VersionsLive)
	fmt.Fprintf(&b, "%-28s %d\n", "catalog.install_cas_retries", s.Catalog.InstallCASRetries)
	fmt.Fprintf(&b, "%-28s %d\n", "trace.events_dropped", s.Trace.EventsDropped)
	fmt.Fprintf(&b, "%-28s %d\n", "trace.ring_laps", s.Trace.RingLaps)
	for _, t := range s.Migration.Tables {
		total := fmt.Sprintf("%d", t.Total)
		if t.Total < 0 {
			total = "?"
		}
		fmt.Fprintf(&b, "%-28s stmt=%s table=%s migrated=%d total=%s progress=%.3f complete=%v\n",
			"migration.progress", t.Statement, t.Table, t.Migrated, total, t.Progress, t.Complete)
	}
	return b.String()
}

func fmtDur(ns float64) string {
	if ns <= 0 {
		return "0s"
	}
	return time.Duration(ns).Round(100 * time.Nanosecond).String()
}

// Handler serves metrics over HTTP: text by default, JSON when the request
// asks for it (Accept: application/json or ?format=json). fn is called per
// request, so the snapshot is always current.
func Handler(fn func() Snapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		snap := fn()
		if strings.Contains(r.Header.Get("Accept"), "application/json") ||
			r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(snap)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(snap.Text()))
	})
}

// Publish registers the snapshot function as an expvar variable. expvar
// panics on duplicate names, so call once per process per name.
func Publish(name string, fn func() Snapshot) {
	expvar.Publish(name, expvar.Func(func() any { return fn() }))
}
