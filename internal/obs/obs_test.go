package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Load(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	// Bucket i holds 2^(i-1) <= v < 2^i; bucket 0 holds v == 0.
	h.Observe(0)  // bucket 0
	h.Observe(-5) // clamps to 0, bucket 0
	h.Observe(1)  // bucket 1
	h.Observe(2)  // bucket 2
	h.Observe(3)  // bucket 2
	h.Observe(4)  // bucket 3
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if s.Sum != 0+0+1+2+3+4 {
		t.Fatalf("sum = %d, want 10", s.Sum)
	}
	if s.Max != 4 {
		t.Fatalf("max = %d, want 4", s.Max)
	}
	want := []int64{2, 1, 2, 1}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %v, want %v", s.Buckets, want)
	}
	for i := range want {
		if s.Buckets[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", s.Buckets, want)
		}
	}
}

func TestHistogramClampsHugeValues(t *testing.T) {
	var h Histogram
	h.Observe(1 << 62)
	s := h.Snapshot()
	if len(s.Buckets) != histBuckets {
		t.Fatalf("len(buckets) = %d, want %d", len(s.Buckets), histBuckets)
	}
	if s.Buckets[histBuckets-1] != 1 {
		t.Fatalf("last bucket = %d, want 1", s.Buckets[histBuckets-1])
	}
}

func TestBucketBounds(t *testing.T) {
	for i := 1; i < 20; i++ {
		lo, hi := BucketLowerBound(i), BucketUpperBound(i)
		if lo != 1<<(i-1) || hi != 1<<i-1 {
			t.Fatalf("bucket %d bounds [%d,%d]", i, lo, hi)
		}
	}
	if BucketUpperBound(0) != 0 || BucketLowerBound(0) != 0 {
		t.Fatal("bucket 0 must hold only zero")
	}
}

func TestQuantile(t *testing.T) {
	var h Histogram
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
	for i := 0; i < 99; i++ {
		h.Observe(100) // bucket 7: [64,127]
	}
	h.Observe(100_000) // bucket 17: [65536,131071]
	s := h.Snapshot()
	// p50 falls in the 100s bucket: upper bound 127.
	if got := s.Quantile(0.50); got != 127 {
		t.Fatalf("p50 = %v, want 127", got)
	}
	// p100 falls in the outlier's bucket, where the recorded max (100000)
	// is tighter than the bucket edge (131071).
	if got := s.Quantile(1); got != 100_000 {
		t.Fatalf("p100 = %v, want 100000", got)
	}
	if got := s.Mean(); got != float64(99*100+100_000)/100 {
		t.Fatalf("mean = %v", got)
	}
}

func TestQuantileMaxTighterThanBucket(t *testing.T) {
	var h Histogram
	h.Observe(1000) // bucket 10: [512,1023]
	if got := h.Snapshot().Quantile(0.5); got != 1000 {
		t.Fatalf("quantile = %v, want recorded max 1000", got)
	}
}

func TestSnapshotTrimsTrailingBuckets(t *testing.T) {
	var h Histogram
	h.Observe(1)
	s := h.Snapshot()
	if len(s.Buckets) != 2 {
		t.Fatalf("len(buckets) = %d, want 2 (trailing zeros trimmed)", len(s.Buckets))
	}
}

func TestSetSnapshotAndText(t *testing.T) {
	set := NewSet()
	set.Engine.Exec[StmtSelect].Observe(1500)
	set.Engine.RowsScanned.Add(10)
	set.Txn.Commits.Inc()
	set.WAL.Records.Add(3)
	set.Migration.TuplesLazy.Add(7)
	snap := set.Snapshot()
	snap.Migration.Tables = []TableProgress{{
		Statement: "split", Table: "customer",
		Migrated: 5, Total: 10, Progress: 0.5,
	}}
	if snap.Txn.Commits != 1 || snap.Engine.RowsScanned != 10 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if _, ok := snap.Engine.Exec["select"]; !ok {
		t.Fatal("select histogram missing from snapshot")
	}
	if _, ok := snap.Engine.Exec["insert"]; ok {
		t.Fatal("zero-count kinds must be omitted")
	}
	text := snap.Text()
	for _, want := range []string{
		"engine.exec.select", "engine.rows_scanned", "txn.commits",
		"wal.records", "migration.tuples_lazy",
		"migration.progress", "progress=0.500",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("Text() missing %q:\n%s", want, text)
		}
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Migration.TuplesLazy != 7 {
		t.Fatalf("round-trip tuples_lazy = %d", back.Migration.TuplesLazy)
	}
}

func TestHandlerFormats(t *testing.T) {
	set := NewSet()
	set.Txn.Commits.Inc()
	h := Handler(func() Snapshot { return set.Snapshot() })

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("default content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "txn.commits") {
		t.Fatalf("text body: %s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=json", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("json content type = %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Txn.Commits != 1 {
		t.Fatalf("json commits = %d", snap.Txn.Commits)
	}
}

func TestConcurrentObserve(t *testing.T) {
	var h Histogram
	var c Counter
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(int64(w*each + i))
				c.Inc()
				if i%100 == 0 {
					_ = h.Snapshot() // readers never block writers
				}
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*each || c.Load() != workers*each {
		t.Fatalf("count = %d counter = %d, want %d", s.Count, c.Load(), workers*each)
	}
	if s.Max != workers*each-1 {
		t.Fatalf("max = %d, want %d", s.Max, workers*each-1)
	}
}

// The hot-path cost numbers documented in DESIGN.md come from these.
func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(1234)
		}
	})
}
