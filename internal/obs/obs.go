// Package obs is BullFrog's lightweight observability substrate: atomic
// counters, gauges, and fixed-bucket histograms with a lock-free hot path.
// Every layer of the system (engine, txn, wal, core) records into a shared
// Set; readers call Snapshot for a consistent-enough, allocation-bounded view
// suitable for the shell's \metrics command, HTTP/expvar exposition, and the
// benchmark driver's per-second metric timelines.
//
// Design constraints, in priority order:
//
//  1. The write path must be cheap enough for the TPC-C hot path: a counter
//     increment is one atomic add; a histogram observation is three atomic
//     adds plus a bits.Len64 (no locks, no allocation, no time formatting).
//  2. Readers never block writers: Snapshot loads each atomic independently.
//     Cross-metric exactness is not guaranteed (nor needed for monitoring),
//     but every individual metric is monotone and exact.
//  3. No dependencies beyond the standard library.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 to preserve monotonicity).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an instantaneous value that can move in both directions.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// histBuckets is the number of power-of-two histogram buckets. Bucket i
// counts observations v with bits.Len64(v) == i, i.e. bucket 0 holds v == 0
// and bucket i holds 2^(i-1) <= v < 2^i. For nanosecond latencies, 40
// buckets cover up to ~9.2 minutes; anything larger clamps into the last
// bucket.
const histBuckets = 40

// Histogram is a fixed-bucket exponential histogram. Observe is lock-free
// and allocation-free; Snapshot materializes a point-in-time copy.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value (typically nanoseconds or bytes). Negative
// values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	i := bits.Len64(uint64(v))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ObserveSince records the elapsed nanoseconds since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(int64(time.Since(start))) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Snapshot copies the histogram's current state. Trailing empty buckets are
// trimmed so JSON output stays compact.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	last := -1
	var buckets [histBuckets]int64
	for i := range h.buckets {
		buckets[i] = h.buckets[i].Load()
		if buckets[i] > 0 {
			last = i
		}
	}
	if last >= 0 {
		s.Buckets = append([]int64(nil), buckets[:last+1]...)
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram. Buckets[i]
// counts observations in [BucketLowerBound(i), BucketUpperBound(i)].
type HistogramSnapshot struct {
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Max     int64   `json:"max"`
	Buckets []int64 `json:"buckets,omitempty"`
}

// BucketUpperBound returns the largest value bucket i can hold.
func BucketUpperBound(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return 1<<62 - 1 + 1<<62 // max int64
	}
	return 1<<i - 1
}

// BucketLowerBound returns the smallest value bucket i can hold.
func BucketLowerBound(i int) int64 {
	if i <= 0 {
		return 0
	}
	return 1 << (i - 1)
}

// Mean returns the average observation, or 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper bound for the p-quantile (p in [0,1]) using the
// bucket upper bounds — within a factor of 2 of the true value, which is
// enough for monitoring dashboards. Returns 0 when empty.
func (s HistogramSnapshot) Quantile(p float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := int64(p * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var cum int64
	for i, n := range s.Buckets {
		cum += n
		if cum > rank {
			ub := BucketUpperBound(i)
			if ub > s.Max {
				// The recorded max is a tighter bound than the bucket edge.
				return float64(s.Max)
			}
			return float64(ub)
		}
	}
	return float64(s.Max)
}
