package obs

// StmtKind classifies statements for per-kind execution metrics.
type StmtKind uint8

// Statement kinds.
const (
	StmtSelect StmtKind = iota
	StmtInsert
	StmtUpdate
	StmtDelete
	StmtDDL
	StmtOther
	NumStmtKinds // array bound, not a kind
)

func (k StmtKind) String() string {
	switch k {
	case StmtSelect:
		return "select"
	case StmtInsert:
		return "insert"
	case StmtUpdate:
		return "update"
	case StmtDelete:
		return "delete"
	case StmtDDL:
		return "ddl"
	default:
		return "other"
	}
}

// EngineMetrics instruments the query engine.
type EngineMetrics struct {
	// Exec records end-to-end ExecStmt latency (ns) per statement kind,
	// including failed statements.
	Exec [NumStmtKinds]Histogram
	// RowsScanned counts tuple slots examined by heap and index scans
	// (before visibility and filtering).
	RowsScanned Counter
	// RowsReturned counts rows emitted by plan execution.
	RowsReturned Counter
	// PlansBuilt counts compiled SELECT plans — the denominator a future
	// plan cache would reuse against.
	PlansBuilt Counter
	// PlansReused counts plan-cache hits (0 until a plan cache exists; the
	// hook is here so the cache PR is measurable from day one).
	PlansReused Counter
}

// TxnMetrics instruments the transaction manager.
type TxnMetrics struct {
	Begins Counter
	// Commits counts transactions that committed (txn layer, regardless of
	// durability path).
	Commits Counter
	Aborts  Counter
	// WriteConflicts counts first-updater-wins serialization failures
	// (ErrSerialization returned by CheckWritable).
	WriteConflicts Counter
	// LockTimeouts counts lock waits that expired (deadlock resolution).
	LockTimeouts Counter
	// LockWait records the wait time (ns) of contended lock acquisitions;
	// uncontended fast-path acquisitions are not recorded.
	LockWait Histogram
	// CommitLatency records durable commit latency (ns): WAL commit record +
	// flush + visibility publication, observed by the engine's Commit. Its
	// Count equals Commits when every commit goes through engine.Commit.
	CommitLatency Histogram
}

// WALMetrics instruments the redo log.
type WALMetrics struct {
	// Records counts appended log records.
	Records Counter
	// Bytes counts encoded log bytes (headers included).
	Bytes Counter
	// FlushLatency records buffered-writer drain latency (ns) — the cost of
	// pushing records to the OS, distinct from making them durable.
	FlushLatency Histogram
	// SyncLatency records device-sync (fsync) latency (ns). Zero-count when
	// the log target has no Syncer (in-memory logs, NoSync directories).
	SyncLatency Histogram
	// Syncs counts device syncs. Under group commit this stays far below the
	// commit count: one sync covers every committer in the group.
	Syncs Counter
	// GroupBatchSize records how many records each durable-epoch publication
	// covered — the group-commit amortization factor.
	GroupBatchSize Histogram
	// Checkpoints counts completed checkpoints.
	Checkpoints Counter
	// SegmentsLive gauges the number of live log segments (checkpoints delete
	// superseded segments, so this tracks bounded-recovery health).
	SegmentsLive Gauge
}

// MigrationMetrics instruments BullFrog's lazy-migration machinery.
type MigrationMetrics struct {
	// TuplesLazy counts output rows inserted by request-driven (lazy)
	// migration transactions.
	TuplesLazy Counter
	// TuplesBackground counts output rows inserted by background / catch-up
	// migration transactions.
	TuplesBackground Counter
	// EnsureLatency records EnsureMigrated latency (ns) while a migration is
	// active — the interception cost a client request pays.
	EnsureLatency Histogram
	// GateWait records time (ns) client transactions spent blocked entering
	// the gate (eager migration drains it; lazy migration never does).
	GateWait Histogram
	// BackfillWorkersActive gauges how many background backfill workers are
	// currently running a batch (0 when idle or no migration is active).
	BackfillWorkersActive Gauge
	// BackfillBatchSize gauges the backfill pool's current adaptive batch
	// size (granules for bitmap migrations, tuples for hash migrations).
	BackfillBatchSize Gauge
	// SchemaVersions counts schema versions recorded in the version registry
	// (one per lazy migration flip carrying version metadata).
	SchemaVersions Counter
	// SchemaRollbacks counts inverse migrations generated and started by the
	// registry's rollback path.
	SchemaRollbacks Counter
}

// CatalogMetrics instruments the multi-versioned catalog.
type CatalogMetrics struct {
	// VersionsLive gauges the catalog version chain length (head included) —
	// how many schema versions are still reachable by live snapshots. Vacuum
	// prunes it back toward 1.
	VersionsLive Gauge
	// InstallCASRetries counts CAS retries while publishing a new catalog
	// version at a migration's commit barrier. Non-zero means installs raced
	// regular DDL; sustained growth means the head is churning.
	InstallCASRetries Counter
}

// TraceMetrics instruments the trace subsystem's event ring — the health of
// the diagnostics themselves, not of the traced workload.
type TraceMetrics struct {
	// EventsDropped counts ring events a snapshot could not decode because a
	// concurrent writer was mid-write or lapped the reader.
	EventsDropped Counter
	// RingLaps counts full wraps of the event ring — how fast event history
	// is being overwritten relative to snapshot frequency.
	RingLaps Counter
}

// Set groups one instance of every layer's metrics. The engine owns a Set
// per database; sub-structs are shared by pointer with the layer that
// records into them.
type Set struct {
	Engine    *EngineMetrics
	Txn       *TxnMetrics
	WAL       *WALMetrics
	Migration *MigrationMetrics
	Catalog   *CatalogMetrics
	Trace     *TraceMetrics
}

// NewSet allocates a Set with all sub-structs present.
func NewSet() *Set {
	return &Set{
		Engine:    &EngineMetrics{},
		Txn:       &TxnMetrics{},
		WAL:       &WALMetrics{},
		Migration: &MigrationMetrics{},
		Catalog:   &CatalogMetrics{},
		Trace:     &TraceMetrics{},
	}
}

// Snapshot is a point-in-time copy of every metric in a Set, suitable for
// JSON encoding and diffing. All counters are monotone between snapshots of
// the same Set.
type Snapshot struct {
	Engine    EngineSnapshot    `json:"engine"`
	Txn       TxnSnapshot       `json:"txn"`
	WAL       WALSnapshot       `json:"wal"`
	Migration MigrationSnapshot `json:"migration"`
	Catalog   CatalogSnapshot   `json:"catalog"`
	Trace     TraceSnapshot     `json:"trace"`
}

// EngineSnapshot copies EngineMetrics.
type EngineSnapshot struct {
	Exec         map[string]HistogramSnapshot `json:"exec"`
	RowsScanned  int64                        `json:"rows_scanned"`
	RowsReturned int64                        `json:"rows_returned"`
	PlansBuilt   int64                        `json:"plans_built"`
	PlansReused  int64                        `json:"plans_reused"`
}

// TxnSnapshot copies TxnMetrics.
type TxnSnapshot struct {
	Begins         int64             `json:"begins"`
	Commits        int64             `json:"commits"`
	Aborts         int64             `json:"aborts"`
	WriteConflicts int64             `json:"write_conflicts"`
	LockTimeouts   int64             `json:"lock_timeouts"`
	LockWait       HistogramSnapshot `json:"lock_wait"`
	CommitLatency  HistogramSnapshot `json:"commit_latency"`
}

// WALSnapshot copies WALMetrics.
type WALSnapshot struct {
	Records        int64             `json:"records"`
	Bytes          int64             `json:"bytes"`
	FlushLatency   HistogramSnapshot `json:"flush_latency"`
	SyncLatency    HistogramSnapshot `json:"sync_latency"`
	Syncs          int64             `json:"syncs"`
	GroupBatchSize HistogramSnapshot `json:"group_batch_size"`
	Checkpoints    int64             `json:"checkpoints"`
	SegmentsLive   int64             `json:"segments_live"`
}

// MigrationSnapshot copies MigrationMetrics plus per-table progress gauges
// supplied by the migration controller at snapshot time.
type MigrationSnapshot struct {
	TuplesLazy            int64             `json:"tuples_lazy"`
	TuplesBackground      int64             `json:"tuples_background"`
	EnsureLatency         HistogramSnapshot `json:"ensure_latency"`
	GateWait              HistogramSnapshot `json:"gate_wait"`
	BackfillWorkersActive int64             `json:"backfill_workers_active"`
	BackfillBatchSize     int64             `json:"backfill_batch_size"`
	SchemaVersions        int64             `json:"schema_versions"`
	SchemaRollbacks       int64             `json:"schema_rollbacks"`
	Tables                []TableProgress   `json:"tables,omitempty"`
}

// CatalogSnapshot copies CatalogMetrics.
type CatalogSnapshot struct {
	VersionsLive      int64 `json:"versions_live"`
	InstallCASRetries int64 `json:"install_cas_retries"`
}

// TraceSnapshot copies TraceMetrics.
type TraceSnapshot struct {
	EventsDropped int64 `json:"events_dropped"`
	RingLaps      int64 `json:"ring_laps"`
}

// TableProgress is one migration statement's physical progress, derived from
// its bitmap or hash tracker.
type TableProgress struct {
	// Statement is the migration statement name.
	Statement string `json:"statement"`
	// Table is the driving (old-schema) table.
	Table string `json:"table"`
	// Migrated is the tracker's migrated granule/group count.
	Migrated int64 `json:"migrated"`
	// Total is the granule count for bitmap migrations; -1 for hash
	// migrations, whose group population is unknown until complete.
	Total int64 `json:"total"`
	// Progress is Migrated/Total in [0,1]; for hash migrations it is 0
	// until complete, then 1.
	Progress float64 `json:"progress"`
	// Complete reports whether the statement finished.
	Complete bool `json:"complete"`
}

// Snapshot copies the whole Set. Migration table progress is the caller's to
// fill in (the controller knows it; this package does not).
func (s *Set) Snapshot() Snapshot {
	var out Snapshot
	if s.Engine != nil {
		out.Engine = EngineSnapshot{
			Exec:         make(map[string]HistogramSnapshot, int(NumStmtKinds)),
			RowsScanned:  s.Engine.RowsScanned.Load(),
			RowsReturned: s.Engine.RowsReturned.Load(),
			PlansBuilt:   s.Engine.PlansBuilt.Load(),
			PlansReused:  s.Engine.PlansReused.Load(),
		}
		for k := StmtKind(0); k < NumStmtKinds; k++ {
			if hs := s.Engine.Exec[k].Snapshot(); hs.Count > 0 {
				out.Engine.Exec[k.String()] = hs
			}
		}
	}
	if s.Txn != nil {
		out.Txn = TxnSnapshot{
			Begins:         s.Txn.Begins.Load(),
			Commits:        s.Txn.Commits.Load(),
			Aborts:         s.Txn.Aborts.Load(),
			WriteConflicts: s.Txn.WriteConflicts.Load(),
			LockTimeouts:   s.Txn.LockTimeouts.Load(),
			LockWait:       s.Txn.LockWait.Snapshot(),
			CommitLatency:  s.Txn.CommitLatency.Snapshot(),
		}
	}
	if s.WAL != nil {
		out.WAL = WALSnapshot{
			Records:        s.WAL.Records.Load(),
			Bytes:          s.WAL.Bytes.Load(),
			FlushLatency:   s.WAL.FlushLatency.Snapshot(),
			SyncLatency:    s.WAL.SyncLatency.Snapshot(),
			Syncs:          s.WAL.Syncs.Load(),
			GroupBatchSize: s.WAL.GroupBatchSize.Snapshot(),
			Checkpoints:    s.WAL.Checkpoints.Load(),
			SegmentsLive:   s.WAL.SegmentsLive.Load(),
		}
	}
	if s.Migration != nil {
		out.Migration = MigrationSnapshot{
			TuplesLazy:            s.Migration.TuplesLazy.Load(),
			TuplesBackground:      s.Migration.TuplesBackground.Load(),
			EnsureLatency:         s.Migration.EnsureLatency.Snapshot(),
			GateWait:              s.Migration.GateWait.Snapshot(),
			BackfillWorkersActive: s.Migration.BackfillWorkersActive.Load(),
			BackfillBatchSize:     s.Migration.BackfillBatchSize.Load(),
			SchemaVersions:        s.Migration.SchemaVersions.Load(),
			SchemaRollbacks:       s.Migration.SchemaRollbacks.Load(),
		}
	}
	if s.Catalog != nil {
		out.Catalog = CatalogSnapshot{
			VersionsLive:      s.Catalog.VersionsLive.Load(),
			InstallCASRetries: s.Catalog.InstallCASRetries.Load(),
		}
	}
	if s.Trace != nil {
		out.Trace = TraceSnapshot{
			EventsDropped: s.Trace.EventsDropped.Load(),
			RingLaps:      s.Trace.RingLaps.Load(),
		}
	}
	return out
}

// SnapshotWithTables is Snapshot with the migration per-table progress
// filled in before the snapshot is returned — the snapshot is complete on
// return and is never mutated afterwards, so callers may hand it to
// concurrent readers (or mutate their copy) without racing other snapshots.
// tables must be freshly allocated by the caller; it is stored, not copied.
func (s *Set) SnapshotWithTables(tables []TableProgress) Snapshot {
	out := s.Snapshot()
	out.Migration.Tables = tables
	return out
}
