package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestHandlerAcceptHeader covers the Accept-header half of content
// negotiation (TestHandlerFormats covers ?format=json and the text default):
// any Accept value mentioning application/json gets JSON, other Accept
// values fall back to text.
func TestHandlerAcceptHeader(t *testing.T) {
	set := NewSet()
	set.Trace.EventsDropped.Add(3)
	set.Trace.RingLaps.Inc()
	h := Handler(func() Snapshot { return set.Snapshot() })

	for _, accept := range []string{
		"application/json",
		"text/html, application/json;q=0.9",
	} {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("GET", "/metrics", nil)
		req.Header.Set("Accept", accept)
		h.ServeHTTP(rec, req)
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("Accept %q: content type = %q, want application/json", accept, ct)
		}
		var snap Snapshot
		if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
			t.Fatalf("Accept %q: body is not JSON: %v", accept, err)
		}
		if snap.Trace.EventsDropped != 3 || snap.Trace.RingLaps != 1 {
			t.Fatalf("Accept %q: trace counters = %+v", accept, snap.Trace)
		}
	}

	// An Accept header that does not mention JSON keeps the text default,
	// and the text page carries the trace ring-health counters.
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "text/html")
	h.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Accept text/html: content type = %q, want text/plain", ct)
	}
	body := rec.Body.String()
	for _, line := range []string{"trace.events_dropped", "trace.ring_laps"} {
		if !strings.Contains(body, line) {
			t.Errorf("text page missing %q:\n%s", line, body)
		}
	}

	// ?format=json wins even when the Accept header asks for text.
	rec = httptest.NewRecorder()
	req = httptest.NewRequest("GET", "/metrics?format=json", nil)
	req.Header.Set("Accept", "text/html")
	h.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("?format=json with text Accept: content type = %q", ct)
	}
}
