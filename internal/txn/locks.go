package txn

import (
	"context"
	"errors"
	"sync"
	"time"

	"github.com/bullfrogdb/bullfrog/internal/obs/trace"
)

// ErrLockTimeout is returned when a lock cannot be acquired before the
// deadline. Timeouts double as deadlock resolution: the timed-out transaction
// aborts and retries, breaking any cycle.
var ErrLockTimeout = errors.New("txn: lock wait timeout (possible deadlock)")

// LockKey identifies a lockable object. Space distinguishes tables and
// indexes; A/B carry the tuple TID or a key hash.
type LockKey struct {
	Space uint64
	A, B  uint64
}

const lockShardCount = 128

type lockEntry struct {
	owner    uint64
	released chan struct{} // closed when the owner releases
}

type lockShard struct {
	mu    sync.Mutex
	locks map[LockKey]*lockEntry
}

// LockTable is a sharded table of exclusive locks keyed by LockKey. Locks are
// owned by transaction ids and held until explicitly released (normally at
// transaction end). Create with NewLockTable.
type LockTable struct {
	shards [lockShardCount]lockShard
}

// NewLockTable returns an initialized lock table.
func NewLockTable() *LockTable {
	lt := &LockTable{}
	for i := range lt.shards {
		lt.shards[i].locks = make(map[LockKey]*lockEntry)
	}
	return lt
}

func (lt *LockTable) shardFor(k LockKey) *lockShard {
	h := k.Space*0x9E3779B97F4A7C15 ^ k.A*0xBF58476D1CE4E5B9 ^ k.B*0x94D049BB133111EB
	return &lt.shards[h%lockShardCount]
}

// Acquire obtains the exclusive lock for key on behalf of xid, waiting up to
// timeout. Re-acquiring a lock already held by xid succeeds immediately.
func (lt *LockTable) Acquire(xid uint64, key LockKey, timeout time.Duration) error {
	return lt.AcquireContext(nil, xid, key, timeout)
}

// AcquireContext is Acquire bounded by a context: a waiter parked in the lock
// queue wakes as soon as ctx is done and returns context.Cause(ctx) — not
// ErrLockTimeout, so callers can tell cancellation from deadlock resolution.
// A nil ctx waits with only the timeout bound. Cancellation never perturbs
// the queue: a cancelled waiter held nothing, and the owner's release channel
// still wakes every remaining waiter.
func (lt *LockTable) AcquireContext(ctx context.Context, xid uint64, key LockKey, timeout time.Duration) error {
	var done <-chan struct{}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return context.Cause(ctx)
		}
		done = ctx.Done()
	}
	s := lt.shardFor(key)
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		s.mu.Lock()
		e := s.locks[key]
		if e == nil {
			s.locks[key] = &lockEntry{owner: xid, released: make(chan struct{})}
			s.mu.Unlock()
			return nil
		}
		if e.owner == xid {
			s.mu.Unlock()
			return nil
		}
		ch := e.released
		s.mu.Unlock()
		if timer == nil {
			timer = time.NewTimer(timeout)
		}
		select {
		case <-ch:
			// Owner released; loop and retry.
		case <-timer.C:
			return ErrLockTimeout
		case <-done:
			return context.Cause(ctx)
		}
	}
}

// TryAcquire obtains the lock only if it is free (or already ours),
// reporting success.
func (lt *LockTable) TryAcquire(xid uint64, key LockKey) bool {
	s := lt.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.locks[key]
	if e == nil {
		s.locks[key] = &lockEntry{owner: xid, released: make(chan struct{})}
		return true
	}
	return e.owner == xid
}

// Release frees the lock if xid owns it, waking all waiters.
func (lt *LockTable) Release(xid uint64, key LockKey) {
	s := lt.shardFor(key)
	s.mu.Lock()
	e := s.locks[key]
	if e != nil && e.owner == xid {
		delete(s.locks, key)
		close(e.released)
	}
	s.mu.Unlock()
}

// Owner reports the current owner of the key's lock, or 0.
func (lt *LockTable) Owner(key LockKey) uint64 {
	s := lt.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e := s.locks[key]; e != nil {
		return e.owner
	}
	return 0
}

// DefaultLockTimeout is how long a transaction waits for a row or key lock
// before giving up (and typically aborting). It bounds deadlock stalls.
const DefaultLockTimeout = 250 * time.Millisecond

// Lock acquires key for the transaction through the manager's shared lock
// table, registering it for release at transaction end.
func (t *Txn) Lock(key LockKey) error {
	return t.LockTimeout(key, DefaultLockTimeout)
}

// LockTimeout is Lock with an explicit wait bound. Contended acquisitions
// feed the lock-wait histogram; the uncontended fast path records nothing.
// The wait is additionally bounded by the transaction's statement context
// (SetContext): a cancelled statement stops waiting in the lock queue
// immediately, returning the context's cause.
func (t *Txn) LockTimeout(key LockKey, timeout time.Duration) error {
	if t.done {
		return ErrTxnDone
	}
	if t.m.locks.TryAcquire(t.id, key) {
		t.registerLock(key)
		return nil
	}
	start := time.Now()
	err := t.m.locks.AcquireContext(t.ctx, t.id, key, timeout)
	d := time.Since(start)
	t.m.metrics.LockWait.Observe(int64(d))
	if sp := trace.FromContext(t.ctx); sp != nil {
		sp.Add(trace.PhaseLockWait, d)
	}
	if err != nil {
		if errors.Is(err, ErrLockTimeout) {
			t.m.metrics.LockTimeouts.Inc()
		}
		return err
	}
	t.registerLock(key)
	return nil
}

// TryLock acquires the key only if free, registering it on success.
func (t *Txn) TryLock(key LockKey) bool {
	if t.done {
		return false
	}
	if !t.m.locks.TryAcquire(t.id, key) {
		return false
	}
	t.registerLock(key)
	return true
}

func (t *Txn) registerLock(key LockKey) {
	for _, k := range t.lockKeys {
		if k == key {
			return
		}
	}
	t.lockKeys = append(t.lockKeys, key)
}

// Locks exposes the manager's lock table (used by the engine's unique-key
// arbitration and by tests).
func (m *Manager) Locks() *LockTable { return m.locks }
