package txn

import (
	"testing"
)

func TestCommittedAtOrBefore(t *testing.T) {
	m := NewManager()
	t1 := m.Begin()
	t1.Commit()
	seq1 := m.CurrentSeq()
	t2 := m.Begin()
	t2.Commit()
	seq2 := m.CurrentSeq()

	if !m.CommittedAtOrBefore(t1.ID(), seq1) {
		t.Error("t1 committed at seq1")
	}
	if m.CommittedAtOrBefore(t2.ID(), seq1) {
		t.Error("t2 committed after seq1")
	}
	if !m.CommittedAtOrBefore(t2.ID(), seq2) {
		t.Error("t2 committed at seq2")
	}
	// Active and aborted transactions never qualify.
	t3 := m.Begin()
	if m.CommittedAtOrBefore(t3.ID(), seq2+10) {
		t.Error("active txn cannot be committed-before")
	}
	t3.Abort()
	if m.CommittedAtOrBefore(t3.ID(), seq2+10) {
		t.Error("aborted txn cannot be committed-before")
	}
	// Pruned (unknown) ids report true — they are below every horizon.
	if !m.CommittedAtOrBefore(999999, 0) {
		t.Error("unknown ids should report committed")
	}
}

func TestVisibleRowOnNilChain(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	defer tx.Abort()
	if _, ok := tx.VisibleRow(nil); ok {
		t.Error("nil chain should be invisible")
	}
}

func TestSnapshotAccessors(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	if tx.Manager() != m {
		t.Error("Manager accessor")
	}
	if tx.Snapshot().Seq != 0 {
		t.Errorf("fresh snapshot seq = %d", tx.Snapshot().Seq)
	}
	if tx.String() == "" {
		t.Error("String")
	}
	if tx.Done() || tx.Aborted() {
		t.Error("fresh txn flags")
	}
	tx.Abort()
	if !tx.Done() || !tx.Aborted() {
		t.Error("aborted txn flags")
	}
}
