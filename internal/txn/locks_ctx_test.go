package txn

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestAcquireContextCancelWakesWaiter parks a waiter in the lock queue behind
// a held lock and cancels its context: the waiter must wake promptly with the
// context's cause — not ErrLockTimeout — and the queue must stay consistent
// (a later waiter still acquires once the owner releases).
func TestAcquireContextCancelWakesWaiter(t *testing.T) {
	lt := NewLockTable()
	key := LockKey{Space: 1, A: 2, B: 3}
	if err := lt.Acquire(1, key, time.Second); err != nil {
		t.Fatalf("owner acquire: %v", err)
	}

	cause := errors.New("statement cancelled")
	ctx, cancel := context.WithCancelCause(context.Background())
	errCh := make(chan error, 1)
	go func() {
		// Generous timeout: the test fails fast only if cancellation wakes
		// the waiter; a timeout return here means the ctx arm never fired.
		errCh <- lt.AcquireContext(ctx, 2, key, 30*time.Second)
	}()

	// Let the waiter park, then cancel.
	time.Sleep(20 * time.Millisecond)
	cancel(cause)
	select {
	case err := <-errCh:
		if !errors.Is(err, cause) {
			t.Fatalf("cancelled waiter returned %v, want cause %v", err, cause)
		}
		if errors.Is(err, ErrLockTimeout) {
			t.Fatalf("cancelled waiter returned ErrLockTimeout, want context cause")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter did not wake")
	}

	// The cancelled waiter held nothing: the owner still owns the lock, and
	// a fresh waiter acquires as soon as the owner releases.
	if got := lt.Owner(key); got != 1 {
		t.Fatalf("owner after cancellation = %d, want 1", got)
	}
	acquired := make(chan error, 1)
	go func() {
		acquired <- lt.Acquire(3, key, 5*time.Second)
	}()
	time.Sleep(10 * time.Millisecond)
	lt.Release(1, key)
	select {
	case err := <-acquired:
		if err != nil {
			t.Fatalf("waiter after release: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter did not acquire after release")
	}
	if got := lt.Owner(key); got != 3 {
		t.Fatalf("owner after handoff = %d, want 3", got)
	}
}

// TestAcquireContextPreCancelled: a context that is already done fails fast
// with its cause, before touching the queue.
func TestAcquireContextPreCancelled(t *testing.T) {
	lt := NewLockTable()
	key := LockKey{Space: 1}
	cause := errors.New("dead on arrival")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	if err := lt.AcquireContext(ctx, 1, key, time.Second); !errors.Is(err, cause) {
		t.Fatalf("pre-cancelled acquire returned %v, want %v", err, cause)
	}
	if got := lt.Owner(key); got != 0 {
		t.Fatalf("pre-cancelled acquire took the lock (owner=%d)", got)
	}
}

// TestAcquireNilContextStillTimesOut: the nil-context path keeps the old
// deadlock-resolution semantics — ErrLockTimeout after the wait bound.
func TestAcquireNilContextStillTimesOut(t *testing.T) {
	lt := NewLockTable()
	key := LockKey{Space: 7}
	if err := lt.Acquire(1, key, time.Second); err != nil {
		t.Fatalf("owner acquire: %v", err)
	}
	if err := lt.Acquire(2, key, 20*time.Millisecond); !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("contended acquire returned %v, want ErrLockTimeout", err)
	}
}

// TestTxnLockCancelNotCountedAsTimeout: a statement-context cancellation in
// Txn.LockTimeout must return the cause and must not bump the LockTimeouts
// deadlock counter.
func TestTxnLockCancelNotCountedAsTimeout(t *testing.T) {
	m := NewManager()
	holder := m.Begin()
	key := LockKey{Space: 9, A: 1}
	if err := holder.Lock(key); err != nil {
		t.Fatalf("holder lock: %v", err)
	}

	waiter := m.Begin()
	cause := errors.New("query aborted by client")
	ctx, cancel := context.WithCancelCause(context.Background())
	waiter.SetContext(ctx)
	errCh := make(chan error, 1)
	go func() {
		errCh <- waiter.LockTimeout(key, 30*time.Second)
	}()
	time.Sleep(20 * time.Millisecond)
	cancel(cause)
	select {
	case err := <-errCh:
		if !errors.Is(err, cause) {
			t.Fatalf("cancelled LockTimeout returned %v, want %v", err, cause)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled LockTimeout did not return")
	}
	if n := m.Obs().LockTimeouts.Load(); n != 0 {
		t.Fatalf("cancellation counted as lock timeout (LockTimeouts=%d)", n)
	}
}
