package txn

import (
	"errors"
	"sync"
	"testing"

	"github.com/bullfrogdb/bullfrog/internal/storage"
	"github.com/bullfrogdb/bullfrog/internal/types"
)

func row(v int64) types.Row { return types.Row{types.NewInt(v)} }

func TestCommitVisibility(t *testing.T) {
	m := NewManager()
	h := storage.NewHeap(0)

	w := m.Begin()
	tid := h.Insert(w.ID(), row(1))

	// A reader that started before the writer commits must not see the row.
	r1 := m.Begin()
	h.View(tid, func(v *storage.Version) {
		if _, ok := r1.VisibleRow(v); ok {
			t.Error("uncommitted insert visible to concurrent reader")
		}
	})
	// The writer sees its own insert.
	h.View(tid, func(v *storage.Version) {
		if _, ok := w.VisibleRow(v); !ok {
			t.Error("writer cannot see its own insert")
		}
	})

	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	// r1's snapshot predates the commit.
	h.View(tid, func(v *storage.Version) {
		if _, ok := r1.VisibleRow(v); ok {
			t.Error("commit visible to older snapshot")
		}
	})
	// A new reader sees it.
	r2 := m.Begin()
	h.View(tid, func(v *storage.Version) {
		if got, ok := r2.VisibleRow(v); !ok || got[0].Int() != 1 {
			t.Errorf("committed insert not visible to new reader: %v %v", got, ok)
		}
	})
	r1.Abort()
	r2.Abort()
}

func TestAbortedInsertInvisible(t *testing.T) {
	m := NewManager()
	h := storage.NewHeap(0)
	w := m.Begin()
	tid := h.Insert(w.ID(), row(9))
	w.Abort()
	r := m.Begin()
	h.View(tid, func(v *storage.Version) {
		if _, ok := r.VisibleRow(v); ok {
			t.Error("aborted insert visible")
		}
	})
	if m.StatusOf(w.ID()) != StatusAborted {
		t.Error("status should be aborted")
	}
}

func TestUpdateVisibilityChain(t *testing.T) {
	m := NewManager()
	h := storage.NewHeap(0)

	w1 := m.Begin()
	tid := h.Insert(w1.ID(), row(10))
	w1.Commit()

	rOld := m.Begin() // snapshot with value 10

	w2 := m.Begin()
	h.Mutate(tid, func(s storage.Slot) error {
		s.Push(w2.ID(), row(20))
		return nil
	})
	w2.Commit()

	rNew := m.Begin()
	h.View(tid, func(v *storage.Version) {
		if got, _ := rOld.VisibleRow(v); got[0].Int() != 10 {
			t.Errorf("old snapshot sees %v, want 10", got)
		}
		if got, _ := rNew.VisibleRow(v); got[0].Int() != 20 {
			t.Errorf("new snapshot sees %v, want 20", got)
		}
	})
	rOld.Abort()
	rNew.Abort()
}

func TestDeleteVisibility(t *testing.T) {
	m := NewManager()
	h := storage.NewHeap(0)
	w := m.Begin()
	tid := h.Insert(w.ID(), row(5))
	w.Commit()

	rBefore := m.Begin()
	d := m.Begin()
	h.Mutate(tid, func(s storage.Slot) error { return s.SetXMax(d.ID()) })
	// Deleter no longer sees the row.
	h.View(tid, func(v *storage.Version) {
		if _, ok := d.VisibleRow(v); ok {
			t.Error("deleter still sees its deleted row")
		}
	})
	d.Commit()

	rAfter := m.Begin()
	h.View(tid, func(v *storage.Version) {
		if _, ok := rBefore.VisibleRow(v); !ok {
			t.Error("pre-delete snapshot should still see the row")
		}
		if _, ok := rAfter.VisibleRow(v); ok {
			t.Error("post-delete snapshot should not see the row")
		}
	})
	rBefore.Abort()
	rAfter.Abort()
}

func TestCheckWritable(t *testing.T) {
	m := NewManager()
	h := storage.NewHeap(0)
	w := m.Begin()
	tid := h.Insert(w.ID(), row(1))
	w.Commit()

	// t1 snapshots, then t2 updates and commits, then t1 tries to write.
	t1 := m.Begin()
	t2 := m.Begin()
	h.Mutate(tid, func(s storage.Slot) error {
		ok, err := t2.CheckWritable(s.Head())
		if !ok || err != nil {
			t.Fatalf("t2 should be able to write: %v %v", ok, err)
		}
		s.Push(t2.ID(), row(2))
		return nil
	})
	t2.Commit()

	h.Mutate(tid, func(s storage.Slot) error {
		ok, err := t1.CheckWritable(s.Head())
		if ok || !errors.Is(err, ErrSerialization) {
			t.Errorf("first-updater-wins violated: ok=%v err=%v", ok, err)
		}
		return nil
	})
	t1.Abort()

	// A fresh txn can write the new head.
	t3 := m.Begin()
	h.Mutate(tid, func(s storage.Slot) error {
		ok, err := t3.CheckWritable(s.Head())
		if !ok || err != nil {
			t.Errorf("t3 should write cleanly: %v %v", ok, err)
		}
		return nil
	})
	t3.Abort()
}

func TestOnAbortUndoOrderAndOnCommit(t *testing.T) {
	m := NewManager()
	var order []int
	tx := m.Begin()
	tx.OnAbort(func() { order = append(order, 1) })
	tx.OnAbort(func() { order = append(order, 2) })
	tx.Abort()
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Errorf("undo order = %v, want [2 1]", order)
	}

	committed := false
	tx2 := m.Begin()
	tx2.OnCommit(func() { committed = true })
	tx2.Commit()
	if !committed {
		t.Error("OnCommit did not run")
	}

	// Finished txns refuse further work.
	if err := tx2.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Errorf("double commit: %v", err)
	}
	tx2.Abort() // no-op, must not panic
	if err := tx2.Lock(LockKey{}); !errors.Is(err, ErrTxnDone) {
		t.Errorf("lock after commit: %v", err)
	}
}

func TestOldestActiveSnapshotAndPrune(t *testing.T) {
	m := NewManager()
	a := m.Begin()
	aSnap := a.Snapshot().Seq
	b := m.Begin()
	b.Commit()
	if m.OldestActiveSnapshot() != aSnap {
		t.Errorf("OldestActiveSnapshot = %d, want %d", m.OldestActiveSnapshot(), aSnap)
	}
	if m.ActiveCount() != 1 {
		t.Errorf("ActiveCount = %d", m.ActiveCount())
	}
	a.Commit()
	horizon := m.CurrentSeq()
	pruned := m.PruneStates(horizon)
	if pruned < 2 {
		t.Errorf("pruned %d states, want >= 2", pruned)
	}
	// Pruned committed txns are still reported committed.
	if m.StatusOf(a.ID()) != StatusCommitted {
		t.Error("pruned txn should report committed")
	}
}

func TestStatusString(t *testing.T) {
	if StatusActive.String() != "active" || StatusCommitted.String() != "committed" ||
		StatusAborted.String() != "aborted" || Status(9).String() != "unknown" {
		t.Error("Status.String() labels wrong")
	}
}

// TestSnapshotIsolationInvariant runs concurrent transfer transactions
// between two "accounts" and checks that every reader sees a constant total —
// the classic SI invariant.
func TestSnapshotIsolationInvariant(t *testing.T) {
	m := NewManager()
	h := storage.NewHeap(0)
	setup := m.Begin()
	acctA := h.Insert(setup.ID(), row(500))
	acctB := h.Insert(setup.ID(), row(500))
	setup.Commit()

	readRow := func(tx *Txn, tid storage.TID) (int64, bool) {
		var v int64
		var ok bool
		h.View(tid, func(head *storage.Version) {
			var r types.Row
			r, ok = tx.VisibleRow(head)
			if ok {
				v = r[0].Int()
			}
		})
		return v, ok
	}

	// transfer moves amount from A to B in one transaction; reports commit.
	transfer := func(amount int64) bool {
		tx := m.Begin()
		for _, tid := range []storage.TID{acctA, acctB} {
			if err := tx.Lock(LockKey{Space: 1, A: uint64(tid.Page), B: uint64(tid.Slot)}); err != nil {
				tx.Abort()
				return false
			}
		}
		for i, tid := range []storage.TID{acctA, acctB} {
			delta := amount
			if i == 0 {
				delta = -amount
			}
			tid := tid
			err := h.Mutate(tid, func(s storage.Slot) error {
				ok, err := tx.CheckWritable(s.Head())
				if err != nil || !ok {
					return ErrSerialization
				}
				s.Push(tx.ID(), row(s.Head().Row[0].Int()+delta))
				return nil
			})
			if err != nil {
				tx.Abort()
				return false
			}
			tx.OnAbort(func() {
				h.Mutate(tid, func(sl storage.Slot) error {
					sl.Pop(tx.ID())
					return nil
				})
			})
		}
		tx.Commit()
		return true
	}

	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(amount int64) {
			defer writers.Done()
			for i := 0; i < 200; i++ {
				transfer(amount)
			}
		}(int64(w + 1))
	}

	stop := make(chan struct{})
	readerErr := make(chan error, 2)
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tx := m.Begin()
				a, okA := readRow(tx, acctA)
				b, okB := readRow(tx, acctB)
				tx.Abort()
				if !okA || !okB {
					readerErr <- errors.New("row disappeared")
					return
				}
				if a+b != 1000 {
					readerErr <- errors.New("invariant broken: total != 1000")
					return
				}
			}
		}()
	}

	writers.Wait()
	close(stop)
	readers.Wait()
	select {
	case err := <-readerErr:
		t.Fatal(err)
	default:
	}
}
