// Package txn implements snapshot-isolation transaction management: begin /
// commit / abort, commit-sequence snapshots, MVCC visibility over storage
// version chains, and a sharded lock table with timeout-based deadlock
// resolution.
//
// BullFrog's migration machinery (paper §3.2) runs each unit of migration
// work in its own transaction, separate from the client transaction, so this
// package is exercised heavily by internal/core.
package txn

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/bullfrogdb/bullfrog/internal/obs"
	"github.com/bullfrogdb/bullfrog/internal/storage"
	"github.com/bullfrogdb/bullfrog/internal/types"
	"github.com/bullfrogdb/bullfrog/internal/wal"
)

// Status is a transaction's lifecycle state.
type Status uint8

// Transaction statuses.
const (
	StatusActive Status = iota
	StatusCommitted
	StatusAborted
)

func (s Status) String() string {
	switch s {
	case StatusActive:
		return "active"
	case StatusCommitted:
		return "committed"
	case StatusAborted:
		return "aborted"
	default:
		return "unknown"
	}
}

// ErrTxnDone is returned when operating on a finished transaction.
var ErrTxnDone = errors.New("txn: transaction already finished")

// ErrSerialization is returned on a first-updater-wins write-write conflict;
// the client should retry the transaction.
var ErrSerialization = errors.New("txn: could not serialize access due to concurrent update")

const stateShards = 64

type txnState struct {
	status    Status
	commitSeq uint64
}

type stateShard struct {
	mu     sync.RWMutex
	states map[uint64]txnState
}

// Manager coordinates transactions. The zero value is not usable; call
// NewManager.
type Manager struct {
	nextID    atomic.Uint64
	commitSeq atomic.Uint64
	commitMu  sync.Mutex // serializes commit-sequence assignment with status publication

	shards [stateShards]stateShard
	locks  *LockTable

	metrics *obs.TxnMetrics

	activeMu sync.Mutex
	active   map[uint64]uint64 // txn id -> snapshot seq, for the vacuum horizon
}

// NewManager returns an empty transaction manager.
func NewManager() *Manager {
	m := &Manager{active: make(map[uint64]uint64), locks: NewLockTable(), metrics: &obs.TxnMetrics{}}
	for i := range m.shards {
		m.shards[i].states = make(map[uint64]txnState)
	}
	return m
}

// Obs returns the manager's transaction metrics. Never nil.
func (m *Manager) Obs() *obs.TxnMetrics { return m.metrics }

func (m *Manager) shardFor(xid uint64) *stateShard {
	return &m.shards[xid%stateShards]
}

func (m *Manager) setState(xid uint64, st txnState) {
	s := m.shardFor(xid)
	s.mu.Lock()
	s.states[xid] = st
	s.mu.Unlock()
}

func (m *Manager) state(xid uint64) (txnState, bool) {
	s := m.shardFor(xid)
	s.mu.RLock()
	st, ok := s.states[xid]
	s.mu.RUnlock()
	return st, ok
}

// StatusOf reports a transaction's status. Unknown ids (e.g. pruned history)
// report committed, since pruning only removes durably committed history.
func (m *Manager) StatusOf(xid uint64) Status {
	st, ok := m.state(xid)
	if !ok {
		return StatusCommitted
	}
	return st.status
}

// committedBefore reports whether xid committed with sequence <= seq.
func (m *Manager) committedBefore(xid, seq uint64) bool {
	st, ok := m.state(xid)
	if !ok {
		return true // pruned: committed before any live snapshot
	}
	return st.status == StatusCommitted && st.commitSeq <= seq
}

// Snapshot captures a visibility horizon: all transactions that committed
// with sequence <= Seq are visible.
type Snapshot struct {
	Seq uint64
}

// Txn is a single transaction handle. It is not safe for concurrent use by
// multiple goroutines.
type Txn struct {
	m       *Manager
	id      uint64
	snap    Snapshot
	done    bool
	aborted bool

	// ctx is the statement context bounding this transaction's blocking waits
	// (lock-queue parking in LockTimeout). nil means no cancellation bound.
	// Set per statement by the engine's ExecStmtContext; because a Txn is
	// single-goroutine by contract, no synchronization is needed.
	ctx context.Context

	lockKeys []LockKey
	undo     []func() // run in reverse order on abort
	onCommit []func() // run after the transaction becomes visible

	// redo buffers the transaction's WAL records until commit: the engine
	// appends the whole batch (plus the commit record) to the log in one
	// atomic, durable write, so aborted transactions never reach the log and
	// recovery replays in a single pass. Single-goroutine like the Txn.
	redo []wal.Record
}

// AppendRedo buffers a redo record for commit-time logging.
func (t *Txn) AppendRedo(rec wal.Record) { t.redo = append(t.redo, rec) }

// TakeRedo returns the buffered redo records and clears the buffer; the
// engine calls this once at commit.
func (t *Txn) TakeRedo() []wal.Record {
	r := t.redo
	t.redo = nil
	return r
}

// Begin starts a new transaction with a fresh snapshot.
func (m *Manager) Begin() *Txn {
	id := m.nextID.Add(1)
	snap := Snapshot{Seq: m.commitSeq.Load()}
	m.setState(id, txnState{status: StatusActive})
	m.activeMu.Lock()
	m.active[id] = snap.Seq
	m.activeMu.Unlock()
	m.metrics.Begins.Inc()
	return &Txn{m: m, id: id, snap: snap}
}

// ID returns the transaction id (xid). IDs start at 1; 0 is never a valid
// xid, so storage uses 0 as "no transaction".
func (t *Txn) ID() uint64 { return t.id }

// Snapshot returns the transaction's visibility snapshot.
func (t *Txn) Snapshot() Snapshot { return t.snap }

// Manager returns the owning manager.
func (t *Txn) Manager() *Manager { return t.m }

// SetContext installs ctx as the transaction's statement context — the
// cancellation bound for its blocking waits (see LockTimeout) — and returns
// the previous one so callers can scope the context to a single statement:
//
//	prev := tx.SetContext(ctx)
//	defer tx.SetContext(prev)
//
// A nil ctx removes the bound. Like every Txn method, it must only be called
// from the transaction's own goroutine.
func (t *Txn) SetContext(ctx context.Context) context.Context {
	prev := t.ctx
	t.ctx = ctx
	return prev
}

// Context returns the transaction's statement context (nil when unbounded).
func (t *Txn) Context() context.Context { return t.ctx }

// Done reports whether the transaction has committed or aborted.
func (t *Txn) Done() bool { return t.done }

// Aborted reports whether the transaction ended in abort.
func (t *Txn) Aborted() bool { return t.aborted }

// OnAbort registers an undo action, run in reverse registration order if the
// transaction aborts.
func (t *Txn) OnAbort(f func()) { t.undo = append(t.undo, f) }

// OnCommit registers an action run immediately after the transaction commits
// (becomes visible).
func (t *Txn) OnCommit(f func()) { t.onCommit = append(t.onCommit, f) }

// Commit makes the transaction's effects visible to later snapshots and
// releases its locks.
func (t *Txn) Commit() error {
	if t.done {
		return ErrTxnDone
	}
	t.m.commitMu.Lock()
	seq := t.m.commitSeq.Load() + 1
	t.m.setState(t.id, txnState{status: StatusCommitted, commitSeq: seq})
	t.m.commitSeq.Store(seq)
	t.m.commitMu.Unlock()
	t.m.metrics.Commits.Inc()
	t.finish()
	for _, f := range t.onCommit {
		f()
	}
	return nil
}

// Abort rolls back the transaction: undo actions run in reverse order, then
// the transaction is marked aborted and locks are released.
func (t *Txn) Abort() {
	if t.done {
		return
	}
	for i := len(t.undo) - 1; i >= 0; i-- {
		t.undo[i]()
	}
	t.m.setState(t.id, txnState{status: StatusAborted})
	t.aborted = true
	t.m.metrics.Aborts.Inc()
	t.finish()
}

func (t *Txn) finish() {
	t.done = true
	t.m.activeMu.Lock()
	delete(t.m.active, t.id)
	t.m.activeMu.Unlock()
	for _, k := range t.lockKeys {
		t.m.locks.Release(t.id, k)
	}
	t.lockKeys = nil
	t.undo = nil
	t.redo = nil
}

// OldestActiveSnapshot returns the smallest snapshot sequence among active
// transactions, or the current commit sequence when none are active. Versions
// dead before this horizon can be vacuumed.
func (m *Manager) OldestActiveSnapshot() uint64 {
	m.activeMu.Lock()
	defer m.activeMu.Unlock()
	min := m.commitSeq.Load()
	for _, seq := range m.active {
		if seq < min {
			min = seq
		}
	}
	return min
}

// CurrentSeq returns the latest commit sequence.
func (m *Manager) CurrentSeq() uint64 { return m.commitSeq.Load() }

// InstallBarrier reserves the next commit sequence for a non-transactional
// publication (a catalog version install), runs publish(seq) while holding
// the commit mutex so no transaction can commit at or after seq until
// publish returns, then consumes seq. The effect: every snapshot taken
// before the barrier sees the world without the publication, every snapshot
// taken after sees it — the versioned-catalog equivalent of a schema flip at
// a commit timestamp. publish must not block (no I/O, no lock waits); on
// error the sequence is not consumed and the error is returned.
func (m *Manager) InstallBarrier(publish func(seq uint64) error) (uint64, error) {
	m.commitMu.Lock()
	defer m.commitMu.Unlock()
	seq := m.commitSeq.Load() + 1
	if err := publish(seq); err != nil {
		return 0, err
	}
	m.commitSeq.Store(seq)
	return seq, nil
}

// ActiveCount returns the number of in-flight transactions.
func (m *Manager) ActiveCount() int {
	m.activeMu.Lock()
	defer m.activeMu.Unlock()
	return len(m.active)
}

// --- MVCC visibility ---

// visibleCreated reports whether a version's creator is visible to the txn.
func (t *Txn) visibleCreated(v *storage.Version) bool {
	return v.XMin == t.id || t.m.committedBefore(v.XMin, t.snap.Seq)
}

// visibleDeleted reports whether a version's deletion is visible to the txn.
func (t *Txn) visibleDeleted(v *storage.Version) bool {
	if v.XMax == 0 {
		return false
	}
	return v.XMax == t.id || t.m.committedBefore(v.XMax, t.snap.Seq)
}

// VisibleRow walks a version chain (newest first) and returns the row
// visible under the transaction's snapshot, or ok=false if the logical tuple
// does not exist for this transaction. Must be called under the page latch
// (i.e. inside heap View/Mutate/Scan callbacks).
func (t *Txn) VisibleRow(head *storage.Version) (types.Row, bool) {
	for v := head; v != nil; v = v.Next {
		if !t.visibleCreated(v) {
			continue
		}
		if t.visibleDeleted(v) {
			return nil, false
		}
		return v.Row, true
	}
	return nil, false
}

// CheckWritable verifies the head version can be updated or deleted by this
// transaction under first-updater-wins rules, assuming the tuple's write
// lock is already held. It returns ErrSerialization when a concurrent
// transaction committed a newer version after our snapshot, and ok=false
// (no error) when the tuple is invisible or already deleted for us.
func (t *Txn) CheckWritable(head *storage.Version) (bool, error) {
	_, ok := t.VisibleRow(head)
	if !ok {
		// Distinguish "never existed for us" from "someone newer touched it".
		if head.XMin != t.id && !t.m.committedBefore(head.XMin, t.snap.Seq) && t.m.StatusOf(head.XMin) == StatusCommitted {
			t.m.metrics.WriteConflicts.Inc()
			return false, ErrSerialization
		}
		if head.XMax != 0 && head.XMax != t.id && t.m.StatusOf(head.XMax) == StatusCommitted && !t.m.committedBefore(head.XMax, t.snap.Seq) {
			t.m.metrics.WriteConflicts.Inc()
			return false, ErrSerialization
		}
		return false, nil
	}
	// Visible, but only the head version may be written: if the visible
	// version is not the head, the head was written after our snapshot.
	if head.XMin != t.id && !t.m.committedBefore(head.XMin, t.snap.Seq) {
		t.m.metrics.WriteConflicts.Inc()
		return false, ErrSerialization
	}
	return true, nil
}

// CommittedAtOrBefore reports whether xid committed with sequence <= seq.
// Unknown (pruned) ids report true, since pruning only removes history below
// every live horizon.
func (m *Manager) CommittedAtOrBefore(xid, seq uint64) bool {
	return m.committedBefore(xid, seq)
}

// PruneStates drops state entries for transactions that finished and whose
// outcome can no longer matter: committed entries below the oldest active
// snapshot are only needed until their versions are stamped/vacuumed, so this
// should be called by vacuum after chains are pruned. Aborted entries are
// kept (their versions may still exist until vacuumed) unless force is set.
func (m *Manager) PruneStates(horizon uint64) (pruned int) {
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		for xid, st := range s.states {
			if st.status == StatusCommitted && st.commitSeq <= horizon {
				delete(s.states, xid)
				pruned++
			}
		}
		s.mu.Unlock()
	}
	return pruned
}

// String describes the txn for debugging.
func (t *Txn) String() string {
	return fmt.Sprintf("txn(%d, snap=%d, done=%v)", t.id, t.snap.Seq, t.done)
}
