package txn

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLockAcquireReleaseReentrant(t *testing.T) {
	lt := NewLockTable()
	key := LockKey{Space: 1, A: 2, B: 3}
	if err := lt.Acquire(10, key, time.Second); err != nil {
		t.Fatal(err)
	}
	// Reentrant.
	if err := lt.Acquire(10, key, time.Second); err != nil {
		t.Fatal(err)
	}
	if lt.Owner(key) != 10 {
		t.Errorf("Owner = %d", lt.Owner(key))
	}
	// Another txn times out.
	if err := lt.Acquire(11, key, 10*time.Millisecond); !errors.Is(err, ErrLockTimeout) {
		t.Errorf("expected timeout, got %v", err)
	}
	lt.Release(10, key)
	if lt.Owner(key) != 0 {
		t.Error("lock not released")
	}
	if err := lt.Acquire(11, key, time.Second); err != nil {
		t.Errorf("acquire after release: %v", err)
	}
}

func TestReleaseByNonOwnerIsNoOp(t *testing.T) {
	lt := NewLockTable()
	key := LockKey{Space: 1}
	lt.Acquire(1, key, time.Second)
	lt.Release(2, key)
	if lt.Owner(key) != 1 {
		t.Error("non-owner release changed ownership")
	}
	lt.Release(1, key)
}

func TestTryAcquire(t *testing.T) {
	lt := NewLockTable()
	key := LockKey{Space: 5}
	if !lt.TryAcquire(1, key) {
		t.Error("TryAcquire on free lock should succeed")
	}
	if !lt.TryAcquire(1, key) {
		t.Error("TryAcquire re-entrant should succeed")
	}
	if lt.TryAcquire(2, key) {
		t.Error("TryAcquire on held lock should fail")
	}
}

func TestLockHandoffUnderContention(t *testing.T) {
	lt := NewLockTable()
	key := LockKey{Space: 9}
	var counter int64
	var inCrit atomic.Int64
	var wg sync.WaitGroup
	for w := 1; w <= 16; w++ {
		wg.Add(1)
		go func(xid uint64) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := lt.Acquire(xid, key, 5*time.Second); err != nil {
					t.Error(err)
					return
				}
				if inCrit.Add(1) != 1 {
					t.Error("mutual exclusion violated")
				}
				counter++
				inCrit.Add(-1)
				lt.Release(xid, key)
			}
		}(uint64(w))
	}
	wg.Wait()
	if counter != 16*50 {
		t.Errorf("counter = %d, want %d", counter, 16*50)
	}
}

func TestTxnLockReleasedAtEnd(t *testing.T) {
	m := NewManager()
	key := LockKey{Space: 2, A: 7}
	t1 := m.Begin()
	if err := t1.Lock(key); err != nil {
		t.Fatal(err)
	}
	t2 := m.Begin()
	if t2.TryLock(key) {
		t.Error("t2 should not get t1's lock")
	}
	t1.Commit()
	if !t2.TryLock(key) {
		t.Error("t2 should get the lock after t1 commits")
	}
	t2.Abort()
	if m.Locks().Owner(key) != 0 {
		t.Error("abort should release locks")
	}
}

func TestTxnLockBlocksUntilRelease(t *testing.T) {
	m := NewManager()
	key := LockKey{Space: 3}
	t1 := m.Begin()
	t1.Lock(key)
	acquired := make(chan struct{})
	t2 := m.Begin()
	go func() {
		if err := t2.LockTimeout(key, 5*time.Second); err != nil {
			t.Error(err)
		}
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("t2 acquired while t1 held the lock")
	case <-time.After(20 * time.Millisecond):
	}
	t1.Abort()
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("t2 never acquired after release")
	}
	t2.Abort()
}

func TestTryLockRegistersForRelease(t *testing.T) {
	m := NewManager()
	key := LockKey{Space: 4}
	tx := m.Begin()
	if !tx.TryLock(key) || !tx.TryLock(key) {
		t.Fatal("TryLock should succeed")
	}
	tx.Abort()
	if m.Locks().Owner(key) != 0 {
		t.Error("TryLock'd key not released at abort")
	}
	done := m.Begin()
	done.Commit()
	if done.TryLock(key) {
		t.Error("TryLock on finished txn should fail")
	}
}
