package schema

import (
	"strings"
	"testing"

	"github.com/bullfrogdb/bullfrog/internal/expr"
	"github.com/bullfrogdb/bullfrog/internal/types"
)

func customerTable(t *testing.T) *Table {
	t.Helper()
	tbl, err := NewTable("customer", []Column{
		{Name: "c_id", Kind: types.KindInt, NotNull: true},
		{Name: "c_name", Kind: types.KindString},
		{Name: "c_balance", Kind: types.KindFloat},
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl.PrimaryKey = []int{0}
	return tbl
}

func TestNewTableRejectsDuplicateColumns(t *testing.T) {
	_, err := NewTable("t", []Column{
		{Name: "a", Kind: types.KindInt},
		{Name: "A", Kind: types.KindInt},
	})
	if err == nil {
		t.Fatal("duplicate column names (case-insensitive) should be rejected")
	}
}

func TestColumnIndex(t *testing.T) {
	tbl := customerTable(t)
	if tbl.ColumnIndex("c_name") != 1 {
		t.Error("c_name should be ordinal 1")
	}
	if tbl.ColumnIndex("C_BALANCE") != 2 {
		t.Error("lookup should be case-insensitive")
	}
	if tbl.ColumnIndex("nope") != -1 {
		t.Error("missing column should be -1")
	}
}

func TestValidate(t *testing.T) {
	tbl := customerTable(t)
	row, err := tbl.Validate(types.Row{types.NewInt(1), types.NewString("alice"), types.NewInt(10)})
	if err != nil {
		t.Fatal(err)
	}
	if row[2].Kind() != types.KindFloat || row[2].Float() != 10 {
		t.Error("int should coerce to float column")
	}
	if _, err := tbl.Validate(types.Row{types.NewInt(1)}); err == nil {
		t.Error("wrong arity should fail")
	}
	if _, err := tbl.Validate(types.Row{types.Null, types.Null, types.Null}); err == nil {
		t.Error("NOT NULL violation should fail")
	}
	if _, err := tbl.Validate(types.Row{types.NewString("x"), types.Null, types.Null}); err == nil {
		t.Error("kind mismatch should fail")
	}
	// Nullable columns accept NULL.
	if _, err := tbl.Validate(types.Row{types.NewInt(1), types.Null, types.Null}); err != nil {
		t.Errorf("nullable NULLs should pass: %v", err)
	}
}

func TestPKRowAndProject(t *testing.T) {
	tbl := customerTable(t)
	row := types.Row{types.NewInt(7), types.NewString("bob"), types.NewFloat(1.5)}
	pk := tbl.PKRow(row)
	if len(pk) != 1 || pk[0].Int() != 7 {
		t.Errorf("PKRow = %v", pk)
	}
	proj := Project(row, []int{2, 0})
	if proj[0].Float() != 1.5 || proj[1].Int() != 7 {
		t.Errorf("Project = %v", proj)
	}
}

func TestScope(t *testing.T) {
	tbl := customerTable(t)
	s := tbl.Scope("c")
	idx, err := s.Resolve("c", "c_balance")
	if err != nil || idx != 2 {
		t.Errorf("scope resolve: %d, %v", idx, err)
	}
	s2 := tbl.Scope("")
	if _, err := s2.Resolve("customer", "c_id"); err != nil {
		t.Errorf("default alias should be table name: %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	tbl := customerTable(t)
	tbl.Checks = []Check{{Name: "positive", Expr: expr.NewBinOp(expr.OpGt, expr.NewColIdx("c_balance", 2), expr.NewConst(types.NewInt(0)))}}
	tbl.Uniques = [][]int{{1}}
	tbl.ForeignKey = []ForeignKey{{Name: "fk", Columns: []int{0}, RefTable: "district", RefColumns: []int{0}}}
	c := tbl.Clone()
	c.PrimaryKey[0] = 99
	c.Uniques[0][0] = 99
	c.ForeignKey[0].Columns[0] = 99
	if tbl.PrimaryKey[0] == 99 || tbl.Uniques[0][0] == 99 || tbl.ForeignKey[0].Columns[0] == 99 {
		t.Error("Clone shares slices with the original")
	}
	if len(c.Checks) != 1 || c.Checks[0].Expr.String() != tbl.Checks[0].Expr.String() {
		t.Error("Clone lost checks")
	}
}

func TestTableString(t *testing.T) {
	tbl := customerTable(t)
	s := tbl.String()
	for _, want := range []string{"TABLE customer", "c_id INT NOT NULL", "PRIMARY KEY (c_id)"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
