// Package schema defines table, column, index, and constraint metadata. It is
// pure metadata: enforcement lives in the engine, storage lives in storage.
package schema

import (
	"fmt"
	"strings"
	"time"

	"github.com/bullfrogdb/bullfrog/internal/expr"
	"github.com/bullfrogdb/bullfrog/internal/types"
)

// Column describes one table column.
type Column struct {
	Name    string
	Kind    types.Kind
	NotNull bool
	Default expr.Expr // evaluated against the empty row; nil means NULL
}

// Table describes a table: its columns and constraints.
type Table struct {
	Name       string
	Columns    []Column
	PrimaryKey []int        // column ordinals; empty means no primary key
	Checks     []Check      // CHECK constraints
	Uniques    [][]int      // additional UNIQUE constraints (column ordinal sets)
	ForeignKey []ForeignKey // FOREIGN KEY constraints
}

// Check is a named CHECK constraint whose expression is bound against the
// table's row layout.
type Check struct {
	Name string
	Expr expr.Expr // bound: column ordinals resolved against the table
}

// ForeignKey declares that the given local columns must reference an existing
// row in the referenced table's referenced columns (which must be that
// table's primary key or a unique key).
type ForeignKey struct {
	Name       string
	Columns    []int  // local column ordinals
	RefTable   string // referenced table name
	RefColumns []int  // referenced column ordinals
	// RefColumnNames holds unresolved referenced column names from the DDL;
	// the engine resolves them into RefColumns at table-creation time (they
	// default to the referenced table's primary key when empty).
	RefColumnNames []string
}

// NewTable builds a table definition and validates column name uniqueness.
func NewTable(name string, cols []Column) (*Table, error) {
	seen := make(map[string]bool, len(cols))
	for _, c := range cols {
		lower := strings.ToLower(c.Name)
		if seen[lower] {
			return nil, fmt.Errorf("schema: duplicate column %q in table %q", c.Name, name)
		}
		seen[lower] = true
	}
	return &Table{Name: name, Columns: cols}, nil
}

// ColumnIndex returns the ordinal of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// ColumnNames returns the column names in order.
func (t *Table) ColumnNames() []string {
	names := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		names[i] = c.Name
	}
	return names
}

// Scope returns the expression-binding scope for a row of this table,
// qualified by alias (or the table name when alias is empty).
func (t *Table) Scope(alias string) *expr.Scope {
	if alias == "" {
		alias = t.Name
	}
	cols := make([]expr.ScopeCol, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = expr.ScopeCol{Table: alias, Name: c.Name, Kind: c.Kind}
	}
	return expr.NewScope(cols...)
}

// PKRow extracts the primary-key datums from a full row.
func (t *Table) PKRow(row types.Row) types.Row {
	key := make(types.Row, len(t.PrimaryKey))
	for i, ord := range t.PrimaryKey {
		key[i] = row[ord]
	}
	return key
}

// Project extracts the datums at the given ordinals.
func Project(row types.Row, ords []int) types.Row {
	out := make(types.Row, len(ords))
	for i, o := range ords {
		out[i] = row[o]
	}
	return out
}

// Validate checks a row against the column count, declared kinds and NOT
// NULL. It coerces integer datums into float columns (SQL numeric widening);
// everything else must match exactly. Returns the (possibly coerced) row.
func (t *Table) Validate(row types.Row) (types.Row, error) {
	if len(row) != len(t.Columns) {
		return nil, fmt.Errorf("schema: table %s expects %d columns, got %d", t.Name, len(t.Columns), len(row))
	}
	for i, c := range t.Columns {
		d := row[i]
		if d.IsNull() {
			if c.NotNull {
				return nil, fmt.Errorf("schema: null value in column %q of table %q violates not-null constraint", c.Name, t.Name)
			}
			continue
		}
		if d.Kind() == c.Kind || c.Kind == types.KindNull {
			// KindNull columns are wildcards: CREATE TABLE AS with an
			// untyped NULL output column accepts any later datum kind.
			continue
		}
		if c.Kind == types.KindFloat && d.Kind() == types.KindInt {
			row[i] = types.NewFloat(float64(d.Int()))
			continue
		}
		if c.Kind == types.KindTime && d.Kind() == types.KindString {
			ts, err := ParseTime(d.Str())
			if err != nil {
				return nil, fmt.Errorf("schema: column %q of table %q: %w", c.Name, t.Name, err)
			}
			row[i] = types.NewTime(ts)
			continue
		}
		return nil, fmt.Errorf("schema: column %q of table %q is %s, got %s %v", c.Name, t.Name, c.Kind, d.Kind(), d)
	}
	return row, nil
}

// timeLayouts are the literal formats accepted for timestamp/date columns.
var timeLayouts = []string{
	"2006-01-02 15:04:05.999999999",
	"2006-01-02T15:04:05.999999999",
	"2006-01-02",
	time.RFC3339Nano,
}

// ParseTime parses a SQL timestamp or date literal (interpreted as UTC).
func ParseTime(s string) (time.Time, error) {
	for _, layout := range timeLayouts {
		if ts, err := time.ParseInLocation(layout, s, time.UTC); err == nil {
			return ts, nil
		}
	}
	return time.Time{}, fmt.Errorf("schema: cannot parse %q as a timestamp", s)
}

// Clone returns a deep copy of the table definition (expressions are cloned
// structurally).
func (t *Table) Clone() *Table {
	out := &Table{Name: t.Name}
	out.Columns = append([]Column(nil), t.Columns...)
	out.PrimaryKey = append([]int(nil), t.PrimaryKey...)
	for _, c := range t.Checks {
		out.Checks = append(out.Checks, Check{Name: c.Name, Expr: expr.Clone(c.Expr)})
	}
	for _, u := range t.Uniques {
		out.Uniques = append(out.Uniques, append([]int(nil), u...))
	}
	for _, fk := range t.ForeignKey {
		out.ForeignKey = append(out.ForeignKey, ForeignKey{
			Name:       fk.Name,
			Columns:    append([]int(nil), fk.Columns...),
			RefTable:   fk.RefTable,
			RefColumns: append([]int(nil), fk.RefColumns...),
		})
	}
	return out
}

// String renders a compact CREATE TABLE-ish description, used in error
// messages and the shell's \d command.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "TABLE %s (", t.Name)
	for i, c := range t.Columns {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s %s", c.Name, c.Kind)
		if c.NotNull {
			sb.WriteString(" NOT NULL")
		}
	}
	if len(t.PrimaryKey) > 0 {
		sb.WriteString(", PRIMARY KEY (")
		for i, ord := range t.PrimaryKey {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(t.Columns[ord].Name)
		}
		sb.WriteString(")")
	}
	sb.WriteString(")")
	return sb.String()
}
