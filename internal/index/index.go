// Package index provides the two index structures the engine uses: an
// ordered B+tree (range and prefix scans) and a hash index (equality
// lookups). Both map order-preserving encoded keys (types.EncodeKey) to sets
// of heap TIDs.
//
// Index entries are maintained eagerly on insert and update but interpreted
// lazily on read: a posting may reference a tuple version that is invisible
// to the reading transaction (not yet committed, deleted, or from an aborted
// transaction), so readers must re-check visibility and, for updated keys,
// re-check the key value against the visible row. This is the same contract
// PostgreSQL indexes have, and it is what lets BullFrog's migration
// transactions abort cheaply.
package index

import (
	"github.com/bullfrogdb/bullfrog/internal/storage"
	"github.com/bullfrogdb/bullfrog/internal/types"
)

// Def describes an index: which table ordinals it covers and whether it
// enforces uniqueness. ID is globally unique and doubles as the lock-table
// space for unique-key arbitration.
type Def struct {
	ID      uint64
	Name    string
	Table   string
	Columns []int // table column ordinals, in key order
	Unique  bool
}

// KeyFromRow extracts and encodes the index key for a full table row.
func (d *Def) KeyFromRow(row types.Row) []byte {
	key := make(types.Row, len(d.Columns))
	for i, ord := range d.Columns {
		key[i] = row[ord]
	}
	return types.EncodeKey(nil, key)
}

// Index is the operation set shared by the B+tree and hash implementations.
type Index interface {
	// Def returns the index definition.
	Def() *Def
	// Insert adds a posting. Duplicate (key, tid) pairs are ignored.
	Insert(key []byte, tid storage.TID)
	// Delete removes a posting, reporting whether it was present.
	Delete(key []byte, tid storage.TID) bool
	// Lookup returns the TIDs for an exact key (copy; safe to retain).
	Lookup(key []byte) []storage.TID
	// AscendRange visits postings with lo <= key < hi in key order. A nil hi
	// means no upper bound. Returning false stops the scan.
	AscendRange(lo, hi []byte, fn func(key []byte, tid storage.TID) bool)
	// Len returns the number of postings (key/tid pairs).
	Len() int
}

// PrefixSucc returns the smallest key strictly greater than every key having
// the given prefix — i.e. the exclusive upper bound for a prefix scan. It
// increments the final byte, dropping trailing 0xFF bytes; nil means
// "unbounded".
func PrefixSucc(prefix []byte) []byte {
	out := append([]byte(nil), prefix...)
	for i := len(out) - 1; i >= 0; i-- {
		if out[i] != 0xFF {
			out[i]++
			return out[:i+1]
		}
	}
	return nil
}
