package index

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"github.com/bullfrogdb/bullfrog/internal/storage"
	"github.com/bullfrogdb/bullfrog/internal/types"
)

func intKey(v int64) []byte {
	return types.EncodeKey(nil, types.Row{types.NewInt(v)})
}

func tid(n int) storage.TID {
	return storage.TID{Page: uint32(n / 256), Slot: uint32(n % 256)}
}

// both index implementations must satisfy the same behavioral contract.
func eachImpl(t *testing.T, fn func(t *testing.T, idx Index)) {
	t.Helper()
	t.Run("btree", func(t *testing.T) {
		fn(t, NewBTree(&Def{ID: 1, Name: "bt", Table: "t", Columns: []int{0}}))
	})
	t.Run("hash", func(t *testing.T) {
		fn(t, NewHash(&Def{ID: 2, Name: "h", Table: "t", Columns: []int{0}}))
	})
}

func TestInsertLookupDelete(t *testing.T) {
	eachImpl(t, func(t *testing.T, idx Index) {
		idx.Insert(intKey(5), tid(1))
		idx.Insert(intKey(5), tid(2))
		idx.Insert(intKey(5), tid(1)) // duplicate, ignored
		idx.Insert(intKey(7), tid(3))
		if idx.Len() != 3 {
			t.Errorf("Len = %d, want 3", idx.Len())
		}
		got := idx.Lookup(intKey(5))
		if len(got) != 2 {
			t.Fatalf("Lookup(5) = %v", got)
		}
		if idx.Lookup(intKey(99)) != nil {
			t.Error("Lookup on absent key should be nil")
		}
		if !idx.Delete(intKey(5), tid(1)) {
			t.Error("Delete existing posting should report true")
		}
		if idx.Delete(intKey(5), tid(1)) {
			t.Error("double Delete should report false")
		}
		if idx.Delete(intKey(42), tid(9)) {
			t.Error("Delete on absent key should report false")
		}
		if got := idx.Lookup(intKey(5)); len(got) != 1 || got[0] != tid(2) {
			t.Errorf("after delete, Lookup(5) = %v", got)
		}
		// Deleting the last posting removes the key.
		idx.Delete(intKey(5), tid(2))
		if idx.Lookup(intKey(5)) != nil {
			t.Error("key should vanish when posting list empties")
		}
		if idx.Len() != 1 {
			t.Errorf("Len = %d, want 1", idx.Len())
		}
	})
}

func TestAscendRange(t *testing.T) {
	eachImpl(t, func(t *testing.T, idx Index) {
		for i := 0; i < 100; i++ {
			idx.Insert(intKey(int64(i)), tid(i))
		}
		var got []int64
		idx.AscendRange(intKey(10), intKey(20), func(key []byte, _ storage.TID) bool {
			row, err := types.DecodeKey(key)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, row[0].Int())
			return true
		})
		if len(got) != 10 || got[0] != 10 || got[9] != 19 {
			t.Errorf("range [10,20) = %v", got)
		}
		// Unbounded above.
		count := 0
		idx.AscendRange(intKey(95), nil, func([]byte, storage.TID) bool {
			count++
			return true
		})
		if count != 5 {
			t.Errorf("range [95,∞) = %d keys", count)
		}
		// Early stop.
		count = 0
		idx.AscendRange(intKey(0), nil, func([]byte, storage.TID) bool {
			count++
			return count < 7
		})
		if count != 7 {
			t.Errorf("early stop visited %d", count)
		}
	})
}

// TestBTreeMatchesModel drives the B+tree against a reference map with random
// operations and verifies Lookup, Len, and full-range iteration agree.
func TestBTreeMatchesModel(t *testing.T) {
	idx := NewBTree(&Def{ID: 3, Name: "model", Table: "t", Columns: []int{0}})
	model := make(map[int64]map[storage.TID]bool)
	r := rand.New(rand.NewSource(42))
	for step := 0; step < 20000; step++ {
		k := int64(r.Intn(500))
		id := tid(r.Intn(800))
		if r.Intn(3) > 0 { // 2/3 inserts
			idx.Insert(intKey(k), id)
			if model[k] == nil {
				model[k] = make(map[storage.TID]bool)
			}
			model[k][id] = true
		} else {
			want := model[k][id]
			got := idx.Delete(intKey(k), id)
			if got != want {
				t.Fatalf("step %d: Delete(%d,%v) = %v, want %v", step, k, id, got, want)
			}
			delete(model[k], id)
			if len(model[k]) == 0 {
				delete(model, k)
			}
		}
	}
	// Compare Len.
	want := 0
	for _, s := range model {
		want += len(s)
	}
	if idx.Len() != want {
		t.Fatalf("Len = %d, model has %d", idx.Len(), want)
	}
	// Compare per-key lookups.
	for k, s := range model {
		got := idx.Lookup(intKey(k))
		if len(got) != len(s) {
			t.Fatalf("Lookup(%d) returned %d postings, want %d", k, len(got), len(s))
		}
		for _, id := range got {
			if !s[id] {
				t.Fatalf("Lookup(%d) returned unexpected %v", k, id)
			}
		}
	}
	// Full iteration must be sorted and complete.
	var keys []int64
	prev := []byte(nil)
	total := 0
	idx.AscendRange(nil, nil, func(key []byte, _ storage.TID) bool {
		if prev != nil && bytes.Compare(prev, key) > 0 {
			t.Fatal("iteration out of order")
		}
		prev = append(prev[:0], key...)
		row, _ := types.DecodeKey(key)
		keys = append(keys, row[0].Int())
		total++
		return true
	})
	if total != want {
		t.Fatalf("iteration visited %d postings, want %d", total, want)
	}
	uniq := map[int64]bool{}
	for _, k := range keys {
		uniq[k] = true
	}
	if len(uniq) != len(model) {
		t.Fatalf("iteration saw %d distinct keys, model has %d", len(uniq), len(model))
	}
}

func TestBTreeSplitsDeep(t *testing.T) {
	idx := NewBTree(&Def{ID: 4, Name: "deep", Table: "t", Columns: []int{0}})
	const n = 50000
	perm := rand.New(rand.NewSource(7)).Perm(n)
	for _, v := range perm {
		idx.Insert(intKey(int64(v)), tid(v%1000))
	}
	// Every key must be findable.
	for i := 0; i < n; i += 997 {
		if idx.Lookup(intKey(int64(i))) == nil {
			t.Fatalf("key %d missing after bulk insert", i)
		}
	}
	// Iteration is fully sorted.
	prevV := int64(-1)
	count := 0
	idx.AscendRange(nil, nil, func(key []byte, _ storage.TID) bool {
		row, _ := types.DecodeKey(key)
		v := row[0].Int()
		if v <= prevV {
			t.Fatalf("out of order: %d after %d", v, prevV)
		}
		prevV = v
		count++
		return true
	})
	if count != n {
		t.Fatalf("iterated %d keys, want %d", count, n)
	}
}

func TestConcurrentReadersAndWriter(t *testing.T) {
	eachImpl(t, func(t *testing.T, idx Index) {
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for r := 0; r < 4; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					idx.Lookup(intKey(50))
					idx.AscendRange(intKey(0), intKey(100), func([]byte, storage.TID) bool { return true })
				}
			}()
		}
		for i := 0; i < 3000; i++ {
			idx.Insert(intKey(int64(i%200)), tid(i))
		}
		close(stop)
		wg.Wait()
		if idx.Len() != 3000 {
			t.Errorf("Len = %d, want 3000", idx.Len())
		}
	})
}

func TestKeyFromRow(t *testing.T) {
	def := &Def{Columns: []int{2, 0}}
	row := types.Row{types.NewInt(1), types.NewString("x"), types.NewInt(3)}
	key := def.KeyFromRow(row)
	decoded, err := types.DecodeKey(key)
	if err != nil {
		t.Fatal(err)
	}
	if decoded[0].Int() != 3 || decoded[1].Int() != 1 {
		t.Errorf("KeyFromRow decoded to %v", decoded)
	}
}

func TestPrefixSucc(t *testing.T) {
	cases := []struct {
		in   []byte
		want []byte
	}{
		{[]byte{1, 2, 3}, []byte{1, 2, 4}},
		{[]byte{1, 0xFF}, []byte{2}},
		{[]byte{0xFF, 0xFF}, nil},
		{nil, nil},
	}
	for _, c := range cases {
		got := PrefixSucc(c.in)
		if !bytes.Equal(got, c.want) {
			t.Errorf("PrefixSucc(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// Semantics: every key with the prefix sorts below the successor.
	prefix := types.EncodeKey(nil, types.Row{types.NewInt(10)})
	succ := PrefixSucc(prefix)
	full := types.EncodeKey(nil, types.Row{types.NewInt(10), types.NewString("zzz")})
	if !(bytes.Compare(full, succ) < 0 && bytes.Compare(prefix, succ) < 0) {
		t.Error("PrefixSucc is not an upper bound for extended keys")
	}
}

func TestHashAscendRangeSorted(t *testing.T) {
	idx := NewHash(&Def{ID: 9, Name: "h2", Table: "t", Columns: []int{0}})
	var want []string
	for i := 0; i < 300; i++ {
		s := fmt.Sprintf("key-%03d", i)
		idx.Insert(types.EncodeKey(nil, types.Row{types.NewString(s)}), tid(i))
		want = append(want, s)
	}
	sort.Strings(want)
	var got []string
	idx.AscendRange(nil, nil, func(key []byte, _ storage.TID) bool {
		row, _ := types.DecodeKey(key)
		got = append(got, row[0].Str())
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("got %d keys", len(got))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("order mismatch at %d: %q vs %q", i, got[i], want[i])
		}
	}
}
