package index

import (
	"bytes"
	"sync"

	"github.com/bullfrogdb/bullfrog/internal/storage"
)

// btree node fanout: max keys per node. Chosen for decent cache behavior at
// in-memory scale.
const btreeOrder = 64

// BTree is a B+tree mapping encoded keys to TID postings. All methods are
// safe for concurrent use (single writer, many readers via an RWMutex).
type BTree struct {
	def  *Def
	mu   sync.RWMutex
	root node
	n    int // postings
}

// NewBTree returns an empty B+tree index.
func NewBTree(def *Def) *BTree {
	return &BTree{def: def, root: &leaf{}}
}

// Def returns the index definition.
func (t *BTree) Def() *Def { return t.def }

// Len returns the number of postings.
func (t *BTree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.n
}

type node interface {
	// insert returns (newRight, splitKey) when the node split.
	insert(key []byte, tid storage.TID, counter *int) (node, []byte)
	// delete removes a posting; reports whether it was removed.
	delete(key []byte, tid storage.TID) bool
	// firstLeafGE returns the leaf that may contain key and the position of
	// the first key >= key within it.
	firstLeafGE(key []byte) (*leaf, int)
}

type leaf struct {
	keys [][]byte
	tids [][]storage.TID // posting list per key
	next *leaf
}

type inner struct {
	keys     [][]byte // keys[i] = smallest key in children[i+1]
	children []node
}

// search returns the first position with keys[pos] >= key.
func searchKeys(keys [][]byte, key []byte) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (l *leaf) insert(key []byte, tid storage.TID, counter *int) (node, []byte) {
	pos := searchKeys(l.keys, key)
	if pos < len(l.keys) && bytes.Equal(l.keys[pos], key) {
		for _, existing := range l.tids[pos] {
			if existing == tid {
				return nil, nil // duplicate posting
			}
		}
		l.tids[pos] = append(l.tids[pos], tid)
		*counter++
		return nil, nil
	}
	l.keys = append(l.keys, nil)
	copy(l.keys[pos+1:], l.keys[pos:])
	l.keys[pos] = append([]byte(nil), key...)
	l.tids = append(l.tids, nil)
	copy(l.tids[pos+1:], l.tids[pos:])
	l.tids[pos] = []storage.TID{tid}
	*counter++
	if len(l.keys) <= btreeOrder {
		return nil, nil
	}
	// Split.
	mid := len(l.keys) / 2
	right := &leaf{
		keys: append([][]byte(nil), l.keys[mid:]...),
		tids: append([][]storage.TID(nil), l.tids[mid:]...),
		next: l.next,
	}
	l.keys = l.keys[:mid:mid]
	l.tids = l.tids[:mid:mid]
	l.next = right
	return right, right.keys[0]
}

func (l *leaf) delete(key []byte, tid storage.TID) bool {
	pos := searchKeys(l.keys, key)
	if pos >= len(l.keys) || !bytes.Equal(l.keys[pos], key) {
		return false
	}
	posting := l.tids[pos]
	for i, existing := range posting {
		if existing == tid {
			l.tids[pos] = append(posting[:i:i], posting[i+1:]...)
			if len(l.tids[pos]) == 0 {
				// Remove the key entirely; no rebalancing (lazy deletion).
				l.keys = append(l.keys[:pos], l.keys[pos+1:]...)
				l.tids = append(l.tids[:pos], l.tids[pos+1:]...)
			}
			return true
		}
	}
	return false
}

func (l *leaf) firstLeafGE(key []byte) (*leaf, int) {
	return l, searchKeys(l.keys, key)
}

func (in *inner) childFor(key []byte) int {
	// children[i] covers keys < keys[i]; the last child covers the rest.
	lo, hi := 0, len(in.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(in.keys[mid], key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (in *inner) insert(key []byte, tid storage.TID, counter *int) (node, []byte) {
	ci := in.childFor(key)
	newRight, splitKey := in.children[ci].insert(key, tid, counter)
	if newRight == nil {
		return nil, nil
	}
	in.keys = append(in.keys, nil)
	copy(in.keys[ci+1:], in.keys[ci:])
	in.keys[ci] = splitKey
	in.children = append(in.children, nil)
	copy(in.children[ci+2:], in.children[ci+1:])
	in.children[ci+1] = newRight
	if len(in.children) <= btreeOrder {
		return nil, nil
	}
	mid := len(in.keys) / 2
	up := in.keys[mid]
	right := &inner{
		keys:     append([][]byte(nil), in.keys[mid+1:]...),
		children: append([]node(nil), in.children[mid+1:]...),
	}
	in.keys = in.keys[:mid:mid]
	in.children = in.children[: mid+1 : mid+1]
	return right, up
}

func (in *inner) delete(key []byte, tid storage.TID) bool {
	return in.children[in.childFor(key)].delete(key, tid)
}

func (in *inner) firstLeafGE(key []byte) (*leaf, int) {
	return in.children[in.childFor(key)].firstLeafGE(key)
}

// Insert adds a posting for key.
func (t *BTree) Insert(key []byte, tid storage.TID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	newRight, splitKey := t.root.insert(key, tid, &t.n)
	if newRight != nil {
		t.root = &inner{keys: [][]byte{splitKey}, children: []node{t.root, newRight}}
	}
}

// Delete removes a posting, reporting whether it existed.
func (t *BTree) Delete(key []byte, tid storage.TID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.root.delete(key, tid) {
		t.n--
		return true
	}
	return false
}

// Lookup returns the postings for an exact key.
func (t *BTree) Lookup(key []byte) []storage.TID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	l, pos := t.root.firstLeafGE(key)
	if pos < len(l.keys) && bytes.Equal(l.keys[pos], key) {
		return append([]storage.TID(nil), l.tids[pos]...)
	}
	return nil
}

// AscendRange visits postings with lo <= key < hi in key order (hi nil means
// unbounded). The callback must not modify the tree.
func (t *BTree) AscendRange(lo, hi []byte, fn func(key []byte, tid storage.TID) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	l, pos := t.root.firstLeafGE(lo)
	for l != nil {
		for ; pos < len(l.keys); pos++ {
			if hi != nil && bytes.Compare(l.keys[pos], hi) >= 0 {
				return
			}
			for _, tid := range l.tids[pos] {
				if !fn(l.keys[pos], tid) {
					return
				}
			}
		}
		l = l.next
		pos = 0
	}
}
