package index

import (
	"bytes"
	"hash/maphash"
	"sort"
	"sync"

	"github.com/bullfrogdb/bullfrog/internal/storage"
)

const hashShards = 16

var hashIndexSeed = maphash.MakeSeed()

type hashShard struct {
	mu       sync.RWMutex
	postings map[string][]storage.TID
}

// Hash is an equality-only index: encoded key -> TID postings. It is sharded
// to reduce writer contention. AscendRange is supported for completeness but
// requires collecting and sorting keys, so the planner prefers a B+tree for
// range predicates.
type Hash struct {
	def    *Def
	shards [hashShards]hashShard
}

// NewHash returns an empty hash index.
func NewHash(def *Def) *Hash {
	h := &Hash{def: def}
	for i := range h.shards {
		h.shards[i].postings = make(map[string][]storage.TID)
	}
	return h
}

// Def returns the index definition.
func (h *Hash) Def() *Def { return h.def }

func (h *Hash) shardFor(key []byte) *hashShard {
	return &h.shards[maphash.Bytes(hashIndexSeed, key)%hashShards]
}

// Insert adds a posting. Duplicate (key, tid) pairs are ignored.
func (h *Hash) Insert(key []byte, tid storage.TID) {
	s := h.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	posting := s.postings[string(key)]
	for _, existing := range posting {
		if existing == tid {
			return
		}
	}
	s.postings[string(key)] = append(posting, tid)
}

// Delete removes a posting, reporting whether it existed.
func (h *Hash) Delete(key []byte, tid storage.TID) bool {
	s := h.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	posting, ok := s.postings[string(key)]
	if !ok {
		return false
	}
	for i, existing := range posting {
		if existing == tid {
			next := append(posting[:i:i], posting[i+1:]...)
			if len(next) == 0 {
				delete(s.postings, string(key))
			} else {
				s.postings[string(key)] = next
			}
			return true
		}
	}
	return false
}

// Lookup returns the postings for an exact key.
func (h *Hash) Lookup(key []byte) []storage.TID {
	s := h.shardFor(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	posting := s.postings[string(key)]
	if posting == nil {
		return nil
	}
	return append([]storage.TID(nil), posting...)
}

// Len returns the number of postings.
func (h *Hash) Len() int {
	n := 0
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.RLock()
		for _, p := range s.postings {
			n += len(p)
		}
		s.mu.RUnlock()
	}
	return n
}

// AscendRange visits postings in key order by materializing and sorting all
// keys; O(n log n). Provided so Hash satisfies Index, but range workloads
// should use a BTree.
func (h *Hash) AscendRange(lo, hi []byte, fn func(key []byte, tid storage.TID) bool) {
	type kv struct {
		key  string
		tids []storage.TID
	}
	var all []kv
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.RLock()
		for k, p := range s.postings {
			if lo != nil && k < string(lo) {
				continue
			}
			if hi != nil && k >= string(hi) {
				continue
			}
			all = append(all, kv{key: k, tids: append([]storage.TID(nil), p...)})
		}
		s.mu.RUnlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].key < all[j].key })
	for _, e := range all {
		kb := []byte(e.key)
		if hi != nil && bytes.Compare(kb, hi) >= 0 {
			return
		}
		for _, tid := range e.tids {
			if !fn(kb, tid) {
				return
			}
		}
	}
}
