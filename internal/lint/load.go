package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked module package: syntax plus full type
// information, the unit every Analyzer runs over. In-package test files are
// part of the unit (they see unexported identifiers), but diagnostics inside
// them are dropped by the driver; external (_test package) files are not
// loaded.
type Package struct {
	Path   string // import path
	Name   string
	Dir    string
	Fset   *token.FileSet
	Syntax []*ast.File
	Types  *types.Package
	Info   *types.Info

	testFiles map[string]bool // base filename -> is a _test.go file
}

// IsTestFile reports whether pos lies in a _test.go file of the package.
func (p *Package) IsTestFile(pos token.Pos) bool {
	return p.testFiles[filepath.Base(p.Fset.Position(pos).Filename)]
}

// Loader loads and type-checks the packages of a single Go module without
// any dependency beyond the standard library and the go tool itself: module
// packages are parsed and checked from source, while standard-library
// imports are satisfied from the build cache's gc export data (discovered
// via one `go list -export` invocation). This deliberately mirrors the shape
// of golang.org/x/tools/go/packages, which the sandbox cannot vendor.
type Loader struct {
	ModulePath string
	RootDir    string
	// Tests includes in-package _test.go files in each package's unit.
	Tests bool

	Fset *token.FileSet

	exports map[string]string // std import path -> export data file
	meta    map[string]*listPackage
	pkgs    map[string]*Package
	loading map[string]bool
	gcFall  types.ImporterFrom // fallback source importer (fixture-only paths)
	sizes   types.Sizes
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	Standard   bool
	ForTest    string
	GoFiles    []string
	CgoFiles   []string
	TestGoFiles []string
}

// NewLoader prepares a loader for the module rooted at or above dir.
func NewLoader(dir string, tests bool) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	l := &Loader{
		ModulePath: modPath,
		RootDir:    root,
		Tests:      tests,
		Fset:       token.NewFileSet(),
		exports:    map[string]string{},
		meta:       map[string]*listPackage{},
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
		sizes:      types.SizesFor("gc", runtime.GOARCH),
	}
	if l.sizes == nil {
		l.sizes = types.SizesFor("gc", "amd64")
	}
	if err := l.list(); err != nil {
		return nil, err
	}
	return l, nil
}

func findModule(dir string) (root, path string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := dir; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		if parent := filepath.Dir(d); parent == d {
			return "", "", fmt.Errorf("lint: no go.mod at or above %s", dir)
		}
	}
}

// list runs `go list -export -deps -test -json ./...` once, capturing export
// data locations for standard-library dependencies and file lists for every
// module package.
func (l *Loader) list() error {
	cmd := exec.Command("go", "list", "-e", "-export", "-deps", "-test", "-json=ImportPath,Name,Dir,Export,Standard,ForTest,GoFiles,CgoFiles,TestGoFiles", "./...")
	cmd.Dir = l.RootDir
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("lint: go list: %v\n%s", err, errBuf.String())
	}
	dec := json.NewDecoder(&out)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("lint: decoding go list output: %v", err)
		}
		l.absorb(&p)
	}
	return nil
}

func (l *Loader) absorb(p *listPackage) {
	if p.Standard {
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
		return
	}
	// Skip synthesized test variants ("p [p.test]", "p.test"): the base
	// entry carries TestGoFiles, which is all the loader needs.
	if p.ForTest != "" || strings.Contains(p.ImportPath, " ") || strings.HasSuffix(p.ImportPath, ".test") {
		return
	}
	if _, ok := l.meta[p.ImportPath]; !ok {
		l.meta[p.ImportPath] = p
	}
}

// ModulePackages returns every package of the module in a deterministic
// order, loading them on first use.
func (l *Loader) ModulePackages() ([]*Package, error) {
	paths := make([]string, 0, len(l.meta))
	for p := range l.meta {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// Load type-checks one module package (and, recursively, its module
// dependencies).
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	meta, ok := l.meta[path]
	if !ok {
		return nil, fmt.Errorf("lint: unknown module package %q", path)
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files := append([]string(nil), meta.GoFiles...)
	files = append(files, meta.CgoFiles...)
	testSet := map[string]bool{}
	if l.Tests {
		for _, f := range meta.TestGoFiles {
			files = append(files, f)
			testSet[f] = true
		}
	}
	abs := make([]string, len(files))
	for i, f := range files {
		abs[i] = filepath.Join(meta.Dir, f)
	}
	pkg, err := l.check(path, meta.Dir, abs)
	if err != nil {
		return nil, err
	}
	pkg.testFiles = testSet
	l.pkgs[path] = pkg
	return pkg, nil
}

// LoadDir type-checks an out-of-tree directory of Go files (a test fixture)
// as a package with the given synthetic import path. Module imports resolve
// against the loader's module.
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	pkg, err := l.check(asPath, dir, files)
	if err != nil {
		return nil, err
	}
	pkg.testFiles = map[string]bool{}
	l.pkgs[asPath] = pkg
	return pkg, nil
}

func (l *Loader) check(path, dir string, filenames []string) (*Package, error) {
	var syntax []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.Fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Sizes:    l.sizes,
	}
	tpkg, err := conf.Check(path, l.Fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}
	name := ""
	if len(syntax) > 0 {
		name = syntax[0].Name.Name
	}
	return &Package{
		Path:   path,
		Name:   name,
		Dir:    dir,
		Fset:   l.Fset,
		Syntax: syntax,
		Types:  tpkg,
		Info:   info,
	}, nil
}

// loaderImporter satisfies types.ImporterFrom: module-internal paths load
// from source (shared object identity across packages); everything else
// resolves from gc export data.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, dir string, _ types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.importExport(path)
}

// importExport reads gc export data for a non-module package. Export data
// importers cache internally, so repeated imports are cheap.
func (l *Loader) importExport(path string) (*types.Package, error) {
	if l.gcFall == nil {
		lookup := func(p string) (io.ReadCloser, error) {
			f, ok := l.exports[p]
			if !ok {
				// A fixture may import a std package no module file needs;
				// resolve (and build) it on demand.
				out, err := exec.Command("go", "list", "-export", "-f", "{{.Export}}", p).Output()
				if err != nil {
					return nil, fmt.Errorf("lint: no export data for %q", p)
				}
				f = strings.TrimSpace(string(out))
				if f == "" {
					return nil, fmt.Errorf("lint: no export data for %q", p)
				}
				l.exports[p] = f
			}
			data, err := os.ReadFile(f)
			if err != nil {
				return nil, err
			}
			return io.NopCloser(bytes.NewReader(data)), nil
		}
		l.gcFall = importer.ForCompiler(l.Fset, "gc", lookup).(types.ImporterFrom)
	}
	return l.gcFall.ImportFrom(path, "", 0)
}
