package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strconv"
	"strings"
)

// This file is lockflow's global phase: after every function summary is
// computed, the observed acquire-while-holding edges are diffed against the
// declared lockOrder table in config.go and the combined graph is checked
// for cycles. It also exposes BuildLockGraph, the API behind
// `bullfrog-lint -lockgraph` and the lock-order golden test.

// diagnoseGraph reports undeclared, reversed, and stale lock-order edges,
// then any cycle in the combined (declared ∪ observed) graph.
func (lf *lockflow) diagnoseGraph() {
	declared := map[[2]string]bool{}
	for _, d := range lockOrder {
		declared[[2]string{d.From, d.To}] = true
	}
	keys := lf.edgeKeys()
	for _, k := range keys {
		e := lf.edges[k]
		if declared[k] {
			continue
		}
		if declared[[2]string{k[1], k[0]}] {
			lf.reportf(e.pos, "%s: reverses the declared lock-order edge %s -> %s (potential deadlock)", e.desc, k[1], k[0])
			continue
		}
		lf.reportf(e.pos, "%s: lock-order edge %s -> %s is not declared in the lock-order table (internal/lint/config.go)", e.desc, k[0], k[1])
	}
	for _, d := range lockOrder {
		if !lf.staleInScope(d) {
			continue
		}
		if _, ok := lf.edges[[2]string{d.From, d.To}]; ok {
			continue
		}
		lf.reportf(lf.stalePos(d), "declared lock-order edge %s -> %s was never observed by lockflow (stale config: remove it from the lock-order table or restore the nesting it documents)", d.From, d.To)
	}
	lf.diagnoseCycles(declared)
}

func (lf *lockflow) edgeKeys() [][2]string {
	keys := make([][2]string, 0, len(lf.edges))
	for k := range lf.edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	return keys
}

// staleInScope limits stale-config detection to runs that could actually
// observe the edge: a fixture edge is checked only when its fixture package
// is loaded, a module edge only during a full module sweep (the module root
// package is present). Partial loads — a linttest run over one fixture
// directory — must not flag the rest of the table as stale.
func (lf *lockflow) staleInScope(d lockOrderEdge) bool {
	if strings.HasPrefix(d.From, "fixture/") {
		i := strings.IndexByte(d.From, '.')
		if i < 0 {
			return false
		}
		return lf.findPkg(d.From[:i]) != nil
	}
	return lf.findPkg(lf.modulePath) != nil
}

func (lf *lockflow) findPkg(path string) *Package {
	for _, p := range lf.pkgs {
		if p.Path == path {
			return p
		}
	}
	return nil
}

// stalePos anchors a stale-config diagnostic at the offending lockOrder
// element in config.go when internal/lint itself is loaded (module sweeps),
// falling back to the package clause of the From lock's package (fixture
// runs, where the want comment sits on the package line).
func (lf *lockflow) stalePos(d lockOrderEdge) token.Pos {
	if pos := lf.configEdgePos(d); pos.IsValid() {
		return pos
	}
	path := d.From
	if i := strings.IndexByte(path, '.'); i >= 0 {
		path = path[:i]
	}
	pkg := lf.findPkg(path)
	if pkg == nil && !strings.HasPrefix(path, "fixture/") {
		pkg = lf.findPkg(lf.modulePath + "/" + path)
	}
	if pkg != nil && len(pkg.Syntax) > 0 {
		return pkg.Syntax[0].Name.Pos()
	}
	return token.NoPos
}

// configEdgePos locates the composite-literal element declaring edge d
// inside the lockOrder table.
func (lf *lockflow) configEdgePos(d lockOrderEdge) token.Pos {
	pkg := lf.findPkg(lf.modulePath + "/internal/lint")
	if pkg == nil {
		return token.NoPos
	}
	for _, f := range pkg.Syntax {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || vs.Names[0].Name != "lockOrder" || len(vs.Values) != 1 {
					continue
				}
				lit, ok := vs.Values[0].(*ast.CompositeLit)
				if !ok {
					continue
				}
				for _, elt := range lit.Elts {
					el, ok := elt.(*ast.CompositeLit)
					if !ok {
						continue
					}
					var from, to string
					for _, kv := range el.Elts {
						pair, ok := kv.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						key, ok := pair.Key.(*ast.Ident)
						if !ok {
							continue
						}
						if bl, ok := pair.Value.(*ast.BasicLit); ok && bl.Kind == token.STRING {
							if v, err := strconv.Unquote(bl.Value); err == nil {
								switch key.Name {
								case "From":
									from = v
								case "To":
									to = v
								}
							}
						}
					}
					if from == d.From && to == d.To {
						return el.Pos()
					}
				}
			}
		}
	}
	return token.NoPos
}

// diagnoseCycles reports every strongly connected component (and self-loop)
// in the combined declared ∪ observed lock-order graph: any cycle means two
// code paths can acquire the same locks in opposite orders.
func (lf *lockflow) diagnoseCycles(declared map[[2]string]bool) {
	adj := map[string][]string{}
	nodes := map[string]bool{}
	addEdge := func(from, to string) {
		adj[from] = append(adj[from], to)
		nodes[from], nodes[to] = true, true
	}
	for d := range declared {
		addEdge(d[0], d[1])
	}
	for _, k := range lf.edgeKeys() {
		// Reversals of declared edges were already reported as such above —
		// feeding them in again would re-report every inversion as a cycle.
		if !declared[k] && !declared[[2]string{k[1], k[0]}] {
			addEdge(k[0], k[1])
		}
	}
	order := make([]string, 0, len(nodes))
	for n := range nodes {
		order = append(order, n)
	}
	sort.Strings(order)
	for _, dsts := range adj {
		sort.Strings(dsts)
	}

	for _, from := range order {
		for _, to := range adj[from] {
			if to == from {
				lf.reportf(lf.cyclePos([]string{from}), "lock-order edge %s -> %s is a self-loop (a lock never orders before itself)", from, from)
			}
		}
	}

	index := map[string]int{}
	low := map[string]int{}
	onstack := map[string]bool{}
	var stack []string
	next := 0
	var strong func(v string)
	strong = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onstack[v] = true
		for _, c := range adj[v] {
			if _, seen := index[c]; !seen {
				strong(c)
				if low[c] < low[v] {
					low[v] = low[c]
				}
			} else if onstack[c] && index[c] < low[v] {
				low[v] = index[c]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onstack[m] = false
				scc = append(scc, m)
				if m == v {
					break
				}
			}
			if len(scc) > 1 {
				sort.Strings(scc)
				lf.reportf(lf.cyclePos(scc), "lock-order cycle among %s (potential deadlock): break the cycle or fix the lock-order table", strings.Join(scc, ", "))
			}
		}
	}
	for _, n := range order {
		if _, seen := index[n]; !seen {
			strong(n)
		}
	}
}

// cyclePos anchors a cycle diagnostic at its first observed witness; a
// purely declared cycle has no witness and surfaces as an unpositioned
// (unsuppressible) diagnostic — a config bug must always fail the build.
func (lf *lockflow) cyclePos(scc []string) token.Pos {
	in := map[string]bool{}
	for _, n := range scc {
		in[n] = true
	}
	for _, k := range lf.edgeKeys() {
		if in[k[0]] && in[k[1]] {
			return lf.edges[k].pos
		}
	}
	return token.NoPos
}

// ---- public lock-graph API ----

// LockGraphEdge is one edge of the combined lock-order graph: declared in
// config.go, observed by the sweep, or (healthily) both.
type LockGraphEdge struct {
	From, To string
	Declared bool
	Observed bool
	Why      string // declared rationale from config.go
	Witness  string // "file:line: description" of the first observed site
}

// BuildLockGraph runs the lockflow analysis over pkgs and returns the
// combined lock-order graph plus the raw lockflow diagnostics (no
// //lint:ignore filtering — callers wanting suppression semantics should run
// the analyzer through Run instead).
func BuildLockGraph(pkgs []*Package, modulePath string) ([]LockGraphEdge, []Diagnostic) {
	var diags []Diagnostic
	lf := newLockflow(pkgs, modulePath)
	lf.reportf = func(pos token.Pos, format string, args ...any) {
		var p token.Position
		if pos.IsValid() && len(pkgs) > 0 {
			p = pkgs[0].Fset.Position(pos)
		}
		diags = append(diags, Diagnostic{Analyzer: "lockflow", Pos: p, Message: fmt.Sprintf(format, args...)})
	}
	lf.analyze()
	lf.diagnoseGraph()

	var edges []LockGraphEdge
	seen := map[[2]string]bool{}
	for _, d := range lockOrder {
		k := [2]string{d.From, d.To}
		seen[k] = true
		e := LockGraphEdge{From: d.From, To: d.To, Declared: true, Why: d.Why}
		if obs, ok := lf.edges[k]; ok {
			e.Observed = true
			e.Witness = witness(pkgs, obs)
		}
		edges = append(edges, e)
	}
	for _, k := range lf.edgeKeys() {
		if seen[k] {
			continue
		}
		edges = append(edges, LockGraphEdge{
			From: k[0], To: k[1], Observed: true, Witness: witness(pkgs, lf.edges[k]),
		})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	return edges, diags
}

func witness(pkgs []*Package, e *lfEdge) string {
	if len(pkgs) == 0 || !e.pos.IsValid() {
		return e.desc
	}
	p := pkgs[0].Fset.Position(e.pos)
	return fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, e.desc)
}

// LockGraphDOT renders the combined lock-order graph in Graphviz DOT for
// `bullfrog-lint -lockgraph` / `make lint-locks`. Solid edges are declared
// and observed; dashed means declared but never observed (stale candidates);
// bold red means observed but undeclared (diagnostics).
func LockGraphDOT(edges []LockGraphEdge) string {
	var b strings.Builder
	b.WriteString("digraph lockorder {\n")
	b.WriteString("  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n")
	for _, e := range edges {
		attr := ""
		switch {
		case e.Declared && e.Observed:
			attr = fmt.Sprintf("label=%q", e.Why)
		case e.Declared:
			attr = fmt.Sprintf("style=dashed, color=gray, label=%q", e.Why+" (never observed)")
		default:
			attr = fmt.Sprintf("style=bold, color=red, label=%q", "UNDECLARED: "+e.Witness)
		}
		fmt.Fprintf(&b, "  %q -> %q [%s];\n", e.From, e.To, attr)
	}
	b.WriteString("}\n")
	return b.String()
}
