package lint_test

import (
	"testing"

	"github.com/bullfrogdb/bullfrog/internal/lint"
	"github.com/bullfrogdb/bullfrog/internal/lint/linttest"
)

func TestLockHeld(t *testing.T) { linttest.Run(t, "lockheld", lint.LockHeld) }
