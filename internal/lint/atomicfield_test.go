package lint_test

import (
	"testing"

	"github.com/bullfrogdb/bullfrog/internal/lint"
	"github.com/bullfrogdb/bullfrog/internal/lint/linttest"
)

func TestAtomicField(t *testing.T) { linttest.Run(t, "atomicfield", lint.AtomicField) }
