// Package linttest is an analysistest-style fixture runner for the lint
// suite: it type-checks a testdata package, runs one analyzer over it, and
// compares the diagnostics against `// want "regexp"` comments in the
// fixture source. Multiple expectations on one line are written
// `// want "a" "b"`; a line with diagnostics but no want comment (or the
// reverse) fails the test. `//lint:ignore` suppression is applied exactly
// as in the real driver, so fixtures can also prove that suppression works.
package linttest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"github.com/bullfrogdb/bullfrog/internal/lint"
)

var (
	loaderOnce sync.Once
	loaderVal  *lint.Loader
	loaderErr  error
)

// sharedLoader caches one Loader (and its go list invocation) across all
// fixture tests in the process.
func sharedLoader(t *testing.T) *lint.Loader {
	loaderOnce.Do(func() {
		loaderVal, loaderErr = lint.NewLoader(".", false)
	})
	if loaderErr != nil {
		t.Fatalf("loading module: %v", loaderErr)
	}
	return loaderVal
}

// Run analyzes testdata/src/<dir> with the analyzer and checks the
// diagnostics against the fixture's want comments.
func Run(t *testing.T, dir string, a *lint.Analyzer) {
	t.Helper()
	loader := sharedLoader(t)
	abs, err := filepath.Abs(filepath.Join("testdata", "src", dir))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(abs, "fixture/"+dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, _, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{a}, loader.ModulePath)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, pkg)
	type lineKey struct {
		file string
		line int
	}
	got := map[lineKey][]lint.Diagnostic{}
	for _, d := range diags {
		k := lineKey{d.Pos.Filename, d.Pos.Line}
		got[k] = append(got[k], d)
	}
	for k, ws := range wants {
		ds := got[lineKey{k.file, k.line}]
		delete(got, lineKey{k.file, k.line})
		for _, w := range ws {
			matched := false
			for i, d := range ds {
				if w.MatchString(d.Message) {
					ds = append(ds[:i], ds[i+1:]...)
					matched = true
					break
				}
			}
			if !matched {
				t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, w)
			}
		}
		for _, d := range ds {
			t.Errorf("%s: unexpected diagnostic (beyond wants): %s", fmtPos(d.Pos), d.Message)
		}
	}
	for _, ds := range got {
		for _, d := range ds {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", fmtPos(d.Pos), d.Message, d.Analyzer)
		}
	}
}

type wantKey struct {
	file string
	line int
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// collectWants parses `// want "re" "re"` comments, keyed by file:line.
func collectWants(t *testing.T, pkg *lint.Package) map[wantKey][]*regexp.Regexp {
	t.Helper()
	wants := map[wantKey][]*regexp.Regexp{}
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range splitQuoted(t, pos, m[1]) {
					re, err := regexp.Compile(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, q, err)
					}
					k := wantKey{pos.Filename, pos.Line}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}
	return wants
}

// splitQuoted extracts the double-quoted or backquoted strings of a want
// comment's payload.
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' && s[0] != '`' {
			t.Fatalf("%s:%d: malformed want payload at %q", pos.Filename, pos.Line, s)
		}
		q, rest, err := cutQuoted(s)
		if err != nil {
			t.Fatalf("%s:%d: %v", pos.Filename, pos.Line, err)
		}
		out = append(out, q)
		s = strings.TrimSpace(rest)
	}
	return out
}

func cutQuoted(s string) (string, string, error) {
	quote := s[0]
	for i := 1; i < len(s); i++ {
		if s[i] == '\\' && quote == '"' {
			i++
			continue
		}
		if s[i] == quote {
			q, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return "", "", fmt.Errorf("bad quoted string %q: %v", s[:i+1], err)
			}
			return q, s[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated quoted string in %q", s)
}

func fmtPos(p token.Position) string {
	return fmt.Sprintf("%s:%d:%d", p.Filename, p.Line, p.Column)
}
