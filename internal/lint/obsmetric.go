package lint

import (
	"go/ast"
	"go/types"
	"reflect"
	"regexp"
	"strings"
)

// ObsMetric enforces the observability registry contract. BullFrog's
// metrics are not string-registered at runtime; the registry IS the obs
// package's type structure, so "registered" means: declared as a field of a
// *Metrics struct, mirrored in the matching *Snapshot struct under a
// compile-time-constant JSON name, and copied by (*Set).Snapshot. The
// analyzer checks, inside the obs package:
//
//   - every Counter/Gauge/Histogram field of an XMetrics struct has a
//     same-named field in XSnapshot (a metric you can increment but never
//     observe in \metrics or the bench timeline is a silent hole);
//   - snapshot JSON tags are non-empty snake_case literals and globally
//     unique across the section snapshots (names are the wire contract);
//   - (*Set).Snapshot reads every metric field exactly once (zero reads =
//     unexported metric, two reads = double-counted export);
//   - NewSet initializes every Set section (a nil section panics on first
//     increment).
//
// And everywhere else in the repo: metric updates (Inc/Add/Observe/
// ObserveSince/Set) must go through a field of an obs *Metrics struct —
// free-floating obs.Counter variables would never appear in any snapshot,
// i.e. they are increments before (ever) registering.
// The same contract extends to the trace-event registry (internal/obs/trace):
// inside the trace package every EventKind constant must have a unique
// snake_case entry in the eventNames table, and everywhere else ring writes
// (Ring.Record, Tracer.Event) must name a declared EventKind constant. See
// obstrace.go.
var ObsMetric = &Analyzer{
	Name: "obsmetric",
	Doc:  "obs metrics and trace events must be registered exactly once, under unique constant names, and never updated outside the registry",
	Run:  runObsMetric,
}

var snakeCaseRe = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

func runObsMetric(pass *Pass) error {
	if pass.Name == "obs" {
		runObsMetricRegistry(pass)
	}
	if pass.Name == "trace" {
		runObsTraceRegistry(pass)
	}
	runObsMetricUse(pass)
	runObsTraceUse(pass)
	return nil
}

// metricKind classifies obs metric value types declared in THIS package
// (the analyzer runs over the obs package itself, so the types are local).
func metricFieldKind(t types.Type) string {
	named := namedOf(t)
	if named == nil {
		// [N]Histogram arrays count as histogram-valued.
		if arr, ok := t.Underlying().(*types.Array); ok {
			if n := namedOf(arr.Elem()); n != nil && n.Obj().Name() == "Histogram" {
				return "HistogramArray"
			}
		}
		return ""
	}
	switch named.Obj().Name() {
	case "Counter", "Gauge", "Histogram":
		return named.Obj().Name()
	}
	return ""
}

func runObsMetricRegistry(pass *Pass) {
	scope := pass.Types.Scope()

	// Collect XMetrics and XSnapshot structs.
	metricsStructs := map[string]*types.Struct{} // "Engine" -> struct of EngineMetrics
	snapshotStructs := map[string]*types.Struct{}
	declPos := map[string]*types.TypeName{}
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		if base, ok := strings.CutSuffix(name, "Metrics"); ok && base != "" {
			metricsStructs[base] = st
			declPos[name] = tn
		}
		if base, ok := strings.CutSuffix(name, "Snapshot"); ok && base != "" && base != "Histogram" {
			snapshotStructs[base] = st
			declPos[name] = tn
		}
	}

	// Rule: each metric field mirrors into the matching snapshot struct.
	metricFields := map[*types.Var]string{} // field -> "X.Field" label
	for base, mst := range metricsStructs {
		sst := snapshotStructs[base]
		for i := 0; i < mst.NumFields(); i++ {
			field := mst.Field(i)
			kind := metricFieldKind(field.Type())
			if kind == "" {
				continue
			}
			metricFields[field] = base + "." + field.Name()
			if sst == nil {
				pass.Reportf(field.Pos(), "metric %sMetrics.%s has no %sSnapshot struct to be exported in", base, field.Name(), base)
				continue
			}
			if !structHasField(sst, field.Name()) {
				pass.Reportf(field.Pos(), "metric %sMetrics.%s is not mirrored in %sSnapshot: it will never appear in Set.Snapshot output", base, field.Name(), base)
			}
		}
	}

	// Rule: snapshot JSON tags are constant snake_case and globally unique
	// across the sections that mirror metrics structs.
	seenTags := map[string]string{} // tag -> "XSnapshot.Field"
	for base, sst := range snapshotStructs {
		if _, isSection := metricsStructs[base]; !isSection {
			continue
		}
		for i := 0; i < sst.NumFields(); i++ {
			field := sst.Field(i)
			tag := reflect.StructTag(sst.Tag(i)).Get("json")
			tag, _, _ = strings.Cut(tag, ",")
			where := base + "Snapshot." + field.Name()
			if tag == "" {
				pass.Reportf(field.Pos(), "snapshot field %s has no json tag: metric names must be explicit compile-time constants", where)
				continue
			}
			if !snakeCaseRe.MatchString(tag) {
				pass.Reportf(field.Pos(), "snapshot field %s has json tag %q: metric names must be snake_case", where, tag)
			}
			if prev, dup := seenTags[tag]; dup {
				pass.Reportf(field.Pos(), "snapshot field %s reuses json tag %q (already used by %s): metric names must be globally unique", where, tag, prev)
			} else {
				seenTags[tag] = where
			}
		}
	}

	// Rule: (*Set).Snapshot reads each metric field exactly once.
	if snapBody := findMethodBody(pass, "Set", "Snapshot"); snapBody != nil {
		reads := map[*types.Var][]ast.Node{}
		ast.Inspect(snapBody, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if obj, ok := pass.Info.Uses[sel.Sel].(*types.Var); ok {
				if _, isMetric := metricFields[obj]; isMetric {
					reads[obj] = append(reads[obj], sel)
				}
			}
			return true
		})
		for field, label := range metricFields {
			switch n := len(reads[field]); {
			case n == 0:
				pass.Reportf(field.Pos(), "metric %s is never read by (*Set).Snapshot: registered but not exported", label)
			case n > 1:
				pass.Reportf(reads[field][1].Pos(), "metric %s is read %d times by (*Set).Snapshot: each metric must be exported exactly once", label, n)
			}
		}
	} else if len(metricFields) > 0 {
		pass.Reportf(pass.Syntax[0].Name.Pos(), "obs package declares metrics but has no (*Set).Snapshot method")
	}

	// Rule: NewSet initializes every Set field.
	if setTN, ok := scope.Lookup("Set").(*types.TypeName); ok {
		if setStruct, ok := setTN.Type().Underlying().(*types.Struct); ok {
			if newBody := findFuncBody(pass, "NewSet"); newBody != nil {
				inited := map[string]bool{}
				ast.Inspect(newBody, func(n ast.Node) bool {
					kv, ok := n.(*ast.KeyValueExpr)
					if !ok {
						return true
					}
					if id, ok := kv.Key.(*ast.Ident); ok {
						inited[id.Name] = true
					}
					return true
				})
				for i := 0; i < setStruct.NumFields(); i++ {
					f := setStruct.Field(i)
					if !inited[f.Name()] {
						pass.Reportf(f.Pos(), "Set.%s is not initialized by NewSet: a nil section panics on first record", f.Name())
					}
				}
			}
		}
	}
}

func structHasField(st *types.Struct, name string) bool {
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return true
		}
	}
	return false
}

func findMethodBody(pass *Pass, recv, name string) *ast.BlockStmt {
	var body *ast.BlockStmt
	for _, f := range pass.Syntax {
		funcsOf(f, func(n string, decl *ast.FuncDecl, b *ast.BlockStmt) {
			if n == name && recvQualified(pass.Info, decl) == recv+"."+name {
				body = b
			}
		})
	}
	return body
}

func findFuncBody(pass *Pass, name string) *ast.BlockStmt {
	var body *ast.BlockStmt
	for _, f := range pass.Syntax {
		funcsOf(f, func(n string, decl *ast.FuncDecl, b *ast.BlockStmt) {
			if n == name && decl.Recv == nil {
				body = b
			}
		})
	}
	return body
}

// metricUpdateMethods are the write-path methods of obs metric types.
var metricUpdateMethods = map[string]bool{
	"Inc": true, "Add": true, "Observe": true, "ObserveSince": true, "Set": true,
}

// runObsMetricUse checks, outside obs itself, that metric updates resolve
// through a field of an obs *Metrics struct.
func runObsMetricUse(pass *Pass) {
	if pass.Name == "obs" {
		return
	}
	for _, f := range pass.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || !metricUpdateMethods[fn.Name()] {
				return true
			}
			sig, _ := fn.Type().(*types.Signature)
			if sig == nil || sig.Recv() == nil {
				return true
			}
			named := namedOf(sig.Recv().Type())
			if named == nil || named.Obj().Pkg() == nil || named.Obj().Pkg().Name() != "obs" {
				return true
			}
			switch named.Obj().Name() {
			case "Counter", "Gauge", "Histogram":
			default:
				return true
			}
			if !updateThroughRegistry(pass, call) {
				pass.Reportf(call.Pos(), "obs.%s.%s outside the metric registry: metrics must live in an obs *Metrics struct so Set.Snapshot exports them", named.Obj().Name(), fn.Name())
			}
			return true
		})
	}
}

// updateThroughRegistry reports whether the call's receiver chain passes
// through a field of a struct named *Metrics in package obs (possibly via
// an index expression, e.g. Exec[k]).
func updateThroughRegistry(pass *Pass, call *ast.CallExpr) bool {
	recv := recvOfCall(call)
	for recv != nil {
		recv = ast.Unparen(recv)
		if ix, ok := recv.(*ast.IndexExpr); ok {
			recv = ix.X
			continue
		}
		sel, ok := recv.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		if tsel, ok := pass.Info.Selections[sel]; ok && tsel.Obj() != nil {
			if owner := namedOf(tsel.Recv()); owner != nil {
				o := owner.Obj()
				if o.Pkg() != nil && o.Pkg().Name() == "obs" && strings.HasSuffix(o.Name(), "Metrics") {
					return true
				}
			}
		}
		recv = sel.X
	}
	return false
}
