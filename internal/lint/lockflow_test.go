package lint_test

import (
	"testing"

	"github.com/bullfrogdb/bullfrog/internal/lint"
	"github.com/bullfrogdb/bullfrog/internal/lint/linttest"
)

func TestLockFlow(t *testing.T)      { linttest.Run(t, "lockflow", lint.LockFlow) }
func TestLockFlowIface(t *testing.T) { linttest.Run(t, "lockflowiface", lint.LockFlow) }
func TestLockFlowSCC(t *testing.T)   { linttest.Run(t, "lockflowscc", lint.LockFlow) }
func TestLockFlowStale(t *testing.T) { linttest.Run(t, "lockflowstale", lint.LockFlow) }
