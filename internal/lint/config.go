package lint

// This file is the suite's project configuration: which locks order before
// which, which calls count as blocking, which packages must thread contexts,
// and which error returns must never be dropped. Identifiers are
// module-relative ("internal/txn.Manager.commitMu" means field commitMu of
// type Manager in <module>/internal/txn), so the config survives a module
// rename. Entries under "fixture/" configure the analyzers' testdata
// packages and are exercised by the analyzer unit tests.

// lockRank orders the engine's mutexes: a lock may only be acquired while
// holding locks of strictly lower rank. Locks absent from the table are
// unordered — acquiring one while any lock is held is flagged, which forces
// every nested-lock site to be ranked here (or carry an ignore with a
// reason).
var lockRank = map[string]int{
	// txn: the commit mutex serializes sequence assignment and is taken
	// before per-shard state mutexes (Txn.Commit -> setState); the sharded
	// lock-table mutexes are leaves.
	"internal/txn.Manager.commitMu": 10,
	"internal/txn.stateShard.mu":    20,
	"internal/txn.lockShard.mu":     30,

	// core: the controller's registry lock is taken before any tracker
	// internals; bitmap chunk and hash shard mutexes are leaves.
	"internal/core.Controller.mu":  10,
	"internal/core.bitmapChunk.mu": 30,
	"internal/core.hashShard.mu":   30,

	// Fixture locks (testdata/src/lockheld).
	"fixture/lockheld.server.order1": 10,
	"fixture/lockheld.server.order2": 20,
}

// blockingFuncs are calls that can block indefinitely (or for scheduling-
// visible time) and are therefore forbidden while any mutex is held.
// Method names cover both value and pointer receivers; interface methods
// are named by the interface type.
var blockingFuncs = map[string]bool{
	"time.Sleep":          true,
	"sync.WaitGroup.Wait": true,
	"sync.Cond.Wait":      true,
	"os.File.Sync":        true,

	// The WAL serializes appends behind its own mutex and may hit the disk:
	// never call it while holding an unrelated lock. AppendBatch additionally
	// parks on the group-commit leader's fsync; EnterCommit/BeginCheckpoint
	// park on the checkpoint fence.
	"internal/wal.Writer.Append":            true,
	"internal/wal.Writer.Flush":             true,
	"internal/wal.Writer.AppendBatch":       true,
	"internal/wal.Logger.Append":            true,
	"internal/wal.Logger.Flush":             true,
	"internal/wal.BatchLogger.AppendBatch":  true,
	"internal/wal.CommitFencer.EnterCommit": true,
	"internal/wal.Dir.Append":               true,
	"internal/wal.Dir.Flush":                true,
	"internal/wal.Dir.AppendBatch":          true,
	"internal/wal.Dir.EnterCommit":          true,
	"internal/wal.Dir.BeginCheckpoint":      true,
	"internal/wal.Replay":                   true,

	// Tuple/key lock acquisition waits up to the lock timeout.
	"internal/txn.Txn.Lock":                 true,
	"internal/txn.Txn.LockTimeout":          true,
	"internal/txn.LockTable.Acquire":        true,
	"internal/txn.LockTable.AcquireContext": true,
}

// blockingPkgPrefixes: any call into these package path prefixes is
// considered blocking (network and direct file IO).
var blockingPkgPrefixes = []string{"net", "net/http"}

// ctxflowScope are the module-relative packages whose exported blocking
// entry points must accept a context.Context and whose bodies must not mint
// background contexts (module root "" is the facade).
var ctxflowScope = []string{"", "internal/core", "internal/engine"}

// errdropScope are the module-relative packages where an error result may
// never be implicitly dropped (call used as a statement). The obs packages
// are in scope because a silently-failing diagnostics surface is a
// diagnostics surface that lies — drops there must be explicit `_ =` with a
// reason.
var errdropScope = []string{
	"", "internal/wal", "internal/txn", "internal/core", "internal/engine",
	"internal/obs", "internal/obs/trace",
}

// errdropWatch are durability- and recovery-path calls whose error may not
// even be explicitly discarded with `_ =` (a dropped error here can silently
// lose committed data or recovery state).
var errdropWatch = map[string]bool{
	"internal/wal.Writer.Append":               true,
	"internal/wal.Writer.Flush":                true,
	"internal/wal.Writer.AppendBatch":          true,
	"internal/wal.Logger.Append":               true,
	"internal/wal.Logger.Flush":                true,
	"internal/wal.BatchLogger.AppendBatch":     true,
	"internal/wal.Dir.Append":                  true,
	"internal/wal.Dir.Flush":                   true,
	"internal/wal.Dir.AppendBatch":             true,
	"internal/wal.Dir.CompleteCheckpoint":      true,
	"internal/wal.CheckpointWriter.Append":     true,
	"internal/wal.CheckpointWriter.Commit":     true,
	"internal/wal.Replay":                      true,
	"internal/engine.DB.Commit":                true,
	"internal/engine.DB.Recover":               true,
	"internal/engine.DB.RecoverFrom":           true,
	"internal/engine.DB.InstallCatalogVersion": true,
	"internal/core.Controller.Recover":         true,
	"internal/core.Controller.RecoverFrom":     true,
	"internal/txn.Txn.Commit":                  true,

	// Fixture calls (testdata/src/errdrop).
	"fixture/errdrop.mustWatch": true,
}

// trimModule rewrites "<module>/rest.Sym" identifiers to "rest.Sym" so they
// can be matched against the module-relative config keys above.
func trimModule(id, modulePath string) string {
	if rest, ok := cutPrefix(id, modulePath+"/"); ok {
		return rest
	}
	if rest, ok := cutPrefix(id, modulePath+"."); ok {
		// Symbol in the module root package.
		return rest
	}
	return id
}

func cutPrefix(s, prefix string) (string, bool) {
	if len(s) >= len(prefix) && s[:len(prefix)] == prefix {
		return s[len(prefix):], true
	}
	return s, false
}
