package lint

// This file is the suite's project configuration: which locks order before
// which, which calls count as blocking, which packages must thread contexts,
// and which error returns must never be dropped. Identifiers are
// module-relative ("internal/txn.Manager.commitMu" means field commitMu of
// type Manager in <module>/internal/txn), so the config survives a module
// rename. Entries under "fixture/" configure the analyzers' testdata
// packages and are exercised by the analyzer unit tests.

// lockOrderEdge declares one legal nesting in the engine's lock-order graph:
// To may be acquired while From is held. Why records the justification and is
// emitted in the DOT graph (`bullfrog-lint -lockgraph`).
type lockOrderEdge struct {
	From, To string
	Why      string
}

// lockOrder is the engine's declared lock-order graph — the checked source of
// truth. lockflow computes the *observed* graph over the whole module
// (including nestings that happen across calls) and diffs it against this
// table: an observed edge that is not declared here is a diagnostic, a
// declared edge the sweep never observes is a stale-config diagnostic, and
// any cycle in the combined graph is a potential deadlock. Every edge must
// carry a rationale; adding an edge is a claim that the nesting is deliberate
// and deadlock-free.
var lockOrder = []lockOrderEdge{
	// txn: Txn.Commit assigns the commit sequence under commitMu and must
	// publish the committed status (setState -> stateShard.mu) before
	// releasing it, so no snapshot taken after the sequence advances can miss
	// the commit. This is the cross-call nesting that motivated lockflow.
	{
		From: "internal/txn.Manager.commitMu",
		To:   "internal/txn.stateShard.mu",
		Why:  "Txn.Commit publishes status via setState while holding the commit mutex so commitSeq and txn state advance atomically",
	},

	// core: Controller.mu is the engine's outermost lock. Start holds it
	// across migration activation — setup DDL, unique prevalidation, the
	// catalog version install — and the lazy/hook paths (EnsureMigrated*,
	// markRuntimeComplete) hold it while driving tracker, index, heap, txn,
	// WAL, and plan-cache work. Every engine lock may therefore be acquired
	// under it, and nothing may acquire it while holding anything else (the
	// graph stays a DAG only if Controller.mu has no incoming edges).
	{
		From: "internal/core.Controller.mu",
		To:   "internal/catalog.Table.mu",
		Why:  "migration start and lazy hooks read table schemas under the controller lock",
	},
	{
		From: "internal/core.Controller.mu",
		To:   "internal/core.Bitmap.growMu",
		Why:  "chained lazy migration grows the downstream bitmap while the controller lock pins the runtime set",
	},
	{
		From: "internal/core.Controller.mu",
		To:   "internal/core.bitmapChunk.mu",
		Why:  "EnsureMigrated marks progress bitmap chunks while the controller lock pins the runtime set",
	},
	{
		From: "internal/core.Controller.mu",
		To:   "internal/core.hashTrackerShard.mu",
		Why:  "EnsureMigrated consults tracker shards while the controller lock pins the runtime set",
	},
	{
		From: "internal/core.Controller.mu",
		To:   "internal/engine.DB.installMu",
		Why:  "Start serializes the catalog version install (the big flip) under the controller lock",
	},
	{
		From: "internal/core.Controller.mu",
		To:   "internal/engine.planCache.mu",
		Why:  "Start and markRuntimeComplete invalidate compiled plans after a schema flip",
	},
	{
		From: "internal/core.Controller.mu",
		To:   "internal/index.BTree.mu",
		Why:  "setup DDL and lazy backfill touch secondary indexes under the controller lock",
	},
	{
		From: "internal/core.Controller.mu",
		To:   "internal/index.hashShard.mu",
		Why:  "setup DDL and lazy backfill touch hash indexes under the controller lock",
	},
	{
		From: "internal/core.Controller.mu",
		To:   "internal/obs/trace.Tracer.slowMu",
		Why:  "migration spans finish (and may log slow ops) while the controller lock is held",
	},
	{
		From: "internal/core.Controller.mu",
		To:   "internal/storage.Heap.mu",
		Why:  "setup DDL and lazy backfill read and grow heaps under the controller lock",
	},
	{
		From: "internal/core.Controller.mu",
		To:   "internal/storage.page.mu",
		Why:  "heap access under the controller lock takes page latches",
	},
	{
		From: "internal/core.Controller.mu",
		To:   "internal/txn.Manager.activeMu",
		Why:  "statements executed under the controller lock register and finish transactions",
	},
	{
		From: "internal/core.Controller.mu",
		To:   "internal/txn.Manager.commitMu",
		Why:  "statements executed under the controller lock commit through the commit mutex",
	},
	{
		From: "internal/core.Controller.mu",
		To:   "internal/txn.lockShard.mu",
		Why:  "statements executed under the controller lock acquire tuple locks",
	},
	{
		From: "internal/core.Controller.mu",
		To:   "internal/txn.stateShard.mu",
		Why:  "commit/abort under the controller lock publishes txn state",
	},
	{
		From: "internal/core.Controller.mu",
		To:   "internal/wal.Writer.mu",
		Why:  "setup DDL and migration commits executed under the controller lock append to the WAL",
	},

	// Fixture locks (testdata/src/lockflow*): edges exercised by the
	// analyzer's linttest fixtures.
	{
		From: "fixture/lockflow.server.order1",
		To:   "fixture/lockflow.server.order2",
		Why:  "fixture: the declared direction for the intraprocedural ordering cases",
	},
	{
		From: "fixture/lockflow.server.order3",
		To:   "fixture/lockflow.server.order4",
		Why:  "fixture: the declared direction inverted through a helper call",
	},
	{
		From: "fixture/lockflowstale.box.seen1",
		To:   "fixture/lockflowstale.box.seen2",
		Why:  "fixture: observed by the fixture, proving declared+observed edges stay quiet",
	},
	{
		From: "fixture/lockflowstale.box.ghost1",
		To:   "fixture/lockflowstale.box.ghost2",
		Why:  "fixture: deliberately never observed, proving stale-config detection",
	},
}

// trustedCallbacks names functions whose function-typed parameters are
// contractually forbidden to block or acquire locks (the contract is stated
// in each function's doc comment). Calls through function values inside these
// hosts are not widened to "assumed blocking"; everywhere else an indirect
// call is an unknown callee and lockflow assumes the worst. Keep this list
// short: every entry is a hole in the analysis that a careless callback can
// fall through.
var trustedCallbacks = map[string]bool{
	// "fn must not block or mutate the chain" / "fn must not mutate this
	// heap": View/Mutate/Scan/ScanRange callbacks run under a page latch and
	// are nanosecond-scale copy-in/copy-out by contract; Vacuum's prunable is
	// a pure predicate over version visibility.
	"internal/storage.Heap.View":      true,
	"internal/storage.Heap.Mutate":    true,
	"internal/storage.Heap.Scan":      true,
	"internal/storage.Heap.ScanRange": true,
	"internal/storage.Heap.Vacuum":    true,

	// "publish must not block (no I/O, no lock waits)": the install barrier
	// runs publish under commitMu by design — that is its entire point — and
	// the catalog CAS it performs is lock-free.
	"internal/txn.Manager.InstallBarrier": true,

	// "The callback must not modify the tree": AscendRange's visitor runs
	// under the tree's read latch and is a per-posting accumulator by
	// contract.
	"internal/index.BTree.AscendRange": true,

	// mutate's fn edits a draft catalog clone inside a CAS retry loop; a
	// blocking fn would be re-run under contention, so the contract is pure
	// in-memory mutation.
	"internal/catalog.Catalog.mutate": true,

	// Fixture host (testdata/src/lockflowiface).
	"fixture/lockflowiface.runner.trusted": true,
}

// coarseLocks are admin/serialization mutexes that are deliberately held
// across operations that wait: Controller.mu is the migration control-plane
// lock (Start holds it across setup DDL and the catalog install — migration
// activation is allowed to take milliseconds), and the tracer's slowMu exists
// to serialize slow-log writes to one io.Writer. For these, lockflow enforces
// lock ordering and self-deadlock freedom but not the no-blocking rule; every
// data-plane lock stays under the strict rule, so keep this list to locks
// whose critical sections are control-plane by design.
var coarseLocks = map[string]bool{
	"internal/core.Controller.mu":      true,
	"internal/obs/trace.Tracer.slowMu": true,
}

// blockingFuncs are calls that can block indefinitely (or for scheduling-
// visible time) and are therefore forbidden while any mutex is held.
// Method names cover both value and pointer receivers; interface methods
// are named by the interface type.
var blockingFuncs = map[string]bool{
	"time.Sleep":          true,
	"sync.WaitGroup.Wait": true,
	"sync.Cond.Wait":      true,
	"os.File.Sync":        true,

	// The WAL serializes appends behind its own mutex and may hit the disk:
	// never call it while holding an unrelated lock. AppendBatch additionally
	// parks on the group-commit leader's fsync; EnterCommit/BeginCheckpoint
	// park on the checkpoint fence.
	"internal/wal.Writer.Append":            true,
	"internal/wal.Writer.Flush":             true,
	"internal/wal.Writer.AppendBatch":       true,
	"internal/wal.Logger.Append":            true,
	"internal/wal.Logger.Flush":             true,
	"internal/wal.BatchLogger.AppendBatch":  true,
	"internal/wal.CommitFencer.EnterCommit": true,
	"internal/wal.Dir.Append":               true,
	"internal/wal.Dir.Flush":                true,
	"internal/wal.Dir.AppendBatch":          true,
	"internal/wal.Dir.EnterCommit":          true,
	"internal/wal.Dir.BeginCheckpoint":      true,
	"internal/wal.Replay":                   true,

	// Tuple/key lock acquisition waits up to the lock timeout.
	"internal/txn.Txn.Lock":                 true,
	"internal/txn.Txn.LockTimeout":          true,
	"internal/txn.LockTable.Acquire":        true,
	"internal/txn.LockTable.AcquireContext": true,
}

// blockingPkgPrefixes: any call into these package path prefixes is
// considered blocking (network and direct file IO).
var blockingPkgPrefixes = []string{"net", "net/http"}

// ctxflowScope are the module-relative packages whose exported blocking
// entry points must accept a context.Context and whose bodies must not mint
// background contexts (module root "" is the facade).
var ctxflowScope = []string{"", "internal/core", "internal/engine"}

// errdropScope are the module-relative packages where an error result may
// never be implicitly dropped (call used as a statement). The obs packages
// are in scope because a silently-failing diagnostics surface is a
// diagnostics surface that lies — drops there must be explicit `_ =` with a
// reason.
var errdropScope = []string{
	"", "internal/wal", "internal/txn", "internal/core", "internal/engine",
	"internal/obs", "internal/obs/trace", "internal/schemaver",
}

// errdropWatch are durability- and recovery-path calls whose error may not
// even be explicitly discarded with `_ =` (a dropped error here can silently
// lose committed data or recovery state).
var errdropWatch = map[string]bool{
	"internal/wal.Writer.Append":               true,
	"internal/wal.Writer.Flush":                true,
	"internal/wal.Writer.AppendBatch":          true,
	"internal/wal.Logger.Append":               true,
	"internal/wal.Logger.Flush":                true,
	"internal/wal.BatchLogger.AppendBatch":     true,
	"internal/wal.Dir.Append":                  true,
	"internal/wal.Dir.Flush":                   true,
	"internal/wal.Dir.AppendBatch":             true,
	"internal/wal.Dir.CompleteCheckpoint":      true,
	"internal/wal.CheckpointWriter.Append":     true,
	"internal/wal.CheckpointWriter.Commit":     true,
	"internal/wal.Replay":                      true,
	"internal/engine.DB.Commit":                true,
	"internal/engine.DB.Recover":               true,
	"internal/engine.DB.RecoverFrom":           true,
	"internal/engine.DB.InstallCatalogVersion": true,
	"internal/core.Controller.Recover":         true,
	"internal/core.Controller.RecoverFrom":     true,
	"internal/txn.Txn.Commit":                  true,

	// Fixture calls (testdata/src/errdrop).
	"fixture/errdrop.mustWatch": true,
}

// trimModule rewrites "<module>/rest.Sym" identifiers to "rest.Sym" so they
// can be matched against the module-relative config keys above.
func trimModule(id, modulePath string) string {
	if rest, ok := cutPrefix(id, modulePath+"/"); ok {
		return rest
	}
	if rest, ok := cutPrefix(id, modulePath+"."); ok {
		// Symbol in the module root package.
		return rest
	}
	return id
}

func cutPrefix(s, prefix string) (string, bool) {
	if len(s) >= len(prefix) && s[:len(prefix)] == prefix {
		return s[len(prefix):], true
	}
	return s, false
}
