package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// calleeFunc resolves the *types.Func a call invokes (methods through
// selections, functions through idents), or nil for indirect calls through
// function values, conversions, and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Package-qualified call: pkg.F.
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// funcQName renders a *types.Func as "pkgpath.Func" or
// "pkgpath.Recv.Method" (pointer receivers are stripped, so one name covers
// both receiver forms; interface methods use the interface type's name).
func funcQName(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			pkg := ""
			if obj.Pkg() != nil {
				pkg = obj.Pkg().Path() + "."
			}
			return pkg + obj.Name() + "." + fn.Name()
		}
		if iface, ok := t.(*types.Interface); ok {
			_ = iface
			return "interface." + fn.Name()
		}
		return fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	return fn.Name()
}

// namedOf unwraps pointers and returns the named type, or nil.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// isNamedType reports whether t (or *t) is the named type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// recvOfCall returns the receiver expression of a method call (x in
// x.M(...)), or nil.
func recvOfCall(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

// lockID names a mutex for lock-order configuration: a struct field becomes
// "pkgpath.Type.field"; a package-level or local variable becomes
// "pkgpath.var" / "var".
func lockID(info *types.Info, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			if named := namedOf(sel.Recv()); named != nil {
				obj := named.Obj()
				pkg := ""
				if obj.Pkg() != nil {
					pkg = obj.Pkg().Path() + "."
				}
				return pkg + obj.Name() + "." + e.Sel.Name
			}
		}
		return lockID(info, e.X) + "." + e.Sel.Name
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + e.Name
		}
		return e.Name
	case *ast.IndexExpr:
		return lockID(info, e.X) + "[]"
	}
	return types.ExprString(e)
}

// exprKey is a within-function identity for a lock expression: two
// syntactically identical selector chains refer to the same mutex for our
// purposes (aliasing is out of scope, as it is for go vet's lock checks).
func exprKey(e ast.Expr) string { return types.ExprString(ast.Unparen(e)) }

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return isNamedType(t, "context", "Context")
}

// hasSuffixPath reports whether pkgPath is path or ends with "/"+path.
func hasSuffixPath(pkgPath, path string) bool {
	return pkgPath == path || strings.HasSuffix(pkgPath, "/"+path)
}
