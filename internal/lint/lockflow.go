package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockFlow is the interprocedural successor to the old intraprocedural
// lockheld analyzer. It enforces the engine's lock discipline — never block,
// and never take a second lock out of order, while holding an engine mutex —
// across call boundaries:
//
//  1. It builds a call graph over every loaded package: static calls resolve
//     directly, interface calls resolve to the method sets of all in-module
//     implementations, and calls it cannot resolve (function values, unknown
//     interfaces) are widened to "assumed blocking" unless the enclosing
//     function is declared in trustedCallbacks.
//  2. It computes one lock summary per function — may the function block
//     (and via which call chain), which lock identities it acquires, which
//     it releases on the caller's behalf, and which it leaves held at exit —
//     by fixpoint iteration over the call graph's strongly connected
//     components in reverse topological order (callees first), so each
//     summary is computed once and cached, never per diagnostic.
//  3. Summaries propagate to call sites: "blocking while holding mu" is
//     reported even when the block happens several calls down, with the call
//     chain in the diagnostic; helpers that lock or unlock for their caller
//     (heldAtExit / releases) extend the caller's critical section.
//  4. Every acquire-while-holding pair becomes an edge in a global
//     lock-order graph that is diffed against the declared lockOrder table
//     in config.go: an observed edge that is not declared is a diagnostic, a
//     declared edge never observed is a stale-config diagnostic, and any
//     cycle in the combined graph is a potential deadlock (lockgraph.go).
//
// Known blind spots, in exchange for zero false-positive noise: closures
// passed as callbacks are analyzed with an empty held set (they do not
// inherit the host's critical section — trustedCallbacks covers the hosts
// that run callbacks under a latch), deferred closures likewise, and lock
// identity is per-type (two shards of the same lock type are one identity).
var LockFlow = &Analyzer{
	Name:      "lockflow",
	Doc:       "interprocedural lock analysis: blocking or out-of-order acquisition while a mutex is held, propagated across calls, plus the global lock-order graph diff against config.go",
	RunModule: runLockFlow,
}

func runLockFlow(mp *ModulePass) error {
	lf := newLockflow(mp.Packages, mp.ModulePath)
	lf.reportf = mp.Reportf
	lf.analyze()
	lf.diagnoseGraph()
	return nil
}

// heldLock is one mutex held at a program point.
type heldLock struct {
	key  string // within-function identity: selector spelling, e.g. "s.mu"
	id   string // config identity, e.g. "internal/txn.Manager.commitMu"
	read bool   // held via RLock
	line int    // acquisition line (or the call line, for callee-acquired)
	via  []string // call chain that acquired it; empty = acquired directly
}

type lockOp struct {
	recv    ast.Expr
	acquire bool
	read    bool
}

// lockCall classifies a call as Lock/RLock/Unlock/RUnlock on a
// sync.Mutex/RWMutex (directly or promoted through embedding).
func lockCall(info *types.Info, call *ast.CallExpr) *lockOp {
	fn := calleeFunc(info, call)
	if fn == nil {
		return nil
	}
	var acquire, read bool
	switch fn.Name() {
	case "Lock":
		acquire = true
	case "RLock":
		acquire, read = true, true
	case "Unlock":
	case "RUnlock":
		read = true
	default:
		return nil
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if !isNamedType(t, "sync", "Mutex") && !isNamedType(t, "sync", "RWMutex") {
		return nil
	}
	recv := recvOfCall(call)
	if recv == nil {
		return nil
	}
	return &lockOp{recv: recv, acquire: acquire, read: read}
}

// lfAcq is one lock acquisition recorded in a summary.
type lfAcq struct {
	id   string
	read bool
	via  []string // chain of callees below the summarized function; empty = direct
}

// lfSummary is the lock summary of one function: the per-function element of
// the analysis lattice. All fields grow monotonically within a fixpoint
// (first-win for the cosmetic via chains), which guarantees convergence.
type lfSummary struct {
	blocks     bool
	blockVia   []string // call chain to the blocking operation; last element describes it
	acquires   map[string]*lfAcq
	releases   map[string]bool   // lock ids released without a matching acquire (unlock helpers)
	heldAtExit map[string]*lfAcq // lock ids held on every return path (lock helpers)
}

func newSummary() *lfSummary {
	return &lfSummary{
		acquires:   map[string]*lfAcq{},
		releases:   map[string]bool{},
		heldAtExit: map[string]*lfAcq{},
	}
}

func (s *lfSummary) setBlocks(via []string) {
	if !s.blocks {
		s.blocks = true
		s.blockVia = capChain(via)
	}
}

func (s *lfSummary) acquire(id string, read bool, via []string) {
	if _, ok := s.acquires[id]; !ok {
		s.acquires[id] = &lfAcq{id: id, read: read, via: capChain(via)}
	}
}

// sig is the convergence signature: the summary's facts, excluding the
// cosmetic via chains (which could otherwise grow through recursion).
func (s *lfSummary) sig() string {
	var b strings.Builder
	if s.blocks {
		b.WriteString("B;")
	}
	for _, id := range sortedKeys(s.acquires) {
		b.WriteString("a:" + id)
		if s.acquires[id].read {
			b.WriteString("/r")
		}
		b.WriteString(";")
	}
	rel := make([]string, 0, len(s.releases))
	for id := range s.releases {
		rel = append(rel, id)
	}
	sort.Strings(rel)
	for _, id := range rel {
		b.WriteString("r:" + id + ";")
	}
	for _, id := range sortedKeys(s.heldAtExit) {
		b.WriteString("h:" + id + ";")
	}
	return b.String()
}

// lfFunc is one module function with a body: a call-graph node.
type lfFunc struct {
	fn      *types.Func
	decl    *ast.FuncDecl
	pkg     *Package
	name    string // module-relative qualified name, e.g. "internal/txn.Manager.setState"
	callees []*lfFunc
}

// lfEdge is one observed acquire-while-holding pair: from is held when to is
// acquired. One witness (the first, in deterministic analysis order) is kept.
type lfEdge struct {
	from, to string
	pos      token.Pos
	desc     string
}

type lockflow struct {
	pkgs       []*Package
	modulePath string
	reportf    func(pos token.Pos, format string, args ...any)

	funcs     map[*types.Func]*lfFunc
	order     []*lfFunc
	named     []*types.Named
	implCache map[*types.Func][]*types.Func
	summaries map[*types.Func]*lfSummary
	edges     map[[2]string]*lfEdge
	emitting  bool
}

var lfEmpty = newSummary()

func newLockflow(pkgs []*Package, modulePath string) *lockflow {
	lf := &lockflow{
		pkgs:       pkgs,
		modulePath: modulePath,
		funcs:      map[*types.Func]*lfFunc{},
		implCache:  map[*types.Func][]*types.Func{},
		summaries:  map[*types.Func]*lfSummary{},
		edges:      map[[2]string]*lfEdge{},
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil || pkg.IsTestFile(fd.Pos()) {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				node := &lfFunc{
					fn: fn, decl: fd, pkg: pkg,
					name: trimModule(funcQName(fn), modulePath),
				}
				lf.funcs[fn] = node
				lf.order = append(lf.order, node)
			}
		}
		scope := pkg.Types.Scope()
		for _, nm := range scope.Names() {
			tn, ok := scope.Lookup(nm).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || named.TypeParams().Len() > 0 {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			lf.named = append(lf.named, named)
		}
	}
	return lf
}

// analyze computes every function's summary, callees first, emitting
// diagnostics and lock-order edges exactly once per function.
func (lf *lockflow) analyze() {
	for _, f := range lf.order {
		lf.connect(f)
	}
	for _, scc := range lf.sccs() {
		if len(scc) == 1 && !callsSelf(scc[0]) {
			lf.summaries[scc[0].fn] = lf.walkFn(scc[0], true)
			continue
		}
		// Mutual (or self) recursion: iterate to a fixpoint with reporting
		// off, then one emitting pass per member. Summaries are monotone in
		// their facts, so the signature stabilizes; the iteration cap is a
		// belt-and-suspenders backstop.
		for iter := 0; iter < 20; iter++ {
			changed := false
			for _, f := range scc {
				s := lf.walkFn(f, false)
				if old := lf.summaries[f.fn]; old == nil || old.sig() != s.sig() {
					changed = true
				}
				lf.summaries[f.fn] = s
			}
			if !changed {
				break
			}
		}
		for _, f := range scc {
			lf.summaries[f.fn] = lf.walkFn(f, true)
		}
	}
}

func callsSelf(f *lfFunc) bool {
	for _, c := range f.callees {
		if c == f {
			return true
		}
	}
	return false
}

func (lf *lockflow) summaryOf(fn *types.Func) *lfSummary {
	if s, ok := lf.summaries[fn]; ok {
		return s
	}
	return lfEmpty // SCC member not yet iterated
}

// connect records f's module-internal callees: static calls plus every
// in-module implementation candidate of each interface-method call. The scan
// covers nested function literals too — their callees' summaries must be
// final before f's emitting walk analyzes the literals.
func (lf *lockflow) connect(f *lfFunc) {
	seen := map[*lfFunc]bool{}
	add := func(fn *types.Func) {
		if node, ok := lf.funcs[fn]; ok && !seen[node] {
			seen[node] = true
			f.callees = append(f.callees, node)
		}
	}
	ast.Inspect(f.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(f.pkg.Info, call)
		if fn == nil {
			return true
		}
		if blockingFuncs[trimModule(funcQName(fn), lf.modulePath)] {
			return true // blocking leaf: never folded, no graph edge needed
		}
		if _, ok := lf.funcs[fn]; ok {
			add(fn)
			return true
		}
		if ifaceMethod(fn) {
			for _, impl := range lf.implsOf(fn) {
				add(impl)
			}
		}
		return true
	})
}

// ifaceMethod reports whether fn is an interface's abstract method.
func ifaceMethod(fn *types.Func) bool {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	_, ok := sig.Recv().Type().Underlying().(*types.Interface)
	return ok
}

// implsOf resolves an interface method to the corresponding concrete methods
// of every in-module type that implements the interface and has a body we
// loaded. Zero candidates means the call must be widened.
func (lf *lockflow) implsOf(m *types.Func) []*types.Func {
	if c, ok := lf.implCache[m]; ok {
		return c
	}
	var out []*types.Func
	sig, _ := m.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		lf.implCache[m] = out
		return out
	}
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	if iface == nil || iface.NumMethods() == 0 {
		lf.implCache[m] = out
		return out
	}
	seen := map[*types.Func]bool{}
	for _, named := range lf.named {
		var impl types.Type
		if types.Implements(named, iface) {
			impl = named
		} else if p := types.NewPointer(named); types.Implements(p, iface) {
			impl = p
		} else {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, m.Pkg(), m.Name())
		fn, _ := obj.(*types.Func)
		if fn == nil || seen[fn] {
			continue
		}
		if node, ok := lf.funcs[fn]; ok {
			seen[fn] = true
			out = append(out, node.fn)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return lf.funcs[out[i]].name < lf.funcs[out[j]].name
	})
	lf.implCache[m] = out
	return out
}

// recordEdge records an acquire-while-holding pair for the global graph.
// Only emitting walks record (each function gets exactly one), so every edge
// is witnessed once.
func (lf *lockflow) recordEdge(from, to string, pos token.Pos, desc string) {
	if !lf.emitting {
		return
	}
	k := [2]string{from, to}
	if _, ok := lf.edges[k]; !ok {
		lf.edges[k] = &lfEdge{from: from, to: to, pos: pos, desc: desc}
	}
}

// ---- the per-function walker ----

type lfWalker struct {
	lf      *lockflow
	pkg     *Package
	fn      *lfFunc
	sum     *lfSummary
	trusted bool // host in trustedCallbacks: indirect calls are not widened

	deferRelease map[string]bool          // keys and ids unlocked by defers
	exits        []map[string]*heldLock   // held set at each exit point
	lits         []*ast.FuncLit           // closures to analyze with an empty held set
	litDepth     int                      // >0 while inlining an immediately-invoked literal
}

// walkFn computes f's summary; when emit is set it also reports diagnostics,
// records lock-order edges, and analyzes f's closures (goroutine bodies,
// deferred and stored literals) with an empty held set.
func (lf *lockflow) walkFn(f *lfFunc, emit bool) *lfSummary {
	lf.emitting = emit
	w := &lfWalker{
		lf: lf, pkg: f.pkg, fn: f,
		sum:          newSummary(),
		trusted:      trustedCallbacks[f.name],
		deferRelease: map[string]bool{},
	}
	held := map[string]*heldLock{}
	w.block(f.decl.Body, held)
	w.exit(held)
	w.sum.heldAtExit = intersectExits(w.exits)
	if emit {
		for i := 0; i < len(w.lits); i++ {
			sub := &lfWalker{
				lf: lf, pkg: f.pkg, fn: f,
				sum:          newSummary(), // discarded: closures run on their own stack discipline
				trusted:      w.trusted,
				deferRelease: map[string]bool{},
				litDepth:     1,
			}
			sub.block(w.lits[i].Body, map[string]*heldLock{})
			w.lits = append(w.lits, sub.lits...)
		}
	}
	lf.emitting = false
	return w.sum
}

// exit snapshots the held set at a return point, minus locks a defer will
// release on the way out.
func (w *lfWalker) exit(held map[string]*heldLock) {
	if w.litDepth > 0 {
		return
	}
	snap := map[string]*heldLock{}
	for _, h := range held {
		if w.deferRelease[h.key] || w.deferRelease[h.id] {
			continue
		}
		snap[h.id] = h
	}
	w.exits = append(w.exits, snap)
}

// intersectExits keeps the lock ids held at every exit point: the locks this
// function acquires on its caller's behalf.
func intersectExits(exits []map[string]*heldLock) map[string]*lfAcq {
	out := map[string]*lfAcq{}
	if len(exits) == 0 {
		return out
	}
	for id, h := range exits[0] {
		all := true
		for _, e := range exits[1:] {
			if _, ok := e[id]; !ok {
				all = false
				break
			}
		}
		if all {
			out[id] = &lfAcq{id: id, read: h.read, via: h.via}
		}
	}
	return out
}

func (w *lfWalker) line(pos token.Pos) int { return w.pkg.Fset.Position(pos).Line }

func (w *lfWalker) block(b *ast.BlockStmt, held map[string]*heldLock) {
	if b == nil {
		return
	}
	for _, s := range b.List {
		w.stmt(s, held)
	}
}

func (w *lfWalker) stmt(s ast.Stmt, held map[string]*heldLock) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.block(s, held)
	case *ast.ExprStmt:
		w.exprs(s.X, held)
	case *ast.DeferStmt:
		w.deferCall(s.Call, held)
	case *ast.GoStmt:
		// The spawned goroutine runs on its own stack: no folding, but its
		// literal body is analyzed independently and argument expressions
		// evaluate now.
		for _, a := range s.Call.Args {
			w.exprs(a, held)
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.lits = append(w.lits, lit)
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.exprs(e, held)
		}
		for _, e := range s.Lhs {
			w.exprs(e, held)
		}
	case *ast.DeclStmt:
		w.exprs(s, held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.exprs(e, held)
		}
		w.exit(held)
	case *ast.IfStmt:
		w.stmt(s.Init, held)
		w.exprs(s.Cond, held)
		w.block(s.Body, copyHeld(held))
		w.stmt(s.Else, copyHeld(held))
	case *ast.ForStmt:
		inner := copyHeld(held)
		w.stmt(s.Init, inner)
		if s.Cond != nil {
			w.exprs(s.Cond, inner)
		}
		w.block(s.Body, inner)
		w.stmt(s.Post, inner)
	case *ast.RangeStmt:
		if t, ok := w.pkg.Info.Types[s.X]; ok {
			if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
				w.blockingSyntax(s.Pos(), "range over channel", held)
			}
		}
		w.exprs(s.X, held)
		w.block(s.Body, copyHeld(held))
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			w.blockingSyntax(s.Pos(), "blocking select", held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				inner := copyHeld(held)
				for _, b := range cc.Body {
					w.stmt(b, inner)
				}
			}
		}
	case *ast.SendStmt:
		w.blockingSyntax(s.Pos(), "channel send", held)
		w.exprs(s.Chan, held)
		w.exprs(s.Value, held)
	case *ast.SwitchStmt:
		w.stmt(s.Init, held)
		if s.Tag != nil {
			w.exprs(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				inner := copyHeld(held)
				for _, b := range cc.Body {
					w.stmt(b, inner)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, held)
		w.stmt(s.Assign, held)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				inner := copyHeld(held)
				for _, b := range cc.Body {
					w.stmt(b, inner)
				}
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	case *ast.IncDecStmt:
		w.exprs(s.X, held)
	}
}

// deferCall handles `defer f(...)`: a deferred unlock releases at exit
// (deferRelease), a deferred module call folds in deferred mode (its blocks
// and releases count, but nothing is reported at this site — it runs at
// return), and a deferred closure is analyzed independently.
func (w *lfWalker) deferCall(call *ast.CallExpr, held map[string]*heldLock) {
	if op := lockCall(w.pkg.Info, call); op != nil {
		if !op.acquire {
			w.deferRelease[exprKey(op.recv)] = true
			w.deferRelease[trimModule(lockID(w.pkg.Info, op.recv), w.lf.modulePath)] = true
		}
		return
	}
	for _, a := range call.Args {
		w.exprs(a, held)
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		w.lits = append(w.lits, lit)
		return
	}
	w.call(call, held, true)
}

// exprs scans an expression tree for lock operations, blocking operations,
// and calls. Non-invoked function literals are queued for independent
// analysis; immediately-invoked ones run inline under the current held set.
func (w *lfWalker) exprs(n ast.Node, held map[string]*heldLock) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.lits = append(w.lits, n)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.blockingSyntax(n.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
				for _, a := range n.Args {
					w.exprs(a, held)
				}
				w.litDepth++
				w.block(lit.Body, copyHeld(held))
				w.litDepth--
				return false
			}
			if op := lockCall(w.pkg.Info, n); op != nil {
				w.apply(op, n.Pos(), held)
				return false
			}
			w.call(n, held, false)
		}
		return true
	})
}

// call resolves and folds one call site. deferred suppresses site reports
// and held-set mutation (the call runs at function exit).
func (w *lfWalker) call(call *ast.CallExpr, held map[string]*heldLock, deferred bool) {
	fn := calleeFunc(w.pkg.Info, call)
	if fn == nil {
		fun := ast.Unparen(call.Fun)
		if tv, ok := w.pkg.Info.Types[fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
			return
		}
		if w.trusted {
			return // host's callbacks are contractually non-blocking
		}
		if !deferred {
			for _, h := range heldForBlocking(held) {
				w.reportf(call.Pos(), "indirect call while %s is held (locked at line %d%s): callee unknown, assumed blocking (declare the host in trustedCallbacks if its callbacks are contractually non-blocking)",
					h.key, h.line, viaSuffix(h))
			}
		}
		w.sum.setBlocks([]string{"indirect call (unknown callee, assumed blocking)"})
		return
	}
	name := trimModule(funcQName(fn), w.lf.modulePath)
	if blockingFuncs[name] || blockingPkg(fn) {
		if !deferred {
			w.reportHeld(call.Pos(), "call to "+name, held)
		}
		w.sum.setBlocks([]string{name})
		return
	}
	if node, ok := w.lf.funcs[fn]; ok {
		w.fold(w.lf.summaryOf(fn), node.name, call.Pos(), held, deferred, true)
		return
	}
	if ifaceMethod(fn) {
		impls := w.lf.implsOf(fn)
		if len(impls) == 0 {
			if !deferred {
				for _, h := range heldForBlocking(held) {
					w.reportf(call.Pos(), "call to %s while %s is held (locked at line %d%s): no in-module implementation known, assumed blocking",
						name, h.key, h.line, viaSuffix(h))
				}
			}
			w.sum.setBlocks([]string{name + " (no known implementation, assumed blocking)"})
			return
		}
		// Union over candidates; releases/heldAtExit are not applied (which
		// candidate runs is unknown, so state changes cannot be trusted).
		for _, impl := range impls {
			w.fold(w.lf.summaryOf(impl), w.lf.funcs[impl].name, call.Pos(), held, deferred, false)
		}
	}
	// External function without a body and not on the blocking list: assumed
	// non-blocking, no lock effects.
}

// fold applies a callee's summary at a call site: report blocking, record
// acquire-while-holding edges, and (when applyState) play the callee's
// releases and leftover acquisitions against the caller's held set.
func (w *lfWalker) fold(s *lfSummary, name string, pos token.Pos, held map[string]*heldLock, deferred, applyState bool) {
	if s.blocks {
		chain := capChain(append([]string{name}, s.blockVia...))
		if !deferred {
			for _, h := range heldForBlocking(held) {
				w.reportf(pos, "call to %s may block while %s is held (locked at line %d%s): %s",
					name, h.key, h.line, viaSuffix(h), strings.Join(chain, " -> "))
			}
		}
		w.sum.setBlocks(chain)
	}
	for _, id := range sortedKeys(s.acquires) {
		acq := s.acquires[id]
		via := capChain(append([]string{name}, acq.via...))
		if !deferred {
			for _, h := range sortedHeld(held) {
				if h.id == id {
					if h.read && acq.read {
						continue
					}
					w.reportf(pos, "call to %s may acquire %s while it is already held as %s (possible self-deadlock)", name, id, h.key)
					continue
				}
				w.lf.recordEdge(h.id, id, pos, "call chain "+w.fn.name+" -> "+strings.Join(via, " -> ")+" acquires "+id+" while holding "+h.id)
			}
		}
		w.sum.acquire(id, acq.read, via)
	}
	if !applyState {
		return
	}
	if deferred {
		// A deferred unlock helper releases at exit.
		for id := range s.releases {
			w.deferRelease[id] = true
		}
		return
	}
	for id := range s.releases {
		released := false
		for k, h := range held {
			if h.id == id {
				delete(held, k)
				released = true
			}
		}
		if !released {
			w.sum.releases[id] = true // propagate: released on our caller's behalf
		}
	}
	for _, id := range sortedKeys(s.heldAtExit) {
		acq := s.heldAtExit[id]
		if _, ok := held[id]; ok {
			continue
		}
		held[id] = &heldLock{
			key: id, id: id, read: acq.read,
			line: w.line(pos),
			via:  capChain(append([]string{name}, acq.via...)),
		}
	}
}

// apply executes a direct lock operation against the held set.
func (w *lfWalker) apply(op *lockOp, pos token.Pos, held map[string]*heldLock) {
	key := exprKey(op.recv)
	id := trimModule(lockID(w.pkg.Info, op.recv), w.lf.modulePath)
	if !op.acquire {
		if _, ok := held[key]; ok {
			delete(held, key)
			return
		}
		for k, h := range held {
			if h.id == id {
				delete(held, k)
				return
			}
		}
		w.sum.releases[id] = true // unlock helper: releases the caller's lock
		return
	}
	for _, h := range sortedHeld(held) {
		switch {
		case h.key == key:
			if h.read && op.read {
				continue // RLock twice: allowed (though writer-starvation-prone)
			}
			w.reportf(pos, "acquires %s while already holding it (self-deadlock)", key)
		case h.id == id:
			if h.read && op.read {
				continue
			}
			w.reportf(pos, "acquires %s while %s (same lock identity %s) is held (possible self-deadlock)", key, h.key, id)
		default:
			w.lf.recordEdge(h.id, id, pos, w.fn.name+" acquires "+id+" while holding "+h.id)
		}
	}
	held[key] = &heldLock{key: key, id: id, read: op.read, line: w.line(pos)}
	w.sum.acquire(id, op.read, nil)
}

// blockingSyntax handles an operation that blocks by construction.
func (w *lfWalker) blockingSyntax(pos token.Pos, what string, held map[string]*heldLock) {
	w.reportHeld(pos, what, held)
	w.sum.setBlocks([]string{what})
}

func (w *lfWalker) reportHeld(pos token.Pos, what string, held map[string]*heldLock) {
	for _, h := range heldForBlocking(held) {
		w.reportf(pos, "%s while %s is held (locked at line %d%s)", what, h.key, h.line, viaSuffix(h))
	}
}

// reportf emits through the module pass, but only during a function's single
// emitting walk (fixpoint iterations stay silent).
func (w *lfWalker) reportf(pos token.Pos, format string, args ...any) {
	if w.lf.emitting {
		w.lf.reportf(pos, format, args...)
	}
}

func viaSuffix(h *heldLock) string {
	if len(h.via) == 0 {
		return ""
	}
	return " via " + strings.Join(h.via, " -> ")
}

func blockingPkg(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	for _, prefix := range blockingPkgPrefixes {
		if hasPrefixPath(fn.Pkg().Path(), prefix) {
			return true
		}
	}
	return false
}

// ---- small helpers ----

// sccs returns the call graph's strongly connected components in reverse
// topological order (Tarjan emits an SCC only once all its callees' SCCs are
// done), which is exactly summary-computation order.
func (lf *lockflow) sccs() [][]*lfFunc {
	index := map[*lfFunc]int{}
	low := map[*lfFunc]int{}
	onstack := map[*lfFunc]bool{}
	var stack []*lfFunc
	var out [][]*lfFunc
	next := 0
	var strong func(v *lfFunc)
	strong = func(v *lfFunc) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onstack[v] = true
		for _, c := range v.callees {
			if _, seen := index[c]; !seen {
				strong(c)
				if low[c] < low[v] {
					low[v] = low[c]
				}
			} else if onstack[c] && index[c] < low[v] {
				low[v] = index[c]
			}
		}
		if low[v] == index[v] {
			var scc []*lfFunc
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onstack[m] = false
				scc = append(scc, m)
				if m == v {
					break
				}
			}
			out = append(out, scc)
		}
	}
	for _, f := range lf.order {
		if _, seen := index[f]; !seen {
			strong(f)
		}
	}
	return out
}

func copyHeld(held map[string]*heldLock) map[string]*heldLock {
	c := make(map[string]*heldLock, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

func sortedHeld(held map[string]*heldLock) []*heldLock {
	hs := make([]*heldLock, 0, len(held))
	for _, h := range held {
		hs = append(hs, h)
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i].key < hs[j].key })
	return hs
}

// heldForBlocking drops coarse (control-plane) locks from a held set before
// a may-block report: blocking under them is by design, and only ordering
// and self-deadlock are enforced.
func heldForBlocking(held map[string]*heldLock) []*heldLock {
	hs := sortedHeld(held)
	out := hs[:0]
	for _, h := range hs {
		if !coarseLocks[h.id] {
			out = append(out, h)
		}
	}
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// capChain bounds a cosmetic call chain so recursive SCCs cannot grow
// diagnostics without bound.
func capChain(via []string) []string {
	const max = 8
	if len(via) <= max {
		return via
	}
	return append(append([]string{}, via[:max]...), "...")
}

// hasPrefixPath reports whether pkgPath is prefix or starts with prefix+"/".
func hasPrefixPath(pkgPath, prefix string) bool {
	return pkgPath == prefix || (len(pkgPath) > len(prefix) && pkgPath[:len(prefix)] == prefix && pkgPath[len(prefix)] == '/')
}
