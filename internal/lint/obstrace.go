package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// Trace-event registry rules, run as part of ObsMetric. The trace package's
// event registry is the eventNames table: every EventKind constant must have
// an entry there (or Snapshot renders it as "unknown"), names must be unique
// snake_case (they are the /trace wire contract), and — everywhere else in
// the repo — ring writes must name a declared EventKind constant, never a
// computed kind, so the registry stays the complete inventory of what can
// appear in a trace.

// runObsTraceRegistry checks the declaration side inside the trace package.
func runObsTraceRegistry(pass *Pass) {
	scope := pass.Types.Scope()
	ekObj, ok := scope.Lookup("EventKind").(*types.TypeName)
	if !ok {
		return
	}
	var kinds []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || name == "NumEventKinds" || !types.Identical(c.Type(), ekObj.Type()) {
			continue
		}
		kinds = append(kinds, c)
	}
	if len(kinds) == 0 {
		return
	}

	var lit *ast.CompositeLit
	for _, f := range pass.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			vs, ok := n.(*ast.ValueSpec)
			if !ok {
				return true
			}
			for i, id := range vs.Names {
				if id.Name == "eventNames" && i < len(vs.Values) {
					if cl, ok := vs.Values[i].(*ast.CompositeLit); ok {
						lit = cl
					}
				}
			}
			return true
		})
	}
	if lit == nil {
		pass.Reportf(kinds[0].Pos(), "trace package declares event kinds but no eventNames table: the registry is the composite literal")
		return
	}

	named := map[types.Object]bool{}
	seenNames := map[string]token.Pos{}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if id, ok := kv.Key.(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil {
				named[obj] = true
			}
		}
		bl, ok := kv.Value.(*ast.BasicLit)
		if !ok || bl.Kind != token.STRING {
			continue
		}
		s, err := strconv.Unquote(bl.Value)
		if err != nil {
			continue
		}
		if !snakeCaseRe.MatchString(s) {
			pass.Reportf(bl.Pos(), "trace event name %q must be snake_case: event names are the /trace wire contract", s)
		}
		if _, dup := seenNames[s]; dup {
			pass.Reportf(bl.Pos(), "trace event name %q is reused: event names must be unique", s)
		} else {
			seenNames[s] = bl.Pos()
		}
	}
	for _, c := range kinds {
		if !named[c] {
			pass.Reportf(c.Pos(), "trace event kind %s has no entry in eventNames: it would render as \"unknown\" in every trace", c.Name())
		}
	}
}

// runObsTraceUse checks, outside the trace package, that ring writes
// (Ring.Record, Tracer.Event) name a declared EventKind constant.
func runObsTraceUse(pass *Pass) {
	if pass.Name == "trace" {
		return
	}
	for _, f := range pass.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil {
				return true
			}
			var recvName string
			switch fn.Name() {
			case "Record":
				recvName = "Ring"
			case "Event":
				recvName = "Tracer"
			default:
				return true
			}
			sig, _ := fn.Type().(*types.Signature)
			if sig == nil || sig.Recv() == nil {
				return true
			}
			recv := namedOf(sig.Recv().Type())
			if recv == nil || recv.Obj().Name() != recvName ||
				recv.Obj().Pkg() == nil || recv.Obj().Pkg().Name() != "trace" {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			arg := ast.Unparen(call.Args[0])
			var isConst bool
			switch a := arg.(type) {
			case *ast.Ident:
				_, isConst = pass.Info.Uses[a].(*types.Const)
			case *ast.SelectorExpr:
				_, isConst = pass.Info.Uses[a.Sel].(*types.Const)
			}
			if !isConst {
				pass.Reportf(arg.Pos(), "trace.%s.%s kind must be a declared EventKind constant: the eventNames registry is the inventory of what can appear in a trace", recvName, fn.Name())
			}
			return true
		})
	}
}
