package lint

import (
	"go/ast"
	"go/types"
)

// ErrDrop forbids discarded error returns on the engine's durability and
// recovery paths. In the scoped packages (facade, wal, txn, core, engine):
//
//   - a call with an error result used as a bare statement (or behind
//     go/defer) drops the error implicitly — always flagged;
//   - on the watchlist (WAL append/flush, commit, recovery — see
//     errdropWatch in config.go) even an explicit `_ =` discard is flagged:
//     an error there means a committed transaction may not be durable or
//     recovery state may be incomplete, and the caller must propagate it.
//
// String-builder style writers (strings.Builder, bytes.Buffer, and fmt
// printing into them) are exempt: their Write methods are documented to
// never return a non-nil error.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "no discarded error returns on commit/abort/WAL/recovery paths",
	Run:  runErrDrop,
}

func runErrDrop(pass *Pass) error {
	if !pass.InScope(errdropScope...) {
		return nil
	}
	for _, f := range pass.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDroppedCall(pass, call, "")
				}
				return true
			case *ast.DeferStmt:
				checkDroppedCall(pass, n.Call, "defer ")
				return true
			case *ast.GoStmt:
				checkDroppedCall(pass, n.Call, "go ")
				return true
			case *ast.AssignStmt:
				checkBlankedErrors(pass, n)
				return true
			}
			return true
		})
	}
	return nil
}

// checkDroppedCall flags statement-position calls whose results include an
// error.
func checkDroppedCall(pass *Pass, call *ast.CallExpr, prefix string) {
	errPos := errorResultIndex(pass.Info, call)
	if errPos < 0 {
		return
	}
	fn := calleeFunc(pass.Info, call)
	name := describeCallee(pass, fn, call)
	if fn != nil && errExempt(fn) {
		return
	}
	// fmt printing into an in-memory writer cannot fail.
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && len(call.Args) > 0 {
		if tv, ok := pass.Info.Types[call.Args[0]]; ok {
			if isNamedType(tv.Type, "strings", "Builder") || isNamedType(tv.Type, "bytes", "Buffer") {
				return
			}
		}
	}
	pass.Reportf(call.Pos(), "%serror returned by %s is dropped", prefix, name)
}

// checkBlankedErrors flags `_ = f()` / `x, _ := f()` when the blanked value
// is the error of a watchlist call.
func checkBlankedErrors(pass *Pass, assign *ast.AssignStmt) {
	// Only the single-call multi-assign and 1:1 forms are analyzed.
	if len(assign.Rhs) == 1 {
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil || !errdropWatch[trimModule(funcQName(fn), pass.ModulePath)] {
			return
		}
		errIdx := errorResultIndex(pass.Info, call)
		if errIdx < 0 {
			return
		}
		if len(assign.Lhs) == 1 && errIdx == 0 || len(assign.Lhs) > errIdx {
			lhs := assign.Lhs[0]
			if len(assign.Lhs) > errIdx {
				lhs = assign.Lhs[errIdx]
			}
			if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
				pass.Reportf(assign.Pos(), "error returned by %s is discarded with _: durability/recovery errors must be propagated",
					describeCallee(pass, fn, call))
			}
		}
		return
	}
	for i, rhs := range assign.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || i >= len(assign.Lhs) {
			continue
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil || !errdropWatch[trimModule(funcQName(fn), pass.ModulePath)] {
			continue
		}
		if errorResultIndex(pass.Info, call) != 0 {
			continue
		}
		if id, ok := assign.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			pass.Reportf(assign.Pos(), "error returned by %s is discarded with _: durability/recovery errors must be propagated",
				describeCallee(pass, fn, call))
		}
	}
}

// errorResultIndex returns the index of the (last) error result of the
// call, or -1 when the call returns no error.
func errorResultIndex(info *types.Info, call *ast.CallExpr) int {
	tv, ok := info.Types[call]
	if !ok {
		return -1
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := t.Len() - 1; i >= 0; i-- {
			if isErrorType(t.At(i).Type()) {
				return i
			}
		}
		return -1
	default:
		if isErrorType(tv.Type) {
			return 0
		}
		return -1
	}
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// errExempt lists callees whose error results are documented to always be
// nil (in-memory writers) and are conventionally ignored.
func errExempt(fn *types.Func) bool {
	switch funcQName(fn) {
	case "strings.Builder.WriteString", "strings.Builder.WriteByte",
		"strings.Builder.WriteRune", "strings.Builder.Write",
		"bytes.Buffer.WriteString", "bytes.Buffer.WriteByte",
		"bytes.Buffer.WriteRune", "bytes.Buffer.Write":
		return true
	}
	return false
}

func describeCallee(pass *Pass, fn *types.Func, call *ast.CallExpr) string {
	if fn != nil {
		return trimModule(funcQName(fn), pass.ModulePath)
	}
	return types.ExprString(call.Fun)
}
