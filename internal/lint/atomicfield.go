package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicField enforces all-or-nothing atomicity on struct fields: once any
// code in a package touches a field through sync/atomic (atomic.LoadUint64,
// atomic.AddInt64, ...), every other access to that field must also be
// atomic — a plain read racing an atomic write is still a data race, and
// one the race detector only catches if a test happens to interleave it.
// Taking the field's address outside a sync/atomic call is flagged for the
// same reason (the alias can be dereferenced non-atomically).
//
// It also checks 32-bit alignment: a plain (u)int64 field used with
// sync/atomic must sit at an 8-byte-aligned struct offset on GOARCH=386
// (the classic pre-atomic.Int64 footgun); fields that cannot be proven
// aligned should migrate to atomic.Int64/Uint64, which align themselves.
//
// The analysis is package-scoped, matching how the engine uses raw atomics
// (unexported fields like bitmap chunk words never escape their package).
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "fields accessed via sync/atomic must be accessed atomically everywhere, and 64-bit atomics must be alignment-safe",
	Run:  runAtomicField,
}

func runAtomicField(pass *Pass) error {
	// Pass A: collect fields whose address flows into a sync/atomic call,
	// remembering the selector nodes consumed by those calls. A field used
	// only as `&x.f[i]` is element-atomic: the atomic granule is the slice
	// element, so slice-header operations (make, len, re-slice) on the field
	// itself are fine and only element accesses must be atomic.
	atomicFields := map[*types.Var]token.Pos{} // field -> first atomic use
	elementOnly := map[*types.Var]bool{}       // all atomic uses go through an index
	consumed := map[*ast.SelectorExpr]bool{}   // selectors inside atomic calls
	for _, f := range pass.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if sel, fieldVar, indexed := fieldSelector(pass.Info, un.X); fieldVar != nil {
					consumed[sel] = true
					if _, seen := atomicFields[fieldVar]; !seen {
						atomicFields[fieldVar] = call.Pos()
						elementOnly[fieldVar] = indexed
						checkAlignment(pass, fieldVar, sel, call.Pos())
					} else if !indexed {
						elementOnly[fieldVar] = false
					}
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass B: every other access to those fields must be atomic. For
	// element-atomic fields only indexed accesses count.
	for _, f := range pass.Syntax {
		indexed := map[*ast.SelectorExpr]bool{} // selectors appearing as ix.X
		ast.Inspect(f, func(n ast.Node) bool {
			if ix, ok := n.(*ast.IndexExpr); ok {
				if sel, ok := ast.Unparen(ix.X).(*ast.SelectorExpr); ok {
					indexed[sel] = true
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || consumed[sel] {
				return true
			}
			obj, _ := pass.Info.Uses[sel.Sel].(*types.Var)
			if obj == nil || !obj.IsField() {
				return true
			}
			first, isAtomic := atomicFields[obj]
			if !isAtomic || elementOnly[obj] && !indexed[sel] {
				return true
			}
			pass.Reportf(sel.Pos(), "non-atomic access to field %s, which is accessed atomically at %s",
				obj.Name(), pass.Fset.Position(first))
			return true
		})
	}
	return nil
}

// fieldSelector unwraps &x.f or &x.f[i] down to the field selector and its
// field object; indexed reports whether an index expression was unwrapped.
// Returns nils when the operand is not rooted at a struct field.
func fieldSelector(info *types.Info, e ast.Expr) (*ast.SelectorExpr, *types.Var, bool) {
	e = ast.Unparen(e)
	indexed := false
	if ix, ok := e.(*ast.IndexExpr); ok {
		e = ast.Unparen(ix.X)
		indexed = true
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil, nil, false
	}
	obj, _ := info.Uses[sel.Sel].(*types.Var)
	if obj == nil || !obj.IsField() {
		return nil, nil, false
	}
	return sel, obj, indexed
}

// checkAlignment reports fields of 8-byte scalar type that land at a
// non-8-aligned offset under 32-bit layout rules.
func checkAlignment(pass *Pass, fieldVar *types.Var, sel *ast.SelectorExpr, pos token.Pos) {
	basic, ok := fieldVar.Type().Underlying().(*types.Basic)
	if !ok {
		return
	}
	switch basic.Kind() {
	case types.Int64, types.Uint64:
	default:
		return
	}
	// Find the struct the selection goes through to compute the offset.
	tsel, ok := pass.Info.Selections[sel]
	if !ok {
		return
	}
	recv := tsel.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	strct, ok := recv.Underlying().(*types.Struct)
	if !ok {
		return
	}
	sizes32 := types.SizesFor("gc", "386")
	fields := make([]*types.Var, strct.NumFields())
	idx := -1
	for i := 0; i < strct.NumFields(); i++ {
		fields[i] = strct.Field(i)
		if strct.Field(i) == fieldVar {
			idx = i
		}
	}
	if idx < 0 {
		return
	}
	offsets := sizes32.Offsetsof(fields)
	if offsets[idx]%8 != 0 {
		pass.Reportf(pos, "atomic 64-bit field %s is at offset %d on 32-bit platforms (not 8-aligned); use atomic.Int64/Uint64 or reorder the struct",
			fieldVar.Name(), offsets[idx])
	}
}
