package lint_test

import (
	"testing"

	"github.com/bullfrogdb/bullfrog/internal/lint"
	"github.com/bullfrogdb/bullfrog/internal/lint/linttest"
)

func TestObsMetricRegistry(t *testing.T) { linttest.Run(t, "obsmetric", lint.ObsMetric) }

func TestObsMetricUse(t *testing.T) { linttest.Run(t, "obsmetricuse", lint.ObsMetric) }

func TestObsTraceRegistry(t *testing.T) { linttest.Run(t, "obstrace", lint.ObsMetric) }

func TestObsTraceUse(t *testing.T) { linttest.Run(t, "obstraceuse", lint.ObsMetric) }
