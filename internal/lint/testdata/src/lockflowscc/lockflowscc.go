// Package lockflowscc is the fixture for lockflow's fixpoint over strongly
// connected components: even and odd are mutually recursive, so neither
// summary can be computed before the other — the SCC iterates to a fixpoint
// and the converged "may block" fact propagates to callers.
package lockflowscc

import (
	"sync"
	"time"
)

type node struct {
	mu sync.Mutex
}

func (n *node) even(i int) {
	if i == 0 {
		return
	}
	n.odd(i - 1)
}

func (n *node) odd(i int) {
	if i == 0 {
		time.Sleep(time.Millisecond)
		return
	}
	n.even(i - 1)
}

func (n *node) blockViaSCC() {
	n.mu.Lock()
	n.even(8) // want `call to fixture/lockflowscc\.node\.even may block while n\.mu is held \(locked at line \d+\): fixture/lockflowscc\.node\.even -> fixture/lockflowscc\.node\.odd -> time\.Sleep`
	n.mu.Unlock()
}

// Recursion with no blocking operation anywhere in the cycle must converge
// to a quiet summary: holding the lock across the recursive call is fine.
func (n *node) quietEven(i int) {
	if i == 0 {
		return
	}
	n.quietOdd(i - 1)
}

func (n *node) quietOdd(i int) {
	if i == 0 {
		return
	}
	n.quietEven(i - 1)
}

func (n *node) quietViaSCC() {
	n.mu.Lock()
	n.quietEven(8) // ok: nothing in the SCC blocks or locks
	n.mu.Unlock()
}
