// Package obstraceuse is the fixture for the obsmetric analyzer's trace-use
// rule outside the trace package: ring writes (Ring.Record, Tracer.Event)
// must name a declared EventKind constant, so the eventNames registry stays
// the complete inventory of what can appear in a trace.
package obstraceuse

import "github.com/bullfrogdb/bullfrog/internal/obs/trace"

func constOK(r *trace.Ring, tr *trace.Tracer) {
	r.Record(trace.EvPacerLevel, 0, 1, "ok") // ok: declared constant
	tr.Event(trace.EvCollision, 0, 1, "ok")  // ok: declared constant
	tr.Event((trace.EvCatchUp), 0, 1, "ok")  // ok: parenthesized constant
}

func computedKind(r *trace.Ring, k trace.EventKind) {
	r.Record(k, 0, 1, "bad") // want `trace\.Ring\.Record kind must be a declared EventKind constant`
}

func conversionKind(tr *trace.Tracer) {
	tr.Event(trace.EventKind(3), 0, 1, "bad") // want `trace\.Tracer\.Event kind must be a declared EventKind constant`
}

func suppressed(tr *trace.Tracer, k trace.EventKind) {
	//lint:ignore obsmetric fixture demonstrates suppression
	tr.Event(k, 0, 1, "ok")
}
