// Package trace is the fixture for the obsmetric analyzer's trace-event
// registry rules (they only fire in a package named trace): every EventKind
// constant must have an entry in the eventNames table, and names must be
// unique snake_case.
package trace

type EventKind uint8

const (
	EvOne EventKind = iota
	EvTwo
	EvThree
	EvMissing // want `trace event kind EvMissing has no entry in eventNames`
	NumEventKinds
)

var eventNames = [NumEventKinds]string{
	EvOne:   "one_event",
	EvTwo:   "twoEvent",  // want `trace event name "twoEvent" must be snake_case`
	EvThree: "one_event", // want `trace event name "one_event" is reused`
}

// Name keeps eventNames used; out-of-range kinds render as "unknown".
func (k EventKind) Name() string {
	if int(k) < len(eventNames) && eventNames[k] != "" {
		return eventNames[k]
	}
	return "unknown"
}
