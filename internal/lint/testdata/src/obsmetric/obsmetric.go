// Package obs is the fixture for the obsmetric analyzer's registry rules
// (they only fire in a package named obs): metric fields must mirror into
// snapshot structs under unique snake_case json tags, (*Set).Snapshot must
// read each metric exactly once, and NewSet must initialize every section.
package obs

import "sync/atomic"

type Counter struct{ v atomic.Int64 }

func (c *Counter) Inc()        { c.v.Add(1) }
func (c *Counter) Load() int64 { return c.v.Load() }

type Gauge struct{ v atomic.Int64 }

func (g *Gauge) Set(n int64)  { g.v.Store(n) }
func (g *Gauge) Load() int64 { return g.v.Load() }

type EngineMetrics struct {
	Hits   Counter
	Misses Counter // want `metric EngineMetrics\.Misses is not mirrored in EngineSnapshot` `metric Engine\.Misses is never read by \(\*Set\)\.Snapshot`
	Depth  Gauge
}

type EngineSnapshot struct {
	Hits  int64 `json:"hits"`
	Depth int64 `json:"engine_depth"`
	Extra int64 // want `snapshot field EngineSnapshot\.Extra has no json tag`
	Camel int64 `json:"camelCase"` // want `snapshot field EngineSnapshot\.Camel has json tag "camelCase": metric names must be snake_case`
	Dup   int64 `json:"hits"` // want `snapshot field EngineSnapshot\.Dup reuses json tag "hits" \(already used by EngineSnapshot\.Hits\)`
}

type Set struct {
	Engine *EngineMetrics
	Wal    *EngineMetrics // want `Set\.Wal is not initialized by NewSet`
}

func NewSet() *Set {
	return &Set{Engine: &EngineMetrics{}}
}

func (s *Set) Snapshot() EngineSnapshot {
	return EngineSnapshot{
		Hits:  s.Engine.Hits.Load(),
		Depth: s.Engine.Depth.Load() + s.Engine.Depth.Load(), // want `metric Engine\.Depth is read 2 times by \(\*Set\)\.Snapshot`
	}
}
