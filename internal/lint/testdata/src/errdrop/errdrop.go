// Package errdrop is the fixture for the errdrop analyzer: implicitly
// dropped error returns (statement position, defer, go) are always flagged;
// watchlist calls (fixture/errdrop.mustWatch in config.go) may not even be
// discarded with `_ =`; in-memory writers are exempt.
package errdrop

import (
	"errors"
	"fmt"
	"strings"
)

var errBoom = errors.New("boom")

func fails() error { return errBoom }

func mustWatch() (int, error) { return 0, errBoom }

func bare() {
	fails() // want `error returned by fixture/errdrop\.fails is dropped`
}

func deferred() {
	defer fails() // want `defer error returned by fixture/errdrop\.fails is dropped`
}

func spawned() {
	go fails() // want `go error returned by fixture/errdrop\.fails is dropped`
}

func blankOK() {
	_ = fails() // ok: explicit discard of a non-watchlist error
}

func blankWatch() {
	_, _ = mustWatch() // want `error returned by fixture/errdrop\.mustWatch is discarded with _: durability/recovery errors must be propagated`
}

func handled() error {
	if err := fails(); err != nil {
		return err
	}
	n, err := mustWatch()
	_ = n
	return err
}

func buildersOK() string {
	var b strings.Builder
	b.WriteString("ok")       // ok: documented to never fail
	fmt.Fprintf(&b, "%d", 42) // ok: fmt into an in-memory writer
	return b.String()
}

func suppressed() {
	//lint:ignore errdrop fixture demonstrates suppression
	fails()
}
