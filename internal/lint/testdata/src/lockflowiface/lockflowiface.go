// Package lockflowiface is the fixture for lockflow's interface-dispatch
// resolution and widening: a call through an interface folds the summaries
// of every in-module implementation; a call through an interface with no
// known implementation — or through a bare function value — is widened to
// "assumed blocking" unless the host is declared in trustedCallbacks.
package lockflowiface

import (
	"sync"
	"time"
)

// doer has exactly one in-module implementation, and it sleeps.
type doer interface{ do() }

type sleeper struct{}

func (sleeper) do() { time.Sleep(time.Millisecond) }

// opaque has no in-module implementation: calls must be widened.
type opaque interface{ run() }

type runner struct {
	mu sync.Mutex
	d  doer
	cb func()
}

// Interface dispatch resolves to the implementation's summary.
func (r *runner) callViaIface() {
	r.mu.Lock()
	r.d.do() // want `call to fixture/lockflowiface\.sleeper\.do may block while r\.mu is held \(locked at line \d+\): fixture/lockflowiface\.sleeper\.do -> time\.Sleep`
	r.mu.Unlock()
}

// No implementation in scope: widened to assumed-blocking.
func (r *runner) callUnknownIface(o opaque) {
	r.mu.Lock()
	o.run() // want `call to fixture/lockflowiface\.opaque\.run while r\.mu is held \(locked at line \d+\): no in-module implementation known, assumed blocking`
	r.mu.Unlock()
}

// A bare function value is an unknown callee: widened.
func (r *runner) callFuncValue() {
	r.mu.Lock()
	r.cb() // want `indirect call while r\.mu is held \(locked at line \d+\): callee unknown, assumed blocking`
	r.mu.Unlock()
}

// trusted is declared in trustedCallbacks (config.go): its callbacks are
// contractually non-blocking, so the indirect call is not widened.
func (r *runner) trusted() {
	r.mu.Lock()
	r.cb() // ok: host is in trustedCallbacks
	r.mu.Unlock()
}
