// Package lockheld is the fixture for the lockheld analyzer: blocking
// operations under a held mutex, lock-order violations, and the shapes that
// must NOT be flagged (released locks, selects with default, goroutine
// bodies, double-RLock).
package lockheld

import (
	"sync"
	"time"
)

type server struct {
	mu     sync.Mutex
	rw     sync.RWMutex
	order1 sync.Mutex // rank 10 in config.go
	order2 sync.Mutex // rank 20 in config.go
	ch     chan int
}

func (s *server) sleepUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `call to time\.Sleep while s\.mu is held \(locked at line \d+\)`
	s.mu.Unlock()
	time.Sleep(time.Millisecond) // ok: lock released
}

func (s *server) channelUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- 1 // want `channel send while s\.mu is held`
	<-s.ch    // want `channel receive while s\.mu is held`
}

func (s *server) selectUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `blocking select while s\.mu is held`
	case <-s.ch:
	}
}

func (s *server) selectWithDefaultOK() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-s.ch:
		_ = v
	default:
	}
}

func (s *server) orderOK() {
	s.order1.Lock()
	s.order2.Lock() // ok: rank 10 before rank 20
	s.order2.Unlock()
	s.order1.Unlock()
}

func (s *server) orderViolation() {
	s.order2.Lock()
	s.order1.Lock() // want `acquires s\.order1 \(rank 10\) while holding s\.order2 \(rank 20\): lock-order violation`
	s.order1.Unlock()
	s.order2.Unlock()
}

func (s *server) unrankedPair() {
	s.mu.Lock()
	s.order1.Lock() // want `acquires s\.order1 while holding s\.mu: lock pair is not in the lock-order table`
	s.order1.Unlock()
	s.mu.Unlock()
}

func (s *server) selfDeadlock() {
	s.mu.Lock()
	s.mu.Lock() // want `acquires s\.mu while already holding it \(self-deadlock\)`
	s.mu.Unlock()
}

func (s *server) doubleRLockOK() {
	s.rw.RLock()
	s.rw.RLock() // tolerated: shared re-entry
	s.rw.RUnlock()
	s.rw.RUnlock()
}

func (s *server) goroutineBodyOK() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		time.Sleep(time.Millisecond) // ok: runs outside the critical section
	}()
}

func (s *server) branchScopedRelease(cond bool) {
	s.mu.Lock()
	if cond {
		s.mu.Unlock()
		time.Sleep(time.Millisecond) // ok: released on this branch
		return
	}
	s.mu.Unlock()
}

func (s *server) suppressed() {
	s.mu.Lock()
	//lint:ignore lockheld fixture demonstrates suppression
	time.Sleep(time.Millisecond)
	s.mu.Unlock()
}
