// Package obsmetricuse is the fixture for the obsmetric analyzer's use rule
// outside the obs package: metric updates must resolve through a field of an
// obs *Metrics struct (the type-level registry), never through free-floating
// metric values that no snapshot will ever export.
package obsmetricuse

import "github.com/bullfrogdb/bullfrog/internal/obs"

var rogue obs.Counter

type worker struct {
	met  *obs.Set
	free obs.Counter
}

func (w *worker) registryOK() {
	w.met.Txn.Begins.Inc() // ok: field of obs.TxnMetrics
}

func (w *worker) registryIndexedOK() {
	w.met.Engine.Exec[0].Observe(1) // ok: indexed registry field
}

func (w *worker) packageVar() {
	rogue.Inc() // want `obs\.Counter\.Inc outside the metric registry`
}

func (w *worker) localField() {
	w.free.Inc() // want `obs\.Counter\.Inc outside the metric registry`
}

func (w *worker) suppressed() {
	//lint:ignore obsmetric fixture demonstrates suppression
	rogue.Inc()
}
