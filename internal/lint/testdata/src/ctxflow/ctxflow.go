// Package ctxflow is the fixture for the ctxflow analyzer: no minted
// background contexts outside the nil-guard idiom, and exported blocking
// entry points must take a context or have a <Name>Context sibling.
package ctxflow

import (
	"context"
	"sync"
	"time"
)

func mint() {
	ctx := context.Background() // want `context\.Background\(\) minted in library code`
	_ = ctx
}

func todo() {
	_ = context.TODO() // want `context\.TODO\(\) minted in library code`
}

func nilGuardOK(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background() // ok: documented nil-parameter guard
	}
	return ctx
}

type Pool struct {
	wg sync.WaitGroup
	ch chan int
}

func (p *Pool) Drain() { // want `exported Drain blocks \(channel receive at line \d+\) but has no context\.Context parameter and no DrainContext sibling`
	<-p.ch
}

func (p *Pool) Join() { // ok: JoinContext sibling exists
	p.wg.Wait()
}

func (p *Pool) JoinContext(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-done:
		return nil
	}
}

func (p *Pool) WaitCtx(ctx context.Context) { // ok: accepts a context
	select {
	case <-ctx.Done():
	case <-p.ch:
	}
}

func Sleepy() { // want `exported Sleepy blocks \(call to time\.Sleep at line \d+\) but has no context\.Context parameter and no SleepyContext sibling`
	time.Sleep(time.Millisecond)
}

var neverCh chan struct{}

//lint:ignore ctxflow fixture demonstrates suppression
func Forever() {
	<-neverCh
}

// Gate mirrors the facade's client/migration gate: blocking entry points are
// exempt because each has a <Name>Context sibling that selects on ctx.Done().
type Gate struct {
	sem chan struct{}
}

func (g *Gate) Enter() { // ok: EnterContext sibling exists
	g.sem <- struct{}{}
}

func (g *Gate) EnterContext(ctx context.Context) error {
	if ctx == nil {
		g.Enter()
		return nil
	}
	select {
	case g.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

func (g *Gate) Exclusive(f func() error) error { // ok: ExclusiveContext sibling exists
	for i := 0; i < cap(g.sem); i++ {
		g.sem <- struct{}{}
	}
	defer func() {
		for i := 0; i < cap(g.sem); i++ {
			<-g.sem
		}
	}()
	return f()
}

func (g *Gate) ExclusiveContext(ctx context.Context, f func() error) error {
	for i := 0; i < cap(g.sem); i++ {
		select {
		case g.sem <- struct{}{}:
		case <-ctx.Done():
			for j := 0; j < i; j++ {
				<-g.sem
			}
			return context.Cause(ctx)
		}
	}
	defer func() {
		for i := 0; i < cap(g.sem); i++ {
			<-g.sem
		}
	}()
	return f()
}

// AcquireContext is the lock-table shape: a context parameter bounds the
// wait, so blocking directly in the body is fine without a sibling.
func (g *Gate) AcquireContext(ctx context.Context, timeout time.Duration) error {
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case g.sem <- struct{}{}:
		return nil
	case <-t.C:
		return context.DeadlineExceeded
	case <-done:
		return context.Cause(ctx)
	}
}
