// Package ctxflow is the fixture for the ctxflow analyzer: no minted
// background contexts outside the nil-guard idiom, and exported blocking
// entry points must take a context or have a <Name>Context sibling.
package ctxflow

import (
	"context"
	"sync"
	"time"
)

func mint() {
	ctx := context.Background() // want `context\.Background\(\) minted in library code`
	_ = ctx
}

func todo() {
	_ = context.TODO() // want `context\.TODO\(\) minted in library code`
}

func nilGuardOK(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background() // ok: documented nil-parameter guard
	}
	return ctx
}

type Pool struct {
	wg sync.WaitGroup
	ch chan int
}

func (p *Pool) Drain() { // want `exported Drain blocks \(channel receive at line \d+\) but has no context\.Context parameter and no DrainContext sibling`
	<-p.ch
}

func (p *Pool) Join() { // ok: JoinContext sibling exists
	p.wg.Wait()
}

func (p *Pool) JoinContext(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-done:
		return nil
	}
}

func (p *Pool) WaitCtx(ctx context.Context) { // ok: accepts a context
	select {
	case <-ctx.Done():
	case <-p.ch:
	}
}

func Sleepy() { // want `exported Sleepy blocks \(call to time\.Sleep at line \d+\) but has no context\.Context parameter and no SleepyContext sibling`
	time.Sleep(time.Millisecond)
}

var neverCh chan struct{}

//lint:ignore ctxflow fixture demonstrates suppression
func Forever() {
	<-neverCh
}
