// Package atomicfield is the fixture for the atomicfield analyzer: fields
// touched via sync/atomic must be accessed atomically everywhere, 64-bit
// raw atomics must be 8-aligned under 32-bit layout, and element-atomic
// slice fields allow slice-header operations.
package atomicfield

import "sync/atomic"

type counter struct {
	n uint64
}

func (c *counter) inc() { atomic.AddUint64(&c.n, 1) }

func (c *counter) atomicReadOK() uint64 { return atomic.LoadUint64(&c.n) }

func (c *counter) racyRead() uint64 {
	return c.n // want `non-atomic access to field n, which is accessed atomically at`
}

func (c *counter) racyWrite() {
	c.n = 0 // want `non-atomic access to field n`
}

// misaligned: flag (int32) pushes v to offset 4 under GOARCH=386 rules.
type misaligned struct {
	flag int32
	v    int64
}

func (m *misaligned) bump() {
	atomic.AddInt64(&m.v, 1) // want `atomic 64-bit field v is at offset 4 on 32-bit platforms`
}

// words is element-atomic: the atomic granule is the slice element, so the
// constructor's header write and append are fine, but a plain element read
// races the atomic stores.
type words struct {
	w []uint64
}

func newWords(n int) *words {
	return &words{w: make([]uint64, n)}
}

func (ws *words) set(i int) { atomic.StoreUint64(&ws.w[i], 1) }

func (ws *words) grow(n int) {
	ws.w = append(ws.w, make([]uint64, n)...) // ok: slice-header operation
}

func (ws *words) size() int { return len(ws.w) } // ok: header read

func (ws *words) racyElem(i int) uint64 {
	return ws.w[i] // want `non-atomic access to field w`
}

func (ws *words) suppressed(i int) uint64 {
	//lint:ignore atomicfield fixture demonstrates suppression
	return ws.w[i]
}
