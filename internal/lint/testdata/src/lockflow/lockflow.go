// Package lockflow is the fixture for the lockflow analyzer: blocking
// operations under a held mutex (directly and across calls), lock-order
// edges diffed against the declared table in config.go (undeclared edges,
// inversions through helpers, undeclared cycles), lock/unlock helper
// propagation, and the shapes that must NOT be flagged (released locks,
// selects with default, goroutine bodies, double-RLock).
package lockflow

import (
	"sync"
	"time"
)

type server struct {
	mu     sync.Mutex
	rw     sync.RWMutex
	order1 sync.Mutex // declared edge order1 -> order2 in config.go
	order2 sync.Mutex
	order3 sync.Mutex // declared edge order3 -> order4 in config.go
	order4 sync.Mutex
	cycA   sync.Mutex // undeclared in config.go: the cycle-detection pair
	cycB   sync.Mutex
	ch     chan int
}

// ---- intraprocedural cases (carried over from the old lockheld fixture) ----

func (s *server) sleepUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `call to time\.Sleep while s\.mu is held \(locked at line \d+\)`
	s.mu.Unlock()
	time.Sleep(time.Millisecond) // ok: lock released
}

func (s *server) channelUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- 1 // want `channel send while s\.mu is held`
	<-s.ch    // want `channel receive while s\.mu is held`
}

func (s *server) selectUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `blocking select while s\.mu is held`
	case <-s.ch:
	}
}

func (s *server) selectWithDefaultOK() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-s.ch:
		_ = v
	default:
	}
}

func (s *server) orderOK() {
	s.order1.Lock()
	s.order2.Lock() // ok: declared edge order1 -> order2
	s.order2.Unlock()
	s.order1.Unlock()
}

func (s *server) orderViolation() {
	s.order2.Lock()
	s.order1.Lock() // want `reverses the declared lock-order edge fixture/lockflow\.server\.order1 -> fixture/lockflow\.server\.order2 \(potential deadlock\)`
	s.order1.Unlock()
	s.order2.Unlock()
}

func (s *server) undeclaredPair() {
	s.mu.Lock()
	s.order1.Lock() // want `lock-order edge fixture/lockflow\.server\.mu -> fixture/lockflow\.server\.order1 is not declared in the lock-order table`
	s.order1.Unlock()
	s.mu.Unlock()
}

func (s *server) selfDeadlock() {
	s.mu.Lock()
	s.mu.Lock() // want `acquires s\.mu while already holding it \(self-deadlock\)`
	s.mu.Unlock()
}

func (s *server) doubleRLockOK() {
	s.rw.RLock()
	s.rw.RLock() // tolerated: shared re-entry
	s.rw.RUnlock()
	s.rw.RUnlock()
}

func (s *server) goroutineBodyOK() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		time.Sleep(time.Millisecond) // ok: runs outside the critical section
	}()
}

func (s *server) branchScopedRelease(cond bool) {
	s.mu.Lock()
	if cond {
		s.mu.Unlock()
		time.Sleep(time.Millisecond) // ok: released on this branch
		return
	}
	s.mu.Unlock()
}

func (s *server) suppressed() {
	s.mu.Lock()
	//lint:ignore lockflow fixture demonstrates suppression
	time.Sleep(time.Millisecond)
	s.mu.Unlock()
}

// ---- interprocedural cases ----

func (s *server) sleepHelper() {
	time.Sleep(time.Millisecond) // ok here: no lock held in this frame
}

func (s *server) hop2() { s.sleepHelper() }
func (s *server) hop1() { s.hop2() }

// Blocking one call down: the summary of sleepHelper carries "may block".
func (s *server) crossCallBlock() {
	s.mu.Lock()
	s.sleepHelper() // want `call to fixture/lockflow\.server\.sleepHelper may block while s\.mu is held \(locked at line \d+\): fixture/lockflow\.server\.sleepHelper -> time\.Sleep`
	s.mu.Unlock()
}

// Blocking three calls down, with the full chain in the diagnostic.
func (s *server) deepBlock() {
	s.mu.Lock()
	s.hop1() // want `call to fixture/lockflow\.server\.hop1 may block while s\.mu is held \(locked at line \d+\): fixture/lockflow\.server\.hop1 -> fixture/lockflow\.server\.hop2 -> fixture/lockflow\.server\.sleepHelper -> time\.Sleep`
	s.mu.Unlock()
}

// Lock-order inversion through a helper: the helper acquires order3 on the
// caller's behalf while the caller holds order4 — the reverse of the
// declared order3 -> order4 edge.
func (s *server) lockOrder3() { s.order3.Lock() }

func (s *server) orderedPairOK() {
	s.order3.Lock()
	s.order4.Lock() // ok: declared edge order3 -> order4 (keeps the edge observed)
	s.order4.Unlock()
	s.order3.Unlock()
}

func (s *server) inversionViaHelper() {
	s.order4.Lock()
	s.lockOrder3() // want `reverses the declared lock-order edge fixture/lockflow\.server\.order3 -> fixture/lockflow\.server\.order4 \(potential deadlock\)`
	s.order3.Unlock()
	s.order4.Unlock()
}

// Lock/unlock helper pair: the critical section opened by lockMu extends
// into the caller, so blocking there is flagged with the acquiring chain.
func (s *server) lockMu()   { s.mu.Lock() }
func (s *server) unlockMu() { s.mu.Unlock() }

func (s *server) helperHeldBlock() {
	s.lockMu()
	time.Sleep(time.Millisecond) // want `call to time\.Sleep while fixture/lockflow\.server\.mu is held \(locked at line \d+ via fixture/lockflow\.server\.lockMu\)`
	s.unlockMu()
}

// Regression mirror of the engine nesting that motivated lockflow:
// Txn.Commit holds the commit mutex and publishes state through setState,
// which takes the shard mutex — a cross-call acquire-while-holding edge that
// must surface even though no single function nests the two locks.
type manager struct {
	commitMu sync.Mutex
	shardMu  sync.Mutex
}

func (m *manager) setState() {
	m.shardMu.Lock()
	m.shardMu.Unlock()
}

func (m *manager) commit() {
	m.commitMu.Lock()
	m.setState() // want `call chain fixture/lockflow\.manager\.commit -> fixture/lockflow\.manager\.setState acquires fixture/lockflow\.manager\.shardMu while holding fixture/lockflow\.manager\.commitMu: lock-order edge .* is not declared`
	m.commitMu.Unlock()
}

// Undeclared cycle: two functions acquire the same undeclared pair in
// opposite orders. Both edges are diagnosed, and the combined graph reports
// the cycle at the first observed edge.
func (s *server) cycleHalfOne() {
	s.cycA.Lock()
	s.cycB.Lock() // want `lock-order edge fixture/lockflow\.server\.cycA -> fixture/lockflow\.server\.cycB is not declared` `lock-order cycle among fixture/lockflow\.server\.cycA, fixture/lockflow\.server\.cycB \(potential deadlock\)`
	s.cycB.Unlock()
	s.cycA.Unlock()
}

func (s *server) cycleHalfTwo() {
	s.cycB.Lock()
	s.cycA.Lock() // want `lock-order edge fixture/lockflow\.server\.cycB -> fixture/lockflow\.server\.cycA is not declared`
	s.cycA.Unlock()
	s.cycB.Unlock()
}
