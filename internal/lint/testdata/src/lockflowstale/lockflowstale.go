// Package lockflowstale is the fixture for lockflow's stale-config
// detection: config.go declares seen1 -> seen2 (observed below, so quiet)
// and ghost1 -> ghost2 (never observed, so the sweep reports the declared
// edge as stale). The diagnostic anchors at the package clause because the
// config.go source is not part of this fixture load.
package lockflowstale // want `declared lock-order edge fixture/lockflowstale\.box\.ghost1 -> fixture/lockflowstale\.box\.ghost2 was never observed by lockflow \(stale config`

import "sync"

type box struct {
	seen1  sync.Mutex
	seen2  sync.Mutex
	ghost1 sync.Mutex
	ghost2 sync.Mutex
}

func (b *box) observed() {
	b.seen1.Lock()
	b.seen2.Lock() // ok: declared edge seen1 -> seen2, observed here
	b.seen2.Unlock()
	b.seen1.Unlock()
}

// ghost1 and ghost2 exist (the golden test resolves every declared identity
// to a real field) but are never nested, which is exactly what makes the
// declared ghost edge stale.
