package lint

// The lock-order golden test: config.go must round-trip against the code it
// describes. Every declared lock identity resolves to a real mutex field,
// every trusted callback host resolves to a real function, every declared
// module edge is observed by a full sweep (no stale config), every observed
// edge is declared or diagnosed, and the combined graph is cycle-free. This
// guards against silent config rot as the engine grows: renaming a field,
// deleting a helper, or restructuring a critical section must fail here, not
// drift quietly.

import (
	"go/types"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var (
	goldenOnce sync.Once
	goldenLdr  *Loader
	goldenPkgs []*Package
	goldenErr  error
)

func goldenModule(t *testing.T) (*Loader, []*Package) {
	goldenOnce.Do(func() {
		goldenLdr, goldenErr = NewLoader(".", false)
		if goldenErr != nil {
			return
		}
		goldenPkgs, goldenErr = goldenLdr.ModulePackages()
	})
	if goldenErr != nil {
		t.Fatalf("loading module: %v", goldenErr)
	}
	return goldenLdr, goldenPkgs
}

// resolvePkg maps the package part of a config identity ("internal/txn",
// "fixture/lockflow", "" for the module root) to a loaded package, loading
// fixture directories on demand.
func resolvePkg(t *testing.T, l *Loader, rel string) *Package {
	t.Helper()
	if fix, ok := strings.CutPrefix(rel, "fixture/"); ok {
		abs, err := filepath.Abs(filepath.Join("testdata", "src", fix))
		if err != nil {
			t.Fatal(err)
		}
		pkg, err := l.LoadDir(abs, rel)
		if err != nil {
			t.Fatalf("loading fixture package %s: %v", rel, err)
		}
		return pkg
	}
	path := l.ModulePath
	if rel != "" {
		path = l.ModulePath + "/" + rel
	}
	pkg, err := l.Load(path)
	if err != nil {
		t.Fatalf("loading %s: %v", path, err)
	}
	return pkg
}

// splitIdent cuts a config identity into its package-relative path and the
// symbol components after it ("internal/txn.Manager.commitMu" ->
// "internal/txn", ["Manager", "commitMu"]). Module-relative paths contain no
// dots, so the first dot ends the package part.
func splitIdent(id string) (pkgRel string, sym []string) {
	i := strings.IndexByte(id, '.')
	if i < 0 {
		return id, nil
	}
	return id[:i], strings.Split(id[i+1:], ".")
}

// TestLockOrderIdentitiesResolve checks that every lock named by the
// lockOrder table and coarseLocks is a real sync.Mutex/RWMutex field of a
// real type.
func TestLockOrderIdentitiesResolve(t *testing.T) {
	l, _ := goldenModule(t)
	ids := map[string]bool{}
	for _, d := range lockOrder {
		if d.From == d.To {
			t.Errorf("declared lock-order edge %s -> %s is a self-loop", d.From, d.To)
		}
		if d.Why == "" {
			t.Errorf("declared lock-order edge %s -> %s has no rationale", d.From, d.To)
		}
		ids[d.From], ids[d.To] = true, true
	}
	for id := range coarseLocks {
		ids[id] = true
	}
	for id := range ids {
		pkgRel, sym := splitIdent(id)
		if len(sym) != 2 {
			t.Errorf("lock id %q: want <pkg>.<Type>.<field>", id)
			continue
		}
		pkg := resolvePkg(t, l, pkgRel)
		obj := pkg.Types.Scope().Lookup(sym[0])
		if obj == nil {
			t.Errorf("lock id %q: no type %s in %s", id, sym[0], pkg.Path)
			continue
		}
		named := namedOf(obj.Type())
		if named == nil {
			t.Errorf("lock id %q: %s is not a named type", id, sym[0])
			continue
		}
		field := fieldType(named, sym[1])
		if field == nil {
			t.Errorf("lock id %q: type %s has no field %s", id, sym[0], sym[1])
			continue
		}
		if !isNamedType(field, "sync", "Mutex") && !isNamedType(field, "sync", "RWMutex") {
			t.Errorf("lock id %q: field %s.%s is %v, not a sync.Mutex/RWMutex", id, sym[0], sym[1], field)
		}
	}
}

// TestTrustedCallbackHostsResolve checks that every trustedCallbacks key is
// a real function or method, so the trust list cannot outlive a refactor.
func TestTrustedCallbackHostsResolve(t *testing.T) {
	l, _ := goldenModule(t)
	for id := range trustedCallbacks {
		pkgRel, sym := splitIdent(id)
		pkg := resolvePkg(t, l, pkgRel)
		switch len(sym) {
		case 1: // package-level function
			if obj := pkg.Types.Scope().Lookup(sym[0]); obj == nil {
				t.Errorf("trusted host %q: no function %s in %s", id, sym[0], pkg.Path)
			}
		case 2: // method
			obj := pkg.Types.Scope().Lookup(sym[0])
			if obj == nil {
				t.Errorf("trusted host %q: no type %s in %s", id, sym[0], pkg.Path)
				continue
			}
			if !hasMethod(obj.Type(), pkg.Types, sym[1]) {
				t.Errorf("trusted host %q: type %s has no method %s", id, sym[0], sym[1])
			}
		default:
			t.Errorf("trusted host %q: want <pkg>.<Func> or <pkg>.<Type>.<Method>", id)
		}
	}
}

// fieldType returns the type of the named struct field, or nil.
func fieldType(named *types.Named, field string) types.Type {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == field {
			return st.Field(i).Type()
		}
	}
	return nil
}

// hasMethod reports whether *T (and therefore T's full method set) has a
// method with the given name; from selects the package for unexported names.
func hasMethod(t types.Type, from *types.Package, name string) bool {
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(t), true, from, name)
	_, ok := obj.(*types.Func)
	return ok
}

// knownFindings are by-design lockflow findings over the module that are
// //lint:ignore'd at their site with a rationale. BuildLockGraph bypasses
// suppression, so listing them here keeps the golden test honest: anything
// NEW the sweep reports — an undeclared edge, a stale edge, a cycle, a fresh
// blocking site — fails this test even if someone slaps an ignore on it.
var knownFindings = []string{
	// Start's setup Exec: the lazy-migration hook that re-enters the
	// controller is installed only after setup DDL runs (controller.go).
	"may acquire internal/core.Controller.mu while it is already held",
}

// TestLockGraphGolden runs the full module sweep and asserts the lock-order
// graph round-trips against config.go.
func TestLockGraphGolden(t *testing.T) {
	l, pkgs := goldenModule(t)
	edges, diags := BuildLockGraph(pkgs, l.ModulePath)

	for _, e := range edges {
		if e.Observed && !e.Declared {
			t.Errorf("observed lock-order edge %s -> %s is not declared in config.go (witness: %s)", e.From, e.To, e.Witness)
		}
		if e.Declared && !e.Observed && !strings.HasPrefix(e.From, "fixture/") {
			t.Errorf("declared lock-order edge %s -> %s was not observed by the module sweep (stale config)", e.From, e.To)
		}
	}

	for _, d := range diags {
		known := false
		for _, k := range knownFindings {
			if strings.Contains(d.Message, k) {
				known = true
				break
			}
		}
		if !known {
			t.Errorf("module sweep finding outside the known set: %s", d)
		}
	}
	for _, k := range knownFindings {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, k) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("known finding %q no longer reported: remove it from knownFindings and the //lint:ignore at its site", k)
		}
	}
}

// TestLintWallClock guards the CI budget: one full-module run of the entire
// analyzer suite (summaries cached per function, computed once) must stay
// comfortably inside a minute even on slow runners.
func TestLintWallClock(t *testing.T) {
	l, pkgs := goldenModule(t)
	start := time.Now()
	if _, _, err := Run(pkgs, All(), l.ModulePath); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > time.Minute {
		t.Errorf("full-module lint took %v, over the 60s budget: summaries are no longer cached or an analyzer regressed", d)
	}
}

// BenchmarkLockflowModule measures the interprocedural sweep alone, loading
// excluded.
func BenchmarkLockflowModule(b *testing.B) {
	l, err := NewLoader(".", false)
	if err != nil {
		b.Fatal(err)
	}
	pkgs, err := l.ModulePackages()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Run(pkgs, []*Analyzer{LockFlow}, l.ModulePath); err != nil {
			b.Fatal(err)
		}
	}
}
