package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxFlow enforces context threading in the library packages that sit on
// client call paths (the facade, internal/core, internal/engine):
//
//  1. No context.Background() / context.TODO() inside library code — a
//     minted root context is how cancellation regressions sneak back in
//     (a CatchUp that cannot be interrupted by DB.Close, a wait helper
//     that spins past its caller's deadline). The one allowed shape is the
//     nil-parameter guard `if ctx == nil { ctx = context.Background() }`,
//     which adapts a documented optional-context API; anything else needs
//     an ignore with a reason (e.g. a process-lifetime root owned by Open).
//  2. Exported functions whose bodies block directly — a receive or send on
//     a channel, a select without default, sync.WaitGroup.Wait, Cond.Wait,
//     or time.Sleep — must accept a context.Context, or have a sibling
//     named <Name>Context that does. Blocking entry points without a
//     cancellation path are how shutdown hangs start.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "library packages must thread context.Context through blocking entry points and never mint background contexts",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	if !pass.InScope(ctxflowScope...) {
		return nil
	}
	// Names defined in this package, for the <Name>Context sibling rule.
	siblings := map[string]bool{}
	for _, f := range pass.Syntax {
		funcsOf(f, func(name string, decl *ast.FuncDecl, _ *ast.BlockStmt) {
			siblings[recvQualified(pass.Info, decl)] = true
		})
	}
	for _, f := range pass.Syntax {
		funcsOf(f, func(name string, decl *ast.FuncDecl, body *ast.BlockStmt) {
			checkMintedContexts(pass, body)
			if !decl.Name.IsExported() {
				return
			}
			if funcHasCtxParam(pass.Info, decl) {
				return
			}
			qual := recvQualified(pass.Info, decl)
			if siblings[qual+"Context"] {
				return
			}
			if pos, what := firstBlockingOp(pass, body); pos.IsValid() {
				pass.Reportf(decl.Name.Pos(), "exported %s blocks (%s at line %d) but has no context.Context parameter and no %sContext sibling",
					name, what, pass.Fset.Position(pos).Line, name)
			}
		})
	}
	return nil
}

// recvQualified names a function "Name" or "Recv.Name" so methods on
// different types don't collide in the sibling table.
func recvQualified(info *types.Info, decl *ast.FuncDecl) string {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return decl.Name.Name
	}
	t := decl.Recv.List[0].Type
	if se, ok := t.(*ast.StarExpr); ok {
		t = se.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + decl.Name.Name
	}
	return decl.Name.Name
}

func funcHasCtxParam(info *types.Info, decl *ast.FuncDecl) bool {
	for _, field := range decl.Type.Params.List {
		if t, ok := info.Types[field.Type]; ok && isContextType(t.Type) {
			return true
		}
	}
	return false
}

// checkMintedContexts reports context.Background()/TODO() calls outside the
// nil-guard idiom.
func checkMintedContexts(pass *Pass, body *ast.BlockStmt) {
	var walk func(n ast.Node, nilGuarded bool)
	walk = func(n ast.Node, nilGuarded bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.IfStmt:
				guarded := nilGuarded || isCtxNilCond(pass.Info, n.Cond)
				if n.Init != nil {
					walk(n.Init, nilGuarded)
				}
				walk(n.Cond, nilGuarded)
				walk(n.Body, guarded)
				if n.Else != nil {
					walk(n.Else, nilGuarded)
				}
				return false
			case *ast.CallExpr:
				fn := calleeFunc(pass.Info, n)
				if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
					(fn.Name() == "Background" || fn.Name() == "TODO") && !nilGuarded {
					pass.Reportf(n.Pos(), "context.%s() minted in library code: accept and thread a caller context instead", fn.Name())
				}
			}
			return true
		})
	}
	walk(body, false)
}

// isCtxNilCond matches `x == nil` where x is a context.Context.
func isCtxNilCond(info *types.Info, cond ast.Expr) bool {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || be.Op != token.EQL {
		return false
	}
	x, y := be.X, be.Y
	if isNilIdent(info, x) {
		x, y = y, x
	}
	if !isNilIdent(info, y) {
		return false
	}
	t, ok := info.Types[x]
	return ok && isContextType(t.Type)
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// firstBlockingOp finds a directly blocking operation in the body: channel
// send/receive, select without default, range over a channel, or a call on
// the blocking list that waits on other goroutines (WaitGroup.Wait,
// Cond.Wait, time.Sleep).
func firstBlockingOp(pass *Pass, body *ast.BlockStmt) (pos token.Pos, what string) {
	found := func(p token.Pos, w string) {
		if !pos.IsValid() {
			pos, what = p, w
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if pos.IsValid() {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // runs on its own goroutine or later
		case *ast.SendStmt:
			found(n.Pos(), "channel send")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found(n.Pos(), "channel receive")
			}
		case *ast.SelectStmt:
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					return true // has default: non-blocking
				}
			}
			found(n.Pos(), "blocking select")
		case *ast.RangeStmt:
			if t, ok := pass.Info.Types[n.X]; ok {
				if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
					found(n.Pos(), "range over channel")
				}
			}
		case *ast.CallExpr:
			fn := calleeFunc(pass.Info, n)
			if fn == nil {
				return true
			}
			switch funcQName(fn) {
			case "sync.WaitGroup.Wait", "sync.Cond.Wait", "time.Sleep":
				found(n.Pos(), "call to "+funcQName(fn))
			}
		}
		return true
	})
	return pos, what
}
