package lint_test

import (
	"testing"

	"github.com/bullfrogdb/bullfrog/internal/lint"
	"github.com/bullfrogdb/bullfrog/internal/lint/linttest"
)

func TestErrDrop(t *testing.T) { linttest.Run(t, "errdrop", lint.ErrDrop) }
