package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockHeld flags operations that can block — channel sends/receives,
// blocking selects, ranges over channels, and calls on the configured
// blocking list (time.Sleep, WAL appends, lock-table waits, network IO) —
// while a sync.Mutex or sync.RWMutex is held, plus acquisitions of a second
// mutex that violate (or are missing from) the lock-order table in
// config.go. The engine's rule is simple: a tuple, tracker, or controller
// lock protects an in-memory critical section measured in nanoseconds;
// anything that can wait on another goroutine or the disk while holding one
// is a latent deadlock or a concurrency collapse under load.
//
// The analysis is intraprocedural and tracks locks by selector spelling
// (like go vet's lock checks): Lock/RLock on `x.mu` opens a held region
// that ends at the matching Unlock in the same block, or at function end
// when the unlock is deferred. Helper functions that acquire locks for
// their caller are not modeled; keep critical sections syntactically local.
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc:  "flag blocking operations while a mutex is held, and out-of-order lock acquisition",
	Run:  runLockHeld,
}

type heldLock struct {
	key  string // selector spelling, e.g. "s.mu"
	id   string // config identity, e.g. "internal/txn.Manager.commitMu"
	read bool   // held via RLock
	line int
}

type lockOp struct {
	recv    ast.Expr
	acquire bool
	read    bool
}

// lockCall classifies a call as Lock/RLock/Unlock/RUnlock on a
// sync.Mutex/RWMutex (directly or promoted through embedding).
func lockCall(info *types.Info, call *ast.CallExpr) *lockOp {
	fn := calleeFunc(info, call)
	if fn == nil {
		return nil
	}
	var acquire, read bool
	switch fn.Name() {
	case "Lock":
		acquire = true
	case "RLock":
		acquire, read = true, true
	case "Unlock":
	case "RUnlock":
		read = true
	default:
		return nil
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if !isNamedType(t, "sync", "Mutex") && !isNamedType(t, "sync", "RWMutex") {
		return nil
	}
	recv := recvOfCall(call)
	if recv == nil {
		return nil
	}
	return &lockOp{recv: recv, acquire: acquire, read: read}
}

type lockHeldState struct {
	pass *Pass
	// funcLits found while walking; analyzed afterwards with an empty held
	// set (goroutines and deferred closures do not inherit the caller's
	// critical section).
	lits []*ast.FuncLit
}

func runLockHeld(pass *Pass) error {
	st := &lockHeldState{pass: pass}
	for _, f := range pass.Syntax {
		funcsOf(f, func(_ string, _ *ast.FuncDecl, body *ast.BlockStmt) {
			st.block(body, map[string]*heldLock{})
		})
		for len(st.lits) > 0 {
			lit := st.lits[0]
			st.lits = st.lits[1:]
			st.block(lit.Body, map[string]*heldLock{})
		}
	}
	return nil
}

func copyHeld(held map[string]*heldLock) map[string]*heldLock {
	c := make(map[string]*heldLock, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

func (st *lockHeldState) block(b *ast.BlockStmt, held map[string]*heldLock) {
	if b == nil {
		return
	}
	for _, s := range b.List {
		st.stmt(s, held)
	}
}

func (st *lockHeldState) stmt(s ast.Stmt, held map[string]*heldLock) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		st.block(s, held)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if op := lockCall(st.pass.Info, call); op != nil {
				st.apply(op, call.Pos(), held)
				return
			}
		}
		st.exprs(s.X, held)
	case *ast.DeferStmt:
		// A deferred unlock keeps the lock held to function end (already the
		// default: we only release on an explicit unlock statement). Other
		// deferred calls run outside the critical section; their argument
		// expressions evaluate now.
		if lockCall(st.pass.Info, s.Call) == nil {
			for _, a := range s.Call.Args {
				st.exprs(a, held)
			}
			st.deferLit(s.Call)
		}
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			st.exprs(a, held)
		}
		st.deferLit(s.Call)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			st.exprs(e, held)
		}
		for _, e := range s.Lhs {
			st.exprs(e, held)
		}
	case *ast.DeclStmt:
		st.exprs(s, held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			st.exprs(e, held)
		}
	case *ast.IfStmt:
		st.stmt(s.Init, held)
		st.exprs(s.Cond, held)
		st.block(s.Body, copyHeld(held))
		st.stmt(s.Else, copyHeld(held))
	case *ast.ForStmt:
		inner := copyHeld(held)
		st.stmt(s.Init, inner)
		if s.Cond != nil {
			st.exprs(s.Cond, inner)
		}
		st.block(s.Body, inner)
		st.stmt(s.Post, inner)
	case *ast.RangeStmt:
		if t, ok := st.pass.Info.Types[s.X]; ok {
			if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
				st.reportHeld(s.Pos(), "range over channel", held)
			}
		}
		st.exprs(s.X, held)
		st.block(s.Body, copyHeld(held))
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			st.reportHeld(s.Pos(), "blocking select", held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				inner := copyHeld(held)
				for _, b := range cc.Body {
					st.stmt(b, inner)
				}
			}
		}
	case *ast.SendStmt:
		st.reportHeld(s.Pos(), "channel send", held)
		st.exprs(s.Chan, held)
		st.exprs(s.Value, held)
	case *ast.SwitchStmt:
		st.stmt(s.Init, held)
		if s.Tag != nil {
			st.exprs(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				inner := copyHeld(held)
				for _, b := range cc.Body {
					st.stmt(b, inner)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		st.stmt(s.Init, held)
		st.stmt(s.Assign, held)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				inner := copyHeld(held)
				for _, b := range cc.Body {
					st.stmt(b, inner)
				}
			}
		}
	case *ast.LabeledStmt:
		st.stmt(s.Stmt, held)
	case *ast.IncDecStmt:
		st.exprs(s.X, held)
	}
}

// deferLit queues a deferred/spawned closure body for independent analysis.
func (st *lockHeldState) deferLit(call *ast.CallExpr) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		st.lits = append(st.lits, lit)
	}
}

// apply executes a lock operation against the held set, checking ordering on
// acquisition.
func (st *lockHeldState) apply(op *lockOp, pos token.Pos, held map[string]*heldLock) {
	key := exprKey(op.recv)
	if !op.acquire {
		delete(held, key)
		return
	}
	id := trimModule(lockID(st.pass.Info, op.recv), st.pass.ModulePath)
	newRank, newRanked := lockRank[id]
	for _, h := range held {
		if h.key == key {
			if h.read && op.read {
				continue // RLock twice: allowed (though writer-starvation-prone)
			}
			st.pass.Reportf(pos, "acquires %s while already holding it (self-deadlock)", key)
			continue
		}
		heldRank, heldRanked := lockRank[h.id]
		switch {
		case !newRanked || !heldRanked:
			st.pass.Reportf(pos, "acquires %s while holding %s: lock pair is not in the lock-order table", key, h.key)
		case newRank <= heldRank:
			st.pass.Reportf(pos, "acquires %s (rank %d) while holding %s (rank %d): lock-order violation", key, newRank, h.key, heldRank)
		}
	}
	held[key] = &heldLock{key: key, id: id, read: op.read, line: st.pass.Fset.Position(pos).Line}
}

// exprs scans an expression tree for blocking operations. Function literal
// bodies are deferred (they run on their own goroutine/stack discipline).
func (st *lockHeldState) exprs(n ast.Node, held map[string]*heldLock) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			st.lits = append(st.lits, n)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				st.reportHeld(n.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			if op := lockCall(st.pass.Info, n); op != nil {
				st.apply(op, n.Pos(), held)
				return false
			}
			st.checkBlockingCall(n, held)
		}
		return true
	})
}

func (st *lockHeldState) checkBlockingCall(call *ast.CallExpr, held map[string]*heldLock) {
	if len(held) == 0 {
		return
	}
	fn := calleeFunc(st.pass.Info, call)
	if fn == nil {
		return
	}
	name := trimModule(funcQName(fn), st.pass.ModulePath)
	blocking := blockingFuncs[name]
	if !blocking && fn.Pkg() != nil {
		for _, prefix := range blockingPkgPrefixes {
			if hasPrefixPath(fn.Pkg().Path(), prefix) {
				blocking = true
				break
			}
		}
	}
	if blocking {
		st.reportHeld(call.Pos(), "call to "+name, held)
	}
}

func (st *lockHeldState) reportHeld(pos token.Pos, what string, held map[string]*heldLock) {
	for _, h := range held {
		st.pass.Reportf(pos, "%s while %s is held (locked at line %d)", what, h.key, h.line)
	}
}

// hasPrefixPath reports whether pkgPath is prefix or starts with prefix+"/".
func hasPrefixPath(pkgPath, prefix string) bool {
	return pkgPath == prefix || (len(pkgPath) > len(prefix) && pkgPath[:len(prefix)] == prefix && pkgPath[len(prefix)] == '/')
}
