package lint_test

import (
	"testing"

	"github.com/bullfrogdb/bullfrog/internal/lint"
	"github.com/bullfrogdb/bullfrog/internal/lint/linttest"
)

func TestCtxFlow(t *testing.T) { linttest.Run(t, "ctxflow", lint.CtxFlow) }
