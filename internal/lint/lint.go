// Package lint is BullFrog's project-specific static-analysis suite: a small
// go/analysis-shaped framework (built only on the standard library's go/ast
// and go/types, because the build environment is hermetic) plus the
// analyzers that turn the engine's unwritten contracts — lock discipline,
// atomic-field access, context threading, the obs metric registry, and
// error propagation on durability paths — into CI failures.
//
// Each analyzer documents the invariant it encodes; DESIGN.md's "Static
// analysis & invariants" section is the prose index. Violations that are
// intentional carry a `//lint:ignore <analyzer> <reason>` comment on the
// offending line or the line above; the reason is mandatory, and unused or
// malformed ignore comments are themselves diagnostics, so the set of
// suppressions stays auditable.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer checks one invariant, either one package at a time (Run) or
// over the whole loaded package set at once (RunModule, for interprocedural
// analyses whose facts cross package boundaries). Exactly one of the two is
// set. This mirrors golang.org/x/tools/go/analysis.Analyzer so the suite
// could migrate onto the real framework without rewriting analyzer logic.
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(*Pass) error
	RunModule func(*ModulePass) error
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer   *Analyzer
	ModulePath string
	*Package

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// InScope reports whether the package is one of the given module-relative
// paths ("" is the module root, "internal/core" is <module>/internal/core).
// Fixture packages (import path "fixture/...") are always in scope so
// analyzers can be exercised under testdata.
func (p *Pass) InScope(rels ...string) bool {
	if strings.HasPrefix(p.Path, "fixture/") {
		return true
	}
	for _, rel := range rels {
		if rel == "" {
			if p.Path == p.ModulePath {
				return true
			}
		} else if p.Path == p.ModulePath+"/"+rel {
			return true
		}
	}
	return false
}

// ModulePass carries a module-level analyzer's view of every loaded package
// at once. Diagnostics are routed back to the package owning the reported
// file, so //lint:ignore suppression and the test-file drop apply exactly as
// they do for per-package analyzers.
type ModulePass struct {
	Analyzer   *Analyzer
	ModulePath string
	Packages   []*Package

	report func(Diagnostic)
}

// Fset returns the file set shared by every loaded package.
func (p *ModulePass) Fset() *token.FileSet {
	if len(p.Packages) == 0 {
		return token.NewFileSet()
	}
	return p.Packages[0].Fset
}

// Reportf records a diagnostic at pos. An invalid pos yields an unpositioned
// diagnostic that survives suppression (use only for module-global facts
// with no better anchor).
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	var position token.Position
	if pos.IsValid() {
		position = p.Fset().Position(pos)
	}
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// ignoreRe matches `//lint:ignore <analyzer> <reason>`.
var ignoreRe = regexp.MustCompile(`^//lint:ignore(?:\s+(\S+))?(?:\s+(\S.*))?$`)

type ignore struct {
	analyzer string
	reason   string
	pos      token.Position
	used     bool
}

// Run executes every analyzer over every package and returns the surviving
// diagnostics sorted by position: suppressed ones are removed, diagnostics
// in _test.go files are dropped (test code may legitimately break library
// contracts), and malformed or unused ignore comments are added. Suppressed
// diagnostics are returned separately so callers can summarize them.
func Run(pkgs []*Package, analyzers []*Analyzer, modulePath string) (diags, suppressed []Diagnostic, err error) {
	// known covers the whole suite so running a subset (-analyzers=lockflow)
	// does not flag other analyzers' ignores as unknown; active gates the
	// unused-ignore check to analyzers that actually ran.
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	active := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
		active[a.Name] = true
	}
	raw := make([][]Diagnostic, len(pkgs))
	for i, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{Analyzer: a, ModulePath: modulePath, Package: pkg, diags: &raw[i]}
			if err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.Path, err)
			}
		}
	}
	// Module-level analyzers see every package at once; route each diagnostic
	// to the package owning its file so suppression applies normally.
	// Unpositioned (or out-of-tree) diagnostics cannot be suppressed and are
	// appended as-is.
	var orphans []Diagnostic
	byFile := map[string]int{}
	for i, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			byFile[pkg.Fset.Position(f.Pos()).Filename] = i
		}
	}
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		mp := &ModulePass{Analyzer: a, ModulePath: modulePath, Packages: pkgs}
		mp.report = func(d Diagnostic) {
			if i, ok := byFile[d.Pos.Filename]; ok {
				raw[i] = append(raw[i], d)
			} else {
				orphans = append(orphans, d)
			}
		}
		if err := a.RunModule(mp); err != nil {
			return nil, nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	for i, pkg := range pkgs {
		d, s := applyIgnores(pkg, raw[i], known, active)
		diags = append(diags, d...)
		suppressed = append(suppressed, s...)
	}
	diags = append(diags, orphans...)
	sortDiags(diags)
	sortDiags(suppressed)
	return diags, suppressed, nil
}

// applyIgnores filters pkg-local diagnostics through the package's
// `//lint:ignore` comments. An ignore applies to diagnostics of its analyzer
// on the comment's own line or the line directly below (for a comment on its
// own line above the offending statement).
func applyIgnores(pkg *Package, raw []Diagnostic, known, active map[string]bool) (kept, suppressed []Diagnostic) {
	type key struct {
		file string
		line int
		an   string
	}
	ignores := map[key]*ignore{}
	var all []*ignore
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if m[1] == "" || m[2] == "" {
					kept = append(kept, Diagnostic{
						Analyzer: "lint",
						Pos:      pos,
						Message:  "malformed //lint:ignore: want `//lint:ignore <analyzer> <reason>`",
					})
					continue
				}
				if !known[m[1]] {
					kept = append(kept, Diagnostic{
						Analyzer: "lint",
						Pos:      pos,
						Message:  fmt.Sprintf("//lint:ignore names unknown analyzer %q", m[1]),
					})
					continue
				}
				ig := &ignore{analyzer: m[1], reason: m[2], pos: pos}
				all = append(all, ig)
				ignores[key{pos.Filename, pos.Line, m[1]}] = ig
				ignores[key{pos.Filename, pos.Line + 1, m[1]}] = ig
			}
		}
	}
	for _, d := range raw {
		if pkg.testFiles[filepath.Base(d.Pos.Filename)] {
			continue
		}
		if ig, ok := ignores[key{d.Pos.Filename, d.Pos.Line, d.Analyzer}]; ok {
			ig.used = true
			suppressed = append(suppressed, d)
			continue
		}
		kept = append(kept, d)
	}
	for _, ig := range all {
		if !ig.used && active[ig.analyzer] {
			kept = append(kept, Diagnostic{
				Analyzer: "lint",
				Pos:      ig.pos,
				Message:  fmt.Sprintf("unused //lint:ignore %s (no matching diagnostic)", ig.analyzer),
			})
		}
	}
	return kept, suppressed
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i].Pos, ds[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return ds[i].Message < ds[j].Message
	})
}

// All returns the full analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		LockFlow,
		AtomicField,
		CtxFlow,
		ObsMetric,
		ErrDrop,
	}
}

// funcsOf yields every function body in the file: declarations and function
// literals, each paired with its describing name.
func funcsOf(f *ast.File, fn func(name string, decl *ast.FuncDecl, body *ast.BlockStmt)) {
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		fn(fd.Name.Name, fd, fd.Body)
	}
}
