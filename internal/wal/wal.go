// Package wal implements a binary redo log. Every committed data mutation
// (insert / update / delete) and every migration-status transition is logged
// so that, after a crash, both table contents and BullFrog's migration
// tracking state can be rebuilt by replay.
//
// The paper (§3.5) notes that BullFrog's status-tracking structures live in
// volatile memory and must be re-derived from the REDO log during recovery —
// a feature the authors had "yet to implement". This package implements it:
// RecMigrated records are emitted when a migration transaction commits, and
// Replay hands them back so trackers can be restored to [0 1] / migrated.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"time"

	"github.com/bullfrogdb/bullfrog/internal/obs"
	"github.com/bullfrogdb/bullfrog/internal/storage"
	"github.com/bullfrogdb/bullfrog/internal/types"
)

// RecType identifies a log record's kind.
type RecType uint8

// Log record types.
const (
	RecBegin RecType = iota + 1
	RecCommit
	RecAbort
	RecInsert
	RecUpdate
	RecDelete
	RecMigrated // a migration granule (tuple ordinal or group key) completed
	RecInstall  // a catalog version install (migration big flip) was published
)

func (t RecType) String() string {
	switch t {
	case RecBegin:
		return "BEGIN"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	case RecInsert:
		return "INSERT"
	case RecUpdate:
		return "UPDATE"
	case RecDelete:
		return "DELETE"
	case RecMigrated:
		return "MIGRATED"
	case RecInstall:
		return "INSTALL"
	default:
		return fmt.Sprintf("RecType(%d)", uint8(t))
	}
}

// Record is one log entry. Field use by type:
//
//	RecBegin/RecCommit/RecAbort: XID only
//	RecInsert/RecUpdate:         XID, Table, TID, Row (the new image)
//	RecDelete:                   XID, Table, TID
//	RecMigrated:                 XID, Table (tracker name), Key (granule key)
//	RecInstall:                  Table (migration name); XID unused (0)
type Record struct {
	Type  RecType
	XID   uint64
	Table string
	TID   storage.TID
	Row   types.Row
	Key   []byte
}

// Logger is the interface the engine writes through. Nop discards.
type Logger interface {
	Append(rec Record) error
	// Flush forces buffered records to the underlying writer.
	Flush() error
}

// Nop is a Logger that discards all records (logging disabled).
type Nop struct{}

// Append discards the record.
func (Nop) Append(Record) error { return nil }

// Flush does nothing.
func (Nop) Flush() error { return nil }

// Writer appends records to an io.Writer with buffering. Safe for concurrent
// use.
type Writer struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	buf []byte
	n   int64
	met *obs.WALMetrics // nil = no instrumentation
}

// NewWriter wraps w in a WAL writer.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 1<<16)}
}

// SetObs attaches WAL metrics (records, exact encoded bytes, sync latency).
// Call before concurrent use.
func (w *Writer) SetObs(m *obs.WALMetrics) {
	w.mu.Lock()
	w.met = m
	w.mu.Unlock()
}

// Append encodes and buffers one record.
func (w *Writer) Append(rec Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf = encodeRecord(w.buf[:0], rec)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(w.buf)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(w.buf))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.bw.Write(w.buf); err != nil {
		return err
	}
	w.n++
	if w.met != nil {
		w.met.Records.Inc()
		w.met.Bytes.Add(int64(len(hdr) + len(w.buf)))
	}
	return nil
}

// Flush writes buffered records through.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.met == nil {
		return w.bw.Flush()
	}
	start := time.Now()
	err := w.bw.Flush()
	w.met.SyncLatency.ObserveSince(start)
	return err
}

// Instrument attaches metrics to a logger: a *Writer records in place (exact
// byte counts), Nop stays uninstrumented, and anything else is wrapped so
// records and sync latency are still counted (bytes are unknown and stay 0).
func Instrument(l Logger, m *obs.WALMetrics) Logger {
	switch t := l.(type) {
	case nil:
		return l
	case Nop:
		return l
	case *Writer:
		t.SetObs(m)
		return l
	default:
		return &instrumented{l: l, met: m}
	}
}

type instrumented struct {
	l   Logger
	met *obs.WALMetrics
}

func (w *instrumented) Append(rec Record) error {
	err := w.l.Append(rec)
	if err == nil {
		w.met.Records.Inc()
	}
	return err
}

func (w *instrumented) Flush() error {
	start := time.Now()
	err := w.l.Flush()
	w.met.SyncLatency.ObserveSince(start)
	return err
}

// Count returns the number of records appended.
func (w *Writer) Count() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

func encodeRecord(buf []byte, rec Record) []byte {
	buf = append(buf, byte(rec.Type))
	buf = binary.AppendUvarint(buf, rec.XID)
	switch rec.Type {
	case RecBegin, RecCommit, RecAbort:
		return buf
	case RecInsert, RecUpdate:
		buf = appendString(buf, rec.Table)
		buf = binary.AppendUvarint(buf, uint64(rec.TID.Page))
		buf = binary.AppendUvarint(buf, uint64(rec.TID.Slot))
		rowBytes := types.EncodeKey(nil, rec.Row)
		buf = binary.AppendUvarint(buf, uint64(len(rowBytes)))
		return append(buf, rowBytes...)
	case RecDelete:
		buf = appendString(buf, rec.Table)
		buf = binary.AppendUvarint(buf, uint64(rec.TID.Page))
		return binary.AppendUvarint(buf, uint64(rec.TID.Slot))
	case RecMigrated:
		buf = appendString(buf, rec.Table)
		buf = binary.AppendUvarint(buf, uint64(len(rec.Key)))
		return append(buf, rec.Key...)
	case RecInstall:
		return appendString(buf, rec.Table)
	default:
		panic(fmt.Sprintf("wal: cannot encode record type %d", rec.Type))
	}
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// ErrCorrupt reports a malformed or checksum-failing log.
var ErrCorrupt = errors.New("wal: corrupt log")

// Reader decodes records from an io.Reader.
type Reader struct {
	br *bufio.Reader
}

// NewReader wraps r in a WAL reader.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 1<<16)}
}

// Next returns the next record, or io.EOF at the end. A truncated trailing
// record (torn write) is reported as io.EOF, matching standard redo-log
// recovery semantics; a checksum mismatch is ErrCorrupt.
func (r *Reader) Next() (Record, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Record{}, io.EOF
		}
		return Record{}, err
	}
	size := binary.LittleEndian.Uint32(hdr[:4])
	sum := binary.LittleEndian.Uint32(hdr[4:])
	if size > 1<<28 {
		return Record{}, ErrCorrupt
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r.br, payload); err != nil {
		if err == io.ErrUnexpectedEOF || err == io.EOF {
			return Record{}, io.EOF // torn tail
		}
		return Record{}, err
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return Record{}, ErrCorrupt
	}
	return decodeRecord(payload)
}

func decodeRecord(buf []byte) (Record, error) {
	if len(buf) == 0 {
		return Record{}, ErrCorrupt
	}
	rec := Record{Type: RecType(buf[0])}
	buf = buf[1:]
	xid, n := binary.Uvarint(buf)
	if n <= 0 {
		return Record{}, ErrCorrupt
	}
	rec.XID = xid
	buf = buf[n:]
	readString := func() (string, error) {
		l, n := binary.Uvarint(buf)
		if n <= 0 || uint64(len(buf)-n) < l {
			return "", ErrCorrupt
		}
		s := string(buf[n : n+int(l)])
		buf = buf[n+int(l):]
		return s, nil
	}
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(buf)
		if n <= 0 {
			return 0, ErrCorrupt
		}
		buf = buf[n:]
		return v, nil
	}
	switch rec.Type {
	case RecBegin, RecCommit, RecAbort:
		return rec, nil
	case RecInsert, RecUpdate:
		var err error
		if rec.Table, err = readString(); err != nil {
			return Record{}, err
		}
		page, err := readUvarint()
		if err != nil {
			return Record{}, err
		}
		slot, err := readUvarint()
		if err != nil {
			return Record{}, err
		}
		rec.TID = storage.TID{Page: uint32(page), Slot: uint32(slot)}
		rowLen, err := readUvarint()
		if err != nil || uint64(len(buf)) < rowLen {
			return Record{}, ErrCorrupt
		}
		row, err := types.DecodeKey(buf[:rowLen])
		if err != nil {
			return Record{}, err
		}
		rec.Row = row
		return rec, nil
	case RecDelete:
		var err error
		if rec.Table, err = readString(); err != nil {
			return Record{}, err
		}
		page, err := readUvarint()
		if err != nil {
			return Record{}, err
		}
		slot, err := readUvarint()
		if err != nil {
			return Record{}, err
		}
		rec.TID = storage.TID{Page: uint32(page), Slot: uint32(slot)}
		return rec, nil
	case RecMigrated:
		var err error
		if rec.Table, err = readString(); err != nil {
			return Record{}, err
		}
		keyLen, err := readUvarint()
		if err != nil || uint64(len(buf)) < keyLen {
			return Record{}, ErrCorrupt
		}
		rec.Key = append([]byte(nil), buf[:keyLen]...)
		return rec, nil
	case RecInstall:
		var err error
		if rec.Table, err = readString(); err != nil {
			return Record{}, err
		}
		return rec, nil
	default:
		return Record{}, ErrCorrupt
	}
}

// Replay reads every record, calling fn for each. It stops at a clean or
// torn end-of-log, and propagates ErrCorrupt for mid-log corruption.
func Replay(r io.Reader, fn func(Record) error) error {
	rd := NewReader(r)
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// CommittedSet scans the log and returns the set of XIDs with a commit
// record — the transactions whose effects should be replayed.
func CommittedSet(r io.Reader) (map[uint64]bool, error) {
	committed := make(map[uint64]bool)
	err := Replay(r, func(rec Record) error {
		if rec.Type == RecCommit {
			committed[rec.XID] = true
		}
		return nil
	})
	return committed, err
}
