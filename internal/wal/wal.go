// Package wal implements a binary redo log. Every committed data mutation
// (insert / update / delete) and every migration-status transition is logged
// so that, after a crash, both table contents and BullFrog's migration
// tracking state can be rebuilt by replay.
//
// The paper (§3.5) notes that BullFrog's status-tracking structures live in
// volatile memory and must be re-derived from the REDO log during recovery —
// a feature the authors had "yet to implement". This package implements it:
// RecMigrated records are emitted when a migration transaction commits, and
// Replay hands them back so trackers can be restored to [0 1] / migrated.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bullfrogdb/bullfrog/internal/obs"
	"github.com/bullfrogdb/bullfrog/internal/obs/trace"
	"github.com/bullfrogdb/bullfrog/internal/storage"
	"github.com/bullfrogdb/bullfrog/internal/types"
)

// RecType identifies a log record's kind.
type RecType uint8

// Log record types.
const (
	RecBegin RecType = iota + 1
	RecCommit
	RecAbort
	RecInsert
	RecUpdate
	RecDelete
	RecMigrated   // a migration granule (tuple ordinal or group key) completed
	RecInstall    // a catalog version install (migration big flip) was published
	RecCheckpoint // a checkpoint completed; Key carries its CheckpointMeta
)

func (t RecType) String() string {
	switch t {
	case RecBegin:
		return "BEGIN"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	case RecInsert:
		return "INSERT"
	case RecUpdate:
		return "UPDATE"
	case RecDelete:
		return "DELETE"
	case RecMigrated:
		return "MIGRATED"
	case RecInstall:
		return "INSTALL"
	case RecCheckpoint:
		return "CHECKPOINT"
	default:
		return fmt.Sprintf("RecType(%d)", uint8(t))
	}
}

// Record is one log entry. Field use by type:
//
//	RecBegin/RecCommit/RecAbort: XID only
//	RecInsert/RecUpdate:         XID, Table, TID, Row (the new image)
//	RecDelete:                   XID, Table, TID
//	RecMigrated:                 XID, Table (tracker name), Key (granule key)
//	RecInstall:                  Table (migration name), Key (schema version
//	                             metadata; optional, absent in old logs); XID
//	                             unused (0)
//	RecCheckpoint:               Key (encoded CheckpointMeta); XID unused (0)
type Record struct {
	Type  RecType
	XID   uint64
	Table string
	TID   storage.TID
	Row   types.Row
	Key   []byte
}

// Logger is the interface the engine writes through. Nop discards.
type Logger interface {
	Append(rec Record) error
	// Flush forces buffered records to the underlying writer and, when the
	// writer knows its device (see Syncer), all the way to durable media.
	Flush() error
}

// Syncer is the durable-media half of a log target: os.File implements it.
// A Writer whose target implements Syncer makes flushed records durable with
// a real device sync; without one, "durable" means flushed.
type Syncer interface {
	Sync() error
}

// BatchLogger appends a group of records atomically (one buffer-lock hold,
// no interleaving with other appenders) and returns once every record in the
// batch is durable. The engine commits through this: a transaction's redo
// records plus its RecCommit form one contiguous batch, so a log written
// this way never contains records of uncommitted transactions.
type BatchLogger interface {
	AppendBatch(recs []Record) error
}

// SpanBatchLogger is a BatchLogger that can attribute an AppendBatch's
// buffer-append, group-commit wait, and fsync time onto a trace span
// (*Writer and *Dir implement it).
type SpanBatchLogger interface {
	AppendBatchSpan(recs []Record, sp *trace.Span) error
}

// CommitFencer lets a checkpointer fence the commit pipeline. A committer
// calls EnterCommit before appending its batch and invokes the release only
// after the transaction is visible; BeginCheckpoint blocks new entrants and
// drains the in-flight window, so a segment rotation cleanly separates
// transactions that are fully committed from ones that have not started.
type CommitFencer interface {
	EnterCommit() (release func())
}

// GroupCommit tunes the leader/follower flush protocol.
type GroupCommit struct {
	// MaxDelay is how long a flush leader waits for more committers to pile
	// up before syncing, when fewer than MaxBatch records are pending.
	// 0 syncs immediately (latency-optimal; batching still happens naturally
	// while a sync is in progress).
	MaxDelay time.Duration
	// MaxBatch is the pending-record count at which the leader skips the
	// MaxDelay wait (0 = 64).
	MaxBatch int
}

func (g GroupCommit) maxBatch() int64 {
	if g.MaxBatch <= 0 {
		return 64
	}
	return int64(g.MaxBatch)
}

// Nop is a Logger that discards all records (logging disabled).
type Nop struct{}

// Append discards the record.
func (Nop) Append(Record) error { return nil }

// Flush does nothing.
func (Nop) Flush() error { return nil }

// Writer appends records to an io.Writer with buffering. Safe for concurrent
// use.
//
// Durability is published as an epoch: the number of records appended. A
// committer appends its batch under the buffer lock, reads the resulting
// epoch, and waits until the durable epoch covers it. The wait elects a
// flush leader (one CAS): the leader flushes and syncs once for every record
// appended so far — amortizing the device sync across all concurrent
// committers — publishes the new durable epoch, and wakes the followers
// parked on the current generation channel.
type Writer struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	buf []byte
	n   int64           // records appended (the epoch counter)
	b   int64           // bytes appended
	met *obs.WALMetrics // nil = no instrumentation

	sync Syncer // device sync target; nil = flush-only durability
	gc   GroupCommit
	tr   *trace.Tracer // group-sync ring events; nil = no tracing

	durable atomic.Int64                  // highest epoch known durable
	leading atomic.Bool                   // flush-leader election token
	gen     atomic.Pointer[chan struct{}] // followers park here; closed per leader round
	failed  atomic.Pointer[error]         // sticky device failure
}

// NewWriter wraps w in a WAL writer. If w implements Syncer (os.File does),
// durability includes a device sync; otherwise it means flushed to w.
func NewWriter(w io.Writer) *Writer {
	wr := &Writer{bw: bufio.NewWriterSize(w, 1<<16)}
	if s, ok := w.(Syncer); ok {
		wr.sync = s
	}
	ch := make(chan struct{})
	wr.gen.Store(&ch)
	return wr
}

// SetGroupCommit installs group-commit tuning. Call before concurrent use.
func (w *Writer) SetGroupCommit(gc GroupCommit) {
	w.mu.Lock()
	w.gc = gc
	w.mu.Unlock()
}

// SetSyncer overrides the device-sync target (nil disables the sync step).
// Call before concurrent use.
func (w *Writer) SetSyncer(s Syncer) {
	w.mu.Lock()
	w.sync = s
	w.mu.Unlock()
}

// SetObs attaches WAL metrics (records, exact encoded bytes, flush and sync
// latency, group batch sizes). Call before concurrent use.
func (w *Writer) SetObs(m *obs.WALMetrics) {
	w.mu.Lock()
	w.met = m
	w.mu.Unlock()
}

// SetTracer attaches a tracer: every flush-leader round records a group_sync
// ring event (batch size, dwell, fsync time). Call before concurrent use.
func (w *Writer) SetTracer(tr *trace.Tracer) {
	w.mu.Lock()
	w.tr = tr
	w.mu.Unlock()
}

func (w *Writer) err() error {
	if p := w.failed.Load(); p != nil {
		return *p
	}
	return nil
}

func (w *Writer) fail(err error) error {
	e := fmt.Errorf("wal: log device failed: %w", err)
	w.failed.CompareAndSwap(nil, &e)
	return w.err()
}

// Append encodes and buffers one record. The record is not durable until the
// next Flush or group-commit sync.
func (w *Writer) Append(rec Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appendLocked(rec)
}

func (w *Writer) appendLocked(rec Record) error {
	if err := w.err(); err != nil {
		return err
	}
	w.buf = encodeRecord(w.buf[:0], rec)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(w.buf)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(w.buf))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return w.fail(err)
	}
	if _, err := w.bw.Write(w.buf); err != nil {
		return w.fail(err)
	}
	w.n++
	w.b += int64(len(hdr) + len(w.buf))
	if w.met != nil {
		w.met.Records.Inc()
		w.met.Bytes.Add(int64(len(hdr) + len(w.buf)))
	}
	return nil
}

// AppendBatch appends recs as one contiguous run under a single buffer-lock
// hold and returns once every record in the batch is durable, electing or
// following a flush leader (see the Writer doc).
func (w *Writer) AppendBatch(recs []Record) error {
	return w.AppendBatchSpan(recs, nil)
}

// AppendBatchSpan is AppendBatch attributing its time onto sp when non-nil:
// the buffer append as wal_append, the committer's own fsync rounds as
// fsync, and the rest of the durable wait (dwell + parked follower time) as
// group_commit_wait. A nil sp costs one nil check.
func (w *Writer) AppendBatchSpan(recs []Record, sp *trace.Span) error {
	var start time.Time
	if sp != nil {
		start = time.Now()
	}
	w.mu.Lock()
	for _, rec := range recs {
		if err := w.appendLocked(rec); err != nil {
			w.mu.Unlock()
			return err
		}
	}
	epoch := w.n
	w.mu.Unlock()
	if sp == nil {
		return w.waitDurable(epoch)
	}
	sp.AddSince(trace.PhaseWALAppend, start)
	waitStart := time.Now()
	fsync, err := w.waitDurableTimed(epoch)
	sp.Add(trace.PhaseFsync, fsync)
	sp.Add(trace.PhaseGroupWait, time.Since(waitStart)-fsync)
	return err
}

// waitDurable blocks until the durable epoch covers epoch, doing leader duty
// when the election CAS is won. No mutex is held at any blocking point.
func (w *Writer) waitDurable(epoch int64) error {
	_, err := w.waitDurableTimed(epoch)
	return err
}

// waitDurableTimed is waitDurable reporting how much of the wait this
// goroutine spent inside device syncs as the flush leader — the part of a
// committer's durable wait that is fsync rather than batching dwell or
// follower parking.
func (w *Writer) waitDurableTimed(epoch int64) (fsync time.Duration, err error) {
	for {
		if err := w.err(); err != nil {
			return fsync, err
		}
		if w.durable.Load() >= epoch {
			return fsync, nil
		}
		if w.leading.CompareAndSwap(false, true) {
			fsync += w.leadSync()
			w.releaseLeader()
			continue
		}
		ch := w.gen.Load()
		// Park only while a leader is active: its release closes the current
		// generation, and the durable re-check after capturing the channel
		// covers a leader that published between our first check and here. If
		// no one holds the token, loop and win the election ourselves.
		if w.durable.Load() >= epoch || w.err() != nil || !w.leading.Load() {
			continue
		}
		<-*ch
	}
}

// leadSync is one leader round: optionally dwell for more committers, then
// flush under the buffer lock and sync with no lock held, then publish the
// durable epoch. Must be called holding the leadership token. Returns the
// time spent in the device sync (0 when there is no Syncer).
func (w *Writer) leadSync() time.Duration {
	var dwell time.Duration
	if d := w.gc.MaxDelay; d > 0 {
		w.mu.Lock()
		pending := w.n - w.durable.Load()
		w.mu.Unlock()
		if pending < w.gc.maxBatch() {
			time.Sleep(d)
			dwell = d
		}
	}
	w.mu.Lock()
	target := w.n
	start := time.Now()
	err := w.bw.Flush()
	w.mu.Unlock()
	if w.met != nil {
		w.met.FlushLatency.ObserveSince(start)
	}
	if err != nil {
		_ = w.fail(err)
		return 0
	}
	var syncDur time.Duration
	if s := w.sync; s != nil {
		start = time.Now()
		err = s.Sync()
		syncDur = time.Since(start)
		if w.met != nil {
			w.met.SyncLatency.Observe(int64(syncDur))
			w.met.Syncs.Inc()
		}
		if err != nil {
			_ = w.fail(err)
			return syncDur
		}
	}
	prev := w.durable.Load()
	w.advanceDurable(target)
	if w.tr != nil && target > prev {
		w.tr.Event(trace.EvGroupSync, 0, target-prev,
			fmt.Sprintf("dwell=%s fsync=%s", dwell, syncDur))
	}
	return syncDur
}

// advanceDurable publishes epoch as durable (monotone) and records the group
// size. Must be called holding the leadership token.
func (w *Writer) advanceDurable(epoch int64) {
	prev := w.durable.Load()
	if epoch <= prev {
		return
	}
	if w.met != nil {
		w.met.GroupBatchSize.Observe(epoch - prev)
	}
	w.durable.Store(epoch)
}

// acquireLeader spins until it wins the flush-leader token. Used by segment
// rotation, which must exclude concurrent leader syncs; the spin is bounded
// by one leader round (flush + sync + optional MaxDelay dwell).
func (w *Writer) acquireLeader() {
	for !w.leading.CompareAndSwap(false, true) {
		time.Sleep(10 * time.Microsecond)
	}
}

// releaseLeader drops the token and wakes parked followers by closing the
// current generation channel.
func (w *Writer) releaseLeader() {
	w.leading.Store(false)
	ch := make(chan struct{})
	old := w.gen.Swap(&ch)
	close(*old)
}

// swapTarget flushes the buffered tail to the current target and retargets
// the writer at nw with syncer ns. It returns the epoch and byte count the
// old target now holds; the caller is responsible for syncing the old target
// before treating that epoch as durable. Must be called holding the
// leadership token (see acquireLeader) so no concurrent leader publishes an
// epoch that spans the swap.
func (w *Writer) swapTarget(nw io.Writer, ns Syncer) (epoch, bytes int64, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.bw.Flush(); err != nil {
		return 0, 0, w.fail(err)
	}
	w.bw.Reset(nw)
	w.sync = ns
	return w.n, w.b, nil
}

// Flush forces buffered records to the underlying writer and, when a Syncer
// is attached, to durable media. The buffered-writer drain is timed as
// wal.flush_latency; the device sync as wal.sync_latency.
func (w *Writer) Flush() error {
	w.mu.Lock()
	start := time.Now()
	err := w.bw.Flush()
	s := w.sync
	w.mu.Unlock()
	if w.met != nil {
		w.met.FlushLatency.ObserveSince(start)
	}
	if err != nil {
		return w.fail(err)
	}
	if s != nil {
		start = time.Now()
		err = s.Sync()
		if w.met != nil {
			w.met.SyncLatency.ObserveSince(start)
			w.met.Syncs.Inc()
		}
		if err != nil {
			return w.fail(err)
		}
	}
	return nil
}

// Instrument attaches metrics to a logger: a *Writer or *Dir records in
// place (exact byte counts), Nop stays uninstrumented, and anything else is
// wrapped so records and flush latency are still counted (bytes are unknown
// and stay 0).
func Instrument(l Logger, m *obs.WALMetrics) Logger {
	switch t := l.(type) {
	case nil:
		return l
	case Nop:
		return l
	case *Writer:
		t.SetObs(m)
		return l
	case *Dir:
		t.SetObs(m)
		return l
	default:
		return &instrumented{l: l, met: m}
	}
}

type instrumented struct {
	l   Logger
	met *obs.WALMetrics
}

func (w *instrumented) Append(rec Record) error {
	err := w.l.Append(rec)
	if err == nil {
		w.met.Records.Inc()
	}
	return err
}

// Flush times the wrapped flush as flush latency; whether the wrapped logger
// reaches a device is unknown, so no sync is recorded.
func (w *instrumented) Flush() error {
	start := time.Now()
	err := w.l.Flush()
	w.met.FlushLatency.ObserveSince(start)
	return err
}

// Count returns the number of records appended.
func (w *Writer) Count() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// Bytes returns the encoded bytes appended (headers included).
func (w *Writer) Bytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b
}

func encodeRecord(buf []byte, rec Record) []byte {
	buf = append(buf, byte(rec.Type))
	buf = binary.AppendUvarint(buf, rec.XID)
	switch rec.Type {
	case RecBegin, RecCommit, RecAbort:
		return buf
	case RecInsert, RecUpdate:
		buf = appendString(buf, rec.Table)
		buf = binary.AppendUvarint(buf, uint64(rec.TID.Page))
		buf = binary.AppendUvarint(buf, uint64(rec.TID.Slot))
		rowBytes := types.EncodeKey(nil, rec.Row)
		buf = binary.AppendUvarint(buf, uint64(len(rowBytes)))
		return append(buf, rowBytes...)
	case RecDelete:
		buf = appendString(buf, rec.Table)
		buf = binary.AppendUvarint(buf, uint64(rec.TID.Page))
		return binary.AppendUvarint(buf, uint64(rec.TID.Slot))
	case RecMigrated, RecCheckpoint:
		buf = appendString(buf, rec.Table)
		buf = binary.AppendUvarint(buf, uint64(len(rec.Key)))
		return append(buf, rec.Key...)
	case RecInstall:
		buf = appendString(buf, rec.Table)
		buf = binary.AppendUvarint(buf, uint64(len(rec.Key)))
		return append(buf, rec.Key...)
	default:
		panic(fmt.Sprintf("wal: cannot encode record type %d", rec.Type))
	}
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// ErrCorrupt reports a malformed or checksum-failing log.
var ErrCorrupt = errors.New("wal: corrupt log")

// Reader decodes records from an io.Reader. The payload scratch buffer is
// reused across Next calls — decodeRecord copies every field it keeps
// (strings, keys, row datums), so returned Records never alias it.
type Reader struct {
	br      *bufio.Reader
	scratch []byte
}

// NewReader wraps r in a WAL reader.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 1<<16)}
}

// Next returns the next record, or io.EOF at the end. A truncated trailing
// record (torn write) is reported as io.EOF, matching standard redo-log
// recovery semantics; a checksum mismatch is ErrCorrupt.
func (r *Reader) Next() (Record, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Record{}, io.EOF
		}
		return Record{}, err
	}
	size := binary.LittleEndian.Uint32(hdr[:4])
	sum := binary.LittleEndian.Uint32(hdr[4:])
	if size > 1<<28 {
		return Record{}, ErrCorrupt
	}
	if uint32(cap(r.scratch)) < size {
		r.scratch = make([]byte, size)
	}
	payload := r.scratch[:size]
	if _, err := io.ReadFull(r.br, payload); err != nil {
		if err == io.ErrUnexpectedEOF || err == io.EOF {
			return Record{}, io.EOF // torn tail
		}
		return Record{}, err
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return Record{}, ErrCorrupt
	}
	return decodeRecord(payload)
}

func decodeRecord(buf []byte) (Record, error) {
	if len(buf) == 0 {
		return Record{}, ErrCorrupt
	}
	rec := Record{Type: RecType(buf[0])}
	buf = buf[1:]
	xid, n := binary.Uvarint(buf)
	if n <= 0 {
		return Record{}, ErrCorrupt
	}
	rec.XID = xid
	buf = buf[n:]
	readString := func() (string, error) {
		l, n := binary.Uvarint(buf)
		if n <= 0 || uint64(len(buf)-n) < l {
			return "", ErrCorrupt
		}
		s := string(buf[n : n+int(l)])
		buf = buf[n+int(l):]
		return s, nil
	}
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(buf)
		if n <= 0 {
			return 0, ErrCorrupt
		}
		buf = buf[n:]
		return v, nil
	}
	switch rec.Type {
	case RecBegin, RecCommit, RecAbort:
		return rec, nil
	case RecInsert, RecUpdate:
		var err error
		if rec.Table, err = readString(); err != nil {
			return Record{}, err
		}
		page, err := readUvarint()
		if err != nil {
			return Record{}, err
		}
		slot, err := readUvarint()
		if err != nil {
			return Record{}, err
		}
		rec.TID = storage.TID{Page: uint32(page), Slot: uint32(slot)}
		rowLen, err := readUvarint()
		if err != nil || uint64(len(buf)) < rowLen {
			return Record{}, ErrCorrupt
		}
		row, err := types.DecodeKey(buf[:rowLen])
		if err != nil {
			// Checksum-valid but undecodable is still corruption: keep the
			// reader's contract at exactly {nil, io.EOF, ErrCorrupt}.
			return Record{}, fmt.Errorf("%w: row: %v", ErrCorrupt, err)
		}
		rec.Row = row
		return rec, nil
	case RecDelete:
		var err error
		if rec.Table, err = readString(); err != nil {
			return Record{}, err
		}
		page, err := readUvarint()
		if err != nil {
			return Record{}, err
		}
		slot, err := readUvarint()
		if err != nil {
			return Record{}, err
		}
		rec.TID = storage.TID{Page: uint32(page), Slot: uint32(slot)}
		return rec, nil
	case RecMigrated, RecCheckpoint:
		var err error
		if rec.Table, err = readString(); err != nil {
			return Record{}, err
		}
		keyLen, err := readUvarint()
		if err != nil || uint64(len(buf)) < keyLen {
			return Record{}, ErrCorrupt
		}
		rec.Key = append([]byte(nil), buf[:keyLen]...)
		return rec, nil
	case RecInstall:
		var err error
		if rec.Table, err = readString(); err != nil {
			return Record{}, err
		}
		// The version-metadata payload is optional: logs written before the
		// schema version registry carry a bare migration name.
		if len(buf) == 0 {
			return rec, nil
		}
		keyLen, err := readUvarint()
		if err != nil || uint64(len(buf)) < keyLen {
			return Record{}, ErrCorrupt
		}
		rec.Key = append([]byte(nil), buf[:keyLen]...)
		return rec, nil
	default:
		return Record{}, ErrCorrupt
	}
}

// Replay reads every record, calling fn for each. It stops at a clean or
// torn end-of-log, and propagates ErrCorrupt for mid-log corruption.
func Replay(r io.Reader, fn func(Record) error) error {
	rd := NewReader(r)
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// CommittedSet scans the log and returns the set of XIDs with a commit
// record — the transactions whose effects should be replayed.
func CommittedSet(r io.Reader) (map[uint64]bool, error) {
	committed := make(map[uint64]bool)
	err := Replay(r, func(rec Record) error {
		if rec.Type == RecCommit {
			committed[rec.XID] = true
		}
		return nil
	})
	return committed, err
}
