package wal

import (
	"bytes"
	"errors"
	"testing"

	"github.com/bullfrogdb/bullfrog/internal/storage"
	"github.com/bullfrogdb/bullfrog/internal/types"
)

// fuzzSeedStream builds a valid multi-record log covering every record type
// the encoder supports.
func fuzzSeedStream(tb testing.TB) []byte {
	tb.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	recs := []Record{
		{Type: RecBegin, XID: 1},
		{Type: RecInsert, XID: 1, Table: "t", TID: storage.TID{Page: 1, Slot: 2},
			Row: []types.Datum{types.NewInt(7), types.NewString("x")}},
		{Type: RecUpdate, XID: 1, Table: "t", TID: storage.TID{Page: 1, Slot: 2},
			Row: []types.Datum{types.NewInt(8)}},
		{Type: RecDelete, XID: 1, Table: "t", TID: storage.TID{Page: 1, Slot: 2}},
		{Type: RecMigrated, XID: 1, Table: "split:t", Key: []byte{0, 1, 2}},
		{Type: RecInstall, Table: "v2"},
		{Type: RecCheckpoint, Key: CheckpointMeta{FirstSeg: 3, Watermark: 42}.encode(nil)},
		{Type: RecCommit, XID: 1},
	}
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			tb.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzWALReplay feeds arbitrary byte streams to Replay. Invariants:
//   - Replay never panics and always terminates.
//   - The error is exactly nil or ErrCorrupt (a torn tail is a clean stop).
//   - Any truncation of a VALID stream replays cleanly: the cut record is a
//     torn tail, never an error — this is what crash recovery relies on.
func FuzzWALReplay(f *testing.F) {
	valid := fuzzSeedStream(f)
	f.Add(valid, 0)
	f.Add(valid, len(valid)/2)
	f.Add([]byte{}, 0)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}, 1)
	f.Fuzz(func(t *testing.T, data []byte, cut int) {
		// Arbitrary bytes: must terminate with nil or ErrCorrupt.
		if err := Replay(bytes.NewReader(data), func(Record) error { return nil }); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Replay(arbitrary) = %v, want nil or ErrCorrupt", err)
		}
		// Truncated valid stream: every prefix replays without error, and the
		// surviving records are a prefix of the full stream.
		if cut < 0 {
			cut = -cut
		}
		cut %= len(valid) + 1
		var n int
		err := Replay(bytes.NewReader(valid[:cut]), func(Record) error {
			n++
			return nil
		})
		if err != nil {
			t.Fatalf("Replay(valid[:%d]) = %v, want nil (torn tail)", cut, err)
		}
		var full int
		if err := Replay(bytes.NewReader(valid), func(Record) error { full++; return nil }); err != nil {
			t.Fatal(err)
		}
		if n > full {
			t.Fatalf("prefix replayed %d records, full stream only %d", n, full)
		}
	})
}
