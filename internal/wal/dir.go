package wal

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/bullfrogdb/bullfrog/internal/obs"
	"github.com/bullfrogdb/bullfrog/internal/obs/trace"
)

// Dir is a file-backed, segmented WAL: records append to numbered segment
// files (000001.wal, 000002.wal, ...) through one shared group-commit Writer
// whose target is swapped on rotation. Rotation happens at a size threshold
// and at checkpoints; old segments are deleted once a checkpoint covers
// them, bounding both disk use and recovery replay length.
//
// Commit fencing (EnterCommit / BeginCheckpoint) lets a checkpointer align a
// rotation with a transaction-consistent snapshot: while the fence is up no
// commit batch can append, and the drain guarantees every batch already in
// the log belongs to a fully visible transaction.
type Dir struct {
	path string
	opt  DirOptions
	w    *Writer
	met  *obs.WALMetrics // nil = no instrumentation

	seg        atomic.Int64 // current (highest) segment index
	oldest     atomic.Int64 // oldest live segment index
	segFile    *os.File     // current target; mutated under writer leadership
	bytesAtSeg atomic.Int64 // writer byte count when the current segment began

	fence    atomic.Pointer[chan struct{}] // non-nil while a checkpoint fence is up
	inflight atomic.Int64                  // commit tokens outstanding
	closed   atomic.Bool
}

// DirOptions configures a segmented log directory.
type DirOptions struct {
	// SegmentSize is the rotation threshold in bytes (0 = 4 MiB).
	SegmentSize int64
	// GroupCommit tunes the leader/follower flush protocol.
	GroupCommit GroupCommit
	// NoSync skips device syncs: commits are durable only against process
	// crashes (the OS holds the data), not power loss. For benchmarks and
	// tests that want the full code path without fsync cost.
	NoSync bool
}

func (o DirOptions) segmentSize() int64 {
	if o.SegmentSize <= 0 {
		return 4 << 20
	}
	return o.SegmentSize
}

const (
	segSuffix  = ".wal"
	ckptSuffix = ".ckpt"
)

func segName(i int64) string { return fmt.Sprintf("%06d%s", i, segSuffix) }

// parseSegName returns the index of a segment file name, or ok=false.
func parseSegName(name string) (int64, bool) {
	base, found := strings.CutSuffix(name, segSuffix)
	if !found || len(base) == 0 {
		return 0, false
	}
	i, err := strconv.ParseInt(base, 10, 64)
	if err != nil || i <= 0 {
		return 0, false
	}
	return i, true
}

// OpenDir opens (or creates) a segmented log at path. The last segment's
// torn tail, if any, is truncated away so appends resume at a record
// boundary; a mid-segment checksum failure is reported as ErrCorrupt rather
// than silently truncated. Leftover temporary checkpoint files from an
// interrupted checkpoint are removed.
func OpenDir(path string, opt DirOptions) (*Dir, error) {
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, err
	}
	segs, err := listSegments(path)
	if err != nil {
		return nil, err
	}
	if err := removeTempCheckpoints(path); err != nil {
		return nil, err
	}
	d := &Dir{path: path, opt: opt}
	var cur int64 = 1
	if len(segs) > 0 {
		cur = segs[len(segs)-1]
		if err := truncateTorn(filepath.Join(path, segName(cur))); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(filepath.Join(path, segName(cur)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	d.segFile = f
	d.seg.Store(cur)
	if len(segs) > 0 {
		d.oldest.Store(segs[0])
	} else {
		d.oldest.Store(cur)
	}
	d.w = NewWriter(f)
	if opt.NoSync {
		d.w.SetSyncer(nil)
	}
	d.w.SetGroupCommit(opt.GroupCommit)
	return d, nil
}

// listSegments returns the segment indexes present at path, ascending.
func listSegments(path string) ([]int64, error) {
	ents, err := os.ReadDir(path)
	if err != nil {
		return nil, err
	}
	var segs []int64
	for _, e := range ents {
		if i, ok := parseSegName(e.Name()); ok && !e.IsDir() {
			segs = append(segs, i)
		}
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a] < segs[b] })
	return segs, nil
}

func removeTempCheckpoints(path string) error {
	ents, err := os.ReadDir(path)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ckptSuffix+".tmp") {
			if err := os.Remove(filepath.Join(path, e.Name())); err != nil {
				return err
			}
		}
	}
	return nil
}

// truncateTorn scans a segment and truncates a torn trailing record (a crash
// mid-append) so the file ends at a record boundary. A checksum failure
// before the tail is ErrCorrupt — that is data damage, not a torn write.
func truncateTorn(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	// Read-only handle: a failed close loses nothing.
	defer func() { _ = f.Close() }()
	valid, err := scanValidPrefix(f)
	if err != nil {
		return fmt.Errorf("%w: %s", err, path)
	}
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	if valid < fi.Size() {
		return os.Truncate(path, valid)
	}
	return nil
}

// scanValidPrefix returns the byte length of the longest prefix of r that is
// a whole number of valid records. Propagates ErrCorrupt on a checksum
// failure that is not a clean truncation.
func scanValidPrefix(r io.Reader) (int64, error) {
	cr := &countingReader{r: r}
	rd := NewReader(cr)
	var valid int64
	for {
		_, err := rd.Next()
		if err == io.EOF {
			return valid, nil
		}
		if err != nil {
			return valid, err
		}
		// The bufio reader over-reads; track consumed records exactly.
		valid = cr.n - int64(rd.br.Buffered())
	}
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// SetObs attaches WAL metrics. Call before concurrent use.
func (d *Dir) SetObs(m *obs.WALMetrics) {
	d.met = m
	d.w.SetObs(m)
	d.noteSegments()
}

// SetGroupCommit installs group-commit tuning. Call before concurrent use.
func (d *Dir) SetGroupCommit(gc GroupCommit) { d.w.SetGroupCommit(gc) }

// SetTracer attaches a tracer for group-sync ring events. Call before
// concurrent use.
func (d *Dir) SetTracer(tr *trace.Tracer) { d.w.SetTracer(tr) }

func (d *Dir) noteSegments() {
	if d.met != nil {
		d.met.SegmentsLive.Set(d.seg.Load() - d.oldest.Load() + 1)
	}
}

// Path returns the log directory.
func (d *Dir) Path() string { return d.path }

// Segment returns the current segment index.
func (d *Dir) Segment() int64 { return d.seg.Load() }

// Append encodes and buffers one record (durable at the next Flush or group
// sync).
func (d *Dir) Append(rec Record) error { return d.w.Append(rec) }

// Flush forces buffered records to durable media (unless NoSync).
func (d *Dir) Flush() error { return d.w.Flush() }

// AppendBatch appends a commit batch atomically and returns once it is
// durable, then rotates the segment if the size threshold was crossed.
func (d *Dir) AppendBatch(recs []Record) error {
	return d.AppendBatchSpan(recs, nil)
}

// AppendBatchSpan is AppendBatch with span attribution (see
// Writer.AppendBatchSpan); the rotation check is not attributed.
func (d *Dir) AppendBatchSpan(recs []Record, sp *trace.Span) error {
	if err := d.w.AppendBatchSpan(recs, sp); err != nil {
		return err
	}
	return d.maybeRotate()
}

// Count and Bytes report appended records and encoded bytes across segments.
func (d *Dir) Count() int64 { return d.w.Count() }

// Bytes returns encoded bytes appended across all segments.
func (d *Dir) Bytes() int64 { return d.w.Bytes() }

// maybeRotate rotates when the current segment crossed the size threshold.
// Best-effort: if another leader round (or rotation) is in progress, the
// next commit re-checks.
func (d *Dir) maybeRotate() error {
	if d.w.Bytes()-d.bytesAtSeg.Load() < d.opt.segmentSize() {
		return nil
	}
	if !d.w.leading.CompareAndSwap(false, true) {
		return nil
	}
	defer d.w.releaseLeader()
	if d.w.Bytes()-d.bytesAtSeg.Load() < d.opt.segmentSize() {
		return nil // lost the race; someone else rotated
	}
	return d.rotateLeading()
}

// rotate forces a segment rotation (checkpoints use this so the cut lands at
// a known boundary).
func (d *Dir) rotate() error {
	d.w.acquireLeader()
	defer d.w.releaseLeader()
	return d.rotateLeading()
}

// rotateLeading swaps the writer onto a fresh segment. Must hold the writer
// leadership token: that excludes concurrent leader syncs, so the old tail's
// durable epoch is published only after the old file is synced here. No lock
// is held across the sync.
func (d *Dir) rotateLeading() error {
	next := d.seg.Load() + 1
	f, err := os.OpenFile(filepath.Join(d.path, segName(next)), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	var ns Syncer = f
	if d.opt.NoSync {
		ns = nil
	}
	old := d.segFile
	epoch, bytes, err := d.w.swapTarget(f, ns)
	if err != nil {
		_ = f.Close()
		return err
	}
	if !d.opt.NoSync {
		start := time.Now()
		if err := old.Sync(); err != nil {
			_ = f.Close()
			return d.w.fail(err)
		}
		if d.met != nil {
			d.met.SyncLatency.ObserveSince(start)
			d.met.Syncs.Inc()
		}
	}
	if err := old.Close(); err != nil {
		return d.w.fail(err)
	}
	d.segFile = f
	d.seg.Store(next)
	d.bytesAtSeg.Store(bytes)
	d.w.advanceDurable(epoch)
	d.noteSegments()
	return nil
}

// EnterCommit implements CommitFencer: it blocks while a checkpoint fence is
// up, then takes an in-flight commit token. The returned release must be
// called after the committing transaction is visible (or its append failed).
func (d *Dir) EnterCommit() (release func()) {
	for {
		if ch := d.fence.Load(); ch != nil {
			<-*ch
			continue
		}
		d.inflight.Add(1)
		// The fence may have gone up between the check and the token take;
		// back out so the drain is not held up, and park.
		if ch := d.fence.Load(); ch != nil {
			d.inflight.Add(-1)
			<-*ch
			continue
		}
		return func() { d.inflight.Add(-1) }
	}
}

// ErrCheckpointActive reports an attempt to start overlapping checkpoints.
var ErrCheckpointActive = errors.New("wal: checkpoint already in progress")

// BeginCheckpoint fences the commit pipeline, drains in-flight commits, and
// rotates onto a fresh segment. On success it returns the new segment's
// index and a release that drops the fence: every transaction whose batch
// lives in a segment below the returned index is fully visible, and no
// transaction can commit until release is called. The caller should take its
// snapshot before releasing. ctx bounds the drain wait.
func (d *Dir) BeginCheckpoint(ctx context.Context) (seg int64, release func(), err error) {
	ch := make(chan struct{})
	if !d.fence.CompareAndSwap(nil, &ch) {
		return 0, nil, ErrCheckpointActive
	}
	release = func() {
		d.fence.Store(nil)
		close(ch)
	}
	for d.inflight.Load() != 0 {
		if err := ctx.Err(); err != nil {
			release()
			return 0, nil, err
		}
		time.Sleep(50 * time.Microsecond)
	}
	if err := d.rotate(); err != nil {
		release()
		return 0, nil, err
	}
	return d.seg.Load(), release, nil
}

// CompleteCheckpoint durably appends the checkpoint marker to the log and
// deletes the segments the checkpoint superseded (everything below
// meta.FirstSeg). Call after the checkpoint file is written and renamed.
func (d *Dir) CompleteCheckpoint(meta CheckpointMeta) error {
	if err := d.Append(Record{Type: RecCheckpoint, Key: meta.encode(nil)}); err != nil {
		return err
	}
	if err := d.Flush(); err != nil {
		return err
	}
	oldest := d.oldest.Load()
	for i := oldest; i < meta.FirstSeg; i++ {
		if err := os.Remove(filepath.Join(d.path, segName(i))); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	if meta.FirstSeg > oldest {
		d.oldest.Store(meta.FirstSeg)
	}
	// Older checkpoint files are superseded too.
	ents, err := os.ReadDir(d.path)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if i, ok := parseCkptName(e.Name()); ok && i < meta.FirstSeg {
			if err := os.Remove(filepath.Join(d.path, e.Name())); err != nil {
				return err
			}
		}
	}
	if d.met != nil {
		d.met.Checkpoints.Inc()
	}
	d.noteSegments()
	return nil
}

// Close flushes and syncs the current segment and closes it.
func (d *Dir) Close() error {
	if !d.closed.CompareAndSwap(false, true) {
		return nil
	}
	ferr := d.w.Flush()
	cerr := d.segFile.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}
