package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"sync"
	"testing"

	"github.com/bullfrogdb/bullfrog/internal/storage"
	"github.com/bullfrogdb/bullfrog/internal/types"
)

func sampleRecords() []Record {
	return []Record{
		{Type: RecBegin, XID: 1},
		{Type: RecInsert, XID: 1, Table: "customer", TID: storage.TID{Page: 2, Slot: 3},
			Row: types.Row{types.NewInt(7), types.NewString("alice"), types.Null}},
		{Type: RecUpdate, XID: 1, Table: "customer", TID: storage.TID{Page: 2, Slot: 3},
			Row: types.Row{types.NewInt(7), types.NewString("bob"), types.NewFloat(1.5)}},
		{Type: RecDelete, XID: 1, Table: "orders", TID: storage.TID{Page: 9, Slot: 0}},
		{Type: RecMigrated, XID: 1, Table: "split:customer", Key: []byte{0xAA, 0x00, 0xBB}},
		{Type: RecInstall, Table: "split", Key: []byte(`{"hash":"abc"}`)},
		{Type: RecCommit, XID: 1},
		{Type: RecBegin, XID: 2},
		{Type: RecAbort, XID: 2},
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	recs := sampleRecords()
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != int64(len(recs)) {
		t.Errorf("Count = %d", w.Count())
	}

	var got []Record
	if err := Replay(&buf, func(r Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i, want := range recs {
		g := got[i]
		if g.Type != want.Type || g.XID != want.XID || g.Table != want.Table || g.TID != want.TID {
			t.Errorf("record %d: got %+v, want %+v", i, g, want)
		}
		if len(g.Row) != len(want.Row) {
			t.Errorf("record %d row width %d, want %d", i, len(g.Row), len(want.Row))
			continue
		}
		for j := range want.Row {
			if !want.Row[j].IsNull() && !types.Equal(g.Row[j], want.Row[j]) {
				t.Errorf("record %d row[%d] = %v, want %v", i, j, g.Row[j], want.Row[j])
			}
		}
		if !bytes.Equal(g.Key, want.Key) {
			t.Errorf("record %d key = %v, want %v", i, g.Key, want.Key)
		}
	}
}

// TestInstallRecordOldFormatDecodes pins backward compatibility: install
// markers written before the schema version registry carry a bare migration
// name (no metadata payload) and must still decode, with an empty Key.
func TestInstallRecordOldFormatDecodes(t *testing.T) {
	payload := []byte{byte(RecInstall)}
	payload = binary.AppendUvarint(payload, 0) // XID
	payload = binary.AppendUvarint(payload, uint64(len("legacy")))
	payload = append(payload, "legacy"...)
	var frame [8]byte
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	r := NewReader(bytes.NewReader(append(frame[:], payload...)))
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Type != RecInstall || rec.Table != "legacy" || len(rec.Key) != 0 {
		t.Errorf("decoded %+v, want bare install marker for \"legacy\"", rec)
	}
}

func TestTornTailIsEOF(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Append(Record{Type: RecBegin, XID: 1})
	w.Append(Record{Type: RecCommit, XID: 1})
	w.Flush()
	full := buf.Bytes()

	// Truncate at every byte boundary of the second record; replay must
	// surface exactly one record and no error.
	firstLen := 8 + 1 + 1 // header + type + uvarint(1)
	for cut := firstLen + 1; cut < len(full); cut++ {
		var n int
		err := Replay(bytes.NewReader(full[:cut]), func(Record) error { n++; return nil })
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if n != 1 {
			t.Fatalf("cut=%d: replayed %d records, want 1", cut, n)
		}
	}
}

func TestChecksumCatchesCorruption(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Append(Record{Type: RecInsert, XID: 5, Table: "t", Row: types.Row{types.NewInt(1)}})
	w.Flush()
	data := buf.Bytes()
	data[len(data)-1] ^= 0xFF // flip a payload byte
	err := Replay(bytes.NewReader(data), func(Record) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("corrupted payload: err = %v, want ErrCorrupt", err)
	}
}

func TestReplayCallbackError(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Append(Record{Type: RecBegin, XID: 1})
	w.Flush()
	sentinel := errors.New("stop")
	if err := Replay(&buf, func(Record) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Errorf("callback error not propagated: %v", err)
	}
}

func TestCommittedSet(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Append(Record{Type: RecBegin, XID: 1})
	w.Append(Record{Type: RecCommit, XID: 1})
	w.Append(Record{Type: RecBegin, XID: 2})
	w.Append(Record{Type: RecAbort, XID: 2})
	w.Append(Record{Type: RecBegin, XID: 3}) // in-flight at crash
	w.Flush()
	set, err := CommittedSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !set[1] || set[2] || set[3] {
		t.Errorf("CommittedSet = %v", set)
	}
}

func TestNopLogger(t *testing.T) {
	var l Logger = Nop{}
	if err := l.Append(Record{Type: RecBegin, XID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAppend(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(xid uint64) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				w.Append(Record{Type: RecInsert, XID: xid, Table: "t",
					TID: storage.TID{Slot: uint32(j)}, Row: types.Row{types.NewInt(int64(j))}})
			}
		}(uint64(i + 1))
	}
	wg.Wait()
	w.Flush()
	n := 0
	if err := Replay(&buf, func(Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != workers*per {
		t.Errorf("replayed %d records, want %d", n, workers*per)
	}
}

func TestRecTypeString(t *testing.T) {
	want := map[RecType]string{
		RecBegin: "BEGIN", RecCommit: "COMMIT", RecAbort: "ABORT",
		RecInsert: "INSERT", RecUpdate: "UPDATE", RecDelete: "DELETE",
		RecMigrated: "MIGRATED",
	}
	for rt, s := range want {
		if rt.String() != s {
			t.Errorf("%d.String() = %q, want %q", rt, rt.String(), s)
		}
	}
	if RecType(99).String() != "RecType(99)" {
		t.Error("unknown type formatting")
	}
}

func TestReaderDirectEOF(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("empty log: %v", err)
	}
}
