package wal

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/bullfrogdb/bullfrog/internal/obs"
)

// slowSyncer wraps a Syncer with a fixed latency, so concurrent committers
// pile up behind the leader's sync and groups form deterministically.
type slowSyncer struct {
	s     Syncer
	delay time.Duration
	n     int64
	mu    sync.Mutex
}

func (s *slowSyncer) Sync() error {
	time.Sleep(s.delay)
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	if s.s == nil {
		return nil
	}
	return s.s.Sync()
}

func (s *slowSyncer) count() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

func TestAppendBatchConcurrentDurable(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "wal")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := NewWriter(f)
	ss := &slowSyncer{s: f, delay: time.Millisecond}
	w.SetSyncer(ss)
	met := &obs.WALMetrics{}
	w.SetObs(met)

	const workers, batches = 16, 20
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < batches; i++ {
				xid := uint64(g*batches + i + 1)
				recs := []Record{
					{Type: RecInsert, XID: xid, Table: "t", Row: nil},
					{Type: RecCommit, XID: xid},
				}
				if err := w.AppendBatch(recs); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	total := int64(workers * batches * 2)
	if got := w.Count(); got != total {
		t.Fatalf("appended %d records, want %d", got, total)
	}
	if got := w.durable.Load(); got != total {
		t.Fatalf("durable epoch %d, want %d", got, total)
	}
	// Every record is already on the file (AppendBatch returns after the
	// covering sync): replay without an extra flush.
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	var commits int64
	if err := Replay(bytes.NewReader(data), func(rec Record) error {
		if rec.Type == RecCommit {
			commits++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if commits != workers*batches {
		t.Fatalf("replayed %d commits, want %d", commits, workers*batches)
	}
	// The amortization claim: with concurrency, one sync covers many commits.
	syncs := ss.count()
	if syncs > int64(workers*batches) {
		t.Fatalf("%d syncs for %d commits", syncs, workers*batches)
	}
	if runtime.GOMAXPROCS(0) > 1 && syncs >= int64(workers*batches)/2 {
		t.Errorf("group commit did not amortize: %d syncs for %d commits", syncs, workers*batches)
	}
	if met.GroupBatchSize.Count() == 0 {
		t.Error("group_batch_size histogram never observed")
	}
}

// TestAppendBatchContiguous: batches from concurrent committers never
// interleave — each transaction's records are adjacent in the log, ending
// with its commit record.
func TestAppendBatchContiguous(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "wal")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := NewWriter(f)
	const workers, batches, size = 8, 25, 5
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < batches; i++ {
				xid := uint64(g*batches + i + 1)
				recs := make([]Record, 0, size+1)
				for j := 0; j < size; j++ {
					recs = append(recs, Record{Type: RecInsert, XID: xid, Table: "t"})
				}
				recs = append(recs, Record{Type: RecCommit, XID: xid})
				if err := w.AppendBatch(recs); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	var runXID uint64
	var runLen int
	if err := Replay(bytes.NewReader(data), func(rec Record) error {
		if rec.Type == RecCommit {
			if rec.XID != runXID || runLen != size {
				return fmt.Errorf("xid %d committed after %d records of xid %d", rec.XID, runLen, runXID)
			}
			runXID, runLen = 0, 0
			return nil
		}
		if runLen == 0 {
			runXID = rec.XID
		} else if rec.XID != runXID {
			return fmt.Errorf("xid %d interleaved into xid %d's batch", rec.XID, runXID)
		}
		runLen++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if runLen != 0 {
		t.Fatalf("trailing half-batch of %d records", runLen)
	}
}

type failingSyncer struct{ err error }

func (f failingSyncer) Sync() error { return f.err }

// TestSyncFailureIsSticky: a failed device sync poisons the writer — every
// waiter unblocks with the error and later appends refuse.
func TestSyncFailureIsSticky(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	devErr := errors.New("device gone")
	w.SetSyncer(failingSyncer{err: devErr})

	const workers = 8
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		go func(g int) {
			errs <- w.AppendBatch([]Record{{Type: RecCommit, XID: uint64(g + 1)}})
		}(g)
	}
	for i := 0; i < workers; i++ {
		if err := <-errs; !errors.Is(err, devErr) {
			t.Fatalf("AppendBatch error %v does not wrap the device error", err)
		}
	}
	if err := w.Append(Record{Type: RecCommit, XID: 99}); !errors.Is(err, devErr) {
		t.Fatalf("Append after failure: %v", err)
	}
}

func TestDirRotationAndRecoverySource(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir, DirOptions{SegmentSize: 512, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	met := &obs.WALMetrics{}
	d.SetObs(met)
	const txns = 60
	for i := 1; i <= txns; i++ {
		err := d.AppendBatch([]Record{
			{Type: RecInsert, XID: uint64(i), Table: "padding_table_name", Key: nil},
			{Type: RecCommit, XID: uint64(i)},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if d.Segment() < 2 {
		t.Fatalf("no rotation after %d bytes across segments (segment=%d)", d.Bytes(), d.Segment())
	}
	if got := met.SegmentsLive.Load(); got != d.Segment() {
		t.Errorf("segments_live = %d, want %d", got, d.Segment())
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	src, err := OpenRecovery(dir)
	if err != nil {
		t.Fatal(err)
	}
	if src.Meta != nil {
		t.Fatalf("unexpected checkpoint: %+v", src.Meta)
	}
	if int64(len(src.Segments)) != d.Segment() {
		t.Fatalf("recovery sees %d segments, writer ended on segment %d", len(src.Segments), d.Segment())
	}
	r, err := src.OpenSegments()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var commits int
	if err := Replay(r, func(rec Record) error {
		if rec.Type == RecCommit {
			commits++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if commits != txns {
		t.Fatalf("replayed %d commits across segments, want %d", commits, txns)
	}
}

// TestDirTornTailTruncatedOnOpen: a crash mid-append leaves a torn record at
// the last segment's tail; reopening truncates it and appends resume cleanly.
func TestDirTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir, DirOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := d.AppendBatch([]Record{{Type: RecCommit, XID: uint64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segName(1))
	// Torn write: half a record header.
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xFF, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDir(dir, DirOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.AppendBatch([]Record{{Type: RecCommit, XID: 4}}); err != nil {
		t.Fatal(err)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	var xids []uint64
	if err := Replay(bytes.NewReader(data), func(rec Record) error {
		xids = append(xids, rec.XID)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []uint64{1, 2, 3, 4}
	if len(xids) != len(want) {
		t.Fatalf("replayed XIDs %v, want %v", xids, want)
	}
	for i := range want {
		if xids[i] != want[i] {
			t.Fatalf("replayed XIDs %v, want %v", xids, want)
		}
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir, DirOptions{SegmentSize: 256, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	met := &obs.WALMetrics{}
	d.SetObs(met)
	ctx := context.Background()
	for i := 1; i <= 20; i++ {
		if err := d.AppendBatch([]Record{
			{Type: RecInsert, XID: uint64(i), Table: "some_table"},
			{Type: RecCommit, XID: uint64(i)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	preSegs := d.Segment()
	if preSegs < 2 {
		t.Fatalf("need rotation before checkpoint, segment=%d", preSegs)
	}

	firstSeg, release, err := d.BeginCheckpoint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if firstSeg != preSegs+1 {
		t.Fatalf("checkpoint cut at segment %d, expected %d", firstSeg, preSegs+1)
	}
	// Overlapping checkpoints collide.
	if _, _, err := d.BeginCheckpoint(ctx); !errors.Is(err, ErrCheckpointActive) {
		t.Fatalf("overlapping BeginCheckpoint: %v", err)
	}
	// A committer entering during the fence parks until release.
	entered := make(chan struct{})
	go func() {
		rel := d.EnterCommit()
		rel()
		close(entered)
	}()
	select {
	case <-entered:
		t.Fatal("EnterCommit passed through an active fence")
	case <-time.After(20 * time.Millisecond):
	}
	meta := CheckpointMeta{FirstSeg: firstSeg, Watermark: 20}
	cw, err := d.NewCheckpoint(meta)
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.Append(Record{Type: RecInsert, Table: "some_table", Row: nil}); err != nil {
		t.Fatal(err)
	}
	if err := cw.Append(Record{Type: RecMigrated, Table: "mig", Key: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	release()
	<-entered
	if err := cw.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := d.CompleteCheckpoint(meta); err != nil {
		t.Fatal(err)
	}
	if met.Checkpoints.Load() != 1 {
		t.Errorf("checkpoints counter = %d", met.Checkpoints.Load())
	}
	// Superseded segments are gone.
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if segs[0] < firstSeg {
		t.Fatalf("segment %d survived checkpoint at %d", segs[0], firstSeg)
	}
	// Post-checkpoint commits land in new segments.
	if err := d.AppendBatch([]Record{{Type: RecCommit, XID: 21}}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	src, err := OpenRecovery(dir)
	if err != nil {
		t.Fatal(err)
	}
	if src.Meta == nil || src.Meta.FirstSeg != firstSeg || src.Meta.Watermark != 20 {
		t.Fatalf("recovered meta %+v", src.Meta)
	}
	cr, err := src.OpenCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	var ckptTypes []RecType
	if err := Replay(cr, func(rec Record) error {
		ckptTypes = append(ckptTypes, rec.Type)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	_ = cr.Close()
	wantTypes := []RecType{RecCheckpoint, RecInsert, RecMigrated}
	if len(ckptTypes) != len(wantTypes) {
		t.Fatalf("checkpoint stream %v, want %v", ckptTypes, wantTypes)
	}
	for i := range wantTypes {
		if ckptTypes[i] != wantTypes[i] {
			t.Fatalf("checkpoint stream %v, want %v", ckptTypes, wantTypes)
		}
	}
	sr, err := src.OpenSegments()
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	var commits int
	if err := Replay(sr, func(rec Record) error {
		if rec.Type == RecCommit {
			commits++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Only the post-checkpoint commit replays; pre-checkpoint segments are
	// deleted and the marker record is not a commit.
	if commits != 1 {
		t.Fatalf("replayed %d commits after checkpoint, want 1", commits)
	}
}

// TestOpenDirRemovesTempCheckpoint: an interrupted checkpoint leaves a .tmp
// file that must not survive reopening, and must never be picked up as a
// checkpoint.
func TestOpenDirRemovesTempCheckpoint(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir, DirOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, ckptName(3)+".tmp")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDir(dir, DirOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("temp checkpoint survived reopen: %v", err)
	}
	src, err := OpenRecovery(dir)
	if err != nil {
		t.Fatal(err)
	}
	if src.Meta != nil {
		t.Fatalf("temp checkpoint treated as real: %+v", src.Meta)
	}
}

func BenchmarkReplay(b *testing.B) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	row := []byte("0123456789abcdef")
	for i := 0; i < 1000; i++ {
		if err := w.Append(Record{Type: RecMigrated, XID: uint64(i), Table: "bench_table", Key: row}); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Replay(bytes.NewReader(data), func(rec Record) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
}
