package wal

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// CheckpointMeta identifies a checkpoint: recovery loads the checkpoint file
// and replays only segments >= FirstSeg. It travels in two places — as the
// header record of the checkpoint file, and as the RecCheckpoint marker
// appended to the log when the checkpoint completes.
type CheckpointMeta struct {
	// FirstSeg is the first segment whose records post-date the snapshot.
	FirstSeg int64
	// Watermark is the commit sequence the snapshot reflects. Informational:
	// the fence protocol already guarantees segment/snapshot alignment.
	Watermark uint64
}

func (m CheckpointMeta) encode(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(m.FirstSeg))
	return binary.AppendUvarint(buf, m.Watermark)
}

// DecodeCheckpointMeta parses a RecCheckpoint record's Key.
func DecodeCheckpointMeta(key []byte) (CheckpointMeta, error) {
	var m CheckpointMeta
	seg, n := binary.Uvarint(key)
	if n <= 0 {
		return m, ErrCorrupt
	}
	wm, n2 := binary.Uvarint(key[n:])
	if n2 <= 0 {
		return m, ErrCorrupt
	}
	m.FirstSeg = int64(seg)
	m.Watermark = wm
	return m, nil
}

func ckptName(i int64) string { return fmt.Sprintf("%06d%s", i, ckptSuffix) }

func parseCkptName(name string) (int64, bool) {
	base, found := strings.CutSuffix(name, ckptSuffix)
	if !found || len(base) == 0 {
		return 0, false
	}
	i, err := strconv.ParseInt(base, 10, 64)
	if err != nil || i <= 0 {
		return 0, false
	}
	return i, true
}

// CheckpointWriter streams a checkpoint snapshot into a temporary file; Commit
// syncs and atomically renames it to NNNNNN.ckpt (NNNNNN = FirstSeg). The
// content is an ordinary WAL record stream: a RecCheckpoint header, then
// RecInstall records (catalog install history), RecInsert records (the table
// snapshot, carrying the tuples' live TIDs so later log records resolve), and
// RecMigrated records (tracker state).
type CheckpointWriter struct {
	meta CheckpointMeta
	f    *os.File
	w    *Writer
	tmp  string
	dst  string
	done bool
}

// NewCheckpoint starts writing the checkpoint for meta into the directory.
// The header record is written immediately.
func (d *Dir) NewCheckpoint(meta CheckpointMeta) (*CheckpointWriter, error) {
	dst := filepath.Join(d.path, ckptName(meta.FirstSeg))
	tmp := dst + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	cw := &CheckpointWriter{meta: meta, f: f, w: NewWriter(f), tmp: tmp, dst: dst}
	if err := cw.Append(Record{Type: RecCheckpoint, Key: meta.encode(nil)}); err != nil {
		cw.Abort()
		return nil, err
	}
	return cw, nil
}

// Append adds one record to the checkpoint stream.
func (cw *CheckpointWriter) Append(rec Record) error { return cw.w.Append(rec) }

// Commit flushes, syncs, and atomically publishes the checkpoint file.
func (cw *CheckpointWriter) Commit() error {
	cw.done = true
	if err := cw.w.Flush(); err != nil {
		_ = cw.f.Close()
		return err
	}
	if err := cw.f.Close(); err != nil {
		return err
	}
	return os.Rename(cw.tmp, cw.dst)
}

// Abort discards the temporary file.
func (cw *CheckpointWriter) Abort() {
	if cw.done {
		return
	}
	cw.done = true
	_ = cw.f.Close()
	_ = os.Remove(cw.tmp)
}

// RecoverySource is where recovery starts: an optional checkpoint snapshot
// plus the ordered segments appended after it. Build one with
// Dir.RecoverySource (or OpenRecovery before constructing the Dir).
type RecoverySource struct {
	// Meta is nil when no checkpoint exists (replay everything).
	Meta *CheckpointMeta
	// Checkpoint is the checkpoint file path ("" when Meta is nil).
	Checkpoint string
	// Segments are the segment file paths to replay, in order.
	Segments []string
}

// OpenRecovery inspects a log directory and returns its recovery source: the
// newest readable checkpoint (if any) and the segments at or above its
// FirstSeg. A checkpoint whose header fails to decode is skipped in favor of
// an older one or a full replay.
func OpenRecovery(path string) (*RecoverySource, error) {
	ents, err := os.ReadDir(path)
	if err != nil {
		if os.IsNotExist(err) {
			return &RecoverySource{}, nil
		}
		return nil, err
	}
	var ckpts []int64
	for _, e := range ents {
		if i, ok := parseCkptName(e.Name()); ok {
			ckpts = append(ckpts, i)
		}
	}
	src := &RecoverySource{}
	// Newest checkpoint first; fall back to older ones on unreadable headers.
	sort.Slice(ckpts, func(a, b int) bool { return ckpts[a] > ckpts[b] })
	for _, c := range ckpts {
		p := filepath.Join(path, ckptName(c))
		meta, err := readCheckpointHeader(p)
		if err != nil {
			continue
		}
		src.Meta = &meta
		src.Checkpoint = p
		break
	}
	segs, err := listSegments(path)
	if err != nil {
		return nil, err
	}
	for _, s := range segs {
		if src.Meta != nil && s < src.Meta.FirstSeg {
			continue
		}
		src.Segments = append(src.Segments, filepath.Join(path, segName(s)))
	}
	return src, nil
}

// RecoverySource returns the directory's recovery source (see OpenRecovery).
func (d *Dir) RecoverySource() (*RecoverySource, error) { return OpenRecovery(d.path) }

// readCheckpointHeader decodes the first record of a checkpoint file and
// validates it is a RecCheckpoint header.
func readCheckpointHeader(path string) (CheckpointMeta, error) {
	f, err := os.Open(path)
	if err != nil {
		return CheckpointMeta{}, err
	}
	// Read-only handle: a failed close loses nothing.
	defer func() { _ = f.Close() }()
	rec, err := NewReader(f).Next()
	if err != nil {
		return CheckpointMeta{}, fmt.Errorf("wal: checkpoint %s: %w", path, err)
	}
	if rec.Type != RecCheckpoint {
		return CheckpointMeta{}, fmt.Errorf("wal: checkpoint %s: %w", path, ErrCorrupt)
	}
	return DecodeCheckpointMeta(rec.Key)
}

// OpenCheckpoint opens the checkpoint record stream (nil reader when the
// source has no checkpoint).
func (rs *RecoverySource) OpenCheckpoint() (io.ReadCloser, error) {
	if rs.Checkpoint == "" {
		return nil, nil
	}
	return os.Open(rs.Checkpoint)
}

// OpenSegments opens the post-checkpoint segments as one concatenated record
// stream. Only the final segment may end in a torn record; rotation flushes
// every earlier segment to a record boundary.
func (rs *RecoverySource) OpenSegments() (io.ReadCloser, error) {
	files := make([]*os.File, 0, len(rs.Segments))
	readers := make([]io.Reader, 0, len(rs.Segments))
	for _, p := range rs.Segments {
		f, err := os.Open(p)
		if err != nil {
			for _, o := range files {
				_ = o.Close()
			}
			return nil, err
		}
		files = append(files, f)
		readers = append(readers, f)
	}
	return &multiCloser{Reader: io.MultiReader(readers...), files: files}, nil
}

type multiCloser struct {
	io.Reader
	files []*os.File
}

func (m *multiCloser) Close() error {
	var first error
	for _, f := range m.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
