package catalog

import (
	"errors"
	"sync"
	"testing"

	"github.com/bullfrogdb/bullfrog/internal/obs"
)

// TestVersionChainInstall: installs extend the chain at their barrier
// sequence; At resolves the newest version at or below a snapshot sequence.
func TestVersionChainInstall(t *testing.T) {
	c := New()
	c.CreateTable(def(t, "old"), 0)
	c.CreateTable(def(t, "new"), 0)
	base := c.Head()
	if base.Seq() != 0 {
		t.Fatalf("seed seq = %d", base.Seq())
	}

	v5, err := c.Install(5, []string{"old"})
	if err != nil {
		t.Fatal(err)
	}
	if c.Head() != v5 || v5.Seq() != 5 {
		t.Fatalf("head after install: seq=%d", c.Head().Seq())
	}
	// Snapshots below the barrier resolve the pre-install version; at or
	// above it, the installed one.
	for seq, want := range map[uint64]*Version{0: base, 4: base, 5: v5, 99: v5} {
		if got := c.At(seq); got != want {
			t.Errorf("At(%d) = seq %d, want seq %d", seq, got.Seq(), want.Seq())
		}
	}
	if base.Retired("old") {
		t.Error("pre-install version must not see the retire mark")
	}
	if !v5.Retired("old") || v5.Retired("new") {
		t.Error("installed version retire marks wrong")
	}
	// Both versions still resolve the table itself (retired tables stay
	// readable to migration transforms).
	if _, err := v5.Table("old"); err != nil {
		t.Errorf("retired table must still resolve: %v", err)
	}
}

// TestInstallRejectsStaleSeq: an install at or below the head's sequence is
// a version conflict, not a silent reorder.
func TestInstallRejectsStaleSeq(t *testing.T) {
	c := New()
	c.CreateTable(def(t, "t"), 0)
	if _, err := c.Install(3, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Install(3, nil); !errors.Is(err, ErrVersionConflict) {
		t.Errorf("same-seq install: %v, want ErrVersionConflict", err)
	}
	if _, err := c.Install(2, nil); !errors.Is(err, ErrVersionConflict) {
		t.Errorf("lower-seq install: %v, want ErrVersionConflict", err)
	}
	if _, err := c.Install(4, []string{"ghost"}); err == nil {
		t.Error("retiring a missing table should fail")
	}
}

// TestInPlaceDDLKeepsSeqChangesID: regular DDL replaces the head version at
// the same sequence (immediate visibility, chain does not grow) but under a
// fresh identity, so plan caches keyed by version id cannot serve stale
// schema.
func TestInPlaceDDLKeepsSeqChangesID(t *testing.T) {
	c := New()
	if _, err := c.Install(7, nil); err != nil {
		t.Fatal(err)
	}
	before := c.Head()
	c.CreateTable(def(t, "t"), 0)
	after := c.Head()
	if after == before || after.ID() == before.ID() {
		t.Error("in-place DDL must publish a new version identity")
	}
	if after.Seq() != before.Seq() {
		t.Errorf("in-place DDL changed seq: %d -> %d", before.Seq(), after.Seq())
	}
	if after.Prev() != before.Prev() {
		t.Error("in-place DDL must keep the chain tail")
	}
	// Chain entries below the head stay immutable: snapshots that predate
	// the last install keep the schema they pinned.
	if c.At(0).HasTable("t") {
		t.Error("pre-install snapshots must not see later DDL")
	}
	if !c.At(7).HasTable("t") {
		t.Error("snapshots at the head seq see in-place DDL immediately")
	}
}

// TestClearRetiredAndDropMigratesMarks: marks follow rename, die with drop,
// and ClearRetired reopens tables after a migration reset.
func TestRetireMarkLifecycle(t *testing.T) {
	c := New()
	c.CreateTable(def(t, "a"), 0)
	if _, err := c.Install(1, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if err := c.RenameTable("a", "b"); err != nil {
		t.Fatal(err)
	}
	if !c.Head().Retired("b") || c.Head().Retired("a") {
		t.Error("retire mark must follow a rename")
	}
	c.ClearRetired("b")
	if c.Head().Retired("b") {
		t.Error("ClearRetired did not clear the mark")
	}
	if _, err := c.Install(2, []string{"b"}); err != nil {
		t.Fatal(err)
	}
	if err := c.DropTable("b"); err != nil {
		t.Fatal(err)
	}
	if c.Head().Retired("b") {
		t.Error("drop must delete the retire mark")
	}
}

// TestPrune: cutting the chain below the oldest live snapshot frees old
// versions while every reachable sequence still resolves.
func TestPrune(t *testing.T) {
	c := New()
	met := &obs.CatalogMetrics{}
	c.SetObs(met)
	for seq := uint64(1); seq <= 4; seq++ {
		if _, err := c.Install(seq*10, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.VersionsLive(); got != 5 {
		t.Fatalf("versions live = %d, want 5", got)
	}
	c.Prune(25) // oldest active snapshot pins the seq-20 version
	if got := c.VersionsLive(); got != 3 {
		t.Errorf("versions live after prune = %d, want 3", got)
	}
	if met.VersionsLive.Load() != 3 {
		t.Errorf("gauge = %d, want 3", met.VersionsLive.Load())
	}
	if got := c.At(25); got.Seq() != 20 {
		t.Errorf("At(25) after prune = seq %d, want 20", got.Seq())
	}
	if got := c.At(0); got.Seq() != 20 {
		t.Errorf("At below the pruned horizon must clamp to the oldest kept version, got seq %d", got.Seq())
	}
}

// TestConcurrentDDLAndInstalls: COW mutation and installs race safely; the
// CAS-retry counter records contention instead of losing updates.
func TestConcurrentDDLAndInstalls(t *testing.T) {
	c := New()
	met := &obs.CatalogMetrics{}
	c.SetObs(met)
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.CreateTable(def(t, "t"+itoa(i)), 0); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if got := len(c.TableNames()); got != n {
		t.Errorf("tables = %d, want %d", got, n)
	}
	if got := c.VersionsLive(); got != 1 {
		t.Errorf("in-place DDL must not grow the chain: %d versions", got)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
