// Package catalog maps names to database objects: tables (schema definition
// + heap + indexes) and views. It also carries the "retired" marks BullFrog
// places on old-schema tables at the logical switch (the big flip, paper
// §2.1): retired tables reject client requests but remain readable by
// migration workers.
//
// The catalog is multi-versioned: it holds an immutable, copy-on-write chain
// of Versions keyed by commit sequence (txn.Snapshot.Seq), so a statement
// resolves names through the schema its snapshot pinned while a migration
// installs the next schema with a single CAS — no stop-the-world drain
// (VLDB'23 "Online Schema Evolution is (Almost) Free for Snapshot
// Databases"). Two publication modes share the chain:
//
//   - Regular DDL (CREATE/DROP/RENAME/views) replaces the head in place at
//     the head's own sequence: the change is immediately visible to every
//     snapshot, matching the pre-versioned behaviour client code relies on.
//   - Install extends the chain at a reserved commit sequence: snapshots
//     taken before that sequence keep resolving the old version, snapshots
//     taken at or after it see the new one.
package catalog

import (
	"errors"
	"fmt"
	"maps"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/bullfrogdb/bullfrog/internal/index"
	"github.com/bullfrogdb/bullfrog/internal/obs"
	"github.com/bullfrogdb/bullfrog/internal/schema"
	"github.com/bullfrogdb/bullfrog/internal/storage"
)

// ErrVersionConflict is returned by Install when the requested sequence is
// not newer than the head version's — two installers raced for the same
// commit barrier, or the barrier handshake was skipped.
var ErrVersionConflict = errors.New("catalog: catalog version conflict")

// Table binds a schema definition to its physical storage and indexes.
type Table struct {
	ID      uint64
	Def     *schema.Table
	Heap    *storage.Heap
	retired atomic.Bool

	mu      sync.RWMutex
	indexes []index.Index
}

// Retired reports whether the table belongs to a retired (pre-migration)
// schema version. This is the table-global flag used by the eager and
// multi-step baselines, which swap schemas under the gate; the lazy path
// retires per catalog version instead (see Version.Retired).
func (t *Table) Retired() bool { return t.retired.Load() }

// SetRetired marks or unmarks the table as retired.
func (t *Table) SetRetired(v bool) { t.retired.Store(v) }

// Indexes returns a snapshot of the table's indexes.
func (t *Table) Indexes() []index.Index {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]index.Index(nil), t.indexes...)
}

// AddIndex attaches an index to the table.
func (t *Table) AddIndex(idx index.Index) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.indexes = append(t.indexes, idx)
}

// IndexByName finds an index by name, or nil.
func (t *Table) IndexByName(name string) index.Index {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, idx := range t.indexes {
		if strings.EqualFold(idx.Def().Name, name) {
			return idx
		}
	}
	return nil
}

// IndexOnPrefix returns an index whose leading key columns exactly match the
// given ordinals (in order), preferring unique indexes, or nil.
func (t *Table) IndexOnPrefix(cols []int) index.Index {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var best index.Index
	for _, idx := range t.indexes {
		def := idx.Def()
		if len(def.Columns) < len(cols) {
			continue
		}
		match := true
		for i, c := range cols {
			if def.Columns[i] != c {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		if best == nil || (def.Unique && !best.Def().Unique) ||
			(def.Unique == best.Def().Unique && len(def.Columns) < len(best.Def().Columns)) {
			best = idx
		}
	}
	return best
}

// UniqueIndexes returns the table's unique indexes.
func (t *Table) UniqueIndexes() []index.Index {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []index.Index
	for _, idx := range t.indexes {
		if idx.Def().Unique {
			out = append(out, idx)
		}
	}
	return out
}

// View is a named query. The definition is engine-owned (an opaque compiled
// or parsed form); the catalog only stores and resolves it.
type View struct {
	Name    string
	Columns []string
	Def     any
}

// Version is one immutable snapshot of the namespace. Its maps are frozen at
// publication; only the prev link mutates afterwards (atomically, for GC).
// Versions are ordered by seq along the prev chain, newest first.
type Version struct {
	id      uint64 // unique identity, for plan-cache keys (seq is NOT unique: in-place DDL keeps it)
	seq     uint64 // first commit sequence at which this version is visible
	tables  map[string]*Table
	views   map[string]*View
	retired map[string]bool
	prev    atomic.Pointer[Version]
}

// ID returns the version's unique identity. Unlike Seq it changes on every
// publication (including in-place DDL), so it is the correct cache key for
// anything derived from the namespace (e.g. compiled plans).
func (v *Version) ID() uint64 { return v.id }

// Seq returns the first commit sequence at which this version is visible.
func (v *Version) Seq() uint64 { return v.seq }

// Prev returns the previous version in the chain, or nil.
func (v *Version) Prev() *Version { return v.prev.Load() }

// Table resolves a table by name in this version.
func (v *Version) Table(name string) (*Table, error) {
	t, ok := v.tables[key(name)]
	if !ok {
		return nil, fmt.Errorf("catalog: relation %q does not exist", name)
	}
	return t, nil
}

// HasTable reports whether the named table exists in this version.
func (v *Version) HasTable(name string) bool {
	_, ok := v.tables[key(name)]
	return ok
}

// TableNames lists this version's table names, sorted.
func (v *Version) TableNames() []string {
	names := make([]string, 0, len(v.tables))
	for _, t := range v.tables {
		names = append(names, t.Def.Name)
	}
	sort.Strings(names)
	return names
}

// View resolves a view by name in this version.
func (v *Version) View(name string) (*View, error) {
	vw, ok := v.views[key(name)]
	if !ok {
		return nil, fmt.Errorf("catalog: view %q does not exist", name)
	}
	return vw, nil
}

// HasView reports whether the named view exists in this version.
func (v *Version) HasView(name string) bool {
	_, ok := v.views[key(name)]
	return ok
}

// Retired reports whether the named table is retired as seen by this
// version: either marked in the version (lazy big flip) or flagged on the
// table itself (eager/multi-step swap, which is global by design — those
// baselines drain in-flight work before flipping).
func (v *Version) Retired(name string) bool {
	k := key(name)
	if v.retired[k] {
		return true
	}
	if t, ok := v.tables[k]; ok {
		return t.retired.Load()
	}
	return false
}

// RetiredNames lists tables this version marks retired, sorted. Table-global
// flags are not included.
func (v *Version) RetiredNames() []string {
	names := make([]string, 0, len(v.retired))
	for k := range v.retired {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// clone copies v's namespace into a fresh unpublished version carrying a new
// identity. The clone starts at the same seq with the same prev link;
// publication decides whether to keep those (in-place DDL) or extend the
// chain (Install).
func (v *Version) clone(id uint64) *Version {
	nv := &Version{
		id:      id,
		seq:     v.seq,
		tables:  maps.Clone(v.tables),
		views:   maps.Clone(v.views),
		retired: maps.Clone(v.retired),
	}
	nv.prev.Store(v.prev.Load())
	return nv
}

// chainLen counts versions reachable from v (v included).
func (v *Version) chainLen() int {
	n := 0
	for ; v != nil; v = v.prev.Load() {
		n++
	}
	return n
}

// Catalog is the namespace of tables and views, multi-versioned under MVCC.
// All methods are safe for concurrent use. The mutating methods
// (CreateTable, DropTable, views, ...) publish in place at the head's
// sequence; Install publishes at a new sequence.
type Catalog struct {
	head    atomic.Pointer[Version]
	nextID  atomic.Uint64 // table/index id space
	nextVer atomic.Uint64 // version identity space
	met     *obs.CatalogMetrics
}

// New returns a catalog with one empty version at sequence 0.
func New() *Catalog {
	c := &Catalog{}
	v := &Version{
		id:      c.nextVer.Add(1),
		tables:  make(map[string]*Table),
		views:   make(map[string]*View),
		retired: make(map[string]bool),
	}
	c.head.Store(v)
	return c
}

// SetObs attaches catalog metrics (live version chain length, install CAS
// retries). Call before concurrent use.
func (c *Catalog) SetObs(m *obs.CatalogMetrics) {
	c.met = m
	c.noteVersions()
}

func (c *Catalog) noteVersions() {
	if c.met != nil {
		c.met.VersionsLive.Set(int64(c.head.Load().chainLen()))
	}
}

func key(name string) string { return strings.ToLower(name) }

// Head returns the newest version.
func (c *Catalog) Head() *Version { return c.head.Load() }

// At returns the version a snapshot at commit sequence seq resolves: the
// newest version whose seq is <= the snapshot's. Versions older than the GC
// horizon may have been pruned, in which case the oldest retained version is
// returned (safe: pruning only runs below every live snapshot).
func (c *Catalog) At(seq uint64) *Version {
	v := c.head.Load()
	for v.seq > seq {
		p := v.prev.Load()
		if p == nil {
			return v
		}
		v = p
	}
	return v
}

// mutate copy-on-write-replaces the head in place: the change keeps the
// head's sequence, so it is immediately visible to every snapshot (the
// pre-versioned catalog's semantics, which regular DDL keeps). fn edits the
// draft before publication; an error discards the draft.
func (c *Catalog) mutate(fn func(*Version) error) error {
	for {
		cur := c.head.Load()
		draft := cur.clone(c.nextVer.Add(1))
		if err := fn(draft); err != nil {
			return err
		}
		if c.head.CompareAndSwap(cur, draft) {
			return nil
		}
	}
}

// Install publishes a new version at commit sequence seq with the named
// tables marked retired, extending the chain: snapshots below seq keep the
// old schema, snapshots at or after see the new one. It is BullFrog's big
// flip (paper §2.1) reduced to a pointer swap — callers reserve seq through
// the transaction manager's install barrier so no commit can interleave.
// Fails with ErrVersionConflict if seq is not newer than the head's.
func (c *Catalog) Install(seq uint64, retire []string) (*Version, error) {
	for {
		cur := c.head.Load()
		if seq <= cur.seq {
			return nil, fmt.Errorf("%w: install at seq %d but head is at seq %d", ErrVersionConflict, seq, cur.seq)
		}
		draft := cur.clone(c.nextVer.Add(1))
		draft.seq = seq
		draft.prev.Store(cur)
		for _, name := range retire {
			if _, ok := draft.tables[key(name)]; !ok {
				return nil, fmt.Errorf("catalog: relation %q does not exist", name)
			}
			draft.retired[key(name)] = true
		}
		if c.head.CompareAndSwap(cur, draft) {
			c.noteVersions()
			return draft, nil
		}
		if c.met != nil {
			c.met.InstallCASRetries.Inc()
		}
	}
}

// ClearRetired removes the named tables' retire marks from the head version
// (in place: visible to every snapshot). Used when a migration completes
// (inputs dropped) or is reset.
func (c *Catalog) ClearRetired(names ...string) {
	// The mutation cannot fail, so mutate's error is structurally nil.
	_ = c.mutate(func(v *Version) error {
		for _, n := range names {
			delete(v.retired, key(n))
		}
		return nil
	})
}

// Prune garbage-collects versions unreachable by any live snapshot: every
// version strictly older than the newest version with seq <= horizon is cut
// from the chain. Returns the number of versions pruned.
func (c *Catalog) Prune(horizon uint64) int {
	v := c.At(horizon)
	n := 0
	for p := v.prev.Load(); p != nil; p = p.prev.Load() {
		n++
	}
	if n > 0 {
		v.prev.Store(nil)
		c.noteVersions()
	}
	return n
}

// VersionsLive returns the current chain length (head included).
func (c *Catalog) VersionsLive() int { return c.head.Load().chainLen() }

// CreateTable registers a new table with a fresh heap.
func (c *Catalog) CreateTable(def *schema.Table, pageSize uint32) (*Table, error) {
	t := &Table{ID: c.nextID.Add(1), Def: def, Heap: storage.NewHeap(pageSize)}
	err := c.mutate(func(v *Version) error {
		k := key(def.Name)
		if _, exists := v.tables[k]; exists {
			return fmt.Errorf("catalog: table %q already exists", def.Name)
		}
		if _, exists := v.views[k]; exists {
			return fmt.Errorf("catalog: %q already exists as a view", def.Name)
		}
		v.tables[k] = t
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Table resolves a table by name in the head version.
func (c *Catalog) Table(name string) (*Table, error) { return c.head.Load().Table(name) }

// HasTable reports whether the named table exists in the head version.
func (c *Catalog) HasTable(name string) bool { return c.head.Load().HasTable(name) }

// DropTable removes a table from the head version. Older versions still
// resolve it, so pinned snapshots keep working; its retire mark (if any) is
// cleared with it.
func (c *Catalog) DropTable(name string) error {
	return c.mutate(func(v *Version) error {
		k := key(name)
		if _, ok := v.tables[k]; !ok {
			return fmt.Errorf("catalog: relation %q does not exist", name)
		}
		delete(v.tables, k)
		delete(v.retired, k)
		return nil
	})
}

// RenameTable renames a table; the schema definition's name is updated too.
// The definition object is shared across versions, so older versions resolve
// the table under the old key but observe the new Def.Name (renames are not
// schema-versioned; BullFrog models those as migrations).
func (c *Catalog) RenameTable(oldName, newName string) error {
	return c.mutate(func(v *Version) error {
		ok, nk := key(oldName), key(newName)
		t, exists := v.tables[ok]
		if !exists {
			return fmt.Errorf("catalog: relation %q does not exist", oldName)
		}
		if _, clash := v.tables[nk]; clash {
			return fmt.Errorf("catalog: relation %q already exists", newName)
		}
		delete(v.tables, ok)
		t.Def.Name = newName
		v.tables[nk] = t
		if v.retired[ok] {
			delete(v.retired, ok)
			v.retired[nk] = true
		}
		return nil
	})
}

// TableNames lists the head version's table names, sorted.
func (c *Catalog) TableNames() []string { return c.head.Load().TableNames() }

// CreateView registers a view.
func (c *Catalog) CreateView(vw *View) error {
	return c.mutate(func(v *Version) error {
		k := key(vw.Name)
		if _, exists := v.views[k]; exists {
			return fmt.Errorf("catalog: view %q already exists", vw.Name)
		}
		if _, exists := v.tables[k]; exists {
			return fmt.Errorf("catalog: %q already exists as a table", vw.Name)
		}
		v.views[k] = vw
		return nil
	})
}

// View resolves a view by name in the head version.
func (c *Catalog) View(name string) (*View, error) { return c.head.Load().View(name) }

// HasView reports whether the named view exists in the head version.
func (c *Catalog) HasView(name string) bool { return c.head.Load().HasView(name) }

// DropView removes a view from the head version.
func (c *Catalog) DropView(name string) error {
	return c.mutate(func(v *Version) error {
		k := key(name)
		if _, ok := v.views[k]; !ok {
			return fmt.Errorf("catalog: view %q does not exist", name)
		}
		delete(v.views, k)
		return nil
	})
}

// NextIndexID allocates a unique id for a new index (ids share the table id
// space; uniqueness is what matters for lock spaces).
func (c *Catalog) NextIndexID() uint64 { return c.nextID.Add(1) }
