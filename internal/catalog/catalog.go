// Package catalog maps names to database objects: tables (schema definition
// + heap + indexes) and views. It also carries the "retired" flag BullFrog
// sets on old-schema tables at the logical switch (the big flip, paper §2.1):
// retired tables reject client requests but remain readable by migration
// workers.
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/bullfrogdb/bullfrog/internal/index"
	"github.com/bullfrogdb/bullfrog/internal/schema"
	"github.com/bullfrogdb/bullfrog/internal/storage"
)

// Table binds a schema definition to its physical storage and indexes.
type Table struct {
	ID      uint64
	Def     *schema.Table
	Heap    *storage.Heap
	retired atomic.Bool

	mu      sync.RWMutex
	indexes []index.Index
}

// Retired reports whether the table belongs to a retired (pre-migration)
// schema version.
func (t *Table) Retired() bool { return t.retired.Load() }

// SetRetired marks or unmarks the table as retired.
func (t *Table) SetRetired(v bool) { t.retired.Store(v) }

// Indexes returns a snapshot of the table's indexes.
func (t *Table) Indexes() []index.Index {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]index.Index(nil), t.indexes...)
}

// AddIndex attaches an index to the table.
func (t *Table) AddIndex(idx index.Index) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.indexes = append(t.indexes, idx)
}

// IndexByName finds an index by name, or nil.
func (t *Table) IndexByName(name string) index.Index {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, idx := range t.indexes {
		if strings.EqualFold(idx.Def().Name, name) {
			return idx
		}
	}
	return nil
}

// IndexOnPrefix returns an index whose leading key columns exactly match the
// given ordinals (in order), preferring unique indexes, or nil.
func (t *Table) IndexOnPrefix(cols []int) index.Index {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var best index.Index
	for _, idx := range t.indexes {
		def := idx.Def()
		if len(def.Columns) < len(cols) {
			continue
		}
		match := true
		for i, c := range cols {
			if def.Columns[i] != c {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		if best == nil || (def.Unique && !best.Def().Unique) ||
			(def.Unique == best.Def().Unique && len(def.Columns) < len(best.Def().Columns)) {
			best = idx
		}
	}
	return best
}

// UniqueIndexes returns the table's unique indexes.
func (t *Table) UniqueIndexes() []index.Index {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []index.Index
	for _, idx := range t.indexes {
		if idx.Def().Unique {
			out = append(out, idx)
		}
	}
	return out
}

// View is a named query. The definition is engine-owned (an opaque compiled
// or parsed form); the catalog only stores and resolves it.
type View struct {
	Name    string
	Columns []string
	Def     any
}

// Catalog is the mutable namespace of tables and views. All methods are safe
// for concurrent use.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
	views  map[string]*View
	nextID atomic.Uint64
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{tables: make(map[string]*Table), views: make(map[string]*View)}
}

func key(name string) string { return strings.ToLower(name) }

// CreateTable registers a new table with a fresh heap.
func (c *Catalog) CreateTable(def *schema.Table, pageSize uint32) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(def.Name)
	if _, exists := c.tables[k]; exists {
		return nil, fmt.Errorf("catalog: table %q already exists", def.Name)
	}
	if _, exists := c.views[k]; exists {
		return nil, fmt.Errorf("catalog: %q already exists as a view", def.Name)
	}
	t := &Table{ID: c.nextID.Add(1), Def: def, Heap: storage.NewHeap(pageSize)}
	c.tables[k] = t
	return t, nil
}

// Table resolves a table by name.
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[key(name)]
	if !ok {
		return nil, fmt.Errorf("catalog: relation %q does not exist", name)
	}
	return t, nil
}

// HasTable reports whether the named table exists.
func (c *Catalog) HasTable(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.tables[key(name)]
	return ok
}

// DropTable removes a table.
func (c *Catalog) DropTable(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(name)
	if _, ok := c.tables[k]; !ok {
		return fmt.Errorf("catalog: relation %q does not exist", name)
	}
	delete(c.tables, k)
	return nil
}

// RenameTable renames a table; the schema definition's name is updated too.
func (c *Catalog) RenameTable(oldName, newName string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ok, nk := key(oldName), key(newName)
	t, exists := c.tables[ok]
	if !exists {
		return fmt.Errorf("catalog: relation %q does not exist", oldName)
	}
	if _, clash := c.tables[nk]; clash {
		return fmt.Errorf("catalog: relation %q already exists", newName)
	}
	delete(c.tables, ok)
	t.Def.Name = newName
	c.tables[nk] = t
	return nil
}

// TableNames lists table names, sorted.
func (c *Catalog) TableNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		names = append(names, t.Def.Name)
	}
	sort.Strings(names)
	return names
}

// CreateView registers a view.
func (c *Catalog) CreateView(v *View) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(v.Name)
	if _, exists := c.views[k]; exists {
		return fmt.Errorf("catalog: view %q already exists", v.Name)
	}
	if _, exists := c.tables[k]; exists {
		return fmt.Errorf("catalog: %q already exists as a table", v.Name)
	}
	c.views[k] = v
	return nil
}

// View resolves a view by name.
func (c *Catalog) View(name string) (*View, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.views[key(name)]
	if !ok {
		return nil, fmt.Errorf("catalog: view %q does not exist", name)
	}
	return v, nil
}

// HasView reports whether the named view exists.
func (c *Catalog) HasView(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.views[key(name)]
	return ok
}

// DropView removes a view.
func (c *Catalog) DropView(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(name)
	if _, ok := c.views[k]; !ok {
		return fmt.Errorf("catalog: view %q does not exist", name)
	}
	delete(c.views, k)
	return nil
}

// NextIndexID allocates a unique id for a new index (ids share the table id
// space; uniqueness is what matters for lock spaces).
func (c *Catalog) NextIndexID() uint64 { return c.nextID.Add(1) }
