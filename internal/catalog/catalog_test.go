package catalog

import (
	"testing"

	"github.com/bullfrogdb/bullfrog/internal/index"
	"github.com/bullfrogdb/bullfrog/internal/schema"
	"github.com/bullfrogdb/bullfrog/internal/types"
)

func def(t *testing.T, name string) *schema.Table {
	t.Helper()
	d, err := schema.NewTable(name, []schema.Column{
		{Name: "a", Kind: types.KindInt, NotNull: true},
		{Name: "b", Kind: types.KindString},
		{Name: "c", Kind: types.KindInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	d.PrimaryKey = []int{0}
	return d
}

func TestCreateResolveDrop(t *testing.T) {
	c := New()
	tbl, err := c.CreateTable(def(t, "Customer"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.ID == 0 {
		t.Error("table id should be nonzero")
	}
	got, err := c.Table("CUSTOMER") // case-insensitive
	if err != nil || got != tbl {
		t.Fatalf("resolve: %v", err)
	}
	if !c.HasTable("customer") || c.HasTable("nope") {
		t.Error("HasTable misbehaves")
	}
	if _, err := c.CreateTable(def(t, "customer"), 0); err == nil {
		t.Error("duplicate create should fail")
	}
	if err := c.DropTable("customer"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Table("customer"); err == nil {
		t.Error("dropped table should not resolve")
	}
	if err := c.DropTable("customer"); err == nil {
		t.Error("double drop should fail")
	}
}

func TestRename(t *testing.T) {
	c := New()
	c.CreateTable(def(t, "flewon"), 0)
	c.CreateTable(def(t, "other"), 0)
	if err := c.RenameTable("flewon", "other"); err == nil {
		t.Error("rename onto existing name should fail")
	}
	if err := c.RenameTable("ghost", "x"); err == nil {
		t.Error("rename of missing table should fail")
	}
	if err := c.RenameTable("flewon", "flewoninfo"); err != nil {
		t.Fatal(err)
	}
	tbl, err := c.Table("flewoninfo")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Def.Name != "flewoninfo" {
		t.Error("definition name not updated")
	}
	names := c.TableNames()
	if len(names) != 2 || names[0] != "flewoninfo" || names[1] != "other" {
		t.Errorf("TableNames = %v", names)
	}
}

func TestRetiredFlag(t *testing.T) {
	c := New()
	tbl, _ := c.CreateTable(def(t, "t"), 0)
	if tbl.Retired() {
		t.Error("new table should not be retired")
	}
	tbl.SetRetired(true)
	if !tbl.Retired() {
		t.Error("SetRetired(true) did not stick")
	}
}

func TestIndexManagement(t *testing.T) {
	c := New()
	tbl, _ := c.CreateTable(def(t, "t"), 0)
	pk := index.NewBTree(&index.Def{ID: c.NextIndexID(), Name: "t_pkey", Table: "t", Columns: []int{0}, Unique: true})
	sec := index.NewBTree(&index.Def{ID: c.NextIndexID(), Name: "t_b_idx", Table: "t", Columns: []int{1, 0}})
	tbl.AddIndex(pk)
	tbl.AddIndex(sec)

	if got := tbl.IndexByName("T_PKEY"); got != pk {
		t.Error("IndexByName failed")
	}
	if tbl.IndexByName("nope") != nil {
		t.Error("missing index should be nil")
	}
	if got := tbl.IndexOnPrefix([]int{0}); got != pk {
		t.Error("IndexOnPrefix should prefer the unique pk index")
	}
	if got := tbl.IndexOnPrefix([]int{1}); got != sec {
		t.Error("IndexOnPrefix prefix match failed")
	}
	if tbl.IndexOnPrefix([]int{2}) != nil {
		t.Error("no index covers column 2")
	}
	uniq := tbl.UniqueIndexes()
	if len(uniq) != 1 || uniq[0] != pk {
		t.Errorf("UniqueIndexes = %v", uniq)
	}
	if len(tbl.Indexes()) != 2 {
		t.Error("Indexes snapshot wrong")
	}
}

func TestViews(t *testing.T) {
	c := New()
	c.CreateTable(def(t, "base"), 0)
	v := &View{Name: "v1", Columns: []string{"x"}, Def: "SELECT ..."}
	if err := c.CreateView(v); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateView(v); err == nil {
		t.Error("duplicate view should fail")
	}
	if err := c.CreateView(&View{Name: "base"}); err == nil {
		t.Error("view clashing with table should fail")
	}
	if _, err := c.CreateTable(def(t, "v1"), 0); err == nil {
		t.Error("table clashing with view should fail")
	}
	got, err := c.View("V1")
	if err != nil || got != v {
		t.Fatalf("View resolve: %v", err)
	}
	if !c.HasView("v1") || c.HasView("v2") {
		t.Error("HasView misbehaves")
	}
	if err := c.DropView("v1"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropView("v1"); err == nil {
		t.Error("double DropView should fail")
	}
	if _, err := c.View("v1"); err == nil {
		t.Error("dropped view should not resolve")
	}
}
