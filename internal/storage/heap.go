// Package storage implements the in-memory heap: slotted pages holding MVCC
// version chains addressed by stable TIDs.
//
// A TID (page, slot) never changes for the lifetime of a logical tuple:
// updates push a new version onto the slot's chain rather than moving the
// tuple. This mirrors how BullFrog's PostgreSQL prototype uses TIDs to map
// tuples to bits in its migration bitmaps (paper §4): a stable TID gives a
// stable bitmap position.
//
// Storage is deliberately policy-free: it knows nothing about visibility or
// transaction status. The txn package interprets version xmin/xmax fields
// against its snapshot and status tables.
package storage

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/bullfrogdb/bullfrog/internal/types"
)

// TID identifies a tuple slot: page number and slot within the page.
type TID struct {
	Page uint32
	Slot uint32
}

// String renders the TID PostgreSQL-style.
func (t TID) String() string { return fmt.Sprintf("(%d,%d)", t.Page, t.Slot) }

// Ordinal returns the dense 0-based index of the TID given the heap's page
// size; this is the tuple's position in migration bitmaps.
func (t TID) Ordinal(pageSize uint32) int64 {
	return int64(t.Page)*int64(pageSize) + int64(t.Slot)
}

// TIDFromOrdinal inverts Ordinal.
func TIDFromOrdinal(ord int64, pageSize uint32) TID {
	return TID{Page: uint32(ord / int64(pageSize)), Slot: uint32(ord % int64(pageSize))}
}

// Version is one MVCC version of a tuple. XMin is the transaction that
// created it; XMax, if nonzero, is the transaction that deleted (or
// superseded) it. Next points to the previous (older) version.
//
// All fields are protected by the owning page's latch: access them only
// inside View/Mutate callbacks or storage's own methods.
type Version struct {
	XMin uint64
	XMax uint64
	Row  types.Row
	Next *Version
}

type page struct {
	mu    sync.RWMutex
	slots []*Version // head (newest) version per slot; nil only transiently
}

// Heap is an append-only collection of pages. Slots are never reused; a
// deleted tuple's chain remains until vacuum truncates dead versions.
type Heap struct {
	pageSize uint32
	nslots   atomic.Int64 // total slots allocated (high-water mark)

	mu    sync.RWMutex // guards pages slice growth (not page contents)
	pages []*page
}

// DefaultPageSize is the number of tuple slots per page.
const DefaultPageSize = 256

// NewHeap creates an empty heap with the given slots-per-page (0 means
// DefaultPageSize).
func NewHeap(pageSize uint32) *Heap {
	if pageSize == 0 {
		pageSize = DefaultPageSize
	}
	return &Heap{pageSize: pageSize}
}

// PageSize returns the heap's slots-per-page.
func (h *Heap) PageSize() uint32 { return h.pageSize }

// NumSlots returns the number of slots ever allocated (including slots whose
// tuples are deleted). Bitmap trackers size themselves from this.
func (h *Heap) NumSlots() int64 { return h.nslots.Load() }

// NumPages returns the number of allocated pages.
func (h *Heap) NumPages() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.pages)
}

// ErrNoSuchTuple is returned for TIDs that address unallocated slots.
var ErrNoSuchTuple = errors.New("storage: no such tuple")

// Insert allocates a new slot containing a single version created by xid and
// returns its TID. The row is stored as-is; callers must not modify it
// afterwards.
func (h *Heap) Insert(xid uint64, row types.Row) TID {
	ord := h.nslots.Add(1) - 1
	tid := TIDFromOrdinal(ord, h.pageSize)
	p := h.pageFor(tid.Page, true)
	v := &Version{XMin: xid, Row: row}
	p.mu.Lock()
	for int(tid.Slot) >= len(p.slots) {
		p.slots = append(p.slots, nil)
	}
	p.slots[tid.Slot] = v
	p.mu.Unlock()
	return tid
}

func (h *Heap) pageFor(n uint32, grow bool) *page {
	h.mu.RLock()
	if int(n) < len(h.pages) {
		p := h.pages[n]
		h.mu.RUnlock()
		return p
	}
	h.mu.RUnlock()
	if !grow {
		return nil
	}
	h.mu.Lock()
	for int(n) >= len(h.pages) {
		h.pages = append(h.pages, &page{})
	}
	p := h.pages[n]
	h.mu.Unlock()
	return p
}

// View runs fn with the slot's head version under the page read latch. fn
// must not block or mutate the chain; it may copy out whatever it needs.
func (h *Heap) View(tid TID, fn func(head *Version)) error {
	p := h.pageFor(tid.Page, false)
	if p == nil {
		return ErrNoSuchTuple
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	if int(tid.Slot) >= len(p.slots) || p.slots[tid.Slot] == nil {
		return ErrNoSuchTuple
	}
	fn(p.slots[tid.Slot])
	return nil
}

// Slot is the mutable view of a tuple slot handed to Mutate callbacks.
type Slot struct {
	p    *page
	slot uint32
}

// Head returns the newest version.
func (s Slot) Head() *Version { return s.p.slots[s.slot] }

// Push prepends a new version created by xid (an update): the old head gets
// XMax = xid, the new head XMin = xid.
func (s Slot) Push(xid uint64, row types.Row) {
	old := s.p.slots[s.slot]
	old.XMax = xid
	s.p.slots[s.slot] = &Version{XMin: xid, Row: row, Next: old}
}

// SetXMax marks the head version as deleted by xid. It fails if another
// transaction already claimed it.
func (s Slot) SetXMax(xid uint64) error {
	head := s.p.slots[s.slot]
	if head.XMax != 0 && head.XMax != xid {
		return fmt.Errorf("storage: tuple already deleted by txn %d", head.XMax)
	}
	head.XMax = xid
	return nil
}

// ClearXMax removes a deletion mark owned by xid (abort undo).
func (s Slot) ClearXMax(xid uint64) {
	head := s.p.slots[s.slot]
	if head.XMax == xid {
		head.XMax = 0
	}
}

// Pop removes the head version if it was created by xid (abort undo of an
// update), restoring the previous version and clearing its XMax. It reports
// whether a version was popped.
func (s Slot) Pop(xid uint64) bool {
	head := s.p.slots[s.slot]
	if head.XMin != xid || head.Next == nil {
		return false
	}
	prev := head.Next
	if prev.XMax == xid {
		prev.XMax = 0
	}
	s.p.slots[s.slot] = prev
	return true
}

// Mutate runs fn with the slot under the page write latch.
func (h *Heap) Mutate(tid TID, fn func(Slot) error) error {
	p := h.pageFor(tid.Page, false)
	if p == nil {
		return ErrNoSuchTuple
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if int(tid.Slot) >= len(p.slots) || p.slots[tid.Slot] == nil {
		return ErrNoSuchTuple
	}
	return fn(Slot{p: p, slot: tid.Slot})
}

// Scan visits every allocated slot in TID order, invoking fn with the head
// version under the page read latch. fn must not mutate this heap (collect
// TIDs first, then Mutate). Returning a non-nil error stops the scan and is
// propagated.
func (h *Heap) Scan(fn func(tid TID, head *Version) error) error {
	h.mu.RLock()
	npages := len(h.pages)
	h.mu.RUnlock()
	for pn := 0; pn < npages; pn++ {
		h.mu.RLock()
		p := h.pages[pn]
		h.mu.RUnlock()
		p.mu.RLock()
		for sn := 0; sn < len(p.slots); sn++ {
			if p.slots[sn] == nil {
				continue
			}
			if err := fn(TID{Page: uint32(pn), Slot: uint32(sn)}, p.slots[sn]); err != nil {
				p.mu.RUnlock()
				return err
			}
		}
		p.mu.RUnlock()
	}
	return nil
}

// ScanRange visits slots with ordinals in [lo, hi), same contract as Scan.
// Used by background migration to cover the table in chunks.
func (h *Heap) ScanRange(lo, hi int64, fn func(tid TID, head *Version) error) error {
	if max := h.nslots.Load(); hi > max {
		hi = max
	}
	for ord := lo; ord < hi; {
		tid := TIDFromOrdinal(ord, h.pageSize)
		p := h.pageFor(tid.Page, false)
		if p == nil {
			return nil
		}
		endSlot := int64(h.pageSize)
		if remaining := hi - ord + int64(tid.Slot); remaining < endSlot {
			endSlot = remaining
		}
		p.mu.RLock()
		for sn := int64(tid.Slot); sn < endSlot && int(sn) < len(p.slots); sn++ {
			if p.slots[sn] == nil {
				continue
			}
			if err := fn(TID{Page: tid.Page, Slot: uint32(sn)}, p.slots[sn]); err != nil {
				p.mu.RUnlock()
				return err
			}
		}
		p.mu.RUnlock()
		ord += endSlot - int64(tid.Slot)
	}
	return nil
}

// Vacuum truncates version chains: any version whose XMin committed before
// horizon and that is superseded (or deleted) by a version also committed
// before horizon can be dropped. The caller supplies `prunable`, which
// reports whether everything at and below the given version is invisible to
// all current and future snapshots.
func (h *Heap) Vacuum(prunable func(v *Version) bool) (pruned int) {
	h.mu.RLock()
	pages := h.pages
	h.mu.RUnlock()
	for _, p := range pages {
		p.mu.Lock()
		for _, head := range p.slots {
			for v := head; v != nil; v = v.Next {
				if v.Next != nil && prunable(v.Next) {
					pruned += chainLen(v.Next)
					v.Next = nil
					break
				}
			}
		}
		p.mu.Unlock()
	}
	return pruned
}

func chainLen(v *Version) int {
	n := 0
	for ; v != nil; v = v.Next {
		n++
	}
	return n
}
