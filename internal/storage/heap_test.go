package storage

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"github.com/bullfrogdb/bullfrog/internal/types"
)

func row(v int64) types.Row { return types.Row{types.NewInt(v)} }

func TestTIDOrdinalRoundTrip(t *testing.T) {
	f := func(ord int64, pageSizeSeed uint8) bool {
		if ord < 0 {
			ord = -ord
		}
		pageSize := uint32(pageSizeSeed)%1000 + 1
		// Page numbers are uint32, so keep the ordinal inside addressable range.
		ord %= int64(pageSize) * (1 << 31)
		tid := TIDFromOrdinal(ord, pageSize)
		return tid.Ordinal(pageSize) == ord
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	tid := TID{Page: 3, Slot: 7}
	if tid.String() != "(3,7)" {
		t.Errorf("TID.String() = %q", tid.String())
	}
}

func TestInsertAndView(t *testing.T) {
	h := NewHeap(4)
	var tids []TID
	for i := int64(0); i < 10; i++ {
		tids = append(tids, h.Insert(1, row(i)))
	}
	if h.NumSlots() != 10 {
		t.Errorf("NumSlots = %d", h.NumSlots())
	}
	if h.NumPages() != 3 {
		t.Errorf("NumPages = %d, want 3 (page size 4)", h.NumPages())
	}
	for i, tid := range tids {
		var got int64
		if err := h.View(tid, func(v *Version) { got = v.Row[0].Int() }); err != nil {
			t.Fatal(err)
		}
		if got != int64(i) {
			t.Errorf("tuple %d: got %d", i, got)
		}
	}
	if err := h.View(TID{Page: 99, Slot: 0}, func(*Version) {}); err != ErrNoSuchTuple {
		t.Errorf("View on missing page: %v", err)
	}
	if err := h.View(TID{Page: 0, Slot: 99}, func(*Version) {}); err != ErrNoSuchTuple {
		t.Errorf("View on missing slot: %v", err)
	}
}

func TestUpdateChainAndUndo(t *testing.T) {
	h := NewHeap(0)
	tid := h.Insert(1, row(10))

	// Txn 2 updates the tuple.
	if err := h.Mutate(tid, func(s Slot) error {
		s.Push(2, row(20))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	h.View(tid, func(v *Version) {
		if v.XMin != 2 || v.Row[0].Int() != 20 {
			t.Errorf("head after update: %+v", v)
		}
		if v.Next == nil || v.Next.XMax != 2 || v.Next.Row[0].Int() != 10 {
			t.Errorf("old version after update: %+v", v.Next)
		}
	})

	// Txn 2 aborts: pop restores the old version.
	h.Mutate(tid, func(s Slot) error {
		if !s.Pop(2) {
			t.Error("Pop should succeed for the owning txn")
		}
		return nil
	})
	h.View(tid, func(v *Version) {
		if v.XMin != 1 || v.XMax != 0 || v.Row[0].Int() != 10 {
			t.Errorf("after undo: %+v", v)
		}
	})

	// Pop by a non-owner is refused.
	h.Mutate(tid, func(s Slot) error {
		if s.Pop(99) {
			t.Error("Pop by non-owner should fail")
		}
		return nil
	})
}

func TestDeleteAndUndo(t *testing.T) {
	h := NewHeap(0)
	tid := h.Insert(1, row(5))
	if err := h.Mutate(tid, func(s Slot) error { return s.SetXMax(7) }); err != nil {
		t.Fatal(err)
	}
	// A second deleter must be refused.
	err := h.Mutate(tid, func(s Slot) error { return s.SetXMax(8) })
	if err == nil {
		t.Error("second SetXMax should fail")
	}
	// Idempotent for the same txn.
	if err := h.Mutate(tid, func(s Slot) error { return s.SetXMax(7) }); err != nil {
		t.Errorf("same-txn SetXMax should be idempotent: %v", err)
	}
	// Undo.
	h.Mutate(tid, func(s Slot) error { s.ClearXMax(7); return nil })
	h.View(tid, func(v *Version) {
		if v.XMax != 0 {
			t.Errorf("XMax not cleared: %+v", v)
		}
	})
	// ClearXMax by non-owner is a no-op.
	h.Mutate(tid, func(s Slot) error { return s.SetXMax(7) })
	h.Mutate(tid, func(s Slot) error { s.ClearXMax(9); return nil })
	h.View(tid, func(v *Version) {
		if v.XMax != 7 {
			t.Error("ClearXMax by non-owner should not clear")
		}
	})
}

func TestScanOrderAndRange(t *testing.T) {
	h := NewHeap(4)
	const n = 21
	for i := int64(0); i < n; i++ {
		h.Insert(1, row(i))
	}
	var seen []int64
	h.Scan(func(tid TID, v *Version) error {
		seen = append(seen, v.Row[0].Int())
		return nil
	})
	if len(seen) != n {
		t.Fatalf("Scan saw %d tuples, want %d", len(seen), n)
	}
	for i, v := range seen {
		if v != int64(i) {
			t.Fatalf("Scan out of TID order at %d: %d", i, v)
		}
	}

	var got []int64
	h.ScanRange(5, 13, func(tid TID, v *Version) error {
		got = append(got, v.Row[0].Int())
		return nil
	})
	if len(got) != 8 || got[0] != 5 || got[7] != 12 {
		t.Errorf("ScanRange(5,13) = %v", got)
	}

	// Range clamped to the heap size.
	got = nil
	h.ScanRange(18, 1000, func(tid TID, v *Version) error {
		got = append(got, v.Row[0].Int())
		return nil
	})
	if len(got) != 3 {
		t.Errorf("clamped ScanRange returned %d tuples, want 3", len(got))
	}

	// Error propagation stops the scan.
	count := 0
	err := h.Scan(func(TID, *Version) error {
		count++
		if count == 3 {
			return fmt.Errorf("stop")
		}
		return nil
	})
	if err == nil || count != 3 {
		t.Errorf("Scan error propagation: err=%v count=%d", err, count)
	}
}

func TestConcurrentInsertsGetDistinctTIDs(t *testing.T) {
	h := NewHeap(8)
	const workers, per = 8, 500
	tidsCh := make(chan TID, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tidsCh <- h.Insert(uint64(w+1), row(int64(i)))
			}
		}(w)
	}
	wg.Wait()
	close(tidsCh)
	seen := make(map[TID]bool)
	for tid := range tidsCh {
		if seen[tid] {
			t.Fatalf("duplicate TID %v", tid)
		}
		seen[tid] = true
	}
	if len(seen) != workers*per {
		t.Errorf("got %d distinct TIDs, want %d", len(seen), workers*per)
	}
	if h.NumSlots() != workers*per {
		t.Errorf("NumSlots = %d", h.NumSlots())
	}
	// Every slot must be readable after concurrent growth.
	n := 0
	h.Scan(func(TID, *Version) error { n++; return nil })
	if n != workers*per {
		t.Errorf("Scan found %d tuples, want %d", n, workers*per)
	}
}

func TestVacuum(t *testing.T) {
	h := NewHeap(0)
	tid := h.Insert(1, row(1))
	// Build a chain of 4 versions.
	for v := int64(2); v <= 4; v++ {
		h.Mutate(tid, func(s Slot) error {
			s.Push(uint64(v), row(v*10))
			return nil
		})
	}
	// Prune everything older than the newest two versions.
	pruned := h.Vacuum(func(v *Version) bool { return v.XMin <= 2 })
	if pruned != 2 {
		t.Errorf("pruned %d versions, want 2", pruned)
	}
	depth := 0
	h.View(tid, func(v *Version) {
		for ; v != nil; v = v.Next {
			depth++
		}
	})
	if depth != 2 {
		t.Errorf("chain depth after vacuum = %d, want 2", depth)
	}
}

func TestMutateMissingTuple(t *testing.T) {
	h := NewHeap(0)
	if err := h.Mutate(TID{Page: 0, Slot: 0}, func(Slot) error { return nil }); err != ErrNoSuchTuple {
		t.Errorf("Mutate on empty heap: %v", err)
	}
}
