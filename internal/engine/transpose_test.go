package engine

import (
	"strings"
	"testing"

	"github.com/bullfrogdb/bullfrog/internal/sql"
)

// paperViewDef returns the migration DDL's defining query from paper §2.1.
func paperViewDef(t *testing.T) *sql.SelectStmt {
	t.Helper()
	stmt, err := sql.ParseOne(`SELECT F.FLIGHTID AS FID, FLIGHTDATE, PASSENGER_COUNT,
		(CAPACITY - PASSENGER_COUNT) AS EMPTY_SEATS,
		DEPARTURE_TIME AS EXPECTED_DEPARTURE_TIME,
		NULL AS ACTUAL_DEPARTURE_TIME,
		ARRIVAL_TIME AS EXPECTED_ARRIVAL_TIME,
		NULL AS ACTUAL_ARRIVAL_TIME
		FROM FLIGHTS F, FLEWON FI
		WHERE F.FLIGHTID = FI.FLIGHTID`)
	if err != nil {
		t.Fatal(err)
	}
	return stmt.(*sql.SelectStmt)
}

func filterFor(fs []TableFilter, table string) *TableFilter {
	for i := range fs {
		if strings.EqualFold(fs[i].Table, table) {
			return &fs[i]
		}
	}
	return nil
}

// TestTransposePaperExample reproduces the paper's §2.1 walk-through: the
// client predicate FID = 'AA101' AND EXTRACT(DAY FROM FLIGHTDATE) = 9 must
// land as FLIGHTID = 'AA101' on BOTH input tables (via the join equivalence
// class) and the EXTRACT predicate on FLEWON only.
func TestTransposePaperExample(t *testing.T) {
	db := newTestDB(t)
	flightsSchema(t, db)
	clientPred, err := sql.ParseExpr(`FID = 'AA101' AND EXTRACT(DAY FROM FLIGHTDATE) = 9`)
	if err != nil {
		t.Fatal(err)
	}
	filters, err := db.TransposeFilters(paperViewDef(t), clientPred)
	if err != nil {
		t.Fatal(err)
	}
	if len(filters) != 2 {
		t.Fatalf("filters: %+v", filters)
	}
	fl := filterFor(filters, "flights")
	fw := filterFor(filters, "flewon")
	if fl == nil || fw == nil {
		t.Fatalf("missing table filters: %+v", filters)
	}
	if fl.Pred == nil || !strings.Contains(fl.Pred.String(), "f.flightid = 'AA101'") {
		t.Errorf("flights pred: %v", fl.Pred)
	}
	fwStr := ""
	if fw.Pred != nil {
		fwStr = fw.Pred.String()
	}
	if !strings.Contains(fwStr, "fi.flightid = 'AA101'") {
		t.Errorf("flewon should receive the replicated equality: %s", fwStr)
	}
	if !strings.Contains(fwStr, "EXTRACT('DAY', fi.flightdate)") {
		t.Errorf("flewon should receive the EXTRACT predicate: %s", fwStr)
	}
	// The EXTRACT predicate must NOT leak onto flights.
	if strings.Contains(fl.Pred.String(), "EXTRACT") {
		t.Errorf("flights pred leaked EXTRACT: %v", fl.Pred)
	}
}

// TestTransposeDerivedColumn: a predicate over EMPTY_SEATS (a computed
// column) substitutes to (capacity - passenger_count) which spans both
// tables, so it narrows neither table — but the join-key replication from
// other predicates still applies.
func TestTransposeDerivedColumn(t *testing.T) {
	db := newTestDB(t)
	flightsSchema(t, db)
	clientPred, _ := sql.ParseExpr(`EMPTY_SEATS = 30`)
	filters, err := db.TransposeFilters(paperViewDef(t), clientPred)
	if err != nil {
		t.Fatal(err)
	}
	fl := filterFor(filters, "flights")
	if fl.Pred != nil {
		t.Errorf("derived-column predicate should not narrow flights: %v", fl.Pred)
	}
}

// TestTransposeSingleTableDerived: a computed column from ONE table does
// transpose (capacity - 0 style), here passenger_count + 0 stays on flewon.
func TestTransposeSingleTableDerived(t *testing.T) {
	db := newTestDB(t)
	flightsSchema(t, db)
	def, _ := sql.ParseOne(`SELECT flightid, passenger_count * 2 AS double_pc FROM flewon`)
	clientPred, _ := sql.ParseExpr(`double_pc > 300`)
	filters, err := db.TransposeFilters(def.(*sql.SelectStmt), clientPred)
	if err != nil {
		t.Fatal(err)
	}
	fw := filterFor(filters, "flewon")
	if fw.Pred == nil || !strings.Contains(fw.Pred.String(), "passenger_count * 2") {
		t.Errorf("single-table derived predicate should transpose: %v", fw.Pred)
	}
}

func TestTransposeNilPredicate(t *testing.T) {
	db := newTestDB(t)
	flightsSchema(t, db)
	filters, err := db.TransposeFilters(paperViewDef(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Only the view's own join conjunct exists; neither table gets a
	// single-table filter.
	for _, f := range filters {
		if f.Pred != nil {
			t.Errorf("no client predicate should mean full scans, got %v on %s", f.Pred, f.Table)
		}
	}
}

func TestTransposeAggregateView(t *testing.T) {
	// The n:1 aggregate migration shape: group key predicates transpose,
	// aggregate-result predicates do not.
	db := newTestDB(t)
	flightsSchema(t, db)
	def, err := sql.ParseOne(`SELECT flightid AS fid, SUM(passenger_count) AS total
		FROM flewon GROUP BY flightid`)
	if err != nil {
		t.Fatal(err)
	}
	clientPred, _ := sql.ParseExpr(`fid = 'AA101' AND total > 100`)
	filters, err := db.TransposeFilters(def.(*sql.SelectStmt), clientPred)
	if err != nil {
		t.Fatal(err)
	}
	fw := filterFor(filters, "flewon")
	if fw.Pred == nil || !strings.Contains(fw.Pred.String(), "flightid = 'AA101'") {
		t.Errorf("group key predicate should transpose: %v", fw.Pred)
	}
	if strings.Contains(fw.Pred.String(), "total") || strings.Contains(fw.Pred.String(), "SUM") {
		t.Errorf("aggregate predicate leaked: %v", fw.Pred)
	}
}

func TestTransposeUnknownColumn(t *testing.T) {
	db := newTestDB(t)
	flightsSchema(t, db)
	clientPred, _ := sql.ParseExpr(`nosuch = 1`)
	if _, err := db.TransposeFilters(paperViewDef(t), clientPred); err == nil {
		t.Error("unknown view column should error")
	}
}

func TestTransposedFiltersAreExecutable(t *testing.T) {
	// The extracted predicates must run against the old tables and return a
	// superset of what the client request needs.
	db := newTestDB(t)
	flightsSchema(t, db)
	clientPred, _ := sql.ParseExpr(`FID = 'AA101' AND EXTRACT(DAY FROM FLIGHTDATE) = 9`)
	filters, err := db.TransposeFilters(paperViewDef(t), clientPred)
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	defer db.Abort(tx)
	fw := filterFor(filters, "flewon")
	tbl, _ := db.Catalog().Table("flewon")
	tids, rows, err := db.ScanForWrite(tx, tbl, fw.Alias, fw.Pred)
	if err != nil {
		t.Fatal(err)
	}
	if len(tids) != 1 || rows[0][2].Int() != 150 {
		t.Errorf("transposed scan rows: %v", rows)
	}
	fl := filterFor(filters, "flights")
	flTbl, _ := db.Catalog().Table("flights")
	tids, _, err = db.ScanForWrite(tx, flTbl, fl.Alias, fl.Pred)
	if err != nil {
		t.Fatal(err)
	}
	if len(tids) != 1 {
		t.Errorf("flights transposed scan found %d rows", len(tids))
	}
}
