package engine

import (
	"errors"
	"strings"
	"testing"

	"github.com/bullfrogdb/bullfrog/internal/sql"
	"github.com/bullfrogdb/bullfrog/internal/storage"
	"github.com/bullfrogdb/bullfrog/internal/types"
)

// Suppress an unused-import error if errors stops being used in future edits.
var _ = errors.Is

func newTestDB(t *testing.T) *DB {
	t.Helper()
	return New(Options{})
}

func mustExec(t *testing.T, db *DB, src string) *Result {
	t.Helper()
	res, err := db.Exec(src)
	if err != nil {
		t.Fatalf("Exec(%q): %v", src, err)
	}
	return res
}

func mustFail(t *testing.T, db *DB, src string, wantSub string) {
	t.Helper()
	if _, err := db.Exec(src); err == nil {
		t.Fatalf("Exec(%q) should fail", src)
	} else if wantSub != "" && !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("Exec(%q) error %q does not mention %q", src, err, wantSub)
	}
}

func flightsSchema(t *testing.T, db *DB) {
	t.Helper()
	mustExec(t, db, `
		CREATE TABLE flights (
			flightid CHAR(6) PRIMARY KEY,
			source CHAR(3), dest CHAR(3), airlineid CHAR(2),
			departure_time TIMESTAMP, arrival_time TIMESTAMP,
			capacity INT);
		CREATE TABLE flewon (
			flightid CHAR(6), flightdate DATE,
			passenger_count INT CHECK (passenger_count > 0));
		CREATE INDEX flewon_flightid_idx ON flewon (flightid);
	`)
	mustExec(t, db, `
		INSERT INTO flights VALUES
			('AA101', 'JFK', 'SFO', 'AA', '2021-06-01 08:00:00', '2021-06-01 11:30:00', 180),
			('UA202', 'LAX', 'ORD', 'UA', '2021-06-01 09:00:00', '2021-06-01 15:00:00', 220);
		INSERT INTO flewon VALUES
			('AA101', '2021-06-09 00:00:00', 150),
			('AA101', '2021-06-10 00:00:00', 160),
			('UA202', '2021-06-09 00:00:00', 200);
	`)
}

func TestCreateInsertSelect(t *testing.T) {
	db := newTestDB(t)
	flightsSchema(t, db)
	res := mustExec(t, db, `SELECT flightid, capacity FROM flights WHERE capacity > 200`)
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "UA202" {
		t.Errorf("rows: %v", res.Rows)
	}
	if res.Columns[0] != "flightid" || res.Columns[1] != "capacity" {
		t.Errorf("columns: %v", res.Columns)
	}
}

func TestTimestampLiteralCoercion(t *testing.T) {
	// Timestamp columns accept string literals in standard formats.
	db := newTestDB(t)
	flightsSchema(t, db)
	res := mustExec(t, db, `SELECT flightdate FROM flewon WHERE flightid = 'AA101' ORDER BY flightdate`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %v", res.Rows)
	}
	if res.Rows[0][0].Kind() != types.KindTime {
		t.Errorf("flightdate kind = %v", res.Rows[0][0].Kind())
	}
	if res.Rows[0][0].Time().Day() != 9 {
		t.Errorf("first date: %v", res.Rows[0][0])
	}
}

func TestNotNullAndCheckViolations(t *testing.T) {
	db := newTestDB(t)
	flightsSchema(t, db)
	mustFail(t, db, `INSERT INTO flights VALUES (NULL, 'a', 'b', 'c', NULL, NULL, 1)`, "not-null")
	mustFail(t, db, `INSERT INTO flewon VALUES ('AA101', '2021-06-11 00:00:00', 0)`, "check constraint")
	mustFail(t, db, `INSERT INTO flights VALUES ('XX', 'a', 'b', 'c', NULL, NULL, 'oops')`, "")
}

func TestUniqueViolationAndOnConflict(t *testing.T) {
	db := newTestDB(t)
	flightsSchema(t, db)
	mustFail(t, db, `INSERT INTO flights VALUES ('AA101', 'x', 'y', 'z', NULL, NULL, 9)`, "unique")
	res := mustExec(t, db, `INSERT INTO flights VALUES ('AA101', 'x', 'y', 'z', NULL, NULL, 9) ON CONFLICT DO NOTHING`)
	if res.Affected != 0 {
		t.Errorf("DO NOTHING should skip, affected=%d", res.Affected)
	}
	res = mustExec(t, db, `INSERT INTO flights VALUES ('DL303', 'x', 'y', 'z', NULL, NULL, 9) ON CONFLICT DO NOTHING`)
	if res.Affected != 1 {
		t.Errorf("non-conflicting insert skipped, affected=%d", res.Affected)
	}
	// NULL key components are exempt from uniqueness.
	mustExec(t, db, `CREATE TABLE u (a INT UNIQUE, b INT)`)
	mustExec(t, db, `INSERT INTO u VALUES (NULL, 1), (NULL, 2)`)
}

func TestForeignKeys(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE TABLE district (d_id INT, d_w_id INT, d_name CHAR(10), PRIMARY KEY (d_w_id, d_id))`)
	mustExec(t, db, `CREATE TABLE customer (
		c_id INT PRIMARY KEY, c_d_id INT, c_w_id INT,
		FOREIGN KEY (c_w_id, c_d_id) REFERENCES district (d_w_id, d_id))`)
	mustExec(t, db, `INSERT INTO district VALUES (1, 1, 'main')`)
	mustExec(t, db, `INSERT INTO customer VALUES (7, 1, 1)`)
	mustFail(t, db, `INSERT INTO customer VALUES (8, 99, 1)`, "foreign key")
	// NULL FK columns are allowed.
	mustExec(t, db, `INSERT INTO customer VALUES (9, NULL, 1)`)
	// Update that breaks the FK fails; update that keeps it passes.
	mustFail(t, db, `UPDATE customer SET c_d_id = 42 WHERE c_id = 7`, "foreign key")
	mustExec(t, db, `UPDATE customer SET c_id = 10 WHERE c_id = 7`)
	// Restrict: deleting a referenced parent fails.
	mustFail(t, db, `DELETE FROM district WHERE d_id = 1`, "referenced")
	mustExec(t, db, `DELETE FROM customer`)
	mustExec(t, db, `DELETE FROM district WHERE d_id = 1`)
	// FK requires an index on the referenced side.
	mustExec(t, db, `CREATE TABLE noidx (x INT)`)
	mustFail(t, db, `CREATE TABLE child (y INT, FOREIGN KEY (y) REFERENCES noidx (x))`, "index")
}

func TestUpdateDelete(t *testing.T) {
	db := newTestDB(t)
	flightsSchema(t, db)
	res := mustExec(t, db, `UPDATE flights SET capacity = capacity + 10 WHERE flightid = 'AA101'`)
	if res.Affected != 1 {
		t.Errorf("affected = %d", res.Affected)
	}
	res = mustExec(t, db, `SELECT capacity FROM flights WHERE flightid = 'AA101'`)
	if res.Rows[0][0].Int() != 190 {
		t.Errorf("capacity = %v", res.Rows[0][0])
	}
	res = mustExec(t, db, `DELETE FROM flewon WHERE passenger_count >= 160`)
	if res.Affected != 2 {
		t.Errorf("deleted %d", res.Affected)
	}
	res = mustExec(t, db, `SELECT COUNT(*) FROM flewon`)
	if res.Rows[0][0].Int() != 1 {
		t.Errorf("remaining = %v", res.Rows[0][0])
	}
}

func TestUpdateChangingUniqueKey(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, v INT)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 10), (2, 20)`)
	mustFail(t, db, `UPDATE t SET id = 2 WHERE id = 1`, "unique")
	mustExec(t, db, `UPDATE t SET id = 3 WHERE id = 1`)
	res := mustExec(t, db, `SELECT v FROM t WHERE id = 3`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 10 {
		t.Errorf("moved row: %v", res.Rows)
	}
	// The old key must no longer match.
	res = mustExec(t, db, `SELECT v FROM t WHERE id = 1`)
	if len(res.Rows) != 0 {
		t.Errorf("old key still matches: %v", res.Rows)
	}
}

func TestInsertWithColumnListAndDefaults(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE TABLE d (a INT PRIMARY KEY, b VARCHAR(10) DEFAULT 'dflt', c INT)`)
	mustExec(t, db, `INSERT INTO d (a) VALUES (1)`)
	res := mustExec(t, db, `SELECT b, c FROM d WHERE a = 1`)
	if res.Rows[0][0].Str() != "dflt" || !res.Rows[0][1].IsNull() {
		t.Errorf("defaults: %v", res.Rows[0])
	}
	mustFail(t, db, `INSERT INTO d (a, b) VALUES (2)`, "values")
	mustFail(t, db, `INSERT INTO d (nosuch) VALUES (2)`, "column")
}

func TestCreateTableAs(t *testing.T) {
	db := newTestDB(t)
	flightsSchema(t, db)
	res := mustExec(t, db, `CREATE TABLE big_flights AS (
		SELECT flightid AS fid, capacity FROM flights WHERE capacity >= 180)`)
	if res.Affected != 2 {
		t.Errorf("CTAS inserted %d", res.Affected)
	}
	res = mustExec(t, db, `SELECT fid FROM big_flights ORDER BY fid`)
	if len(res.Rows) != 2 || res.Rows[0][0].Str() != "AA101" {
		t.Errorf("CTAS contents: %v", res.Rows)
	}
	mustFail(t, db, `CREATE TABLE bad AS (SELECT capacity + 1 FROM flights)`, "name")
}

func TestCreateIndexBackfillAndUniqueness(t *testing.T) {
	db := newTestDB(t)
	flightsSchema(t, db)
	mustExec(t, db, `CREATE INDEX flights_cap_idx ON flights (capacity)`)
	res := mustExec(t, db, `EXPLAIN SELECT * FROM flights WHERE capacity = 180`)
	if !strings.Contains(res.Explain, "Index Scan") {
		t.Errorf("index not chosen:\n%s", res.Explain)
	}
	// Unique index creation on duplicate data fails.
	mustFail(t, db, `CREATE UNIQUE INDEX flewon_fid ON flewon (flightid)`, "duplicate")
	// Hash index works for equality.
	mustExec(t, db, `CREATE INDEX flights_air_idx ON flights USING HASH (airlineid)`)
	res = mustExec(t, db, `SELECT flightid FROM flights WHERE airlineid = 'UA'`)
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "UA202" {
		t.Errorf("hash index query: %v", res.Rows)
	}
}

func TestDropAndRename(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE TABLE a (x INT)`)
	mustExec(t, db, `ALTER TABLE a RENAME TO b`)
	mustExec(t, db, `INSERT INTO b VALUES (1)`)
	mustFail(t, db, `INSERT INTO a VALUES (1)`, "does not exist")
	mustExec(t, db, `DROP TABLE b`)
	mustExec(t, db, `DROP TABLE IF EXISTS b`)
	mustFail(t, db, `DROP TABLE b`, "does not exist")
	mustExec(t, db, `CREATE VIEW v AS SELECT 1 AS one`)
	mustExec(t, db, `DROP VIEW v`)
	mustExec(t, db, `DROP VIEW IF EXISTS v`)
}

func TestSnapshotIsolationThroughSQL(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE TABLE accts (id INT PRIMARY KEY, bal INT)`)
	mustExec(t, db, `INSERT INTO accts VALUES (1, 100)`)

	reader := db.Begin()
	writer := db.Begin()
	if _, err := db.ExecTx(writer, `UPDATE accts SET bal = 50 WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	// Reader (older snapshot) still sees 100.
	res, err := db.ExecTx(reader, `SELECT bal FROM accts WHERE id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 100 {
		t.Errorf("reader sees %v", res.Rows[0][0])
	}
	if err := db.Commit(writer); err != nil {
		t.Fatal(err)
	}
	// Still 100 for the old snapshot.
	res, _ = db.ExecTx(reader, `SELECT bal FROM accts WHERE id = 1`)
	if res.Rows[0][0].Int() != 100 {
		t.Errorf("reader now sees %v", res.Rows[0][0])
	}
	db.Abort(reader)
	res = mustExec(t, db, `SELECT bal FROM accts WHERE id = 1`)
	if res.Rows[0][0].Int() != 50 {
		t.Errorf("new txn sees %v", res.Rows[0][0])
	}
}

func TestFirstUpdaterWinsThroughSQL(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE TABLE c (id INT PRIMARY KEY, n INT)`)
	mustExec(t, db, `INSERT INTO c VALUES (1, 0)`)

	t1 := db.Begin()
	t2 := db.Begin()
	if _, err := db.ExecTx(t1, `UPDATE c SET n = 1 WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	if err := db.Commit(t1); err != nil {
		t.Fatal(err)
	}
	_, err := db.ExecTx(t2, `UPDATE c SET n = 2 WHERE id = 1`)
	if err == nil {
		t.Fatal("second updater should hit a serialization conflict")
	}
	db.Abort(t2)
	res := mustExec(t, db, `SELECT n FROM c WHERE id = 1`)
	if res.Rows[0][0].Int() != 1 {
		t.Errorf("n = %v", res.Rows[0][0])
	}
}

func TestAbortRollsBackSQLEffects(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE TABLE r (id INT PRIMARY KEY, v INT)`)
	mustExec(t, db, `INSERT INTO r VALUES (1, 10)`)
	tx := db.Begin()
	db.ExecTx(tx, `INSERT INTO r VALUES (2, 20)`)
	db.ExecTx(tx, `UPDATE r SET v = 11 WHERE id = 1`)
	db.ExecTx(tx, `DELETE FROM r WHERE id = 1`)
	db.Abort(tx)
	res := mustExec(t, db, `SELECT id, v FROM r ORDER BY id`)
	if len(res.Rows) != 1 || res.Rows[0][1].Int() != 10 {
		t.Errorf("after abort: %v", res.Rows)
	}
	// Index entries from the aborted insert must be cleaned.
	res = mustExec(t, db, `SELECT id FROM r WHERE id = 2`)
	if len(res.Rows) != 0 {
		t.Errorf("aborted insert visible via index: %v", res.Rows)
	}
}

func TestVacuumPrunesVersionsAndStates(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE TABLE vv (id INT PRIMARY KEY, v INT)`)
	mustExec(t, db, `INSERT INTO vv VALUES (1, 0)`)
	for i := 0; i < 10; i++ {
		mustExec(t, db, `UPDATE vv SET v = v + 1 WHERE id = 1`)
	}
	versions, states := db.Vacuum()
	if versions < 9 {
		t.Errorf("pruned %d versions", versions)
	}
	if states < 10 {
		t.Errorf("pruned %d states", states)
	}
	res := mustExec(t, db, `SELECT v FROM vv WHERE id = 1`)
	if res.Rows[0][0].Int() != 10 {
		t.Errorf("v = %v after vacuum", res.Rows[0][0])
	}
}

func TestInsertRowReturnsTID(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE TABLE x (a INT PRIMARY KEY)`)
	tbl, _ := db.Catalog().Table("x")
	tx := db.Begin()
	tid, ok, err := db.InsertRow(tx, tbl, types.Row{types.NewInt(5)}, sql.ConflictError)
	if err != nil || !ok {
		t.Fatalf("InsertRow: %v %v", ok, err)
	}
	if err := db.Commit(tx); err != nil {
		t.Fatal(err)
	}
	tx2 := db.Begin()
	defer db.Abort(tx2)
	var got int64
	tbl.Heap.View(tid, func(v *storage.Version) {
		row, _ := tx2.VisibleRow(v)
		got = row[0].Int()
	})
	if got != 5 {
		t.Errorf("row at returned TID = %d", got)
	}
}
