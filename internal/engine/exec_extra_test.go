package engine

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/bullfrogdb/bullfrog/internal/schema"

	"github.com/bullfrogdb/bullfrog/internal/sql"
	"github.com/bullfrogdb/bullfrog/internal/types"
)

// TestPaperExplainShape reproduces §2.1's EXPLAIN structure: a query over the
// migration view shows the predicates transposed onto both base tables.
func TestPaperExplainShape(t *testing.T) {
	db := newTestDB(t)
	flightsSchema(t, db)
	mustExec(t, db, `CREATE VIEW flewoninfo_view AS (
		SELECT f.flightid AS fid, flightdate, passenger_count,
		       (capacity - passenger_count) AS empty_seats
		FROM flights f, flewon fi WHERE f.flightid = fi.flightid)`)
	res := mustExec(t, db, `EXPLAIN SELECT * FROM flewoninfo_view
		WHERE fid = 'AA101' AND EXTRACT(DAY FROM flightdate) = 9`)
	plan := res.Explain
	// Both base tables appear, the flightid filter reached a scan, and the
	// EXTRACT filter reached flewon's side.
	for _, want := range []string{"flights", "flewon", "'AA101'", "EXTRACT"} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
	if !strings.Contains(plan, "Filter:") {
		t.Errorf("plan shows no pushed filters:\n%s", plan)
	}
}

func TestBoundRowsSubstitution(t *testing.T) {
	// The migration transform path: plan a query with one table replaced by
	// in-memory rows (the claimed tuples).
	db := newTestDB(t)
	flightsSchema(t, db)
	sel, err := sql.ParseOne(`SELECT f.flightid, passenger_count FROM flights f, flewon fi
		WHERE f.flightid = fi.flightid`)
	if err != nil {
		t.Fatal(err)
	}
	bound := &BoundRows{Rows: []types.Row{
		{types.NewString("UA202"), types.NewTime(mustTime("2021-06-09")), types.NewInt(200)},
	}}
	p, err := db.PlanSelectWithBoundRows(sel.(*sql.SelectStmt), "fi", bound)
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	defer db.Abort(tx)
	var rows []types.Row
	if err := p.Execute(tx, func(r types.Row) error {
		rows = append(rows, r.Clone())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Str() != "UA202" || rows[0][1].Int() != 200 {
		t.Errorf("bound-rows join: %v", rows)
	}
}

func mustTime(s string) time.Time {
	ts, err := schema.ParseTime(s)
	if err != nil {
		panic(err)
	}
	return ts
}

func TestConcurrentSQLWorkload(t *testing.T) {
	// Hammer a small table from several goroutines through the SQL layer;
	// verify no lost updates (every increment lands).
	db := newTestDB(t)
	mustExec(t, db, `CREATE TABLE counters (id INT PRIMARY KEY, n INT)`)
	for i := 0; i < 4; i++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO counters VALUES (%d, 0)`, i))
	}
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := (w + i) % 4
				for {
					_, err := db.Exec(fmt.Sprintf(`UPDATE counters SET n = n + 1 WHERE id = %d`, id))
					if err == nil {
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()
	res := mustExec(t, db, `SELECT SUM(n) FROM counters`)
	if got := res.Rows[0][0].Int(); got != workers*perWorker {
		t.Errorf("sum = %d, want %d (lost updates?)", got, workers*perWorker)
	}
}

func TestVacuumKeepsIndexesConsistent(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE TABLE kv (k INT PRIMARY KEY, v INT)`)
	mustExec(t, db, `INSERT INTO kv VALUES (1, 0)`)
	// Churn the indexed key so stale postings accumulate, then vacuum.
	for i := 2; i <= 20; i++ {
		mustExec(t, db, fmt.Sprintf(`UPDATE kv SET k = %d WHERE k = %d`, i, i-1))
	}
	db.Vacuum()
	res := mustExec(t, db, `SELECT k, v FROM kv WHERE k = 20`)
	if len(res.Rows) != 1 {
		t.Fatalf("final key lookup: %v", res.Rows)
	}
	// Old keys must not resolve.
	for _, k := range []int{1, 10, 19} {
		res := mustExec(t, db, fmt.Sprintf(`SELECT v FROM kv WHERE k = %d`, k))
		if len(res.Rows) != 0 {
			t.Errorf("stale key %d still resolves", k)
		}
	}
	// Full scan sees exactly one row.
	res = mustExec(t, db, `SELECT COUNT(*) FROM kv`)
	if res.Rows[0][0].Int() != 1 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
}

func TestAlterAddAndDropFK(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `
		CREATE TABLE parent (p INT PRIMARY KEY);
		CREATE TABLE child (c INT PRIMARY KEY, p INT);
		INSERT INTO parent VALUES (1);`)
	mustExec(t, db, `ALTER TABLE child ADD CONSTRAINT child_fk FOREIGN KEY (p) REFERENCES parent (p)`)
	mustFail(t, db, `INSERT INTO child VALUES (1, 99)`, "foreign key")
	mustExec(t, db, `INSERT INTO child VALUES (1, 1)`)
	mustExec(t, db, `ALTER TABLE child DROP CONSTRAINT child_fk`)
	mustExec(t, db, `INSERT INTO child VALUES (2, 99)`) // constraint gone
	mustFail(t, db, `ALTER TABLE child DROP CONSTRAINT nope`, "not found")
	mustFail(t, db, `ALTER TABLE child ADD FOREIGN KEY (nosuch) REFERENCES parent (p)`, "unknown column")
	mustFail(t, db, `ALTER TABLE child ADD FOREIGN KEY (p) REFERENCES ghost (p)`, "does not exist")
}

func TestInOperatorThroughSQL(t *testing.T) {
	db := newTestDB(t)
	flightsSchema(t, db)
	res := mustExec(t, db, `SELECT COUNT(*) FROM flights WHERE flightid IN ('AA101', 'UA202', 'ZZ999')`)
	if res.Rows[0][0].Int() != 2 {
		t.Errorf("IN count: %v", res.Rows[0][0])
	}
	res = mustExec(t, db, `SELECT COUNT(*) FROM flights WHERE flightid NOT IN ('AA101')`)
	if res.Rows[0][0].Int() != 1 {
		t.Errorf("NOT IN count: %v", res.Rows[0][0])
	}
}

func TestCaseThroughSQL(t *testing.T) {
	db := newTestDB(t)
	flightsSchema(t, db)
	res := mustExec(t, db, `SELECT flightid,
		CASE WHEN capacity >= 200 THEN 'big' ELSE 'small' END AS size
		FROM flights ORDER BY flightid`)
	if res.Rows[0][1].Str() != "small" || res.Rows[1][1].Str() != "big" {
		t.Errorf("case rows: %v", res.Rows)
	}
}

func TestIsNullPredicates(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE TABLE n (a INT PRIMARY KEY, b INT)`)
	mustExec(t, db, `INSERT INTO n VALUES (1, NULL), (2, 5)`)
	res := mustExec(t, db, `SELECT a FROM n WHERE b IS NULL`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 1 {
		t.Errorf("IS NULL: %v", res.Rows)
	}
	res = mustExec(t, db, `SELECT a FROM n WHERE b IS NOT NULL`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 2 {
		t.Errorf("IS NOT NULL: %v", res.Rows)
	}
}
