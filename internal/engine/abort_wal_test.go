package engine

import (
	"errors"
	"testing"

	"github.com/bullfrogdb/bullfrog/internal/wal"
)

// abortFailLog fails appends of abort records only, simulating a log device
// that dies while a rollback is being recorded.
type abortFailLog struct {
	failAbort bool
	err       error
}

func (f *abortFailLog) Append(rec wal.Record) error {
	if f.failAbort && rec.Type == wal.RecAbort {
		return f.err
	}
	return nil
}

func (f *abortFailLog) Flush() error { return nil }

// TestAbortPropagatesWALError: Abort's append failure used to be silently
// dropped. It must now surface to the caller AND increment the advisory
// wal.abort_append_errors counter — while still rolling the transaction back
// (recovery treats any transaction without a commit record as aborted, so
// the lost record is advisory, not a correctness problem).
func TestAbortPropagatesWALError(t *testing.T) {
	log := &abortFailLog{err: errors.New("log device failed")}
	db := New(Options{WAL: log})
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, v INT)`)

	log.failAbort = true
	tx := db.Begin()
	if _, err := db.ExecTx(tx, `INSERT INTO t VALUES (1, 10)`); err != nil {
		t.Fatalf("staging insert: %v", err)
	}
	err := db.Abort(tx)
	if err == nil {
		t.Fatal("Abort with failing WAL returned nil")
	}
	if !errors.Is(err, log.err) {
		t.Fatalf("Abort error %v does not wrap the WAL error", err)
	}
	if !tx.Done() {
		t.Fatal("failed abort logging left the transaction open")
	}
	if n := db.Obs().WAL.AbortAppendErrors.Load(); n != 1 {
		t.Fatalf("AbortAppendErrors = %d, want 1", n)
	}
	if got := db.Obs().Snapshot().WAL.AbortAppendErrors; got != 1 {
		t.Fatalf("snapshot abort_append_errors = %d, want 1", got)
	}

	// The rollback itself happened: the staged row is invisible.
	log.failAbort = false
	res, err := db.Exec(`SELECT id FROM t`)
	if err != nil {
		t.Fatalf("read-back: %v", err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("aborted insert is visible: %d rows", len(res.Rows))
	}

	// A second Abort of a done transaction is a no-op: no error, no count.
	if err := db.Abort(tx); err != nil {
		t.Fatalf("Abort of done txn: %v", err)
	}
	if n := db.Obs().WAL.AbortAppendErrors.Load(); n != 1 {
		t.Fatalf("AbortAppendErrors after no-op = %d, want 1", n)
	}
}
