package engine

import (
	"bytes"
	"errors"
	"testing"

	"github.com/bullfrogdb/bullfrog/internal/wal"
)

// failLog rejects every append/flush, simulating a dead log device.
type failLog struct{ err error }

func (f *failLog) Append(rec wal.Record) error { return f.err }
func (f *failLog) Flush() error                { return f.err }

// TestAbortNeverTouchesWAL: with commit-time batch logging, an aborted
// transaction's redo records are dropped with the transaction state and
// nothing — not even an abort marker — reaches the log. Abort therefore
// succeeds even when the log device is dead.
func TestAbortNeverTouchesWAL(t *testing.T) {
	var buf bytes.Buffer
	db := New(Options{WAL: wal.NewWriter(&buf)})
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, v INT)`)
	if err := db.WAL().Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	before := buf.Len()

	tx := db.Begin()
	if _, err := db.ExecTx(tx, `INSERT INTO t VALUES (1, 10)`); err != nil {
		t.Fatalf("staging insert: %v", err)
	}
	if err := db.Abort(tx); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	if !tx.Done() {
		t.Fatal("Abort left the transaction open")
	}
	if err := db.WAL().Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if buf.Len() != before {
		t.Fatalf("aborted transaction wrote %d log bytes", buf.Len()-before)
	}

	// The rollback itself happened: the staged row is invisible.
	res, err := db.Exec(`SELECT id FROM t`)
	if err != nil {
		t.Fatalf("read-back: %v", err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("aborted insert is visible: %d rows", len(res.Rows))
	}
}

// TestAbortSucceedsOnDeadLogDevice: Abort never appends, so a failing log
// device cannot make a rollback fail.
func TestAbortSucceedsOnDeadLogDevice(t *testing.T) {
	db := New(Options{WAL: &failLog{err: errors.New("log device failed")}})
	tx := db.Begin()
	if err := db.Abort(tx); err != nil {
		t.Fatalf("Abort with dead log device: %v", err)
	}
	if !tx.Done() {
		t.Fatal("Abort left the transaction open")
	}
	// A second Abort of a done transaction is a no-op.
	if err := db.Abort(tx); err != nil {
		t.Fatalf("Abort of done txn: %v", err)
	}
}
