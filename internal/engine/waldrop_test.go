package engine

import (
	"errors"
	"testing"

	"github.com/bullfrogdb/bullfrog/internal/wal"
)

// blockableLog is a wal.Logger whose commit-record appends can be made to
// fail on demand, simulating a full or failing log device at the worst
// moment.
type blockableLog struct {
	failCommit bool
	err        error
}

func (f *blockableLog) Append(rec wal.Record) error {
	if f.failCommit && rec.Type == wal.RecCommit {
		return f.err
	}
	return nil
}

func (f *blockableLog) Flush() error { return nil }

// TestCommitPropagatesWALError is the errdrop regression test for the
// durability path: when the WAL cannot persist the commit record, Commit
// must surface the error to the caller and roll the transaction back — a
// silently dropped append error here would acknowledge a commit that
// recovery can never replay.
func TestCommitPropagatesWALError(t *testing.T) {
	log := &blockableLog{err: errors.New("log device full")}
	db := New(Options{WAL: log})
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, v INT)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 10)`)

	log.failCommit = true
	tx := db.Begin()
	if _, err := db.ExecTx(tx, `INSERT INTO t VALUES (2, 20)`); err != nil {
		t.Fatalf("staging insert: %v", err)
	}
	err := db.Commit(tx)
	if err == nil {
		t.Fatal("Commit with failing WAL returned nil")
	}
	if !errors.Is(err, log.err) {
		t.Fatalf("Commit error %v does not wrap the WAL error", err)
	}
	if !tx.Done() {
		t.Fatal("failed commit left the transaction open")
	}

	// The un-durable write must not be visible to later transactions.
	log.failCommit = false
	res, err := db.Exec(`SELECT id FROM t`)
	if err != nil {
		t.Fatalf("read-back: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rolled-back insert is visible: got %d rows, want 1", len(res.Rows))
	}
}
