package engine

import (
	"fmt"
	"strings"

	"github.com/bullfrogdb/bullfrog/internal/expr"
	"github.com/bullfrogdb/bullfrog/internal/sql"
)

// TableFilter is the predicate extracted for one input (old-schema) table of
// a migration query: the table's name, its binding alias inside the query,
// and the transposed predicate over its columns (alias-qualified, unbound).
// A nil Pred means the whole table is potentially relevant (paper §2.4 worst
// case).
type TableFilter struct {
	Table string
	Alias string
	Pred  expr.Expr
}

// TransposeFilters converts a predicate over a migration view's output
// columns into predicates over the view's input tables — the core of
// BullFrog's request-driven migration scoping (paper §2.1).
//
// The mechanism mirrors what the paper does with PostgreSQL view expansion:
//
//  1. each client-predicate column is replaced by its defining expression
//     from the view's SELECT list (inverse projection),
//  2. the view's own WHERE conjuncts are added,
//  3. constant predicates are replicated across equality-join equivalence
//     classes (so FID = 'AA101' lands on both FLIGHTS and FLEWON, exactly as
//     in the paper's EXPLAIN output),
//  4. conjuncts are assigned to the single input table they mention;
//     conjuncts spanning tables or containing aggregates are dropped
//     (they cannot narrow a single table's scan and rechecking happens in
//     the transform anyway).
//
// clientWhere may be nil (meaning: everything the view produces).
func (db *DB) TransposeFilters(viewDef *sql.SelectStmt, clientWhere expr.Expr) ([]TableFilter, error) {
	if len(viewDef.From) == 0 {
		return nil, fmt.Errorf("engine: migration query has no input tables")
	}
	// Resolve input tables and build the combined scope.
	type input struct {
		table string
		alias string
		cols  []Column
	}
	var inputs []input
	var allCols []Column
	for _, ref := range viewDef.From {
		if ref.Subquery != nil {
			return nil, fmt.Errorf("engine: transposition through FROM subqueries is not supported")
		}
		name := normalizeName(ref.Name)
		if db.cat.HasView(name) {
			return nil, fmt.Errorf("engine: transposition through nested views is not supported")
		}
		tbl, err := db.cat.Table(name)
		if err != nil {
			return nil, err
		}
		alias := normalizeName(ref.AliasOrName())
		cols := make([]Column, len(tbl.Def.Columns))
		for i, c := range tbl.Def.Columns {
			cols[i] = Column{Table: alias, Name: c.Name, Kind: c.Kind}
		}
		inputs = append(inputs, input{table: tbl.Def.Name, alias: alias, cols: cols})
		allCols = append(allCols, cols...)
	}
	combined := scopeOf(allCols)

	// Output column name -> defining expression (canonicalized).
	items, err := expandItems(viewDef.Items, allCols)
	if err != nil {
		return nil, err
	}
	defs := make(map[string]expr.Expr, len(items))
	for _, it := range items {
		canon, err := canonicalize(it.Expr, combined, allCols)
		if err != nil {
			return nil, err
		}
		defs[normalizeName(it.Name)] = canon
	}
	// Group-by outputs keep their names via items; nothing extra needed.

	// Substitute client predicate columns with their definitions.
	var conjuncts []expr.Expr
	if clientWhere != nil {
		substituted, err := expr.Transform(clientWhere, func(x expr.Expr) (expr.Expr, error) {
			c, ok := x.(*expr.Col)
			if !ok {
				return x, nil
			}
			def, found := defs[normalizeName(c.Name)]
			if !found {
				return nil, fmt.Errorf("engine: column %q does not exist in the migration view", c.Name)
			}
			return expr.Clone(def), nil
		})
		if err != nil {
			return nil, err
		}
		for _, conj := range expr.SplitConjuncts(substituted) {
			if expr.ContainsAgg(conj) {
				continue // predicates over aggregates cannot narrow input scans
			}
			conjuncts = append(conjuncts, conj)
		}
	}
	// Add the view's own WHERE conjuncts (canonicalized).
	if viewDef.Where != nil {
		canon, err := canonicalize(viewDef.Where, combined, allCols)
		if err != nil {
			return nil, err
		}
		conjuncts = append(conjuncts, expr.SplitConjuncts(canon)...)
	}

	// Equivalence classes over equality-joined columns, for constant
	// predicate replication.
	uf := newUnionFind()
	for _, conj := range conjuncts {
		if bo, ok := conj.(*expr.BinOp); ok && bo.Op == expr.OpEq {
			lc, lok := bo.L.(*expr.Col)
			rc, rok := bo.R.(*expr.Col)
			if lok && rok {
				uf.union(colKey(lc), colKey(rc))
			}
		}
	}
	var replicated []expr.Expr
	for _, conj := range conjuncts {
		bo, ok := conj.(*expr.BinOp)
		if !ok || !bo.Op.Comparison() {
			continue
		}
		col, cok := bo.L.(*expr.Col)
		cst, vok := bo.R.(*expr.Const)
		flip := false
		if !cok || !vok {
			col, cok = bo.R.(*expr.Col)
			cst, vok = bo.L.(*expr.Const)
			flip = true
		}
		if !cok || !vok {
			continue
		}
		for _, other := range uf.classOf(colKey(col)) {
			if other == colKey(col) {
				continue
			}
			alias, name, _ := strings.Cut(other, ".")
			oc := expr.NewCol(alias, name)
			if flip {
				replicated = append(replicated, expr.NewBinOp(bo.Op, expr.Clone(cst), oc))
			} else {
				replicated = append(replicated, expr.NewBinOp(bo.Op, oc, expr.Clone(cst)))
			}
		}
	}
	conjuncts = append(conjuncts, replicated...)

	// Assign single-alias conjuncts to their tables.
	perAlias := make(map[string][]expr.Expr)
	for _, conj := range conjuncts {
		aliases := map[string]bool{}
		bad := false
		for _, c := range expr.CollectCols(conj) {
			if c.Table == "" {
				bad = true
				break
			}
			aliases[c.Table] = true
		}
		if bad || len(aliases) != 1 {
			continue
		}
		for a := range aliases {
			// Deduplicate textually (replication can duplicate the original).
			dup := false
			for _, existing := range perAlias[a] {
				if existing.String() == conj.String() {
					dup = true
					break
				}
			}
			if !dup {
				perAlias[a] = append(perAlias[a], conj)
			}
		}
	}

	out := make([]TableFilter, len(inputs))
	for i, in := range inputs {
		out[i] = TableFilter{
			Table: in.table,
			Alias: in.alias,
			Pred:  expr.CombineConjuncts(perAlias[in.alias]...),
		}
	}
	return out, nil
}

func colKey(c *expr.Col) string { return normalizeName(c.Table) + "." + normalizeName(c.Name) }

// unionFind is a tiny union-find over string keys with class enumeration.
type unionFind struct {
	parent map[string]string
}

func newUnionFind() *unionFind { return &unionFind{parent: map[string]string{}} }

func (u *unionFind) find(x string) string {
	p, ok := u.parent[x]
	if !ok {
		u.parent[x] = x
		return x
	}
	if p == x {
		return x
	}
	root := u.find(p)
	u.parent[x] = root
	return root
}

func (u *unionFind) union(a, b string) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[ra] = rb
	}
}

func (u *unionFind) classOf(x string) []string {
	root := u.find(x)
	var out []string
	for k := range u.parent {
		if u.find(k) == root {
			out = append(out, k)
		}
	}
	return out
}
