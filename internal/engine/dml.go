package engine

import (
	"errors"
	"fmt"
	"strings"

	"github.com/bullfrogdb/bullfrog/internal/catalog"
	"github.com/bullfrogdb/bullfrog/internal/expr"
	"github.com/bullfrogdb/bullfrog/internal/index"
	"github.com/bullfrogdb/bullfrog/internal/sql"
	"github.com/bullfrogdb/bullfrog/internal/storage"
	"github.com/bullfrogdb/bullfrog/internal/txn"
	"github.com/bullfrogdb/bullfrog/internal/types"
	"github.com/bullfrogdb/bullfrog/internal/wal"
)

// ErrUniqueViolation reports a duplicate key on a unique index.
var ErrUniqueViolation = errors.New("engine: duplicate key violates unique constraint")

// ErrFKViolation reports a missing referenced row.
var ErrFKViolation = errors.New("engine: foreign key violation")

// ErrCheckViolation reports a failed CHECK constraint.
var ErrCheckViolation = errors.New("engine: check constraint violation")

// rowLockKey builds the lock-table key for a tuple.
func rowLockKey(tbl *catalog.Table, tid storage.TID) txn.LockKey {
	return txn.LockKey{Space: tbl.ID, A: uint64(tid.Page), B: uint64(tid.Slot)}
}

// keyLockKey builds the lock-table key for a unique-index key value. Two
// independent FNV hashes make accidental collisions (which would only cause
// extra serialization, never incorrectness) vanishingly rare.
func keyLockKey(idxID uint64, key []byte) txn.LockKey {
	var a, b uint64 = 14695981039346656037, 1099511628211
	for _, c := range key {
		a = (a ^ uint64(c)) * 1099511628211
		b = b*31 + uint64(c) + 0x9E3779B97F4A7C15
	}
	return txn.LockKey{Space: idxID, A: a, B: b}
}

// LockRow acquires the tuple write lock for the transaction.
func (db *DB) LockRow(tx *txn.Txn, tbl *catalog.Table, tid storage.TID) error {
	return tx.LockTimeout(rowLockKey(tbl, tid), db.opts.LockTimeout)
}

// InsertRow inserts a full-width row (after default filling) into the table,
// enforcing CHECK, NOT NULL, unique, and FOREIGN KEY constraints. With
// ConflictDoNothing, a unique conflict skips the insert (ok=false) instead of
// failing — the PostgreSQL ON CONFLICT DO NOTHING behavior BullFrog's
// §3.7 conflict-detection mode relies on.
func (db *DB) InsertRow(tx *txn.Txn, tbl *catalog.Table, row types.Row, conflict sql.ConflictAction) (storage.TID, bool, error) {
	row, err := tbl.Def.Validate(row)
	if err != nil {
		return storage.TID{}, false, err
	}
	if err := db.checkChecks(tbl, row); err != nil {
		return storage.TID{}, false, err
	}
	if err := db.checkForeignKeys(tx, tbl, row, nil); err != nil {
		return storage.TID{}, false, err
	}
	// Unique arbitration: hook (lazy migration), then key lock, then probe.
	uniqueIdxs := tbl.UniqueIndexes()
	for _, idx := range uniqueIdxs {
		def := idx.Def()
		keyRow := indexKeyRow(def, row)
		if keyRow == nil {
			continue // a NULL component exempts the row from uniqueness
		}
		if db.hook != nil {
			if err := db.hook.BeforeKeyCheck(tx, tbl.Def.Name, def.Columns, keyRow); err != nil {
				return storage.TID{}, false, err
			}
		}
		key := types.EncodeKey(nil, keyRow)
		if err := tx.LockTimeout(keyLockKey(def.ID, key), db.opts.LockTimeout); err != nil {
			return storage.TID{}, false, err
		}
		if db.liveDuplicate(tx, tbl, idx, key) {
			if conflict == sql.ConflictDoNothing {
				return storage.TID{}, false, nil
			}
			return storage.TID{}, false, fmt.Errorf("%w %q on table %q", ErrUniqueViolation, def.Name, tbl.Def.Name)
		}
	}
	tid := tbl.Heap.Insert(tx.ID(), row)
	db.LogRedo(tx, wal.Record{Type: wal.RecInsert, Table: tbl.Def.Name, TID: tid, Row: row})
	for _, idx := range tbl.Indexes() {
		idx.Insert(idx.Def().KeyFromRow(row), tid)
	}
	tx.OnAbort(func() {
		for _, idx := range tbl.Indexes() {
			idx.Delete(idx.Def().KeyFromRow(row), tid)
		}
	})
	return tid, true, nil
}

// indexKeyRow extracts the key datums, or nil when any component is NULL.
func indexKeyRow(def *index.Def, row types.Row) types.Row {
	key := make(types.Row, len(def.Columns))
	for i, ord := range def.Columns {
		if row[ord].IsNull() {
			return nil
		}
		key[i] = row[ord]
	}
	return key
}

// liveDuplicate reports whether any tuple currently exists (latest-committed
// semantics, or created by this very transaction) with the given key in the
// unique index. The caller must hold the key lock.
func (db *DB) liveDuplicate(tx *txn.Txn, tbl *catalog.Table, idx index.Index, key []byte) bool {
	def := idx.Def()
	for _, tid := range idx.Lookup(key) {
		dup := false
		// A tuple that vanished under us cannot be a live duplicate.
		_ = tbl.Heap.View(tid, func(head *storage.Version) {
			v := latestDurable(tx, head)
			if v == nil {
				return
			}
			// Deletion visible under latest-committed semantics?
			if v.XMax != 0 {
				if v.XMax == tx.ID() || tx.Manager().StatusOf(v.XMax) == txn.StatusCommitted {
					return
				}
			}
			// Re-check the key against the actual row (stale entries).
			keyRow := indexKeyRow(def, v.Row)
			if keyRow == nil {
				return
			}
			if string(types.EncodeKey(nil, keyRow)) == string(key) {
				dup = true
			}
		})
		if dup {
			return true
		}
	}
	return false
}

// latestDurable walks the chain for the newest version created by a
// committed transaction (or by tx itself).
func latestDurable(tx *txn.Txn, head *storage.Version) *storage.Version {
	for v := head; v != nil; v = v.Next {
		if v.XMin == tx.ID() || tx.Manager().StatusOf(v.XMin) == txn.StatusCommitted {
			return v
		}
	}
	return nil
}

// checkChecks enforces CHECK constraints (NULL results pass, per SQL).
func (db *DB) checkChecks(tbl *catalog.Table, row types.Row) error {
	for _, ck := range tbl.Def.Checks {
		v, err := ck.Expr.Eval(row)
		if err != nil {
			return err
		}
		if !v.IsNull() && v.Kind() == types.KindBool && !v.Bool() {
			return fmt.Errorf("%w: %q on table %q", ErrCheckViolation, ck.Name, tbl.Def.Name)
		}
	}
	return nil
}

// checkForeignKeys verifies each FK whose local values are fully non-NULL
// references an existing parent row. When oldRow is non-nil (an update), FKs
// whose columns are unchanged are skipped.
func (db *DB) checkForeignKeys(tx *txn.Txn, tbl *catalog.Table, row, oldRow types.Row) error {
	for _, fk := range tbl.Def.ForeignKey {
		keyRow := make(types.Row, len(fk.Columns))
		allSet := true
		changed := oldRow == nil
		for i, ord := range fk.Columns {
			if row[ord].IsNull() {
				allSet = false
				break
			}
			keyRow[i] = row[ord]
			if oldRow != nil && !types.Equal(row[ord], oldRow[ord]) {
				changed = true
			}
		}
		if !allSet || !changed {
			continue
		}
		refTbl, err := db.catForTxn(tx).Table(fk.RefTable)
		if err != nil {
			return fmt.Errorf("engine: foreign key: %w", err)
		}
		if db.hook != nil {
			if err := db.hook.BeforeKeyCheck(tx, fk.RefTable, fk.RefColumns, keyRow); err != nil {
				return err
			}
		}
		if !db.parentExists(tx, refTbl, fk.RefColumns, keyRow) {
			return fmt.Errorf("%w: %v not present in %q", ErrFKViolation, keyRow, fk.RefTable)
		}
	}
	return nil
}

// parentExists probes for a live row in tbl with the given column values.
func (db *DB) parentExists(tx *txn.Txn, tbl *catalog.Table, cols []int, keyRow types.Row) bool {
	key := types.EncodeKey(nil, keyRow)
	idx := tbl.IndexOnPrefix(cols)
	if idx != nil && len(idx.Def().Columns) == len(cols) {
		return db.liveDuplicate(tx, tbl, idx, key)
	}
	// Range-scan a wider index, or fall back to a heap scan.
	found := false
	probe := func(head *storage.Version) {
		v := latestDurable(tx, head)
		if v == nil {
			return
		}
		if v.XMax != 0 && (v.XMax == tx.ID() || tx.Manager().StatusOf(v.XMax) == txn.StatusCommitted) {
			return
		}
		for i, ord := range cols {
			if !types.Equal(v.Row[ord], keyRow[i]) {
				return
			}
		}
		found = true
	}
	if idx != nil {
		idx.AscendRange(key, index.PrefixSucc(key), func(_ []byte, tid storage.TID) bool {
			// A tuple that vanished under us cannot match.
			_ = tbl.Heap.View(tid, probe)
			return !found
		})
		return found
	}
	// Scan only returns the errStopScan sentinel used for early exit.
	_ = tbl.Heap.Scan(func(tid storage.TID, head *storage.Version) error {
		probe(head)
		if found {
			return errStopScan
		}
		return nil
	})
	return found
}

// UpdateRow replaces the tuple at tid with newRow under first-updater-wins
// rules. The caller identifies the tuple; this method locks it, re-validates
// constraints, maintains indexes, and registers undo.
func (db *DB) UpdateRow(tx *txn.Txn, tbl *catalog.Table, tid storage.TID, newRow types.Row) error {
	if err := db.LockRow(tx, tbl, tid); err != nil {
		return err
	}
	// Preview under the latch: writability and the old row image. We hold
	// the row lock, so the head cannot change before the Mutate below.
	var oldRow types.Row
	var checkErr error
	err := tbl.Heap.View(tid, func(head *storage.Version) {
		ok, cerr := tx.CheckWritable(head)
		if cerr != nil {
			checkErr = cerr
			return
		}
		if ok {
			r, _ := tx.VisibleRow(head)
			oldRow = r.Clone()
		}
	})
	if err != nil {
		return err
	}
	if checkErr != nil {
		return checkErr
	}
	if oldRow == nil {
		return storage.ErrNoSuchTuple
	}
	newRow, err = tbl.Def.Validate(newRow)
	if err != nil {
		return err
	}
	if err := db.checkChecks(tbl, newRow); err != nil {
		return err
	}
	if err := db.checkForeignKeys(tx, tbl, newRow, oldRow); err != nil {
		return err
	}
	// Unique checks only for keys that changed.
	for _, idx := range tbl.UniqueIndexes() {
		def := idx.Def()
		newKeyRow := indexKeyRow(def, newRow)
		oldKeyRow := indexKeyRow(def, oldRow)
		if newKeyRow == nil {
			continue
		}
		newKey := types.EncodeKey(nil, newKeyRow)
		if oldKeyRow != nil && string(types.EncodeKey(nil, oldKeyRow)) == string(newKey) {
			continue
		}
		if db.hook != nil {
			if err := db.hook.BeforeKeyCheck(tx, tbl.Def.Name, def.Columns, newKeyRow); err != nil {
				return err
			}
		}
		if err := tx.LockTimeout(keyLockKey(def.ID, newKey), db.opts.LockTimeout); err != nil {
			return err
		}
		if db.liveDuplicate(tx, tbl, idx, newKey) {
			return fmt.Errorf("%w %q on table %q", ErrUniqueViolation, def.Name, tbl.Def.Name)
		}
	}
	if err := tbl.Heap.Mutate(tid, func(s storage.Slot) error {
		if ok, cerr := tx.CheckWritable(s.Head()); cerr != nil || !ok {
			if cerr != nil {
				return cerr
			}
			return storage.ErrNoSuchTuple
		}
		s.Push(tx.ID(), newRow)
		return nil
	}); err != nil {
		return err
	}
	// Buffer redo only after the mutate succeeds so a failed statement in a
	// transaction that later commits cannot replay a phantom update.
	db.LogRedo(tx, wal.Record{Type: wal.RecUpdate, Table: tbl.Def.Name, TID: tid, Row: newRow})
	// Maintain indexes for changed keys; stale old entries are tolerated by
	// read-side rechecks and swept by vacuum.
	var added []struct {
		idx index.Index
		key []byte
	}
	for _, idx := range tbl.Indexes() {
		oldKey := idx.Def().KeyFromRow(oldRow)
		newKey := idx.Def().KeyFromRow(newRow)
		if string(oldKey) != string(newKey) {
			idx.Insert(newKey, tid)
			added = append(added, struct {
				idx index.Index
				key []byte
			}{idx, newKey})
		}
	}
	tx.OnAbort(func() {
		// Abort cleanup is best-effort: a missing tuple has nothing to undo.
		_ = tbl.Heap.Mutate(tid, func(s storage.Slot) error {
			s.Pop(tx.ID())
			return nil
		})
		for _, a := range added {
			a.idx.Delete(a.key, tid)
		}
	})
	return nil
}

// DeleteRow marks the tuple at tid deleted. FK restrict semantics are
// enforced against referencing tables.
func (db *DB) DeleteRow(tx *txn.Txn, tbl *catalog.Table, tid storage.TID) error {
	if err := db.LockRow(tx, tbl, tid); err != nil {
		return err
	}
	var oldRow types.Row
	var checkErr error
	if err := tbl.Heap.View(tid, func(head *storage.Version) {
		ok, cerr := tx.CheckWritable(head)
		if cerr != nil {
			checkErr = cerr
			return
		}
		if ok {
			r, _ := tx.VisibleRow(head)
			oldRow = r.Clone()
		}
	}); err != nil {
		return err
	}
	if checkErr != nil {
		return checkErr
	}
	if oldRow == nil {
		return storage.ErrNoSuchTuple
	}
	// Restrict: no live child may reference this row.
	cat := db.catForTxn(tx)
	for _, childName := range cat.TableNames() {
		child, err := cat.Table(childName)
		if err != nil {
			continue
		}
		for _, fk := range child.Def.ForeignKey {
			if !strings.EqualFold(fk.RefTable, tbl.Def.Name) {
				continue
			}
			refVals := make(types.Row, len(fk.RefColumns))
			for i, ord := range fk.RefColumns {
				refVals[i] = oldRow[ord]
			}
			if db.parentExists(tx, child, fk.Columns, refVals) {
				return fmt.Errorf("%w: row is still referenced by %q", ErrFKViolation, childName)
			}
		}
	}
	if err := tbl.Heap.Mutate(tid, func(s storage.Slot) error {
		if ok, cerr := tx.CheckWritable(s.Head()); cerr != nil || !ok {
			if cerr != nil {
				return cerr
			}
			return storage.ErrNoSuchTuple
		}
		return s.SetXMax(tx.ID())
	}); err != nil {
		return err
	}
	// Buffer redo only after the mutate succeeds (see UpdateRow).
	db.LogRedo(tx, wal.Record{Type: wal.RecDelete, Table: tbl.Def.Name, TID: tid})
	tx.OnAbort(func() {
		// Abort cleanup is best-effort: a missing tuple has nothing to undo.
		_ = tbl.Heap.Mutate(tid, func(s storage.Slot) error {
			s.ClearXMax(tx.ID())
			return nil
		})
	})
	return nil
}

// --- SQL-level DML ---

func (db *DB) execInsert(tx *txn.Txn, s *sql.InsertStmt) (*Result, error) {
	tbl, err := db.catForTxn(tx).Table(s.Table)
	if err != nil {
		return nil, err
	}
	// Map the provided column list to table ordinals.
	colOrds := make([]int, 0, len(tbl.Def.Columns))
	if len(s.Columns) == 0 {
		for i := range tbl.Def.Columns {
			colOrds = append(colOrds, i)
		}
	} else {
		for _, name := range s.Columns {
			ord := tbl.Def.ColumnIndex(name)
			if ord < 0 {
				return nil, fmt.Errorf("engine: column %q does not exist in %q", name, s.Table)
			}
			colOrds = append(colOrds, ord)
		}
	}
	buildFull := func(partial types.Row) (types.Row, error) {
		if len(partial) != len(colOrds) {
			return nil, fmt.Errorf("engine: INSERT has %d values but %d columns", len(partial), len(colOrds))
		}
		full := make(types.Row, len(tbl.Def.Columns))
		assigned := make([]bool, len(full))
		for i, ord := range colOrds {
			full[ord] = partial[i]
			assigned[ord] = true
		}
		for i := range full {
			if assigned[i] {
				continue
			}
			if d := tbl.Def.Columns[i].Default; d != nil {
				v, err := d.Eval(nil)
				if err != nil {
					return nil, err
				}
				full[i] = v
			} else {
				full[i] = types.Null
			}
		}
		return full, nil
	}
	n := 0
	insert := func(partial types.Row) error {
		full, err := buildFull(partial)
		if err != nil {
			return err
		}
		_, ok, err := db.InsertRow(tx, tbl, full, s.OnConflict)
		if err != nil {
			return err
		}
		if ok {
			n++
		}
		return nil
	}
	if s.Select != nil {
		p, err := db.PlanSelect(s.Select)
		if err != nil {
			return nil, err
		}
		if err := p.Execute(tx, func(row types.Row) error { return insert(row.Clone()) }); err != nil {
			return nil, err
		}
	} else {
		for _, valueExprs := range s.Values {
			row := make(types.Row, len(valueExprs))
			for i, ve := range valueExprs {
				v, err := ve.Eval(nil)
				if err != nil {
					return nil, err
				}
				row[i] = v
			}
			if err := insert(row); err != nil {
				return nil, err
			}
		}
	}
	return &Result{Affected: n}, nil
}

// ScanForWrite evaluates a WHERE predicate over a table (using indexes when
// possible) and returns the TIDs and rows of matching visible tuples,
// materialized so the caller can mutate without scan re-entrancy issues.
func (db *DB) ScanForWrite(tx *txn.Txn, tbl *catalog.Table, alias string, where expr.Expr) ([]storage.TID, []types.Row, error) {
	if alias == "" {
		alias = tbl.Def.Name
	}
	sn := newScanNode(tbl, normalizeName(alias))
	if where != nil {
		canon, err := canonicalize(where, scopeOf(sn.cols), sn.cols)
		if err != nil {
			return nil, nil, err
		}
		bound, err := expr.Bind(canon, scopeOf(sn.cols))
		if err != nil {
			return nil, nil, err
		}
		sn.addFilter(bound)
	}
	var tids []storage.TID
	var rows []types.Row
	err := sn.executeTID(&execCtx{db: db, tx: tx}, func(tid storage.TID, row types.Row) error {
		tids = append(tids, tid)
		rows = append(rows, row.Clone())
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return tids, rows, nil
}

// executeTID is scanNode execution that also reports each tuple's TID.
func (n *scanNode) executeTID(ctx *execCtx, emit func(storage.TID, types.Row) error) error {
	visit := func(tid storage.TID, head *storage.Version) error {
		row, ok := ctx.tx.VisibleRow(head)
		if !ok {
			return nil
		}
		if n.filter != nil {
			keep, err := expr.EvalBool(n.filter, row)
			if err != nil {
				return err
			}
			if !keep {
				return nil
			}
		}
		return emit(tid, row)
	}
	if n.idx == nil {
		return n.tbl.Heap.Scan(visit)
	}
	seen := make(map[storage.TID]struct{})
	var scanErr error
	n.idx.AscendRange(n.lo, n.hi, func(_ []byte, tid storage.TID) bool {
		if _, dup := seen[tid]; dup {
			return true
		}
		seen[tid] = struct{}{}
		err := n.tbl.Heap.View(tid, func(head *storage.Version) {
			scanErr = visit(tid, head)
		})
		if err != nil && err != storage.ErrNoSuchTuple {
			scanErr = err
		}
		return scanErr == nil
	})
	return scanErr
}

func (db *DB) execUpdate(tx *txn.Txn, s *sql.UpdateStmt) (*Result, error) {
	tbl, err := db.catForTxn(tx).Table(s.Table)
	if err != nil {
		return nil, err
	}
	alias := s.Alias
	if alias == "" {
		alias = s.Table
	}
	scope := tbl.Def.Scope(normalizeName(alias))
	// Bind SET expressions against the table row.
	setOrds := make([]int, len(s.Set))
	setExprs := make([]expr.Expr, len(s.Set))
	for i, a := range s.Set {
		ord := tbl.Def.ColumnIndex(a.Column)
		if ord < 0 {
			return nil, fmt.Errorf("engine: column %q does not exist in %q", a.Column, s.Table)
		}
		setOrds[i] = ord
		bound, err := expr.Bind(a.Value, scope)
		if err != nil {
			return nil, err
		}
		setExprs[i] = bound
	}
	tids, rows, err := db.ScanForWrite(tx, tbl, alias, s.Where)
	if err != nil {
		return nil, err
	}
	for i, tid := range tids {
		newRow := rows[i].Clone()
		for j, ord := range setOrds {
			v, err := setExprs[j].Eval(rows[i])
			if err != nil {
				return nil, err
			}
			newRow[ord] = v
		}
		if err := db.UpdateRow(tx, tbl, tid, newRow); err != nil {
			return nil, err
		}
	}
	return &Result{Affected: len(tids)}, nil
}

func (db *DB) execDelete(tx *txn.Txn, s *sql.DeleteStmt) (*Result, error) {
	tbl, err := db.catForTxn(tx).Table(s.Table)
	if err != nil {
		return nil, err
	}
	alias := s.Alias
	if alias == "" {
		alias = s.Table
	}
	tids, _, err := db.ScanForWrite(tx, tbl, alias, s.Where)
	if err != nil {
		return nil, err
	}
	for _, tid := range tids {
		if err := db.DeleteRow(tx, tbl, tid); err != nil {
			return nil, err
		}
	}
	return &Result{Affected: len(tids)}, nil
}
