package engine

import (
	"fmt"
	"io"

	"github.com/bullfrogdb/bullfrog/internal/storage"
	"github.com/bullfrogdb/bullfrog/internal/wal"
)

// RecoverStats summarizes a WAL replay.
type RecoverStats struct {
	CommittedTxns int
	Inserts       int
	Updates       int
	Deletes       int
	Migrated      int
	// Installs lists, in log order, the migration names whose catalog-version
	// install marker reached the log. The last entry identifies the migration
	// that was active at the crash: recovery re-runs its Start (DDL is not
	// logged) and then replays RecMigrated records into its trackers (§3.5).
	Installs []string
}

// Recover rebuilds table contents (and reports committed migration-status
// records) by replaying a redo log. The database's schema must already have
// been recreated (DDL is not logged — deployments re-run their schema
// scripts, as the paper's prototype assumes). Only records belonging to
// committed transactions are applied; onMigrated receives each committed
// RecMigrated record so BullFrog's trackers can be restored (paper §3.5).
//
// readLog is called twice (commit-set pass, then apply pass); it must return
// a fresh reader over the same log each time.
func (db *DB) Recover(readLog func() (io.Reader, error), onMigrated func(tracker string, key []byte)) (RecoverStats, error) {
	var stats RecoverStats
	r1, err := readLog()
	if err != nil {
		return stats, err
	}
	committed, err := wal.CommittedSet(r1)
	if err != nil {
		return stats, err
	}
	stats.CommittedTxns = len(committed)

	r2, err := readLog()
	if err != nil {
		return stats, err
	}
	// All replayed effects are applied under one recovery transaction and
	// become visible atomically at its commit.
	tx := db.Begin()
	// Original TID -> recovered TID, per table (inserts may interleave
	// differently than original slot allocation).
	tidMap := make(map[string]map[storage.TID]storage.TID)
	mapFor := func(table string) map[storage.TID]storage.TID {
		m := tidMap[normalizeName(table)]
		if m == nil {
			m = make(map[storage.TID]storage.TID)
			tidMap[normalizeName(table)] = m
		}
		return m
	}
	err = wal.Replay(r2, func(rec wal.Record) error {
		if rec.Type == wal.RecBegin || rec.Type == wal.RecCommit || rec.Type == wal.RecAbort {
			return nil
		}
		if rec.Type == wal.RecInstall {
			// Install markers are transaction-less (XID 0): the flip was
			// published iff the marker reached the log, because the marker is
			// flushed before the version is installed.
			stats.Installs = append(stats.Installs, rec.Table)
			return nil
		}
		if !committed[rec.XID] {
			return nil
		}
		switch rec.Type {
		case wal.RecInsert:
			tbl, err := db.cat.Table(rec.Table)
			if err != nil {
				return fmt.Errorf("engine: recovery: %w", err)
			}
			newTID := tbl.Heap.Insert(tx.ID(), rec.Row)
			for _, idx := range tbl.Indexes() {
				idx.Insert(idx.Def().KeyFromRow(rec.Row), newTID)
			}
			mapFor(rec.Table)[rec.TID] = newTID
			stats.Inserts++
		case wal.RecUpdate:
			tbl, err := db.cat.Table(rec.Table)
			if err != nil {
				return fmt.Errorf("engine: recovery: %w", err)
			}
			newTID, ok := mapFor(rec.Table)[rec.TID]
			if !ok {
				// The tuple predates the log (no insert record): recovery
				// from a truncated log cannot reconstruct it.
				return fmt.Errorf("engine: recovery: update to unknown tuple %s in %q", rec.TID, rec.Table)
			}
			err = tbl.Heap.Mutate(newTID, func(s storage.Slot) error {
				old := s.Head().Row
				s.Push(tx.ID(), rec.Row)
				for _, idx := range tbl.Indexes() {
					oldKey := idx.Def().KeyFromRow(old)
					newKey := idx.Def().KeyFromRow(rec.Row)
					if string(oldKey) != string(newKey) {
						idx.Insert(newKey, newTID)
					}
				}
				return nil
			})
			if err != nil {
				return err
			}
			stats.Updates++
		case wal.RecDelete:
			tbl, err := db.cat.Table(rec.Table)
			if err != nil {
				return fmt.Errorf("engine: recovery: %w", err)
			}
			newTID, ok := mapFor(rec.Table)[rec.TID]
			if !ok {
				return fmt.Errorf("engine: recovery: delete of unknown tuple %s in %q", rec.TID, rec.Table)
			}
			if err := tbl.Heap.Mutate(newTID, func(s storage.Slot) error {
				return s.SetXMax(tx.ID())
			}); err != nil {
				return err
			}
			stats.Deletes++
		case wal.RecMigrated:
			if onMigrated != nil {
				onMigrated(rec.Table, rec.Key)
			}
			stats.Migrated++
		}
		return nil
	})
	if err != nil {
		tx.Abort()
		return stats, err
	}
	if err := tx.Commit(); err != nil {
		return stats, err
	}
	return stats, nil
}

// Vacuum prunes dead version chains across all tables, trims transaction
// state for everything below the resulting horizon, and cuts catalog versions
// no live snapshot can still resolve. Returns pruned row-version and state
// counts (catalog versions are reported via catalog.versions_live).
func (db *DB) Vacuum() (versions, states int) {
	horizon := db.tm.OldestActiveSnapshot()
	for _, name := range db.cat.TableNames() {
		tbl, err := db.cat.Table(name)
		if err != nil {
			continue
		}
		versions += tbl.Heap.Vacuum(func(v *storage.Version) bool {
			return db.versionDeadBefore(v, horizon)
		})
	}
	states = db.tm.PruneStates(horizon)
	db.cat.Prune(horizon)
	return versions, states
}

// versionDeadBefore reports whether v was deleted/superseded by a transaction
// committed at or before the horizon sequence.
func (db *DB) versionDeadBefore(v *storage.Version, horizon uint64) bool {
	if v.XMax == 0 {
		return false
	}
	return db.tm.CommittedAtOrBefore(v.XMax, horizon)
}
