package engine

import (
	"fmt"
	"io"

	"github.com/bullfrogdb/bullfrog/internal/storage"
	"github.com/bullfrogdb/bullfrog/internal/txn"
	"github.com/bullfrogdb/bullfrog/internal/wal"
)

// RecoverStats summarizes a WAL replay.
type RecoverStats struct {
	CommittedTxns int
	Inserts       int
	Updates       int
	Deletes       int
	Migrated      int
	// Installs lists, in log order, the install markers (migration name plus
	// version metadata) that reached the log. The last entry identifies the
	// migration that was active at the crash: recovery re-runs its Start (DDL
	// is not logged) and then replays RecMigrated records into its trackers
	// (§3.5). Replayed markers also rebuild the in-memory install history, so
	// the schema version registry survives the crash.
	Installs []InstallRecord
	// FromCheckpoint reports whether a checkpoint snapshot seeded the replay
	// (RecoverFrom only).
	FromCheckpoint bool
	// SnapshotRows counts rows restored from the checkpoint snapshot, as
	// opposed to replayed from the log (RecoverFrom only).
	SnapshotRows int
}

// applier replays committed data records into the database under one
// recovery transaction. It is shared by the legacy two-pass Recover and the
// checkpoint-aware single-pass RecoverFrom.
type applier struct {
	db    *DB
	tx    *txn.Txn
	stats *RecoverStats
	// Original TID -> recovered TID, per table (inserts may interleave
	// differently than original slot allocation).
	tidMap     map[string]map[storage.TID]storage.TID
	onMigrated func(tracker string, key []byte)
}

func newApplier(db *DB, tx *txn.Txn, stats *RecoverStats, onMigrated func(string, []byte)) *applier {
	return &applier{
		db: db, tx: tx, stats: stats,
		tidMap:     make(map[string]map[storage.TID]storage.TID),
		onMigrated: onMigrated,
	}
}

func (a *applier) mapFor(table string) map[storage.TID]storage.TID {
	m := a.tidMap[normalizeName(table)]
	if m == nil {
		m = make(map[storage.TID]storage.TID)
		a.tidMap[normalizeName(table)] = m
	}
	return m
}

// apply replays one committed data record. Begin/commit/abort/install/
// checkpoint records are the caller's to route.
func (a *applier) apply(rec wal.Record) error {
	switch rec.Type {
	case wal.RecInsert:
		tbl, err := a.db.cat.Table(rec.Table)
		if err != nil {
			return fmt.Errorf("engine: recovery: %w", err)
		}
		newTID := tbl.Heap.Insert(a.tx.ID(), rec.Row)
		for _, idx := range tbl.Indexes() {
			idx.Insert(idx.Def().KeyFromRow(rec.Row), newTID)
		}
		a.mapFor(rec.Table)[rec.TID] = newTID
		a.stats.Inserts++
	case wal.RecUpdate:
		tbl, err := a.db.cat.Table(rec.Table)
		if err != nil {
			return fmt.Errorf("engine: recovery: %w", err)
		}
		newTID, ok := a.mapFor(rec.Table)[rec.TID]
		if !ok {
			// The tuple predates the log (no insert record): recovery
			// from a truncated log cannot reconstruct it.
			return fmt.Errorf("engine: recovery: update to unknown tuple %s in %q", rec.TID, rec.Table)
		}
		err = tbl.Heap.Mutate(newTID, func(s storage.Slot) error {
			old := s.Head().Row
			s.Push(a.tx.ID(), rec.Row)
			for _, idx := range tbl.Indexes() {
				oldKey := idx.Def().KeyFromRow(old)
				newKey := idx.Def().KeyFromRow(rec.Row)
				if string(oldKey) != string(newKey) {
					idx.Insert(newKey, newTID)
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		a.stats.Updates++
	case wal.RecDelete:
		tbl, err := a.db.cat.Table(rec.Table)
		if err != nil {
			return fmt.Errorf("engine: recovery: %w", err)
		}
		newTID, ok := a.mapFor(rec.Table)[rec.TID]
		if !ok {
			return fmt.Errorf("engine: recovery: delete of unknown tuple %s in %q", rec.TID, rec.Table)
		}
		if err := tbl.Heap.Mutate(newTID, func(s storage.Slot) error {
			return s.SetXMax(a.tx.ID())
		}); err != nil {
			return err
		}
		a.stats.Deletes++
	case wal.RecMigrated:
		if a.onMigrated != nil {
			a.onMigrated(rec.Table, rec.Key)
		}
		a.stats.Migrated++
	}
	return nil
}

// Recover rebuilds table contents (and reports committed migration-status
// records) by replaying a redo log. The database's schema must already have
// been recreated (DDL is not logged — deployments re-run their schema
// scripts, as the paper's prototype assumes). Only records belonging to
// committed transactions are applied; onMigrated receives each committed
// RecMigrated record so BullFrog's trackers can be restored (paper §3.5).
//
// This is the legacy two-pass path for logs without a checkpoint: readLog is
// called twice (commit-set pass, then apply pass) and must return a fresh
// reader over the same log each time. Checkpoint-aware deployments recover
// through RecoverFrom, which replays post-checkpoint segments in a single
// pass.
func (db *DB) Recover(readLog func() (io.Reader, error), onMigrated func(tracker string, key []byte)) (RecoverStats, error) {
	var stats RecoverStats
	r1, err := readLog()
	if err != nil {
		return stats, err
	}
	committed, err := wal.CommittedSet(r1)
	if err != nil {
		return stats, err
	}
	stats.CommittedTxns = len(committed)

	r2, err := readLog()
	if err != nil {
		return stats, err
	}
	// All replayed effects are applied under one recovery transaction and
	// become visible atomically at its commit.
	tx := db.Begin()
	ap := newApplier(db, tx, &stats, onMigrated)
	err = wal.Replay(r2, func(rec wal.Record) error {
		switch rec.Type {
		case wal.RecBegin, wal.RecCommit, wal.RecAbort, wal.RecCheckpoint:
			return nil
		case wal.RecInstall:
			// Install markers are transaction-less (XID 0): the flip was
			// published iff the marker reached the log, because the marker is
			// flushed before the version is installed.
			stats.Installs = append(stats.Installs, installRec(rec))
			return nil
		}
		if !committed[rec.XID] {
			return nil
		}
		return ap.apply(rec)
	})
	if err != nil {
		tx.Abort()
		return stats, err
	}
	if err := tx.Commit(); err != nil {
		return stats, err
	}
	db.mergeInstallHistory(stats.Installs)
	return stats, nil
}

// installRec lifts a WAL install marker into an InstallRecord (the Key field
// carries the opaque version metadata).
func installRec(rec wal.Record) InstallRecord {
	return InstallRecord{Name: rec.Table, Meta: append([]byte(nil), rec.Key...)}
}

// mergeInstallHistory rebuilds the in-memory install history from replayed
// markers. Durable markers win: an entry re-created in memory by re-running
// the active migration's Start before recovery (the documented call order)
// carries a fresh timestamp/metadata, and the logged marker is the version
// of record. Entries with no surviving marker (the flip raced the crash)
// keep their re-created form, appended after the durable prefix.
func (db *DB) mergeInstallHistory(replayed []InstallRecord) {
	if len(replayed) == 0 {
		return
	}
	seen := make(map[string]bool, len(replayed))
	for _, r := range replayed {
		seen[r.Name] = true
	}
	db.installMu.Lock()
	merged := append([]InstallRecord(nil), replayed...)
	for _, r := range db.installs {
		if !seen[r.Name] {
			merged = append(merged, r)
		}
	}
	db.installs = merged
	db.installMu.Unlock()
}

// RecoverFrom rebuilds table contents from a recovery source: the checkpoint
// snapshot (when present) seeds heaps, indexes, and the TID map, then the
// post-checkpoint segments replay in a single buffered pass. Because commit-
// time batch logging appends a transaction's records together with its
// commit record, uncommitted work never reaches the log; records are staged
// per-XID and applied when their commit record arrives, so a torn tail (a
// batch whose commit record did not survive) is dropped without a separate
// commit-set pass over the whole log.
//
// The checkpoint stream's RecInsert records carry each tuple's pre-crash TID,
// which seeds the TID map exactly like a replayed insert would — updates and
// deletes in the post-checkpoint segments resolve against snapshot rows
// transparently. Returns the same stats as Recover, plus FromCheckpoint /
// SnapshotRows, and the checkpoint's install history prepended to Installs.
func (db *DB) RecoverFrom(src *wal.RecoverySource, onMigrated func(tracker string, key []byte)) (RecoverStats, error) {
	var stats RecoverStats
	tx := db.Begin()
	ap := newApplier(db, tx, &stats, onMigrated)

	fail := func(err error) (RecoverStats, error) {
		tx.Abort()
		return stats, err
	}

	if src.Meta != nil {
		cr, err := src.OpenCheckpoint()
		if err != nil {
			return fail(err)
		}
		stats.FromCheckpoint = true
		insertsBefore := 0
		err = wal.Replay(cr, func(rec wal.Record) error {
			switch rec.Type {
			case wal.RecCheckpoint:
				return nil // header
			case wal.RecInstall:
				stats.Installs = append(stats.Installs, installRec(rec))
				return nil
			case wal.RecInsert:
				insertsBefore++
				return ap.apply(rec)
			case wal.RecMigrated:
				return ap.apply(rec)
			default:
				return fmt.Errorf("engine: recovery: unexpected %s record in checkpoint %s: %w",
					rec.Type, src.Checkpoint, wal.ErrCorrupt)
			}
		})
		cerr := cr.Close()
		if err != nil {
			return fail(err)
		}
		if cerr != nil {
			return fail(cerr)
		}
		stats.SnapshotRows = insertsBefore
		stats.Inserts -= insertsBefore // snapshot rows are not replayed inserts
	}

	sr, err := src.OpenSegments()
	if err != nil {
		return fail(err)
	}
	// Records staged per transaction until its commit record arrives.
	pending := make(map[uint64][]wal.Record)
	err = wal.Replay(sr, func(rec wal.Record) error {
		switch rec.Type {
		case wal.RecBegin, wal.RecCheckpoint:
			return nil
		case wal.RecInstall:
			stats.Installs = append(stats.Installs, installRec(rec))
			return nil
		case wal.RecCommit:
			stats.CommittedTxns++
			batch := pending[rec.XID]
			delete(pending, rec.XID)
			for _, r := range batch {
				if err := ap.apply(r); err != nil {
					return err
				}
			}
			return nil
		case wal.RecAbort:
			// Legacy record-at-a-time logs may carry abort records; batch
			// logging never writes them.
			delete(pending, rec.XID)
			return nil
		default:
			pending[rec.XID] = append(pending[rec.XID], rec)
			return nil
		}
	})
	serr := sr.Close()
	if err != nil {
		return fail(err)
	}
	if serr != nil {
		return fail(serr)
	}
	// Anything still pending lost its commit record to the crash: dropped.
	if err := tx.Commit(); err != nil {
		return stats, err
	}
	db.mergeInstallHistory(stats.Installs)
	return stats, nil
}

// Vacuum prunes dead version chains across all tables, trims transaction
// state for everything below the resulting horizon, and cuts catalog versions
// no live snapshot can still resolve. Returns pruned row-version and state
// counts (catalog versions are reported via catalog.versions_live).
func (db *DB) Vacuum() (versions, states int) {
	horizon := db.tm.OldestActiveSnapshot()
	for _, name := range db.cat.TableNames() {
		tbl, err := db.cat.Table(name)
		if err != nil {
			continue
		}
		versions += tbl.Heap.Vacuum(func(v *storage.Version) bool {
			return db.versionDeadBefore(v, horizon)
		})
	}
	states = db.tm.PruneStates(horizon)
	db.cat.Prune(horizon)
	return versions, states
}

// versionDeadBefore reports whether v was deleted/superseded by a transaction
// committed at or before the horizon sequence.
func (db *DB) versionDeadBefore(v *storage.Version, horizon uint64) bool {
	if v.XMax == 0 {
		return false
	}
	return db.tm.CommittedAtOrBefore(v.XMax, horizon)
}
