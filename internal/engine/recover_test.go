package engine

import (
	"bytes"
	"io"
	"testing"

	"github.com/bullfrogdb/bullfrog/internal/wal"
)

const recoverSchema = `
	CREATE TABLE accounts (id INT PRIMARY KEY, owner CHAR(10), bal FLOAT);
	CREATE INDEX accounts_owner ON accounts (owner);
`

func TestRecoverRebuildsTablesAndIndexes(t *testing.T) {
	var logBuf bytes.Buffer
	db := New(Options{WAL: wal.NewWriter(&logBuf)})
	mustExec(t, db, recoverSchema)
	mustExec(t, db, `INSERT INTO accounts VALUES (1, 'alice', 100), (2, 'bob', 200), (3, 'carol', 300)`)
	mustExec(t, db, `UPDATE accounts SET bal = bal + 50 WHERE id = 2`)
	mustExec(t, db, `DELETE FROM accounts WHERE id = 3`)
	// An aborted transaction's records must not replay.
	tx := db.Begin()
	db.ExecTx(tx, `INSERT INTO accounts VALUES (4, 'mallory', 1)`)
	db.Abort(tx)
	// A migration-status record inside a committed txn.
	tx2 := db.Begin()
	db.LogRedo(tx2, wal.Record{Type: wal.RecMigrated, Table: "split:customer", Key: []byte{7}})
	db.Commit(tx2)

	// "Crash": build a fresh database, re-run DDL, replay.
	db2 := New(Options{})
	mustExec(t, db2, recoverSchema)
	var migrated []string
	stats, err := db2.Recover(func() (io.Reader, error) {
		return bytes.NewReader(logBuf.Bytes()), nil
	}, func(tracker string, key []byte) {
		migrated = append(migrated, tracker)
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Inserts != 3 || stats.Updates != 1 || stats.Deletes != 1 || stats.Migrated != 1 {
		t.Errorf("stats: %+v", stats)
	}
	if len(migrated) != 1 || migrated[0] != "split:customer" {
		t.Errorf("migrated callbacks: %v", migrated)
	}

	res := mustExec(t, db2, `SELECT id, bal FROM accounts ORDER BY id`)
	if len(res.Rows) != 2 {
		t.Fatalf("recovered rows: %v", res.Rows)
	}
	if res.Rows[0][0].Int() != 1 || res.Rows[0][1].Float() != 100 {
		t.Errorf("row 1: %v", res.Rows[0])
	}
	if res.Rows[1][0].Int() != 2 || res.Rows[1][1].Float() != 250 {
		t.Errorf("row 2: %v", res.Rows[1])
	}
	// Secondary index must be functional after recovery.
	res = mustExec(t, db2, `SELECT id FROM accounts WHERE owner = 'bob'`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 2 {
		t.Errorf("index after recovery: %v", res.Rows)
	}
	// The aborted insert is gone.
	res = mustExec(t, db2, `SELECT * FROM accounts WHERE id = 4`)
	if len(res.Rows) != 0 {
		t.Error("aborted insert resurrected by recovery")
	}
}

func TestRecoverTornLog(t *testing.T) {
	var logBuf bytes.Buffer
	db := New(Options{WAL: wal.NewWriter(&logBuf)})
	mustExec(t, db, `CREATE TABLE t (a INT PRIMARY KEY)`)
	mustExec(t, db, `INSERT INTO t VALUES (1)`)
	full := append([]byte(nil), logBuf.Bytes()...)

	// Truncate mid-record: replay applies only complete committed txns.
	torn := full[:len(full)-3]
	db2 := New(Options{})
	mustExec(t, db2, `CREATE TABLE t (a INT PRIMARY KEY)`)
	stats, err := db2.Recover(func() (io.Reader, error) {
		return bytes.NewReader(torn), nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The torn tail cut the commit record, so nothing replays.
	if stats.Inserts != 0 {
		t.Errorf("torn log replayed %d inserts", stats.Inserts)
	}
}
