package engine

import (
	"testing"

	"github.com/bullfrogdb/bullfrog/internal/sql"
	"github.com/bullfrogdb/bullfrog/internal/types"
)

func mustSelect(t *testing.T, src string) *sql.SelectStmt {
	t.Helper()
	s, err := sql.ParseOne(src)
	if err != nil {
		t.Fatal(err)
	}
	return s.(*sql.SelectStmt)
}

func TestPlanCacheReuse(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE TABLE t (a INT PRIMARY KEY, b INT);
		INSERT INTO t VALUES (1, 10), (2, 20)`)

	built0 := db.Obs().Engine.PlansBuilt.Load()
	reused0 := db.Obs().Engine.PlansReused.Load()
	mustExec(t, db, `SELECT b FROM t WHERE a = 1`)
	if got := db.Obs().Engine.PlansBuilt.Load() - built0; got != 1 {
		t.Fatalf("plans built on cold query = %d, want 1", got)
	}
	mustExec(t, db, `SELECT b FROM t WHERE a = 1`)
	mustExec(t, db, `SELECT b FROM t WHERE a = 1`)
	if got := db.Obs().Engine.PlansReused.Load() - reused0; got != 2 {
		t.Fatalf("plans reused on warm queries = %d, want 2", got)
	}
	if got := db.Obs().Engine.PlansBuilt.Load() - built0; got != 1 {
		t.Fatalf("warm queries rebuilt plans: built = %d, want 1", got)
	}
	// A textually different statement is a different cache entry.
	mustExec(t, db, `SELECT b FROM t WHERE a = 2`)
	if got := db.PlanCacheLen(); got != 2 {
		t.Fatalf("cache entries = %d, want 2", got)
	}
	// Literal type matters: 'x' (string) and x (column) must not collide,
	// and string literals keep their quotes in the key.
	if _, err := db.Exec(`SELECT 'a' FROM t`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`SELECT a FROM t`); err != nil {
		t.Fatal(err)
	}
	if got := db.PlanCacheLen(); got != 4 {
		t.Fatalf("cache entries after literal/column pair = %d, want 4", got)
	}
}

func TestPlanCacheDDLInvalidation(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE TABLE t (a INT PRIMARY KEY, b INT)`)
	mustExec(t, db, `SELECT a FROM t`)
	if db.PlanCacheLen() == 0 {
		t.Fatal("cache should be warm before DDL")
	}
	mustExec(t, db, `ALTER TABLE t RENAME TO t2`)
	if got := db.PlanCacheLen(); got != 0 {
		t.Fatalf("cache entries after DDL = %d, want 0", got)
	}
	// A stale cached plan for `SELECT a FROM t` would still resolve the old
	// name; after invalidation the query correctly fails.
	if _, err := db.Exec(`SELECT a FROM t`); err == nil {
		t.Fatal("query against renamed-away table should fail after DDL invalidation")
	}
	res := mustExec(t, db, `SELECT * FROM t2`)
	if len(res.Columns) != 2 {
		t.Fatalf("columns after RENAME = %v", res.Columns)
	}
	mustExec(t, db, `CREATE TABLE u (x INT)`)
	if got := db.PlanCacheLen(); got != 0 {
		t.Fatalf("cache entries after CREATE = %d, want 0", got)
	}
}

// TestPlanCacheBoundRows checks the migration-path contract: one cached
// bound plan serves executions with different bound row sets (rows travel
// through the execution context, not the plan tree).
func TestPlanCacheBoundRows(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE TABLE src (a INT PRIMARY KEY, b INT)`)
	sel := mustSelect(t, `SELECT s.a, s.b FROM src s`)

	reused0 := db.Obs().Engine.PlansReused.Load()
	p1, err := db.PlanSelectBound(sel, "s")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := db.PlanSelectBound(sel, "s")
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("identical bound plans should come from the cache")
	}
	if got := db.Obs().Engine.PlansReused.Load() - reused0; got != 1 {
		t.Fatalf("bound-plan reuse count = %d, want 1", got)
	}

	run := func(p *Plan, rows []types.Row) []types.Row {
		tx := db.Begin()
		defer db.Abort(tx)
		var out []types.Row
		if err := p.ExecuteBound(tx, rows, func(r types.Row) error {
			out = append(out, append(types.Row{}, r...))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	out1 := run(p1, []types.Row{{types.NewInt(1), types.NewInt(10)}})
	out2 := run(p2, []types.Row{{types.NewInt(2), types.NewInt(20)}, {types.NewInt(3), types.NewInt(30)}})
	if len(out1) != 1 || out1[0][0].Int() != 1 {
		t.Fatalf("first bound execution: %v", out1)
	}
	if len(out2) != 2 || out2[0][0].Int() != 2 || out2[1][0].Int() != 3 {
		t.Fatalf("second bound execution (same cached plan): %v", out2)
	}

	// A different bound alias is a different plan shape, not a cache hit.
	sel2 := mustSelect(t, `SELECT q.a, q.b FROM src q`)
	if _, err := db.PlanSelectBound(sel2, "q"); err != nil {
		t.Fatal(err)
	}
	if got := db.PlanCacheLen(); got != 2 {
		t.Fatalf("cache entries = %d, want 2", got)
	}
}

func TestPlanCacheExplicitInvalidate(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE TABLE t (a INT)`)
	mustExec(t, db, `SELECT a FROM t`)
	if db.PlanCacheLen() == 0 {
		t.Fatal("cache should be warm")
	}
	db.InvalidatePlans()
	if got := db.PlanCacheLen(); got != 0 {
		t.Fatalf("cache entries after InvalidatePlans = %d, want 0", got)
	}
}
