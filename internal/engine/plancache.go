package engine

import (
	"container/list"
	"strconv"
	"strings"
	"sync"

	"github.com/bullfrogdb/bullfrog/internal/catalog"
	"github.com/bullfrogdb/bullfrog/internal/sql"
)

// planCacheCap bounds the number of cached plans. Entries are evicted LRU;
// TPC-C plus a handful of migration transforms fits in a few dozen entries,
// so the cap only matters for adversarial workloads with unbounded distinct
// statement shapes (e.g. literals inlined into every query).
const planCacheCap = 512

// planCache is an LRU of compiled SELECT plans keyed on the statement's
// canonical text (plus the bound-alias shape for migration transforms).
// Cached plans are safe for concurrent Execute calls: every executor node
// keeps per-execution state in locals, and bound rows travel in the execCtx,
// never in the plan itself.
//
// Invalidation is coarse: any DDL (and any migration start or catalog
// mutation done by internal/core outside the SQL path) clears the whole
// cache. Plans embed catalog.Table pointers and index choices resolved at
// build time, so anything that changes the catalog must drop them all.
type planCache struct {
	mu sync.Mutex
	ll *list.List // front = most recently used
	m  map[string]*list.Element
}

type planCacheEntry struct {
	key  string
	plan *Plan
}

func newPlanCache() *planCache {
	return &planCache{ll: list.New(), m: make(map[string]*list.Element)}
}

func (c *planCache) get(key string) *Plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil
	}
	c.ll.MoveToFront(el)
	return el.Value.(*planCacheEntry).plan
}

func (c *planCache) put(key string, p *Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*planCacheEntry).plan = p
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&planCacheEntry{key: key, plan: p})
	if c.ll.Len() > planCacheCap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*planCacheEntry).key)
	}
}

func (c *planCache) invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.m = make(map[string]*list.Element)
}

func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// InvalidatePlans drops every cached plan. The engine calls it after DDL;
// internal/core calls it when a migration starts, completes (input tables may
// be dropped), or is reset, since those paths mutate the catalog without
// going through SQL.
func (db *DB) InvalidatePlans() { db.plans.invalidate() }

// PlanCacheLen reports the number of cached plans (tests and diagnostics).
func (db *DB) PlanCacheLen() int { return db.plans.len() }

// versionedCacheKey prefixes the canonical statement text with the catalog
// version's identity, so plans compiled against different schema versions
// (e.g. a snapshot pinned before a migration's install vs after) can never
// be confused for one another. Version identity — not sequence — is the key
// component: in-place DDL republishes the head at the same sequence but with
// a fresh identity.
func versionedCacheKey(v *catalog.Version, s *sql.SelectStmt, boundAlias string) string {
	return "v" + strconv.FormatUint(v.ID(), 10) + "|" + selectCacheKey(s, boundAlias)
}

// selectCacheKey renders a SELECT to canonical text for cache keying. The
// sql package has no statement printer, so this is it: identifiers appear as
// parsed, expressions via expr's String (which quotes string literals, so
// text and numeric literals cannot collide; int/float literals that render
// identically compare numerically across kinds anyway). Differences in input
// case cost a cache miss, never a false hit.
func selectCacheKey(s *sql.SelectStmt, boundAlias string) string {
	var b strings.Builder
	b.Grow(128)
	writeSelectKey(&b, s)
	if boundAlias != "" {
		b.WriteString("|bound:")
		b.WriteString(boundAlias)
	}
	return b.String()
}

func writeSelectKey(b *strings.Builder, s *sql.SelectStmt) {
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteByte(',')
		}
		switch {
		case it.Star && it.StarTable != "":
			b.WriteString(it.StarTable)
			b.WriteString(".*")
		case it.Star:
			b.WriteByte('*')
		default:
			b.WriteString(it.Expr.String())
			if it.Alias != "" {
				b.WriteString(" AS ")
				b.WriteString(it.Alias)
			}
		}
	}
	b.WriteString(" FROM ")
	for i, ref := range s.From {
		if i > 0 {
			b.WriteByte(',')
		}
		if ref.Subquery != nil {
			b.WriteByte('(')
			writeSelectKey(b, ref.Subquery)
			b.WriteByte(')')
		} else {
			b.WriteString(ref.Name)
		}
		if ref.Alias != "" {
			b.WriteString(" AS ")
			b.WriteString(ref.Alias)
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, e := range s.GroupBy {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(e.String())
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING ")
		b.WriteString(s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(o.Expr.String())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		b.WriteString(" LIMIT ")
		b.WriteString(strconv.FormatInt(s.Limit, 10))
	}
}
