package engine

import (
	"strings"
	"testing"

	"github.com/bullfrogdb/bullfrog/internal/expr"
	"github.com/bullfrogdb/bullfrog/internal/sql"
	"github.com/bullfrogdb/bullfrog/internal/types"
)

func TestExplainShowsEveryOperator(t *testing.T) {
	db := newTestDB(t)
	flightsSchema(t, db)
	cases := []struct {
		query string
		wants []string
	}{
		{`SELECT * FROM flights`, []string{"Seq Scan on flights"}},
		{`SELECT * FROM flights WHERE flightid = 'AA101'`, []string{"Index Scan"}},
		{`SELECT flightid, COUNT(*) FROM flewon GROUP BY flightid`, []string{"HashAggregate", "Group Key"}},
		{`SELECT DISTINCT flightid FROM flewon`, []string{"Distinct"}},
		{`SELECT flightid FROM flights ORDER BY flightid DESC LIMIT 1`, []string{"Sort", "DESC", "Limit 1"}},
		{`SELECT * FROM flights f, flewon fi WHERE f.flightid = fi.flightid`, []string{"Nested Loop"}},
		{`SELECT * FROM flights, flewon`, []string{"Nested Loop"}},
		{`SELECT v.flightid FROM (SELECT flightid FROM flights) AS v`, []string{"Subquery Scan v"}},
	}
	for _, c := range cases {
		res := mustExec(t, db, "EXPLAIN "+c.query)
		for _, want := range c.wants {
			if !strings.Contains(res.Explain, want) {
				t.Errorf("EXPLAIN %s missing %q:\n%s", c.query, want, res.Explain)
			}
		}
	}
}

func TestInferKindTable(t *testing.T) {
	cols := []Column{{Name: "i", Kind: types.KindInt}, {Name: "f", Kind: types.KindFloat}, {Name: "s", Kind: types.KindString}}
	intCol := expr.NewColIdx("i", 0)
	floatCol := expr.NewColIdx("f", 1)
	strCol := expr.NewColIdx("s", 2)
	one := expr.NewConst(types.NewInt(1))
	cases := []struct {
		e    expr.Expr
		want types.Kind
	}{
		{intCol, types.KindInt},
		{floatCol, types.KindFloat},
		{one, types.KindInt},
		{expr.NewBinOp(expr.OpAdd, intCol, one), types.KindInt},
		{expr.NewBinOp(expr.OpAdd, intCol, floatCol), types.KindFloat},
		{expr.NewBinOp(expr.OpDiv, intCol, one), types.KindFloat},
		{expr.NewBinOp(expr.OpAdd, strCol, strCol), types.KindString},
		{expr.NewBinOp(expr.OpEq, intCol, one), types.KindBool},
		{&expr.Not{E: intCol}, types.KindBool},
		{&expr.IsNull{E: intCol}, types.KindBool},
		{&expr.InList{E: intCol, List: []expr.Expr{one}}, types.KindBool},
		{&expr.Func{Name: "EXTRACT"}, types.KindInt},
		{&expr.Func{Name: "LOWER"}, types.KindString},
		{&expr.Func{Name: "ABS", Args: []expr.Expr{floatCol}}, types.KindFloat},
		{&expr.Func{Name: "COALESCE", Args: []expr.Expr{expr.NewConst(types.Null), intCol}}, types.KindInt},
		{&expr.Case{Whens: []expr.When{{Cond: expr.NewConst(types.NewBool(true)), Then: strCol}}}, types.KindString},
		{&expr.Agg{Name: "COUNT"}, types.KindInt},
		{&expr.Agg{Name: "AVG", Arg: intCol}, types.KindFloat},
		{expr.NewConst(types.Null), types.KindNull},
	}
	for _, c := range cases {
		if got := inferKind(c.e, cols); got != c.want {
			t.Errorf("inferKind(%s) = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestOrderByOutputAliasOnly(t *testing.T) {
	db := newTestDB(t)
	flightsSchema(t, db)
	// ORDER BY binds against output columns; a non-output column errors.
	mustExec(t, db, `SELECT flightid AS f FROM flights ORDER BY f`)
	mustFail(t, db, `SELECT flightid AS f FROM flights ORDER BY capacity`, "ORDER BY")
}

func TestHavingWithoutGroupByRejected(t *testing.T) {
	db := newTestDB(t)
	flightsSchema(t, db)
	mustFail(t, db, `SELECT flightid FROM flights HAVING flightid = 'x'`, "HAVING")
	// HAVING over a global aggregate is allowed.
	res := mustExec(t, db, `SELECT COUNT(*) FROM flights HAVING COUNT(*) > 1`)
	if len(res.Rows) != 1 {
		t.Errorf("global HAVING: %v", res.Rows)
	}
	res = mustExec(t, db, `SELECT COUNT(*) FROM flights HAVING COUNT(*) > 100`)
	if len(res.Rows) != 0 {
		t.Errorf("failing global HAVING should filter the row: %v", res.Rows)
	}
}

func TestGroupByExpression(t *testing.T) {
	db := newTestDB(t)
	flightsSchema(t, db)
	// Group by a computed expression; the item repeats the expression.
	res := mustExec(t, db, `SELECT capacity / 100 AS bucket, COUNT(*) FROM flights GROUP BY capacity / 100 ORDER BY bucket`)
	if len(res.Rows) != 2 {
		t.Errorf("expression groups: %v", res.Rows)
	}
}

func TestPlanColumnsAndNames(t *testing.T) {
	db := newTestDB(t)
	flightsSchema(t, db)
	stmt, err := sql.ParseOne(`SELECT flightid AS fid, capacity + 1 AS cap1 FROM flights`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := db.PlanSelect(stmt.(*sql.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	names := p.ColumnNames()
	if names[0] != "fid" || names[1] != "cap1" {
		t.Errorf("names: %v", names)
	}
	cols := p.Columns()
	if cols[0].Kind != types.KindString || cols[1].Kind != types.KindInt {
		t.Errorf("kinds: %v", cols)
	}
}
