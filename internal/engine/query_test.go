package engine

import (
	"fmt"
	"strings"
	"testing"

	"github.com/bullfrogdb/bullfrog/internal/expr"
	"github.com/bullfrogdb/bullfrog/internal/sql"
	"github.com/bullfrogdb/bullfrog/internal/types"
)

func parseWhere(src string) (expr.Expr, error) { return sql.ParseExpr(src) }

func TestJoins(t *testing.T) {
	db := newTestDB(t)
	flightsSchema(t, db)
	// Implicit cross join + equality predicate (hash or index join).
	res := mustExec(t, db, `
		SELECT f.flightid, fi.passenger_count, (f.capacity - fi.passenger_count) AS empty_seats
		FROM flights f, flewon fi
		WHERE f.flightid = fi.flightid
		ORDER BY empty_seats`)
	if len(res.Rows) != 3 {
		t.Fatalf("join rows: %v", res.Rows)
	}
	if res.Rows[0][2].Int() != 20 { // UA202: 220-200
		t.Errorf("smallest empty_seats: %v", res.Rows[0])
	}
	// JOIN ... ON syntax.
	res = mustExec(t, db, `
		SELECT COUNT(*) FROM flights JOIN flewon ON flights.flightid = flewon.flightid
		WHERE flights.capacity > 200`)
	if res.Rows[0][0].Int() != 1 {
		t.Errorf("filtered join count: %v", res.Rows[0])
	}
	// Cartesian product.
	res = mustExec(t, db, `SELECT COUNT(*) FROM flights, flewon`)
	if res.Rows[0][0].Int() != 6 {
		t.Errorf("cartesian count: %v", res.Rows[0])
	}
	// Join with non-equi residual.
	// Only AA101's 150 < 180-25; 160 and 200 fail their bounds.
	res = mustExec(t, db, `
		SELECT COUNT(*) FROM flights f, flewon fi
		WHERE f.flightid = fi.flightid AND fi.passenger_count < f.capacity - 25`)
	if res.Rows[0][0].Int() != 1 {
		t.Errorf("residual join count: %v", res.Rows[0])
	}
}

func TestAggregates(t *testing.T) {
	db := newTestDB(t)
	flightsSchema(t, db)
	res := mustExec(t, db, `
		SELECT flightid, SUM(passenger_count) AS total, COUNT(*) AS n,
		       MIN(passenger_count) AS lo, MAX(passenger_count) AS hi,
		       AVG(passenger_count) AS mean
		FROM flewon GROUP BY flightid ORDER BY flightid`)
	if len(res.Rows) != 2 {
		t.Fatalf("groups: %v", res.Rows)
	}
	aa := res.Rows[0]
	if aa[0].Str() != "AA101" || aa[1].Int() != 310 || aa[2].Int() != 2 ||
		aa[3].Int() != 150 || aa[4].Int() != 160 || aa[5].Float() != 155 {
		t.Errorf("AA101 aggregates: %v", aa)
	}
	// Global aggregate without GROUP BY.
	res = mustExec(t, db, `SELECT SUM(capacity), COUNT(*) FROM flights`)
	if res.Rows[0][0].Int() != 400 || res.Rows[0][1].Int() != 2 {
		t.Errorf("global aggregates: %v", res.Rows[0])
	}
	// Global aggregate over empty input emits one row.
	res = mustExec(t, db, `SELECT COUNT(*), SUM(capacity) FROM flights WHERE capacity > 999`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 0 || !res.Rows[0][1].IsNull() {
		t.Errorf("empty aggregate: %v", res.Rows)
	}
	// COUNT(DISTINCT ...) — the StockLevel shape.
	res = mustExec(t, db, `SELECT COUNT(DISTINCT flightid) FROM flewon`)
	if res.Rows[0][0].Int() != 2 {
		t.Errorf("count distinct: %v", res.Rows[0])
	}
	// HAVING.
	res = mustExec(t, db, `SELECT flightid FROM flewon GROUP BY flightid HAVING COUNT(*) > 1`)
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "AA101" {
		t.Errorf("having: %v", res.Rows)
	}
	// Ungrouped column must be rejected.
	mustFail(t, db, `SELECT passenger_count FROM flewon GROUP BY flightid`, "GROUP BY")
}

func TestDistinctOrderLimit(t *testing.T) {
	db := newTestDB(t)
	flightsSchema(t, db)
	res := mustExec(t, db, `SELECT DISTINCT flightid FROM flewon ORDER BY flightid DESC`)
	if len(res.Rows) != 2 || res.Rows[0][0].Str() != "UA202" {
		t.Errorf("distinct order: %v", res.Rows)
	}
	res = mustExec(t, db, `SELECT passenger_count FROM flewon ORDER BY passenger_count LIMIT 2`)
	if len(res.Rows) != 2 || res.Rows[0][0].Int() != 150 || res.Rows[1][0].Int() != 160 {
		t.Errorf("order limit: %v", res.Rows)
	}
	res = mustExec(t, db, `SELECT passenger_count FROM flewon LIMIT 0`)
	if len(res.Rows) != 0 {
		t.Errorf("limit 0: %v", res.Rows)
	}
}

func TestViewExpansion(t *testing.T) {
	db := newTestDB(t)
	flightsSchema(t, db)
	mustExec(t, db, `CREATE VIEW flewoninfo_view AS (
		SELECT f.flightid AS fid, flightdate, passenger_count,
		       (capacity - passenger_count) AS empty_seats
		FROM flights f, flewon fi
		WHERE f.flightid = fi.flightid)`)
	res := mustExec(t, db, `SELECT fid, empty_seats FROM flewoninfo_view
		WHERE fid = 'AA101' AND EXTRACT(DAY FROM flightdate) = 9`)
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "AA101" || res.Rows[0][1].Int() != 30 {
		t.Errorf("view query: %v", res.Rows)
	}
	// Views compose with aggregation over them.
	res = mustExec(t, db, `SELECT fid, COUNT(*) FROM flewoninfo_view GROUP BY fid ORDER BY fid`)
	if len(res.Rows) != 2 || res.Rows[0][1].Int() != 2 {
		t.Errorf("aggregate over view: %v", res.Rows)
	}
}

func TestSubqueryInFromExecution(t *testing.T) {
	db := newTestDB(t)
	flightsSchema(t, db)
	res := mustExec(t, db, `
		SELECT big.flightid FROM (SELECT flightid, capacity FROM flights WHERE capacity >= 200) AS big
		WHERE big.capacity < 300`)
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "UA202" {
		t.Errorf("subquery rows: %v", res.Rows)
	}
}

func TestIndexSelection(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE TABLE ol (
		w INT, d INT, o INT, n INT, amount FLOAT,
		PRIMARY KEY (w, d, o, n))`)
	tx := db.Begin()
	tbl, _ := db.Catalog().Table("ol")
	for w := 1; w <= 2; w++ {
		for d := 1; d <= 3; d++ {
			for o := 1; o <= 20; o++ {
				row := types.Row{types.NewInt(int64(w)), types.NewInt(int64(d)), types.NewInt(int64(o)), types.NewInt(1), types.NewFloat(float64(o))}
				if _, _, err := db.InsertRow(tx, tbl, row, 0); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := db.Commit(tx); err != nil {
		t.Fatal(err)
	}

	res := mustExec(t, db, `EXPLAIN SELECT * FROM ol WHERE w = 1 AND d = 2 AND o = 3`)
	if !strings.Contains(res.Explain, "Index Scan") || !strings.Contains(res.Explain, "=3 cols") {
		t.Errorf("expected 3-column index scan:\n%s", res.Explain)
	}
	// Equality prefix + range.
	res = mustExec(t, db, `EXPLAIN SELECT * FROM ol WHERE w = 1 AND d = 2 AND o >= 5 AND o < 10`)
	if !strings.Contains(res.Explain, "+range") {
		t.Errorf("expected range index scan:\n%s", res.Explain)
	}
	got := mustExec(t, db, `SELECT SUM(amount) FROM ol WHERE w = 1 AND d = 2 AND o >= 5 AND o < 10`)
	if got.Rows[0][0].Float() != 5+6+7+8+9 {
		t.Errorf("range sum: %v", got.Rows[0])
	}
	// BETWEEN desugars into the same range.
	got = mustExec(t, db, `SELECT COUNT(*) FROM ol WHERE w = 2 AND d = 1 AND o BETWEEN 5 AND 9`)
	if got.Rows[0][0].Int() != 5 {
		t.Errorf("between count: %v", got.Rows[0])
	}
	// No index match -> seq scan, still correct.
	res = mustExec(t, db, `EXPLAIN SELECT * FROM ol WHERE n = 1`)
	if !strings.Contains(res.Explain, "Seq Scan") {
		t.Errorf("expected seq scan:\n%s", res.Explain)
	}
}

func TestIndexJoinChosenAndCorrect(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE TABLE item (i_id INT PRIMARY KEY, i_name CHAR(24))`)
	mustExec(t, db, `CREATE TABLE line (l_id INT PRIMARY KEY, l_i_id INT)`)
	for i := 1; i <= 50; i++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO item VALUES (%d, 'item-%d')`, i, i))
	}
	for l := 1; l <= 100; l++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO line VALUES (%d, %d)`, l, l%50+1))
	}
	res := mustExec(t, db, `SELECT COUNT(*) FROM line, item WHERE item.i_id = line.l_i_id`)
	if res.Rows[0][0].Int() != 100 {
		t.Errorf("join count: %v", res.Rows[0])
	}
	res = mustExec(t, db, `EXPLAIN SELECT * FROM line, item WHERE item.i_id = line.l_i_id`)
	if !strings.Contains(res.Explain, "Index Nested Loop") {
		t.Errorf("expected index join:\n%s", res.Explain)
	}
}

func TestExplainShowsTransposedFilters(t *testing.T) {
	// Reproduces the shape of the paper's §2.1 EXPLAIN: after view expansion
	// the per-table filters appear on the base-table scans.
	db := newTestDB(t)
	flightsSchema(t, db)
	mustExec(t, db, `CREATE VIEW fv AS (
		SELECT f.flightid AS fid, flightdate, passenger_count
		FROM flights f, flewon fi WHERE f.flightid = fi.flightid)`)
	res := mustExec(t, db, `EXPLAIN SELECT * FROM fv WHERE fid = 'AA101'`)
	if !strings.Contains(res.Explain, "flights") || !strings.Contains(res.Explain, "= 'AA101'") {
		t.Errorf("explain missing base filter:\n%s", res.Explain)
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT 1 + 2 AS three, 'x' AS s`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 3 || res.Rows[0][1].Str() != "x" {
		t.Errorf("constant select: %v", res.Rows)
	}
}

func TestDuplicateAliasRejected(t *testing.T) {
	db := newTestDB(t)
	flightsSchema(t, db)
	mustFail(t, db, `SELECT * FROM flights f, flewon f`, "duplicate")
}

func TestAmbiguousColumnRejected(t *testing.T) {
	db := newTestDB(t)
	flightsSchema(t, db)
	mustFail(t, db, `SELECT flightid FROM flights, flewon`, "ambiguous")
}

func TestStarExpansionOnJoin(t *testing.T) {
	db := newTestDB(t)
	flightsSchema(t, db)
	res := mustExec(t, db, `SELECT * FROM flights f, flewon fi WHERE f.flightid = fi.flightid LIMIT 1`)
	if len(res.Columns) != 7+3 {
		t.Errorf("star width: %v", res.Columns)
	}
	res = mustExec(t, db, `SELECT fi.* FROM flights f, flewon fi WHERE f.flightid = fi.flightid LIMIT 1`)
	if len(res.Columns) != 3 {
		t.Errorf("qualified star width: %v", res.Columns)
	}
}

func TestUpdateDeleteUseIndex(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE TABLE kv (k INT PRIMARY KEY, v INT)`)
	for i := 0; i < 100; i++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO kv VALUES (%d, %d)`, i, i))
	}
	tx := db.Begin()
	tbl, _ := db.Catalog().Table("kv")
	where, err := parseWhere(`k = 42`)
	if err != nil {
		t.Fatal(err)
	}
	tids, rows, err := db.ScanForWrite(tx, tbl, "kv", where)
	if err != nil {
		t.Fatal(err)
	}
	if len(tids) != 1 || rows[0][1].Int() != 42 {
		t.Errorf("ScanForWrite: %v %v", tids, rows)
	}
	db.Abort(tx)
}
