package engine

import (
	"strings"

	"github.com/bullfrogdb/bullfrog/internal/sql"
	"github.com/bullfrogdb/bullfrog/internal/txn"
)

// ExplainPlan renders a plan tree in an indented, PostgreSQL-flavored form —
// the same output BullFrog inspects to extract filters pushed onto base
// tables after view expansion (paper §2.1).
func ExplainPlan(p *Plan) string {
	var sb strings.Builder
	explainNode(&sb, p.root, 0)
	return strings.TrimRight(sb.String(), "\n")
}

func explainNode(sb *strings.Builder, n planNode, depth int) {
	indent := strings.Repeat("  ", depth)
	desc := n.describe()
	for i, line := range strings.Split(desc, "\n") {
		prefix := indent
		if i == 0 && depth > 0 {
			prefix = indent[:len(indent)-2] + "->"
		}
		sb.WriteString(prefix)
		sb.WriteString(strings.TrimPrefix(line, "  "))
		if i > 0 {
			// keep sub-lines (Filter: ...) aligned under the node
			_ = line
		}
		sb.WriteString("\n")
	}
	for _, c := range n.children() {
		explainNode(sb, c, depth+1)
	}
}

func (db *DB) execExplain(tx *txn.Txn, s *sql.ExplainStmt) (*Result, error) {
	switch inner := s.Inner.(type) {
	case *sql.SelectStmt:
		p, err := db.PlanSelect(inner)
		if err != nil {
			return nil, err
		}
		text := ExplainPlan(p)
		return &Result{Columns: []string{"QUERY PLAN"}, Explain: text}, nil
	default:
		return nil, errUnexplainable
	}
}

var errUnexplainable = errorString("engine: only SELECT statements can be explained")

type errorString string

func (e errorString) Error() string { return string(e) }
