package engine

import (
	"errors"
	"fmt"
	"sort"

	"github.com/bullfrogdb/bullfrog/internal/catalog"
	"github.com/bullfrogdb/bullfrog/internal/expr"
	"github.com/bullfrogdb/bullfrog/internal/index"
	"github.com/bullfrogdb/bullfrog/internal/storage"
	"github.com/bullfrogdb/bullfrog/internal/types"
)

// errStopScan is a sentinel used by LIMIT to stop upstream execution.
var errStopScan = errors.New("engine: stop scan")

// --- values ---

// valuesNode emits fixed in-memory rows. It backs FROM-less selects and the
// BoundRows substitution used by migration transforms.
type valuesNode struct {
	cols []Column
	rows []types.Row
}

func (n *valuesNode) columns() []Column    { return n.cols }
func (n *valuesNode) children() []planNode { return nil }
func (n *valuesNode) describe() string     { return fmt.Sprintf("Values (%d rows)", len(n.rows)) }

func (n *valuesNode) execute(ctx *execCtx, emit emitFn) error {
	for _, r := range n.rows {
		if err := emit(r); err != nil {
			return err
		}
	}
	return nil
}

// --- bound rows ---

// boundRowsNode emits the rows carried by the execution context
// (Plan.ExecuteBound). It keeps no state of its own, so plans containing it
// cache and run concurrently.
type boundRowsNode struct {
	cols []Column
}

func (n *boundRowsNode) columns() []Column    { return n.cols }
func (n *boundRowsNode) children() []planNode { return nil }
func (n *boundRowsNode) describe() string     { return "Bound Rows" }

func (n *boundRowsNode) execute(ctx *execCtx, emit emitFn) error {
	for _, r := range ctx.bound {
		if err := emit(r); err != nil {
			return err
		}
	}
	return nil
}

// --- rename ---

// renameNode re-qualifies a child's output columns under a new alias
// (subquery and view references).
type renameNode struct {
	child planNode
	alias string
}

func (n *renameNode) columns() []Column {
	in := n.child.columns()
	out := make([]Column, len(in))
	for i, c := range in {
		out[i] = Column{Table: n.alias, Name: c.Name, Kind: c.Kind}
	}
	return out
}
func (n *renameNode) children() []planNode { return []planNode{n.child} }
func (n *renameNode) describe() string     { return "Subquery Scan " + n.alias }
func (n *renameNode) execute(ctx *execCtx, emit emitFn) error {
	return n.child.execute(ctx, emit)
}

// --- scan ---

// scanNode reads a base table, applying an MVCC-visible filter, optionally
// through an index range. The full filter is always re-applied to fetched
// rows, so index entries may safely be stale (key-changing updates).
type scanNode struct {
	tbl     *catalog.Table
	alias   string
	cols    []Column
	filter  expr.Expr // bound to the table row; nil = all rows
	idx     index.Index
	lo, hi  []byte
	idxDesc string
}

func (n *scanNode) columns() []Column    { return n.cols }
func (n *scanNode) children() []planNode { return nil }

func (n *scanNode) describe() string {
	s := "Seq Scan on " + n.tbl.Def.Name
	if n.alias != n.tbl.Def.Name {
		s += " " + n.alias
	}
	if n.idx != nil {
		s = fmt.Sprintf("Index Scan using %s on %s", n.idxDesc, n.tbl.Def.Name)
		if n.alias != n.tbl.Def.Name {
			s += " " + n.alias
		}
	}
	if n.filter != nil {
		s += "\n  Filter: " + n.filter.String()
	}
	return s
}

func (n *scanNode) execute(ctx *execCtx, emit emitFn) error {
	if n.idx != nil {
		return n.executeIndex(ctx, emit)
	}
	// Batch the scanned-row count locally; one atomic add per scan, not per
	// tuple, keeps the hot path cheap.
	var scanned int64
	defer func() { ctx.db.met.Engine.RowsScanned.Add(scanned) }()
	return n.tbl.Heap.Scan(func(tid storage.TID, head *storage.Version) error {
		scanned++
		row, ok := ctx.tx.VisibleRow(head)
		if !ok {
			return nil
		}
		if n.filter != nil {
			keep, err := expr.EvalBool(n.filter, row)
			if err != nil {
				return err
			}
			if !keep {
				return nil
			}
		}
		return emit(row)
	})
}

func (n *scanNode) executeIndex(ctx *execCtx, emit emitFn) error {
	// Index entries may be stale (key-changing updates leave old postings
	// until vacuum), so each TID is visited at most once and the full filter
	// re-checks the visible row.
	seen := make(map[storage.TID]struct{})
	var scanErr error
	var scanned int64
	defer func() { ctx.db.met.Engine.RowsScanned.Add(scanned) }()
	n.idx.AscendRange(n.lo, n.hi, func(_ []byte, tid storage.TID) bool {
		if _, dup := seen[tid]; dup {
			return true
		}
		seen[tid] = struct{}{}
		scanned++
		err := n.tbl.Heap.View(tid, func(head *storage.Version) {
			row, ok := ctx.tx.VisibleRow(head)
			if !ok {
				return
			}
			if n.filter != nil {
				keep, evalErr := expr.EvalBool(n.filter, row)
				if evalErr != nil {
					scanErr = evalErr
					return
				}
				if !keep {
					return
				}
			}
			scanErr = emit(row)
		})
		if err != nil && err != storage.ErrNoSuchTuple {
			scanErr = err
		}
		return scanErr == nil
	})
	return scanErr
}

// --- filter ---

type filterNode struct {
	child planNode
	pred  expr.Expr // bound to child columns
}

func (n *filterNode) columns() []Column    { return n.child.columns() }
func (n *filterNode) children() []planNode { return []planNode{n.child} }
func (n *filterNode) describe() string     { return "Filter: " + n.pred.String() }

func (n *filterNode) execute(ctx *execCtx, emit emitFn) error {
	return n.child.execute(ctx, func(row types.Row) error {
		keep, err := expr.EvalBool(n.pred, row)
		if err != nil {
			return err
		}
		if !keep {
			return nil
		}
		return emit(row)
	})
}

// --- project ---

type projectNode struct {
	child planNode
	exprs []expr.Expr // bound to child columns
	cols  []Column
}

func (n *projectNode) columns() []Column    { return n.cols }
func (n *projectNode) children() []planNode { return []planNode{n.child} }

func (n *projectNode) describe() string {
	s := "Project:"
	for i, e := range n.exprs {
		if i > 0 {
			s += ","
		}
		s += " " + e.String()
	}
	return s
}

func (n *projectNode) execute(ctx *execCtx, emit emitFn) error {
	out := make(types.Row, len(n.exprs))
	return n.child.execute(ctx, func(row types.Row) error {
		for i, e := range n.exprs {
			v, err := e.Eval(row)
			if err != nil {
				return err
			}
			out[i] = v
		}
		return emit(out)
	})
}

// --- joins ---

// nlJoinNode is a nested-loop (cartesian) join with an optional residual
// predicate; the right side re-executes per left row.
type nlJoinNode struct {
	left, right planNode
	cols        []Column
	pred        expr.Expr // bound to concatenated columns; may be nil
}

func (n *nlJoinNode) columns() []Column    { return n.cols }
func (n *nlJoinNode) children() []planNode { return []planNode{n.left, n.right} }
func (n *nlJoinNode) describe() string {
	s := "Nested Loop"
	if n.pred != nil {
		s += "\n  Join Filter: " + n.pred.String()
	}
	return s
}

func (n *nlJoinNode) execute(ctx *execCtx, emit emitFn) error {
	leftWidth := len(n.left.columns())
	out := make(types.Row, len(n.cols))
	return n.left.execute(ctx, func(lrow types.Row) error {
		saved := append(types.Row(nil), lrow...) // lrow is reused by the left child
		return n.right.execute(ctx, func(rrow types.Row) error {
			copy(out, saved)
			copy(out[leftWidth:], rrow)
			if n.pred != nil {
				keep, err := expr.EvalBool(n.pred, out)
				if err != nil {
					return err
				}
				if !keep {
					return nil
				}
			}
			return emit(out)
		})
	})
}

// indexJoinNode looks up right-side rows through an index keyed by
// expressions over the left row.
type indexJoinNode struct {
	left     planNode
	right    *scanNode
	idx      index.Index
	leftKeys []expr.Expr // bound to left columns
	cols     []Column
	residual expr.Expr // bound to concatenated columns
}

func (n *indexJoinNode) columns() []Column    { return n.cols }
func (n *indexJoinNode) children() []planNode { return []planNode{n.left, n.right} }
func (n *indexJoinNode) describe() string {
	s := fmt.Sprintf("Index Nested Loop using %s on %s", n.idx.Def().Name, n.right.tbl.Def.Name)
	if n.residual != nil {
		s += "\n  Join Filter: " + n.residual.String()
	}
	return s
}

func (n *indexJoinNode) execute(ctx *execCtx, emit emitFn) error {
	leftWidth := len(n.left.columns())
	out := make(types.Row, len(n.cols))
	keyRow := make(types.Row, len(n.leftKeys))
	fullKey := len(n.leftKeys) == len(n.idx.Def().Columns)
	return n.left.execute(ctx, func(lrow types.Row) error {
		for i, ke := range n.leftKeys {
			v, err := ke.Eval(lrow)
			if err != nil {
				return err
			}
			if v.IsNull() {
				return nil // NULL never joins
			}
			keyRow[i] = v
		}
		saved := append(types.Row(nil), lrow...)
		encoded := types.EncodeKey(nil, keyRow)
		var tids []storage.TID
		if fullKey {
			tids = n.idx.Lookup(encoded)
		} else {
			n.idx.AscendRange(encoded, index.PrefixSucc(encoded), func(_ []byte, tid storage.TID) bool {
				tids = append(tids, tid)
				return true
			})
		}
		seen := make(map[storage.TID]struct{}, len(tids))
		for _, tid := range tids {
			if _, dup := seen[tid]; dup {
				continue
			}
			seen[tid] = struct{}{}
			var innerErr error
			err := n.right.tbl.Heap.View(tid, func(head *storage.Version) {
				rrow, ok := ctx.tx.VisibleRow(head)
				if !ok {
					return
				}
				// Re-check the join key against the visible row (stale
				// index entries) plus the right scan's own filter.
				rkey := make(types.Row, len(n.leftKeys))
				def := n.idx.Def()
				for i := range n.leftKeys {
					rkey[i] = rrow[def.Columns[i]]
				}
				for i := range rkey {
					if !types.Equal(rkey[i], keyRow[i]) {
						return
					}
				}
				if n.right.filter != nil {
					keep, err := expr.EvalBool(n.right.filter, rrow)
					if err != nil {
						innerErr = err
						return
					}
					if !keep {
						return
					}
				}
				copy(out, saved)
				copy(out[leftWidth:], rrow)
				if n.residual != nil {
					keep, err := expr.EvalBool(n.residual, out)
					if err != nil {
						innerErr = err
						return
					}
					if !keep {
						return
					}
				}
				innerErr = emit(out)
			})
			if err != nil && err != storage.ErrNoSuchTuple {
				return err
			}
			if innerErr != nil {
				return innerErr
			}
		}
		return nil
	})
}

// hashJoinNode builds a hash table over the right input and probes it with
// left rows.
type hashJoinNode struct {
	left, right planNode
	leftKeys    []expr.Expr // bound to left columns
	rightKeys   []expr.Expr // bound to right columns
	cols        []Column
	residual    expr.Expr
}

func (n *hashJoinNode) columns() []Column    { return n.cols }
func (n *hashJoinNode) children() []planNode { return []planNode{n.left, n.right} }
func (n *hashJoinNode) describe() string {
	s := "Hash Join"
	if n.residual != nil {
		s += "\n  Join Filter: " + n.residual.String()
	}
	return s
}

func (n *hashJoinNode) execute(ctx *execCtx, emit emitFn) error {
	// Build side: right.
	table := make(map[string][]types.Row)
	keyRow := make(types.Row, len(n.rightKeys))
	err := n.right.execute(ctx, func(row types.Row) error {
		for i, ke := range n.rightKeys {
			v, err := ke.Eval(row)
			if err != nil {
				return err
			}
			if v.IsNull() {
				return nil
			}
			keyRow[i] = v
		}
		k := string(types.EncodeKey(nil, keyRow))
		table[k] = append(table[k], row.Clone())
		return nil
	})
	if err != nil {
		return err
	}
	// Probe side: left.
	leftWidth := len(n.left.columns())
	out := make(types.Row, len(n.cols))
	probeKey := make(types.Row, len(n.leftKeys))
	return n.left.execute(ctx, func(lrow types.Row) error {
		for i, ke := range n.leftKeys {
			v, err := ke.Eval(lrow)
			if err != nil {
				return err
			}
			if v.IsNull() {
				return nil
			}
			probeKey[i] = v
		}
		matches := table[string(types.EncodeKey(nil, probeKey))]
		if len(matches) == 0 {
			return nil
		}
		copy(out, lrow)
		for _, rrow := range matches {
			copy(out[leftWidth:], rrow)
			if n.residual != nil {
				keep, err := expr.EvalBool(n.residual, out)
				if err != nil {
					return err
				}
				if !keep {
					continue
				}
			}
			if err := emit(out); err != nil {
				return err
			}
		}
		return nil
	})
}

// --- aggregation ---

type aggNode struct {
	child   planNode
	groupBy []expr.Expr // bound to child
	specs   []*expr.Agg // bound args
	cols    []Column
}

func (n *aggNode) columns() []Column    { return n.cols }
func (n *aggNode) children() []planNode { return []planNode{n.child} }
func (n *aggNode) describe() string {
	s := "HashAggregate"
	if len(n.groupBy) > 0 {
		s += "\n  Group Key:"
		for i, g := range n.groupBy {
			if i > 0 {
				s += ","
			}
			s += " " + g.String()
		}
	}
	return s
}

type accumulator interface {
	add(d types.Datum)
	result() types.Datum
}

func newAccumulator(spec *expr.Agg) accumulator {
	var base accumulator
	switch spec.Name {
	case "COUNT":
		base = &countAcc{}
	case "SUM":
		base = &sumAcc{}
	case "AVG":
		base = &avgAcc{}
	case "MIN":
		base = &minmaxAcc{min: true}
	case "MAX":
		base = &minmaxAcc{}
	default:
		base = &countAcc{}
	}
	if spec.Distinct {
		return &distinctAcc{inner: base, seen: make(map[string]struct{})}
	}
	return base
}

type countAcc struct{ n int64 }

func (a *countAcc) add(d types.Datum) {
	if !d.IsNull() {
		a.n++
	}
}
func (a *countAcc) result() types.Datum { return types.NewInt(a.n) }

type sumAcc struct {
	isFloat bool
	i       int64
	f       float64
	seenAny bool
}

func (a *sumAcc) add(d types.Datum) {
	if d.IsNull() {
		return
	}
	a.seenAny = true
	if d.Kind() == types.KindFloat || a.isFloat {
		if !a.isFloat {
			a.isFloat = true
			a.f = float64(a.i)
		}
		a.f += d.Float()
		return
	}
	a.i += d.Int()
}

func (a *sumAcc) result() types.Datum {
	if !a.seenAny {
		return types.Null
	}
	if a.isFloat {
		return types.NewFloat(a.f)
	}
	return types.NewInt(a.i)
}

type avgAcc struct {
	sum float64
	n   int64
}

func (a *avgAcc) add(d types.Datum) {
	if d.IsNull() {
		return
	}
	a.sum += d.Float()
	a.n++
}

func (a *avgAcc) result() types.Datum {
	if a.n == 0 {
		return types.Null
	}
	return types.NewFloat(a.sum / float64(a.n))
}

type minmaxAcc struct {
	min  bool
	best types.Datum
	set  bool
}

func (a *minmaxAcc) add(d types.Datum) {
	if d.IsNull() {
		return
	}
	if !a.set {
		a.best, a.set = d, true
		return
	}
	c := types.Compare(d, a.best)
	if (a.min && c < 0) || (!a.min && c > 0) {
		a.best = d
	}
}

func (a *minmaxAcc) result() types.Datum {
	if !a.set {
		return types.Null
	}
	return a.best
}

type distinctAcc struct {
	inner accumulator
	seen  map[string]struct{}
}

func (a *distinctAcc) add(d types.Datum) {
	if d.IsNull() {
		return
	}
	k := string(types.EncodeDatum(nil, d))
	if _, dup := a.seen[k]; dup {
		return
	}
	a.seen[k] = struct{}{}
	a.inner.add(d)
}
func (a *distinctAcc) result() types.Datum { return a.inner.result() }

func (n *aggNode) execute(ctx *execCtx, emit emitFn) error {
	type group struct {
		key  types.Row
		accs []accumulator
	}
	groups := make(map[string]*group)
	var order []string // deterministic output order (first appearance)
	keyRow := make(types.Row, len(n.groupBy))
	err := n.child.execute(ctx, func(row types.Row) error {
		for i, g := range n.groupBy {
			v, err := g.Eval(row)
			if err != nil {
				return err
			}
			keyRow[i] = v
		}
		k := string(types.EncodeKey(nil, keyRow))
		grp := groups[k]
		if grp == nil {
			grp = &group{key: keyRow.Clone(), accs: make([]accumulator, len(n.specs))}
			for i, spec := range n.specs {
				grp.accs[i] = newAccumulator(spec)
			}
			groups[k] = grp
			order = append(order, k)
		}
		for i, spec := range n.specs {
			if spec.Arg == nil { // COUNT(*)
				grp.accs[i].add(types.NewInt(1))
				continue
			}
			v, err := spec.Arg.Eval(row)
			if err != nil {
				return err
			}
			grp.accs[i].add(v)
		}
		return nil
	})
	if err != nil {
		return err
	}
	// A grouped query with no groups emits nothing; a global aggregate with
	// no input emits one row of empty aggregates.
	if len(groups) == 0 && len(n.groupBy) == 0 {
		out := make(types.Row, len(n.specs))
		for i, spec := range n.specs {
			out[i] = newAccumulator(spec).result()
		}
		return emit(out)
	}
	out := make(types.Row, len(n.groupBy)+len(n.specs))
	for _, k := range order {
		grp := groups[k]
		copy(out, grp.key)
		for i, acc := range grp.accs {
			out[len(n.groupBy)+i] = acc.result()
		}
		if err := emit(out); err != nil {
			return err
		}
	}
	return nil
}

// --- sort / limit / distinct ---

type sortKey struct {
	expr expr.Expr
	desc bool
}

type sortNode struct {
	child planNode
	keys  []sortKey
}

func (n *sortNode) columns() []Column    { return n.child.columns() }
func (n *sortNode) children() []planNode { return []planNode{n.child} }
func (n *sortNode) describe() string {
	s := "Sort:"
	for i, k := range n.keys {
		if i > 0 {
			s += ","
		}
		s += " " + k.expr.String()
		if k.desc {
			s += " DESC"
		}
	}
	return s
}

func (n *sortNode) execute(ctx *execCtx, emit emitFn) error {
	type keyed struct {
		row  types.Row
		keys types.Row
	}
	var rows []keyed
	err := n.child.execute(ctx, func(row types.Row) error {
		ks := make(types.Row, len(n.keys))
		for i, k := range n.keys {
			v, err := k.expr.Eval(row)
			if err != nil {
				return err
			}
			ks[i] = v
		}
		rows = append(rows, keyed{row: row.Clone(), keys: ks})
		return nil
	})
	if err != nil {
		return err
	}
	sort.SliceStable(rows, func(i, j int) bool {
		for k := range n.keys {
			c := types.Compare(rows[i].keys[k], rows[j].keys[k])
			if n.keys[k].desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	for _, r := range rows {
		if err := emit(r.row); err != nil {
			return err
		}
	}
	return nil
}

type limitNode struct {
	child planNode
	n     int64
}

func (n *limitNode) columns() []Column    { return n.child.columns() }
func (n *limitNode) children() []planNode { return []planNode{n.child} }
func (n *limitNode) describe() string     { return fmt.Sprintf("Limit %d", n.n) }

func (n *limitNode) execute(ctx *execCtx, emit emitFn) error {
	if n.n == 0 {
		return nil
	}
	count := int64(0)
	err := n.child.execute(ctx, func(row types.Row) error {
		if err := emit(row); err != nil {
			return err
		}
		count++
		if count >= n.n {
			return errStopScan
		}
		return nil
	})
	if errors.Is(err, errStopScan) {
		return nil
	}
	return err
}

type distinctNode struct {
	child planNode
}

func (n *distinctNode) columns() []Column    { return n.child.columns() }
func (n *distinctNode) children() []planNode { return []planNode{n.child} }
func (n *distinctNode) describe() string     { return "Distinct" }

func (n *distinctNode) execute(ctx *execCtx, emit emitFn) error {
	seen := make(map[string]struct{})
	return n.child.execute(ctx, func(row types.Row) error {
		k := string(types.EncodeKey(nil, row))
		if _, dup := seen[k]; dup {
			return nil
		}
		seen[k] = struct{}{}
		return emit(row)
	})
}

// inferKind computes a best-effort output kind for an expression over the
// given input columns. Unknown shapes yield KindNull, which schema treats as
// a wildcard column type (accepting any datum) — matching how CREATE TABLE AS
// handles untyped NULL columns.
func inferKind(e expr.Expr, cols []Column) types.Kind {
	switch t := e.(type) {
	case *expr.Const:
		return t.Val.Kind()
	case *expr.Col:
		if t.Index >= 0 && t.Index < len(cols) {
			return cols[t.Index].Kind
		}
		return types.KindNull
	case *expr.BinOp:
		if t.Op.Comparison() || t.Op == expr.OpAnd || t.Op == expr.OpOr {
			return types.KindBool
		}
		lk, rk := inferKind(t.L, cols), inferKind(t.R, cols)
		if lk == types.KindString || rk == types.KindString {
			return types.KindString
		}
		if t.Op == expr.OpDiv || lk == types.KindFloat || rk == types.KindFloat {
			return types.KindFloat
		}
		if lk == types.KindInt && rk == types.KindInt {
			return types.KindInt
		}
		return types.KindNull
	case *expr.Not, *expr.IsNull:
		return types.KindBool
	case *expr.InList:
		return types.KindBool
	case *expr.Func:
		switch t.Name {
		case "EXTRACT", "LENGTH", "MOD":
			return types.KindInt
		case "LOWER", "UPPER", "SUBSTR":
			return types.KindString
		case "ABS":
			if len(t.Args) == 1 {
				return inferKind(t.Args[0], cols)
			}
			return types.KindNull
		case "COALESCE":
			for _, a := range t.Args {
				if k := inferKind(a, cols); k != types.KindNull {
					return k
				}
			}
			return types.KindNull
		default:
			return types.KindNull
		}
	case *expr.Case:
		for _, w := range t.Whens {
			if k := inferKind(w.Then, cols); k != types.KindNull {
				return k
			}
		}
		if t.Else != nil {
			return inferKind(t.Else, cols)
		}
		return types.KindNull
	case *expr.Agg:
		if t.Name == "COUNT" {
			return types.KindInt
		}
		return types.KindFloat
	default:
		return types.KindNull
	}
}
