package engine

import (
	"fmt"
	"strings"

	"github.com/bullfrogdb/bullfrog/internal/catalog"
	"github.com/bullfrogdb/bullfrog/internal/expr"
	"github.com/bullfrogdb/bullfrog/internal/index"
	"github.com/bullfrogdb/bullfrog/internal/sql"
	"github.com/bullfrogdb/bullfrog/internal/txn"
	"github.com/bullfrogdb/bullfrog/internal/types"
)

// Column describes one output column of a plan node: the binding alias of
// the table it came from ("" for computed columns), its name, and its kind.
type Column struct {
	Table string
	Name  string
	Kind  types.Kind
}

type emitFn func(types.Row) error

type execCtx struct {
	db *DB
	tx *txn.Txn
	// bound carries the in-memory relation a boundRowsNode reads, so one
	// cached plan can serve many concurrent executions over different row
	// sets (Plan.ExecuteBound).
	bound []types.Row
}

type planNode interface {
	columns() []Column
	execute(ctx *execCtx, emit emitFn) error
	describe() string // one-line EXPLAIN description
	children() []planNode
}

// Plan is a compiled, executable query.
type Plan struct {
	db   *DB
	root planNode
}

// Columns returns the output column descriptors.
func (p *Plan) Columns() []Column { return p.root.columns() }

// ColumnNames returns the output column names.
func (p *Plan) ColumnNames() []string {
	cols := p.root.columns()
	names := make([]string, len(cols))
	for i, c := range cols {
		names[i] = c.Name
	}
	return names
}

// Execute runs the plan in the given transaction, calling emit for each
// output row. Emitted rows may be reused by the executor; clone them if
// retained.
func (p *Plan) Execute(tx *txn.Txn, emit func(types.Row) error) error {
	return p.ExecuteBound(tx, nil, emit)
}

// ExecuteBound runs a plan compiled with PlanSelectBound, substituting rows
// for the bound alias. The rows ride in the per-call execution context, not
// in the plan, so a cached plan may run concurrently under different row
// sets.
func (p *Plan) ExecuteBound(tx *txn.Txn, rows []types.Row, emit func(types.Row) error) error {
	var returned int64
	err := p.root.execute(&execCtx{db: p.db, tx: tx, bound: rows}, func(row types.Row) error {
		returned++
		return emit(row)
	})
	p.db.met.Engine.RowsReturned.Add(returned)
	return err
}

func scopeOf(cols []Column) *expr.Scope {
	sc := make([]expr.ScopeCol, len(cols))
	for i, c := range cols {
		sc[i] = expr.ScopeCol{Table: c.Table, Name: c.Name, Kind: c.Kind}
	}
	return expr.NewScope(sc...)
}

// --- planner ---

// PlanSelect compiles a SELECT statement against the head catalog version,
// reusing a cached plan when the same statement shape was planned before
// (metric: PlansReused vs PlansBuilt). Cache keys carry the catalog version
// identity, so a hit is always against the version it was compiled for;
// DDL/migration invalidation additionally bounds memory.
func (db *DB) PlanSelect(s *sql.SelectStmt) (*Plan, error) {
	return db.planCached(db.cat.Head(), s, "")
}

// PlanSelectAt compiles (with caching) a SELECT against a pinned catalog
// version — the one a transaction's snapshot resolves (see catForTxn).
func (db *DB) PlanSelectAt(v *catalog.Version, s *sql.SelectStmt) (*Plan, error) {
	return db.planCached(v, s, "")
}

// PlanSelectBound compiles (with caching) a SELECT whose boundAlias FROM
// item reads rows supplied at execution time via Plan.ExecuteBound. This is
// the migration transform's hot path: bitmapPass/hashPass plan the transform
// SELECT once and run it per batch with that batch's claimed tuples bound.
// Migration transforms read old-schema tables which stay resolvable in the
// head version (retired, not dropped), so this plans against head.
func (db *DB) PlanSelectBound(s *sql.SelectStmt, boundAlias string) (*Plan, error) {
	return db.planCached(db.cat.Head(), s, normalizeName(boundAlias))
}

func (db *DB) planCached(v *catalog.Version, s *sql.SelectStmt, boundAlias string) (*Plan, error) {
	key := versionedCacheKey(v, s, boundAlias)
	if p := db.plans.get(key); p != nil {
		db.met.Engine.PlansReused.Inc()
		return p, nil
	}
	p, err := db.buildSelectPlan(v, s, boundAlias, nil)
	if err != nil {
		return nil, err
	}
	db.plans.put(key, p)
	return p, nil
}

// PlanSelectWithBoundRows compiles a SELECT, but the FROM item whose binding
// name equals boundAlias reads from the supplied in-memory rows instead of
// its table. BullFrog's migration executor uses this to run the migration
// transform over exactly the set of tuples it claimed (paper §3.2). The rows
// are baked into the plan, so the result is never cached; prefer
// PlanSelectBound + ExecuteBound on hot paths.
func (db *DB) PlanSelectWithBoundRows(s *sql.SelectStmt, boundAlias string, boundRows *BoundRows) (*Plan, error) {
	return db.buildSelectPlan(db.cat.Head(), s, normalizeName(boundAlias), boundRows)
}

func (db *DB) buildSelectPlan(v *catalog.Version, s *sql.SelectStmt, boundAlias string, boundRows *BoundRows) (*Plan, error) {
	b := &planBuilder{db: db, cat: v, boundAlias: boundAlias, boundRows: boundRows}
	root, err := b.buildSelect(s)
	if err != nil {
		return nil, err
	}
	db.met.Engine.PlansBuilt.Inc()
	return &Plan{db: db, root: root}, nil
}

// BoundRows is an in-memory relation substituted for a base table.
type BoundRows struct {
	Rows []types.Row
}

type planBuilder struct {
	db         *DB
	cat        *catalog.Version // the catalog version names resolve against
	boundAlias string
	boundRows  *BoundRows
}

// source is one FROM item during planning.
type source struct {
	alias string
	node  planNode
}

func (b *planBuilder) buildSelect(s *sql.SelectStmt) (planNode, error) {
	// 1. Sources.
	var sources []source
	seen := map[string]bool{}
	for _, ref := range s.From {
		src, err := b.buildSource(ref)
		if err != nil {
			return nil, err
		}
		if seen[src.alias] {
			return nil, fmt.Errorf("engine: duplicate table alias %q", src.alias)
		}
		seen[src.alias] = true
		sources = append(sources, src)
	}
	if len(sources) == 0 {
		sources = append(sources, source{alias: "", node: &valuesNode{rows: []types.Row{{}}}})
	}

	// 2. Canonicalize WHERE column references against the combined scope.
	var allCols []Column
	for _, src := range sources {
		allCols = append(allCols, src.node.columns()...)
	}
	combined := scopeOf(allCols)
	var conjuncts []expr.Expr
	if s.Where != nil {
		canon, err := canonicalize(s.Where, combined, allCols)
		if err != nil {
			return nil, err
		}
		conjuncts = expr.SplitConjuncts(canon)
	}

	// 3. Push single-table conjuncts into their sources, join the rest.
	used := make([]bool, len(conjuncts))
	aliasesOf := func(e expr.Expr) map[string]bool {
		out := map[string]bool{}
		for _, c := range expr.CollectCols(e) {
			out[c.Table] = true
		}
		return out
	}
	for i, src := range sources {
		var own []expr.Expr
		for ci, conj := range conjuncts {
			if used[ci] {
				continue
			}
			as := aliasesOf(conj)
			if len(as) == 1 && as[src.alias] {
				own = append(own, conj)
				used[ci] = true
			} else if len(as) == 0 && i == 0 {
				own = append(own, conj) // constant predicate: attach once
				used[ci] = true
			}
		}
		if len(own) > 0 {
			n, err := b.attachFilter(src.node, expr.CombineConjuncts(own...))
			if err != nil {
				return nil, err
			}
			sources[i].node = n
		}
	}

	cur := sources[0].node
	curAliases := map[string]bool{sources[0].alias: true}
	for i := 1; i < len(sources); i++ {
		right := sources[i]
		curAliases[right.alias] = true
		var joinPreds []expr.Expr
		for ci, conj := range conjuncts {
			if used[ci] {
				continue
			}
			as := aliasesOf(conj)
			ok := true
			for a := range as {
				if !curAliases[a] {
					ok = false
					break
				}
			}
			if ok {
				joinPreds = append(joinPreds, conj)
				used[ci] = true
			}
		}
		var err error
		cur, err = b.buildJoin(cur, right.node, joinPreds)
		if err != nil {
			return nil, err
		}
	}
	for ci, conj := range conjuncts {
		if !used[ci] {
			n, err := b.attachFilter(cur, conj)
			if err != nil {
				return nil, err
			}
			cur = n
		}
	}

	// 4. Projection items (star expansion + canonicalization).
	items, err := expandItems(s.Items, cur.columns())
	if err != nil {
		return nil, err
	}

	// 5. Aggregation.
	hasAgg := len(s.GroupBy) > 0 || s.Having != nil
	for _, it := range items {
		if expr.ContainsAgg(it.Expr) {
			hasAgg = true
		}
	}
	if s.Having != nil && !expr.ContainsAgg(s.Having) && len(s.GroupBy) == 0 {
		return nil, fmt.Errorf("engine: HAVING requires GROUP BY or aggregates")
	}
	var out planNode
	if hasAgg {
		out, items, err = b.buildAggregate(cur, s, items)
		if err != nil {
			return nil, err
		}
	} else {
		out = cur
	}

	// 6. Final projection.
	proj, err := b.buildProject(out, items)
	if err != nil {
		return nil, err
	}
	out = proj

	// 7. DISTINCT.
	if s.Distinct {
		out = &distinctNode{child: out}
	}

	// 8. ORDER BY (binds against the projected output columns).
	if len(s.OrderBy) > 0 {
		sn := &sortNode{child: out}
		outScope := scopeOf(out.columns())
		for _, oi := range s.OrderBy {
			bound, err := expr.Bind(oi.Expr, outScope)
			if err != nil {
				return nil, fmt.Errorf("engine: ORDER BY must reference output columns: %w", err)
			}
			sn.keys = append(sn.keys, sortKey{expr: bound, desc: oi.Desc})
		}
		out = sn
	}

	// 9. LIMIT.
	if s.Limit >= 0 {
		out = &limitNode{child: out, n: s.Limit}
	}
	return out, nil
}

// canonicalize resolves every column reference against the scope and rewrites
// it with its defining table alias filled in (still unbound, Index=-1), so
// later classification by alias is unambiguous.
func canonicalize(e expr.Expr, scope *expr.Scope, cols []Column) (expr.Expr, error) {
	return expr.Transform(e, func(x expr.Expr) (expr.Expr, error) {
		c, ok := x.(*expr.Col)
		if !ok {
			return x, nil
		}
		idx, err := scope.Resolve(c.Table, c.Name)
		if err != nil {
			return nil, err
		}
		return &expr.Col{Table: cols[idx].Table, Name: cols[idx].Name, Index: -1}, nil
	})
}

func (b *planBuilder) buildSource(ref sql.TableRef) (source, error) {
	if ref.Subquery != nil {
		child, err := b.buildSelect(ref.Subquery)
		if err != nil {
			return source{}, err
		}
		return source{alias: normalizeName(ref.Alias), node: &renameNode{child: child, alias: normalizeName(ref.Alias)}}, nil
	}
	name := normalizeName(ref.Name)
	alias := normalizeName(ref.AliasOrName())
	// View expansion: a view reference plans as its defining query.
	if b.cat.HasView(name) {
		v, err := b.cat.View(name)
		if err != nil {
			return source{}, err
		}
		def, ok := v.Def.(*sql.SelectStmt)
		if !ok {
			return source{}, fmt.Errorf("engine: view %q has no planable definition", name)
		}
		child, err := b.buildSelect(def)
		if err != nil {
			return source{}, err
		}
		return source{alias: alias, node: &renameNode{child: child, alias: alias}}, nil
	}
	tbl, err := b.cat.Table(name)
	if err != nil {
		return source{}, err
	}
	if b.boundAlias != "" && alias == b.boundAlias {
		cols := make([]Column, len(tbl.Def.Columns))
		for i, c := range tbl.Def.Columns {
			cols[i] = Column{Table: alias, Name: c.Name, Kind: c.Kind}
		}
		if b.boundRows != nil {
			return source{alias: alias, node: &valuesNode{cols: cols, rows: b.boundRows.Rows}}, nil
		}
		// No rows at plan time: a cacheable plan whose rows arrive per
		// execution through ExecuteBound.
		return source{alias: alias, node: &boundRowsNode{cols: cols}}, nil
	}
	return source{alias: alias, node: newScanNode(tbl, alias)}, nil
}

// attachFilter pushes a (canonicalized, unbound) predicate onto a node,
// folding it into scan nodes so they can use indexes.
func (b *planBuilder) attachFilter(n planNode, pred expr.Expr) (planNode, error) {
	if pred == nil {
		return n, nil
	}
	bound, err := expr.Bind(pred, scopeOf(n.columns()))
	if err != nil {
		return nil, err
	}
	if sn, ok := n.(*scanNode); ok {
		sn.addFilter(bound)
		return sn, nil
	}
	return &filterNode{child: n, pred: bound}, nil
}

// buildJoin joins cur (left) with right under the given canonicalized
// predicates, choosing index-nested-loop, hash, or filtered nested-loop.
func (b *planBuilder) buildJoin(left, right planNode, preds []expr.Expr) (planNode, error) {
	leftCols, rightCols := left.columns(), right.columns()
	outCols := append(append([]Column{}, leftCols...), rightCols...)
	outScope := scopeOf(outCols)

	// Find equi-join pairs: leftExpr = rightExpr where each side references
	// only one input's columns.
	sideOf := func(e expr.Expr) int { // 0 left-only, 1 right-only, -1 mixed/none
		l, r := false, false
		for _, c := range expr.CollectCols(e) {
			if colInScope(leftCols, c) {
				l = true
			} else {
				r = true
			}
		}
		switch {
		case l && !r:
			return 0
		case r && !l:
			return 1
		default:
			return -1
		}
	}
	var leftKeys, rightKeys []expr.Expr // unbound, canonicalized
	var residual []expr.Expr
	for _, p := range preds {
		if bo, ok := p.(*expr.BinOp); ok && bo.Op == expr.OpEq {
			ls, rs := sideOf(bo.L), sideOf(bo.R)
			if ls == 0 && rs == 1 {
				leftKeys = append(leftKeys, bo.L)
				rightKeys = append(rightKeys, bo.R)
				continue
			}
			if ls == 1 && rs == 0 {
				leftKeys = append(leftKeys, bo.R)
				rightKeys = append(rightKeys, bo.L)
				continue
			}
		}
		residual = append(residual, p)
	}
	var boundResidual expr.Expr
	if len(residual) > 0 {
		var err error
		boundResidual, err = expr.Bind(expr.CombineConjuncts(residual...), outScope)
		if err != nil {
			return nil, err
		}
	}

	if len(leftKeys) > 0 {
		// Index nested-loop when the right side is a bare scan with an index
		// on exactly the joined columns.
		if rsn, ok := right.(*scanNode); ok && rsn.idx == nil {
			ords := make([]int, 0, len(rightKeys))
			for _, rk := range rightKeys {
				c, isCol := rk.(*expr.Col)
				if !isCol {
					ords = nil
					break
				}
				ord := rsn.tbl.Def.ColumnIndex(c.Name)
				if ord < 0 {
					ords = nil
					break
				}
				ords = append(ords, ord)
			}
			if ords != nil {
				if idx := rsn.tbl.IndexOnPrefix(ords); idx != nil {
					boundLeftKeys := make([]expr.Expr, len(leftKeys))
					for i, lk := range leftKeys {
						blk, err := expr.Bind(lk, scopeOf(leftCols))
						if err != nil {
							return nil, err
						}
						boundLeftKeys[i] = blk
					}
					return &indexJoinNode{
						left: left, right: rsn, idx: idx,
						leftKeys: boundLeftKeys, cols: outCols,
						residual: boundResidual,
					}, nil
				}
			}
		}
		// Hash join.
		bl := make([]expr.Expr, len(leftKeys))
		br := make([]expr.Expr, len(rightKeys))
		for i := range leftKeys {
			var err error
			if bl[i], err = expr.Bind(leftKeys[i], scopeOf(leftCols)); err != nil {
				return nil, err
			}
			if br[i], err = expr.Bind(rightKeys[i], scopeOf(rightCols)); err != nil {
				return nil, err
			}
		}
		return &hashJoinNode{left: left, right: right, leftKeys: bl, rightKeys: br, cols: outCols, residual: boundResidual}, nil
	}

	// Cartesian nested loop with residual filter.
	return &nlJoinNode{left: left, right: right, cols: outCols, pred: boundResidual}, nil
}

func colInScope(cols []Column, c *expr.Col) bool {
	for _, col := range cols {
		if strings.EqualFold(col.Table, c.Table) && strings.EqualFold(col.Name, c.Name) {
			return true
		}
	}
	return false
}

// boundItem is a projection item after star expansion.
type boundItem struct {
	Expr  expr.Expr // canonical-ish, unbound
	Name  string
	Table string // provenance alias for bare columns
}

func expandItems(items []sql.SelectItem, inCols []Column) ([]boundItem, error) {
	var out []boundItem
	for _, it := range items {
		if it.Star {
			matched := false
			for _, c := range inCols {
				if it.StarTable == "" || strings.EqualFold(c.Table, it.StarTable) {
					out = append(out, boundItem{Expr: expr.NewCol(c.Table, c.Name), Name: c.Name, Table: c.Table})
					matched = true
				}
			}
			if !matched {
				return nil, fmt.Errorf("engine: %s.* matches no columns", it.StarTable)
			}
			continue
		}
		name := it.Alias
		tbl := ""
		if c, ok := it.Expr.(*expr.Col); ok {
			if name == "" {
				name = c.Name
			}
			tbl = c.Table
		}
		out = append(out, boundItem{Expr: it.Expr, Name: normalizeName(name), Table: tbl})
	}
	return out, nil
}

func (b *planBuilder) buildProject(child planNode, items []boundItem) (*projectNode, error) {
	inCols := child.columns()
	scope := scopeOf(inCols)
	exprs := make([]expr.Expr, len(items))
	cols := make([]Column, len(items))
	for i, it := range items {
		bound, err := expr.Bind(it.Expr, scope)
		if err != nil {
			return nil, err
		}
		exprs[i] = bound
		cols[i] = Column{Name: it.Name, Kind: inferKind(bound, inCols)}
	}
	return &projectNode{child: child, exprs: exprs, cols: cols}, nil
}

// buildAggregate inserts a hash-aggregate node and rewrites projection items
// (and HAVING) to reference its outputs. Returns the node feeding the final
// projection (aggregate, possibly wrapped in a HAVING filter) and the
// rewritten items.
func (b *planBuilder) buildAggregate(child planNode, s *sql.SelectStmt, items []boundItem) (planNode, []boundItem, error) {
	inCols := child.columns()
	inScope := scopeOf(inCols)

	// Canonicalize and bind GROUP BY expressions.
	groupExprs := make([]expr.Expr, len(s.GroupBy))
	groupCanon := make([]string, len(s.GroupBy))
	aggOutCols := make([]Column, 0, len(s.GroupBy)+4)
	for i, g := range s.GroupBy {
		canon, err := canonicalize(g, inScope, inCols)
		if err != nil {
			return nil, nil, err
		}
		bound, err := expr.Bind(canon, inScope)
		if err != nil {
			return nil, nil, err
		}
		groupExprs[i] = bound
		groupCanon[i] = canon.String()
		name := fmt.Sprintf("group_%d", i)
		tblAlias := ""
		if c, ok := canon.(*expr.Col); ok {
			name = c.Name
			tblAlias = c.Table
		}
		aggOutCols = append(aggOutCols, Column{Table: tblAlias, Name: name, Kind: inferKind(bound, inCols)})
	}

	// Collect aggregate specs from items and HAVING.
	var specs []*expr.Agg
	specKeys := map[string]int{}
	collect := func(e expr.Expr) error {
		var werr error
		expr.Walk(e, func(x expr.Expr) bool {
			a, ok := x.(*expr.Agg)
			if !ok {
				return true
			}
			spec := &expr.Agg{Name: a.Name, Distinct: a.Distinct}
			key := spec.String() // COUNT(*) form
			if a.Arg != nil {
				canon, err := canonicalize(a.Arg, inScope, inCols)
				if err != nil {
					werr = err
					return false
				}
				// The lookup key uses the canonical (alias-qualified) form so
				// SUM(x) and SUM(t.x) collapse to one spec.
				key = (&expr.Agg{Name: a.Name, Distinct: a.Distinct, Arg: canon}).String()
				bound, err := expr.Bind(canon, inScope)
				if err != nil {
					werr = err
					return false
				}
				spec.Arg = bound
			}
			if _, dup := specKeys[key]; dup {
				return false
			}
			specKeys[key] = len(specs)
			specs = append(specs, spec)
			return false
		})
		return werr
	}
	for _, it := range items {
		if err := collect(it.Expr); err != nil {
			return nil, nil, err
		}
	}
	if s.Having != nil {
		if err := collect(s.Having); err != nil {
			return nil, nil, err
		}
	}
	for i, spec := range specs {
		kind := types.KindFloat
		switch spec.Name {
		case "COUNT":
			kind = types.KindInt
		case "MIN", "MAX", "SUM":
			if spec.Arg != nil {
				kind = inferKind(spec.Arg, inCols)
				if spec.Name == "SUM" && kind != types.KindInt {
					kind = types.KindFloat
				}
			}
		}
		aggOutCols = append(aggOutCols, Column{Name: fmt.Sprintf("agg_%d", i), Kind: kind})
	}

	aggN := &aggNode{child: child, groupBy: groupExprs, specs: specs, cols: aggOutCols}

	// Rewrite an expression over the input into one over the aggregate's
	// output in two passes (Transform is bottom-up, so aggregate subtrees
	// must be collapsed before loose column references are judged):
	// pass 1 replaces whole aggregate calls with agg_i refs; pass 2 maps
	// remaining columns to group-by outputs or rejects them.
	rewrite := func(e expr.Expr) (expr.Expr, error) {
		collapsed, err := expr.Transform(e, func(x expr.Expr) (expr.Expr, error) {
			a, ok := x.(*expr.Agg)
			if !ok {
				return x, nil
			}
			key := a.String()
			if a.Arg != nil {
				canon, err := canonicalize(a.Arg, inScope, inCols)
				if err != nil {
					return nil, err
				}
				key = (&expr.Agg{Name: a.Name, Distinct: a.Distinct, Arg: canon}).String()
			}
			i, found := specKeys[key]
			if !found {
				return nil, fmt.Errorf("engine: internal: aggregate %s not collected", key)
			}
			return expr.NewColIdx(fmt.Sprintf("agg_%d", i), len(groupExprs)+i), nil
		})
		if err != nil {
			return nil, err
		}
		return expr.Transform(collapsed, func(x expr.Expr) (expr.Expr, error) {
			c, ok := x.(*expr.Col)
			if !ok || c.Index >= 0 { // already-rewritten agg_i refs pass through
				return x, nil
			}
			canon, err := canonicalize(c, inScope, inCols)
			if err != nil {
				return nil, err
			}
			for i, g := range groupCanon {
				if canon.String() == g {
					return expr.NewColIdx(aggOutCols[i].Name, i), nil
				}
			}
			return nil, fmt.Errorf("engine: column %s must appear in GROUP BY or an aggregate", c)
		})
	}
	// Also allow whole group-by expressions (not just columns) in items.
	rewriteItem := func(e expr.Expr) (expr.Expr, error) {
		canon, err := canonicalize(e, inScope, inCols)
		if err == nil {
			for i, g := range groupCanon {
				if canon.String() == g {
					return expr.NewColIdx(aggOutCols[i].Name, i), nil
				}
			}
		}
		return rewrite(e)
	}

	newItems := make([]boundItem, len(items))
	for i, it := range items {
		re, err := rewriteItem(it.Expr)
		if err != nil {
			return nil, nil, err
		}
		newItems[i] = boundItem{Expr: re, Name: it.Name, Table: ""}
	}
	var out planNode = aggN
	if s.Having != nil {
		rh, err := rewrite(s.Having)
		if err != nil {
			return nil, nil, err
		}
		out = &filterNode{child: aggN, pred: rh}
	}
	return out, newItems, nil
}

// --- scan node construction & index selection ---

func newScanNode(tbl *catalog.Table, alias string) *scanNode {
	cols := make([]Column, len(tbl.Def.Columns))
	for i, c := range tbl.Def.Columns {
		cols[i] = Column{Table: alias, Name: c.Name, Kind: c.Kind}
	}
	return &scanNode{tbl: tbl, alias: alias, cols: cols}
}

// addFilter sets or extends the scan's filter (bound against the table row)
// and re-runs index selection.
func (sn *scanNode) addFilter(bound expr.Expr) {
	sn.filter = expr.CombineConjuncts(sn.filter, bound)
	sn.chooseIndex()
}

// chooseIndex inspects the filter's conjuncts for equality (col = const)
// prefixes over an index, plus an optional range bound on the following
// index column.
func (sn *scanNode) chooseIndex() {
	sn.idx, sn.lo, sn.hi, sn.idxDesc = nil, nil, nil, ""
	if sn.filter == nil {
		return
	}
	eq := map[int]types.Datum{}
	type rng struct {
		lo, hi       *types.Datum
		loInc, hiInc bool
	}
	ranges := map[int]*rng{}
	getRange := func(ord int) *rng {
		if ranges[ord] == nil {
			ranges[ord] = &rng{}
		}
		return ranges[ord]
	}
	for _, conj := range expr.SplitConjuncts(sn.filter) {
		bo, ok := conj.(*expr.BinOp)
		if !ok || !bo.Op.Comparison() {
			continue
		}
		col, cok := bo.L.(*expr.Col)
		cst, vok := bo.R.(*expr.Const)
		op := bo.Op
		if !cok || !vok {
			// const OP col: flip.
			col, cok = bo.R.(*expr.Col)
			cst, vok = bo.L.(*expr.Const)
			if !cok || !vok {
				continue
			}
			switch op {
			case expr.OpLt:
				op = expr.OpGt
			case expr.OpLe:
				op = expr.OpGe
			case expr.OpGt:
				op = expr.OpLt
			case expr.OpGe:
				op = expr.OpLe
			}
		}
		if cst.Val.IsNull() {
			continue
		}
		v := cst.Val
		switch op {
		case expr.OpEq:
			eq[col.Index] = v
		case expr.OpGt:
			r := getRange(col.Index)
			r.lo, r.loInc = &v, false
		case expr.OpGe:
			r := getRange(col.Index)
			r.lo, r.loInc = &v, true
		case expr.OpLt:
			r := getRange(col.Index)
			r.hi, r.hiInc = &v, false
		case expr.OpLe:
			r := getRange(col.Index)
			r.hi, r.hiInc = &v, true
		}
	}
	if len(eq) == 0 && len(ranges) == 0 {
		return
	}
	var best index.Index
	bestPrefix := 0
	bestHasRange := false
	for _, idx := range sn.tbl.Indexes() {
		def := idx.Def()
		prefix := 0
		for _, ord := range def.Columns {
			if _, ok := eq[ord]; ok {
				prefix++
			} else {
				break
			}
		}
		hasRange := prefix < len(def.Columns) && ranges[def.Columns[prefix]] != nil
		if prefix == 0 && !hasRange {
			continue
		}
		if prefix > bestPrefix || (prefix == bestPrefix && hasRange && !bestHasRange) {
			best, bestPrefix, bestHasRange = idx, prefix, hasRange
		}
	}
	if best == nil {
		return
	}
	def := best.Def()
	prefixKey := make(types.Row, bestPrefix)
	for i := 0; i < bestPrefix; i++ {
		prefixKey[i] = eq[def.Columns[i]]
	}
	encoded := types.EncodeKey(nil, prefixKey)
	lo := encoded
	hi := index.PrefixSucc(encoded)
	desc := fmt.Sprintf("%s (=%d cols", def.Name, bestPrefix)
	if bestHasRange {
		r := ranges[def.Columns[bestPrefix]]
		if r.lo != nil {
			lo = types.EncodeDatum(append([]byte(nil), encoded...), *r.lo)
			if !r.loInc {
				lo = append(lo, 0xFF) // skip the exact bound
			}
		}
		if r.hi != nil {
			h := types.EncodeDatum(append([]byte(nil), encoded...), *r.hi)
			if r.hiInc {
				h = append(h, 0xFF)
			}
			hi = h
		}
		desc += "+range"
	}
	desc += ")"
	sn.idx, sn.lo, sn.hi, sn.idxDesc = best, lo, hi, desc
}
