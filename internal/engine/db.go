// Package engine is the query engine: DDL, a planner with view expansion and
// predicate pushdown, executors (scans, index scans, joins, aggregation), DML
// with constraint enforcement and index maintenance, EXPLAIN, and WAL-based
// recovery. BullFrog's migration machinery (internal/core) drives this engine
// for both client requests and migration transactions.
package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/bullfrogdb/bullfrog/internal/catalog"
	"github.com/bullfrogdb/bullfrog/internal/expr"
	"github.com/bullfrogdb/bullfrog/internal/index"
	"github.com/bullfrogdb/bullfrog/internal/obs"
	"github.com/bullfrogdb/bullfrog/internal/obs/trace"
	"github.com/bullfrogdb/bullfrog/internal/schema"
	"github.com/bullfrogdb/bullfrog/internal/sql"
	"github.com/bullfrogdb/bullfrog/internal/storage"
	"github.com/bullfrogdb/bullfrog/internal/txn"
	"github.com/bullfrogdb/bullfrog/internal/types"
	"github.com/bullfrogdb/bullfrog/internal/wal"
)

// Options configures a DB.
type Options struct {
	// PageSize is the heap slots-per-page (0 = storage default).
	PageSize uint32
	// LockTimeout bounds row/key lock waits (0 = txn default).
	LockTimeout time.Duration
	// WAL receives redo records; nil disables logging.
	WAL wal.Logger
}

// ErrWALAppend marks failures to append or flush redo-log records — the
// durability path is rejecting writes. It is wrapped alongside the
// underlying I/O error so both survive errors.Is.
var ErrWALAppend = errors.New("engine: WAL append failed")

// MigrationHook lets BullFrog's controller intercept engine operations that
// may require lazy migration before they can proceed:
//
//   - BeforeKeyCheck runs before a unique-key or foreign-key existence check
//     so relevant old-schema rows can be migrated first (paper §2.1: INSERTs
//     and constraint checks widen the migration scope). The transaction is
//     passed so migration transactions themselves bypass the hook.
type MigrationHook interface {
	BeforeKeyCheck(tx *txn.Txn, table string, cols []int, key types.Row) error
}

// DB is an embedded database instance.
type DB struct {
	cat     *catalog.Catalog
	tm      *txn.Manager
	opts    Options
	log     wal.Logger
	logging bool // false when the WAL is Nop: skip redo buffering entirely
	hook    MigrationHook
	met     *obs.Set
	plans   *planCache
	// tracing enables span phase attribution on the statement path. When
	// false (the default) no trace context lookups happen at all, so the
	// disabled-tracer cost is one bool check per site.
	tracing bool

	// installMu guards installs, the in-order catalog-install history.
	// Checkpoints snapshot it so recovery from a checkpoint still learns
	// which migration was active (install markers in deleted segments would
	// otherwise be lost).
	installMu sync.Mutex
	installs  []InstallRecord
}

// InstallRecord is one entry of the catalog-install history: the migration
// name plus the opaque version metadata the layer above attached (the schema
// version registry's encoded SchemaVersion). Meta rides the WAL install
// marker's Key field and the checkpoint sidecar, so the history — including
// metadata — is rebuilt by recovery.
type InstallRecord struct {
	Name string
	Meta []byte
}

// New creates an empty database.
func New(opts Options) *DB {
	log := opts.WAL
	if log == nil {
		log = wal.Nop{}
	}
	if opts.LockTimeout == 0 {
		opts.LockTimeout = txn.DefaultLockTimeout
	}
	tm := txn.NewManager()
	set := &obs.Set{
		Engine:    &obs.EngineMetrics{},
		Txn:       tm.Obs(),
		WAL:       &obs.WALMetrics{},
		Migration: &obs.MigrationMetrics{},
		Catalog:   &obs.CatalogMetrics{},
		Trace:     &obs.TraceMetrics{},
	}
	log = wal.Instrument(log, set.WAL)
	cat := catalog.New()
	cat.SetObs(set.Catalog)
	_, nop := log.(wal.Nop)
	return &DB{cat: cat, tm: tm, opts: opts, log: log, logging: !nop, met: set, plans: newPlanCache()}
}

// Obs returns the database's metrics set. Never nil; every sub-struct is
// present, so layers built on the engine (internal/core, the facade) record
// into it directly.
func (db *DB) Obs() *obs.Set { return db.met }

// SetTracing turns span phase attribution on the statement path on or off.
// Call before concurrent use (the facade sets it at Open).
func (db *DB) SetTracing(on bool) { db.tracing = on }

// spanOf returns the span riding the transaction's statement context, or nil
// — guarded by the tracing flag so the disabled path never touches the ctx.
func (db *DB) spanOf(tx *txn.Txn) *trace.Span {
	if !db.tracing {
		return nil
	}
	return trace.FromContext(tx.Context())
}

// Catalog exposes the catalog (used by internal/core and tests).
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// TxnManager exposes the transaction manager.
func (db *DB) TxnManager() *txn.Manager { return db.tm }

// CatalogAt returns the catalog version pinned by a snapshot at commit
// sequence seq (see catalog.Catalog.At).
func (db *DB) CatalogAt(seq uint64) *catalog.Version { return db.cat.At(seq) }

// catForTxn returns the catalog version the transaction's snapshot pinned —
// the schema every statement in the transaction resolves names against, so a
// migration installing a newer version mid-transaction cannot tear a
// statement across schemas.
func (db *DB) catForTxn(tx *txn.Txn) *catalog.Version {
	return db.cat.At(tx.Snapshot().Seq)
}

// InstallCatalogVersion publishes a new catalog version that marks the named
// tables retired, at a commit sequence reserved through the transaction
// manager's install barrier — BullFrog's big flip as a CAS instead of a
// stop-the-world drain. The install marker is logged and flushed (durably,
// when the log knows its device) before the barrier so a failing log device
// aborts the flip with nothing published; a crash after the marker but
// before the install is safe because trackers are rebuilt by re-running the
// migration's Start on recovery (§3.5). The whole sequence runs inside the
// commit fence so a checkpoint's rotation cannot split the marker from the
// published version or the recorded install history.
// The marker's Key carries meta — opaque version metadata recorded in the
// install history (nil is fine; the registry layer encodes a SchemaVersion
// there).
func (db *DB) InstallCatalogVersion(name string, meta []byte, retire []string) (uint64, error) {
	release := db.enterCommit()
	defer release()
	if err := db.log.Append(wal.Record{Type: wal.RecInstall, Table: name, Key: meta}); err != nil {
		return 0, fmt.Errorf("engine: logging catalog install: %w: %w", ErrWALAppend, err)
	}
	if err := db.log.Flush(); err != nil {
		return 0, fmt.Errorf("engine: flushing catalog install: %w: %w", ErrWALAppend, err)
	}
	seq, err := db.tm.InstallBarrier(func(seq uint64) error {
		_, err := db.cat.Install(seq, retire)
		return err
	})
	if err != nil {
		return 0, err
	}
	db.installMu.Lock()
	db.installs = append(db.installs, InstallRecord{Name: name, Meta: meta})
	db.installMu.Unlock()
	// Each install extends the version chain; cut everything no active
	// snapshot can still see so a flip ping-pong loop (migrate, reset,
	// migrate, ...) keeps catalog.versions_live bounded instead of growing
	// one version per flip until the next explicit Vacuum. The immediate
	// predecessor is always kept — transactions that begin between the
	// install and this prune still resolve the pre-flip schema.
	horizon := db.tm.OldestActiveSnapshot()
	if seq > 0 && seq-1 < horizon {
		horizon = seq - 1
	}
	db.cat.Prune(horizon)
	return seq, nil
}

// InstallHistory returns the catalog installs published so far, in order.
func (db *DB) InstallHistory() []InstallRecord {
	db.installMu.Lock()
	defer db.installMu.Unlock()
	return append([]InstallRecord(nil), db.installs...)
}

// WAL exposes the redo logger.
func (db *DB) WAL() wal.Logger { return db.log }

// SetMigrationHook installs the BullFrog controller's hook. Passing nil
// removes it.
func (db *DB) SetMigrationHook(h MigrationHook) { db.hook = h }

// Begin starts a transaction.
func (db *DB) Begin() *txn.Txn { return db.tm.Begin() }

// LogRedo buffers a redo record on the transaction. Nothing reaches the log
// until Commit appends the whole batch followed by the commit record —
// commit-time batch logging. Aborted transactions therefore never appear in
// the log at all, and recovery needs no abort records or aborted-XID
// tracking. With logging disabled (Nop WAL) this is a no-op.
func (db *DB) LogRedo(tx *txn.Txn, rec wal.Record) {
	if !db.logging {
		return
	}
	rec.XID = tx.ID()
	tx.AppendRedo(rec)
}

// enterCommit takes the log's commit-fence token when the log is a
// checkpointing target (wal.Dir). The token is held from before the batch
// append until after the transaction publishes, so a checkpoint's segment
// rotation can never land between a transaction's log records and its
// visibility — the snapshot and the log cut always agree.
func (db *DB) enterCommit() func() {
	if f, ok := db.log.(wal.CommitFencer); ok {
		return f.EnterCommit()
	}
	return func() {}
}

// appendBatch hands the transaction's records to the log in one durable
// step. A BatchLogger (the real WAL writer) appends the batch atomically and
// waits for the covering group-commit sync; other loggers fall back to
// record-at-a-time appends plus an explicit flush.
func (db *DB) appendBatch(recs []wal.Record, sp *trace.Span) error {
	if sl, ok := db.log.(wal.SpanBatchLogger); ok {
		return sl.AppendBatchSpan(recs, sp)
	}
	if bl, ok := db.log.(wal.BatchLogger); ok {
		return bl.AppendBatch(recs)
	}
	for _, rec := range recs {
		if err := db.log.Append(rec); err != nil {
			return err
		}
	}
	return db.log.Flush()
}

// Commit durably commits: the transaction's buffered redo batch plus its
// commit record are appended atomically and made durable before the
// transaction becomes visible. Transactions with no redo (read-only, or
// DDL-only — the catalog is rebuilt by replaying install markers, not DML)
// skip the log entirely.
func (db *DB) Commit(tx *txn.Txn) error {
	if tx.Done() {
		return txn.ErrTxnDone
	}
	start := time.Now()
	// The commit phase is recorded as a remainder: total commit time minus
	// the WAL phases AppendBatchSpan attributes inside (append, group wait,
	// fsync), so a finished span's phases still sum to its wall time.
	sp := db.spanOf(tx)
	walBefore := walPhases(sp)
	recs := tx.TakeRedo()
	if len(recs) == 0 {
		if err := tx.Commit(); err != nil {
			return err
		}
		db.met.Txn.CommitLatency.ObserveSince(start)
		sp.AddSince(trace.PhaseCommit, start)
		return nil
	}
	recs = append(recs, wal.Record{Type: wal.RecCommit, XID: tx.ID()})
	release := db.enterCommit()
	if err := db.appendBatch(recs, sp); err != nil {
		release()
		tx.Abort()
		return fmt.Errorf("engine: logging commit: %w: %w", ErrWALAppend, err)
	}
	err := tx.Commit()
	release()
	if err != nil {
		return err
	}
	db.met.Txn.CommitLatency.ObserveSince(start)
	if sp != nil {
		sp.Add(trace.PhaseCommit, time.Since(start)-(walPhases(sp)-walBefore))
	}
	return nil
}

// walPhases sums the span's WAL-attributed phases (0 for a nil span).
func walPhases(sp *trace.Span) time.Duration {
	return sp.PhaseTotal(trace.PhaseWALAppend) +
		sp.PhaseTotal(trace.PhaseGroupWait) +
		sp.PhaseTotal(trace.PhaseFsync)
}

// Abort rolls the transaction back. With commit-time batch logging the
// transaction's redo records were never appended, so there is nothing to log
// — the buffered batch is simply dropped with the transaction state. Always
// returns nil; the error form survives for call-site compatibility.
func (db *DB) Abort(tx *txn.Txn) error {
	tx.Abort()
	return nil
}

// Result is the outcome of executing a statement.
type Result struct {
	Columns  []string
	Rows     []types.Row
	Affected int
	Explain  string // set for EXPLAIN
}

// Exec parses and executes one or more statements, each in its own
// transaction. The result of the last statement is returned.
func (db *DB) Exec(src string) (*Result, error) {
	stmts, err := sql.Parse(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) == 0 {
		return &Result{}, nil
	}
	var last *Result
	for _, s := range stmts {
		tx := db.Begin()
		res, err := db.ExecStmt(tx, s)
		if err != nil {
			_ = db.Abort(tx)
			return nil, err
		}
		if err := db.Commit(tx); err != nil {
			return nil, err
		}
		last = res
	}
	return last, nil
}

// ExecTx parses and executes statements inside the caller's transaction.
func (db *DB) ExecTx(tx *txn.Txn, src string) (*Result, error) {
	stmts, err := sql.Parse(src)
	if err != nil {
		return nil, err
	}
	var last *Result = &Result{}
	for _, s := range stmts {
		res, err := db.ExecStmt(tx, s)
		if err != nil {
			return nil, err
		}
		last = res
	}
	return last, nil
}

// ExecStmtContext executes a parsed statement inside the transaction with
// ctx bounding the statement's blocking waits: for the duration of the call
// the transaction's statement context (txn.Txn.SetContext) is ctx, so a
// cancelled statement stops waiting in the lock queue immediately and
// returns the context's cause. A nil ctx behaves like ExecStmt.
func (db *DB) ExecStmtContext(ctx context.Context, tx *txn.Txn, stmt sql.Statement) (*Result, error) {
	prev := tx.SetContext(ctx)
	defer tx.SetContext(prev)
	return db.ExecStmt(tx, stmt)
}

// ExecStmt executes a parsed statement inside the transaction, recording
// per-kind execution latency (failed statements included).
func (db *DB) ExecStmt(tx *txn.Txn, stmt sql.Statement) (*Result, error) {
	start := time.Now()
	kind := stmtKind(stmt)
	// The exec phase is a remainder: elapsed minus the nested phases that
	// execStmt attributes itself (planning, lock waits, lazy migration), so
	// phase timings on a finished span sum to its wall time.
	sp := db.spanOf(tx)
	nestedBefore := nestedExecPhases(sp)
	res, err := db.execStmt(tx, stmt)
	db.met.Engine.Exec[kind].ObserveSince(start)
	if sp != nil {
		sp.Add(trace.PhaseExec, time.Since(start)-(nestedExecPhases(sp)-nestedBefore))
	}
	// DDL changes what cached plans were compiled against (tables, views,
	// index choices); drop them all. Even failed DDL may have partially
	// mutated the catalog, so invalidate unconditionally.
	if kind == obs.StmtDDL {
		db.plans.invalidate()
	}
	return res, err
}

func stmtKind(stmt sql.Statement) obs.StmtKind {
	switch s := stmt.(type) {
	case *sql.SelectStmt:
		return obs.StmtSelect
	case *sql.InsertStmt:
		return obs.StmtInsert
	case *sql.UpdateStmt:
		return obs.StmtUpdate
	case *sql.DeleteStmt:
		return obs.StmtDelete
	case *sql.CreateTableStmt, *sql.CreateViewStmt, *sql.CreateIndexStmt,
		*sql.DropTableStmt, *sql.DropViewStmt, *sql.AlterRenameStmt,
		*sql.AlterAddFKStmt, *sql.AlterDropConstraintStmt:
		return obs.StmtDDL
	case *sql.ExplainStmt:
		return stmtKind(s.Inner)
	default:
		return obs.StmtOther
	}
}

func (db *DB) execStmt(tx *txn.Txn, stmt sql.Statement) (*Result, error) {
	switch s := stmt.(type) {
	case *sql.SelectStmt:
		return db.execSelect(tx, s)
	case *sql.CreateTableStmt:
		return db.execCreateTable(tx, s)
	case *sql.CreateViewStmt:
		return db.execCreateView(s)
	case *sql.CreateIndexStmt:
		return db.execCreateIndex(tx, s)
	case *sql.DropTableStmt:
		if err := db.cat.DropTable(s.Name); err != nil {
			if s.IfExists {
				return &Result{}, nil
			}
			return nil, err
		}
		return &Result{}, nil
	case *sql.DropViewStmt:
		if err := db.cat.DropView(s.Name); err != nil {
			if s.IfExists {
				return &Result{}, nil
			}
			return nil, err
		}
		return &Result{}, nil
	case *sql.AlterRenameStmt:
		if err := db.cat.RenameTable(s.Old, s.New); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sql.AlterAddFKStmt:
		return db.execAlterAddFK(s)
	case *sql.AlterDropConstraintStmt:
		return db.execAlterDropConstraint(s)
	case *sql.InsertStmt:
		return db.execInsert(tx, s)
	case *sql.UpdateStmt:
		return db.execUpdate(tx, s)
	case *sql.DeleteStmt:
		return db.execDelete(tx, s)
	case *sql.ExplainStmt:
		return db.execExplain(tx, s)
	default:
		return nil, fmt.Errorf("engine: unsupported statement %T", stmt)
	}
}

// nestedExecPhases sums the phases attributed inside statement execution
// (0 for a nil span).
func nestedExecPhases(sp *trace.Span) time.Duration {
	return sp.PhaseTotal(trace.PhasePlan) +
		sp.PhaseTotal(trace.PhaseLockWait) +
		sp.PhaseTotal(trace.PhaseLazyMigrate)
}

func (db *DB) execSelect(tx *txn.Txn, s *sql.SelectStmt) (*Result, error) {
	planStart := time.Now()
	p, err := db.PlanSelectAt(db.catForTxn(tx), s)
	if sp := db.spanOf(tx); sp != nil {
		sp.AddSince(trace.PhasePlan, planStart)
	}
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: p.ColumnNames()}
	err = p.Execute(tx, func(row types.Row) error {
		res.Rows = append(res.Rows, row.Clone())
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

func (db *DB) execCreateView(s *sql.CreateViewStmt) (*Result, error) {
	// Plan once to validate and derive output column names.
	p, err := db.PlanSelect(s.Select)
	if err != nil {
		return nil, fmt.Errorf("engine: invalid view %q: %w", s.Name, err)
	}
	v := &catalog.View{Name: s.Name, Columns: p.ColumnNames(), Def: s.Select}
	if err := db.cat.CreateView(v); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func (db *DB) execCreateIndex(tx *txn.Txn, s *sql.CreateIndexStmt) (*Result, error) {
	tbl, err := db.cat.Table(s.Table)
	if err != nil {
		return nil, err
	}
	ords := make([]int, len(s.Columns))
	for i, name := range s.Columns {
		ord := tbl.Def.ColumnIndex(name)
		if ord < 0 {
			return nil, fmt.Errorf("engine: column %q does not exist in %q", name, s.Table)
		}
		ords[i] = ord
	}
	def := &index.Def{ID: db.cat.NextIndexID(), Name: s.Name, Table: tbl.Def.Name, Columns: ords, Unique: s.Unique}
	var idx index.Index
	if s.UseHash {
		idx = index.NewHash(def)
	} else {
		idx = index.NewBTree(def)
	}
	// Backfill from current table contents (visible to this txn).
	err = tbl.Heap.Scan(func(tid storage.TID, head *storage.Version) error {
		row, ok := tx.VisibleRow(head)
		if !ok {
			return nil
		}
		key := def.KeyFromRow(row)
		if s.Unique && len(idx.Lookup(key)) > 0 {
			return fmt.Errorf("engine: cannot create unique index %q: duplicate key %v", s.Name, key)
		}
		idx.Insert(key, tid)
		return nil
	})
	if err != nil {
		return nil, err
	}
	tbl.AddIndex(idx)
	return &Result{}, nil
}

func (db *DB) execCreateTable(tx *txn.Txn, s *sql.CreateTableStmt) (*Result, error) {
	if s.AsSelect != nil {
		return db.execCreateTableAs(tx, s)
	}
	def, uniques, err := buildTableDef(s)
	if err != nil {
		return nil, err
	}
	tbl, err := db.cat.CreateTable(def, db.opts.PageSize)
	if err != nil {
		return nil, err
	}
	// Primary key and unique constraints are enforced via unique indexes.
	if len(def.PrimaryKey) > 0 {
		db.addIndexFor(tbl, def.Name+"_pkey", def.PrimaryKey, true)
	}
	for i, cols := range uniques {
		db.addIndexFor(tbl, fmt.Sprintf("%s_unique_%d", def.Name, i), cols, true)
	}
	// Resolve foreign keys: referenced columns default to the referenced
	// table's primary key, and an index must exist on the referenced side.
	for i := range def.ForeignKey {
		fk := &def.ForeignKey[i]
		refTbl, err := db.cat.Table(fk.RefTable)
		if err != nil {
			return nil, fmt.Errorf("engine: foreign key references %w", err)
		}
		if len(fk.RefColumnNames) > 0 {
			fk.RefColumns = make([]int, len(fk.RefColumnNames))
			for j, name := range fk.RefColumnNames {
				ord := refTbl.Def.ColumnIndex(name)
				if ord < 0 {
					return nil, fmt.Errorf("engine: foreign key references unknown column %s.%s", fk.RefTable, name)
				}
				fk.RefColumns[j] = ord
			}
		} else {
			fk.RefColumns = append([]int(nil), refTbl.Def.PrimaryKey...)
		}
		if len(fk.RefColumns) != len(fk.Columns) {
			return nil, fmt.Errorf("engine: foreign key on %q has %d columns but references %d", def.Name, len(fk.Columns), len(fk.RefColumns))
		}
		if refTbl.IndexOnPrefix(fk.RefColumns) == nil {
			return nil, fmt.Errorf("engine: foreign key on %q requires a unique index on %s%v", def.Name, fk.RefTable, fk.RefColumns)
		}
	}
	return &Result{}, nil
}

func (db *DB) addIndexFor(tbl *catalog.Table, name string, cols []int, unique bool) index.Index {
	def := &index.Def{ID: db.cat.NextIndexID(), Name: name, Table: tbl.Def.Name, Columns: append([]int(nil), cols...), Unique: unique}
	idx := index.NewBTree(def)
	tbl.AddIndex(idx)
	return idx
}

// execCreateTableAs implements CREATE TABLE ... AS SELECT: derive the schema
// from the select's output, create the table, and bulk-insert the results.
// This is the physical operation behind eager migration.
func (db *DB) execCreateTableAs(tx *txn.Txn, s *sql.CreateTableStmt) (*Result, error) {
	p, err := db.PlanSelect(s.AsSelect)
	if err != nil {
		return nil, err
	}
	cols := p.Columns()
	defCols := make([]schema.Column, len(cols))
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("engine: CREATE TABLE AS output column %d needs a name (use AS)", i+1)
		}
		defCols[i] = schema.Column{Name: c.Name, Kind: c.Kind}
	}
	def, err := schema.NewTable(s.Name, defCols)
	if err != nil {
		return nil, err
	}
	tbl, err := db.cat.CreateTable(def, db.opts.PageSize)
	if err != nil {
		return nil, err
	}
	n := 0
	err = p.Execute(tx, func(row types.Row) error {
		if _, _, err := db.InsertRow(tx, tbl, row.Clone(), sql.ConflictError); err != nil {
			return err
		}
		n++
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{Affected: n}, nil
}

// execAlterAddFK appends a foreign-key constraint to an existing table.
// Existing rows are not re-validated (constraint addition during a migration
// applies to data as it moves; see DESIGN.md); new writes are checked.
func (db *DB) execAlterAddFK(s *sql.AlterAddFKStmt) (*Result, error) {
	tbl, err := db.cat.Table(s.Table)
	if err != nil {
		return nil, err
	}
	fk := schema.ForeignKey{Name: s.FK.Name, RefTable: s.FK.RefTable}
	for _, name := range s.FK.Columns {
		ord := tbl.Def.ColumnIndex(name)
		if ord < 0 {
			return nil, fmt.Errorf("engine: unknown column %q in foreign key on %q", name, s.Table)
		}
		fk.Columns = append(fk.Columns, ord)
	}
	refTbl, err := db.cat.Table(s.FK.RefTable)
	if err != nil {
		return nil, fmt.Errorf("engine: foreign key references %w", err)
	}
	if len(s.FK.RefColumns) > 0 {
		for _, name := range s.FK.RefColumns {
			ord := refTbl.Def.ColumnIndex(name)
			if ord < 0 {
				return nil, fmt.Errorf("engine: foreign key references unknown column %s.%s", s.FK.RefTable, name)
			}
			fk.RefColumns = append(fk.RefColumns, ord)
		}
	} else {
		fk.RefColumns = append([]int(nil), refTbl.Def.PrimaryKey...)
	}
	if len(fk.Columns) != len(fk.RefColumns) {
		return nil, fmt.Errorf("engine: foreign key arity mismatch on %q", s.Table)
	}
	if refTbl.IndexOnPrefix(fk.RefColumns) == nil {
		return nil, fmt.Errorf("engine: foreign key on %q requires a unique index on %s", s.Table, s.FK.RefTable)
	}
	tbl.Def.ForeignKey = append(tbl.Def.ForeignKey, fk)
	return &Result{}, nil
}

// execAlterDropConstraint removes a named FOREIGN KEY or CHECK constraint.
func (db *DB) execAlterDropConstraint(s *sql.AlterDropConstraintStmt) (*Result, error) {
	tbl, err := db.cat.Table(s.Table)
	if err != nil {
		return nil, err
	}
	for i, fk := range tbl.Def.ForeignKey {
		if strings.EqualFold(fk.Name, s.Name) {
			tbl.Def.ForeignKey = append(tbl.Def.ForeignKey[:i], tbl.Def.ForeignKey[i+1:]...)
			return &Result{}, nil
		}
	}
	for i, ck := range tbl.Def.Checks {
		if strings.EqualFold(ck.Name, s.Name) {
			tbl.Def.Checks = append(tbl.Def.Checks[:i], tbl.Def.Checks[i+1:]...)
			return &Result{}, nil
		}
	}
	return nil, fmt.Errorf("engine: constraint %q not found on %q", s.Name, s.Table)
}

// buildTableDef converts a CREATE TABLE AST into schema metadata plus the
// list of unique-constraint column sets.
func buildTableDef(s *sql.CreateTableStmt) (*schema.Table, [][]int, error) {
	cols := make([]schema.Column, len(s.Columns))
	for i, c := range s.Columns {
		cols[i] = schema.Column{Name: c.Name, Kind: c.Kind, NotNull: c.NotNull, Default: c.Default}
	}
	def, err := schema.NewTable(s.Name, cols)
	if err != nil {
		return nil, nil, err
	}
	resolve := func(names []string) ([]int, error) {
		out := make([]int, len(names))
		for i, n := range names {
			ord := def.ColumnIndex(n)
			if ord < 0 {
				return nil, fmt.Errorf("engine: unknown column %q in constraint on %q", n, s.Name)
			}
			out[i] = ord
		}
		return out, nil
	}
	var uniques [][]int
	// Column-level shorthands.
	for i, c := range s.Columns {
		if c.PrimaryKey {
			if def.PrimaryKey != nil {
				return nil, nil, fmt.Errorf("engine: multiple primary keys on %q", s.Name)
			}
			def.PrimaryKey = []int{i}
			def.Columns[i].NotNull = true
		}
		if c.Unique {
			uniques = append(uniques, []int{i})
		}
		if c.Check != nil {
			bound, err := expr.Bind(c.Check, def.Scope(""))
			if err != nil {
				return nil, nil, err
			}
			def.Checks = append(def.Checks, schema.Check{Name: c.Name + "_check", Expr: bound})
		}
	}
	if s.PrimaryKey != nil {
		if def.PrimaryKey != nil {
			return nil, nil, fmt.Errorf("engine: multiple primary keys on %q", s.Name)
		}
		pk, err := resolve(s.PrimaryKey)
		if err != nil {
			return nil, nil, err
		}
		def.PrimaryKey = pk
		for _, ord := range pk {
			def.Columns[ord].NotNull = true
		}
	}
	for _, u := range s.Uniques {
		ords, err := resolve(u)
		if err != nil {
			return nil, nil, err
		}
		uniques = append(uniques, ords)
	}
	def.Uniques = uniques
	for _, ck := range s.Checks {
		bound, err := expr.Bind(ck.Expr, def.Scope(""))
		if err != nil {
			return nil, nil, err
		}
		name := ck.Name
		if name == "" {
			name = fmt.Sprintf("%s_check_%d", s.Name, len(def.Checks))
		}
		def.Checks = append(def.Checks, schema.Check{Name: name, Expr: bound})
	}
	for _, fk := range s.ForeignKeys {
		ords, err := resolve(fk.Columns)
		if err != nil {
			return nil, nil, err
		}
		def.ForeignKey = append(def.ForeignKey, schema.ForeignKey{
			Name: fk.Name, Columns: ords, RefTable: fk.RefTable,
			RefColumnNames: fk.RefColumns,
		})
	}
	return def, uniques, nil
}

// TableScope builds the binding scope for a table.
func TableScope(tbl *catalog.Table, alias string) *expr.Scope {
	return tbl.Def.Scope(alias)
}

// normalizeName lower-cases an identifier the way the parser does, so
// programmatic callers can use any case.
func normalizeName(s string) string { return strings.ToLower(s) }
