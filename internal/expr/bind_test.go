package expr

import (
	"testing"

	"github.com/bullfrogdb/bullfrog/internal/types"
)

func testScope() *Scope {
	return NewScope(
		ScopeCol{Table: "f", Name: "flightid", Kind: types.KindString},
		ScopeCol{Table: "f", Name: "capacity", Kind: types.KindInt},
		ScopeCol{Table: "fi", Name: "flightid", Kind: types.KindString},
		ScopeCol{Table: "fi", Name: "passenger_count", Kind: types.KindInt},
	)
}

func TestScopeResolve(t *testing.T) {
	s := testScope()
	if idx, err := s.Resolve("f", "capacity"); err != nil || idx != 1 {
		t.Errorf("Resolve(f.capacity) = %d, %v", idx, err)
	}
	if idx, err := s.Resolve("", "passenger_count"); err != nil || idx != 3 {
		t.Errorf("Resolve(passenger_count) = %d, %v", idx, err)
	}
	if idx, err := s.Resolve("FI", "FLIGHTID"); err != nil || idx != 2 {
		t.Errorf("case-insensitive Resolve = %d, %v", idx, err)
	}
	if _, err := s.Resolve("", "flightid"); err == nil {
		t.Error("ambiguous unqualified name should error")
	}
	if _, err := s.Resolve("", "nosuch"); err == nil {
		t.Error("unknown column should error")
	}
	if _, err := s.Resolve("zz", "flightid"); err == nil {
		t.Error("unknown qualifier should error")
	}
}

func TestBindAndEval(t *testing.T) {
	s := testScope()
	e := NewBinOp(OpSub, NewCol("f", "capacity"), NewCol("", "passenger_count"))
	bound, err := Bind(e, s)
	if err != nil {
		t.Fatal(err)
	}
	row := types.Row{types.NewString("AA1"), types.NewInt(180), types.NewString("AA1"), types.NewInt(150)}
	v, err := bound.Eval(row)
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != 30 {
		t.Errorf("capacity - passenger_count = %v, want 30", v)
	}
	// Binding must not mutate the original tree.
	if e.L.(*Col).Index != -1 {
		t.Error("Bind mutated its input")
	}
	if _, err := Bind(NewCol("", "nosuch"), s); err == nil {
		t.Error("binding an unknown column should error")
	}
}

func TestSplitAndCombineConjuncts(t *testing.T) {
	a := NewBinOp(OpEq, NewCol("", "x"), intc(1))
	b := NewBinOp(OpGt, NewCol("", "y"), intc(2))
	c := NewBinOp(OpLt, NewCol("", "z"), intc(3))
	combined := CombineConjuncts(a, nil, b, c)
	parts := SplitConjuncts(combined)
	if len(parts) != 3 {
		t.Fatalf("SplitConjuncts: got %d parts, want 3", len(parts))
	}
	if CombineConjuncts() != nil {
		t.Error("CombineConjuncts() should be nil")
	}
	if CombineConjuncts(a) != a {
		t.Error("CombineConjuncts(a) should be a")
	}
	// An OR must not be split.
	or := NewBinOp(OpOr, a, b)
	if got := len(SplitConjuncts(or)); got != 1 {
		t.Errorf("SplitConjuncts(OR) = %d parts, want 1", got)
	}
	if SplitConjuncts(nil) != nil {
		t.Error("SplitConjuncts(nil) should be nil")
	}
}

func TestCollectCols(t *testing.T) {
	e := NewBinOp(OpAnd,
		NewBinOp(OpEq, NewCol("t", "a"), intc(1)),
		&Func{Name: "ABS", Args: []Expr{NewCol("", "b")}})
	cols := CollectCols(e)
	if len(cols) != 2 || cols[0].Name != "a" || cols[1].Name != "b" {
		t.Errorf("CollectCols = %v", cols)
	}
}

func TestTransformSubstitution(t *testing.T) {
	// Substitute column "fid" with f.flightid — exactly what view transposition does.
	e := NewBinOp(OpEq, NewCol("", "fid"), strc("AA101"))
	out, err := Transform(e, func(x Expr) (Expr, error) {
		if c, ok := x.(*Col); ok && c.Name == "fid" {
			return NewCol("f", "flightid"), nil
		}
		return x, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != "(f.flightid = 'AA101')" {
		t.Errorf("substitution result: %s", out)
	}
	if e.String() != "(fid = 'AA101')" {
		t.Error("Transform mutated its input")
	}
}

func TestTransformCoversAllNodes(t *testing.T) {
	nodes := []Expr{
		intc(1),
		NewCol("t", "c"),
		NewBinOp(OpAdd, intc(1), intc(2)),
		&Not{E: boolc(true)},
		&IsNull{E: intc(1)},
		&Func{Name: "ABS", Args: []Expr{intc(-1)}},
		&InList{E: intc(1), List: []Expr{intc(1), intc(2)}},
		&Case{Whens: []When{{Cond: boolc(true), Then: intc(1)}}, Else: intc(0)},
	}
	for _, n := range nodes {
		cloned := Clone(n)
		if cloned.String() != n.String() {
			t.Errorf("Clone(%s) = %s", n, cloned)
		}
		count := 0
		Walk(n, func(Expr) bool { count++; return true })
		if count == 0 {
			t.Errorf("Walk visited nothing for %s", n)
		}
	}
	if c, _ := Transform(nil, nil); c != nil {
		t.Error("Transform(nil) should be nil")
	}
}

func TestWalkEarlyStop(t *testing.T) {
	e := NewBinOp(OpAnd, boolc(true), boolc(false))
	count := 0
	Walk(e, func(Expr) bool { count++; return false })
	if count != 1 {
		t.Errorf("early stop visited %d nodes, want 1", count)
	}
}
