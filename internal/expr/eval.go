package expr

import (
	"fmt"
	"strings"

	"github.com/bullfrogdb/bullfrog/internal/types"
)

// Eval for BinOp implements SQL semantics: comparisons and arithmetic return
// NULL when any operand is NULL; AND/OR use Kleene three-valued logic.
func (b *BinOp) Eval(row types.Row) (types.Datum, error) {
	if b.Op == OpAnd || b.Op == OpOr {
		return b.evalLogical(row)
	}
	l, err := b.L.Eval(row)
	if err != nil {
		return types.Null, err
	}
	r, err := b.R.Eval(row)
	if err != nil {
		return types.Null, err
	}
	if l.IsNull() || r.IsNull() {
		return types.Null, nil
	}
	if b.Op.Comparison() {
		c := types.Compare(l, r)
		switch b.Op {
		case OpEq:
			return types.NewBool(c == 0), nil
		case OpNe:
			return types.NewBool(c != 0), nil
		case OpLt:
			return types.NewBool(c < 0), nil
		case OpLe:
			return types.NewBool(c <= 0), nil
		case OpGt:
			return types.NewBool(c > 0), nil
		case OpGe:
			return types.NewBool(c >= 0), nil
		}
	}
	return evalArith(b.Op, l, r)
}

func (b *BinOp) evalLogical(row types.Row) (types.Datum, error) {
	l, err := b.L.Eval(row)
	if err != nil {
		return types.Null, err
	}
	// Short circuit where three-valued logic allows it.
	if !l.IsNull() {
		lv, err := truthy(l)
		if err != nil {
			return types.Null, err
		}
		if b.Op == OpAnd && !lv {
			return types.NewBool(false), nil
		}
		if b.Op == OpOr && lv {
			return types.NewBool(true), nil
		}
	}
	r, err := b.R.Eval(row)
	if err != nil {
		return types.Null, err
	}
	if !r.IsNull() {
		rv, err := truthy(r)
		if err != nil {
			return types.Null, err
		}
		if b.Op == OpAnd && !rv {
			return types.NewBool(false), nil
		}
		if b.Op == OpOr && rv {
			return types.NewBool(true), nil
		}
	}
	if l.IsNull() || r.IsNull() {
		return types.Null, nil
	}
	// Both known: l AND r where l true / l OR r where l false.
	return r, nil
}

func truthy(d types.Datum) (bool, error) {
	if d.Kind() != types.KindBool {
		return false, fmt.Errorf("expr: %s used as boolean", d.Kind())
	}
	return d.Bool(), nil
}

func evalArith(op Op, l, r types.Datum) (types.Datum, error) {
	lk, rk := l.Kind(), r.Kind()
	if op == OpAdd && lk == types.KindString && rk == types.KindString {
		return types.NewString(l.Str() + r.Str()), nil // string concatenation
	}
	numeric := func(k types.Kind) bool { return k == types.KindInt || k == types.KindFloat }
	if !numeric(lk) || !numeric(rk) {
		return types.Null, fmt.Errorf("expr: cannot apply %s to %s and %s", op, lk, rk)
	}
	if lk == types.KindInt && rk == types.KindInt && op != OpDiv {
		a, b := l.Int(), r.Int()
		switch op {
		case OpAdd:
			return types.NewInt(a + b), nil
		case OpSub:
			return types.NewInt(a - b), nil
		case OpMul:
			return types.NewInt(a * b), nil
		}
	}
	a, b := l.Float(), r.Float()
	switch op {
	case OpAdd:
		return types.NewFloat(a + b), nil
	case OpSub:
		return types.NewFloat(a - b), nil
	case OpMul:
		return types.NewFloat(a * b), nil
	case OpDiv:
		if b == 0 {
			return types.Null, fmt.Errorf("expr: division by zero")
		}
		return types.NewFloat(a / b), nil
	}
	return types.Null, fmt.Errorf("expr: unsupported arithmetic operator %s", op)
}

// Eval for Not: NOT NULL is NULL.
func (n *Not) Eval(row types.Row) (types.Datum, error) {
	v, err := n.E.Eval(row)
	if err != nil {
		return types.Null, err
	}
	if v.IsNull() {
		return types.Null, nil
	}
	b, err := truthy(v)
	if err != nil {
		return types.Null, err
	}
	return types.NewBool(!b), nil
}

// Eval for IsNull never returns NULL.
func (i *IsNull) Eval(row types.Row) (types.Datum, error) {
	v, err := i.E.Eval(row)
	if err != nil {
		return types.Null, err
	}
	return types.NewBool(v.IsNull() != i.Negate), nil
}

// Eval for InList: SQL IN semantics with NULLs (x IN (..NULL..) is NULL when
// no member matches).
func (in *InList) Eval(row types.Row) (types.Datum, error) {
	v, err := in.E.Eval(row)
	if err != nil {
		return types.Null, err
	}
	if v.IsNull() {
		return types.Null, nil
	}
	sawNull := false
	for _, e := range in.List {
		m, err := e.Eval(row)
		if err != nil {
			return types.Null, err
		}
		if m.IsNull() {
			sawNull = true
			continue
		}
		if types.Equal(v, m) {
			return types.NewBool(true), nil
		}
	}
	if sawNull {
		return types.Null, nil
	}
	return types.NewBool(false), nil
}

// Eval for Case.
func (c *Case) Eval(row types.Row) (types.Datum, error) {
	for _, w := range c.Whens {
		cond, err := w.Cond.Eval(row)
		if err != nil {
			return types.Null, err
		}
		if !cond.IsNull() {
			b, err := truthy(cond)
			if err != nil {
				return types.Null, err
			}
			if b {
				return w.Then.Eval(row)
			}
		}
	}
	if c.Else != nil {
		return c.Else.Eval(row)
	}
	return types.Null, nil
}

// Eval for Func dispatches on the (upper-cased) function name.
func (f *Func) Eval(row types.Row) (types.Datum, error) {
	args := make([]types.Datum, len(f.Args))
	for i, a := range f.Args {
		v, err := a.Eval(row)
		if err != nil {
			return types.Null, err
		}
		args[i] = v
	}
	return evalFunc(f.Name, args)
}

func evalFunc(name string, args []types.Datum) (types.Datum, error) {
	switch name {
	case "COALESCE":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return types.Null, nil
	case "ABS":
		if err := arity(name, args, 1); err != nil {
			return types.Null, err
		}
		if args[0].IsNull() {
			return types.Null, nil
		}
		switch args[0].Kind() {
		case types.KindInt:
			v := args[0].Int()
			if v < 0 {
				v = -v
			}
			return types.NewInt(v), nil
		case types.KindFloat:
			v := args[0].Float()
			if v < 0 {
				v = -v
			}
			return types.NewFloat(v), nil
		}
		return types.Null, fmt.Errorf("expr: ABS on %s", args[0].Kind())
	case "LOWER", "UPPER":
		if err := arity(name, args, 1); err != nil {
			return types.Null, err
		}
		if args[0].IsNull() {
			return types.Null, nil
		}
		if args[0].Kind() != types.KindString {
			return types.Null, fmt.Errorf("expr: %s on %s", name, args[0].Kind())
		}
		if name == "LOWER" {
			return types.NewString(strings.ToLower(args[0].Str())), nil
		}
		return types.NewString(strings.ToUpper(args[0].Str())), nil
	case "LENGTH":
		if err := arity(name, args, 1); err != nil {
			return types.Null, err
		}
		if args[0].IsNull() {
			return types.Null, nil
		}
		return types.NewInt(int64(len(args[0].Str()))), nil
	case "EXTRACT":
		// EXTRACT(field FROM ts) parses to EXTRACT('field', ts).
		if err := arity(name, args, 2); err != nil {
			return types.Null, err
		}
		if args[0].IsNull() || args[1].IsNull() {
			return types.Null, nil
		}
		field := strings.ToUpper(args[0].Str())
		ts := args[1].Time()
		switch field {
		case "YEAR":
			return types.NewInt(int64(ts.Year())), nil
		case "MONTH":
			return types.NewInt(int64(ts.Month())), nil
		case "DAY":
			return types.NewInt(int64(ts.Day())), nil
		case "HOUR":
			return types.NewInt(int64(ts.Hour())), nil
		case "MINUTE":
			return types.NewInt(int64(ts.Minute())), nil
		case "SECOND":
			return types.NewInt(int64(ts.Second())), nil
		case "DOW":
			return types.NewInt(int64(ts.Weekday())), nil
		case "EPOCH":
			return types.NewInt(ts.Unix()), nil
		}
		return types.Null, fmt.Errorf("expr: EXTRACT field %q not supported", field)
	case "MOD":
		if err := arity(name, args, 2); err != nil {
			return types.Null, err
		}
		if args[0].IsNull() || args[1].IsNull() {
			return types.Null, nil
		}
		if args[1].Int() == 0 {
			return types.Null, fmt.Errorf("expr: MOD by zero")
		}
		return types.NewInt(args[0].Int() % args[1].Int()), nil
	case "SUBSTR":
		// SUBSTR(s, start1based, length)
		if err := arity(name, args, 3); err != nil {
			return types.Null, err
		}
		for _, a := range args {
			if a.IsNull() {
				return types.Null, nil
			}
		}
		s := args[0].Str()
		start := int(args[1].Int()) - 1
		length := int(args[2].Int())
		if start < 0 {
			start = 0
		}
		if start > len(s) {
			start = len(s)
		}
		end := start + length
		if end > len(s) || length < 0 {
			end = len(s)
		}
		return types.NewString(s[start:end]), nil
	default:
		return types.Null, fmt.Errorf("expr: unknown function %s", name)
	}
}

func arity(name string, args []types.Datum, n int) error {
	if len(args) != n {
		return fmt.Errorf("expr: %s expects %d arguments, got %d", name, n, len(args))
	}
	return nil
}

// EvalBool evaluates a predicate for WHERE-clause purposes: NULL counts as
// false.
func EvalBool(e Expr, row types.Row) (bool, error) {
	v, err := e.Eval(row)
	if err != nil {
		return false, err
	}
	if v.IsNull() {
		return false, nil
	}
	return truthy(v)
}
