package expr

import (
	"errors"

	"github.com/bullfrogdb/bullfrog/internal/types"
)

// Agg is an aggregate function reference (SUM, COUNT, AVG, MIN, MAX) as it
// appears in a parsed query. Aggregates are computed by the executor's
// aggregation operator, never by scalar evaluation, so Eval always errors.
// Arg is nil for COUNT(*).
type Agg struct {
	Name     string // upper-cased
	Distinct bool
	Arg      Expr
}

// ErrAggregateEval is returned when an aggregate reaches scalar evaluation —
// a planner bug or an aggregate used outside a grouping context.
var ErrAggregateEval = errors.New("expr: aggregate function in scalar context")

// Eval always fails: aggregates are handled by the aggregation operator.
func (a *Agg) Eval(types.Row) (types.Datum, error) {
	return types.Null, ErrAggregateEval
}

func (a *Agg) String() string {
	arg := "*"
	if a.Arg != nil {
		arg = a.Arg.String()
	}
	if a.Distinct {
		return a.Name + "(DISTINCT " + arg + ")"
	}
	return a.Name + "(" + arg + ")"
}

// ContainsAgg reports whether the expression tree contains an aggregate.
func ContainsAgg(e Expr) bool {
	found := false
	Walk(e, func(x Expr) bool {
		if _, ok := x.(*Agg); ok {
			found = true
			return false
		}
		return true
	})
	return found
}
