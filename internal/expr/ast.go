// Package expr defines scalar expression trees, their evaluation under SQL
// three-valued logic, name binding against row scopes, and the structural
// transformations (substitution, conjunct splitting, column collection) that
// the planner uses to push predicates through views — the mechanism at the
// heart of BullFrog's lazy-migration scoping (paper §2.1).
package expr

import (
	"fmt"
	"strings"

	"github.com/bullfrogdb/bullfrog/internal/types"
)

// Expr is a scalar expression evaluated against a single input row.
type Expr interface {
	fmt.Stringer
	// Eval evaluates the expression. Column references must have been bound
	// (their ordinal resolved) before evaluation.
	Eval(row types.Row) (types.Datum, error)
}

// Const is a literal datum.
type Const struct {
	Val types.Datum
}

// NewConst returns a constant expression.
func NewConst(d types.Datum) *Const { return &Const{Val: d} }

// Eval returns the constant's value.
func (c *Const) Eval(types.Row) (types.Datum, error) { return c.Val, nil }

func (c *Const) String() string { return c.Val.String() }

// Col is a column reference. Table may be empty (unqualified). Index is the
// resolved ordinal in the input row; -1 until bound.
type Col struct {
	Table string
	Name  string
	Index int
}

// NewCol returns an unbound column reference.
func NewCol(table, name string) *Col { return &Col{Table: table, Name: name, Index: -1} }

// NewColIdx returns a column reference bound to ordinal idx.
func NewColIdx(name string, idx int) *Col { return &Col{Name: name, Index: idx} }

// Eval returns the referenced column's value from the row.
func (c *Col) Eval(row types.Row) (types.Datum, error) {
	if c.Index < 0 || c.Index >= len(row) {
		return types.Null, fmt.Errorf("expr: unbound or out-of-range column %s (index %d, row width %d)", c.Name, c.Index, len(row))
	}
	return row[c.Index], nil
}

func (c *Col) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

// Op enumerates binary and unary operators.
type Op int

// Operators supported by the engine.
const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpAnd
	OpOr
	OpNot
)

var opNames = map[Op]string{
	OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpAnd: "AND", OpOr: "OR",
	OpNot: "NOT",
}

// String returns the SQL spelling of the operator.
func (o Op) String() string { return opNames[o] }

// Comparison reports whether the operator is a comparison.
func (o Op) Comparison() bool { return o >= OpEq && o <= OpGe }

// BinOp is a binary operation.
type BinOp struct {
	Op   Op
	L, R Expr
}

// NewBinOp returns a binary operation expression.
func NewBinOp(op Op, l, r Expr) *BinOp { return &BinOp{Op: op, L: l, R: r} }

func (b *BinOp) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// Not is logical negation.
type Not struct {
	E Expr
}

func (n *Not) String() string { return "(NOT " + n.E.String() + ")" }

// IsNull tests for SQL NULL; with Negate it implements IS NOT NULL.
type IsNull struct {
	E      Expr
	Negate bool
}

func (i *IsNull) String() string {
	if i.Negate {
		return "(" + i.E.String() + " IS NOT NULL)"
	}
	return "(" + i.E.String() + " IS NULL)"
}

// Func is a scalar function call, e.g. EXTRACT, COALESCE, ABS, LOWER.
type Func struct {
	Name string // upper-cased
	Args []Expr
}

func (f *Func) String() string {
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.String()
	}
	return f.Name + "(" + strings.Join(args, ", ") + ")"
}

// InList is `expr IN (v1, v2, ...)`.
type InList struct {
	E    Expr
	List []Expr
}

func (in *InList) String() string {
	items := make([]string, len(in.List))
	for i, a := range in.List {
		items[i] = a.String()
	}
	return "(" + in.E.String() + " IN (" + strings.Join(items, ", ") + "))"
}

// Case is a searched CASE expression: CASE WHEN c1 THEN v1 ... ELSE e END.
type Case struct {
	Whens []When
	Else  Expr // may be nil (NULL)
}

// When is one WHEN/THEN arm of a Case.
type When struct {
	Cond Expr
	Then Expr
}

func (c *Case) String() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	for _, w := range c.Whens {
		fmt.Fprintf(&sb, " WHEN %s THEN %s", w.Cond, w.Then)
	}
	if c.Else != nil {
		fmt.Fprintf(&sb, " ELSE %s", c.Else)
	}
	sb.WriteString(" END")
	return sb.String()
}
