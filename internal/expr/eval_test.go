package expr

import (
	"strings"
	"testing"
	"time"

	"github.com/bullfrogdb/bullfrog/internal/types"
)

func intc(v int64) Expr           { return NewConst(types.NewInt(v)) }
func floatc(v float64) Expr       { return NewConst(types.NewFloat(v)) }
func strc(s string) Expr          { return NewConst(types.NewString(s)) }
func boolc(b bool) Expr           { return NewConst(types.NewBool(b)) }
func nullc() Expr                 { return NewConst(types.Null) }
func col(name string, i int) Expr { return NewColIdx(name, i) }

func mustEval(t *testing.T, e Expr, row types.Row) types.Datum {
	t.Helper()
	v, err := e.Eval(row)
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		e    Expr
		want types.Datum
	}{
		{NewBinOp(OpAdd, intc(2), intc(3)), types.NewInt(5)},
		{NewBinOp(OpSub, intc(2), intc(3)), types.NewInt(-1)},
		{NewBinOp(OpMul, intc(4), intc(3)), types.NewInt(12)},
		{NewBinOp(OpDiv, intc(7), intc(2)), types.NewFloat(3.5)},
		{NewBinOp(OpAdd, intc(2), floatc(0.5)), types.NewFloat(2.5)},
		{NewBinOp(OpAdd, strc("foo"), strc("bar")), types.NewString("foobar")},
		{NewBinOp(OpAdd, intc(2), nullc()), types.Null},
		{NewBinOp(OpMul, nullc(), intc(2)), types.Null},
	}
	for _, c := range cases {
		got := mustEval(t, c.e, nil)
		if got.Kind() != c.want.Kind() || !types.Equal(got, c.want) && !(got.IsNull() && c.want.IsNull()) {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
	if _, err := NewBinOp(OpDiv, intc(1), intc(0)).Eval(nil); err == nil {
		t.Error("division by zero should error")
	}
	if _, err := NewBinOp(OpSub, strc("a"), intc(1)).Eval(nil); err == nil {
		t.Error("string minus int should error")
	}
}

func TestComparisons(t *testing.T) {
	tr, fa := types.NewBool(true), types.NewBool(false)
	cases := []struct {
		op   Op
		l, r Expr
		want types.Datum
	}{
		{OpEq, intc(1), intc(1), tr},
		{OpEq, intc(1), intc(2), fa},
		{OpNe, intc(1), intc(2), tr},
		{OpLt, strc("a"), strc("b"), tr},
		{OpLe, intc(2), intc(2), tr},
		{OpGt, floatc(2.5), intc(2), tr},
		{OpGe, intc(1), intc(2), fa},
		{OpEq, intc(1), nullc(), types.Null},
		{OpLt, nullc(), nullc(), types.Null},
	}
	for _, c := range cases {
		got := mustEval(t, NewBinOp(c.op, c.l, c.r), nil)
		if got.IsNull() != c.want.IsNull() || (!got.IsNull() && got.Bool() != c.want.Bool()) {
			t.Errorf("(%v %s %v) = %v, want %v", c.l, c.op, c.r, got, c.want)
		}
	}
}

func TestThreeValuedLogic(t *testing.T) {
	tr, fa, nu := boolc(true), boolc(false), nullc()
	cases := []struct {
		e    Expr
		want string
	}{
		{NewBinOp(OpAnd, tr, tr), "true"},
		{NewBinOp(OpAnd, tr, fa), "false"},
		{NewBinOp(OpAnd, fa, nu), "false"}, // false AND NULL = false
		{NewBinOp(OpAnd, nu, fa), "false"},
		{NewBinOp(OpAnd, tr, nu), "NULL"},
		{NewBinOp(OpOr, fa, fa), "false"},
		{NewBinOp(OpOr, tr, nu), "true"}, // true OR NULL = true
		{NewBinOp(OpOr, nu, tr), "true"},
		{NewBinOp(OpOr, fa, nu), "NULL"},
		{&Not{E: tr}, "false"},
		{&Not{E: fa}, "true"},
		{&Not{E: nu}, "NULL"},
	}
	for _, c := range cases {
		got := mustEval(t, c.e, nil)
		if got.String() != c.want {
			t.Errorf("%s = %v, want %s", c.e, got, c.want)
		}
	}
}

func TestIsNull(t *testing.T) {
	if !mustEval(t, &IsNull{E: nullc()}, nil).Bool() {
		t.Error("NULL IS NULL should be true")
	}
	if mustEval(t, &IsNull{E: intc(1)}, nil).Bool() {
		t.Error("1 IS NULL should be false")
	}
	if !mustEval(t, &IsNull{E: intc(1), Negate: true}, nil).Bool() {
		t.Error("1 IS NOT NULL should be true")
	}
}

func TestInList(t *testing.T) {
	in := &InList{E: intc(2), List: []Expr{intc(1), intc(2)}}
	if !mustEval(t, in, nil).Bool() {
		t.Error("2 IN (1,2) should be true")
	}
	in = &InList{E: intc(3), List: []Expr{intc(1), nullc()}}
	if !mustEval(t, in, nil).IsNull() {
		t.Error("3 IN (1,NULL) should be NULL")
	}
	in = &InList{E: intc(3), List: []Expr{intc(1), intc(2)}}
	if mustEval(t, in, nil).Bool() {
		t.Error("3 IN (1,2) should be false")
	}
	in = &InList{E: nullc(), List: []Expr{intc(1)}}
	if !mustEval(t, in, nil).IsNull() {
		t.Error("NULL IN (...) should be NULL")
	}
}

func TestCase(t *testing.T) {
	c := &Case{
		Whens: []When{
			{Cond: NewBinOp(OpLt, col("x", 0), intc(0)), Then: strc("neg")},
			{Cond: NewBinOp(OpEq, col("x", 0), intc(0)), Then: strc("zero")},
		},
		Else: strc("pos"),
	}
	cases := map[int64]string{-5: "neg", 0: "zero", 7: "pos"}
	for in, want := range cases {
		got := mustEval(t, c, types.Row{types.NewInt(in)})
		if got.Str() != want {
			t.Errorf("CASE with x=%d = %v, want %s", in, got, want)
		}
	}
	noElse := &Case{Whens: []When{{Cond: boolc(false), Then: intc(1)}}}
	if !mustEval(t, noElse, nil).IsNull() {
		t.Error("CASE with no match and no ELSE should be NULL")
	}
}

func TestFunctions(t *testing.T) {
	ts := types.NewTime(time.Date(2021, 6, 9, 15, 4, 5, 0, time.UTC))
	cases := []struct {
		e    Expr
		want types.Datum
	}{
		{&Func{Name: "COALESCE", Args: []Expr{nullc(), intc(2), intc(3)}}, types.NewInt(2)},
		{&Func{Name: "COALESCE", Args: []Expr{nullc()}}, types.Null},
		{&Func{Name: "ABS", Args: []Expr{intc(-4)}}, types.NewInt(4)},
		{&Func{Name: "ABS", Args: []Expr{floatc(-2.5)}}, types.NewFloat(2.5)},
		{&Func{Name: "LOWER", Args: []Expr{strc("AbC")}}, types.NewString("abc")},
		{&Func{Name: "UPPER", Args: []Expr{strc("AbC")}}, types.NewString("ABC")},
		{&Func{Name: "LENGTH", Args: []Expr{strc("abcd")}}, types.NewInt(4)},
		{&Func{Name: "EXTRACT", Args: []Expr{strc("DAY"), NewConst(ts)}}, types.NewInt(9)},
		{&Func{Name: "EXTRACT", Args: []Expr{strc("YEAR"), NewConst(ts)}}, types.NewInt(2021)},
		{&Func{Name: "EXTRACT", Args: []Expr{strc("MONTH"), NewConst(ts)}}, types.NewInt(6)},
		{&Func{Name: "MOD", Args: []Expr{intc(7), intc(3)}}, types.NewInt(1)},
		{&Func{Name: "SUBSTR", Args: []Expr{strc("hello"), intc(2), intc(3)}}, types.NewString("ell")},
		{&Func{Name: "SUBSTR", Args: []Expr{strc("hi"), intc(1), intc(99)}}, types.NewString("hi")},
	}
	for _, c := range cases {
		got := mustEval(t, c.e, nil)
		if got.IsNull() != c.want.IsNull() || (!got.IsNull() && !types.Equal(got, c.want)) {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
	if _, err := (&Func{Name: "NOSUCH"}).Eval(nil); err == nil {
		t.Error("unknown function should error")
	}
	if _, err := (&Func{Name: "ABS", Args: []Expr{intc(1), intc(2)}}).Eval(nil); err == nil {
		t.Error("wrong arity should error")
	}
	if _, err := (&Func{Name: "EXTRACT", Args: []Expr{strc("FORTNIGHT"), NewConst(ts)}}).Eval(nil); err == nil {
		t.Error("unknown EXTRACT field should error")
	}
}

func TestEvalBool(t *testing.T) {
	if ok, _ := EvalBool(nullc(), nil); ok {
		t.Error("NULL predicate should be false in WHERE")
	}
	if ok, _ := EvalBool(boolc(true), nil); !ok {
		t.Error("true predicate")
	}
	if _, err := EvalBool(intc(1), nil); err == nil {
		t.Error("non-boolean predicate should error")
	}
}

func TestColEvalErrors(t *testing.T) {
	c := NewCol("t", "x")
	if _, err := c.Eval(types.Row{types.NewInt(1)}); err == nil {
		t.Error("unbound column should error")
	}
	b := NewColIdx("x", 5)
	if _, err := b.Eval(types.Row{types.NewInt(1)}); err == nil {
		t.Error("out-of-range column should error")
	}
}

func TestStringRendering(t *testing.T) {
	e := NewBinOp(OpAnd,
		NewBinOp(OpEq, NewCol("f", "flightid"), strc("AA101")),
		NewBinOp(OpEq, &Func{Name: "EXTRACT", Args: []Expr{strc("DAY"), NewCol("", "flightdate")}}, intc(9)))
	s := e.String()
	for _, want := range []string{"f.flightid = 'AA101'", "EXTRACT('DAY', flightdate)", "AND"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering %q missing %q", s, want)
		}
	}
}
