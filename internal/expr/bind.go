package expr

import (
	"fmt"
	"strings"

	"github.com/bullfrogdb/bullfrog/internal/types"
)

// ScopeCol describes one column visible to an expression: its (optional)
// table qualifier, name, and declared kind.
type ScopeCol struct {
	Table string
	Name  string
	Kind  types.Kind
}

// Scope is the ordered list of columns an expression's row refers to.
type Scope struct {
	Cols []ScopeCol
}

// NewScope builds a scope from columns.
func NewScope(cols ...ScopeCol) *Scope { return &Scope{Cols: cols} }

// Resolve finds the ordinal of a column reference, enforcing unambiguity for
// unqualified names.
func (s *Scope) Resolve(table, name string) (int, error) {
	table = strings.ToLower(table)
	name = strings.ToLower(name)
	found := -1
	for i, c := range s.Cols {
		if strings.ToLower(c.Name) != name {
			continue
		}
		if table != "" && strings.ToLower(c.Table) != table {
			continue
		}
		if found >= 0 {
			return -1, fmt.Errorf("expr: ambiguous column reference %q", name)
		}
		found = i
	}
	if found < 0 {
		if table != "" {
			return -1, fmt.Errorf("expr: unknown column %s.%s", table, name)
		}
		return -1, fmt.Errorf("expr: unknown column %q", name)
	}
	return found, nil
}

// Bind resolves every column reference in e against the scope, returning a
// new expression tree with ordinals filled in. The input tree is not
// modified.
func Bind(e Expr, scope *Scope) (Expr, error) {
	return Transform(e, func(x Expr) (Expr, error) {
		c, ok := x.(*Col)
		if !ok {
			return x, nil
		}
		idx, err := scope.Resolve(c.Table, c.Name)
		if err != nil {
			return nil, err
		}
		return &Col{Table: c.Table, Name: c.Name, Index: idx}, nil
	})
}

// Transform rewrites an expression bottom-up: children are transformed first,
// then f is applied to the (re-built) node. f returning a different node
// replaces it. The input tree is never mutated.
func Transform(e Expr, f func(Expr) (Expr, error)) (Expr, error) {
	if e == nil {
		return nil, nil
	}
	var rebuilt Expr
	switch t := e.(type) {
	case *Const, *Col:
		rebuilt = e
	case *BinOp:
		l, err := Transform(t.L, f)
		if err != nil {
			return nil, err
		}
		r, err := Transform(t.R, f)
		if err != nil {
			return nil, err
		}
		rebuilt = &BinOp{Op: t.Op, L: l, R: r}
	case *Not:
		inner, err := Transform(t.E, f)
		if err != nil {
			return nil, err
		}
		rebuilt = &Not{E: inner}
	case *IsNull:
		inner, err := Transform(t.E, f)
		if err != nil {
			return nil, err
		}
		rebuilt = &IsNull{E: inner, Negate: t.Negate}
	case *Func:
		args := make([]Expr, len(t.Args))
		for i, a := range t.Args {
			na, err := Transform(a, f)
			if err != nil {
				return nil, err
			}
			args[i] = na
		}
		rebuilt = &Func{Name: t.Name, Args: args}
	case *Agg:
		var arg Expr
		if t.Arg != nil {
			var err error
			arg, err = Transform(t.Arg, f)
			if err != nil {
				return nil, err
			}
		}
		rebuilt = &Agg{Name: t.Name, Distinct: t.Distinct, Arg: arg}
	case *InList:
		inner, err := Transform(t.E, f)
		if err != nil {
			return nil, err
		}
		list := make([]Expr, len(t.List))
		for i, a := range t.List {
			na, err := Transform(a, f)
			if err != nil {
				return nil, err
			}
			list[i] = na
		}
		rebuilt = &InList{E: inner, List: list}
	case *Case:
		whens := make([]When, len(t.Whens))
		for i, w := range t.Whens {
			c, err := Transform(w.Cond, f)
			if err != nil {
				return nil, err
			}
			v, err := Transform(w.Then, f)
			if err != nil {
				return nil, err
			}
			whens[i] = When{Cond: c, Then: v}
		}
		var els Expr
		if t.Else != nil {
			var err error
			els, err = Transform(t.Else, f)
			if err != nil {
				return nil, err
			}
		}
		rebuilt = &Case{Whens: whens, Else: els}
	default:
		return nil, fmt.Errorf("expr: Transform: unknown node %T", e)
	}
	return f(rebuilt)
}

// Walk visits every node in the expression tree, pre-order. Returning false
// from f stops descent into that subtree.
func Walk(e Expr, f func(Expr) bool) {
	if e == nil || !f(e) {
		return
	}
	switch t := e.(type) {
	case *BinOp:
		Walk(t.L, f)
		Walk(t.R, f)
	case *Not:
		Walk(t.E, f)
	case *IsNull:
		Walk(t.E, f)
	case *Func:
		for _, a := range t.Args {
			Walk(a, f)
		}
	case *Agg:
		Walk(t.Arg, f)
	case *InList:
		Walk(t.E, f)
		for _, a := range t.List {
			Walk(a, f)
		}
	case *Case:
		for _, w := range t.Whens {
			Walk(w.Cond, f)
			Walk(w.Then, f)
		}
		Walk(t.Else, f)
	}
}

// CollectCols returns every column reference in the expression, in visit
// order.
func CollectCols(e Expr) []*Col {
	var cols []*Col
	Walk(e, func(x Expr) bool {
		if c, ok := x.(*Col); ok {
			cols = append(cols, c)
		}
		return true
	})
	return cols
}

// SplitConjuncts flattens a tree of ANDs into its conjuncts.
func SplitConjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*BinOp); ok && b.Op == OpAnd {
		return append(SplitConjuncts(b.L), SplitConjuncts(b.R)...)
	}
	return []Expr{e}
}

// CombineConjuncts joins predicates with AND; nil inputs are dropped. Returns
// nil when no predicates remain.
func CombineConjuncts(preds ...Expr) Expr {
	var out Expr
	for _, p := range preds {
		if p == nil {
			continue
		}
		if out == nil {
			out = p
		} else {
			out = &BinOp{Op: OpAnd, L: out, R: p}
		}
	}
	return out
}

// Clone deep-copies an expression tree.
func Clone(e Expr) Expr {
	out, err := Transform(e, func(x Expr) (Expr, error) {
		if c, ok := x.(*Col); ok {
			cc := *c
			return &cc, nil
		}
		if c, ok := x.(*Const); ok {
			cc := *c
			return &cc, nil
		}
		return x, nil
	})
	if err != nil {
		panic("expr: Clone cannot fail: " + err.Error())
	}
	return out
}
