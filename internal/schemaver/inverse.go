package schemaver

import (
	"fmt"
	"sort"
	"strings"
)

// InverseStatement is one generated rollback statement: a SELECT over the
// forward migration's output tables that re-derives one retired input table.
type InverseStatement struct {
	Name      string // statement name ("undo_<table>")
	Driving   string // driving alias in SelectSQL (the first carrier output)
	Output    string // the original input table being re-created
	SelectSQL string // transform: join of carrier outputs on the original PK
}

// InverseSpec is a mechanically generated rollback migration, as SQL text
// plus shape — the facade parses it into a core.Migration and runs it
// through the ordinary lazy machinery (the rollback is itself a lazy
// migration whose outputs are the original tables).
type InverseSpec struct {
	Name         string
	Setup        string // CREATE TABLE for each re-created input
	Statements   []InverseStatement
	RetireInputs []string // the forward migration's output tables
}

// Inverse generates the rollback spec for a recorded version.
//
// The construction is mechanical for 1:1 and 1:n statements: every column of
// a retired table is located in some output table (its carrier); carriers
// are joined on the retired table's primary key, which both halves of a
// split carry, and each driving row re-derives exactly one original row —
// the outputs of these categories are row-aligned with the input, so the
// join is 1:1 and runs through the ordinary bitmap machinery.
//
// n:1 and n:n statements collapse a group of input rows into one output row;
// the individual rows (and any column outside the group key and aggregates)
// are unrecoverable, so Inverse returns ErrLossy carrying the witness: the
// concrete columns whose values no output retains, or the collapsed grouping
// when every column name survives but multiplicity does not. The same
// reasoning rejects a dropped NOT NULL column — rows cannot be re-created
// with a value that was discarded.
func Inverse(v *Version) (*InverseSpec, error) {
	if len(v.Retired) == 0 {
		return nil, fmt.Errorf("schemaver: migration %q retired no tables; nothing to invert — drop its output tables instead", v.Migration)
	}
	if len(v.RetiredDefs) == 0 {
		return nil, fmt.Errorf("schemaver: version %s has no retired-table definitions; registry entry predates rollback support", v.ShortHash())
	}
	outDefs := indexDefs(v.Tables)
	spec := &InverseSpec{Name: "rollback_" + v.Migration}
	retireSet := map[string]bool{}
	var setup []string

	for _, t := range sortTables(v.RetiredDefs) {
		readers := statementsReading(v.Statements, t.Name)
		if len(readers) == 0 {
			return nil, fmt.Errorf("%w: retired table %s is read by no statement; its rows exist in no output", ErrLossy, t.Name)
		}
		var outputs []string
		for _, s := range readers {
			if s.Category == "n:1" || s.Category == "n:n" {
				return nil, lossyWitness(t, readers, outDefs, s)
			}
			outputs = append(outputs, s.Outputs...)
		}
		sort.Strings(outputs)

		stmt, err := inverseStatement(t, outputs, outDefs)
		if err != nil {
			return nil, err
		}
		spec.Statements = append(spec.Statements, *stmt)
		setup = append(setup, t.CreateSQL())
		for _, o := range outputs {
			retireSet[strings.ToLower(o)] = true
		}
	}
	spec.Setup = strings.Join(setup, ";\n")
	for o := range retireSet {
		spec.RetireInputs = append(spec.RetireInputs, o)
	}
	sort.Strings(spec.RetireInputs)
	return spec, nil
}

func statementsReading(stmts []StatementInfo, table string) []StatementInfo {
	var out []StatementInfo
	for _, s := range stmts {
		for _, in := range s.Inputs {
			if strings.EqualFold(in, table) {
				out = append(out, s)
				break
			}
		}
	}
	return out
}

// lossyWitness builds the ErrLossy error for an aggregating statement: the
// concrete retired columns no output carries, or the collapsed grouping.
func lossyWitness(t TableDef, readers []StatementInfo, outDefs map[string]TableDef, agg StatementInfo) error {
	var lost []string
	for _, c := range t.Columns {
		carried := false
		for _, s := range readers {
			for _, o := range s.Outputs {
				if od, ok := outDefs[strings.ToLower(o)]; ok {
					if _, has := od.Column(c.Name); has {
						carried = true
					}
				}
			}
		}
		if !carried {
			lost = append(lost, t.Name+"."+c.Name)
		}
	}
	if len(lost) > 0 {
		return fmt.Errorf("%w: statement %q (%s) discards columns %s", ErrLossy, agg.Name, agg.Category, strings.Join(lost, ", "))
	}
	return fmt.Errorf("%w: statement %q (%s) collapses %s's row multiplicity (GROUP BY); individual rows are unrecoverable",
		ErrLossy, agg.Name, agg.Category, t.Name)
}

// inverseStatement derives one retired table from the outputs carrying its
// columns.
func inverseStatement(t TableDef, outputs []string, outDefs map[string]TableDef) (*InverseStatement, error) {
	// Pick each column's carrier: the first output (sorted order) that has a
	// same-named column.
	type carrier struct {
		table string
		alias string
	}
	carrierOf := map[string]string{} // lower table -> alias
	var carriers []carrier
	aliasFor := func(table string) string {
		lt := strings.ToLower(table)
		if a, ok := carrierOf[lt]; ok {
			return a
		}
		a := fmt.Sprintf("r%d", len(carriers))
		carrierOf[lt] = a
		carriers = append(carriers, carrier{table: table, alias: a})
		return a
	}
	pkSet := map[string]bool{}
	for _, pk := range t.PrimaryKey {
		pkSet[strings.ToLower(pk)] = true
	}
	var selects []string
	for _, c := range t.Columns {
		found := ""
		for _, o := range outputs {
			od, ok := outDefs[strings.ToLower(o)]
			if !ok {
				continue
			}
			if _, has := od.Column(c.Name); has {
				found = o
				break
			}
		}
		if found == "" {
			if c.NotNull || pkSet[strings.ToLower(c.Name)] {
				return nil, fmt.Errorf("%w: column %s.%s (%s NOT NULL) survives in no output table", ErrLossy, t.Name, c.Name, c.Type)
			}
			selects = append(selects, "NULL")
			continue
		}
		selects = append(selects, aliasFor(found)+"."+c.Name)
	}
	if len(carriers) == 0 {
		return nil, fmt.Errorf("%w: no output table carries any column of %s", ErrLossy, t.Name)
	}
	// Multiple carriers re-join on the original primary key; every carrier
	// must have kept it (a split always replicates the key into both halves).
	var joins []string
	if len(carriers) > 1 {
		if len(t.PrimaryKey) == 0 {
			return nil, fmt.Errorf("%w: %s was split across %d outputs but has no primary key to re-join on", ErrLossy, t.Name, len(carriers))
		}
		for _, c := range carriers {
			od := outDefs[strings.ToLower(c.table)]
			for _, pk := range t.PrimaryKey {
				if _, has := od.Column(pk); !has {
					return nil, fmt.Errorf("%w: output %s lacks %s's key column %s; split halves cannot be re-joined", ErrLossy, c.table, t.Name, pk)
				}
			}
		}
		for _, c := range carriers[1:] {
			for _, pk := range t.PrimaryKey {
				joins = append(joins, fmt.Sprintf("%s.%s = %s.%s", carriers[0].alias, pk, c.alias, pk))
			}
		}
	}
	var from []string
	for _, c := range carriers {
		from = append(from, c.table+" "+c.alias)
	}
	sql := "SELECT " + strings.Join(selects, ", ") + " FROM " + strings.Join(from, ", ")
	if len(joins) > 0 {
		sql += " WHERE " + strings.Join(joins, " AND ")
	}
	return &InverseStatement{
		Name:      "undo_" + strings.ToLower(t.Name),
		Driving:   carriers[0].alias,
		Output:    t.Name,
		SelectSQL: sql,
	}, nil
}
