package schemaver

import (
	"fmt"
	"sort"
	"strings"
)

// ColumnChange records one column-level difference. From/To are type names;
// an added column has From == "", a dropped column has To == "". NotNull is
// the new definition's nullability (added/retyped columns), so Apply can
// reconstruct the column.
type ColumnChange struct {
	Table   string `json:"table"`
	Column  string `json:"column"`
	From    string `json:"from,omitempty"`
	To      string `json:"to,omitempty"`
	NotNull bool   `json:"not_null,omitempty"`
}

// Diff is the structural change set between two schema snapshots.
// TablesSplit/TablesMerged are derived annotations (heuristic column-overlap
// lineage between dropped and added tables); the add/drop/column sections are
// the authoritative change set Apply consumes.
type Diff struct {
	TablesAdded        []TableDef     `json:"tables_added,omitempty"`
	TablesDropped      []string       `json:"tables_dropped,omitempty"`
	ColumnsAdded       []ColumnChange `json:"columns_added,omitempty"`
	ColumnsDropped     []ColumnChange `json:"columns_dropped,omitempty"`
	ColumnsRetyped     []ColumnChange `json:"columns_retyped,omitempty"`
	ConstraintsChanged []string       `json:"constraints_changed,omitempty"`
	TablesSplit        []string       `json:"tables_split,omitempty"`
	TablesMerged       []string       `json:"tables_merged,omitempty"`
}

// Empty reports whether the diff records no change at all.
func (d *Diff) Empty() bool {
	return d == nil || (len(d.TablesAdded) == 0 && len(d.TablesDropped) == 0 &&
		len(d.ColumnsAdded) == 0 && len(d.ColumnsDropped) == 0 &&
		len(d.ColumnsRetyped) == 0 && len(d.ConstraintsChanged) == 0)
}

// String renders the diff for humans (PlanMigration, the shell's \history).
func (d *Diff) String() string {
	if d.Empty() {
		return "no structural change"
	}
	var b strings.Builder
	for _, t := range d.TablesAdded {
		fmt.Fprintf(&b, "+ table %s (%d columns)\n", t.Name, len(t.Columns))
	}
	for _, name := range d.TablesDropped {
		fmt.Fprintf(&b, "- table %s\n", name)
	}
	for _, s := range d.TablesSplit {
		fmt.Fprintf(&b, "~ split %s\n", s)
	}
	for _, s := range d.TablesMerged {
		fmt.Fprintf(&b, "~ merge %s\n", s)
	}
	for _, c := range d.ColumnsAdded {
		fmt.Fprintf(&b, "+ column %s.%s %s\n", c.Table, c.Column, c.To)
	}
	for _, c := range d.ColumnsDropped {
		fmt.Fprintf(&b, "- column %s.%s %s\n", c.Table, c.Column, c.From)
	}
	for _, c := range d.ColumnsRetyped {
		fmt.Fprintf(&b, "~ column %s.%s %s -> %s\n", c.Table, c.Column, c.From, c.To)
	}
	for _, t := range d.ConstraintsChanged {
		fmt.Fprintf(&b, "~ constraints %s\n", t)
	}
	return strings.TrimRight(b.String(), "\n")
}

// Compute diffs two schema snapshots (old -> new). Table matching is by
// case-insensitive name; column matching likewise. Output ordering is
// deterministic (name-sorted).
func Compute(oldDefs, newDefs []TableDef) *Diff {
	d := &Diff{}
	oldBy := indexDefs(oldDefs)
	newBy := indexDefs(newDefs)

	for _, nt := range sortTables(newDefs) {
		ot, ok := oldBy[strings.ToLower(nt.Name)]
		if !ok {
			d.TablesAdded = append(d.TablesAdded, nt)
			continue
		}
		diffColumns(d, ot, nt)
		if ot.constraintSig() != nt.constraintSig() {
			d.ConstraintsChanged = append(d.ConstraintsChanged, nt.Name)
		}
	}
	for _, ot := range sortTables(oldDefs) {
		if _, ok := newBy[strings.ToLower(ot.Name)]; !ok {
			d.TablesDropped = append(d.TablesDropped, ot.Name)
		}
	}
	annotateLineage(d, oldBy)
	return d
}

func indexDefs(defs []TableDef) map[string]TableDef {
	m := make(map[string]TableDef, len(defs))
	for _, t := range defs {
		m[strings.ToLower(t.Name)] = t
	}
	return m
}

func diffColumns(d *Diff, ot, nt TableDef) {
	for _, nc := range nt.Columns {
		oc, ok := ot.Column(nc.Name)
		switch {
		case !ok:
			d.ColumnsAdded = append(d.ColumnsAdded, ColumnChange{
				Table: nt.Name, Column: nc.Name, To: nc.Type, NotNull: nc.NotNull})
		case oc.Type != nc.Type:
			d.ColumnsRetyped = append(d.ColumnsRetyped, ColumnChange{
				Table: nt.Name, Column: nc.Name, From: oc.Type, To: nc.Type, NotNull: nc.NotNull})
		}
	}
	for _, oc := range ot.Columns {
		if _, ok := nt.Column(oc.Name); !ok {
			d.ColumnsDropped = append(d.ColumnsDropped, ColumnChange{
				Table: nt.Name, Column: oc.Name, From: oc.Type})
		}
	}
}

// annotateLineage derives split/merge annotations: an added table descends
// from a dropped table when at least half of its columns (and at least one)
// carry a dropped table's column names. A dropped table feeding two or more
// added tables is a split; an added table fed by two or more dropped tables
// is a merge.
func annotateLineage(d *Diff, oldBy map[string]TableDef) {
	if len(d.TablesDropped) == 0 || len(d.TablesAdded) == 0 {
		return
	}
	ancestors := map[string][]string{} // added -> dropped names
	children := map[string][]string{}  // dropped -> added names
	for _, added := range d.TablesAdded {
		if len(added.Columns) == 0 {
			continue
		}
		for _, droppedName := range d.TablesDropped {
			dropped := oldBy[strings.ToLower(droppedName)]
			overlap := 0
			for _, c := range added.Columns {
				if _, ok := dropped.Column(c.Name); ok {
					overlap++
				}
			}
			if overlap > 0 && overlap*2 >= len(added.Columns) {
				ancestors[added.Name] = append(ancestors[added.Name], droppedName)
				children[droppedName] = append(children[droppedName], added.Name)
			}
		}
	}
	for _, droppedName := range d.TablesDropped {
		if kids := children[droppedName]; len(kids) >= 2 {
			sort.Strings(kids)
			d.TablesSplit = append(d.TablesSplit, fmt.Sprintf("%s -> %s", droppedName, strings.Join(kids, " + ")))
		}
	}
	for _, added := range d.TablesAdded {
		if anc := ancestors[added.Name]; len(anc) >= 2 {
			sort.Strings(anc)
			d.TablesMerged = append(d.TablesMerged, fmt.Sprintf("%s -> %s", strings.Join(anc, " + "), added.Name))
		}
	}
}

// Apply replays a diff's structural sections (table add/drop, column
// add/drop/retype) onto a snapshot and returns the result, name-sorted.
// Constraint changes are not replayed — ConstraintsChanged names the table
// but not the new constraint set. Apply(old, Compute(old, new)) therefore
// reproduces new up to constraints; the fuzz harness checks exactly this
// fixed point for 1:1 shapes.
func Apply(oldDefs []TableDef, d *Diff) []TableDef {
	if d == nil {
		return sortTables(oldDefs)
	}
	dropped := map[string]bool{}
	for _, name := range d.TablesDropped {
		dropped[strings.ToLower(name)] = true
	}
	var out []TableDef
	for _, t := range oldDefs {
		if dropped[strings.ToLower(t.Name)] {
			continue
		}
		out = append(out, applyColumns(t, d))
	}
	out = append(out, d.TablesAdded...)
	return sortTables(out)
}

func applyColumns(t TableDef, d *Diff) TableDef {
	cols := make([]ColumnDef, 0, len(t.Columns))
	for _, c := range t.Columns {
		drop := false
		for _, ch := range d.ColumnsDropped {
			if strings.EqualFold(ch.Table, t.Name) && strings.EqualFold(ch.Column, c.Name) {
				drop = true
				break
			}
		}
		if drop {
			continue
		}
		for _, ch := range d.ColumnsRetyped {
			if strings.EqualFold(ch.Table, t.Name) && strings.EqualFold(ch.Column, c.Name) {
				c.Type = ch.To
				c.NotNull = ch.NotNull
			}
		}
		cols = append(cols, c)
	}
	for _, ch := range d.ColumnsAdded {
		if strings.EqualFold(ch.Table, t.Name) {
			cols = append(cols, ColumnDef{Name: ch.Column, Type: ch.To, NotNull: ch.NotNull})
		}
	}
	t.Columns = cols
	return t
}
