package schemaver

import (
	"errors"
	"fmt"
	"strings"
)

// Compatibility is a migration's compatibility level — a four-point lattice
// ordered full > forward > backward > breaking:
//
//   - full: purely additive. No table is retired; old-schema readers and
//     writers keep working unchanged (maintained aggregate, §4.2).
//   - forward: invertible. Tables are retired but every statement is 1:1 or
//     1:n, so each old tuple's content is recoverable from the outputs and a
//     mechanical inverse migration exists (column changes, table split).
//   - backward: data-preserving but not invertible. Every retired table is
//     read by some statement — its data survives into the new schema — but
//     an n:1/n:n statement collapses row multiplicity, so rollback is lossy.
//   - breaking: a retired table is read by no statement; its data is simply
//     cut off. Rejected unless MigrateOptions.Force is set.
type Compatibility string

// Compatibility levels.
const (
	CompatFull     Compatibility = "full"
	CompatForward  Compatibility = "forward"
	CompatBackward Compatibility = "backward"
	CompatBreaking Compatibility = "breaking"
)

// Sentinel errors. The facade maps them to *bullfrog.Error codes
// "schemaver.breaking" and "schemaver.lossy".
var (
	// ErrBreaking reports a migration classified breaking (a retired table's
	// data is not carried forward) submitted without Force.
	ErrBreaking = errors.New("schemaver: breaking schema change")
	// ErrLossy reports that no faithful inverse migration exists; the error
	// message carries the witness (the lost columns or collapsed grouping).
	ErrLossy = errors.New("schemaver: inverse migration would lose data")
)

// Classify computes the compatibility level from the retired-table set and
// the statement shapes (see Compatibility for the lattice).
func Classify(retired []string, stmts []StatementInfo) Compatibility {
	if len(retired) == 0 {
		return CompatFull
	}
	read := map[string]bool{}
	invertible := true
	for _, s := range stmts {
		for _, in := range s.Inputs {
			read[strings.ToLower(in)] = true
		}
		if s.Category != "1:1" && s.Category != "1:n" {
			invertible = false
		}
	}
	for _, r := range retired {
		if !read[strings.ToLower(r)] {
			return CompatBreaking
		}
	}
	if invertible {
		return CompatForward
	}
	return CompatBackward
}

// Validate rejects breaking versions: the caller (the facade's Migrate path)
// runs it before the flip unless the user forced the migration through.
func Validate(v *Version) error {
	if v.Compatibility != CompatBreaking {
		return nil
	}
	var orphans []string
	read := map[string]bool{}
	for _, s := range v.Statements {
		for _, in := range s.Inputs {
			read[strings.ToLower(in)] = true
		}
	}
	for _, r := range v.Retired {
		if !read[strings.ToLower(r)] {
			orphans = append(orphans, r)
		}
	}
	return fmt.Errorf("%w: migration %q retires %s without migrating its data (use Force to override)",
		ErrBreaking, v.Migration, strings.Join(orphans, ", "))
}
