package schemaver

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// StatementInfo is the spec-level shape of one migration statement: enough
// for compatibility classification and inverse generation, decoupled from
// the controller's Statement type (which carries parsed query trees).
type StatementInfo struct {
	Name     string   `json:"name"`
	Category string   `json:"category"` // "1:1" | "1:n" | "n:1" | "n:n"
	Driving  string   `json:"driving"`  // resolved driving table name
	Inputs   []string `json:"inputs"`   // old-schema tables the transform reads
	Outputs  []string `json:"outputs"`  // new-schema tables it populates
}

// Version is one entry of the schema version registry: the content hash of
// the active schema after a migration's flip, chained to its parent, plus
// the structural metadata rollback and compatibility checks need. The
// encoded form rides the migration's catalog-install marker (WAL and
// checkpoint sidecar), so recovery rebuilds the registry without any side
// files.
type Version struct {
	// Hash is the content hash of the post-flip active schema; Parent is the
	// previous version's hash ("" for the first recorded version).
	Hash   string `json:"hash"`
	Parent string `json:"parent,omitempty"`
	// Migration is the migration's name; At is when it was recorded.
	Migration string    `json:"migration"`
	At        time.Time `json:"at"`
	// Statements classifies each migration statement (1:1, 1:n, n:1, n:n).
	Statements []StatementInfo `json:"statements,omitempty"`
	// Compatibility is the computed level — see Classify.
	Compatibility Compatibility `json:"compatibility"`
	// Retired lists tables the flip retired; RetiredDefs snapshots their
	// pre-flip definitions so an inverse migration can re-create them even
	// after the originals are dropped.
	Retired     []string   `json:"retired,omitempty"`
	RetiredDefs []TableDef `json:"retired_defs,omitempty"`
	// Tables is the post-flip active (non-retired) schema, name-sorted — the
	// set the Hash covers.
	Tables []TableDef `json:"tables,omitempty"`
	// Diff is the structural change set from the parent schema.
	Diff *Diff `json:"diff,omitempty"`
	// Rollback marks versions installed by a generated inverse migration.
	Rollback bool `json:"rollback,omitempty"`
}

// HashTables computes the content hash of a schema snapshot: sha256 over the
// newline-joined canonical CREATE TABLE renderings of the name-sorted defs.
func HashTables(defs []TableDef) string {
	sorted := sortTables(defs)
	h := sha256.New()
	for _, t := range sorted {
		// hash.Hash.Write never returns an error.
		_, _ = h.Write([]byte(t.CreateSQL()))
		_, _ = h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Encode marshals the version for storage in Migration.VersionMeta.
func (v *Version) Encode() ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("schemaver: encoding version %s: %w", v.ShortHash(), err)
	}
	return b, nil
}

// Decode unmarshals a version previously produced by Encode. It returns an
// error for empty or non-JSON metadata (install markers written by layers
// that do not use the registry carry nil metadata).
func Decode(b []byte) (*Version, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("schemaver: no version metadata")
	}
	var v Version
	if err := json.Unmarshal(b, &v); err != nil {
		return nil, fmt.Errorf("schemaver: decoding version metadata: %w", err)
	}
	return &v, nil
}

// ShortHash returns the first 8 hex digits of the hash (display form).
func (v *Version) ShortHash() string {
	if len(v.Hash) >= 8 {
		return v.Hash[:8]
	}
	return v.Hash
}

// Classification returns the per-statement category strings in order.
func (v *Version) Classification() []string {
	out := make([]string, len(v.Statements))
	for i, s := range v.Statements {
		out[i] = s.Category
	}
	return out
}

// String renders a one-line registry entry.
func (v *Version) String() string {
	parent := v.Parent
	if len(parent) >= 8 {
		parent = parent[:8]
	}
	if parent == "" {
		parent = "-"
	}
	cls := strings.Join(v.Classification(), ",")
	if cls == "" {
		cls = "-"
	}
	tag := ""
	if v.Rollback {
		tag = " (rollback)"
	}
	return fmt.Sprintf("%s <- %s  %-20s %-8s [%s]%s", v.ShortHash(), parent, v.Migration, v.Compatibility, cls, tag)
}
