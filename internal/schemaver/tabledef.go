// Package schemaver implements the schema version registry: content-hashed
// schema versions, a structural differ over table definitions, a
// compatibility classifier (full / forward / backward / breaking), and a
// mechanical inverse-migration generator for lazy rollback.
//
// The package is deliberately free of engine dependencies: it consumes table
// definitions (internal/schema, or parsed CREATE TABLE statements) and
// emits plain data plus SQL text. The facade glues it to the migration
// controller and persists encoded versions through the catalog-install
// marker (Migration.VersionMeta), so the registry is rebuilt by WAL replay
// and stays checkpoint-bounded.
package schemaver

import (
	"fmt"
	"sort"
	"strings"

	"github.com/bullfrogdb/bullfrog/internal/schema"
	"github.com/bullfrogdb/bullfrog/internal/sql"
)

// ColumnDef is the structural snapshot of one column: everything the differ
// and the hash consider. Defaults and CHECK expressions are deliberately
// excluded from the per-column snapshot (expression trees have no canonical
// rendering); table-level Checks counts them so a constraint change is still
// visible in the diff.
type ColumnDef struct {
	Name    string `json:"name"`
	Type    string `json:"type"` // types.Kind name: INT, FLOAT, TEXT, BOOL, TIMESTAMP
	NotNull bool   `json:"not_null,omitempty"`
}

// TableDef is the structural snapshot of one table.
type TableDef struct {
	Name        string      `json:"name"`
	Columns     []ColumnDef `json:"columns"`
	PrimaryKey  []string    `json:"primary_key,omitempty"`
	Uniques     [][]string  `json:"uniques,omitempty"`
	Checks      int         `json:"checks,omitempty"`       // count of CHECK constraints
	ForeignKeys []string    `json:"foreign_keys,omitempty"` // "cols->table(cols)" signatures
}

// FromSchema snapshots a bound schema.Table definition.
func FromSchema(t *schema.Table) TableDef {
	d := TableDef{Name: t.Name, Checks: len(t.Checks)}
	for _, c := range t.Columns {
		d.Columns = append(d.Columns, ColumnDef{Name: c.Name, Type: c.Kind.String(), NotNull: c.NotNull})
	}
	name := func(ord int) string {
		if ord >= 0 && ord < len(t.Columns) {
			return t.Columns[ord].Name
		}
		return fmt.Sprintf("#%d", ord)
	}
	for _, ord := range t.PrimaryKey {
		d.PrimaryKey = append(d.PrimaryKey, name(ord))
	}
	for _, set := range t.Uniques {
		var cols []string
		for _, ord := range set {
			cols = append(cols, name(ord))
		}
		d.Uniques = append(d.Uniques, cols)
	}
	for _, fk := range t.ForeignKey {
		var cols []string
		for _, ord := range fk.Columns {
			cols = append(cols, name(ord))
		}
		ref := fk.RefColumnNames
		d.ForeignKeys = append(d.ForeignKeys, fmt.Sprintf("%s->%s(%s)",
			strings.Join(cols, ","), strings.ToLower(fk.RefTable), strings.Join(ref, ",")))
	}
	return d
}

// FromCreate snapshots a parsed CREATE TABLE statement — the shape a table
// will have once the migration's Setup DDL runs, available before it runs.
// CREATE TABLE ... AS SELECT yields a def with no columns (the column set is
// only known at execution); the differ still records the table as added.
func FromCreate(st *sql.CreateTableStmt) TableDef {
	d := TableDef{Name: st.Name, Checks: len(st.Checks)}
	var pk []string
	for _, c := range st.Columns {
		d.Columns = append(d.Columns, ColumnDef{Name: c.Name, Type: c.Kind.String(), NotNull: c.NotNull || c.PrimaryKey})
		if c.PrimaryKey {
			pk = append(pk, c.Name)
		}
		if c.Unique {
			d.Uniques = append(d.Uniques, []string{c.Name})
		}
		if c.Check != nil {
			d.Checks++
		}
	}
	if len(st.PrimaryKey) > 0 {
		pk = st.PrimaryKey
	}
	d.PrimaryKey = pk
	for _, set := range st.Uniques {
		d.Uniques = append(d.Uniques, append([]string(nil), set...))
	}
	for _, fk := range st.ForeignKeys {
		d.ForeignKeys = append(d.ForeignKeys, fmt.Sprintf("%s->%s(%s)",
			strings.Join(fk.Columns, ","), strings.ToLower(fk.RefTable), strings.Join(fk.RefColumns, ",")))
	}
	return d
}

// Column returns the named column (case-insensitive) and whether it exists.
func (t TableDef) Column(name string) (ColumnDef, bool) {
	for _, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return c, true
		}
	}
	return ColumnDef{}, false
}

// CreateSQL renders the def back into a CREATE TABLE statement. Used both as
// the canonical rendering the content hash covers and as the Setup DDL of a
// generated inverse migration.
func (t TableDef) CreateSQL() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CREATE TABLE %s (", t.Name)
	for i, c := range t.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteString(" ")
		b.WriteString(c.Type)
		if c.NotNull {
			b.WriteString(" NOT NULL")
		}
	}
	if len(t.PrimaryKey) > 0 {
		fmt.Fprintf(&b, ", PRIMARY KEY (%s)", strings.Join(t.PrimaryKey, ", "))
	}
	for _, set := range t.Uniques {
		fmt.Fprintf(&b, ", UNIQUE (%s)", strings.Join(set, ", "))
	}
	b.WriteString(")")
	return b.String()
}

// constraintSig is a canonical string of the table's constraint set, used by
// the differ to detect constraint changes without enumerating them.
func (t TableDef) constraintSig() string {
	var parts []string
	if len(t.PrimaryKey) > 0 {
		parts = append(parts, "pk:"+strings.ToLower(strings.Join(t.PrimaryKey, ",")))
	}
	var uniq []string
	for _, set := range t.Uniques {
		uniq = append(uniq, strings.ToLower(strings.Join(set, ",")))
	}
	sort.Strings(uniq)
	for _, u := range uniq {
		parts = append(parts, "uq:"+u)
	}
	if t.Checks > 0 {
		parts = append(parts, fmt.Sprintf("ck:%d", t.Checks))
	}
	fks := append([]string(nil), t.ForeignKeys...)
	sort.Strings(fks)
	for _, fk := range fks {
		parts = append(parts, "fk:"+strings.ToLower(fk))
	}
	return strings.Join(parts, ";")
}

// sortTables returns a name-sorted copy (the canonical order for hashing and
// registry storage).
func sortTables(defs []TableDef) []TableDef {
	out := append([]TableDef(nil), defs...)
	sort.Slice(out, func(i, j int) bool {
		return strings.ToLower(out[i].Name) < strings.ToLower(out[j].Name)
	})
	return out
}
