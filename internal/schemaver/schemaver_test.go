package schemaver

import (
	"strings"
	"testing"

	"github.com/bullfrogdb/bullfrog/internal/sql"
)

func tbl(name string, pk []string, cols ...ColumnDef) TableDef {
	return TableDef{Name: name, Columns: cols, PrimaryKey: pk}
}

func col(name, typ string) ColumnDef   { return ColumnDef{Name: name, Type: typ} }
func colNN(name, typ string) ColumnDef { return ColumnDef{Name: name, Type: typ, NotNull: true} }

func TestHashDeterministicAndOrderInsensitive(t *testing.T) {
	a := tbl("a", []string{"id"}, colNN("id", "INT"), col("x", "TEXT"))
	b := tbl("b", []string{"id"}, colNN("id", "INT"))
	h1 := HashTables([]TableDef{a, b})
	h2 := HashTables([]TableDef{b, a})
	if h1 != h2 {
		t.Fatalf("hash depends on input order: %s vs %s", h1, h2)
	}
	c := tbl("a", []string{"id"}, colNN("id", "INT"), col("x", "INT")) // retyped x
	if HashTables([]TableDef{c, b}) == h1 {
		t.Fatalf("hash insensitive to column type change")
	}
	if len(h1) != 64 {
		t.Fatalf("want sha256 hex, got %q", h1)
	}
}

func TestDiffColumnsAndConstraints(t *testing.T) {
	oldT := tbl("cust", []string{"id"}, colNN("id", "INT"), col("bal", "FLOAT"), col("notes", "TEXT"))
	newT := tbl("cust", []string{"id"}, colNN("id", "INT"), col("bal", "INT"), col("email", "TEXT"))
	newT.Uniques = [][]string{{"email"}}
	d := Compute([]TableDef{oldT}, []TableDef{newT})
	if len(d.ColumnsAdded) != 1 || d.ColumnsAdded[0].Column != "email" {
		t.Fatalf("columns added: %+v", d.ColumnsAdded)
	}
	if len(d.ColumnsDropped) != 1 || d.ColumnsDropped[0].Column != "notes" {
		t.Fatalf("columns dropped: %+v", d.ColumnsDropped)
	}
	if len(d.ColumnsRetyped) != 1 || d.ColumnsRetyped[0].From != "FLOAT" || d.ColumnsRetyped[0].To != "INT" {
		t.Fatalf("columns retyped: %+v", d.ColumnsRetyped)
	}
	if len(d.ConstraintsChanged) != 1 || d.ConstraintsChanged[0] != "cust" {
		t.Fatalf("constraints changed: %+v", d.ConstraintsChanged)
	}
}

func TestDiffSplitAndMergeAnnotations(t *testing.T) {
	cust := tbl("cust", []string{"id"}, colNN("id", "INT"), col("name", "TEXT"), col("bal", "FLOAT"))
	pub := tbl("cust_public", []string{"id"}, colNN("id", "INT"), col("name", "TEXT"))
	priv := tbl("cust_private", []string{"id"}, colNN("id", "INT"), col("bal", "FLOAT"))
	d := Compute([]TableDef{cust}, []TableDef{pub, priv})
	if len(d.TablesSplit) != 1 || d.TablesSplit[0] != "cust -> cust_private + cust_public" {
		t.Fatalf("split annotation: %+v", d.TablesSplit)
	}
	back := Compute([]TableDef{pub, priv}, []TableDef{cust})
	if len(back.TablesMerged) != 1 || back.TablesMerged[0] != "cust_private + cust_public -> cust" {
		t.Fatalf("merge annotation: %+v", back.TablesMerged)
	}
}

func TestApplyFixedPoint(t *testing.T) {
	oldSet := []TableDef{
		tbl("a", []string{"id"}, colNN("id", "INT"), col("x", "TEXT"), col("y", "FLOAT")),
		tbl("gone", nil, col("z", "INT")),
	}
	newSet := []TableDef{
		tbl("a", []string{"id"}, colNN("id", "INT"), col("x", "INT"), col("w", "BOOL")),
		tbl("fresh", []string{"k"}, colNN("k", "TEXT")),
	}
	d := Compute(oldSet, newSet)
	applied := Apply(oldSet, d)
	d2 := Compute(applied, newSet)
	if len(d2.TablesAdded)+len(d2.TablesDropped)+len(d2.ColumnsAdded)+len(d2.ColumnsDropped)+len(d2.ColumnsRetyped) != 0 {
		t.Fatalf("apply did not reach fixed point: %s", d2)
	}
}

func TestClassifyLattice(t *testing.T) {
	cases := []struct {
		name    string
		retired []string
		stmts   []StatementInfo
		want    Compatibility
	}{
		{"additive aggregate", nil,
			[]StatementInfo{{Name: "agg", Category: "n:1", Inputs: []string{"orders"}, Outputs: []string{"ostats"}}},
			CompatFull},
		{"invertible split", []string{"cust"},
			[]StatementInfo{{Name: "split", Category: "1:n", Inputs: []string{"cust"}, Outputs: []string{"a", "b"}}},
			CompatForward},
		{"aggregating join", []string{"ol", "stock"},
			[]StatementInfo{{Name: "join", Category: "n:n", Inputs: []string{"ol", "stock"}, Outputs: []string{"ol2"}}},
			CompatBackward},
		{"orphaned retire", []string{"cust", "audit"},
			[]StatementInfo{{Name: "split", Category: "1:n", Inputs: []string{"cust"}, Outputs: []string{"a"}}},
			CompatBreaking},
	}
	for _, tc := range cases {
		if got := Classify(tc.retired, tc.stmts); got != tc.want {
			t.Errorf("%s: got %s want %s", tc.name, got, tc.want)
		}
	}
	v := &Version{Migration: "m", Retired: []string{"audit"}, Compatibility: CompatBreaking}
	err := Validate(v)
	if err == nil || !strings.Contains(err.Error(), "audit") {
		t.Fatalf("Validate breaking: %v", err)
	}
}

func TestInverseOfSplit(t *testing.T) {
	cust := tbl("cust", []string{"c_id"},
		colNN("c_id", "INT"), col("c_name", "TEXT"), col("c_balance", "FLOAT"))
	pub := tbl("cust_public", []string{"c_id"}, colNN("c_id", "INT"), col("c_name", "TEXT"))
	priv := tbl("cust_private", []string{"c_id"}, colNN("c_id", "INT"), col("c_balance", "FLOAT"))
	v := &Version{
		Migration: "split_cust",
		Retired:   []string{"cust"}, RetiredDefs: []TableDef{cust},
		Tables: []TableDef{pub, priv},
		Statements: []StatementInfo{{
			Name: "split", Category: "1:n", Driving: "cust",
			Inputs: []string{"cust"}, Outputs: []string{"cust_public", "cust_private"},
		}},
		Compatibility: CompatForward,
	}
	spec, err := Inverse(v)
	if err != nil {
		t.Fatalf("Inverse: %v", err)
	}
	if len(spec.Statements) != 1 {
		t.Fatalf("statements: %+v", spec.Statements)
	}
	st := spec.Statements[0]
	if st.Output != "cust" {
		t.Fatalf("output: %q", st.Output)
	}
	if want := []string{"cust_private", "cust_public"}; strings.Join(spec.RetireInputs, ",") != strings.Join(want, ",") {
		t.Fatalf("retire inputs: %v", spec.RetireInputs)
	}
	// The generated SQL must parse in the engine's dialect.
	if _, err := sql.ParseOne(st.SelectSQL); err != nil {
		t.Fatalf("generated SELECT does not parse: %v\n%s", err, st.SelectSQL)
	}
	if _, err := sql.Parse(spec.Setup); err != nil {
		t.Fatalf("generated Setup does not parse: %v\n%s", err, spec.Setup)
	}
	if !strings.Contains(st.SelectSQL, "WHERE") || !strings.Contains(st.SelectSQL, "c_id = ") {
		t.Fatalf("expected PK re-join in %q", st.SelectSQL)
	}
}

func TestInverseLossyAggregate(t *testing.T) {
	orders := tbl("orders", []string{"o_id"}, colNN("o_id", "INT"), col("o_cust", "INT"), col("o_total", "FLOAT"))
	stats := tbl("ostats", []string{"o_cust"}, colNN("o_cust", "INT"), col("total", "FLOAT"))
	v := &Version{
		Migration: "aggregate",
		Retired:   []string{"orders"}, RetiredDefs: []TableDef{orders},
		Tables: []TableDef{stats},
		Statements: []StatementInfo{{
			Name: "agg", Category: "n:1", Driving: "orders",
			Inputs: []string{"orders"}, Outputs: []string{"ostats"},
		}},
		Compatibility: CompatBackward,
	}
	_, err := Inverse(v)
	if err == nil || !strings.Contains(err.Error(), "orders.o_id") {
		t.Fatalf("want lossy witness naming orders.o_id, got: %v", err)
	}
}

func TestInverseLossyDroppedNotNull(t *testing.T) {
	src := tbl("t", []string{"id"}, colNN("id", "INT"), colNN("secret", "TEXT"))
	dst := tbl("t2", []string{"id"}, colNN("id", "INT"))
	v := &Version{
		Migration: "dropcol",
		Retired:   []string{"t"}, RetiredDefs: []TableDef{src},
		Tables: []TableDef{dst},
		Statements: []StatementInfo{{
			Name: "copy", Category: "1:1", Driving: "t",
			Inputs: []string{"t"}, Outputs: []string{"t2"},
		}},
	}
	_, err := Inverse(v)
	if err == nil || !strings.Contains(err.Error(), "t.secret") {
		t.Fatalf("want lossy witness naming t.secret, got: %v", err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	v := &Version{
		Hash: HashTables(nil), Parent: "", Migration: "m1",
		Statements:    []StatementInfo{{Name: "s", Category: "1:1", Driving: "a", Inputs: []string{"a"}, Outputs: []string{"b"}}},
		Compatibility: CompatForward,
		Retired:       []string{"a"},
		RetiredDefs:   []TableDef{tbl("a", nil, col("x", "INT"))},
		Tables:        []TableDef{tbl("b", nil, col("x", "INT"))},
		Diff:          Compute(nil, []TableDef{tbl("b", nil, col("x", "INT"))}),
	}
	b, err := v.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Migration != "m1" || got.Compatibility != CompatForward || len(got.RetiredDefs) != 1 {
		t.Fatalf("round trip: %+v", got)
	}
	if _, err := Decode(nil); err == nil {
		t.Fatal("Decode(nil) should fail")
	}
	if _, err := Decode([]byte("not json")); err == nil {
		t.Fatal("Decode(garbage) should fail")
	}
}
