package schemaver

import (
	"testing"
)

// FuzzSchemaDiff drives the differ with fuzzer-shaped schema pairs: the
// differ must never panic, and for 1:1 shapes (same table names, column
// add/drop/retype only) Apply(old, Compute(old, new)) must reproduce new's
// structural column sets exactly — the diff∘apply fixed point.
func FuzzSchemaDiff(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4}, []byte{4, 3, 2, 1})
	f.Add([]byte("abba"), []byte("baab"))
	f.Add([]byte{0}, []byte{255, 255, 0, 7, 9})
	f.Fuzz(func(t *testing.T, oldRaw, newRaw []byte) {
		oldSet := defsFromBytes(oldRaw)
		newSet := defsFromBytes(newRaw)

		d := Compute(oldSet, newSet) // must not panic, whatever the shapes
		_ = d.String()
		if h := HashTables(newSet); len(h) != 64 {
			t.Fatalf("hash length %d", len(h))
		}

		applied := Apply(oldSet, d)
		d2 := Compute(applied, newSet)
		if len(d2.TablesAdded) != 0 || len(d2.TablesDropped) != 0 ||
			len(d2.ColumnsAdded) != 0 || len(d2.ColumnsDropped) != 0 || len(d2.ColumnsRetyped) != 0 {
			t.Fatalf("diff∘apply not a fixed point:\nold=%v\nnew=%v\nresidual=%s", oldSet, newSet, d2)
		}
	})
}

// defsFromBytes decodes fuzz bytes into a deterministic small schema: up to
// 4 tables (t0..t3) with up to 8 columns each, column types and nullability
// taken from the byte stream. Names are drawn from fixed pools so the same
// logical column can appear added/dropped/retyped across the two snapshots.
func defsFromBytes(raw []byte) []TableDef {
	types := []string{"INT", "FLOAT", "TEXT", "BOOL", "TIMESTAMP"}
	var defs []TableDef
	i := 0
	next := func() byte {
		if i >= len(raw) {
			return 0
		}
		b := raw[i]
		i++
		return b
	}
	nTables := int(next())%4 + 1
	for ti := 0; ti < nTables; ti++ {
		t := TableDef{Name: string(rune('a' + ti))}
		nCols := int(next()) % 9
		seen := map[string]bool{}
		for ci := 0; ci < nCols; ci++ {
			b := next()
			name := string(rune('p' + int(b)%8))
			if seen[name] {
				continue
			}
			seen[name] = true
			t.Columns = append(t.Columns, ColumnDef{
				Name:    name,
				Type:    types[int(b>>3)%len(types)],
				NotNull: b&0x80 != 0,
			})
		}
		if len(t.Columns) > 0 && next()%2 == 0 {
			t.PrimaryKey = []string{t.Columns[0].Name}
		}
		defs = append(defs, t)
	}
	return defs
}
